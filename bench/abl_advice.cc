// Ablation: the non-transparent placement hooks of Section 9.
//
// "It is not hard to construct scenarios in which better performance could
// be obtained if the interface between the application and the memory
// management system were not so transparent." This bench constructs them:
//   * the neural simulator with its shared pages advised write-shared (so
//     they freeze immediately instead of thrashing through a migration
//     ping-pong first);
//   * a hot-spot counter page explicitly pinned vs. discovered-by-freezing;
//   * a producer/consumer phase with the consumer pre-replicating
//     (prefetching) the producer's pages before its reading phase.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/neural.h"
#include "src/apps/patterns.h"
#include "src/kernel/kernel.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

// Neural simulator, optionally advising every shared object write-shared.
SimTime NeuralRun(bool advised) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  apps::NeuralConfig config;
  config.processors = 16;
  config.epochs = 5;
  config.advise_write_shared = advised;
  return RunNeuralPlatinum(kernel, config).train_ns;
}

// Hot-spot counters: everyone read-modify-writes one page. Pinning it up
// front skips the discovery phase (migrate, invalidate, freeze).
SimTime HotSpotRun(bool pinned) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("hotspot");
  rt::ZoneAllocator zone(&kernel, space);
  auto counters = rt::SharedArray<uint32_t>::Create(zone, "counters", 16);
  if (pinned) {
    kernel.PinMemory(space, counters.base_va(), /*node=*/0);
  }
  SimTime start = 0;
  rt::RunOnProcessors(kernel, space, 8, "hs", [&](int pid) {
    if (pid == 0) {
      start = kernel.Now();
    }
    for (int i = 0; i < 200; ++i) {
      counters.Set(static_cast<size_t>(pid),
                   counters.Get(static_cast<size_t>(pid)) + 1);
      kernel.machine().scheduler().Sleep(20 * sim::kMicrosecond);
    }
  });
  return kernel.machine().scheduler().global_now() - start;
}

// Producer writes a region; consumers then read it. With prefetching, the
// consumers issue ReplicateMemory before their phase and take no read-miss
// latency inside it.
SimTime ProducerConsumerRun(bool prefetch) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("pc");
  rt::ZoneAllocator zone(&kernel, space);
  constexpr int kPages = 8;
  const uint32_t page_words = kernel.page_size() / 4;
  auto data = rt::SharedArray<uint32_t>::Create(zone, "pc-data",
                                                static_cast<size_t>(kPages) * page_words);
  rt::EventCountArray ready(zone, "pc-ready", 1);
  rt::Barrier prefetched(zone, "pc-prefetched", 8);
  SimTime consumer_phase = 0;
  rt::RunOnProcessors(kernel, space, 8, "pc", [&](int pid) {
    if (pid == 0) {
      for (int page = 0; page < kPages; ++page) {
        for (uint32_t w = 0; w < page_words; w += 16) {
          data.Set(static_cast<size_t>(page) * page_words + w, static_cast<uint32_t>(w));
        }
      }
      ready.Advance(0);
      prefetched.Wait();
      return;
    }
    ready.AwaitAtLeast(0, 1);
    if (prefetch) {
      for (int page = 0; page < kPages; ++page) {
        kernel.ReplicateMemory(space, data.va(static_cast<size_t>(page) * page_words), pid);
      }
    }
    // Separate the (prefetch) setup from the measured phase, so one
    // consumer's block transfers do not steal another's local bus mid-
    // measurement (Section 7).
    prefetched.Wait();
    SimTime t0 = kernel.Now();
    uint32_t sum = 0;
    for (int page = 0; page < kPages; ++page) {
      for (uint32_t w = 0; w < page_words; w += 4) {
        sum += data.Get(static_cast<size_t>(page) * page_words + w);
      }
    }
    benchmark::DoNotOptimize(sum);
    if (pid == 1) {
      consumer_phase = kernel.Now() - t0;
    }
  });
  return consumer_phase;
}

void BM_NeuralAdvised(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(NeuralRun(state.range(0) != 0));
  }
}
BENCHMARK(BM_NeuralAdvised)->Arg(0)->Arg(1)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: non-transparent placement hooks (Section 9) ===\n");
  double neural_plain = sim::ToSeconds(NeuralRun(false));
  double neural_advised = sim::ToSeconds(NeuralRun(true));
  std::printf("neural, transparent           : %8.3f s\n", neural_plain);
  std::printf("neural, advised write-shared  : %8.3f s  (%+.1f%%)\n", neural_advised,
              100.0 * (neural_advised - neural_plain) / neural_plain);

  double hs_plain = sim::ToMilliseconds(HotSpotRun(false));
  double hs_pinned = sim::ToMilliseconds(HotSpotRun(true));
  std::printf("hot-spot counters, transparent: %8.3f ms\n", hs_plain);
  std::printf("hot-spot counters, pinned     : %8.3f ms  (%+.1f%%)\n", hs_pinned,
              100.0 * (hs_pinned - hs_plain) / hs_plain);

  double pc_plain = sim::ToMilliseconds(ProducerConsumerRun(false));
  double pc_prefetch = sim::ToMilliseconds(ProducerConsumerRun(true));
  std::printf("consumer phase, demand-fault  : %8.3f ms\n", pc_plain);
  std::printf("consumer phase, pre-replicated: %8.3f ms  (%+.1f%%)\n", pc_prefetch,
              100.0 * (pc_prefetch - pc_plain) / pc_plain);

  bench::PrintPaperNote(
      "such hooks are anticipated to be used primarily by programming "
      "languages and their run-time support, not by application programmers "
      "(Section 9).");
  return 0;
}
