// Ablation (Section 4.2 anecdote): the co-located synchronization variable
// and the defrost daemon.
//
// The paper's first Gaussian elimination shared one page between the
// matrix-size variable (read in the inner-loop termination test) and a
// spin-flag used once at the start of the elimination phase. Spinning froze
// the page, turning every inner-loop size read into a remote reference.
// After thawing was added to the kernel, "the old version of the program
// took less than two seconds more to run than the new version", and the
// defrost daemon added no measurable overhead to the well-behaved version.
//
// This bench runs: the clean program (defrost on and off) and the co-located
// variant (defrost on and off), at several defrost periods t2.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/gauss.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

SimTime Run(bool colocate, bool defrost, SimTime t2 = 0) {
  sim::MachineParams params = sim::ButterflyPlusParams(16);
  if (t2 > 0) {
    params.t2_defrost_period_ns = t2;
  }
  sim::Machine machine(params);
  kernel::KernelOptions options;
  options.start_defrost_daemon = defrost;
  kernel::Kernel kernel(&machine, std::move(options));
  apps::GaussConfig config;
  config.n = bench::EnvInt("PLATINUM_GAUSS_N", bench::FullScale() ? 512 : 192);
  config.processors = 16;
  config.colocate_size_and_flag = colocate;
  config.verify = false;
  return RunGaussPlatinum(kernel, config).elimination_ns;
}

void BM_GaussDefrost(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(Run(state.range(0) != 0, state.range(1) != 0));
  }
}
BENCHMARK(BM_GaussDefrost)->Args({0, 1})->Args({1, 1})->Args({1, 0})->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: co-located sync variable + defrost daemon ===\n");
  double clean_on = sim::ToSeconds(Run(false, true));
  double clean_off = sim::ToSeconds(Run(false, false));
  double dirty_on = sim::ToSeconds(Run(true, true));
  double dirty_off = sim::ToSeconds(Run(true, false));
  std::printf("clean program,      defrost on : %8.3f s\n", clean_on);
  std::printf("clean program,      defrost off: %8.3f s   (daemon overhead %+.3f s)\n",
              clean_off, clean_on - clean_off);
  std::printf("co-located variant, defrost on : %8.3f s   (penalty vs clean %+.3f s)\n",
              dirty_on, dirty_on - clean_on);
  std::printf("co-located variant, defrost off: %8.3f s   (penalty vs clean %+.3f s)\n",
              dirty_off, dirty_off - clean_on);

  std::printf("\n--- defrost period t2 sweep (co-located variant) ---\n");
  for (int t2_ms : {100, 300, 1000, 3000}) {
    double t = sim::ToSeconds(Run(true, true, static_cast<SimTime>(t2_ms) * sim::kMillisecond));
    std::printf("t2 = %5d ms: %8.3f s\n", t2_ms, t);
  }
  bench::PrintPaperNote(
      "with thawing, the badly-laid-out program costs under two seconds more "
      "than the fixed program; the defrost daemon adds no measurable overhead "
      "to the well-behaved version. Reducing t2 helps accidentally frozen "
      "pages thaw sooner at the cost of overhead for pages that should stay "
      "frozen.");
  return 0;
}
