// Ablation: tardis lease tuning on the serving trie (ROADMAP "protocol
// zoo" — the lease-policy ablation on the fine-grain workload where tardis
// currently loses at 64 nodes).
//
// A tardis writer stalls until outstanding read leases drain, so the lease
// duration is the protocol's central knob: short leases make writes cheap
// but re-lease hot read-mostly pages constantly; long leases amortize reads
// but stretch every write stall. The doubling policy grows a page's lease
// while it stays read-only and resets it on a write, approximating
// per-page adaptivity. This bench pins the trade against the directory
// protocol on the trie workload at 16/32/64 nodes, bracketing the default
// 50 us lease from both sides.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trie_bench.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

const int kProcCounts[] = {16, 32, 64};
constexpr int kNumProcCounts = 3;

// Column layout: the directory baseline, then (lease duration x lease
// policy) for tardis.
struct LeaseVariant {
  const char* label;
  const char* protocol;
  sim::SimTime lease_ns;
  const char* lease_policy;
};
const LeaseVariant kVariants[] = {
    {"directory", "directory", 0, "fixed"},
    {"fixed-25us", "tardis", 25 * sim::kMicrosecond, "fixed"},
    {"dbl-25us", "tardis", 25 * sim::kMicrosecond, "doubling"},
    {"fixed-200us", "tardis", 200 * sim::kMicrosecond, "fixed"},
    {"dbl-200us", "tardis", 200 * sim::kMicrosecond, "doubling"},
};
constexpr int kNumVariants = 5;

void BM_Lease(benchmark::State& state) {
  for (auto _ : state) {
    bench::TrieCell cell;
    cell.protocol = "tardis";
    cell.lease_ns = 25 * sim::kMicrosecond;
    cell.procs = 16;
    state.counters["serve_s"] = sim::ToSeconds(RunTrieCell(cell));
  }
}
BENCHMARK(BM_Lease)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: tardis lease duration/policy on the serving trie ===\n");
  bench::SweepRunner runner;
  std::vector<SimTime> times =
      runner.Map(kNumVariants * kNumProcCounts, [&](int i) -> SimTime {
        const LeaseVariant& v = kVariants[i / kNumProcCounts];
        bench::TrieCell cell;
        cell.protocol = v.protocol;
        cell.lease_ns = v.lease_ns;
        cell.lease_policy = v.lease_policy;
        cell.procs = kProcCounts[i % kNumProcCounts];
        return RunTrieCell(cell);
      });

  std::vector<std::string> columns;
  for (const LeaseVariant& v : kVariants) {
    columns.push_back(v.label);
  }
  bench::SpeedupTable table("trie-serve: tardis lease ablation vs. directory", columns);
  for (int procs = 0; procs < kNumProcCounts; ++procs) {
    std::vector<SimTime> row;
    for (int variant = 0; variant < kNumVariants; ++variant) {
      row.push_back(times[static_cast<size_t>(variant * kNumProcCounts + procs)]);
    }
    table.AddRow(kProcCounts[procs], row);
  }
  table.Print();
  bench::MaybeWriteJson(table, "abl_lease");

  bench::PrintPaperNote(
      "the trie's interior pages are read by every lookup and written only "
      "on structural growth — ideal lease-doubling territory — while hot "
      "leaf pages see steady owner writes, so every lease extension there "
      "turns into a write stall. Wherever tardis trails the directory "
      "protocol at 64 nodes, the gap should shrink with doubling leases and "
      "widen with long fixed ones.");
  bench::RunMetrics::Print();
  return 0;
}
