// Ablation (Section 4.1 discussion): page-size sweep.
//
// A larger page amortizes the fixed fault overhead over more data (good for
// coarse-grain access like Gauss pivot rows and merge-sort scans), but for a
// fixed sharing granularity smaller than a page the reference density rho
// falls with page size, negating the benefit — and false sharing grows.
// "Once the collection of application programs has grown to a reasonable
// size we will systematically experiment with parameters such as page size"
// (Section 9) — this is that experiment.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "src/apps/gauss.h"
#include "src/apps/mergesort.h"
#include "src/apps/neural.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

sim::MachineParams ParamsWithPageSize(uint32_t bytes) {
  sim::MachineParams params = sim::ButterflyPlusParams(16);
  params.page_size_bytes = bytes;
  // Keep total memory per node constant at 4 MB.
  params.frames_per_module = (4u << 20) / bytes;
  return params;
}

SimTime GaussAt(uint32_t page_bytes) {
  sim::Machine machine(ParamsWithPageSize(page_bytes));
  kernel::Kernel kernel(&machine);
  apps::GaussConfig config;
  config.n = bench::EnvInt("PLATINUM_GAUSS_N", bench::FullScale() ? 512 : 160);
  config.processors = 16;
  config.verify = false;
  SimTime t = RunGaussPlatinum(kernel, config).elimination_ns;
  bench::RunMetrics::Count(machine);
  return t;
}

SimTime SortAt(uint32_t page_bytes) {
  sim::Machine machine(ParamsWithPageSize(page_bytes));
  kernel::Kernel kernel(&machine);
  apps::SortConfig config;
  config.count = static_cast<size_t>(bench::EnvInt("PLATINUM_SORT_COUNT", 1 << 14));
  config.processors = 16;
  config.verify = false;
  SimTime t = RunMergeSortPlatinum(kernel, config).sort_ns;
  bench::RunMetrics::Count(machine);
  return t;
}

SimTime NeuralAt(uint32_t page_bytes) {
  sim::Machine machine(ParamsWithPageSize(page_bytes));
  kernel::Kernel kernel(&machine);
  apps::NeuralConfig config;
  config.processors = 16;
  config.epochs = bench::EnvInt("PLATINUM_NEURAL_EPOCHS", 4);
  SimTime t = RunNeuralPlatinum(kernel, config).train_ns;
  bench::RunMetrics::Count(machine);
  return t;
}

void BM_GaussPageSize(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] =
        sim::ToSeconds(GaussAt(static_cast<uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_GaussPageSize)->Arg(1024)->Arg(4096)->Arg(16384)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: page size (16 processors) ===\n");
  std::printf("%10s %12s %12s %12s\n", "page (B)", "gauss (s)", "sort (s)", "neural (s)");
  const std::vector<uint32_t> sizes = {512u, 1024u, 2048u, 4096u, 8192u, 16384u};
  const int n_sizes = static_cast<int>(sizes.size());
  // 3 applications per page size, every point an independent machine.
  bench::SweepRunner runner;
  std::vector<SimTime> times = runner.Map(3 * n_sizes, [&](int i) -> SimTime {
    uint32_t bytes = sizes[static_cast<size_t>(i % n_sizes)];
    switch (i / n_sizes) {
      case 0:
        return GaussAt(bytes);
      case 1:
        return SortAt(bytes);
      default:
        return NeuralAt(bytes);
    }
  });
  for (int i = 0; i < n_sizes; ++i) {
    std::printf("%10u %12.3f %12.3f %12.3f\n", sizes[static_cast<size_t>(i)],
                sim::ToSeconds(times[static_cast<size_t>(i)]),
                sim::ToSeconds(times[static_cast<size_t>(n_sizes + i)]),
                sim::ToSeconds(times[static_cast<size_t>(2 * n_sizes + i)]));
  }
  bench::PrintPaperNote(
      "the economical page size tracks the program's data-access granularity "
      "(Section 4.1): pages much larger than a Gauss pivot row or a sort run "
      "move unused words on every replication (rho falls with page size), "
      "while pages smaller than the granularity multiply the fixed per-fault "
      "overhead. The fine-grain neural simulator is largely insensitive: its "
      "pages freeze whatever their size.");
  bench::RunMetrics::Print();
  return 0;
}
