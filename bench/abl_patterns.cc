// Ablation: policy behaviour across canonical sharing patterns.
//
// The systematic policy experiment Section 9 promises: every replication
// policy against every canonical NUMA sharing pattern. The paper's thesis is
// that the timestamp policy matches always-cache on patterns where data
// motion pays (private, read-shared, slow migratory) and matches never-cache
// where it does not (hot-spot writes, false sharing).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/apps/patterns.h"
#include "src/kernel/kernel.h"
#include "src/mem/policy.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT

std::unique_ptr<mem::ReplicationPolicy> MakePolicy(int which) {
  switch (which) {
    case 0:
      return std::make_unique<mem::TimestampPolicy>(10 * sim::kMillisecond);
    case 1:
      return std::make_unique<mem::AlwaysCachePolicy>();
    default:
      return std::make_unique<mem::NeverCachePolicy>();
  }
}

const char* kPolicyNames[] = {"timestamp", "always-cache", "never-cache"};

const apps::AccessPattern kPatterns[] = {
    apps::AccessPattern::kPrivate,       apps::AccessPattern::kReadShared,
    apps::AccessPattern::kMigratory,     apps::AccessPattern::kProducerConsumer,
    apps::AccessPattern::kHotSpotWrite,  apps::AccessPattern::kFalseSharing,
};

apps::PatternResult RunOne(apps::AccessPattern pattern, int policy, sim::SimTime think) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::KernelOptions options;
  options.policy = MakePolicy(policy);
  kernel::Kernel kernel(&machine, std::move(options));
  apps::PatternConfig config;
  config.pattern = pattern;
  config.processors = 8;
  config.rounds = 40;
  config.think_ns = think;
  return RunPattern(kernel, config);
}

void BM_Pattern(benchmark::State& state) {
  for (auto _ : state) {
    apps::PatternResult result =
        RunOne(kPatterns[state.range(0)], static_cast<int>(state.range(1)),
               200 * sim::kMicrosecond);
    state.counters["sim_ms"] = sim::ToMilliseconds(result.elapsed_ns);
    state.counters["freezes"] = static_cast<double>(result.freezes);
  }
}
BENCHMARK(BM_Pattern)->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1, 2}})->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  for (sim::SimTime think : {200 * sim::kMicrosecond, 15 * sim::kMillisecond}) {
    std::printf("\n=== Ablation: patterns x policies (8 procs, %.1f ms between rounds) ===\n",
                sim::ToMilliseconds(think));
    std::printf("%-18s", "pattern");
    for (const char* name : kPolicyNames) {
      std::printf(" %14s", name);
    }
    std::printf("   (elapsed ms; protocol actions repl/migr/rmap/freeze under timestamp)\n");
    for (apps::AccessPattern pattern : kPatterns) {
      std::printf("%-18s", std::string(AccessPatternName(pattern)).c_str());
      apps::PatternResult ts_result{};
      for (int policy = 0; policy < 3; ++policy) {
        apps::PatternResult result = RunOne(pattern, policy, think);
        if (policy == 0) {
          ts_result = result;
        }
        std::printf(" %14.2f", sim::ToMilliseconds(result.elapsed_ns));
      }
      std::printf("   %llu/%llu/%llu/%llu\n",
                  static_cast<unsigned long long>(ts_result.replications),
                  static_cast<unsigned long long>(ts_result.migrations),
                  static_cast<unsigned long long>(ts_result.remote_maps),
                  static_cast<unsigned long long>(ts_result.freezes));
    }
  }
  bench::PrintPaperNote(
      "the timestamp policy should be within reach of the better of the two "
      "extreme policies on every pattern: caching where data motion pays, "
      "remote access where interleaved writes would thrash the protocol.");
  return 0;
}
