// Ablation (Sections 4.2, 8): replication-policy comparison.
//
// PLATINUM's timestamp policy against the bounds of the design space:
//   * always-cache   — replicate/migrate on every miss, never freeze
//                      (degenerates under fine-grain write sharing);
//   * never-cache    — first touch places the page, everything else is
//                      remote (static placement, no data motion);
//   * migrate-then-freeze — Bolosky et al.'s scheme discussed in Section 8:
//                      written pages move a bounded number of times, then
//                      freeze for good.
// Run on all three applications plus a fine-grain ping-pong microworkload
// where caching is exactly the wrong thing to do.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/gauss.h"
#include "src/apps/mergesort.h"
#include "src/apps/neural.h"
#include "src/kernel/kernel.h"
#include "src/mem/policy.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

std::unique_ptr<mem::ReplicationPolicy> MakePolicy(int which) {
  switch (which) {
    case 0:
      return std::make_unique<mem::TimestampPolicy>(10 * sim::kMillisecond);
    case 1:
      return std::make_unique<mem::TimestampPolicy>(10 * sim::kMillisecond,
                                                    /*thaw_on_access=*/true);
    case 2:
      return std::make_unique<mem::AlwaysCachePolicy>();
    case 3:
      return std::make_unique<mem::NeverCachePolicy>();
    default:
      return std::make_unique<mem::MigrateThenFreezePolicy>(3);
  }
}

const char* kPolicyNames[] = {"timestamp", "timestamp+thaw", "always-cache", "never-cache",
                              "migrate-then-freeze"};

SimTime RunWith(int policy, const std::function<SimTime(kernel::Kernel&)>& app) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::KernelOptions options;
  options.policy = MakePolicy(policy);
  // The Bolosky-style policy freezes for good: no defrost.
  options.start_defrost_daemon = policy != 4;
  kernel::Kernel kernel(&machine, std::move(options));
  SimTime t = app(kernel);
  bench::RunMetrics::Count(machine);
  return t;
}

SimTime GaussApp(kernel::Kernel& kernel) {
  apps::GaussConfig config;
  config.n = bench::EnvInt("PLATINUM_GAUSS_N", bench::FullScale() ? 512 : 160);
  config.processors = 16;
  config.verify = false;
  return RunGaussPlatinum(kernel, config).elimination_ns;
}

SimTime SortApp(kernel::Kernel& kernel) {
  apps::SortConfig config;
  config.count = static_cast<size_t>(bench::EnvInt("PLATINUM_SORT_COUNT", 1 << 14));
  config.processors = 16;
  config.verify = false;
  return RunMergeSortPlatinum(kernel, config).sort_ns;
}

SimTime NeuralApp(kernel::Kernel& kernel) {
  apps::NeuralConfig config;
  config.processors = 16;
  config.epochs = bench::EnvInt("PLATINUM_NEURAL_EPOCHS", 4);
  return RunNeuralPlatinum(kernel, config).train_ns;
}

// Fine-grain ping-pong: 8 processors take turns incrementing counters packed
// into one page — interleaved writes at word granularity, the pattern for
// which any caching policy pays a full protocol round per access.
SimTime PingPongApp(kernel::Kernel& kernel) {
  auto* space = kernel.CreateAddressSpace("pingpong");
  rt::ZoneAllocator zone(&kernel, space);
  auto counters = rt::SharedArray<uint32_t>::Create(zone, "counters", 16);
  SimTime start = 0;
  rt::RunOnProcessors(kernel, space, 8, "pp", [&](int pid) {
    if (pid == 0) {
      start = kernel.Now();
    }
    for (int i = 0; i < 100; ++i) {
      counters.Set(static_cast<size_t>(pid), counters.Get(static_cast<size_t>(pid)) + 1);
      kernel.machine().scheduler().Sleep(50 * sim::kMicrosecond);
    }
  });
  return kernel.machine().scheduler().global_now() - start;
}

void BM_Policy(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["gauss_s"] =
        sim::ToSeconds(RunWith(static_cast<int>(state.range(0)), GaussApp));
  }
}
BENCHMARK(BM_Policy)->DenseRange(0, 4)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: replication policies (16 processors) ===\n");
  std::printf("%-20s %12s %12s %12s %14s\n", "policy", "gauss (s)", "sort (s)", "neural (s)",
              "ping-pong (ms)");
  constexpr int kPolicies = 5;
  const std::function<SimTime(kernel::Kernel&)> apps[] = {GaussApp, SortApp, NeuralApp,
                                                          PingPongApp};
  constexpr int kApps = 4;
  // policy x app grid, every cell an independent machine.
  bench::SweepRunner runner;
  std::vector<SimTime> times = runner.Map(kPolicies * kApps, [&](int i) -> SimTime {
    return RunWith(i / kApps, apps[i % kApps]);
  });
  for (int policy = 0; policy < kPolicies; ++policy) {
    const SimTime* row = &times[static_cast<size_t>(policy * kApps)];
    std::printf("%-20s %12.3f %12.3f %12.3f %14.1f\n", kPolicyNames[policy],
                sim::ToSeconds(row[0]), sim::ToSeconds(row[1]), sim::ToSeconds(row[2]),
                sim::ToMilliseconds(row[3]));
  }
  bench::PrintPaperNote(
      "the timestamp policy should track always-cache on coarse-grain "
      "workloads (gauss, sort) and track never-cache on fine-grain "
      "write-sharing (neural, ping-pong) — using remote access effectively "
      "disables caching exactly where running the protocol costs more than "
      "not caching.");
  bench::RunMetrics::Print();
  return 0;
}
