// Ablation: coherence protocols head to head (docs/PROTOCOL.md, "protocol
// zoo").
//
// The paper's directory protocol pays for write misses with shootdown
// rounds — every holder takes an IPI and the cost grows with the replica
// set. The Tardis-style timestamp protocol pays with lease waits instead:
// a writer stalls until outstanding read leases drain, touching no other
// processor. This bench runs gauss / mergesort / neural under both
// protocols on 16/32/64-node machines, so the trade shows up where the
// paper's Section 9 scalability argument predicts it: coarse-grain
// workloads (gauss, sort) should be near-identical, while fine-grain
// write sharing (neural) trades IPI storms for lease stalls.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench/bench_util.h"
#include "src/apps/gauss.h"
#include "src/apps/mergesort.h"
#include "src/apps/neural.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

const char* kProtocols[] = {"directory", "tardis"};
constexpr int kNumProtocols = 2;

const int kProcCounts[] = {16, 32, 64};
constexpr int kNumProcCounts = 3;

// One cell of the grid: a fresh machine at `processors` nodes booted with
// `protocol`, running one application. Every cell is independent, so the
// whole grid shards across SweepRunner workers.
SimTime RunWith(const char* protocol, int processors,
                const std::function<SimTime(kernel::Kernel&, int)>& app) {
  sim::Machine machine(sim::ButterflyPlusParams(processors));
  kernel::KernelOptions options;
  options.protocol = protocol;
  kernel::Kernel kernel(&machine, std::move(options));
  SimTime t = app(kernel, processors);
  bench::RunMetrics::Count(machine);
  return t;
}

SimTime GaussApp(kernel::Kernel& kernel, int processors) {
  apps::GaussConfig config;
  config.n = bench::EnvInt("PLATINUM_GAUSS_N", bench::FullScale() ? 512 : 160);
  config.processors = processors;
  config.verify = false;
  return RunGaussPlatinum(kernel, config).elimination_ns;
}

SimTime SortApp(kernel::Kernel& kernel, int processors) {
  apps::SortConfig config;
  config.count = static_cast<size_t>(bench::EnvInt("PLATINUM_SORT_COUNT", 1 << 14));
  config.processors = processors;
  config.verify = false;
  return RunMergeSortPlatinum(kernel, config).sort_ns;
}

SimTime NeuralApp(kernel::Kernel& kernel, int processors) {
  apps::NeuralConfig config;
  config.processors = processors;
  config.epochs = bench::EnvInt("PLATINUM_NEURAL_EPOCHS", 4);
  return RunNeuralPlatinum(kernel, config).train_ns;
}

void BM_Protocol(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["gauss_s"] = sim::ToSeconds(
        RunWith(kProtocols[static_cast<size_t>(state.range(0))], 16, GaussApp));
  }
}
BENCHMARK(BM_Protocol)->DenseRange(0, kNumProtocols - 1)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: directory vs. tardis at 16/32/64 nodes ===\n");
  const std::function<SimTime(kernel::Kernel&, int)> apps[] = {GaussApp, SortApp, NeuralApp};
  constexpr int kApps = 3;
  // protocol x procs x app grid, every cell an independent machine.
  bench::SweepRunner runner;
  std::vector<SimTime> times =
      runner.Map(kNumProtocols * kNumProcCounts * kApps, [&](int i) -> SimTime {
        const int protocol = i / (kNumProcCounts * kApps);
        const int procs = (i / kApps) % kNumProcCounts;
        return RunWith(kProtocols[protocol], kProcCounts[procs], apps[i % kApps]);
      });

  // One speedup table per application: rows are node counts, columns the two
  // protocols, so the JSON carries the full comparison for the plots.
  const char* app_names[] = {"gauss", "mergesort", "neural"};
  for (int app = 0; app < kApps; ++app) {
    bench::SpeedupTable table(std::string(app_names[app]) + ": directory vs. tardis",
                              {"directory", "tardis"});
    for (int procs = 0; procs < kNumProcCounts; ++procs) {
      auto cell = [&](int protocol) {
        return times[static_cast<size_t>((protocol * kNumProcCounts + procs) * kApps + app)];
      };
      table.AddRow(kProcCounts[procs], {cell(0), cell(1)});
    }
    table.Print();
    bench::MaybeWriteJson(table, std::string("abl_protocol_") + app_names[app]);
  }

  bench::PrintPaperNote(
      "both protocols enforce the same single-writer discipline, so the "
      "coarse-grain applications (gauss, sort) should land within a few "
      "percent of each other at every scale. The fine-grain write sharing in "
      "neural is where they diverge: the directory protocol pays shootdown "
      "rounds that grow with the machine, tardis pays lease waits that do "
      "not involve the other processors at all.");
  bench::RunMetrics::Print();
  return 0;
}
