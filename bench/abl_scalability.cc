// Ablation (Section 9): scalability beyond the 16-processor testbed.
//
// "The kernel itself is designed to scale well to machines with a much
// larger number of processors. Its decentralized design keeps the number of
// remote memory accesses in the kernel to a minimum... especially the low
// incremental cost per shootdown and the techniques for reducing the number
// of processors involved in a shootdown." The paper could only measure 16
// nodes; the simulator is not so constrained. This bench runs the
// applications on 16/32/64-node machines and measures the per-processor
// shootdown cost at scale.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/gauss.h"
#include "src/apps/mergesort.h"
#include "src/kernel/kernel.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

SimTime GaussAt(int processors) {
  sim::Machine machine(sim::ButterflyPlusParams(processors));
  kernel::Kernel kernel(&machine);
  apps::GaussConfig config;
  config.n = bench::EnvInt("PLATINUM_GAUSS_N", bench::FullScale() ? 800 : 384);
  config.processors = processors;
  config.verify = false;
  SimTime t = RunGaussPlatinum(kernel, config).elimination_ns;
  bench::RunMetrics::Count(machine);
  return t;
}

SimTime SortAt(int processors) {
  sim::Machine machine(sim::ButterflyPlusParams(processors));
  kernel::Kernel kernel(&machine);
  apps::SortConfig config;
  config.count = static_cast<size_t>(bench::EnvInt("PLATINUM_SORT_COUNT", 1 << 16));
  config.processors = processors;
  config.verify = false;
  SimTime t = RunMergeSortPlatinum(kernel, config).sort_ns;
  bench::RunMetrics::Count(machine);
  return t;
}

// Write-miss invalidation latency with `replicas` active read copies, on a
// 64-node machine: the shootdown cost curve at four times the paper's scale.
SimTime ShootdownAt(int replicas) {
  sim::Machine machine(sim::ButterflyPlusParams(64));
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("shoot");
  rt::ZoneAllocator zone(&kernel, space);
  uint32_t va = zone.AllocWords("page", 1, hw::Rights::kReadWrite, /*home=*/0);
  SimTime duration = 0;
  kernel.SpawnThread(space, 0, "owner", [&] {
    kernel.WriteWord(space, va, 1);
    machine.scheduler().Sleep(100 * sim::kMillisecond);
    SimTime t0 = kernel.Now();
    kernel.WriteWord(space, va, 2);
    duration = kernel.Now() - t0;
  });
  for (int r = 1; r <= replicas; ++r) {
    kernel.SpawnThread(space, r, "replica", [&, r] {
      machine.scheduler().Sleep(static_cast<SimTime>(r) * sim::kMillisecond);
      kernel.ReadWord(space, va);
      machine.scheduler().Sleep(200 * sim::kMillisecond);  // stay active
    });
  }
  kernel.Run();
  bench::RunMetrics::Count(machine);
  return duration;
}

void BM_GaussScale(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(GaussAt(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_GaussScale)->Arg(16)->Arg(64)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: scaling past the 16-node testbed (Section 9) ===\n");
  bench::SweepRunner runner;
  // All sweep points of both experiments, sharded across host threads; every
  // point is its own machine, so the results are independent of worker count.
  const std::vector<int> proc_counts = {1, 16, 32, 64};
  const std::vector<int> replica_counts = {1, 15, 31, 47, 63};
  const int n_procs = static_cast<int>(proc_counts.size());
  const int n_replicas = static_cast<int>(replica_counts.size());
  std::vector<SimTime> times =
      runner.Map(2 * n_procs + n_replicas, [&](int i) -> SimTime {
        if (i < n_procs) {
          return GaussAt(proc_counts[static_cast<size_t>(i)]);
        }
        if (i < 2 * n_procs) {
          return SortAt(proc_counts[static_cast<size_t>(i - n_procs)]);
        }
        return ShootdownAt(replica_counts[static_cast<size_t>(i - 2 * n_procs)]);
      });

  bench::SpeedupTable table("application speedup at 16/32/64 nodes", {"gauss", "mergesort"});
  for (int i = 0; i < n_procs; ++i) {
    table.AddRow(proc_counts[static_cast<size_t>(i)],
                 {times[static_cast<size_t>(i)], times[static_cast<size_t>(n_procs + i)]});
  }
  table.Print();
  bench::MaybeWriteJson(table, "abl_scalability");

  std::printf("\n--- write-miss invalidation vs. replica count (64-node machine) ---\n");
  double previous = 0;
  int previous_replicas = 0;
  for (int i = 0; i < n_replicas; ++i) {
    int replicas = replica_counts[static_cast<size_t>(i)];
    double ms = sim::ToMilliseconds(times[static_cast<size_t>(2 * n_procs + i)]);
    std::printf("invalidate %2d replicas: %7.3f ms", replicas, ms);
    if (previous > 0) {
      std::printf("   (incremental %5.1f us/processor)",
                  (ms - previous) * 1000.0 / (replicas - previous_replicas));
    }
    std::printf("\n");
    previous = ms;
    previous_replicas = replicas;
  }
  bench::PrintPaperNote(
      "the incremental shootdown cost per processor must stay flat (~17 us) "
      "as the machine grows — the decentralized design's scalability claim. "
      "Application speedup keeps growing past 16 nodes for coarse-grain "
      "work (gauss), while tree merge sort saturates by construction.");
  bench::RunMetrics::Print();
  return 0;
}
