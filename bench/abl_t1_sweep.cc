// Ablation (Section 4.2): sensitivity to the freeze window t1.
//
// "A few tests indicated that application performance is insensitive to
// varying t1 from 10 ms up to about 100 ms." This bench sweeps t1 across
// two decades for Gaussian elimination (replication-friendly) and the
// neural simulator (freeze-dominated), and also tries the thaw-on-access
// policy variant, for which the paper saw no significant difference.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/gauss.h"
#include "src/apps/neural.h"
#include "src/kernel/kernel.h"
#include "src/mem/policy.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::kMillisecond;
using sim::SimTime;

SimTime RunGauss(SimTime t1, bool thaw_on_access) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::KernelOptions options;
  options.policy = std::make_unique<mem::TimestampPolicy>(t1, thaw_on_access);
  kernel::Kernel kernel(&machine, std::move(options));
  apps::GaussConfig config;
  config.n = bench::EnvInt("PLATINUM_GAUSS_N", bench::FullScale() ? 512 : 160);
  config.processors = 16;
  config.verify = false;
  SimTime t = RunGaussPlatinum(kernel, config).elimination_ns;
  bench::RunMetrics::Count(machine);
  return t;
}

SimTime RunNeural(SimTime t1, bool thaw_on_access) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::KernelOptions options;
  options.policy = std::make_unique<mem::TimestampPolicy>(t1, thaw_on_access);
  kernel::Kernel kernel(&machine, std::move(options));
  apps::NeuralConfig config;
  config.processors = 16;
  config.epochs = bench::EnvInt("PLATINUM_NEURAL_EPOCHS", 5);
  SimTime t = RunNeuralPlatinum(kernel, config).train_ns;
  bench::RunMetrics::Count(machine);
  return t;
}

void BM_GaussT1(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(
        RunGauss(static_cast<SimTime>(state.range(0)) * kMillisecond, false));
  }
}
BENCHMARK(BM_GaussT1)->Arg(10)->Arg(100)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: freeze window t1 (Section 4.2) ===\n");
  std::printf("%8s %18s %18s %22s\n", "t1 (ms)", "gauss 16p (s)", "neural 16p (s)",
              "gauss thaw-on-access");
  const std::vector<SimTime> t1_values = {1, 3, 10, 30, 100, 300};
  const int n_t1 = static_cast<int>(t1_values.size());
  // 3 experiments per t1 value, every point an independent machine.
  bench::SweepRunner runner;
  std::vector<SimTime> times = runner.Map(3 * n_t1, [&](int i) -> SimTime {
    SimTime t1 = t1_values[static_cast<size_t>(i % n_t1)] * kMillisecond;
    switch (i / n_t1) {
      case 0:
        return RunGauss(t1, false);
      case 1:
        return RunNeural(t1, false);
      default:
        return RunGauss(t1, true);
    }
  });
  double gauss_10 = 0;
  double gauss_100 = 0;
  for (int i = 0; i < n_t1; ++i) {
    SimTime t1_ms = t1_values[static_cast<size_t>(i)];
    double g = sim::ToSeconds(times[static_cast<size_t>(i)]);
    double n = sim::ToSeconds(times[static_cast<size_t>(n_t1 + i)]);
    double g_thaw = sim::ToSeconds(times[static_cast<size_t>(2 * n_t1 + i)]);
    if (t1_ms == 10) {
      gauss_10 = g;
    }
    if (t1_ms == 100) {
      gauss_100 = g;
    }
    std::printf("%8llu %18.3f %18.3f %22.3f\n", static_cast<unsigned long long>(t1_ms), g, n,
                g_thaw);
  }
  std::printf("gauss variation across t1 in [10,100] ms: %.1f%%\n",
              100.0 * (gauss_100 - gauss_10) / gauss_10);
  bench::PrintPaperNote(
      "application performance is insensitive to varying t1 from 10 ms up to "
      "about 100 ms; the default and thaw-on-access freezing policies show no "
      "significant difference.");
  bench::RunMetrics::Print();
  return 0;
}
