// Shared helpers for the benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the experiment on the simulated machine, prints the series the paper
// reports (virtual-time measurements), and registers the runs with
// google-benchmark so the harness also emits machine-readable output.
// Workload sizes default to values that run in seconds; set PLATINUM_FULL=1
// for paper-scale inputs.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/sim/time.h"

namespace platinum::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline bool FullScale() { return EnvInt("PLATINUM_FULL", 0) != 0; }

// A speedup-curve table: one row per processor count, one column per system.
class SpeedupTable {
 public:
  SpeedupTable(std::string title, std::vector<std::string> systems)
      : title_(std::move(title)), systems_(std::move(systems)) {}

  void AddRow(int processors, const std::vector<sim::SimTime>& times) {
    rows_.push_back({processors, times});
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%5s", "procs");
    for (const std::string& system : systems_) {
      std::printf("  %14s %8s", (system + " (s)").c_str(), "speedup");
    }
    std::printf("\n");
    for (const Row& row : rows_) {
      std::printf("%5d", row.processors);
      for (size_t i = 0; i < row.times.size(); ++i) {
        double t = sim::ToSeconds(row.times[i]);
        double base = sim::ToSeconds(rows_.front().times[i]);
        std::printf("  %14.3f %8.2f", t, base > 0 ? base / t : 0.0);
      }
      std::printf("\n");
    }
  }

  // Machine-readable form of the table, mirroring Print().
  std::string ToJson() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("title").Value(title_);
    w.Key("systems").BeginArray();
    for (const std::string& system : systems_) {
      w.Value(system);
    }
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      w.Key("processors").Value(row.processors);
      w.Key("seconds").BeginArray();
      for (sim::SimTime t : row.times) {
        w.Value(sim::ToSeconds(t));
      }
      w.EndArray();
      w.Key("speedups").BeginArray();
      for (size_t i = 0; i < row.times.size(); ++i) {
        double t = sim::ToSeconds(row.times[i]);
        double base = sim::ToSeconds(rows_.front().times[i]);
        w.Value(t > 0 ? base / t : 0.0);
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
  }

 private:
  struct Row {
    int processors;
    std::vector<sim::SimTime> times;
  };
  std::string title_;
  std::vector<std::string> systems_;
  std::vector<Row> rows_;
};

inline void PrintPaperNote(const char* note) { std::printf("paper: %s\n", note); }

// When PLATINUM_JSON_DIR is set, writes the table as
// $PLATINUM_JSON_DIR/<bench_name>.json so plotting scripts can pick the
// series up without scraping stdout. A no-op otherwise.
inline void MaybeWriteJson(const SpeedupTable& table, const std::string& bench_name) {
  const char* dir = std::getenv("PLATINUM_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  std::string path = std::string(dir) + "/" + bench_name + ".json";
  obs::WriteFileOrDie(path, table.ToJson());
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace platinum::bench

#endif  // BENCH_BENCH_UTIL_H_
