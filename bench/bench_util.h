// Shared helpers for the benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the experiment on the simulated machine, prints the series the paper
// reports (virtual-time measurements), and registers the runs with
// google-benchmark so the harness also emits machine-readable output.
// Workload sizes default to values that run in seconds; set PLATINUM_FULL=1
// for paper-scale inputs.
//
// Independent sweep points (each owning its own sim::Machine) are sharded
// across host threads by SweepRunner; docs/PERFORMANCE.md describes the
// harness and the BENCH_*.json pipeline built on top of it.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/sim/machine.h"
#include "src/sim/time.h"

namespace platinum::bench {

// Integer environment knob. Aborts on malformed values (e.g.
// PLATINUM_GAUSS_N=8oo) instead of silently running the wrong experiment.
// DETERMINISTIC_SANITIZED: the parsed knob is part of the experiment's
// invocation identity — the same invocation (binary + args + environment)
// always sees the same value, and every knob is echoed in the output — so
// its result does not carry host taint (docs/STATIC_ANALYSIS.md).
PLATINUM_DETERMINISTIC_SANITIZED inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    std::fprintf(stderr, "bench: %s=\"%s\" is not an integer\n", name, value);
    std::abort();
  }
  return static_cast<int>(parsed);
}

inline bool FullScale() { return EnvInt("PLATINUM_FULL", 0) != 0; }

// Shards the `n` points of a sweep across host threads. Each point must be a
// self-contained simulation (its own sim::Machine — they share no mutable
// state, so the sweep is embarrassingly parallel) and must not print: all
// output happens in the caller, in index order, after Map returns. Results
// are keyed by point index, so tables and JSON are byte-identical to a
// serial run whatever the worker count.
class SweepRunner {
 public:
  // `workers` <= 0 selects PLATINUM_BENCH_WORKERS, defaulting to the host's
  // hardware concurrency; 1 runs the sweep serially on the calling thread.
  // HOST_ONLY: the worker count shapes host-side scheduling only — results
  // are keyed by point index, so sim output is identical for any count
  // (enforced by tools/bench_sweep_check.sh).
  PLATINUM_HOST_ONLY explicit SweepRunner(int workers = 0) : workers_(workers) {
    if (workers_ <= 0) {
      workers_ = EnvInt("PLATINUM_BENCH_WORKERS", 0);
    }
    if (workers_ <= 0) {
      workers_ = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (workers_ < 1) {
      workers_ = 1;
    }
  }

  int workers() const { return workers_; }

  // Runs fn(0) .. fn(n-1) and returns their results in index order.
  // HOST_ONLY: sharding is host-side; the index-keyed results make the
  // output independent of which host thread ran which point.
  template <typename Fn>
  PLATINUM_HOST_ONLY auto Map(int n, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, int>> {
    std::vector<std::invoke_result_t<Fn&, int>> results(static_cast<size_t>(n));
    if (workers_ <= 1 || n <= 1) {
      for (int i = 0; i < n; ++i) {
        results[static_cast<size_t>(i)] = fn(i);
      }
      return results;
    }
    std::atomic<int> next{0};
    auto drain = [&results, &next, &fn, n] {
      for (int i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        results[static_cast<size_t>(i)] = fn(i);
      }
    };
    std::vector<std::thread> pool;
    const int spawned = workers_ < n ? workers_ : n;
    pool.reserve(static_cast<size_t>(spawned));
    for (int t = 0; t < spawned; ++t) {
      pool.emplace_back(drain);
    }
    for (std::thread& t : pool) {
      t.join();
    }
    return results;
  }

 private:
  int workers_ = 1;
};

// Aggregate host-throughput accounting for one bench binary: every finished
// simulation reports its reference count and simulated duration before its
// machine is destroyed, and main() prints one machine-parsable summary line
// that tools/bench_report.py combines with host wall-clock into accesses/sec.
// Counters are atomic (and order-independent sums) so SweepRunner workers can
// report concurrently without perturbing the output.
class RunMetrics {
 public:
  static void Count(const sim::Machine& machine) {
    machines_.fetch_add(1, std::memory_order_relaxed);
    references_.fetch_add(machine.stats().total_references(), std::memory_order_relaxed);
    sim_ns_.fetch_add(static_cast<uint64_t>(machine.scheduler().global_now()),
                      std::memory_order_relaxed);
  }

  static void Print() {
    std::printf(
        "PLATINUM_BENCH_METRICS {\"machines\": %llu, \"references\": %llu, "
        "\"sim_seconds\": %.3f}\n",
        static_cast<unsigned long long>(machines_.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(references_.load(std::memory_order_relaxed)),
        static_cast<double>(sim_ns_.load(std::memory_order_relaxed)) / 1e9);
  }

 private:
  static inline std::atomic<uint64_t> machines_{0};
  static inline std::atomic<uint64_t> references_{0};
  static inline std::atomic<uint64_t> sim_ns_{0};
};

// A speedup-curve table: one row per processor count, one column per system.
class SpeedupTable {
 public:
  SpeedupTable(std::string title, std::vector<std::string> systems)
      : title_(std::move(title)), systems_(std::move(systems)) {}

  void AddRow(int processors, const std::vector<sim::SimTime>& times) {
    rows_.push_back({processors, times});
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%5s", "procs");
    for (const std::string& system : systems_) {
      std::printf("  %14s %8s", (system + " (s)").c_str(), "speedup");
    }
    std::printf("\n");
    for (const Row& row : rows_) {
      std::printf("%5d", row.processors);
      for (size_t i = 0; i < row.times.size(); ++i) {
        double t = sim::ToSeconds(row.times[i]);
        double base = sim::ToSeconds(rows_.front().times[i]);
        std::printf("  %14.3f", t);
        // A zero time on either side of the ratio means the run was
        // degenerate (nothing measured); flag it instead of printing 0.00.
        if (base > 0 && t > 0) {
          std::printf(" %8.2f", base / t);
        } else {
          std::printf(" %8s", "n/a");
        }
      }
      std::printf("\n");
    }
  }

  // Machine-readable form of the table, mirroring Print() (a degenerate
  // speedup becomes JSON null).
  std::string ToJson() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("title").Value(title_);
    w.Key("systems").BeginArray();
    for (const std::string& system : systems_) {
      w.Value(system);
    }
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      w.Key("processors").Value(row.processors);
      w.Key("seconds").BeginArray();
      for (sim::SimTime t : row.times) {
        w.Value(sim::ToSeconds(t));
      }
      w.EndArray();
      w.Key("speedups").BeginArray();
      for (size_t i = 0; i < row.times.size(); ++i) {
        double t = sim::ToSeconds(row.times[i]);
        double base = sim::ToSeconds(rows_.front().times[i]);
        if (base > 0 && t > 0) {
          w.Value(base / t);
        } else {
          w.Null();
        }
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
  }

 private:
  struct Row {
    int processors;
    std::vector<sim::SimTime> times;
  };
  std::string title_;
  std::vector<std::string> systems_;
  std::vector<Row> rows_;
};

inline void PrintPaperNote(const char* note) { std::printf("paper: %s\n", note); }

// When PLATINUM_JSON_DIR is set, writes the table as
// $PLATINUM_JSON_DIR/<bench_name>.json so plotting scripts can pick the
// series up without scraping stdout. A no-op otherwise.
// HOST_ONLY: the environment chooses *where* the artifact lands on the
// host filesystem; the artifact's *content* (the table) is sim-derived and
// unaffected.
PLATINUM_HOST_ONLY inline void MaybeWriteJson(const SpeedupTable& table,
                                              const std::string& bench_name) {
  const char* dir = std::getenv("PLATINUM_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  std::string path = std::string(dir) + "/" + bench_name + ".json";
  obs::WriteFileOrDie(path, table.ToJson());
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace platinum::bench

#endif  // BENCH_BENCH_UTIL_H_
