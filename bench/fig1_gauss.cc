// Figure 1: Gaussian elimination speedup vs. processors.
//
// The paper reports, for an 800x800 integer Gauss elimination on a
// 16-processor Butterfly Plus: PLATINUM coherent memory 13.5x, the Uniform
// System implementation 10.6x, and the SMP message-passing implementation
// 15.3x. This bench regenerates all three curves on the simulated machine.
//
// Default matrix size is 256 (seconds of host time); PLATINUM_FULL=1 runs
// the paper's 800x800, and PLATINUM_GAUSS_N overrides explicitly.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/gauss.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT

int MatrixSize() {
  return bench::EnvInt("PLATINUM_GAUSS_N", bench::FullScale() ? 800 : 400);
}

apps::GaussConfig ConfigFor(int processors) {
  apps::GaussConfig config;
  config.n = MatrixSize();
  config.processors = processors;
  // Verify only the small runs; verification re-reads the whole matrix.
  config.verify = config.n <= 400;
  return config;
}

sim::SimTime RunPlatinum(int processors) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  return RunGaussPlatinum(kernel, ConfigFor(processors)).elimination_ns;
}

sim::SimTime RunUniform(int processors) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  return RunGaussUniformSystem(machine, ConfigFor(processors)).elimination_ns;
}

sim::SimTime RunSmp(int processors) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  return RunGaussMessagePassing(kernel, ConfigFor(processors)).elimination_ns;
}

void BM_GaussPlatinum(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(RunPlatinum(static_cast<int>(state.range(0))));
  }
}
void BM_GaussUniformSystem(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(RunUniform(static_cast<int>(state.range(0))));
  }
}
void BM_GaussMessagePassing(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(RunSmp(static_cast<int>(state.range(0))));
  }
}

BENCHMARK(BM_GaussPlatinum)->Arg(1)->Arg(16)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GaussUniformSystem)->Arg(1)->Arg(16)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GaussMessagePassing)->Arg(1)->Arg(16)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  bench::SpeedupTable table(
      "Figure 1: Gaussian elimination (n=" + std::to_string(MatrixSize()) + ")",
      {"PLATINUM", "UniformSys", "SMP-msg"});
  for (int p : {1, 2, 4, 8, 12, 16}) {
    table.AddRow(p, {RunPlatinum(p), RunUniform(p), RunSmp(p)});
  }
  table.Print();
  bench::MaybeWriteJson(table, "fig1_gauss");
  bench::PrintPaperNote(
      "16-processor speedups on the Butterfly Plus (800x800): PLATINUM 13.5, "
      "Uniform System 10.6, SMP message passing 15.3. Expected shape: "
      "SMP > PLATINUM > Uniform System, all near-linear at low processor counts.");
  return 0;
}
