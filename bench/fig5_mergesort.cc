// Figure 5: merge sort speedup — PLATINUM on the Butterfly Plus vs. the same
// program on a Sequent Symmetry (UMA, model A processors with 8 KB
// write-through caches).
//
// The paper reports better speedup under PLATINUM for the same problem size
// and processor count, attributing the Sequent's disadvantage to its small
// write-through caches: during each merge phase half the data is already in
// the merging processor's local memory and each coherent page fault
// prefetches a page of the linear scan, while the Sequent re-fetches
// everything over the shared bus.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/mergesort.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT

size_t ElementCount() {
  return static_cast<size_t>(
      bench::EnvInt("PLATINUM_SORT_COUNT", bench::FullScale() ? 1 << 18 : 1 << 15));
}

apps::SortConfig ConfigFor(int processors) {
  apps::SortConfig config;
  config.count = ElementCount();
  config.processors = processors;
  config.verify = config.count <= (1 << 15);
  return config;
}

sim::SimTime RunPlatinum(int processors) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  return RunMergeSortPlatinum(kernel, ConfigFor(processors)).sort_ns;
}

sim::SimTime RunSequent(int processors) {
  uma::UmaParams params;
  params.num_processors = 16;
  uma::UmaMachine machine(params);
  return RunMergeSortUma(machine, ConfigFor(processors)).sort_ns;
}

void BM_MergeSortPlatinum(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(RunPlatinum(static_cast<int>(state.range(0))));
  }
}
void BM_MergeSortSequent(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_s"] = sim::ToSeconds(RunSequent(static_cast<int>(state.range(0))));
  }
}

BENCHMARK(BM_MergeSortPlatinum)->Arg(1)->Arg(16)->Iterations(1);
BENCHMARK(BM_MergeSortSequent)->Arg(1)->Arg(16)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  bench::SpeedupTable table(
      "Figure 5: merge sort (" + std::to_string(ElementCount()) + " elements)",
      {"PLATINUM", "Sequent-UMA"});
  for (int p : {1, 2, 4, 8, 16}) {
    table.AddRow(p, {RunPlatinum(p), RunSequent(p)});
  }
  table.Print();
  bench::MaybeWriteJson(table, "fig5_mergesort");
  bench::PrintPaperNote(
      "the program shows better speedup on the Butterfly Plus under PLATINUM "
      "than on the Sequent Symmetry for the same problem size and processor "
      "count (tree merge sort has modest maximum speedup by construction).");
  return 0;
}
