// Figure 6: recurrent backpropagation simulator speedup.
//
// A three-layer network (40 units, 16 input/output pairs of the classic
// encoder problem), parallelized by for-loop parallelization on units with
// no synchronization beyond word atomicity. The coherent memory system
// quickly gives up and freezes the shared data pages, so the curve is
// roughly linear but each additional processor contributes only a fraction
// of an all-local processor (the paper says about one half).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/neural.h"
#include "src/kernel/kernel.h"
#include "src/kernel/report.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT

apps::NeuralConfig ConfigFor(int processors) {
  apps::NeuralConfig config;
  config.processors = processors;
  config.epochs = bench::EnvInt("PLATINUM_NEURAL_EPOCHS", bench::FullScale() ? 16 : 6);
  return config;
}

struct RunOutput {
  sim::SimTime time;
  uint32_t pages_frozen;
};

RunOutput Run(int processors) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  apps::NeuralResult result = RunNeuralPlatinum(kernel, ConfigFor(processors));
  kernel::MemoryReport report = BuildMemoryReport(kernel);
  return RunOutput{result.train_ns, report.pages_ever_frozen};
}

void BM_NeuralPlatinum(benchmark::State& state) {
  for (auto _ : state) {
    RunOutput out = Run(static_cast<int>(state.range(0)));
    state.counters["sim_s"] = sim::ToSeconds(out.time);
    state.counters["pages_frozen"] = out.pages_frozen;
  }
}

BENCHMARK(BM_NeuralPlatinum)->Arg(1)->Arg(16)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Figure 6: recurrent backpropagation simulator ===\n");
  std::printf("%5s %12s %8s %14s %13s\n", "procs", "train (s)", "speedup", "incr. speedup",
              "pages frozen");
  double base = 0;
  double previous = 0;
  for (int p : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    RunOutput out = Run(p);
    double t = sim::ToSeconds(out.time);
    if (p == 1) {
      base = t;
      previous = 1.0;
    }
    double speedup = base / t;
    std::printf("%5d %12.3f %8.2f %14.2f %13u\n", p, t, speedup, speedup - previous,
                out.pages_frozen);
    previous = speedup;
  }
  bench::PrintPaperNote(
      "speedup is linear over the range measured, but the extensive use of "
      "remote accesses limits the contribution of each incremental processor "
      "to about 1/2 that of a processor making only local references; the "
      "application's shared data pages are frozen in place.");
  return 0;
}
