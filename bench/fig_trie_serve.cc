// Figure-1-style speedup curves for the serving workload (docs/WORKLOADS.md).
//
// The paper's Figure 1 plots application speedup against machine size; this
// bench extends the scenario family to the serving trie: a fixed volume of
// Zipf-distributed lookups with owner-sharded insert/erase churn, served by
// 16/32/64 nodes. Two tables:
//   * directory vs. tardis — the protocol trade on a pointer-chasing,
//     fine-grain workload (contrast with abl_protocol's dense apps);
//   * replication policies — where the paper's replicate-vs-freeze decision
//     earns its keep: read-mostly interior nodes want replication, hot
//     leaves under write sharing must freeze instead of thrash.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trie_bench.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

const int kProcCounts[] = {16, 32, 64};
constexpr int kNumProcCounts = 3;

const char* kProtocols[] = {"directory", "tardis"};
constexpr int kNumProtocols = 2;

const char* kPolicies[] = {"timestamp", "always", "never", "migrate-then-freeze"};
constexpr int kNumPolicies = 4;

void BM_TrieServe(benchmark::State& state) {
  for (auto _ : state) {
    bench::TrieCell cell;
    cell.procs = 16;
    state.counters["serve_s"] = sim::ToSeconds(RunTrieCell(cell));
  }
}
BENCHMARK(BM_TrieServe)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Serving trie at 16/32/64 nodes ===\n");
  // One flat grid so every cell shards across SweepRunner workers: first the
  // protocol comparison (timestamp policy), then the policy sweep (directory
  // protocol).
  std::vector<bench::TrieCell> cells;
  for (int protocol = 0; protocol < kNumProtocols; ++protocol) {
    for (int procs = 0; procs < kNumProcCounts; ++procs) {
      bench::TrieCell cell;
      cell.protocol = kProtocols[protocol];
      cell.procs = kProcCounts[procs];
      cells.push_back(cell);
    }
  }
  const size_t policy_base = cells.size();
  for (int policy = 0; policy < kNumPolicies; ++policy) {
    for (int procs = 0; procs < kNumProcCounts; ++procs) {
      bench::TrieCell cell;
      cell.policy = kPolicies[policy];
      cell.procs = kProcCounts[procs];
      cells.push_back(cell);
    }
  }

  bench::SweepRunner runner;
  std::vector<SimTime> times = runner.Map(
      static_cast<int>(cells.size()),
      [&](int i) -> SimTime { return RunTrieCell(cells[static_cast<size_t>(i)]); });

  bench::SpeedupTable protocol_table("trie-serve: directory vs. tardis",
                                     {"directory", "tardis"});
  for (int procs = 0; procs < kNumProcCounts; ++procs) {
    protocol_table.AddRow(kProcCounts[procs],
                          {times[static_cast<size_t>(procs)],
                           times[static_cast<size_t>(kNumProcCounts + procs)]});
  }
  protocol_table.Print();
  bench::MaybeWriteJson(protocol_table, "fig_trie_serve_protocol");

  bench::SpeedupTable policy_table(
      "trie-serve: replication policies (directory)",
      {"timestamp", "always", "never", "migrate-then-freeze"});
  for (int procs = 0; procs < kNumProcCounts; ++procs) {
    std::vector<SimTime> row;
    for (int policy = 0; policy < kNumPolicies; ++policy) {
      row.push_back(
          times[policy_base + static_cast<size_t>(policy * kNumProcCounts + procs)]);
    }
    policy_table.AddRow(kProcCounts[procs], row);
  }
  policy_table.Print();
  bench::MaybeWriteJson(policy_table, "fig_trie_serve_policy");

  bench::PrintPaperNote(
      "the serving trie is the workload where replication policy earns its "
      "keep: interior nodes are read by every lookup and written only during "
      "structural growth, so the timestamp policy replicates them, while hot "
      "leaves are rewritten under concurrent readers and freeze. "
      "always-cache thrashes on the hot leaves (invalidation storms), "
      "never-cache serves every interior hop remotely; the adaptive policies "
      "should dominate both at every machine size.");
  bench::RunMetrics::Print();
  return 0;
}
