// Section 4: the measured cost of basic coherent-memory operations.
//
// The paper reports (16-processor Butterfly Plus, 4 KB pages):
//   * page copy (block transfer): 1.11 ms;
//   * read miss replicating a non-modified page: 1.34-1.38 ms (local vs
//     remote kernel data structures);
//   * read miss replicating a modified page, one processor interrupted:
//     1.38-1.59 ms;
//   * write miss on a present+ page, one processor interrupted, one page
//     freed: 0.25-0.45 ms;
//   * incremental cost per additional interrupted processor: <= 17 us
//     (~7 us interrupt + ~10 us page free), vs 55 us per processor for the
//     Mach shootdown on an Encore Multimax.
// Every number here is measured by running the real fault-handler code on
// the simulated machine, not computed from the constants.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/kernel.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::kMillisecond;
using sim::SimTime;

struct Measurement {
  const char* name;
  double measured_ms;
  const char* paper;
};

std::vector<Measurement> g_rows;

// Builds a fresh 16-node system, runs `scenario` and returns the virtual
// duration it reports.
SimTime Measure(const std::function<SimTime(kernel::Kernel&, vm::AddressSpace*,
                                            rt::ZoneAllocator&)>& scenario) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("bench");
  rt::ZoneAllocator zone(&kernel, space);
  SimTime result = 0;
  kernel.SpawnThread(space, 0, "driver", [&] { result = scenario(kernel, space, zone); });
  kernel.Run();
  return result;
}

// Time for one page copy through the block-transfer engine.
SimTime PageCopy() {
  return Measure([](kernel::Kernel& kernel, vm::AddressSpace*, rt::ZoneAllocator& zone) {
    auto arr = rt::SharedArray<uint32_t>::Create(zone, "p", 4);
    arr.Get(0);  // place one copy on node 0
    SimTime duration = 0;
    rt::RunOnProcessors(kernel, zone.space(), 2, "copy", [&](int pid) {
      if (pid == 1) {
        SimTime t0 = kernel.Now();
        kernel.machine().BlockTransferPage(0, 0, 1, 0);
        duration = kernel.Now() - t0;
      }
    });
    return duration;
  });
}

// Read miss that replicates a non-modified page. `home` chooses where the
// Cpage's kernel structures live relative to the faulting processor 1.
SimTime ReadMissNonModified(int home) {
  return Measure([home](kernel::Kernel& kernel, vm::AddressSpace* space,
                        rt::ZoneAllocator&) -> SimTime {
    rt::ZoneAllocator zone(&kernel, space);
    uint32_t va = zone.AllocWords("page", 1, hw::Rights::kReadWrite, home);
    kernel.ReadWord(space, va);  // present1 on node 0, thread exits ATC etc.
    SimTime duration = 0;
    rt::RunOnProcessors(kernel, space, 2, "reader", [&](int pid) {
      if (pid == 1) {
        SimTime t0 = kernel.Now();
        kernel.ReadWord(space, va);
        duration = kernel.Now() - t0;
      }
    });
    return duration;
  });
}

// Read miss replicating a modified page whose writer must be interrupted.
SimTime ReadMissModified() {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("bench");
  rt::ZoneAllocator zone(&kernel, space);
  uint32_t va = zone.AllocWords("page", 1, hw::Rights::kReadWrite, /*home=*/1);
  SimTime duration = 0;
  // Writer keeps the space active on node 0 while the reader faults.
  kernel.SpawnThread(space, 0, "writer", [&] {
    kernel.WriteWord(space, va, 1);
    machine.scheduler().Sleep(20 * kMillisecond);
  });
  kernel.SpawnThread(space, 1, "reader", [&] {
    machine.scheduler().Sleep(5 * kMillisecond);
    SimTime t0 = kernel.Now();
    kernel.ReadWord(space, va);
    duration = kernel.Now() - t0;
  });
  kernel.Run();
  return duration;
}

// Write miss on a present+ page: `replicas` processors hold read-mapped
// copies and stay active; the writer (who already has a local copy) must
// invalidate them all. Returns the writer's fault latency.
SimTime WriteMissPresentPlus(int replicas) {
  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("bench");
  rt::ZoneAllocator zone(&kernel, space);
  uint32_t va = zone.AllocWords("page", 1, hw::Rights::kReadWrite, /*home=*/0);
  SimTime duration = 0;
  kernel.SpawnThread(space, 0, "owner", [&] {
    kernel.WriteWord(space, va, 1);
    machine.scheduler().Sleep(40 * kMillisecond);
    SimTime t0 = kernel.Now();
    kernel.WriteWord(space, va, 2);
    duration = kernel.Now() - t0;
  });
  for (int r = 1; r <= replicas; ++r) {
    kernel.SpawnThread(space, r, "replica", [&, r] {
      machine.scheduler().Sleep(static_cast<SimTime>(r) * kMillisecond);
      kernel.ReadWord(space, va);
      machine.scheduler().Sleep(60 * kMillisecond);  // stay active
    });
  }
  kernel.Run();
  return duration;
}

void BM_PageCopy(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_ms"] = sim::ToMilliseconds(PageCopy());
  }
}
void BM_ReadMissNonModified(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_ms"] =
        sim::ToMilliseconds(ReadMissNonModified(static_cast<int>(state.range(0))));
  }
}
void BM_ReadMissModified(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_ms"] = sim::ToMilliseconds(ReadMissModified());
  }
}
void BM_WriteMissPresentPlus(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_ms"] =
        sim::ToMilliseconds(WriteMissPresentPlus(static_cast<int>(state.range(0))));
  }
}

BENCHMARK(BM_PageCopy)->Iterations(1);
BENCHMARK(BM_ReadMissNonModified)->Arg(1)->Arg(5)->Iterations(1);
BENCHMARK(BM_ReadMissModified)->Iterations(1);
BENCHMARK(BM_WriteMissPresentPlus)->DenseRange(1, 15, 7)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Section 4: basic operation costs ===\n");
  g_rows.push_back({"page copy (block transfer)", sim::ToMilliseconds(PageCopy()), "1.11 ms"});
  g_rows.push_back({"read miss, non-modified page, local Cpage structures",
                    sim::ToMilliseconds(ReadMissNonModified(/*home=*/1)), "1.34 ms"});
  g_rows.push_back({"read miss, non-modified page, remote Cpage structures",
                    sim::ToMilliseconds(ReadMissNonModified(/*home=*/5)), "1.38 ms"});
  g_rows.push_back({"read miss, modified page, one processor interrupted",
                    sim::ToMilliseconds(ReadMissModified()), "1.38-1.59 ms"});
  g_rows.push_back({"write miss, present+, 1 interrupt + 1 page freed",
                    sim::ToMilliseconds(WriteMissPresentPlus(1)), "0.25-0.45 ms"});
  for (const Measurement& m : g_rows) {
    std::printf("%-55s %8.3f ms   (paper: %s)\n", m.name, m.measured_ms, m.paper);
  }

  std::printf("\n--- incremental cost per interrupted processor ---\n");
  double previous = 0;
  for (int k = 1; k <= 15; ++k) {
    double ms = sim::ToMilliseconds(WriteMissPresentPlus(k));
    if (k > 1) {
      std::printf("processors %2d -> %2d: incremental %6.1f us\n", k - 1, k,
                  (ms - previous) * 1000.0 / 1.0);
    }
    previous = ms;
  }
  bench::PrintPaperNote(
      "incremental delay per additional interrupted processor is no more than "
      "17 us (about 7 us interrupt + 10 us page free); Mach's shootdown costs "
      "55 us per processor on a 16-processor Encore Multimax.");
  return 0;
}
