// Table 1: when does it pay to migrate a page?
//
// Section 4.1 derives inequality (2): with reference density rho and data
// movement ratio g(p), migration always pays once the page size (in words)
// exceeds S_min = g*F / (rho*(Tr-Tl) - g*Tb). The paper evaluates it as
// s > 107*g / (rho - 0.24*g) and tabulates S_min for rho in {0.17..2.0} and
// g in {0.5, 1, 2}.
//
// This bench (a) recomputes the analytic table from the simulator's actual
// constants next to the paper's values, and (b) *empirically* validates the
// predicted crossover: for selected (rho, g) cells it runs the critical-
// section workload of Section 4.1 on machines with different page sizes,
// under an always-migrate policy and a never-migrate (remote-access) policy,
// and reports which wins.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/kernel.h"
#include "src/mem/policy.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"

namespace {

using namespace platinum;  // NOLINT
using sim::SimTime;

// Fixed overhead F of one migration in our implementation (fault + shootdown
// setup + one processor interrupted + one page freed), matching the paper's
// "about 0.48 ms".
double MigrationFixedOverheadNs(const sim::MachineParams& params) {
  return static_cast<double>(params.fault_fixed_ns + params.shootdown_setup_ns +
                             params.shootdown_per_processor_ns + params.page_free_ns);
}

// Analytic S_min in words; negative means "never pays".
double AnalyticSmin(const sim::MachineParams& params, double rho, double g) {
  double saving_per_word = static_cast<double>(params.remote_read_ns - params.local_read_ns);
  double denominator = rho * saving_per_word - g * static_cast<double>(params.block_copy_word_ns);
  if (denominator <= 0) {
    return -1;
  }
  return g * MigrationFixedOverheadNs(params) / denominator;
}

// Runs the Section 4.1 workload: two processors take turns performing the
// operation f (rho * s references over one page of s words), `consecutive`
// operations per turn (g = 2 / consecutive), handing off through ports so
// the handoff cost is identical under both policies. Returns total virtual
// time for `rounds` handoffs.
SimTime RunWorkload(uint32_t page_bytes, double rho, int consecutive, bool migrate,
                    int rounds = 24) {
  sim::MachineParams params = sim::ButterflyPlusParams(4);
  params.page_size_bytes = page_bytes;
  sim::Machine machine(params);
  kernel::KernelOptions options;
  if (migrate) {
    options.policy = std::make_unique<mem::AlwaysCachePolicy>();
  } else {
    options.policy = std::make_unique<mem::NeverCachePolicy>();
  }
  kernel::Kernel kernel(&machine, std::move(options));
  auto* space = kernel.CreateAddressSpace("t1");
  rt::ZoneAllocator zone(&kernel, space);
  uint32_t s_words = page_bytes / 4;
  auto page = rt::SharedArray<uint32_t>::Create(zone, "x", s_words);
  auto* port_a = kernel.CreatePort("a");
  auto* port_b = kernel.CreatePort("b");

  auto operation = [&](int salt) {
    // r = rho * s references: one write (the critical-section update that
    // makes the page move under the migrating policy, first so the fault
    // happens up front) followed by reads spread over the page. The analytic
    // model prices references at the remote *read* latency, so the workload
    // is read-dominated to match.
    auto r = static_cast<uint32_t>(rho * static_cast<double>(s_words));
    page.Set(static_cast<uint32_t>(salt) % s_words, static_cast<uint32_t>(salt));
    for (uint32_t i = 1; i < r; ++i) {
      uint32_t index = (i * 2654435761u + static_cast<uint32_t>(salt)) % s_words;
      benchmark::DoNotOptimize(page.Get(index));
    }
  };

  SimTime elapsed = 0;
  std::vector<uint32_t> token{1};
  kernel.SpawnThread(space, 0, "A", [&] {
    SimTime t0 = kernel.Now();
    for (int round = 0; round < rounds; ++round) {
      for (int k = 0; k < consecutive; ++k) {
        operation(round);
      }
      kernel.Send(port_b, token);
      kernel.Receive(port_a);
    }
    elapsed = kernel.Now() - t0;
  });
  kernel.SpawnThread(space, 1, "B", [&] {
    for (int round = 0; round < rounds; ++round) {
      kernel.Receive(port_b);
      for (int k = 0; k < consecutive; ++k) {
        operation(round);
      }
      kernel.Send(port_a, token);
    }
  });
  kernel.Run();
  return elapsed;
}

// The third option of Section 4.1: co-locate the operation with the data by
// remote procedure call (the Emerald-style choice the paper sets aside). A
// server thread on the data's node executes f on behalf of the clients; the
// data never moves and every access in f is local.
SimTime RunWorkloadRpc(uint32_t page_bytes, double rho, int consecutive, int rounds = 24) {
  sim::MachineParams params = sim::ButterflyPlusParams(4);
  params.page_size_bytes = page_bytes;
  sim::Machine machine(params);
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("t1rpc");
  rt::ZoneAllocator zone(&kernel, space);
  uint32_t s_words = page_bytes / 4;
  auto page = rt::SharedArray<uint32_t>::Create(zone, "x", s_words);
  kernel::Port* server_port = kernel.CreatePort("server");
  kernel::Port* reply_port = kernel.CreatePort("reply");
  kernel::Port* port_a = kernel.CreatePort("a");
  kernel::Port* port_b = kernel.CreatePort("b");

  const int total_ops = rounds * consecutive * 2;
  // Server on node 2 owns the data; all its accesses are local.
  kernel.SpawnThread(space, 2, "server", [&] {
    for (int op = 0; op < total_ops; ++op) {
      std::vector<uint32_t> request = kernel.Receive(server_port);
      uint32_t salt = request[0];
      auto r = static_cast<uint32_t>(rho * static_cast<double>(s_words));
      page.Set(salt % s_words, salt);
      for (uint32_t i = 1; i < r; ++i) {
        benchmark::DoNotOptimize(page.Get((i * 2654435761u + salt) % s_words));
      }
      std::vector<uint32_t> reply{1};
      kernel.Send(reply_port, reply);
    }
  });

  SimTime elapsed = 0;
  std::vector<uint32_t> token{1};
  auto client = [&](kernel::Port* my_port, kernel::Port* peer_port, bool first) {
    if (first) {
      SimTime t0 = kernel.Now();
      for (int round = 0; round < rounds; ++round) {
        for (int k = 0; k < consecutive; ++k) {
          std::vector<uint32_t> request{static_cast<uint32_t>(round * 131 + k)};
          kernel.Send(server_port, request);
          kernel.Receive(reply_port);
        }
        kernel.Send(peer_port, token);
        kernel.Receive(my_port);
      }
      elapsed = kernel.Now() - t0;
    } else {
      for (int round = 0; round < rounds; ++round) {
        kernel.Receive(my_port);
        for (int k = 0; k < consecutive; ++k) {
          std::vector<uint32_t> request{static_cast<uint32_t>(round * 977 + k)};
          kernel.Send(server_port, request);
          kernel.Receive(reply_port);
        }
        kernel.Send(peer_port, token);
      }
    }
  };
  kernel.SpawnThread(space, 0, "A", [&] { client(port_a, port_b, true); });
  kernel.SpawnThread(space, 1, "B", [&] { client(port_b, port_a, false); });
  kernel.Run();
  return elapsed;
}

void BM_Workload(benchmark::State& state) {
  bool migrate = state.range(0) != 0;
  for (auto _ : state) {
    state.counters["sim_ms"] =
        sim::ToMilliseconds(RunWorkload(4096, /*rho=*/1.0, /*consecutive=*/2, migrate));
  }
}
BENCHMARK(BM_Workload)->Arg(0)->Arg(1)->Iterations(1);

struct PaperCell {
  double rho;
  const char* g_half;
  const char* g_one;
  const char* g_two;
};

const PaperCell kPaperTable[] = {
    {0.17, "1070", "never", "never"}, {0.24, "445", "never", "never"},
    {0.35, "232", "973", "never"},    {0.48, "149", "435", "never"},
    {0.60, "111", "298", "1784"},     {0.75, "85", "210", "793"},
    {1.0, "61", "141", "412"},        {1.5, "39", "84", "210"},
    {2.0, "28", "61", "141"},
};

void PrintCell(double smin) {
  if (smin < 0) {
    std::printf(" %8s", "never");
  } else {
    std::printf(" %8.0f", std::ceil(smin));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  sim::MachineParams params = sim::ButterflyPlusParams(4);
  std::printf("\n=== Table 1: minimum page size S_min (words) for migration to pay ===\n");
  std::printf("(ours = from the simulator's constants; paper values in parentheses)\n");
  std::printf("%5s | %8s %10s | %8s %10s | %8s %10s\n", "rho", "g=0.5", "(paper)", "g=1",
              "(paper)", "g=2", "(paper)");
  for (const PaperCell& cell : kPaperTable) {
    std::printf("%5.2f |", cell.rho);
    PrintCell(AnalyticSmin(params, cell.rho, 0.5));
    std::printf(" %10s |", cell.g_half);
    PrintCell(AnalyticSmin(params, cell.rho, 1.0));
    std::printf(" %10s |", cell.g_one);
    PrintCell(AnalyticSmin(params, cell.rho, 2.0));
    std::printf(" %10s\n", cell.g_two);
  }

  std::printf("\n--- empirical validation: measured winner vs. prediction ---\n");
  std::printf("workload: two processors, alternating critical sections (Section 4.1)\n");
  struct Case {
    double rho;
    int consecutive;  // g = 2 / consecutive
  };
  for (const Case& c : {Case{1.0, 1}, Case{1.0, 2}, Case{2.0, 1}, Case{0.5, 2}}) {
    double g = 2.0 / c.consecutive;
    double smin = AnalyticSmin(params, c.rho, g);
    for (uint32_t page_bytes : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
      uint32_t s = page_bytes / 4;
      SimTime migrate_t = RunWorkload(page_bytes, c.rho, c.consecutive, /*migrate=*/true);
      SimTime remote_t = RunWorkload(page_bytes, c.rho, c.consecutive, /*migrate=*/false);
      SimTime rpc_t = RunWorkloadRpc(page_bytes, c.rho, c.consecutive);
      const char* winner = migrate_t < remote_t ? "migrate" : "remote";
      const char* predicted = (smin >= 0 && s > smin) ? "migrate" : "remote";
      std::printf(
          "rho=%.2f g=%.1f s=%5u words: migrate %8.2f ms, remote %8.2f ms, rpc %8.2f ms "
          "-> %-7s (predicted %-7s, S_min=%.0f) %s\n",
          c.rho, g, s, sim::ToMilliseconds(migrate_t), sim::ToMilliseconds(remote_t),
          sim::ToMilliseconds(rpc_t), winner, predicted, smin,
          winner == predicted ? "" : "  [off]");
    }
  }
  bench::PrintPaperNote(
      "S_min = 107*g / (rho - 0.24*g): the block-transfer-to-remote-saving "
      "ratio Tb/(Tr-Tl) bounds the minimum density, and the fixed overhead "
      "bounds the minimum economical page size. The rpc column is the third "
      "option of Section 4.1 (co-locate the operation by remote procedure "
      "call, as Emerald would): its cost is a constant per operation, so it "
      "wins over migration for very large pages and loses to everything for "
      "small, dense ones.");
  return 0;
}
