// Shared grid-cell helper for the serving-workload benches
// (fig_trie_serve, abl_lease): one independent machine per cell running the
// trie workload under a chosen protocol / replication policy / lease
// configuration, returning the simulated serve-phase duration.
#ifndef BENCH_TRIE_BENCH_H_
#define BENCH_TRIE_BENCH_H_

#include <memory>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "src/kernel/kernel.h"
#include "src/load/driver.h"
#include "src/mem/policy.h"
#include "src/sim/machine.h"

namespace platinum::bench {

struct TrieCell {
  const char* protocol = "directory";
  const char* policy = "timestamp";
  sim::SimTime lease_ns = 0;  // 0 = the tardis protocol's default lease
  const char* lease_policy = "fixed";
  int procs = 16;
};

inline std::unique_ptr<mem::ReplicationPolicy> MakeTriePolicy(const std::string& name) {
  if (name == "timestamp") {
    return std::make_unique<mem::TimestampPolicy>(10 * sim::kMillisecond);
  }
  if (name == "always") {
    return std::make_unique<mem::AlwaysCachePolicy>();
  }
  if (name == "never") {
    return std::make_unique<mem::NeverCachePolicy>();
  }
  if (name == "migrate-then-freeze") {
    return std::make_unique<mem::MigrateThenFreezePolicy>(3);
  }
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::abort();
}

// The workload every cell runs: sized by the PLATINUM_TRIE_* knobs, fixed
// total request volume (so more nodes serving the same traffic is the
// Figure-1 speedup question), contents verified against the reference
// replay on every cell.
inline sim::SimTime RunTrieCell(const TrieCell& cell) {
  sim::Machine machine(sim::ButterflyPlusParams(cell.procs));
  kernel::KernelOptions options;
  options.protocol = cell.protocol;
  options.policy = MakeTriePolicy(cell.policy);
  options.tardis_lease_ns = cell.lease_ns;
  options.tardis_lease_policy = cell.lease_policy;
  kernel::Kernel kernel(&machine, std::move(options));

  load::DriverConfig config;
  config.spec.keys =
      static_cast<uint32_t>(EnvInt("PLATINUM_TRIE_KEYS", 1 << 14));
  config.spec.ops = static_cast<uint64_t>(
      EnvInt("PLATINUM_TRIE_OPS", FullScale() ? 2000000 : 200000));
  config.procs = cell.procs;
  load::ServeResult result = load::RunTrieServe(kernel, config);
  RunMetrics::Count(machine);
  return result.serve_ns;
}

}  // namespace platinum::bench

#endif  // BENCH_TRIE_BENCH_H_
