file(REMOVE_RECURSE
  "CMakeFiles/abl_advice.dir/abl_advice.cc.o"
  "CMakeFiles/abl_advice.dir/abl_advice.cc.o.d"
  "abl_advice"
  "abl_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
