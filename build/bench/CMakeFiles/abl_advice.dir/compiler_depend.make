# Empty compiler generated dependencies file for abl_advice.
# This may be replaced when dependencies are built.
