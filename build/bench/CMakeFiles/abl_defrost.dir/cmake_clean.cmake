file(REMOVE_RECURSE
  "CMakeFiles/abl_defrost.dir/abl_defrost.cc.o"
  "CMakeFiles/abl_defrost.dir/abl_defrost.cc.o.d"
  "abl_defrost"
  "abl_defrost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_defrost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
