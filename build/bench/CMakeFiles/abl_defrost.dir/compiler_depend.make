# Empty compiler generated dependencies file for abl_defrost.
# This may be replaced when dependencies are built.
