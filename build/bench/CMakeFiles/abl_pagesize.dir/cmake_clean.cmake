file(REMOVE_RECURSE
  "CMakeFiles/abl_pagesize.dir/abl_pagesize.cc.o"
  "CMakeFiles/abl_pagesize.dir/abl_pagesize.cc.o.d"
  "abl_pagesize"
  "abl_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
