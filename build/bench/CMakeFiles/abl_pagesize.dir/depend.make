# Empty dependencies file for abl_pagesize.
# This may be replaced when dependencies are built.
