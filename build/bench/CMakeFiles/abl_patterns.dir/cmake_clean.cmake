file(REMOVE_RECURSE
  "CMakeFiles/abl_patterns.dir/abl_patterns.cc.o"
  "CMakeFiles/abl_patterns.dir/abl_patterns.cc.o.d"
  "abl_patterns"
  "abl_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
