# Empty dependencies file for abl_patterns.
# This may be replaced when dependencies are built.
