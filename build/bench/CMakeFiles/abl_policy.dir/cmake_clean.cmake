file(REMOVE_RECURSE
  "CMakeFiles/abl_policy.dir/abl_policy.cc.o"
  "CMakeFiles/abl_policy.dir/abl_policy.cc.o.d"
  "abl_policy"
  "abl_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
