file(REMOVE_RECURSE
  "CMakeFiles/abl_t1_sweep.dir/abl_t1_sweep.cc.o"
  "CMakeFiles/abl_t1_sweep.dir/abl_t1_sweep.cc.o.d"
  "abl_t1_sweep"
  "abl_t1_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_t1_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
