# Empty compiler generated dependencies file for abl_t1_sweep.
# This may be replaced when dependencies are built.
