file(REMOVE_RECURSE
  "CMakeFiles/fig1_gauss.dir/fig1_gauss.cc.o"
  "CMakeFiles/fig1_gauss.dir/fig1_gauss.cc.o.d"
  "fig1_gauss"
  "fig1_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
