# Empty compiler generated dependencies file for fig1_gauss.
# This may be replaced when dependencies are built.
