file(REMOVE_RECURSE
  "CMakeFiles/fig5_mergesort.dir/fig5_mergesort.cc.o"
  "CMakeFiles/fig5_mergesort.dir/fig5_mergesort.cc.o.d"
  "fig5_mergesort"
  "fig5_mergesort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mergesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
