# Empty dependencies file for fig5_mergesort.
# This may be replaced when dependencies are built.
