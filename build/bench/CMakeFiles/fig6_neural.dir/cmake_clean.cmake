file(REMOVE_RECURSE
  "CMakeFiles/fig6_neural.dir/fig6_neural.cc.o"
  "CMakeFiles/fig6_neural.dir/fig6_neural.cc.o.d"
  "fig6_neural"
  "fig6_neural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_neural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
