# Empty compiler generated dependencies file for fig6_neural.
# This may be replaced when dependencies are built.
