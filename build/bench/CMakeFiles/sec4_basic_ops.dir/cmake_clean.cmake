file(REMOVE_RECURSE
  "CMakeFiles/sec4_basic_ops.dir/sec4_basic_ops.cc.o"
  "CMakeFiles/sec4_basic_ops.dir/sec4_basic_ops.cc.o.d"
  "sec4_basic_ops"
  "sec4_basic_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_basic_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
