# Empty compiler generated dependencies file for sec4_basic_ops.
# This may be replaced when dependencies are built.
