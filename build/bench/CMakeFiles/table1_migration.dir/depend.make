# Empty dependencies file for table1_migration.
# This may be replaced when dependencies are built.
