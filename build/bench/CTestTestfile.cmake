# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig1_gauss "/root/repo/build/bench/fig1_gauss" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_fig1_gauss PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table1_migration "/root/repo/build/bench/table1_migration" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_table1_migration PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sec4_basic_ops "/root/repo/build/bench/sec4_basic_ops" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_sec4_basic_ops PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5_mergesort "/root/repo/build/bench/fig5_mergesort" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_fig5_mergesort PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6_neural "/root/repo/build/bench/fig6_neural" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_fig6_neural PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_t1_sweep "/root/repo/build/bench/abl_t1_sweep" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_abl_t1_sweep PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_defrost "/root/repo/build/bench/abl_defrost" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_abl_defrost PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_policy "/root/repo/build/bench/abl_policy" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_abl_policy PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_pagesize "/root/repo/build/bench/abl_pagesize" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_abl_pagesize PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_patterns "/root/repo/build/bench/abl_patterns" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_abl_patterns PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_advice "/root/repo/build/bench/abl_advice" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_abl_advice PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_scalability "/root/repo/build/bench/abl_scalability" "--benchmark_filter=NONE")
set_tests_properties(bench_smoke_abl_scalability PROPERTIES  ENVIRONMENT "PLATINUM_GAUSS_N=48;PLATINUM_SORT_COUNT=4096;PLATINUM_NEURAL_EPOCHS=2" LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
