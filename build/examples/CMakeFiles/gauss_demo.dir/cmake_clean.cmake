file(REMOVE_RECURSE
  "CMakeFiles/gauss_demo.dir/gauss_demo.cpp.o"
  "CMakeFiles/gauss_demo.dir/gauss_demo.cpp.o.d"
  "gauss_demo"
  "gauss_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
