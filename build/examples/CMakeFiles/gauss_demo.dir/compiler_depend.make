# Empty compiler generated dependencies file for gauss_demo.
# This may be replaced when dependencies are built.
