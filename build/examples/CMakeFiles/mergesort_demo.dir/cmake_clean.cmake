file(REMOVE_RECURSE
  "CMakeFiles/mergesort_demo.dir/mergesort_demo.cpp.o"
  "CMakeFiles/mergesort_demo.dir/mergesort_demo.cpp.o.d"
  "mergesort_demo"
  "mergesort_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mergesort_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
