# Empty compiler generated dependencies file for mergesort_demo.
# This may be replaced when dependencies are built.
