file(REMOVE_RECURSE
  "CMakeFiles/neural_demo.dir/neural_demo.cpp.o"
  "CMakeFiles/neural_demo.dir/neural_demo.cpp.o.d"
  "neural_demo"
  "neural_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
