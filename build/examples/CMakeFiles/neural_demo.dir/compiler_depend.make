# Empty compiler generated dependencies file for neural_demo.
# This may be replaced when dependencies are built.
