file(REMOVE_RECURSE
  "CMakeFiles/platsim.dir/platsim.cpp.o"
  "CMakeFiles/platsim.dir/platsim.cpp.o.d"
  "platsim"
  "platsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
