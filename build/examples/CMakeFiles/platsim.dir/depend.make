# Empty dependencies file for platsim.
# This may be replaced when dependencies are built.
