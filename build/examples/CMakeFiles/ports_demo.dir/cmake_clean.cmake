file(REMOVE_RECURSE
  "CMakeFiles/ports_demo.dir/ports_demo.cpp.o"
  "CMakeFiles/ports_demo.dir/ports_demo.cpp.o.d"
  "ports_demo"
  "ports_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ports_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
