# Empty dependencies file for ports_demo.
# This may be replaced when dependencies are built.
