
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gauss.cc" "src/CMakeFiles/platinum.dir/apps/gauss.cc.o" "gcc" "src/CMakeFiles/platinum.dir/apps/gauss.cc.o.d"
  "/root/repo/src/apps/mergesort.cc" "src/CMakeFiles/platinum.dir/apps/mergesort.cc.o" "gcc" "src/CMakeFiles/platinum.dir/apps/mergesort.cc.o.d"
  "/root/repo/src/apps/neural.cc" "src/CMakeFiles/platinum.dir/apps/neural.cc.o" "gcc" "src/CMakeFiles/platinum.dir/apps/neural.cc.o.d"
  "/root/repo/src/apps/patterns.cc" "src/CMakeFiles/platinum.dir/apps/patterns.cc.o" "gcc" "src/CMakeFiles/platinum.dir/apps/patterns.cc.o.d"
  "/root/repo/src/apps/workloads.cc" "src/CMakeFiles/platinum.dir/apps/workloads.cc.o" "gcc" "src/CMakeFiles/platinum.dir/apps/workloads.cc.o.d"
  "/root/repo/src/base/check.cc" "src/CMakeFiles/platinum.dir/base/check.cc.o" "gcc" "src/CMakeFiles/platinum.dir/base/check.cc.o.d"
  "/root/repo/src/baseline/raw_memory.cc" "src/CMakeFiles/platinum.dir/baseline/raw_memory.cc.o" "gcc" "src/CMakeFiles/platinum.dir/baseline/raw_memory.cc.o.d"
  "/root/repo/src/hw/atc.cc" "src/CMakeFiles/platinum.dir/hw/atc.cc.o" "gcc" "src/CMakeFiles/platinum.dir/hw/atc.cc.o.d"
  "/root/repo/src/hw/pmap.cc" "src/CMakeFiles/platinum.dir/hw/pmap.cc.o" "gcc" "src/CMakeFiles/platinum.dir/hw/pmap.cc.o.d"
  "/root/repo/src/hw/processor.cc" "src/CMakeFiles/platinum.dir/hw/processor.cc.o" "gcc" "src/CMakeFiles/platinum.dir/hw/processor.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/platinum.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/platinum.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/report.cc" "src/CMakeFiles/platinum.dir/kernel/report.cc.o" "gcc" "src/CMakeFiles/platinum.dir/kernel/report.cc.o.d"
  "/root/repo/src/kernel/thread.cc" "src/CMakeFiles/platinum.dir/kernel/thread.cc.o" "gcc" "src/CMakeFiles/platinum.dir/kernel/thread.cc.o.d"
  "/root/repo/src/mem/advice.cc" "src/CMakeFiles/platinum.dir/mem/advice.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/advice.cc.o.d"
  "/root/repo/src/mem/cmap.cc" "src/CMakeFiles/platinum.dir/mem/cmap.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/cmap.cc.o.d"
  "/root/repo/src/mem/coherent_memory.cc" "src/CMakeFiles/platinum.dir/mem/coherent_memory.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/coherent_memory.cc.o.d"
  "/root/repo/src/mem/cpage.cc" "src/CMakeFiles/platinum.dir/mem/cpage.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/cpage.cc.o.d"
  "/root/repo/src/mem/defrost.cc" "src/CMakeFiles/platinum.dir/mem/defrost.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/defrost.cc.o.d"
  "/root/repo/src/mem/fault_handler.cc" "src/CMakeFiles/platinum.dir/mem/fault_handler.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/fault_handler.cc.o.d"
  "/root/repo/src/mem/policy.cc" "src/CMakeFiles/platinum.dir/mem/policy.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/policy.cc.o.d"
  "/root/repo/src/mem/shootdown.cc" "src/CMakeFiles/platinum.dir/mem/shootdown.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/shootdown.cc.o.d"
  "/root/repo/src/mem/trace.cc" "src/CMakeFiles/platinum.dir/mem/trace.cc.o" "gcc" "src/CMakeFiles/platinum.dir/mem/trace.cc.o.d"
  "/root/repo/src/runtime/parallel.cc" "src/CMakeFiles/platinum.dir/runtime/parallel.cc.o" "gcc" "src/CMakeFiles/platinum.dir/runtime/parallel.cc.o.d"
  "/root/repo/src/runtime/shared_array.cc" "src/CMakeFiles/platinum.dir/runtime/shared_array.cc.o" "gcc" "src/CMakeFiles/platinum.dir/runtime/shared_array.cc.o.d"
  "/root/repo/src/runtime/sync.cc" "src/CMakeFiles/platinum.dir/runtime/sync.cc.o" "gcc" "src/CMakeFiles/platinum.dir/runtime/sync.cc.o.d"
  "/root/repo/src/runtime/zone_allocator.cc" "src/CMakeFiles/platinum.dir/runtime/zone_allocator.cc.o" "gcc" "src/CMakeFiles/platinum.dir/runtime/zone_allocator.cc.o.d"
  "/root/repo/src/sim/fiber.cc" "src/CMakeFiles/platinum.dir/sim/fiber.cc.o" "gcc" "src/CMakeFiles/platinum.dir/sim/fiber.cc.o.d"
  "/root/repo/src/sim/interconnect.cc" "src/CMakeFiles/platinum.dir/sim/interconnect.cc.o" "gcc" "src/CMakeFiles/platinum.dir/sim/interconnect.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/platinum.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/platinum.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/memory_module.cc" "src/CMakeFiles/platinum.dir/sim/memory_module.cc.o" "gcc" "src/CMakeFiles/platinum.dir/sim/memory_module.cc.o.d"
  "/root/repo/src/sim/params.cc" "src/CMakeFiles/platinum.dir/sim/params.cc.o" "gcc" "src/CMakeFiles/platinum.dir/sim/params.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/platinum.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/platinum.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/platinum.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/platinum.dir/sim/stats.cc.o.d"
  "/root/repo/src/uma/cache.cc" "src/CMakeFiles/platinum.dir/uma/cache.cc.o" "gcc" "src/CMakeFiles/platinum.dir/uma/cache.cc.o.d"
  "/root/repo/src/uma/uma_machine.cc" "src/CMakeFiles/platinum.dir/uma/uma_machine.cc.o" "gcc" "src/CMakeFiles/platinum.dir/uma/uma_machine.cc.o.d"
  "/root/repo/src/vm/address_space.cc" "src/CMakeFiles/platinum.dir/vm/address_space.cc.o" "gcc" "src/CMakeFiles/platinum.dir/vm/address_space.cc.o.d"
  "/root/repo/src/vm/memory_object.cc" "src/CMakeFiles/platinum.dir/vm/memory_object.cc.o" "gcc" "src/CMakeFiles/platinum.dir/vm/memory_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
