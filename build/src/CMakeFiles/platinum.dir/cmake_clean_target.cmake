file(REMOVE_RECURSE
  "libplatinum.a"
)
