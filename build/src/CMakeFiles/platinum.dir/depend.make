# Empty dependencies file for platinum.
# This may be replaced when dependencies are built.
