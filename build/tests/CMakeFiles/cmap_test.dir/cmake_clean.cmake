file(REMOVE_RECURSE
  "CMakeFiles/cmap_test.dir/cmap_test.cc.o"
  "CMakeFiles/cmap_test.dir/cmap_test.cc.o.d"
  "cmap_test"
  "cmap_test.pdb"
  "cmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
