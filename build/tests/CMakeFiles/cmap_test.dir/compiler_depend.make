# Empty compiler generated dependencies file for cmap_test.
# This may be replaced when dependencies are built.
