file(REMOVE_RECURSE
  "CMakeFiles/coherent_memory_test.dir/coherent_memory_test.cc.o"
  "CMakeFiles/coherent_memory_test.dir/coherent_memory_test.cc.o.d"
  "coherent_memory_test"
  "coherent_memory_test.pdb"
  "coherent_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherent_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
