# Empty dependencies file for coherent_memory_test.
# This may be replaced when dependencies are built.
