file(REMOVE_RECURSE
  "CMakeFiles/memory_module_test.dir/memory_module_test.cc.o"
  "CMakeFiles/memory_module_test.dir/memory_module_test.cc.o.d"
  "memory_module_test"
  "memory_module_test.pdb"
  "memory_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
