# Empty dependencies file for memory_module_test.
# This may be replaced when dependencies are built.
