file(REMOVE_RECURSE
  "CMakeFiles/stats_params_test.dir/stats_params_test.cc.o"
  "CMakeFiles/stats_params_test.dir/stats_params_test.cc.o.d"
  "stats_params_test"
  "stats_params_test.pdb"
  "stats_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
