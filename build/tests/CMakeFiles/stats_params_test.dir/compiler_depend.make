# Empty compiler generated dependencies file for stats_params_test.
# This may be replaced when dependencies are built.
