file(REMOVE_RECURSE
  "CMakeFiles/uma_test.dir/uma_test.cc.o"
  "CMakeFiles/uma_test.dir/uma_test.cc.o.d"
  "uma_test"
  "uma_test.pdb"
  "uma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
