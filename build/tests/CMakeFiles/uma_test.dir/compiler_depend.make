# Empty compiler generated dependencies file for uma_test.
# This may be replaced when dependencies are built.
