# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/memory_module_test[1]_include.cmake")
include("/root/repo/build/tests/interconnect_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/coherent_memory_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/patterns_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/uma_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/cmap_test[1]_include.cmake")
include("/root/repo/build/tests/stats_params_test[1]_include.cmake")
