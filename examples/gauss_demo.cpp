// Gaussian elimination on PLATINUM coherent memory (paper Sections 1, 5.1).
//
// Runs the integer Gauss elimination in the paper's coarse-grain style (one
// thread per processor, cyclic row assignment, pivot rows announced through
// event counts), verifies the result against a sequential reference, and
// prints the kernel's post-mortem report — which shows pivot-row pages
// replicating every round while only the event-count page freezes.
//
//   $ ./build/examples/gauss_demo [n] [processors]
#include <cstdio>
#include <cstdlib>

#include "src/apps/gauss.h"
#include "src/kernel/kernel.h"
#include "src/kernel/report.h"
#include "src/sim/machine.h"

using namespace platinum;  // NOLINT

int main(int argc, char** argv) {
  apps::GaussConfig config;
  config.n = argc > 1 ? std::atoi(argv[1]) : 128;
  config.processors = argc > 2 ? std::atoi(argv[2]) : 8;

  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);

  std::printf("Gaussian elimination, %dx%d matrix on %d processors...\n", config.n, config.n,
              config.processors);
  apps::GaussResult result = RunGaussPlatinum(kernel, config);
  std::printf("elimination took %.3f simulated seconds; result %s (checksum %016llx)\n",
              sim::ToSeconds(result.elimination_ns), result.verified ? "VERIFIED" : "WRONG",
              static_cast<unsigned long long>(result.checksum));

  kernel::MemoryReport report = BuildMemoryReport(kernel);
  std::printf("\n%s\n", report.ToString(12).c_str());
  std::printf("The busiest pages are the pivot rows (one replication per reader per round);\n");
  std::printf("the frozen page holds the event counts the threads spin on (Section 5.1).\n");
  return 0;
}
