// Merge sort on PLATINUM vs. a Sequent-style UMA machine (paper Section 5.2).
//
// Sorts the same data on both simulated machines and prints the comparison of
// Figure 5: the Butterfly's coherent memory prefetches a whole page per fault
// during the linear merge scans, while the Sequent's small write-through
// caches force everything across the shared bus.
//
//   $ ./build/examples/mergesort_demo [log2_count] [processors]
#include <cstdio>
#include <cstdlib>

#include "src/apps/mergesort.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

using namespace platinum;  // NOLINT

int main(int argc, char** argv) {
  apps::SortConfig config;
  config.count = size_t{1} << (argc > 1 ? std::atoi(argv[1]) : 15);
  config.processors = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("tree merge sort, %zu elements, %d processors\n", config.count,
              config.processors);

  sim::Machine butterfly(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&butterfly);
  apps::SortResult platinum_result = RunMergeSortPlatinum(kernel, config);
  std::printf("PLATINUM (Butterfly Plus): %8.3f simulated s, %s\n",
              sim::ToSeconds(platinum_result.sort_ns),
              platinum_result.verified ? "verified" : "WRONG");
  std::printf("  block transfers: %llu (page-granular prefetch of the merge scans)\n",
              static_cast<unsigned long long>(butterfly.stats().block_transfers));

  uma::UmaParams uma_params;
  uma_params.num_processors = 16;
  uma::UmaMachine sequent(uma_params);
  apps::SortResult uma_result = RunMergeSortUma(sequent, config);
  std::printf("Sequent Symmetry (UMA):    %8.3f simulated s, %s\n",
              sim::ToSeconds(uma_result.sort_ns), uma_result.verified ? "verified" : "WRONG");
  std::printf("  cache read misses: %llu, bus wait: %.1f simulated ms\n",
              static_cast<unsigned long long>(sequent.stats().read_misses),
              sim::ToMilliseconds(sequent.stats().bus_wait_ns));

  double ratio = static_cast<double>(uma_result.sort_ns) /
                 static_cast<double>(platinum_result.sort_ns);
  std::printf("\nPLATINUM is %.2fx faster for this size and processor count.\n", ratio);
  return 0;
}
