// Recurrent backpropagation on coherent memory (paper Section 5.3).
//
// Trains the 16-8-16 encoder network with fine-grain unsynchronized sharing
// and shows how the coherent memory system "quickly gives up": the shared
// activation, error and weight pages freeze, and execution proceeds on
// remote references.
//
//   $ ./build/examples/neural_demo [processors] [epochs]
#include <cstdio>
#include <cstdlib>

#include "src/apps/neural.h"
#include "src/kernel/kernel.h"
#include "src/kernel/report.h"
#include "src/sim/machine.h"

using namespace platinum;  // NOLINT

int main(int argc, char** argv) {
  apps::NeuralConfig config;
  config.processors = argc > 1 ? std::atoi(argv[1]) : 8;
  config.epochs = argc > 2 ? std::atoi(argv[2]) : 10;

  sim::Machine machine(sim::ButterflyPlusParams(16));
  kernel::Kernel kernel(&machine);

  std::printf("recurrent backprop: %d units, %d patterns, %d epochs, %d processors\n",
              config.inputs + config.hidden + config.outputs, config.patterns, config.epochs,
              config.processors);
  apps::NeuralResult result = RunNeuralPlatinum(kernel, config);
  std::printf("training error: %llu -> %llu (%s), %.3f simulated s\n",
              static_cast<unsigned long long>(result.initial_error),
              static_cast<unsigned long long>(result.final_error),
              result.verified ? "learned" : "did NOT learn", sim::ToSeconds(result.train_ns));

  kernel::MemoryReport report = BuildMemoryReport(kernel);
  std::printf("\n%s\n", report.ToString(8).c_str());
  if (config.processors > 1) {
    std::printf("All of the application's shared pages are frozen: with interleaved word-\n");
    std::printf("granularity writes, running the coherency protocol would cost more than\n");
    std::printf("simply using remote references (Section 5.3).\n");
  }
  return 0;
}
