// platsim: run any workload on any machine/policy configuration and dump the
// kernel's instrumentation — the "shell" layer the paper mentions
// accumulating around the kernel (Section 9).
//
//   $ ./build/examples/platsim gauss --procs=8 --n=128 --policy=always --report
//   $ ./build/examples/platsim neural --procs=16 --trace
//   $ ./build/examples/platsim pattern --kind=migratory --think-us=15000
//   $ ./build/examples/platsim gauss --procs=8 --trace-json=out.json
//         --stats-json=stats.json --histograms
//   $ ./build/examples/platsim gauss --check-races --check-invariants
//   $ ./build/examples/platsim explore --procs=2 --pages=1
//
//   $ ./build/examples/platsim trie --procs=32 --ops=2000000 --zipf-s=0.99
//         --churn=0.5 --stats-json=stats.json
//
// Workloads: gauss | sort | neural | pattern | trie | racy | explore
//   trie     serving workload: Zipf lookups + owner-sharded insert/erase
//            churn on a shared radix trie (docs/WORKLOADS.md); per-request
//            latency lands under "serving" in --stats-json
//   racy     deliberately unsynchronized writers (the race-detector demo;
//            with --check-races it exits 1)
//   explore  bounded model checking of the protocol (docs/CHECKING.md)
// Options:   --procs=N --n=N --count=N --epochs=N --policy=NAME --page=BYTES
//            --protocol=directory|tardis   coherence protocol (docs/PROTOCOL.md)
//            --lease-us=N        tardis lease duration (default 50 us)
//            --lease-policy=fixed|doubling  tardis lease-duration policy
//            --t1-ms=N --no-defrost --adaptive-defrost --kind=PATTERN
//            --think-us=N --report --trace
//            --ops=N --keys=N --seed=N      trie request volume / key universe
//            --zipf-s=S --read-fraction=F --churn=F --preload=F  trie mix
//            --arrival=closed|open --interarrival-us=N --advise  trie arrivals
//            --trace-json=FILE   Chrome/Perfetto trace-event JSON
//            --stats-json=FILE   counters + histograms + report as JSON
//            --page-report=FILE  per-page forensics JSON (docs/OBSERVABILITY.md)
//            --topk-pages=K      pages in the forensics hot-page table
//            --timeseries-json=FILE  per-epoch counter time-series JSON
//            --epoch-ms=N        simulated epoch length for the time-series
//            --histograms        print latency histograms and counter tables
//            --validate          check the emitted JSON, exit 1 on failure
//            --check-races       vector-clock race detection, exit 1 on a race
//            --check-invariants  full invariant check after every transition
//            --pages=N --depth=N explorer configuration
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/apps/gauss.h"
#include "src/apps/mergesort.h"
#include "src/apps/neural.h"
#include "src/apps/patterns.h"
#include "src/check/explorer.h"
#include "src/check/oracle.h"
#include "src/check/race_detector.h"
#include "src/kernel/kernel.h"
#include "src/kernel/report.h"
#include "src/load/driver.h"
#include "src/mem/policy.h"
#include "src/mem/protocol_spec.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/page_trace.h"
#include "src/obs/timeseries.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"

using namespace platinum;  // NOLINT

namespace {

struct Options {
  std::string workload = "gauss";
  int procs = 8;
  int n = 128;
  size_t count = 1 << 14;
  int epochs = 8;
  std::string policy = "timestamp";
  std::string protocol = "directory";
  int lease_us = 0;  // 0 = the protocol's default lease
  std::string lease_policy = "fixed";
  uint32_t page_bytes = 4096;
  int t1_ms = 10;
  bool defrost = true;
  bool adaptive = false;
  std::string pattern_kind = "read-shared";
  int think_us = 200;
  bool report = false;
  bool trace = false;
  std::string trace_json;
  std::string stats_json;
  std::string page_report;
  int topk_pages = 16;
  std::string timeseries_json;
  int epoch_ms = 10;
  bool histograms = false;
  bool validate = false;
  bool check_races = false;
  bool check_invariants = false;
  int pages = 1;
  int depth = 32;
  // Serving (trie) workload.
  uint64_t ops = 1ull << 20;
  uint32_t keys = 1u << 14;
  uint64_t seed = 1;
  double zipf_s = 0.99;
  double read_fraction = 0.90;
  double churn = 0.5;
  double preload = 0.5;
  std::string arrival = "closed";
  int interarrival_us = 20;
  bool advise = false;
};

bool StartsWith(const char* arg, const char* prefix, const char** value) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) == 0) {
    *value = arg + len;
    return true;
  }
  return false;
}

Options Parse(int argc, char** argv) {
  Options options;
  if (argc > 1 && argv[1][0] != '-') {
    options.workload = argv[1];
  }
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (StartsWith(argv[i], "--procs=", &value)) {
      options.procs = std::atoi(value);
    } else if (StartsWith(argv[i], "--n=", &value)) {
      options.n = std::atoi(value);
    } else if (StartsWith(argv[i], "--count=", &value)) {
      options.count = static_cast<size_t>(std::atoll(value));
    } else if (StartsWith(argv[i], "--epochs=", &value)) {
      options.epochs = std::atoi(value);
    } else if (StartsWith(argv[i], "--policy=", &value)) {
      options.policy = value;
    } else if (StartsWith(argv[i], "--protocol=", &value)) {
      options.protocol = value;
    } else if (StartsWith(argv[i], "--lease-us=", &value)) {
      options.lease_us = std::atoi(value);
    } else if (StartsWith(argv[i], "--lease-policy=", &value)) {
      options.lease_policy = value;
    } else if (StartsWith(argv[i], "--page=", &value)) {
      options.page_bytes = static_cast<uint32_t>(std::atoi(value));
    } else if (StartsWith(argv[i], "--t1-ms=", &value)) {
      options.t1_ms = std::atoi(value);
    } else if (StartsWith(argv[i], "--kind=", &value)) {
      options.pattern_kind = value;
    } else if (StartsWith(argv[i], "--think-us=", &value)) {
      options.think_us = std::atoi(value);
    } else if (std::strcmp(argv[i], "--no-defrost") == 0) {
      options.defrost = false;
    } else if (std::strcmp(argv[i], "--adaptive-defrost") == 0) {
      options.adaptive = true;
    } else if (StartsWith(argv[i], "--trace-json=", &value)) {
      options.trace_json = value;
    } else if (StartsWith(argv[i], "--stats-json=", &value)) {
      options.stats_json = value;
    } else if (StartsWith(argv[i], "--page-report=", &value)) {
      options.page_report = value;
    } else if (StartsWith(argv[i], "--topk-pages=", &value)) {
      options.topk_pages = std::atoi(value);
    } else if (StartsWith(argv[i], "--timeseries-json=", &value)) {
      options.timeseries_json = value;
    } else if (StartsWith(argv[i], "--epoch-ms=", &value)) {
      options.epoch_ms = std::atoi(value);
    } else if (std::strcmp(argv[i], "--report") == 0) {
      options.report = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      options.trace = true;
    } else if (std::strcmp(argv[i], "--histograms") == 0) {
      options.histograms = true;
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      options.validate = true;
    } else if (std::strcmp(argv[i], "--check-races") == 0) {
      options.check_races = true;
    } else if (std::strcmp(argv[i], "--check-invariants") == 0) {
      options.check_invariants = true;
    } else if (StartsWith(argv[i], "--pages=", &value)) {
      options.pages = std::atoi(value);
    } else if (StartsWith(argv[i], "--depth=", &value)) {
      options.depth = std::atoi(value);
    } else if (StartsWith(argv[i], "--ops=", &value)) {
      options.ops = static_cast<uint64_t>(std::atoll(value));
    } else if (StartsWith(argv[i], "--keys=", &value)) {
      options.keys = static_cast<uint32_t>(std::atoll(value));
    } else if (StartsWith(argv[i], "--seed=", &value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (StartsWith(argv[i], "--zipf-s=", &value)) {
      options.zipf_s = std::atof(value);
    } else if (StartsWith(argv[i], "--read-fraction=", &value)) {
      options.read_fraction = std::atof(value);
    } else if (StartsWith(argv[i], "--churn=", &value)) {
      options.churn = std::atof(value);
    } else if (StartsWith(argv[i], "--preload=", &value)) {
      options.preload = std::atof(value);
    } else if (StartsWith(argv[i], "--arrival=", &value)) {
      options.arrival = value;
    } else if (StartsWith(argv[i], "--interarrival-us=", &value)) {
      options.interarrival_us = std::atoi(value);
    } else if (std::strcmp(argv[i], "--advise") == 0) {
      options.advise = true;
    }
  }
  return options;
}

std::unique_ptr<mem::ReplicationPolicy> MakePolicy(const Options& options) {
  sim::SimTime t1 = static_cast<sim::SimTime>(options.t1_ms) * sim::kMillisecond;
  if (options.policy == "timestamp") {
    return std::make_unique<mem::TimestampPolicy>(t1);
  }
  if (options.policy == "timestamp-thaw") {
    return std::make_unique<mem::TimestampPolicy>(t1, true);
  }
  if (options.policy == "always") {
    return std::make_unique<mem::AlwaysCachePolicy>();
  }
  if (options.policy == "never") {
    return std::make_unique<mem::NeverCachePolicy>();
  }
  if (options.policy == "migrate-then-freeze") {
    return std::make_unique<mem::MigrateThenFreezePolicy>(3);
  }
  std::fprintf(stderr, "unknown policy '%s'\n", options.policy.c_str());
  std::exit(1);
}

apps::AccessPattern ParsePattern(const std::string& kind) {
  if (kind == "private") return apps::AccessPattern::kPrivate;
  if (kind == "read-shared") return apps::AccessPattern::kReadShared;
  if (kind == "migratory") return apps::AccessPattern::kMigratory;
  if (kind == "producer-consumer") return apps::AccessPattern::kProducerConsumer;
  if (kind == "hot-spot") return apps::AccessPattern::kHotSpotWrite;
  if (kind == "false-sharing") return apps::AccessPattern::kFalseSharing;
  std::fprintf(stderr, "unknown pattern '%s'\n", kind.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  Options options = Parse(argc, argv);

  if (options.workload == "explore") {
    // The explorer boots its own tiny machines; the shell options only
    // parameterize the search.
    check::ExplorerConfig config;
    config.processors = options.procs;
    config.pages = options.pages;
    config.max_depth = options.depth;
    config.policy = options.policy;
    config.protocol = options.protocol;
    std::printf("platsim: protocol explorer, %d processors, %d page%s, policy=%s, "
                "protocol=%s\n",
                config.processors, config.pages, config.pages == 1 ? "" : "s",
                config.policy.c_str(), config.protocol.c_str());
    check::ExplorerResult result = check::ExploreProtocol(config);
    std::printf("explore: %s\n", result.Summary().c_str());
    return 0;  // an invariant violation would have aborted
  }

  // The machine grows with --procs (64-node serving runs) but never shrinks
  // below the historical 16 nodes, so existing configurations are unchanged.
  sim::MachineParams params = sim::ButterflyPlusParams(std::max(16, options.procs));
  params.page_size_bytes = options.page_bytes;
  params.frames_per_module = (4u << 20) / options.page_bytes;
  params.adaptive_defrost = options.adaptive;
  sim::Machine machine(params);

  kernel::KernelOptions kernel_options;
  kernel_options.policy = MakePolicy(options);
  kernel_options.start_defrost_daemon = options.defrost;
  mem::ProtocolKind kind;
  if (!mem::ProtocolKindFromName(options.protocol.c_str(), &kind)) {
    std::fprintf(stderr, "unknown protocol '%s' (directory|tardis)\n",
                 options.protocol.c_str());
    return 1;
  }
  kernel_options.protocol = options.protocol;
  kernel_options.tardis_lease_ns =
      static_cast<sim::SimTime>(options.lease_us) * sim::kMicrosecond;
  kernel_options.tardis_lease_policy = options.lease_policy;
  kernel::Kernel kernel(&machine, std::move(kernel_options));
  std::unique_ptr<check::InvariantOracle> oracle;
  if (options.check_invariants) {
    oracle = std::make_unique<check::InvariantOracle>(&kernel.memory());
  }
  if (options.check_races) {
    kernel.EnableRaceDetection();
  }
  if (options.trace || !options.trace_json.empty()) {
    // The JSON exporter wants the whole run, not just the tail, so give it a
    // much deeper buffer than the human-readable dump needs.
    kernel.memory().EnableTracing(options.trace_json.empty() ? 8192 : 65536);
  }
  std::unique_ptr<obs::PageTrace> page_trace;
  if (!options.page_report.empty()) {
    obs::PageTraceOptions pt_options;
    pt_options.top_k = static_cast<size_t>(std::max(1, options.topk_pages));
    page_trace = std::make_unique<obs::PageTrace>(pt_options);
    // After EnableRaceDetection, so the detector stays chained behind the
    // forensics observer.
    kernel.AttachPageTrace(page_trace.get());
  }
  std::unique_ptr<obs::EpochSampler> sampler;
  if (!options.timeseries_json.empty()) {
    obs::EpochSamplerOptions ts_options;
    ts_options.epoch_ns =
        static_cast<sim::SimTime>(std::max(1, options.epoch_ms)) * sim::kMillisecond;
    sampler = std::make_unique<obs::EpochSampler>(&machine, ts_options);
    machine.scheduler().SetTimeObserver(sampler.get());
  }

  std::printf("platsim: %s, %d processors, policy=%s, protocol=%s, page=%u B\n",
              options.workload.c_str(), options.procs, options.policy.c_str(),
              options.protocol.c_str(), options.page_bytes);

  // Rendered by the trie workload; embedded under "serving" in --stats-json.
  std::string serving_json;

  if (options.workload == "gauss") {
    apps::GaussConfig config;
    config.n = options.n;
    config.processors = options.procs;
    apps::GaussResult result = RunGaussPlatinum(kernel, config);
    std::printf("elimination: %.3f sim-s, %s\n", sim::ToSeconds(result.elimination_ns),
                result.verified ? "verified" : "unverified");
  } else if (options.workload == "sort") {
    apps::SortConfig config;
    config.count = options.count;
    config.processors = options.procs;
    apps::SortResult result = RunMergeSortPlatinum(kernel, config);
    std::printf("sort: %.3f sim-s, %s\n", sim::ToSeconds(result.sort_ns),
                result.verified ? "verified" : "unverified");
  } else if (options.workload == "neural") {
    apps::NeuralConfig config;
    config.processors = options.procs;
    config.epochs = options.epochs;
    apps::NeuralResult result = RunNeuralPlatinum(kernel, config);
    std::printf("training: %.3f sim-s, error %llu -> %llu\n",
                sim::ToSeconds(result.train_ns),
                static_cast<unsigned long long>(result.initial_error),
                static_cast<unsigned long long>(result.final_error));
  } else if (options.workload == "pattern") {
    apps::PatternConfig config;
    config.pattern = ParsePattern(options.pattern_kind);
    config.processors = options.procs;
    config.think_ns = static_cast<sim::SimTime>(options.think_us) * sim::kMicrosecond;
    apps::PatternResult result = RunPattern(kernel, config);
    std::printf(
        "pattern %s: %.3f sim-ms; repl %llu, migr %llu, remote-maps %llu, freezes %llu\n",
        options.pattern_kind.c_str(), sim::ToMilliseconds(result.elapsed_ns),
        static_cast<unsigned long long>(result.replications),
        static_cast<unsigned long long>(result.migrations),
        static_cast<unsigned long long>(result.remote_maps),
        static_cast<unsigned long long>(result.freezes));
  } else if (options.workload == "trie") {
    load::DriverConfig config;
    config.spec.seed = options.seed;
    config.spec.keys = options.keys;
    config.spec.ops = options.ops;
    config.spec.zipf_s = options.zipf_s;
    config.spec.read_fraction = options.read_fraction;
    config.spec.churn = options.churn;
    config.spec.preload_fraction = options.preload;
    config.procs = options.procs;
    if (options.arrival == "open") {
      config.arrival = load::ArrivalMode::kOpen;
    } else if (options.arrival != "closed") {
      std::fprintf(stderr, "unknown arrival mode '%s' (closed|open)\n",
                   options.arrival.c_str());
      return 1;
    }
    config.interarrival_ns =
        static_cast<sim::SimTime>(options.interarrival_us) * sim::kMicrosecond;
    config.advise = options.advise;
    load::ServeResult result = RunTrieServe(kernel, config);
    serving_json = ServingStatsJson(config, result);
    const obs::LatencyHistogram& hit = result.latency[load::kOpReadHit];
    std::printf("serving: %llu requests in %.3f sim-s (%llu entries, %s); "
                "read-hit p50 %.1f us p99 %.1f us, %llu lookup retries\n",
                static_cast<unsigned long long>(result.requests),
                sim::ToSeconds(result.serve_ns),
                static_cast<unsigned long long>(result.entries),
                result.verified ? "verified" : "unverified",
                static_cast<double>(hit.Percentile(50)) / 1000.0,
                static_cast<double>(hit.Percentile(99)) / 1000.0,
                static_cast<unsigned long long>(result.trie.lookup_retries));
  } else if (options.workload == "racy") {
    // Deliberately racy: unsynchronized read-modify-write of one shared word
    // by every thread — the seeded workload the race detector must flag.
    auto* space = kernel.CreateAddressSpace("racy");
    rt::ZoneAllocator zone(&kernel, space);
    auto shared = rt::SharedArray<uint32_t>::Create(zone, "racy-word", 1);
    int workers = std::max(2, std::min(options.procs, kernel.num_processors()));
    rt::RunOnProcessors(kernel, space, workers, "racy", [&](int) {
      for (int i = 0; i < 64; ++i) {
        shared.Set(0, shared.Get(0) + 1);
      }
    });
    uint32_t final_value = 0;
    rt::RunOnProcessors(kernel, space, 1, "racy-read",
                        [&](int) { final_value = shared.Get(0); });
    std::printf("racy: final value %u after %d unsynchronized writers\n", final_value,
                workers);
  } else {
    std::fprintf(stderr,
                 "unknown workload '%s' (gauss|sort|neural|pattern|trie|racy|explore)\n",
                 options.workload.c_str());
    return 1;
  }

  if (options.report) {
    std::printf("\n%s", BuildMemoryReport(kernel).ToString().c_str());
  }
  if (options.trace) {
    std::printf("\nlast protocol events:\n%s", kernel.memory().trace()->ToString(24).c_str());
    std::printf("(%llu events recorded, %llu dropped)\n",
                static_cast<unsigned long long>(kernel.memory().trace()->recorded()),
                static_cast<unsigned long long>(kernel.memory().trace()->dropped()));
  }
  if (options.histograms) {
    std::printf("\n%s", machine.obs().ToString().c_str());
  }

  bool valid = true;
  if (options.check_races) {
    check::RaceDetector* detector = kernel.race_detector();
    std::printf("\n%s\n", detector->Summary().c_str());
    for (const check::RaceReport& report : detector->reports()) {
      std::printf("%s\n", report.ToString().c_str());
    }
    if (detector->races_found() > 0) {
      valid = false;
    }
  }
  if (options.check_invariants) {
    std::printf("invariant oracle: %llu transitions checked, all invariants held\n",
                static_cast<unsigned long long>(oracle->transitions_checked()));
    oracle->CheckNow();
  }
  if (sampler != nullptr) {
    sampler->Finalize();
  }
  if (!options.trace_json.empty()) {
    std::string doc = obs::ExportChromeTrace(machine, kernel.memory().trace(), sampler.get());
    obs::WriteFileOrDie(options.trace_json, doc);
    std::printf("wrote %s (%zu bytes)\n", options.trace_json.c_str(), doc.size());
    if (options.validate) {
      if (!obs::CheckJsonBalanced(doc) || !obs::CheckJsonHasKey(doc, "traceEvents") ||
          !obs::CheckTraceTsMonotone(doc)) {
        std::fprintf(stderr, "validation FAILED for %s\n", options.trace_json.c_str());
        valid = false;
      }
    }
  }
  if (!options.stats_json.empty()) {
    kernel::MemoryReport mem_report = BuildMemoryReport(kernel);
    obs::TelemetrySummary telemetry{page_trace.get(), sampler.get(),
                                    serving_json.empty() ? nullptr : &serving_json};
    std::string doc = obs::ExportStatsJson(machine, &mem_report, &telemetry);
    obs::WriteFileOrDie(options.stats_json, doc);
    std::printf("wrote %s (%zu bytes)\n", options.stats_json.c_str(), doc.size());
    if (options.validate) {
      if (!obs::CheckJsonBalanced(doc) || !obs::CheckJsonHasKey(doc, "histograms") ||
          !obs::CheckJsonHasKey(doc, "per_processor")) {
        std::fprintf(stderr, "validation FAILED for %s\n", options.stats_json.c_str());
        valid = false;
      }
    }
  }
  if (page_trace != nullptr) {
    std::string doc = page_trace->ToJson();
    obs::WriteFileOrDie(options.page_report, doc);
    std::printf("wrote %s (%zu bytes)\n", options.page_report.c_str(), doc.size());
    std::printf("page forensics: %llu events on %zu pages; flagged %zu ping-pong, "
                "%zu freeze-churn, %zu replication-waste\n",
                static_cast<unsigned long long>(page_trace->events_seen()),
                page_trace->pages_tracked(), page_trace->FlaggedPingPong().size(),
                page_trace->FlaggedFreezeChurn().size(),
                page_trace->FlaggedReplicationWaste().size());
    if (options.validate) {
      if (!obs::CheckJsonBalanced(doc) || !obs::CheckJsonHasKey(doc, "top_pages") ||
          !obs::CheckJsonHasKey(doc, "flagged")) {
        std::fprintf(stderr, "validation FAILED for %s\n", options.page_report.c_str());
        valid = false;
      }
    }
  }
  if (sampler != nullptr) {
    std::string doc = sampler->ToJson();
    obs::WriteFileOrDie(options.timeseries_json, doc);
    std::printf("wrote %s (%zu bytes)\n", options.timeseries_json.c_str(), doc.size());
    std::printf("time-series: %zu epochs of %d ms (%llu dropped)\n", sampler->samples().size(),
                options.epoch_ms, static_cast<unsigned long long>(sampler->samples_dropped()));
    if (options.validate) {
      if (!obs::CheckJsonBalanced(doc) || !obs::CheckJsonHasKey(doc, "epochs")) {
        std::fprintf(stderr, "validation FAILED for %s\n", options.timeseries_json.c_str());
        valid = false;
      }
    }
  }
  if (options.validate && valid) {
    std::printf("validation OK\n");
  }
  return valid ? 0 : 1;
}
