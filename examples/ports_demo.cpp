// Ports and thread migration (paper Section 1.1).
//
// A pipeline of threads on different nodes communicating through globally
// named ports (the Mach-flavored message queues PLATINUM provides for
// threads that share no memory object), plus an explicit thread migration
// that drags the kernel stack along (Section 2.2).
//
//   $ ./build/examples/ports_demo
#include <cstdio>
#include <numeric>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

using namespace platinum;  // NOLINT

int main() {
  sim::Machine machine(sim::ButterflyPlusParams(8));
  kernel::Kernel kernel(&machine);
  auto* space = kernel.CreateAddressSpace("pipeline");

  kernel::Port* stage1 = kernel.CreatePort("stage1");
  kernel::Port* stage2 = kernel.CreatePort("stage2");
  kernel::Port* results = kernel.CreatePort("results");
  constexpr int kBatches = 4;
  constexpr size_t kWords = 256;

  // Producer on node 0 emits batches of numbers.
  kernel.SpawnThread(space, 0, "producer", [&] {
    for (int batch = 0; batch < kBatches; ++batch) {
      std::vector<uint32_t> payload(kWords);
      std::iota(payload.begin(), payload.end(), static_cast<uint32_t>(batch) * 1000);
      kernel.Send(stage1, payload);
      std::printf("t=%7.3f ms  producer sent batch %d\n",
                  sim::ToMilliseconds(kernel.Now()), batch);
    }
  });

  // Transformer on node 3 doubles everything, then migrates to node 5
  // halfway through to demonstrate explicit thread migration.
  kernel.SpawnThread(space, 3, "transformer", [&] {
    for (int batch = 0; batch < kBatches; ++batch) {
      if (batch == kBatches / 2) {
        kernel.CurrentThread()->Migrate(5);
        std::printf("t=%7.3f ms  transformer migrated to node %d\n",
                    sim::ToMilliseconds(kernel.Now()),
                    kernel.CurrentThread()->processor());
      }
      std::vector<uint32_t> payload = kernel.Receive(stage1);
      for (uint32_t& word : payload) {
        word *= 2;
      }
      kernel.Send(stage2, payload);
    }
  });

  // Reducer on node 7 sums each batch.
  kernel.SpawnThread(space, 7, "reducer", [&] {
    for (int batch = 0; batch < kBatches; ++batch) {
      std::vector<uint32_t> payload = kernel.Receive(stage2);
      uint64_t sum = std::accumulate(payload.begin(), payload.end(), uint64_t{0});
      std::vector<uint32_t> answer{static_cast<uint32_t>(sum & 0xffffffff)};
      kernel.Send(results, answer);
    }
  });

  kernel.SpawnThread(space, 1, "main", [&] {
    for (int batch = 0; batch < kBatches; ++batch) {
      std::vector<uint32_t> answer = kernel.Receive(results);
      std::printf("t=%7.3f ms  batch %d sum = %u\n", sim::ToMilliseconds(kernel.Now()), batch,
                  answer[0]);
    }
  });

  kernel.Run();
  std::printf("\ntotal virtual time: %.3f ms for %d batches of %zu words\n",
              sim::ToMilliseconds(machine.scheduler().global_now()), kBatches, kWords);
  return 0;
}
