// Quickstart: boot a simulated 4-node Butterfly, create an address space,
// share a page between two processors, and watch the coherent memory system
// replicate, invalidate and freeze it.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/kernel/kernel.h"
#include "src/kernel/report.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"

using namespace platinum;  // NOLINT

int main() {
  // A 4-node NUMA machine with the Butterfly Plus timing parameters the
  // paper measured (320 ns local / 5 us remote references, 1.11 ms page
  // copy), and the PLATINUM kernel with its default timestamp replication
  // policy (t1 = 10 ms) and defrost daemon (t2 = 1 s).
  sim::Machine machine(sim::ButterflyPlusParams(4));
  kernel::Kernel kernel(&machine);

  // One address space with a page-aligned zone allocator; each allocation is
  // backed by its own memory object.
  auto* space = kernel.CreateAddressSpace("quickstart");
  rt::ZoneAllocator zone(&kernel, space);
  auto data = rt::SharedArray<uint32_t>::Create(zone, "data", 1024);

  auto status = [&](const char* what) {
    uint32_t cpage = kernel.FindMemoryObject("data")->cpage(0);
    const mem::Cpage& page = kernel.memory().cpages().at(cpage);
    std::printf("t=%8.3f ms  %-34s state=%-8s copies=%zu frozen=%s\n",
                sim::ToMilliseconds(kernel.Now()), what, CpageStateName(page.state()),
                page.copies().size(), page.frozen() ? "yes" : "no");
  };

  // Processor 0 initializes the page; processor 1 reads it (the kernel
  // replicates), processor 0 overwrites it (the kernel invalidates the
  // replica), and a quick re-read freezes the page in place.
  kernel.SpawnThread(space, 0, "writer", [&] {
    data.Set(0, 42);
    status("p0 wrote (first touch fills)");
    machine.scheduler().Sleep(4 * sim::kMillisecond);
    data.Set(0, 43);
    status("p0 rewrote (replica invalidated)");
  });
  kernel.SpawnThread(space, 1, "reader", [&] {
    machine.scheduler().Sleep(1 * sim::kMillisecond);
    std::printf("t=%8.3f ms  p1 read %u\n", sim::ToMilliseconds(kernel.Now()), data.Get(0));
    status("p1 read (page replicated)");
    machine.scheduler().Sleep(3 * sim::kMillisecond);
    std::printf("t=%8.3f ms  p1 read %u\n", sim::ToMilliseconds(kernel.Now()), data.Get(0));
    status("p1 re-read soon after invalidation");
  });
  kernel.Run();

  std::printf("\nPost-mortem memory-management report (Section 4.2):\n%s\n",
              BuildMemoryReport(kernel).ToString().c_str());
  return 0;
}
