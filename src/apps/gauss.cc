#include "src/apps/gauss.h"

#include <vector>

#include "src/apps/workloads.h"
#include "src/base/check.h"
#include "src/baseline/raw_memory.h"
#include "src/obs/scope.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::apps {
namespace {

// Cyclic row ownership: row j belongs to processor j % p. Rows are finalized
// in index order, so cyclic assignment keeps every processor busy until the
// end of the elimination.
int RowOwner(int j, int p) { return j % p; }

// Largest row owned by `pid`.
int LastOwnedRow(int pid, int n, int p) {
  int last = n - 1 - ((n - 1 - pid) % p + p) % p;
  return last >= 0 && last % p == pid ? last : -1;
}

}  // namespace

GaussResult RunGaussPlatinum(kernel::Kernel& kernel, const GaussConfig& config) {
  const int n = config.n;
  const int p = config.processors;
  PLAT_CHECK_GE(n, 2);
  PLAT_CHECK_GE(p, 1);
  PLAT_CHECK_LE(p, kernel.num_processors());

  auto* space = kernel.CreateAddressSpace("gauss");
  rt::ZoneAllocator zone(&kernel, space);
  auto matrix = rt::SharedMatrix<int32_t>::Create(zone, "gauss-matrix", n, n);
  rt::EventCountArray pivot_ready(zone, "gauss-pivot-ready", n);
  rt::Barrier barrier(zone, "gauss-barrier", static_cast<uint32_t>(p));
  // The anecdote variant: the problem-size word and a start flag share one
  // page ("control"); the well-behaved version gives every thread a private
  // copy of the size instead.
  rt::SharedArray<uint32_t> control;
  if (config.colocate_size_and_flag) {
    control = rt::SharedArray<uint32_t>::Create(zone, "gauss-control", 2);
    // Word 1 is a hand-rolled start flag the threads spin on — a
    // synchronization variable even though it lives in a data zone (that
    // co-location is the whole point of the anecdote). Word 0 is plain data,
    // written before the barrier and only read after it.
    kernel.RegisterSyncWords(space, control.va(1), 1);
  }

  sim::SimTime t_start = 0;
  rt::RunOnProcessors(kernel, space, p, "gauss", [&](int pid) {
    sim::Scheduler& sched = kernel.machine().scheduler();
    // Startup: each thread initializes its own rows, placing their pages on
    // its node by first touch. Rows are written with the block-access API —
    // one page fault, then fast-path stores.
    std::vector<int32_t> row(static_cast<size_t>(n));
    for (int j = pid; j < n; j += p) {
      for (int k = 0; k < n; ++k) {
        row[static_cast<size_t>(k)] = GaussInitialValue(config.seed, n, j, k);
      }
      matrix.Row(j).SetRange(0, static_cast<size_t>(n), row.data());
    }
    if (config.colocate_size_and_flag && pid == 0) {
      control.Set(0, static_cast<uint32_t>(n));
    }
    barrier.Wait();

    if (config.colocate_size_and_flag) {
      // Everyone spins on the start flag that shares a page with the size
      // variable; the spinning freezes the page.
      if (pid == 0) {
        sched.Sleep(500 * sim::kMicrosecond);  // let the spinners replicate first
        control.Set(1, 1);
      } else {
        rt::SpinBackoff backoff;
        while (control.Get(1) == 0) {
          sched.Sleep(backoff.Next());
        }
      }
    }

    if (pid == 0) {
      t_start = kernel.Now();
    }
    if (RowOwner(0, p) == pid) {
      pivot_ready.Advance(0);
    }
    const int last_owned = LastOwnedRow(pid, n, p);
    for (int i = 0; i < n - 1; ++i) {
      if (last_owned <= i) {
        break;  // all of this thread's rows are final
      }
      pivot_ready.AwaitAtLeast(static_cast<size_t>(i), 1);
      const int32_t a_ii = matrix.Get(i, i);
      int j0 = pid;
      while (j0 <= i) {
        j0 += p;
      }
      for (int j = j0; j < n; j += p) {
        const int32_t m = GaussMultiplier(matrix.Get(j, i), a_ii);
        if (config.colocate_size_and_flag) {
          // The inner-loop termination test reads the shared size variable —
          // a remote reference on every iteration while its page is frozen.
          for (int k = i; k < static_cast<int>(control.Get(0)); ++k) {
            matrix.Set(j, k, GaussEliminateElement(matrix.Get(j, k), m, matrix.Get(i, k)));
            kernel.machine().Compute(config.compute_per_element_ns);
          }
        } else {
          for (int k = i; k < n; ++k) {
            matrix.Set(j, k, GaussEliminateElement(matrix.Get(j, k), m, matrix.Get(i, k)));
            kernel.machine().Compute(config.compute_per_element_ns);
          }
        }
        if (j == i + 1) {
          pivot_ready.Advance(static_cast<size_t>(i + 1));
        }
      }
    }
  });

  GaussResult result;
  result.elimination_ns = kernel.machine().scheduler().global_now() - t_start;

  if (config.verify) {
    // Separate phase so the verification sweep's faults and latencies don't
    // pollute the elimination phase in exported stats.
    obs::PhaseMarker verify_phase(kernel.machine(), "gauss-verify");
    Checksum sum;
    kernel.SpawnThread(space, 0, "gauss-check", [&] {
      std::vector<int32_t> row(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        matrix.Row(i).GetRange(0, static_cast<size_t>(n), row.data());
        for (int j = 0; j < n; ++j) {
          sum.Add(static_cast<uint32_t>(row[static_cast<size_t>(j)]));
        }
      }
    });
    kernel.Run();
    result.checksum = sum.value();
    result.verified = result.checksum == GaussReferenceChecksum(config.seed, n);
    PLAT_CHECK(result.verified) << "PLATINUM Gauss produced a wrong matrix";
  }
  return result;
}

GaussResult RunGaussUniformSystem(sim::Machine& machine, const GaussConfig& config) {
  const int n = config.n;
  const int p = config.processors;
  PLAT_CHECK_GE(n, 2);
  PLAT_CHECK_GE(p, 1);
  PLAT_CHECK_LE(p, machine.num_nodes());
  sim::Scheduler& sched = machine.scheduler();

  // Matrix rows scattered round-robin across the modules; threads are
  // assigned the rows that live on their node, so row updates are local.
  std::vector<baseline::RawRegion> rows;
  rows.reserve(n);
  for (int j = 0; j < n; ++j) {
    rows.emplace_back(&machine, static_cast<size_t>(n),
                      baseline::RawRegion::Placement::kSingleModule, RowOwner(j, p));
  }
  // Private per-thread pivot buffer in local memory.
  std::vector<baseline::RawRegion> pivot_buffers;
  pivot_buffers.reserve(p);
  for (int t = 0; t < p; ++t) {
    pivot_buffers.emplace_back(&machine, static_cast<size_t>(n),
                               baseline::RawRegion::Placement::kSingleModule, t);
  }
  baseline::RawBarrier barrier(&machine, p);

  sim::SimTime t_start = 0;
  for (int pid = 0; pid < p; ++pid) {
    sched.Spawn(pid, "us-gauss-" + std::to_string(pid), [&, pid] {
      uint32_t sense = 0;
      for (int j = pid; j < n; j += p) {
        for (int k = 0; k < n; ++k) {
          rows[j].Set(static_cast<size_t>(k),
                      static_cast<uint32_t>(GaussInitialValue(config.seed, n, j, k)));
        }
      }
      barrier.Wait(&sense);
      if (pid == 0) {
        t_start = sched.now();
      }
      const int last_owned = LastOwnedRow(pid, n, p);
      for (int i = 0; i < n - 1; ++i) {
        if (last_owned > i) {
          // Copy the pivot row suffix into local memory, word by word — the
          // hand-tuned caching the Uniform System style requires.
          pivot_buffers[pid].CopyWordsFrom(rows[i], static_cast<size_t>(i),
                                           static_cast<size_t>(i),
                                           static_cast<size_t>(n - i));
          const auto a_ii = static_cast<int32_t>(pivot_buffers[pid].Get(static_cast<size_t>(i)));
          int j0 = pid;
          while (j0 <= i) {
            j0 += p;
          }
          for (int j = j0; j < n; j += p) {
            const int32_t m =
                GaussMultiplier(static_cast<int32_t>(rows[j].Get(static_cast<size_t>(i))), a_ii);
            for (int k = i; k < n; ++k) {
              auto a_jk = static_cast<int32_t>(rows[j].Get(static_cast<size_t>(k)));
              auto a_ik = static_cast<int32_t>(pivot_buffers[pid].Get(static_cast<size_t>(k)));
              rows[j].Set(static_cast<size_t>(k),
                          static_cast<uint32_t>(GaussEliminateElement(a_jk, m, a_ik)));
              machine.Compute(config.compute_per_element_ns);
            }
          }
        }
        // Rows of round i must be final before anyone copies round i+1's
        // pivot.
        barrier.Wait(&sense);
      }
    });
  }
  sched.Run();

  GaussResult result;
  result.elimination_ns = sched.global_now() - t_start;
  if (config.verify) {
    Checksum sum;
    sched.Spawn(0, "us-check", [&] {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          sum.Add(rows[i].Get(static_cast<size_t>(j)));
        }
      }
    });
    sched.Run();
    result.checksum = sum.value();
    result.verified = result.checksum == GaussReferenceChecksum(config.seed, n);
    PLAT_CHECK(result.verified) << "Uniform System Gauss produced a wrong matrix";
  }
  return result;
}

GaussResult RunGaussMessagePassing(kernel::Kernel& kernel, const GaussConfig& config) {
  const int n = config.n;
  const int p = config.processors;
  PLAT_CHECK_GE(n, 2);
  PLAT_CHECK_GE(p, 1);
  PLAT_CHECK_LE(p, kernel.num_processors());
  sim::Machine& machine = kernel.machine();

  // One receive port per worker; an extra port for startup synchronization.
  std::vector<kernel::Port*> ports;
  ports.reserve(p);
  for (int t = 0; t < p; ++t) {
    ports.push_back(kernel.CreatePort("smp-pivot-" + std::to_string(t)));
  }
  kernel::Port* ready_port = kernel.CreatePort("smp-ready");

  // Threads keep their rows fully private in local memory; only the pivot
  // row ever moves, by message.
  auto* space = kernel.CreateAddressSpace("smp-gauss");

  // Local row r of thread t is global row t + r*p.
  std::vector<std::unique_ptr<baseline::RawRegion>> row_store(p);
  std::vector<std::unique_ptr<baseline::RawRegion>> pivot_buffers(p);
  std::vector<int> rows_owned(p, 0);
  for (int t = 0; t < p; ++t) {
    rows_owned[t] = (n - 1 - t) / p + 1;
    row_store[t] = std::make_unique<baseline::RawRegion>(
        &machine, static_cast<size_t>(rows_owned[t]) * n,
        baseline::RawRegion::Placement::kSingleModule, t);
    pivot_buffers[t] = std::make_unique<baseline::RawRegion>(
        &machine, static_cast<size_t>(n), baseline::RawRegion::Placement::kSingleModule, t);
  }

  sim::SimTime t_start = 0;
  rt::RunOnProcessors(kernel, space, p, "smp-gauss", [&](int pid) {
    baseline::RawRegion& mine = *row_store[pid];
    baseline::RawRegion& pivot = *pivot_buffers[pid];
    auto local_index = [&](int j, int k) {
      return static_cast<size_t>((j - pid) / p) * n + static_cast<size_t>(k);
    };
    for (int j = pid; j < n; j += p) {
      for (int k = 0; k < n; ++k) {
        mine.Set(local_index(j, k), static_cast<uint32_t>(GaussInitialValue(config.seed, n, j, k)));
      }
    }
    // Startup barrier by messages.
    if (pid == 0) {
      for (int t = 1; t < p; ++t) {
        kernel.Receive(ready_port);
      }
      std::vector<uint32_t> go{1};
      for (int t = 1; t < p; ++t) {
        kernel.Send(ports[t], go);
      }
      t_start = kernel.Now();
    } else {
      std::vector<uint32_t> ready{1};
      kernel.Send(ready_port, ready);
      kernel.Receive(ports[pid]);
    }

    const int last_owned = LastOwnedRow(pid, n, p);
    for (int i = 0; i < n - 1; ++i) {
      const int owner = RowOwner(i, p);
      const int rel = (pid - owner + p) % p;
      const bool need_pivot = last_owned > i;
      // Binomial-tree broadcast of the pivot-row suffix rooted at the owner.
      // Every thread participates as a forwarder even after its rows are
      // done, so the tree stays intact.
      std::vector<uint32_t> message;
      if (rel == 0) {
        message.reserve(static_cast<size_t>(n - i));
        for (int k = i; k < n; ++k) {
          message.push_back(mine.Get(local_index(i, k)));  // local reads
        }
      } else {
        message = kernel.Receive(ports[pid]);
      }
      for (int child_rel : {2 * rel + 1, 2 * rel + 2}) {
        if (child_rel < p) {
          kernel.Send(ports[(owner + child_rel) % p], message);
        }
      }
      if (!need_pivot && rel != 0) {
        continue;
      }
      if (rel != 0) {
        // Unpack into the private pivot buffer (local writes).
        for (int k = i; k < n; ++k) {
          pivot.Set(static_cast<size_t>(k), message[static_cast<size_t>(k - i)]);
        }
      }
      auto pivot_at = [&](int k) {
        return static_cast<int32_t>(rel == 0 ? mine.Get(local_index(i, k))
                                             : pivot.Get(static_cast<size_t>(k)));
      };
      const int32_t a_ii = pivot_at(i);
      int j0 = pid;
      while (j0 <= i) {
        j0 += p;
      }
      for (int j = j0; j < n; j += p) {
        const int32_t m =
            GaussMultiplier(static_cast<int32_t>(mine.Get(local_index(j, i))), a_ii);
        for (int k = i; k < n; ++k) {
          auto a_jk = static_cast<int32_t>(mine.Get(local_index(j, k)));
          mine.Set(local_index(j, k),
                   static_cast<uint32_t>(GaussEliminateElement(a_jk, m, pivot_at(k))));
          machine.Compute(config.compute_per_element_ns);
        }
      }
    }
  });

  GaussResult result;
  result.elimination_ns = machine.scheduler().global_now() - t_start;
  if (config.verify) {
    Checksum sum;
    machine.scheduler().Spawn(0, "smp-check", [&] {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          int owner = RowOwner(i, p);
          size_t index = static_cast<size_t>((i - owner) / p) * n + static_cast<size_t>(j);
          sum.Add(row_store[owner]->Get(index));
        }
      }
    });
    machine.scheduler().Run();
    result.checksum = sum.value();
    result.verified = result.checksum == GaussReferenceChecksum(config.seed, n);
    PLAT_CHECK(result.verified) << "message-passing Gauss produced a wrong matrix";
  }
  return result;
}

}  // namespace platinum::apps
