// Gaussian elimination (paper Sections 1, 5.1 and Figure 1).
//
// The paper's flagship workload: integer ("simulated") Gaussian elimination
// without pivoting on a dense matrix, in three programming styles:
//   * PLATINUM coherent memory — one thread per processor, rows statically
//     assigned, the pivot row announced through an array of event counts and
//     replicated to readers by the coherent memory system;
//   * Uniform System style — rows placed round-robin across modules, each
//     thread explicitly copies the pivot row into a private local buffer
//     every round (the hand-tuned shared-memory version of LeBlanc's study);
//   * SMP message passing — fully private rows, the pivot row broadcast
//     through ports along a binomial tree.
// All three produce bit-identical results, verified against the sequential
// reference in workloads.h.
#ifndef SRC_APPS_GAUSS_H_
#define SRC_APPS_GAUSS_H_

#include <cstdint>

#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace platinum::apps {

struct GaussConfig {
  int n = 256;          // matrix dimension
  int processors = 4;   // worker threads, one per node
  uint64_t seed = 12345;
  // Integer multiply + subtract + indexing per inner-loop element on a
  // 16.67 MHz MC68020.
  sim::SimTime compute_per_element_ns = 2000;
  // Reproduces the paper's Section 4.2 anecdote: the matrix-size variable and
  // a spin-flag share one page, and every inner-loop iteration reads the size
  // from coherent memory. Spinning on the flag freezes the page, turning
  // those reads remote until the defrost daemon rescues them.
  bool colocate_size_and_flag = false;
  bool verify = true;  // check the result against the sequential reference
};

struct GaussResult {
  sim::SimTime elimination_ns = 0;  // measured elimination phase
  uint64_t checksum = 0;
  bool verified = false;
};

// Runs on a fresh kernel (the kernel must have no other live work).
GaussResult RunGaussPlatinum(kernel::Kernel& kernel, const GaussConfig& config);

// Baselines for Figure 1.
GaussResult RunGaussUniformSystem(sim::Machine& machine, const GaussConfig& config);
GaussResult RunGaussMessagePassing(kernel::Kernel& kernel, const GaussConfig& config);

}  // namespace platinum::apps

#endif  // SRC_APPS_GAUSS_H_
