#include "src/apps/mergesort.h"

#include <bit>
#include <functional>

#include "src/apps/workloads.h"
#include "src/base/check.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::apps {
namespace {

// Environment callbacks a sort worker needs from its machine.
struct SortEnv {
  std::function<void()> barrier;                  // all threads arrive
  std::function<void(int)> signal;                // advance this thread's event count
  std::function<void(int, uint32_t)> await;       // wait for ec[thread] >= value
  std::function<void()> compute;                  // per-element compare cost
  std::function<void(int)> mark_start;            // called by every thread after init
};

// The body every sorting thread runs, generic over the array type.
template <typename Array>
void SortWorkerBody(Array& a, Array& b, size_t count, int p, int pid, uint64_t seed,
                    const SortEnv& env) {
  const size_t chunk = count / static_cast<size_t>(p);
  const size_t lo = static_cast<size_t>(pid) * chunk;

  // Generate this thread's chunk (places pages locally by first touch).
  GenerateRun(a, lo, chunk, seed);
  env.barrier();
  env.mark_start(pid);

  // Leaf: sort the chunk bottom-up.
  SortChunkBottomUp(a, b, lo, chunk, env.compute);
  env.signal(pid);

  // Tree: at level k, every 2^k-th thread merges its run with its partner's.
  const int levels = std::countr_zero(static_cast<unsigned>(p));
  const int leaf_passes = chunk <= 1 ? 0 : static_cast<int>(std::bit_width(chunk - 1));
  Array* src = (leaf_passes % 2 == 0) ? &a : &b;
  Array* dst = (leaf_passes % 2 == 0) ? &b : &a;
  for (int k = 1; k <= levels; ++k) {
    if (pid % (1 << k) != 0) {
      break;  // this thread's subtree is complete
    }
    const int partner = pid + (1 << (k - 1));
    env.await(partner, static_cast<uint32_t>(k));
    const size_t run = chunk << (k - 1);
    MergeRuns(*src, *dst, lo, run, lo + run, run, lo, env.compute);
    std::swap(src, dst);
    env.signal(pid);
  }
}

// Where the fully sorted data ends up: 0 = the data array, 1 = the scratch.
int FinalLocation(size_t count, int p) {
  const size_t chunk = count / static_cast<size_t>(p);
  const int leaf_passes = chunk <= 1 ? 0 : static_cast<int>(std::bit_width(chunk - 1));
  const int levels = std::countr_zero(static_cast<unsigned>(p));
  return (leaf_passes + levels) % 2;
}

void ValidateConfig(const SortConfig& config) {
  PLAT_CHECK_GE(config.processors, 1);
  PLAT_CHECK((config.processors & (config.processors - 1)) == 0)
      << "merge-sort processor count must be a power of two";
  PLAT_CHECK_EQ(config.count % static_cast<size_t>(config.processors), size_t{0});
  PLAT_CHECK_GT(config.count / static_cast<size_t>(config.processors), size_t{1});
  // Equal power-of-two chunks give every leaf the same pass count.
  size_t chunk = config.count / static_cast<size_t>(config.processors);
  PLAT_CHECK((chunk & (chunk - 1)) == 0) << "per-thread chunk must be a power of two";
}

template <typename Array>
SortResult VerifySorted(const SortConfig& config, Array& final_array,
                        const std::function<void(std::function<void()>)>& run_in_thread,
                        sim::SimTime sort_ns) {
  SortResult result;
  result.sort_ns = sort_ns;
  if (!config.verify) {
    return result;
  }
  Checksum sum;
  bool sorted = true;
  run_in_thread([&] {
    uint32_t previous = 0;
    // A linear read-only pass: fetched in blocks where the array supports
    // it, word-at-a-time otherwise, with the same simulated access stream.
    uint32_t buf[kSortBatchWords];
    size_t done = 0;
    while (done < config.count) {
      size_t batch = std::min(config.count - done, kSortBatchWords);
      if constexpr (kArrayHasRanges<Array>) {
        final_array.GetRange(done, batch, buf);
      } else {
        for (size_t k = 0; k < batch; ++k) {
          buf[k] = final_array.Get(done + k);
        }
      }
      for (size_t k = 0; k < batch; ++k) {
        uint32_t value = buf[k];
        if ((done + k) > 0 && value < previous) {
          sorted = false;
        }
        previous = value;
        sum.Add(value);
      }
      done += batch;
    }
  });
  result.checksum = sum.value();
  result.verified =
      sorted && result.checksum == SortReferenceChecksum(config.seed, config.count);
  PLAT_CHECK(result.verified) << "merge sort produced an unsorted or wrong permutation";
  return result;
}

}  // namespace

SortResult RunMergeSortPlatinum(kernel::Kernel& kernel, const SortConfig& config) {
  ValidateConfig(config);
  const int p = config.processors;
  PLAT_CHECK_LE(p, kernel.num_processors());

  auto* space = kernel.CreateAddressSpace("mergesort");
  rt::ZoneAllocator zone(&kernel, space);
  auto a = rt::SharedArray<uint32_t>::Create(zone, "sort-data", config.count);
  auto b = rt::SharedArray<uint32_t>::Create(zone, "sort-scratch", config.count);
  rt::EventCountArray done(zone, "sort-done", static_cast<size_t>(p));
  rt::Barrier barrier(zone, "sort-barrier", static_cast<uint32_t>(p));

  sim::SimTime t_start = 0;
  SortEnv env;
  env.barrier = [&] { barrier.Wait(); };
  env.signal = [&](int t) { done.Advance(static_cast<size_t>(t)); };
  env.await = [&](int t, uint32_t v) { done.AwaitAtLeast(static_cast<size_t>(t), v); };
  env.compute = [&] { kernel.machine().Compute(config.compute_per_element_ns); };
  env.mark_start = [&](int pid) {
    if (pid == 0) {
      t_start = kernel.Now();
    }
  };

  rt::RunOnProcessors(kernel, space, p, "sort", [&](int pid) {
    SortWorkerBody(a, b, config.count, p, pid, config.seed, env);
  });
  sim::SimTime sort_ns = kernel.machine().scheduler().global_now() - t_start;

  auto& final_array = FinalLocation(config.count, p) == 0 ? a : b;
  return VerifySorted<rt::SharedArray<uint32_t>>(
      config, final_array,
      [&](std::function<void()> body) {
        kernel.SpawnThread(space, 0, "sort-check", std::move(body));
        kernel.Run();
      },
      sort_ns);
}

SortResult RunMergeSortUma(uma::UmaMachine& machine, const SortConfig& config) {
  ValidateConfig(config);
  const int p = config.processors;
  PLAT_CHECK_LE(p, machine.num_processors());
  sim::Scheduler& sched = machine.scheduler();

  auto a = uma::UmaArray::Create(machine, config.count);
  auto b = uma::UmaArray::Create(machine, config.count);
  auto done = uma::UmaArray::Create(machine, static_cast<size_t>(p));
  auto barrier_state = uma::UmaArray::Create(machine, 2);

  sim::SimTime t_start = 0;
  for (int pid = 0; pid < p; ++pid) {
    sched.Spawn(pid, "uma-sort-" + std::to_string(pid), [&, pid] {
      uint32_t sense = 0;
      SortEnv env;
      env.barrier = [&] {
        uint32_t waiting_for = 1 - sense;
        sense = waiting_for;
        uint32_t arrived = barrier_state.FetchAdd(0, 1) + 1;
        if (static_cast<int>(arrived) == p) {
          barrier_state.Set(0, 0);
          barrier_state.Set(1, waiting_for);
        } else {
          sim::SimTime backoff = 2 * sim::kMicrosecond;
          while (barrier_state.Get(1) != waiting_for) {
            sched.Sleep(backoff);
            backoff = std::min<sim::SimTime>(backoff * 2, 64 * sim::kMicrosecond);
          }
        }
      };
      env.signal = [&](int t) { done.FetchAdd(static_cast<size_t>(t), 1); };
      env.await = [&](int t, uint32_t v) {
        sim::SimTime backoff = 2 * sim::kMicrosecond;
        while (done.Get(static_cast<size_t>(t)) < v) {
          sched.Sleep(backoff);
          backoff = std::min<sim::SimTime>(backoff * 2, 64 * sim::kMicrosecond);
        }
      };
      env.compute = [&] { sched.Advance(config.compute_per_element_ns); };
      env.mark_start = [&](int id) {
        if (id == 0) {
          t_start = sched.now();
        }
      };
      SortWorkerBody(a, b, config.count, p, pid, config.seed, env);
    });
  }
  sched.Run();
  sim::SimTime sort_ns = sched.global_now() - t_start;

  auto& final_array = FinalLocation(config.count, p) == 0 ? a : b;
  return VerifySorted<uma::UmaArray>(
      config, final_array,
      [&](std::function<void()> body) {
        sched.Spawn(0, "uma-check", std::move(body));
        sched.Run();
      },
      sort_ns);
}

}  // namespace platinum::apps
