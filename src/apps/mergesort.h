// Parallel merge sort (paper Section 5.2 and Figure 5).
//
// A simple tree of merge operations, each performed by a single thread:
// every thread bottom-up merge-sorts its contiguous chunk, then pairs of
// threads merge their runs up a binary tree. On PLATINUM, the merging
// thread's linear pass over its partner's (remote) run is exactly the access
// pattern page replication prefetches well; on the Sequent-style UMA
// machine the same program is limited by its small write-through caches and
// the shared bus — the comparison of Figure 5.
#ifndef SRC_APPS_MERGESORT_H_
#define SRC_APPS_MERGESORT_H_

#include <algorithm>
#include <cstdint>

#include "src/apps/workloads.h"
#include "src/kernel/kernel.h"
#include "src/uma/uma_machine.h"

namespace platinum::apps {

struct SortConfig {
  size_t count = size_t{1} << 16;  // elements; power of two
  int processors = 4;              // power of two
  uint64_t seed = 7;
  // Compare + move per merged element.
  sim::SimTime compute_per_element_ns = 800;
  bool verify = true;
};

struct SortResult {
  sim::SimTime sort_ns = 0;
  uint64_t checksum = 0;
  bool verified = false;
};

SortResult RunMergeSortPlatinum(kernel::Kernel& kernel, const SortConfig& config);
SortResult RunMergeSortUma(uma::UmaMachine& machine, const SortConfig& config);

// --- Generic core, shared by both drivers -----------------------------------

// True when Array exposes the block accessors (rt::SharedArray does,
// uma::UmaArray does not): the generic code below batches its linear passes
// through GetRange/SetRange where available — simulated behavior is
// identical to the word-at-a-time loop by the kernel's ReadRange/WriteRange
// contract, only host-side dispatch overhead is amortized — and keeps the
// word loop otherwise.
template <typename Array>
inline constexpr bool kArrayHasRanges = requires(Array& a, uint32_t* out) {
  a.GetRange(size_t{0}, size_t{0}, out);
  a.SetRange(size_t{0}, size_t{0}, out);
};

// Staging-buffer size for the batched passes; matches rt::SharedArray's
// per-call chunk so one call is one kernel block transfer.
inline constexpr size_t kSortBatchWords = 256;

// Writes the generated input run a[lo..lo+n) = SortInputValue(seed, index),
// in blocks where the array supports it. The values come from host-side
// arithmetic, so the simulated reference stream is the same ascending
// sequence of word writes either way — batching only amortizes dispatch.
template <typename Array>
void GenerateRun(Array& a, size_t lo, size_t n, uint64_t seed) {
  if constexpr (kArrayHasRanges<Array>) {
    uint32_t buf[kSortBatchWords];
    size_t done = 0;
    while (done < n) {
      size_t batch = std::min(n - done, kSortBatchWords);
      for (size_t k = 0; k < batch; ++k) {
        buf[k] = SortInputValue(seed, lo + done + k);
      }
      a.SetRange(lo + done, batch, buf);
      done += batch;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      a.Set(lo + i, SortInputValue(seed, lo + i));
    }
  }
}

// Merges src[lo1..lo1+n1) and src[lo2..lo2+n2) (both sorted) into
// dst[out..). `compute` is charged once per element moved.
//
// Deliberately word-at-a-time throughout, tails included: every element's
// move is compute-then-copy, and batching the tails would group the
// references after their compute charges — same total time on an idle page,
// but a reordered reference stream that concurrent protocol decisions
// (freezes, defrosts on other processors) can observe. Only the pure linear
// passes (generation, verification) use the block accessors.
template <typename Array, typename ComputeFn>
void MergeRuns(Array& src, Array& dst, size_t lo1, size_t n1, size_t lo2, size_t n2, size_t out,
               ComputeFn&& compute) {
  size_t i = 0;
  size_t j = 0;
  uint32_t a = n1 > 0 ? src.Get(lo1) : 0;
  uint32_t b = n2 > 0 ? src.Get(lo2) : 0;
  while (i < n1 && j < n2) {
    compute();
    if (a <= b) {
      dst.Set(out++, a);
      if (++i < n1) {
        a = src.Get(lo1 + i);
      }
    } else {
      dst.Set(out++, b);
      if (++j < n2) {
        b = src.Get(lo2 + j);
      }
    }
  }
  while (i < n1) {
    compute();
    dst.Set(out++, src.Get(lo1 + i));
    ++i;
  }
  while (j < n2) {
    compute();
    dst.Set(out++, src.Get(lo2 + j));
    ++j;
  }
}

// Bottom-up merge sort of a[lo..lo+len) using b as scratch. Returns the
// number of passes performed; the sorted run is in `a` when the count is
// even, in `b` when odd.
template <typename Array, typename ComputeFn>
int SortChunkBottomUp(Array& a, Array& b, size_t lo, size_t len, ComputeFn&& compute) {
  int passes = 0;
  Array* src = &a;
  Array* dst = &b;
  for (size_t width = 1; width < len; width *= 2) {
    for (size_t start = 0; start < len; start += 2 * width) {
      size_t n1 = std::min(width, len - start);
      size_t n2 = std::min(width, len - std::min(len, start + width));
      MergeRuns(*src, *dst, lo + start, n1, lo + start + width, n2, lo + start, compute);
    }
    std::swap(src, dst);
    ++passes;
  }
  return passes;
}

}  // namespace platinum::apps

#endif  // SRC_APPS_MERGESORT_H_
