// Parallel merge sort (paper Section 5.2 and Figure 5).
//
// A simple tree of merge operations, each performed by a single thread:
// every thread bottom-up merge-sorts its contiguous chunk, then pairs of
// threads merge their runs up a binary tree. On PLATINUM, the merging
// thread's linear pass over its partner's (remote) run is exactly the access
// pattern page replication prefetches well; on the Sequent-style UMA
// machine the same program is limited by its small write-through caches and
// the shared bus — the comparison of Figure 5.
#ifndef SRC_APPS_MERGESORT_H_
#define SRC_APPS_MERGESORT_H_

#include <cstdint>

#include "src/kernel/kernel.h"
#include "src/uma/uma_machine.h"

namespace platinum::apps {

struct SortConfig {
  size_t count = size_t{1} << 16;  // elements; power of two
  int processors = 4;              // power of two
  uint64_t seed = 7;
  // Compare + move per merged element.
  sim::SimTime compute_per_element_ns = 800;
  bool verify = true;
};

struct SortResult {
  sim::SimTime sort_ns = 0;
  uint64_t checksum = 0;
  bool verified = false;
};

SortResult RunMergeSortPlatinum(kernel::Kernel& kernel, const SortConfig& config);
SortResult RunMergeSortUma(uma::UmaMachine& machine, const SortConfig& config);

// --- Generic core, shared by both drivers -----------------------------------

// Merges src[lo1..lo1+n1) and src[lo2..lo2+n2) (both sorted) into
// dst[out..). `compute` is charged once per element moved.
template <typename Array, typename ComputeFn>
void MergeRuns(Array& src, Array& dst, size_t lo1, size_t n1, size_t lo2, size_t n2, size_t out,
               ComputeFn&& compute) {
  size_t i = 0;
  size_t j = 0;
  uint32_t a = n1 > 0 ? src.Get(lo1) : 0;
  uint32_t b = n2 > 0 ? src.Get(lo2) : 0;
  while (i < n1 && j < n2) {
    compute();
    if (a <= b) {
      dst.Set(out++, a);
      if (++i < n1) {
        a = src.Get(lo1 + i);
      }
    } else {
      dst.Set(out++, b);
      if (++j < n2) {
        b = src.Get(lo2 + j);
      }
    }
  }
  while (i < n1) {
    compute();
    dst.Set(out++, src.Get(lo1 + i));
    ++i;
  }
  while (j < n2) {
    compute();
    dst.Set(out++, src.Get(lo2 + j));
    ++j;
  }
}

// Bottom-up merge sort of a[lo..lo+len) using b as scratch. Returns the
// number of passes performed; the sorted run is in `a` when the count is
// even, in `b` when odd.
template <typename Array, typename ComputeFn>
int SortChunkBottomUp(Array& a, Array& b, size_t lo, size_t len, ComputeFn&& compute) {
  int passes = 0;
  Array* src = &a;
  Array* dst = &b;
  for (size_t width = 1; width < len; width *= 2) {
    for (size_t start = 0; start < len; start += 2 * width) {
      size_t n1 = std::min(width, len - start);
      size_t n2 = std::min(width, len - std::min(len, start + width));
      MergeRuns(*src, *dst, lo + start, n1, lo + start + width, n2, lo + start, compute);
    }
    std::swap(src, dst);
    ++passes;
  }
  return passes;
}

}  // namespace platinum::apps

#endif  // SRC_APPS_MERGESORT_H_
