#include "src/apps/neural.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "src/apps/workloads.h"
#include "src/base/check.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::apps {
namespace {

// Q12 fixed point: 4096 == 1.0.
constexpr int32_t kOne = 4096;
constexpr int kShift = 12;

int32_t Sigma(int64_t net) {
  // Piecewise-linear logistic approximation.
  int64_t s = kOne / 2 + (net >> 2);
  if (s < 0) {
    return 0;
  }
  if (s > kOne) {
    return kOne;
  }
  return static_cast<int32_t>(s);
}

int32_t SigmaPrime(int32_t x) {
  // x * (1 - x), in Q12.
  return static_cast<int32_t>((static_cast<int64_t>(x) * (kOne - x)) >> kShift);
}

}  // namespace

NeuralResult RunNeuralPlatinum(kernel::Kernel& kernel, const NeuralConfig& config) {
  const int n_in = config.inputs;
  const int n_hid = config.hidden;
  const int n_out = config.outputs;
  const int n_units = n_in + n_hid + n_out;
  const int p = config.processors;
  PLAT_CHECK_GE(p, 1);
  PLAT_CHECK_LE(p, kernel.num_processors());
  PLAT_CHECK_LE(config.patterns, n_in);
  PLAT_CHECK_LE(config.patterns, n_out);

  auto* space = kernel.CreateAddressSpace("neural");
  rt::ZoneAllocator zone(&kernel, space);
  // The simulator was written by a newcomer (Section 5.3): activations,
  // errors and all the weights are packed together without regard to page
  // boundaries, so units simulated by different processors share pages at
  // very fine grain.
  auto x = rt::SharedArray<int32_t>::Create(zone, "nn-activations", n_units);
  auto y = rt::SharedArray<int32_t>::Create(zone, "nn-errors", n_units);
  auto w = rt::SharedArray<int32_t>::Create(zone, "nn-weights",
                                            static_cast<size_t>(n_units) * n_units);
  rt::Barrier barrier(zone, "nn-barrier", static_cast<uint32_t>(p));
  // The relaxation reads neighbors' activations, errors and weights while
  // their owners update them, with no synchronization — chaotic relaxation
  // relying only on word atomicity. Tell the race detector this sharing is
  // intentional rather than a bug.
  kernel.AnnotateIntentionalSharing(space, x.base_va(), static_cast<uint32_t>(n_units) * 4);
  kernel.AnnotateIntentionalSharing(space, y.base_va(), static_cast<uint32_t>(n_units) * 4);
  kernel.AnnotateIntentionalSharing(space, w.base_va(),
                                    static_cast<uint32_t>(n_units) * n_units * 4);
  if (config.advise_write_shared) {
    kernel.AdviseMemory(space, x.base_va(), static_cast<uint32_t>(n_units) * 4,
                        mem::MemoryAdvice::kWriteShared);
    kernel.AdviseMemory(space, y.base_va(), static_cast<uint32_t>(n_units) * 4,
                        mem::MemoryAdvice::kWriteShared);
    kernel.AdviseMemory(space, w.base_va(),
                        static_cast<uint32_t>(n_units) * n_units * 4,
                        mem::MemoryAdvice::kWriteShared);
  }

  auto weight_index = [n_units](int u, int v) {
    return static_cast<size_t>(u) * n_units + static_cast<size_t>(v);
  };
  // Unit topology: hidden units read all inputs, output units read all
  // hidden units; hidden error terms read back from all outputs.
  auto fanin_first = [&](int u) { return u < n_in + n_hid ? 0 : n_in; };
  auto fanin_last = [&](int u) { return u < n_in + n_hid ? n_in : n_in + n_hid; };
  auto is_hidden = [&](int u) { return u >= n_in && u < n_in + n_hid; };

  // For-loop parallelization on units, dealt out so that every processor's
  // per-step weight traffic is balanced (hidden units touch fan-in + fan-out
  // weights, output units only fan-in). Greedy largest-first bin packing.
  std::vector<int> owner(n_units, -1);
  {
    std::vector<std::pair<int, int>> cost_unit;  // (work, unit)
    for (int u = n_in; u < n_units; ++u) {
      int work = (fanin_last(u) - fanin_first(u)) + (is_hidden(u) ? n_out : 1);
      cost_unit.emplace_back(work, u);
    }
    std::sort(cost_unit.rbegin(), cost_unit.rend());
    std::vector<long> load(p, 0);
    for (const auto& [work, u] : cost_unit) {
      int best = static_cast<int>(std::min_element(load.begin(), load.end()) - load.begin());
      owner[u] = best;
      load[best] += work;
    }
  }

  const int32_t eta = kOne / 2;
  uint64_t initial_error = 0;
  uint64_t final_error = 0;
  sim::SimTime t_start = 0;

  rt::RunOnProcessors(kernel, space, p, "neural", [&](int pid) {
    sim::Machine& machine = kernel.machine();
    // Weight initialization: owners write their units' fan-in weights (one
    // contiguous run per unit, written with the block-access API).
    std::vector<int32_t> fanin(static_cast<size_t>(n_in + n_hid));
    for (int u = n_in; u < n_units; ++u) {
      if (owner[u] != pid) {
        continue;
      }
      const int first = fanin_first(u);
      const int last = fanin_last(u);
      for (int v = first; v < last; ++v) {
        fanin[static_cast<size_t>(v - first)] =
            static_cast<int32_t>(Mix64(config.seed ^ weight_index(u, v)) % 2048) - 1024;
      }
      w.SetRange(weight_index(u, first), static_cast<size_t>(last - first), fanin.data());
    }
    barrier.Wait();
    if (pid == 0) {
      t_start = kernel.Now();
    }

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      uint64_t epoch_error = 0;
      for (int pattern = 0; pattern < config.patterns; ++pattern) {
        // Clamp the one-hot input.
        if (pid == 0) {
          for (int u = 0; u < n_in; ++u) {
            x.Set(u, u == pattern ? kOne : 0);
          }
        }
        barrier.Wait();

        // Combined relaxation of the activation and error dynamics
        // (recurrent backpropagation settles both by iteration). Processors
        // run their units' updates with no synchronization, relying only on
        // the atomicity of word accesses — the paper's programming style.
        for (int step = 0; step < config.relax_steps; ++step) {
          for (int u = n_in; u < n_units; ++u) {
            if (owner[u] != pid) {
              continue;
            }
            int64_t net = 0;
            for (int v = fanin_first(u); v < fanin_last(u); ++v) {
              net += (static_cast<int64_t>(w.Get(weight_index(u, v))) * x.Get(v)) >> kShift;
              machine.Compute(config.compute_per_weight_ns);
            }
            x.Set(u, Sigma(net));
            if (is_hidden(u)) {
              // Error relaxation: back-propagate through the fan-out weights.
              int64_t back = 0;
              for (int o = n_in + n_hid; o < n_units; ++o) {
                back += (static_cast<int64_t>(w.Get(weight_index(o, u))) * y.Get(o)) >> kShift;
                machine.Compute(config.compute_per_weight_ns);
              }
              y.Set(u, static_cast<int32_t>((back * SigmaPrime(x.Get(u))) >> kShift));
            } else {
              int32_t target = (u - n_in - n_hid) == pattern ? kOne : 0;
              y.Set(u, target - x.Get(u));
              machine.Compute(config.compute_per_weight_ns);
            }
          }
        }

        // Weight update along the settled gradient.
        for (int u = n_in; u < n_units; ++u) {
          if (owner[u] != pid) {
            continue;
          }
          int32_t yu = y.Get(u);
          for (int v = fanin_first(u); v < fanin_last(u); ++v) {
            int64_t dw = (static_cast<int64_t>(eta) * yu) >> kShift;
            dw = (dw * x.Get(v)) >> kShift;
            w.Set(weight_index(u, v),
                  w.Get(weight_index(u, v)) + static_cast<int32_t>(dw));
            machine.Compute(config.compute_per_weight_ns);
          }
        }

        // Track the epoch error (host-side accumulation by thread 0).
        if (pid == 0) {
          for (int o = n_in + n_hid; o < n_units; ++o) {
            int32_t target = (o - n_in - n_hid) == pattern ? kOne : 0;
            epoch_error += static_cast<uint64_t>(std::abs(target - x.Get(o)));
          }
        }
        barrier.Wait();
      }
      if (pid == 0) {
        if (epoch == 0) {
          initial_error = epoch_error;
        }
        final_error = epoch_error;
      }
    }
  });

  NeuralResult result;
  result.train_ns = kernel.machine().scheduler().global_now() - t_start;
  result.initial_error = initial_error;
  result.final_error = final_error;
  result.verified = !config.verify || final_error < initial_error;
  PLAT_CHECK(result.verified) << "neural simulator failed to learn (error " << initial_error
                              << " -> " << final_error << ")";
  return result;
}

}  // namespace platinum::apps
