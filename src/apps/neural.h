// Recurrent-backpropagation network simulator (paper Section 5.3, Figure 6).
//
// A three-layer network (16-8-16 encoder: 40 units, 16 input/output pairs)
// trained by relaxation, parallelized by simple for-loop parallelization on
// units. Threads share the activation and error vectors at very fine grain
// and rely only on the atomicity of word operations for synchronization — so
// the coherent memory system quickly gives up and freezes the shared pages,
// and each additional processor contributes roughly half of an all-local
// processor: the paper's Figure 6 behaviour.
#ifndef SRC_APPS_NEURAL_H_
#define SRC_APPS_NEURAL_H_

#include <cstdint>

#include "src/kernel/kernel.h"

namespace platinum::apps {

struct NeuralConfig {
  int inputs = 16;
  int hidden = 8;
  int outputs = 16;
  int patterns = 16;   // the classic encoder problem: one-hot in == out
  int epochs = 12;
  int relax_steps = 5;  // settling iterations per phase
  int processors = 4;
  uint64_t seed = 3;
  // Multiply-accumulate per weight: the simulator computes in floating point,
  // software-emulated/MC68881-assisted on the 16.67 MHz MC68020.
  sim::SimTime compute_per_weight_ns = 22000;
  bool verify = true;  // training error must decrease
  // Section 9 hook: advise the kernel up front that the shared vectors and
  // weights are fine-grain write-shared, so they freeze immediately instead
  // of being discovered by a round of migrations and invalidations.
  bool advise_write_shared = false;
};

struct NeuralResult {
  sim::SimTime train_ns = 0;
  // Sum of |target - output| in fixed-point units, before and after training.
  uint64_t initial_error = 0;
  uint64_t final_error = 0;
  bool verified = false;
};

NeuralResult RunNeuralPlatinum(kernel::Kernel& kernel, const NeuralConfig& config);

}  // namespace platinum::apps

#endif  // SRC_APPS_NEURAL_H_
