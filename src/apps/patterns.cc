#include "src/apps/patterns.h"

#include "src/apps/workloads.h"
#include "src/base/check.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::apps {

std::string_view AccessPatternName(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kPrivate:
      return "private";
    case AccessPattern::kReadShared:
      return "read-shared";
    case AccessPattern::kMigratory:
      return "migratory";
    case AccessPattern::kProducerConsumer:
      return "producer-consumer";
    case AccessPattern::kHotSpotWrite:
      return "hot-spot-write";
    case AccessPattern::kFalseSharing:
      return "false-sharing";
  }
  return "?";
}

PatternResult RunPattern(kernel::Kernel& kernel, const PatternConfig& config) {
  PLAT_CHECK_GE(config.processors, 1);
  PLAT_CHECK_LE(config.processors, kernel.num_processors());
  PLAT_CHECK_GE(config.pages, 1);
  sim::Machine& machine = kernel.machine();
  sim::Scheduler& sched = machine.scheduler();

  auto* space = kernel.CreateAddressSpace("pattern");
  rt::ZoneAllocator zone(&kernel, space);
  const uint32_t page_words = kernel.page_size() / 4;
  const int p = config.processors;

  // Region layout depends on the pattern: kPrivate gets one region per
  // processor; everything else shares one region.
  size_t region_words = static_cast<size_t>(config.pages) * page_words;
  std::vector<rt::SharedArray<uint32_t>> regions;
  if (config.pattern == AccessPattern::kPrivate) {
    for (int t = 0; t < p; ++t) {
      regions.push_back(rt::SharedArray<uint32_t>::Create(
          zone, "private-" + std::to_string(t), region_words));
    }
  } else {
    regions.push_back(rt::SharedArray<uint32_t>::Create(zone, "shared", region_words));
  }
  rt::Barrier barrier(zone, "pattern-barrier", static_cast<uint32_t>(p));

  const sim::MachineStats before = machine.stats();
  sim::SimTime t_start = 0;

  // Every access below is deliberately word-at-a-time: the pattern driver
  // exists to emit individual coherence-relevant references (random indexes,
  // read-modify-writes, one-touch-per-page strides), none of which form the
  // contiguous linear passes the block accessors (GetRange/SetRange) batch.
  rt::RunOnProcessors(kernel, space, p, "pattern", [&](int pid) {
    auto& shared = regions[config.pattern == AccessPattern::kPrivate
                               ? static_cast<size_t>(pid)
                               : 0];
    uint64_t rng = config.seed * 1000003 + static_cast<uint64_t>(pid);
    auto next_index = [&]() {
      rng = Mix64(rng);
      return static_cast<size_t>(rng % region_words);
    };

    // Writer initializes shared data so the pattern starts from one copy.
    if (config.pattern != AccessPattern::kPrivate && pid == 0) {
      for (size_t i = 0; i < region_words; i += page_words) {
        shared.Set(i, 1);
      }
    }
    barrier.Wait();
    if (pid == 0) {
      t_start = kernel.Now();
    }

    for (int round = 0; round < config.rounds; ++round) {
      switch (config.pattern) {
        case AccessPattern::kPrivate:
          for (int r = 0; r < config.refs_per_round; ++r) {
            size_t index = next_index();
            shared.Set(index, shared.Get(index) + 1);
          }
          break;

        case AccessPattern::kReadShared:
          for (int r = 0; r < config.refs_per_round; ++r) {
            shared.Get(next_index());
          }
          break;

        case AccessPattern::kMigratory:
          // One processor at a time owns the region exclusively.
          if (round % p == pid) {
            for (int r = 0; r < config.refs_per_round; ++r) {
              size_t index = next_index();
              shared.Set(index, shared.Get(index) + 1);
            }
          }
          barrier.Wait();
          break;

        case AccessPattern::kProducerConsumer:
          if (round % 2 == 0) {
            if (pid == 0) {
              for (int r = 0; r < config.refs_per_round; ++r) {
                shared.Set(next_index(), static_cast<uint32_t>(round));
              }
            }
          } else if (pid != 0) {
            for (int r = 0; r < config.refs_per_round; ++r) {
              shared.Get(next_index());
            }
          }
          barrier.Wait();
          break;

        case AccessPattern::kHotSpotWrite:
          for (int r = 0; r < config.refs_per_round; ++r) {
            size_t index = static_cast<size_t>(
                (r * 17 + pid) % static_cast<int>(page_words));
            shared.Set(index, shared.Get(index) + 1);
          }
          break;

        case AccessPattern::kFalseSharing: {
          // Each processor owns a disjoint word of page 0, updated
          // repeatedly: no data is logically shared at all.
          size_t index = static_cast<size_t>(pid);
          for (int r = 0; r < config.refs_per_round; ++r) {
            shared.Set(index, shared.Get(index) + 1);
          }
          break;
        }
      }
      if (config.think_ns > 0) {
        sched.Sleep(config.think_ns);
      }
    }
  });

  const sim::MachineStats delta = machine.stats() - before;
  PatternResult result;
  result.elapsed_ns = sched.global_now() - t_start;
  // Protocol actions are attributed per data page so the synchronization
  // page's own behaviour (the barrier freezes, like any hot sync variable)
  // does not pollute the pattern's signature.
  auto accumulate = [&](const std::string& name) {
    vm::MemoryObject* object = kernel.FindMemoryObject(name);
    for (uint32_t i = 0; i < object->num_pages(); ++i) {
      const mem::CpageStats& page_stats =
          kernel.memory().cpages().at(object->cpage(i)).stats();
      result.replications += page_stats.replications;
      result.migrations += page_stats.migrations;
      result.remote_maps += page_stats.remote_maps;
      result.freezes += page_stats.freezes;
    }
  };
  if (config.pattern == AccessPattern::kPrivate) {
    for (int t = 0; t < p; ++t) {
      accumulate("private-" + std::to_string(t));
    }
  } else {
    accumulate("shared");
  }
  result.remote_references = delta.remote_references();
  result.local_references = delta.local_reads + delta.local_writes;
  return result;
}

}  // namespace platinum::apps
