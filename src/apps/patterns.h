// Synthetic memory-access-pattern workloads.
//
// The paper argues that the value of the remote-mapping option depends
// entirely on the *sharing pattern* of the data (Sections 4-6). This module
// generates the canonical NUMA sharing patterns so policies can be
// characterized systematically — the "systematic experiments" Section 9
// promises once the application collection has grown.
#ifndef SRC_APPS_PATTERNS_H_
#define SRC_APPS_PATTERNS_H_

#include <cstdint>
#include <string_view>

#include "src/kernel/kernel.h"
#include "src/sim/stats.h"

namespace platinum::apps {

enum class AccessPattern : uint8_t {
  kPrivate,           // each processor works on its own pages
  kReadShared,        // written once, then read by everyone
  kMigratory,         // pages used exclusively by one processor at a time
  kProducerConsumer,  // one writer per phase, many readers next phase
  kHotSpotWrite,      // everyone read-modify-writes one page concurrently
  kFalseSharing,      // disjoint words of one page written by all
};

std::string_view AccessPatternName(AccessPattern pattern);

struct PatternConfig {
  AccessPattern pattern = AccessPattern::kReadShared;
  int processors = 8;
  // Pages in the shared region (per processor for kPrivate).
  int pages = 4;
  int rounds = 30;
  // References issued per processor per round.
  int refs_per_round = 64;
  // Idle time between rounds; relative to t1 it decides whether a migratory
  // pattern looks quiescent or hot to the timestamp policy.
  sim::SimTime think_ns = 200 * sim::kMicrosecond;
  uint64_t seed = 11;
};

struct PatternResult {
  sim::SimTime elapsed_ns = 0;
  // Protocol action deltas attributable to this run.
  uint64_t replications = 0;
  uint64_t migrations = 0;
  uint64_t remote_maps = 0;
  uint64_t freezes = 0;
  uint64_t remote_references = 0;
  uint64_t local_references = 0;
};

// Runs the pattern on a fresh address space of `kernel`.
PatternResult RunPattern(kernel::Kernel& kernel, const PatternConfig& config);

}  // namespace platinum::apps

#endif  // SRC_APPS_PATTERNS_H_
