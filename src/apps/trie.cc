#include "src/apps/trie.h"

#include <string>

#include "src/base/check.h"

namespace platinum::apps {

uint32_t TrieInteriorSlotsFor(uint32_t max_keys) {
  // A level-l interior node exists only when two distinct keys of the dense
  // universe [0, max_keys) share their low l chunks, i.e. when 16^l <
  // max_keys; there are then exactly 16^l distinct prefixes at that level.
  uint64_t slots = 0;
  for (uint64_t level_nodes = 1; level_nodes < max_keys; level_nodes *= SharedTrie::kFanout) {
    slots += level_nodes;
  }
  // Small slack so an off-by-one in a future key-universe tweak aborts in
  // AllocInterior with a clear message instead of corrupting a neighbor zone.
  return static_cast<uint32_t>(slots) + 8;
}

uint32_t TrieVisitRank(uint32_t key) {
  key = ((key & 0x0F0F0F0Fu) << 4) | ((key >> 4) & 0x0F0F0F0Fu);
  key = ((key & 0x00FF00FFu) << 8) | ((key >> 8) & 0x00FF00FFu);
  return (key << 16) | (key >> 16);
}

SharedTrie SharedTrie::Create(rt::ZoneAllocator& zone, const Options& options) {
  PLAT_CHECK_GE(options.max_keys, 2u);
  PLAT_CHECK((options.max_keys & (options.max_keys - 1)) == 0)
      << "trie key universe must be a power of two";

  SharedTrie t;
  t.kernel_ = &zone.kernel();
  t.interior_slots_ = TrieInteriorSlotsFor(options.max_keys);
  // At most max_keys live leaves; freed slots recycle through the freelist.
  t.leaf_slots_ = options.max_keys + 8;
  t.interior_ = rt::SharedArray<uint32_t>::Create(
      zone, "trie-interior", static_cast<size_t>(t.interior_slots_) * kInteriorWords);
  t.leaf_ = rt::SharedArray<uint32_t>::Create(
      zone, "trie-leaf", static_cast<size_t>(t.leaf_slots_) * kLeafWords);
  t.alloc_state_ = rt::SharedArray<uint32_t>::Create(zone, "trie-alloc", 3);
  t.slice_locks_.reserve(kFanout);
  for (uint32_t s = 0; s < kFanout; ++s) {
    t.slice_locks_.emplace_back(zone, "trie-slice-lock-" + std::to_string(s));
  }
  t.alloc_lock_ = rt::SpinLock(zone, "trie-alloc-lock");

  kernel::Kernel& kernel = zone.kernel();
  vm::AddressSpace* space = zone.space();
  // Version words synchronize (release on the writer's closing increment,
  // acquire on a reader's validation); the node payloads are shared
  // intentionally — the version protocol detects and retries racing reads.
  for (uint32_t slot = 0; slot < t.interior_slots_; ++slot) {
    kernel.RegisterSyncWords(space, t.interior_.va(t.InteriorWord(slot, 0)), 1);
    kernel.AnnotateIntentionalSharing(space, t.interior_.va(t.InteriorWord(slot, 1)),
                                      kFanout * 4);
  }
  for (uint32_t slot = 0; slot < t.leaf_slots_; ++slot) {
    kernel.RegisterSyncWords(space, t.leaf_.va(t.LeafWord(slot, 0)), 1);
    kernel.AnnotateIntentionalSharing(space, t.leaf_.va(t.LeafWord(slot, 1)),
                                      (kLeafWords - 1) * 4);
  }
  if (options.advise) {
    kernel.AdviseMemory(space, t.interior_.base_va(),
                        static_cast<uint32_t>(t.interior_.size()) * 4,
                        mem::MemoryAdvice::kReadMostly);
    kernel.AdviseMemory(space, t.leaf_.base_va(), static_cast<uint32_t>(t.leaf_.size()) * 4,
                        mem::MemoryAdvice::kWriteShared);
  }

  // No simulated writes here: Create runs during machine setup, outside any
  // fiber. Fresh zone pages are zero-filled, and the allocator words are
  // encoded so all-zeros is the initial state — the root's children start
  // empty, every version word starts even (stable), the leaf bump and
  // freelist start at zero, and the interior bump counts allocations
  // *beyond* the root (slot 0 is taken at birth).
  return t;
}

void SharedTrie::SetChild(uint32_t interior_slot, uint32_t idx, uint32_t ref) {
  // Bump the interior version around the single-word child swap. Lookups do
  // not validate interior nodes (the swap is atomic and interiors are never
  // recycled, the fib_trie argument); the version still brackets every
  // structural mutation for forensics and future node contraction.
  uint32_t version = interior_.Get(InteriorWord(interior_slot, 0));
  interior_.Set(InteriorWord(interior_slot, 0), version + 1);
  interior_.Set(InteriorWord(interior_slot, 1 + idx), ref);
  interior_.Set(InteriorWord(interior_slot, 0), version + 2);
}

uint32_t SharedTrie::AllocInterior() {
  alloc_lock_.Acquire();
  uint32_t slot = alloc_state_.Get(0) + 1;  // slot 0 is the root, taken at birth
  PLAT_CHECK_LT(slot, interior_slots_)
      << "trie interior pool exhausted; keys outside [0, max_keys)?";
  alloc_state_.Set(0, slot);
  alloc_lock_.Release();
  ++host_stats_.interior_allocated;
  return slot;
}

uint32_t SharedTrie::AllocLeaf(uint32_t key, uint32_t value) {
  alloc_lock_.Acquire();
  uint32_t slot;
  uint32_t free_head = alloc_state_.Get(2);
  if (free_head != 0) {
    slot = free_head - 1;
    alloc_state_.Set(2, leaf_.Get(LeafWord(slot, 1)));  // next link lives in the key word
    ++host_stats_.leaf_reused;
  } else {
    slot = alloc_state_.Get(1);
    PLAT_CHECK_LT(slot, leaf_slots_) << "trie leaf pool exhausted";
    alloc_state_.Set(1, slot + 1);
    ++host_stats_.leaf_allocated;
  }
  alloc_lock_.Release();
  // Initialize before publication. A recycled slot's version is odd (made so
  // by FreeLeaf), so a reader still holding the stale child reference keeps
  // retrying; the closing increment below returns it to even = stable.
  leaf_.Set(LeafWord(slot, 1), key);
  leaf_.Set(LeafWord(slot, 2), value);
  uint32_t version = leaf_.Get(LeafWord(slot, 0));
  if ((version & 1) != 0) {
    leaf_.Set(LeafWord(slot, 0), version + 1);
  }
  return slot;
}

void SharedTrie::FreeLeaf(uint32_t slot) {
  // The caller already unlinked the leaf from its parent; mark it unstable
  // so readers that raced the unlink discard what they read.
  uint32_t version = leaf_.Get(LeafWord(slot, 0));
  leaf_.Set(LeafWord(slot, 0), version + 1);
  alloc_lock_.Acquire();
  leaf_.Set(LeafWord(slot, 1), alloc_state_.Get(2));
  alloc_state_.Set(2, slot + 1);
  alloc_lock_.Release();
}

bool SharedTrie::Lookup(uint32_t key, uint32_t* value) {
  rt::SpinBackoff backoff;
  for (;;) {
    uint32_t node = kRootSlot;
    int level = 0;
    for (;;) {
      uint32_t ref = GetChild(node, Chunk(key, level));
      if (ref == 0) {
        return false;
      }
      if (!RefIsLeaf(ref)) {
        node = RefSlot(ref);
        ++level;
        PLAT_DCHECK(level < kMaxLevels);
        continue;
      }
      // Versioned leaf read: version, payload, version again. An odd or
      // changed version means the leaf was rewritten, freed or recycled
      // underneath us; restart the descent from the root (the path itself
      // may have changed).
      uint32_t slot = RefSlot(ref);
      uint32_t v1 = leaf_.Get(LeafWord(slot, 0));
      if ((v1 & 1) != 0) {
        break;
      }
      uint32_t leaf_key = leaf_.Get(LeafWord(slot, 1));
      uint32_t leaf_value = leaf_.Get(LeafWord(slot, 2));
      uint32_t v2 = leaf_.Get(LeafWord(slot, 0));
      if (v1 != v2) {
        break;
      }
      if (leaf_key != key) {
        return false;
      }
      *value = leaf_value;
      return true;
    }
    ++host_stats_.lookup_retries;
    kernel_->machine().scheduler().Sleep(backoff.Next());
  }
}

bool SharedTrie::Insert(uint32_t key, uint32_t value) {
  rt::SpinLock& lock = slice_locks_[Chunk(key, 0)];
  lock.Acquire();
  bool inserted = false;
  uint32_t node = kRootSlot;
  int level = 0;
  for (;;) {
    uint32_t idx = Chunk(key, level);
    uint32_t ref = GetChild(node, idx);
    if (ref == 0) {
      SetChild(node, idx, MakeRef(AllocLeaf(key, value), true));
      inserted = true;
      break;
    }
    if (!RefIsLeaf(ref)) {
      node = RefSlot(ref);
      ++level;
      PLAT_CHECK_LT(level, kMaxLevels);
      continue;
    }
    uint32_t slot = RefSlot(ref);
    uint32_t existing_key = leaf_.Get(LeafWord(slot, 1));  // stable under the slice lock
    if (existing_key == key) {
      // In-place overwrite under the version protocol.
      uint32_t version = leaf_.Get(LeafWord(slot, 0));
      leaf_.Set(LeafWord(slot, 0), version + 1);
      leaf_.Set(LeafWord(slot, 2), value);
      leaf_.Set(LeafWord(slot, 0), version + 2);
      ++host_stats_.inserts_update;
      lock.Release();
      return false;
    }
    // Two keys collide on this slot: grow a chain of interior nodes down to
    // their first differing chunk, off to the side, then publish the chain
    // head with one child swap. Readers see the old leaf or the whole chain.
    int depth = level + 1;
    uint32_t chain_head = AllocInterior();
    uint32_t chain_tail = chain_head;
    while (Chunk(existing_key, depth) == Chunk(key, depth)) {
      PLAT_CHECK_LT(depth, kMaxLevels - 1);
      uint32_t next = AllocInterior();
      SetChild(chain_tail, Chunk(key, depth), MakeRef(next, false));
      chain_tail = next;
      ++depth;
    }
    SetChild(chain_tail, Chunk(existing_key, depth), ref);
    SetChild(chain_tail, Chunk(key, depth), MakeRef(AllocLeaf(key, value), true));
    SetChild(node, idx, MakeRef(chain_head, false));
    level = depth;
    inserted = true;
    break;
  }
  if (static_cast<uint64_t>(level) > host_stats_.max_depth) {
    host_stats_.max_depth = static_cast<uint64_t>(level);
  }
  ++host_stats_.inserts_new;
  lock.Release();
  return inserted;
}

bool SharedTrie::Erase(uint32_t key) {
  rt::SpinLock& lock = slice_locks_[Chunk(key, 0)];
  lock.Acquire();
  uint32_t node = kRootSlot;
  int level = 0;
  for (;;) {
    uint32_t idx = Chunk(key, level);
    uint32_t ref = GetChild(node, idx);
    if (ref == 0) {
      ++host_stats_.erases_miss;
      lock.Release();
      return false;
    }
    if (!RefIsLeaf(ref)) {
      node = RefSlot(ref);
      ++level;
      PLAT_CHECK_LT(level, kMaxLevels);
      continue;
    }
    uint32_t slot = RefSlot(ref);
    if (leaf_.Get(LeafWord(slot, 1)) != key) {
      ++host_stats_.erases_miss;
      lock.Release();
      return false;
    }
    // Unlink first, then destabilize: a reader that fetched the child word
    // before the unlink validates against the odd version and retries.
    // Interior chains are deliberately not contracted (fib_trie resizes
    // lazily too); the pool bound is the dense-universe prefix count, which
    // deletion cannot grow.
    SetChild(node, idx, 0);
    FreeLeaf(slot);
    ++host_stats_.erases_hit;
    lock.Release();
    return true;
  }
}

void SharedTrie::VisitNode(uint32_t interior_slot,
                           const std::function<void(uint32_t, uint32_t)>& fn) {
  for (uint32_t idx = 0; idx < kFanout; ++idx) {
    uint32_t ref = GetChild(interior_slot, idx);
    if (ref == 0) {
      continue;
    }
    if (RefIsLeaf(ref)) {
      uint32_t slot = RefSlot(ref);
      fn(leaf_.Get(LeafWord(slot, 1)), leaf_.Get(LeafWord(slot, 2)));
    } else {
      VisitNode(RefSlot(ref), fn);
    }
  }
}

void SharedTrie::Visit(const std::function<void(uint32_t, uint32_t)>& fn) {
  VisitNode(kRootSlot, fn);
}

uint64_t SharedTrie::ContentChecksum() {
  Checksum sum;
  Visit([&sum](uint32_t key, uint32_t value) {
    sum.Add(key);
    sum.Add(value);
  });
  return sum.value();
}

uint64_t SharedTrie::CountEntries() {
  uint64_t count = 0;
  Visit([&count](uint32_t, uint32_t) { ++count; });
  return count;
}

}  // namespace platinum::apps
