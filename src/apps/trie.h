// A concurrent radix trie in coherent memory — the serving workload's data
// structure (docs/WORKLOADS.md).
//
// Modeled on the Linux fib_trie: fixed-stride radix nodes, lock-free lookups
// that validate leaves with per-node version words (seqlock style), and
// writers serialized per top-level subtree. Every word of the trie lives in
// a rt::SharedArray, so traversals issue real coherent-memory references:
// interior nodes are read by everyone and written only during structural
// growth (read-mostly — the pages the replication policy should replicate),
// while hot leaves are rewritten by their owner under concurrent readers
// (write-shared — the pages that freeze). This is the pointer-chasing,
// hot-key-skewed access pattern none of the dense-numeric apps exhibit.
//
// Concurrency design, and how the race detector sees it:
//   * Lookups take no locks. They chase child words (single-word atomic, so
//     a reader sees either the old or the new child — both valid), then
//     validate the leaf's key/value pair against its version word: odd means
//     "mid-update or free", a changed version means "reused or rewritten";
//     either way the whole descent restarts. Version words are registered as
//     synchronization words (release on the writer's closing increment,
//     acquire on the reader's check), so the detector sees the happens-before
//     edge a successful validation implies. The key/value/child words
//     themselves are intentionally shared — a racing reader is detected and
//     retried by the version protocol, not forbidden — and are annotated as
//     such, exactly like neural's chaotic relaxation.
//   * Writers (insert / erase) hold the rt::SpinLock of the key's top-level
//     chunk, so the subtrees under different root slots mutate in parallel.
//     Node allocation takes a second, inner lock (slice -> allocator, one
//     fixed order). Interior nodes are never freed or reused; freed leaves go
//     on a freelist with an odd (unstable) version until reinitialized.
#ifndef SRC_APPS_TRIE_H_
#define SRC_APPS_TRIE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/apps/workloads.h"
#include "src/kernel/kernel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::apps {

class SharedTrie {
 public:
  // 4-bit chunks, consumed low bits first so dense key universes spread
  // across all 16 root slots (and therefore across all 16 writer locks).
  static constexpr int kStrideBits = 4;
  static constexpr uint32_t kFanout = 1u << kStrideBits;
  static constexpr int kMaxLevels = 32 / kStrideBits;

  struct Options {
    // Upper bound on distinct keys ever inserted; sizes the node pools.
    // The pools are exact for any key universe [0, max_keys), max_keys a
    // power of two (interior nodes are never freed, but a dense universe
    // bounds the set of distinct prefixes and thus the pool).
    uint32_t max_keys = 1u << 14;
    // Replication advice on the node pools: interior pages are read-mostly,
    // leaf pages write-shared. Off by default — the point of the serving
    // workload is to watch the policy discover this by itself.
    bool advise = false;
  };

  // Allocates the node pools, locks and allocator state from `zone` and
  // registers the version/sync words with the kernel. Call before spawning
  // the threads that will use the trie (annotations replay into a race
  // detector enabled later, as with every app).
  static SharedTrie Create(rt::ZoneAllocator& zone, const Options& options);

  // --- Operations (callable from any simulated thread) -----------------------
  // Lock-free versioned read; returns true on hit and fills `value`.
  bool Lookup(uint32_t key, uint32_t* value);
  // Inserts or overwrites; returns true when `key` was newly inserted,
  // false when an existing leaf's value was updated in place.
  bool Insert(uint32_t key, uint32_t value);
  // Removes `key`; returns true when it was present.
  bool Erase(uint32_t key);

  // --- Post-run introspection (simulated reads; call from one thread) --------
  // Visits every (key, value) pair in chunk-lexicographic key order — a
  // total order on keys independent of insertion history.
  void Visit(const std::function<void(uint32_t key, uint32_t value)>& fn);
  // FNV-1a over the visited (key, value) stream.
  uint64_t ContentChecksum();
  // Live entries (walks the trie).
  uint64_t CountEntries();

  // --- Host-side counters (deterministic; cost nothing in simulated time) ----
  struct HostStats {
    uint64_t inserts_new = 0;
    uint64_t inserts_update = 0;
    uint64_t erases_hit = 0;
    uint64_t erases_miss = 0;
    uint64_t lookup_retries = 0;  // versioned-read validation failures
    uint64_t interior_allocated = 0;
    uint64_t leaf_allocated = 0;  // fresh slots from the bump pointer
    uint64_t leaf_reused = 0;     // slots recycled through the freelist
    uint64_t max_depth = 0;       // deepest leaf level reached by an insert
  };
  const HostStats& host_stats() const { return host_stats_; }

  // Pool geometry, for page-level forensics (tests map these VA ranges to
  // coherent pages and check the detectors attribute them correctly).
  uint32_t interior_base_va() const { return interior_.base_va(); }
  uint32_t interior_words() const { return static_cast<uint32_t>(interior_.size()); }
  uint32_t leaf_base_va() const { return leaf_.base_va(); }
  uint32_t leaf_words() const { return static_cast<uint32_t>(leaf_.size()); }
  vm::AddressSpace* space() const { return interior_.space(); }
  uint32_t interior_slots() const { return interior_slots_; }
  uint32_t leaf_slots() const { return leaf_slots_; }
  // VAs of the trie's internal synchronization words (slice locks, allocator
  // lock, allocator state) — these live on dedicated pages that legitimately
  // ping-pong, and page-forensics tests must attribute them as such.
  std::vector<uint32_t> sync_vas() const {
    std::vector<uint32_t> vas;
    for (const rt::SpinLock& lock : slice_locks_) {
      vas.push_back(lock.va());
    }
    vas.push_back(alloc_lock_.va());
    vas.push_back(alloc_state_.base_va());
    return vas;
  }

 private:
  // Node layout, in 32-bit words.
  //   interior slot: [version, child[0] .. child[kFanout-1]]
  //   leaf slot:     [version, key, value, pad]
  // A child word is 0 (empty) or ((slot + 1) << 1) | is_leaf.
  static constexpr uint32_t kInteriorWords = 1 + kFanout;
  static constexpr uint32_t kLeafWords = 4;
  static constexpr uint32_t kRootSlot = 0;

  static uint32_t Chunk(uint32_t key, int level) {
    return (key >> (level * kStrideBits)) & (kFanout - 1);
  }
  static uint32_t MakeRef(uint32_t slot, bool is_leaf) {
    return ((slot + 1) << 1) | (is_leaf ? 1u : 0u);
  }
  static uint32_t RefSlot(uint32_t ref) { return (ref >> 1) - 1; }
  static bool RefIsLeaf(uint32_t ref) { return (ref & 1) != 0; }

  // Word indices into the pools.
  size_t InteriorWord(uint32_t slot, uint32_t word) const {
    return static_cast<size_t>(slot) * kInteriorWords + word;
  }
  size_t LeafWord(uint32_t slot, uint32_t word) const {
    return static_cast<size_t>(slot) * kLeafWords + word;
  }

  uint32_t GetChild(uint32_t interior_slot, uint32_t idx) {
    return interior_.Get(InteriorWord(interior_slot, 1 + idx));
  }
  void SetChild(uint32_t interior_slot, uint32_t idx, uint32_t ref);

  // Allocation (caller holds the slice lock; these take the allocator lock).
  uint32_t AllocInterior();
  uint32_t AllocLeaf(uint32_t key, uint32_t value);  // published with an even version
  void FreeLeaf(uint32_t slot);                      // caller already unlinked it

  void VisitNode(uint32_t interior_slot,
                 const std::function<void(uint32_t, uint32_t)>& fn);

  kernel::Kernel* kernel_ = nullptr;
  rt::SharedArray<uint32_t> interior_;
  rt::SharedArray<uint32_t> leaf_;
  // [0] interior bump, [1] leaf bump, [2] leaf freelist head (slot + 1; 0 =
  // empty). Mutated only under alloc_lock_.
  rt::SharedArray<uint32_t> alloc_state_;
  std::vector<rt::SpinLock> slice_locks_;  // one per root slot
  rt::SpinLock alloc_lock_;
  uint32_t interior_slots_ = 0;
  uint32_t leaf_slots_ = 0;
  HostStats host_stats_;
};

// The number of interior slots a dense universe [0, max_keys) can ever need:
// one per distinct low-bit prefix shared by at least two keys,
// sum of 16^l over levels l with 16^l < max_keys (see SharedTrie::Create).
uint32_t TrieInteriorSlotsFor(uint32_t max_keys);

// The rank of `key` in SharedTrie::Visit order. Visit is chunk-lexicographic
// with the low nibble consumed first, so the rank is the key with its eight
// nibbles reversed; a host reference can reproduce the visit stream by
// sorting on this.
uint32_t TrieVisitRank(uint32_t key);

}  // namespace platinum::apps

#endif  // SRC_APPS_TRIE_H_
