#include "src/apps/workloads.h"

#include <algorithm>

namespace platinum::apps {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int32_t GaussInitialValue(uint64_t seed, int n, int i, int j) {
  (void)n;
  uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(i) * 1315423911u + j));
  int32_t value = static_cast<int32_t>(h % 63) + 1;  // [1, 63]
  if (i == j) {
    value += 4096;  // diagonal dominance keeps multipliers small
  }
  return value;
}

uint64_t GaussReferenceChecksum(uint64_t seed, int n) {
  std::vector<int32_t> a(static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a[static_cast<size_t>(i) * n + j] = GaussInitialValue(seed, n, i, j);
    }
  }
  for (int i = 0; i < n; ++i) {
    int32_t a_ii = a[static_cast<size_t>(i) * n + i];
    for (int j = i + 1; j < n; ++j) {
      int32_t m = GaussMultiplier(a[static_cast<size_t>(j) * n + i], a_ii);
      for (int k = i; k < n; ++k) {
        size_t jk = static_cast<size_t>(j) * n + k;
        a[jk] = GaussEliminateElement(a[jk], m, a[static_cast<size_t>(i) * n + k]);
      }
    }
  }
  Checksum sum;
  for (int32_t v : a) {
    sum.Add(static_cast<uint32_t>(v));
  }
  return sum.value();
}

uint32_t SortInputValue(uint64_t seed, size_t index) {
  return static_cast<uint32_t>(Mix64(seed ^ (index * 2654435761ull)));
}

uint64_t SortReferenceChecksum(uint64_t seed, size_t count) {
  std::vector<uint32_t> values(count);
  for (size_t i = 0; i < count; ++i) {
    values[i] = SortInputValue(seed, i);
  }
  std::sort(values.begin(), values.end());
  Checksum sum;
  for (uint32_t v : values) {
    sum.Add(v);
  }
  return sum.value();
}

}  // namespace platinum::apps
