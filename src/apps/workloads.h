// Shared helpers for the application workloads: deterministic input
// generation and result checksums, so every implementation of an application
// (PLATINUM, Uniform System, message passing, UMA) can be verified against a
// sequential host reference.
#ifndef SRC_APPS_WORKLOADS_H_
#define SRC_APPS_WORKLOADS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace platinum::apps {

// SplitMix64: deterministic pseudo-random stream for workload inputs.
uint64_t Mix64(uint64_t x);

// FNV-1a over a sequence of 32-bit values.
class Checksum {
 public:
  void Add(uint32_t value) {
    hash_ ^= value;
    hash_ *= 1099511628211ull;
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

// Fixed-point Gauss arithmetic shared by all implementations (integer ops,
// like the paper's simulated Gaussian elimination).
inline constexpr int kGaussShift = 8;

inline int32_t GaussEliminateElement(int32_t a_jk, int32_t multiplier, int32_t a_ik) {
  return static_cast<int32_t>(a_jk -
                              ((static_cast<int64_t>(multiplier) * a_ik) >> kGaussShift));
}

inline int32_t GaussMultiplier(int32_t a_ji, int32_t a_ii) {
  return static_cast<int32_t>((static_cast<int64_t>(a_ji) << kGaussShift) / a_ii);
}

// Initial matrix element (diagonally dominant so fixed-point multipliers stay
// small).
int32_t GaussInitialValue(uint64_t seed, int n, int i, int j);

// Sequential host-side elimination; returns the checksum of the reduced
// matrix. Every parallel implementation must reproduce this exactly.
uint64_t GaussReferenceChecksum(uint64_t seed, int n);

// Merge-sort input and reference.
uint32_t SortInputValue(uint64_t seed, size_t index);
uint64_t SortReferenceChecksum(uint64_t seed, size_t count);

}  // namespace platinum::apps

#endif  // SRC_APPS_WORKLOADS_H_
