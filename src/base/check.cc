#include "src/base/check.h"

#include <cstdio>
#include <cstdlib>

namespace platinum::base {

void CheckFailed(const char* file, int line, const char* expr, const std::string& message) {
  std::fprintf(stderr, "PLAT_CHECK failed at %s:%d: %s %s\n", file, line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace platinum::base
