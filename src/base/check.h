// Assertion support for PLATINUM.
//
// Simulator invariants are enforced with PLAT_CHECK in all build modes: a
// coherence-protocol violation must abort the experiment rather than produce
// a silently wrong measurement. PLAT_DCHECK compiles out in NDEBUG builds and
// guards hot-path invariants.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace platinum::base {

// Formats the failure message and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal {

// Streams optional context for a failed check; collapses to nothing when the
// check passes.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace platinum::base

#define PLAT_CHECK(condition)                                                  \
  for (; !(condition);)                                                        \
  ::platinum::base::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define PLAT_CHECK_EQ(a, b) PLAT_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define PLAT_CHECK_NE(a, b) PLAT_CHECK((a) != (b))
#define PLAT_CHECK_LT(a, b) PLAT_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define PLAT_CHECK_LE(a, b) PLAT_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define PLAT_CHECK_GE(a, b) PLAT_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define PLAT_CHECK_GT(a, b) PLAT_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define PLAT_DCHECK(condition) \
  for (; false && !(condition);) ::platinum::base::internal::CheckMessageBuilder("", 0, "")
#else
#define PLAT_DCHECK(condition) PLAT_CHECK(condition)
#endif

#endif  // SRC_BASE_CHECK_H_
