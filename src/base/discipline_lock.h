// Zero-cost lock models for host-side kernel structures.
//
// The simulator is single-threaded: fibers interleave only at explicit
// scheduler switch points, so host C++ structures need no real locking.  But
// the structures *model* kernel data the real PLATINUM kernel protects with
// spin locks — the per-module inverted page table of Section 2.3, the port
// message queues, the defrost list — and the timing model assumes their
// critical sections are atomic.  DisciplineLock makes those critical
// sections explicit without adding run-time cost:
//
//   * clang's -Wthread-safety analysis proves every GUARDED_BY field is
//     touched only between Acquire() and Release();
//   * tools/platlint's `yield-under-lock` rule proves no scheduler switch
//     point is reachable while the lock is held (a switch inside a critical
//     section would let another fiber observe torn state — a bug class the
//     real machine expresses as corruption, and the simulator must not).
//
// Contrast with rt::SpinLock, which is a *simulated* lock living in coherent
// memory: acquiring it costs simulated time and can fault, and holding it
// across a quantum preemption is legal (real machines preempt user threads
// holding user spin locks).
#ifndef SRC_BASE_DISCIPLINE_LOCK_H_
#define SRC_BASE_DISCIPLINE_LOCK_H_

#include "src/base/thread_annotations.h"

namespace platinum::base {

// A compile-time-only capability. Acquire/Release are const so that const
// accessors (e.g. Port::queued) can enter the critical section.
class CAPABILITY("discipline lock") DisciplineLock {
 public:
  constexpr DisciplineLock() = default;

  DisciplineLock(const DisciplineLock&) = delete;
  DisciplineLock& operator=(const DisciplineLock&) = delete;

  // Stateless, so owners that live in vectors (MemoryModule) stay movable.
  DisciplineLock(DisciplineLock&&) noexcept {}
  DisciplineLock& operator=(DisciplineLock&&) noexcept { return *this; }

  void Acquire() const ACQUIRE() {}
  void Release() const RELEASE() {}
  void AssertHeld() const ASSERT_CAPABILITY(this) {}
};

// RAII holder, for scopes with early returns. tools/platlint treats the
// guard's scope as the critical section.
class SCOPED_CAPABILITY DisciplineGuard {
 public:
  explicit DisciplineGuard(const DisciplineLock& lock) ACQUIRE(lock) : lock_(lock) {
    lock_.Acquire();
  }
  ~DisciplineGuard() RELEASE() { lock_.Release(); }

  DisciplineGuard(const DisciplineGuard&) = delete;
  DisciplineGuard& operator=(const DisciplineGuard&) = delete;

 private:
  const DisciplineLock& lock_;
};

}  // namespace platinum::base

#endif  // SRC_BASE_DISCIPLINE_LOCK_H_
