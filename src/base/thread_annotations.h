// Clang thread-safety (capability) annotations, plus PLATINUM's
// blocking-discipline annotations.
//
// Two static disciplines keep the simulator faithful and deterministic:
//
//   1. *Capability discipline.*  Host-side shared structures (port queues,
//      the per-module inverted page tables, the defrost list) model kernel
//      data that the real PLATINUM kernel protects with locks.  The
//      simulator's fibers never run concurrently, so the locks cost nothing
//      at run time — but every access must still happen inside the matching
//      critical section, or a refactor could silently break the discipline
//      the timing model depends on.  Clang's -Wthread-safety analysis proves
//      the discipline at compile time; gcc compiles the macros to nothing.
//
//   2. *Blocking discipline.*  A fiber inside a kernel critical section must
//      not reach a scheduler switch point: another fiber could then observe
//      a half-updated host structure, which has no analogue on the real
//      machine (the real kernel spins; it never switches while holding a
//      spin lock).  PLATINUM_MAY_YIELD / PLATINUM_NO_YIELD classify every
//      scheduler primitive, and tools/platlint/ proves that no may-yield
//      call is reachable while a base::DisciplineLock is held or inside a
//      PLATINUM_NO_YIELD function (docs/STATIC_ANALYSIS.md).
//
// Note the deliberate asymmetry with rt::SpinLock: a *simulated* spin lock
// is user-level state on coherent memory.  A simulated thread holding one
// may be preempted at a quantum boundary — the real machine allows exactly
// that — so rt::SpinLock carries capability annotations (for lock/unlock
// balance checking) but its critical sections are not no-yield regions.
#ifndef SRC_BASE_THREAD_ANNOTATIONS_H_
#define SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define PLATINUM_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define PLATINUM_THREAD_ATTRIBUTE(x)  // no-op
#endif

// A type that acts as a lock (a "capability" in clang's terminology).
#define CAPABILITY(x) PLATINUM_THREAD_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and releases it
// in its destructor.
#define SCOPED_CAPABILITY PLATINUM_THREAD_ATTRIBUTE(scoped_lockable)

// Data members protected by a capability.
#define GUARDED_BY(x) PLATINUM_THREAD_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) PLATINUM_THREAD_ATTRIBUTE(pt_guarded_by(x))

// Lock ordering between capabilities.
#define ACQUIRED_BEFORE(...) PLATINUM_THREAD_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PLATINUM_THREAD_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Functions that must (not) be called with the capability held.
#define REQUIRES(...) PLATINUM_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) PLATINUM_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) PLATINUM_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Functions that acquire/release a capability (their own, or the argument).
#define ACQUIRE(...) PLATINUM_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) PLATINUM_THREAD_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PLATINUM_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) PLATINUM_THREAD_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) PLATINUM_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// Asserts that the calling context already holds the capability.
#define ASSERT_CAPABILITY(x) PLATINUM_THREAD_ATTRIBUTE(assert_capability(x))

// A function returning a reference to a capability.
#define RETURN_CAPABILITY(x) PLATINUM_THREAD_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining why the function is safe.
#define NO_THREAD_SAFETY_ANALYSIS PLATINUM_THREAD_ATTRIBUTE(no_thread_safety_analysis)

// --- Blocking-discipline annotations (checked by tools/platlint) -------------
//
// PLATINUM_MAY_YIELD marks a function that can suspend the calling fiber and
// run another one (a scheduler switch point).  PLATINUM_NO_YIELD marks a
// function that must never reach a switch point, directly or transitively —
// the fault handler's critical section, for example.  The platlint
// `yield-under-lock` rule computes the transitive may-yield closure over the
// call graph and rejects any may-yield call inside a no-yield function or a
// DisciplineLock critical section.
#if defined(__clang__) && !defined(SWIG)
#define PLATINUM_MAY_YIELD __attribute__((annotate("platinum::may_yield")))
#define PLATINUM_NO_YIELD __attribute__((annotate("platinum::no_yield")))
#else
#define PLATINUM_MAY_YIELD  // recognized textually by tools/platlint
#define PLATINUM_NO_YIELD   // recognized textually by tools/platlint
#endif

// Intentional-sharing annotation for data members of observer-hook
// implementers (mem::PageEventSink / mem::AccessObserver /
// sim::TimeObserver subclasses).  Hooks run inline on whichever fiber
// triggered the event, so every mutable member of an implementer is shared
// across fibers.  Members synchronized by a lock say so with GUARDED_BY;
// members that are safe *because the whole simulation runs on one host
// thread and fibers never preempt inside a hook* carry this marker instead.
// The platlint `annotation-coverage` rule rejects members with neither.
#if defined(__clang__) && !defined(SWIG)
#define PLATINUM_FIBER_SHARED __attribute__((annotate("platinum::fiber_shared")))
#else
#define PLATINUM_FIBER_SHARED  // recognized textually by tools/platlint
#endif

// --- Determinism-taint annotations (checked by tools/platlint) ---------------
//
// The `determinism-taint` rule tracks host-nondeterministic values (wall
// clock, ambient randomness, pointer order, unordered-container iteration,
// host thread ids, environment reads) through assignments, returns and call
// arguments, and rejects any flow into sim-visible state (src/sim, src/mem,
// src/kernel, or the trace/stats/JSON emission classes).  Two annotations
// declare the sanctioned escape hatches:
//
// PLATINUM_HOST_ONLY marks a function whose entire effect is host-side
// (artifact paths, worker pools, progress output).  Its body is exempt from
// sink checking and calling it is never a sink — but a host-derived value it
// *returns* still carries taint, so host facts cannot re-enter the
// simulation through it.
//
// PLATINUM_DETERMINISTIC_SANITIZED marks a validating funnel: the function
// may read host state, but its result is part of the experiment's invocation
// identity (e.g. a parsed, validated environment knob that is also printed
// in the output).  Its return value is considered clean.  Use sparingly;
// every annotation is a determinism claim reviewed like a lock annotation.
#if defined(__clang__) && !defined(SWIG)
#define PLATINUM_HOST_ONLY __attribute__((annotate("platinum::host_only")))
#define PLATINUM_DETERMINISTIC_SANITIZED \
  __attribute__((annotate("platinum::deterministic_sanitized")))
#else
#define PLATINUM_HOST_ONLY  // recognized textually by tools/platlint
#define PLATINUM_DETERMINISTIC_SANITIZED  // recognized textually by tools/platlint
#endif

#endif  // SRC_BASE_THREAD_ANNOTATIONS_H_
