#include "src/baseline/raw_memory.h"

#include "src/base/check.h"

namespace platinum::baseline {

RawRegion::RawRegion(sim::Machine* machine, size_t words, Placement placement, int module)
    : machine_(machine), words_(words) {
  PLAT_CHECK(machine != nullptr);
  PLAT_CHECK_GT(words, size_t{0});
  words_per_page_ = machine->params().words_per_page();
  size_t num_pages = (words + words_per_page_ - 1) / words_per_page_;
  pages_.reserve(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    int target = placement == Placement::kSingleModule
                     ? module
                     : static_cast<int>(i % machine->num_nodes());
    auto frame = machine->module(target).AllocFrame(machine->AllocRawPageId());
    PLAT_CHECK(frame.has_value()) << "module " << target << " out of frames for raw region";
    pages_.push_back(PageRef{target, frame->frame});
  }
}

RawRegion::~RawRegion() {
  if (machine_ == nullptr) {
    return;
  }
  for (const PageRef& page : pages_) {
    machine_->module(page.module).FreeFrame(page.frame);
  }
}

RawRegion::RawRegion(RawRegion&& other) noexcept
    : machine_(other.machine_),
      words_(other.words_),
      words_per_page_(other.words_per_page_),
      pages_(std::move(other.pages_)) {
  other.machine_ = nullptr;
  other.pages_.clear();
}

RawRegion::Location RawRegion::Locate(size_t index) const {
  PLAT_DCHECK(index < words_);
  const PageRef& page = pages_[index / words_per_page_];
  return Location{page.module, page.frame, static_cast<uint32_t>(index % words_per_page_)};
}

int RawRegion::module_of(size_t index) const { return Locate(index).module; }

uint32_t RawRegion::Get(size_t index) const {
  Location loc = Locate(index);
  machine_->Reference(loc.module, sim::AccessKind::kRead);
  uint32_t value = machine_->ReadWordRaw(loc.module, loc.frame, loc.word);
  machine_->scheduler().MaybeYield();
  return value;
}

void RawRegion::Set(size_t index, uint32_t value) {
  Location loc = Locate(index);
  machine_->Reference(loc.module, sim::AccessKind::kWrite);
  machine_->WriteWordRaw(loc.module, loc.frame, loc.word, value);
  machine_->scheduler().MaybeYield();
}

uint32_t RawRegion::FetchAdd(size_t index, uint32_t delta) {
  Location loc = Locate(index);
  machine_->Reference(loc.module, sim::AccessKind::kRead);
  uint32_t old = machine_->ReadWordRaw(loc.module, loc.frame, loc.word);
  machine_->Reference(loc.module, sim::AccessKind::kWrite);
  machine_->WriteWordRaw(loc.module, loc.frame, loc.word, old + delta);
  machine_->scheduler().MaybeYield();
  return old;
}

void RawRegion::CopyWordsFrom(const RawRegion& src, size_t src_first, size_t dst_first,
                              size_t count) {
  for (size_t i = 0; i < count; ++i) {
    Set(dst_first + i, src.Get(src_first + i));
  }
}

RawBarrier::RawBarrier(sim::Machine* machine, int parties, int module)
    : machine_(machine),
      parties_(parties),
      state_(machine, 2, RawRegion::Placement::kSingleModule, module) {
  PLAT_CHECK_GT(parties, 0);
}

void RawBarrier::Wait(uint32_t* local_sense) {
  uint32_t waiting_for = 1 - *local_sense;
  *local_sense = waiting_for;
  uint32_t arrived = state_.FetchAdd(0, 1) + 1;
  if (static_cast<int>(arrived) == parties_) {
    state_.Set(0, 0);
    state_.Set(1, waiting_for);
    return;
  }
  sim::SimTime backoff = 2 * sim::kMicrosecond;
  while (state_.Get(1) != waiting_for) {
    machine_->scheduler().Sleep(backoff);
    backoff = backoff < 64 * sim::kMicrosecond ? backoff * 2 : backoff;
  }
}

}  // namespace platinum::baseline
