// Bare physical memory regions for hand-placed baselines.
//
// The Uniform System and SMP message-passing programs of the paper's Figure 1
// run directly against non-uniform physical memory: the programmer chooses
// where data lives and pays local/remote latency on every reference, with no
// MMU, faults, or coherent-memory machinery involved. RawRegion reproduces
// that programming model on the simulated machine.
#ifndef SRC_BASELINE_RAW_MEMORY_H_
#define SRC_BASELINE_RAW_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/sim/machine.h"

namespace platinum::baseline {

class RawRegion {
 public:
  // Placement of consecutive pages across memory modules.
  enum class Placement {
    kSingleModule,  // all pages on one module
    kScattered,     // page i on module i % num_nodes (Uniform System style)
  };

  // Allocates `words` 32-bit words. `module` is the target for
  // kSingleModule, ignored for kScattered.
  RawRegion(sim::Machine* machine, size_t words, Placement placement, int module = 0);
  ~RawRegion();

  RawRegion(const RawRegion&) = delete;
  RawRegion& operator=(const RawRegion&) = delete;
  RawRegion(RawRegion&& other) noexcept;
  RawRegion& operator=(RawRegion&&) = delete;

  size_t size() const { return words_; }
  int module_of(size_t index) const;

  // Timed accesses from the current fiber's processor.
  uint32_t Get(size_t index) const;
  void Set(size_t index, uint32_t value);
  // Atomic read-modify-write (no yield point between the read and the
  // write); returns the previous value.
  uint32_t FetchAdd(size_t index, uint32_t delta);

  // Word-by-word copy loop (the Uniform System pivot-row copy): each word
  // costs one read from the source plus one write to the destination, charged
  // to the current fiber.
  void CopyWordsFrom(const RawRegion& src, size_t src_first, size_t dst_first, size_t count);

 private:
  struct PageRef {
    int module;
    uint32_t frame;
  };
  struct Location {
    int module;
    uint32_t frame;
    uint32_t word;
  };
  Location Locate(size_t index) const;

  sim::Machine* machine_;
  size_t words_;
  uint32_t words_per_page_;
  std::vector<PageRef> pages_;
};

// A sense-reversing barrier on raw memory (one counter + sense word on
// `module`), for baselines that cannot use the coherent runtime.
class RawBarrier {
 public:
  RawBarrier(sim::Machine* machine, int parties, int module = 0);

  void Wait(uint32_t* local_sense);

 private:
  sim::Machine* machine_;
  int parties_;
  RawRegion state_;  // [0] arrivals, [1] sense
};

}  // namespace platinum::baseline

#endif  // SRC_BASELINE_RAW_MEMORY_H_
