#include "src/check/explorer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/check/oracle.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace platinum::check {
namespace {

struct Event {
  enum class Kind : uint8_t { kRead, kWrite, kThaw };
  Kind kind = Kind::kRead;
  int processor = 0;  // unused for thaw (host-initiated, like the daemon)
  int page = 0;
};

// A freshly booted machine for one replayed interleaving. Declaration order
// matters: the kernel (and the oracle holding its memory hook) must be torn
// down before the machine.
struct System {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<kernel::Kernel> kernel;
  vm::AddressSpace* space = nullptr;
  std::unique_ptr<InvariantOracle> oracle;
};

std::unique_ptr<mem::ReplicationPolicy> MakePolicy(const ExplorerConfig& config,
                                                   sim::SimTime t1) {
  if (config.policy == "always") {
    return std::make_unique<mem::AlwaysCachePolicy>();
  }
  if (config.policy == "never") {
    return std::make_unique<mem::NeverCachePolicy>();
  }
  PLAT_CHECK(config.policy == "timestamp")
      << "unknown explorer policy '" << config.policy << "'";
  return std::make_unique<mem::TimestampPolicy>(t1);
}

System Boot(const ExplorerConfig& config) {
  System sys;
  sim::MachineParams params = sim::ButterflyPlusParams(config.processors);
  params.frames_per_module = 8;  // tiny machine: a few pages suffice
  sys.machine = std::make_unique<sim::Machine>(params);

  kernel::KernelOptions options;
  options.policy = MakePolicy(config, params.t1_freeze_window_ns);
  options.protocol = config.protocol;
  options.start_defrost_daemon = false;  // thaws are explicit alphabet events
  options.address_space_pages = 64;      // keeps each invariant sweep cheap
  sys.kernel = std::make_unique<kernel::Kernel>(sys.machine.get(), std::move(options));

  sys.space = sys.kernel->CreateAddressSpace("explore");
  vm::MemoryObject* object = sys.kernel->CreateMemoryObject(
      "explore-pages", static_cast<uint32_t>(config.pages));
  sys.kernel->Map(sys.space, object, 0, static_cast<uint32_t>(config.pages), /*vpn=*/0,
                  hw::Rights::kReadWrite);
  if (config.advice != mem::MemoryAdvice::kDefault) {
    sys.kernel->memory().Advise(sys.space->id(), 0, static_cast<uint32_t>(config.pages),
                                config.advice);
  }
  sys.oracle = std::make_unique<InvariantOracle>(&sys.kernel->memory());
  return sys;
}

// Applies one event: reads and writes run as a one-access thread on the
// event's processor; thaw runs host-side, as the defrost daemon would.
void Apply(System& sys, const Event& event, int seq) {
  uint32_t va = static_cast<uint32_t>(event.page) * sys.kernel->page_size();
  switch (event.kind) {
    case Event::Kind::kThaw:
      sys.kernel->ThawMemory(sys.space, va);
      break;
    case Event::Kind::kRead:
      sys.kernel->SpawnThread(sys.space, event.processor, "explore-read",
                              [&sys, va] { sys.kernel->ReadWord(sys.space, va); });
      sys.kernel->Run();
      break;
    case Event::Kind::kWrite:
      sys.kernel->SpawnThread(sys.space, event.processor, "explore-write", [&sys, va, seq] {
        sys.kernel->WriteWord(sys.space, va, static_cast<uint32_t>(seq) + 1);
      });
      sys.kernel->Run();
      break;
  }
}

// The protocol-visible abstraction of the current state.
std::string Abstract(System& sys, const ExplorerConfig& config) {
  std::ostringstream out;
  mem::CoherentMemory& memory = sys.kernel->memory();
  mem::Cmap& cm = memory.cmap(sys.space->id());
  for (int page = 0; page < config.pages; ++page) {
    const mem::CmapEntry& entry = cm.entry(static_cast<uint32_t>(page));
    const mem::Cpage& cpage = memory.cpages().at(entry.cpage);
    out << static_cast<int>(cpage.state()) << (cpage.frozen() ? 'F' : '-');
    // The replication policy's latent state: whether the page has ever been
    // invalidated, and whether that invalidation is still within the t1
    // window at the representative's virtual time. Without this, the path
    // that makes a page "hot" (and so freezes on the next fault) would be
    // merged into the cold path that reaches the same directory state.
    char pressure = 'c';  // cold
    if (cpage.ever_invalidated()) {
      sim::SimTime now = sys.kernel->Now();
      bool hot = now < cpage.last_invalidation() ||
                 now - cpage.last_invalidation() <
                     sys.machine->params().t1_freeze_window_ns;
      pressure = hot ? 'h' : 'q';  // hot / quiescent
    }
    out << pressure;
    for (int m = 0; m < config.processors; ++m) {
      out << (cpage.HasCopyOn(m) ? '1' : '0');
    }
    for (int p = 0; p < config.processors; ++p) {
      const hw::PmapEntry& pe = cm.pmap(p).entry(static_cast<uint32_t>(page));
      out << (!pe.valid ? 'n' : pe.rights == hw::Rights::kReadWrite ? 'w' : 'r');
    }
    out << ';';
  }
  return out.str();
}

std::vector<bool> FrozenFlags(System& sys, const ExplorerConfig& config) {
  std::vector<bool> frozen(static_cast<size_t>(config.pages), false);
  mem::CoherentMemory& memory = sys.kernel->memory();
  mem::Cmap& cm = memory.cmap(sys.space->id());
  for (int page = 0; page < config.pages; ++page) {
    const mem::CmapEntry& entry = cm.entry(static_cast<uint32_t>(page));
    frozen[static_cast<size_t>(page)] = memory.cpages().at(entry.cpage).frozen();
  }
  return frozen;
}

std::vector<mem::CpageState> PageStates(System& sys, const ExplorerConfig& config) {
  std::vector<mem::CpageState> states(static_cast<size_t>(config.pages));
  mem::CoherentMemory& memory = sys.kernel->memory();
  mem::Cmap& cm = memory.cmap(sys.space->id());
  for (int page = 0; page < config.pages; ++page) {
    const mem::CmapEntry& entry = cm.entry(static_cast<uint32_t>(page));
    states[static_cast<size_t>(page)] = memory.cpages().at(entry.cpage).state();
  }
  return states;
}

mem::ProtocolTrigger TriggerOf(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kRead:
      return mem::ProtocolTrigger::kRead;
    case Event::Kind::kWrite:
      return mem::ProtocolTrigger::kWrite;
    case Event::Kind::kThaw:
      return mem::ProtocolTrigger::kThaw;
  }
  PLAT_CHECK(false) << "unreachable";
  return mem::ProtocolTrigger::kRead;
}

}  // namespace

std::string ExplorerResult::Summary() const {
  std::ostringstream out;
  out << states_visited << " abstract states, " << transitions_explored
      << " transitions replayed, " << oracle_checks
      << " oracle checks, max depth " << max_depth_reached << ": "
      << (exhaustive ? "state space closed (exhaustive)"
                     : "truncated by the depth bound");
  return out.str();
}

ExplorerResult ExploreProtocol(const ExplorerConfig& config) {
  PLAT_CHECK_GE(config.processors, 1);
  PLAT_CHECK_GE(config.pages, 1);
  PLAT_CHECK_GE(config.max_depth, 1);

  struct Node {
    std::vector<Event> path;    // shortest event sequence reaching the state
    std::vector<bool> frozen;   // per-page frozen flag (prunes thaw events)
    std::vector<mem::CpageState> states;  // per-page state (edge recording)
  };

  mem::ProtocolKind kind;
  PLAT_CHECK(mem::ProtocolKindFromName(config.protocol.c_str(), &kind))
      << "unknown explorer protocol '" << config.protocol << "'";

  ExplorerResult result;
  // std::map keeps the visited set's behavior independent of hash order.
  std::map<std::string, uint64_t> visited;
  std::deque<Node> frontier;
  std::set<mem::ProtocolEdge> edges;
  bool truncated = false;

  auto note_states = [&result](const std::vector<mem::CpageState>& states) {
    for (mem::CpageState s : states) {
      result.state_mask_seen |= 1u << static_cast<unsigned>(s);
    }
  };

  auto replay = [&config](const std::vector<Event>& path) {
    System sys = Boot(config);
    int seq = 0;
    for (const Event& event : path) {
      Apply(sys, event, seq++);
    }
    return sys;
  };

  {
    System sys = Boot(config);
    visited.emplace(Abstract(sys, config), 0);
    result.states_visited = 1;
    result.oracle_checks += sys.oracle->transitions_checked();
    std::vector<mem::CpageState> states = PageStates(sys, config);
    note_states(states);
    frontier.push_back(Node{{}, FrozenFlags(sys, config), std::move(states)});
  }

  while (!frontier.empty()) {
    Node node = std::move(frontier.front());
    frontier.pop_front();
    int depth = static_cast<int>(node.path.size());
    result.max_depth_reached = std::max(result.max_depth_reached, depth);
    if (depth >= config.max_depth) {
      truncated = true;  // unexpanded state: coverage is no longer exhaustive
      continue;
    }

    std::vector<Event> alphabet;
    for (int page = 0; page < config.pages; ++page) {
      for (int p = 0; p < config.processors; ++p) {
        alphabet.push_back(Event{Event::Kind::kRead, p, page});
        alphabet.push_back(Event{Event::Kind::kWrite, p, page});
      }
      if (node.frozen[static_cast<size_t>(page)]) {
        alphabet.push_back(Event{Event::Kind::kThaw, 0, page});
      }
    }

    for (const Event& event : alphabet) {
      std::vector<Event> path = node.path;
      path.push_back(event);
      System sys = replay(path);
      ++result.transitions_explored;
      result.oracle_checks += sys.oracle->transitions_checked();
      // Record the (trigger, from, to) edge of every page the event moved
      // (plus the target page's self-edge) and hold it against the spec —
      // the explorer, the oracle, and the implementation share one table.
      std::vector<mem::CpageState> states = PageStates(sys, config);
      note_states(states);
      mem::ProtocolTrigger trigger = TriggerOf(event.kind);
      for (int page = 0; page < config.pages; ++page) {
        mem::CpageState from = node.states[static_cast<size_t>(page)];
        mem::CpageState to = states[static_cast<size_t>(page)];
        if (from == to && page != event.page) {
          continue;
        }
        PLAT_CHECK(mem::ProtocolAllowsEdge(kind, trigger, from, to))
            << "explored an edge outside the " << mem::ProtocolKindName(kind)
            << " spec: page " << page << " moved " << mem::CpageStateName(from) << " -> "
            << mem::CpageStateName(to) << " under '" << mem::ProtocolTriggerName(trigger)
            << "'";
        edges.insert(mem::ProtocolEdge{trigger, from, to});
      }
      std::string abstract = Abstract(sys, config);
      if (visited.emplace(std::move(abstract), result.states_visited).second) {
        ++result.states_visited;
        frontier.push_back(
            Node{std::move(path), FrozenFlags(sys, config), std::move(states)});
      }
    }
  }

  result.observed_edges.assign(edges.begin(), edges.end());
  result.exhaustive = !truncated;
  return result;
}

}  // namespace platinum::check
