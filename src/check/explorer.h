// Bounded model checker for the Cpage protocol state machine.
//
// Drives a tiny, freshly booted machine/kernel through interleavings of the
// protocol's external events — a read or write by any processor to any page,
// and an explicit thaw of a frozen page — and runs the full invariant oracle
// after every transition of every replayed sequence. States are abstracted
// to what the protocol itself distinguishes: per page, the Cpage state
// (empty / present1 / present+ / modified), the frozen flag, the set of
// modules holding a physical copy, and each processor's translation rights.
// Breadth-first search with deduplication on that abstraction keeps the
// number of replays near |states| x |alphabet|.
//
// "Exhaustive" means the frontier closed before the depth bound: every
// reachable abstract state had all of its successor events explored (from
// one concrete representative per abstract state — paths reaching the same
// abstraction with different virtual-time histories are merged).
#ifndef SRC_CHECK_EXPLORER_H_
#define SRC_CHECK_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/policy.h"
#include "src/mem/protocol_spec.h"

namespace platinum::check {

struct ExplorerConfig {
  int processors = 2;
  int pages = 1;
  // Maximum events per interleaving; the search is exhaustive iff no state
  // was left unexpanded at this depth.
  int max_depth = 32;
  // Replication policy driving the cache/don't-cache decision:
  // "timestamp" (freezes declined pages), "always", or "never".
  std::string policy = "timestamp";
  // Coherence protocol the explored kernel is booted with ("directory" or
  // "tardis"). Observed edges are checked against this protocol's spec.
  std::string protocol = "directory";
  // Placement advice applied to every page before the run (kWriteShared
  // forces the never-cache + freeze path).
  mem::MemoryAdvice advice = mem::MemoryAdvice::kDefault;
};

struct ExplorerResult {
  uint64_t states_visited = 0;
  uint64_t transitions_explored = 0;  // abstract edges, each fully replayed
  uint64_t oracle_checks = 0;         // protocol transitions checked in replays
  int max_depth_reached = 0;
  bool exhaustive = false;
  // Deduplicated (trigger, from, to) edges of the explored pages, sorted;
  // self-edges of the event's target page are recorded too. Each edge was
  // checked against the active protocol's spec (src/mem/protocol_spec.json
  // or protocol_spec_tardis.json, per config.protocol) as it was replayed —
  // an edge outside that spec aborts the exploration.
  std::vector<mem::ProtocolEdge> observed_edges;
  // Bit i set iff mem::CpageState(i) appeared in some visited state.
  uint32_t state_mask_seen = 0;

  std::string Summary() const;
};

// Explores the protocol under `config`. Invariant violations abort with a
// diagnostic (via the oracle); a normal return means every reached state and
// every replayed transition passed the full invariant check.
ExplorerResult ExploreProtocol(const ExplorerConfig& config);

}  // namespace platinum::check

#endif  // SRC_CHECK_EXPLORER_H_
