#include "src/check/oracle.h"

#include "src/base/check.h"

namespace platinum::check {

InvariantOracle::InvariantOracle(mem::CoherentMemory* memory) : memory_(memory) {
  PLAT_CHECK(memory_ != nullptr);
  memory_->SetTransitionHook([this](const char* transition) {
    ++transitions_checked_;
    // PLAT_CHECK inside CheckInvariants aborts with the violated invariant;
    // the transition name locates the offending protocol step.
    (void)transition;
    memory_->CheckInvariants();
  });
}

InvariantOracle::~InvariantOracle() { memory_->SetTransitionHook(nullptr); }

void InvariantOracle::CheckNow() { memory_->CheckInvariants(); }

}  // namespace platinum::check
