#include "src/check/oracle.h"

#include "src/base/check.h"
#include "src/mem/protocol.h"

namespace platinum::check {

InvariantOracle::InvariantOracle(mem::CoherentMemory* memory)
    : memory_(memory), kind_(mem::ProtocolKind::kDirectory) {
  PLAT_CHECK(memory_ != nullptr);
  kind_ = memory_->protocol().kind();
  // Transitions completed before the oracle attached are not re-validated;
  // the shadow starts from the current directory state.
  const mem::CpageTable& pages = memory_->cpages();
  shadow_states_.reserve(pages.size());
  for (uint32_t id = 0; id < pages.size(); ++id) {
    shadow_states_.push_back(pages.at(id).state());
  }
  memory_->SetTransitionHook([this](const char* transition) {
    ++transitions_checked_;
    // The spec check runs first: an unknown (trigger, from, to) edge is
    // reported as a protocol-spec violation even when the resulting state
    // also breaks a structural invariant.
    CheckTransitionEdges(transition);
    // PLAT_CHECK inside CheckInvariants aborts with the violated invariant;
    // the transition name locates the offending protocol step.
    memory_->CheckInvariants();
  });
}

InvariantOracle::~InvariantOracle() { memory_->SetTransitionHook(nullptr); }

void InvariantOracle::CheckNow() { memory_->CheckInvariants(); }

void InvariantOracle::CheckTransitionEdges(const char* transition) {
  mem::ProtocolTrigger trigger;
  PLAT_CHECK(mem::ProtocolTriggerFromTransitionName(transition, &trigger))
      << "transition hook fired with a name the protocol spec does not know: '" << transition
      << "' (add it to src/mem/protocol_spec.json and protocol_spec.cc)";
  const mem::CpageTable& pages = memory_->cpages();
  uint32_t n = pages.size();
  if (shadow_states_.size() < n) {
    // Cpages are created empty; transitions away from empty notify.
    shadow_states_.resize(n, mem::CpageState::kEmpty);
  }
  for (uint32_t id = 0; id < n; ++id) {
    mem::CpageState from = shadow_states_[id];
    mem::CpageState to = pages.at(id).state();
    if (from == to) {
      continue;
    }
    PLAT_CHECK(mem::ProtocolAllowsEdge(kind_, trigger, from, to))
        << "protocol-spec violation: cpage " << id << " moved " << mem::CpageStateName(from)
        << " -> " << mem::CpageStateName(to) << " under trigger '"
        << mem::ProtocolTriggerName(trigger) << "' but the "
        << mem::ProtocolKindName(kind_) << " spec has no such row";
    shadow_states_[id] = to;
  }
}

}  // namespace platinum::check
