// Transition-level protocol invariant oracle.
//
// CoherentMemory::CheckInvariants validates the full cross-structure state:
// directory (Cpage) invariants, reference masks vs private Pmaps vs ATCs,
// the write-mapping census, rights domination (a read-write translation may
// exist only while the directory says the page is modified, which with the
// one-copy rule for modified pages gives "a writable copy implies exactly
// one copy"), and the frozen list. The oracle attaches that check to every
// completed protocol transition — fault resolution, defrost/thaw, pin,
// pre-replicate, unbind — so a violated invariant aborts at the transition
// that introduced it rather than at the end of the run.
//
// Transient mid-transition states (e.g. between a shootdown commit and the
// directory update that follows it) are deliberately not checked: the hook
// fires only when a top-level transition has completed, mirroring when the
// per-Cpage handler lock would be released on the real machine.
//
// In addition to the structural invariants, the oracle validates every
// per-page state *change* between consecutive hook firings against the
// machine-readable spec of the *active* protocol (src/mem/protocol_spec*.json
// via mem::ProtocolAllowsEdge, keyed by the ProtocolKind the memory system
// was built with): a page may only move along a (trigger, from, to) row that
// protocol's spec declares for the transition that just completed. The
// implementation, this oracle, and the bounded explorer all consume the
// same generated tables, so a transition added to the code without a spec
// row — or an edge legal only under the *other* protocol — aborts here.
#ifndef SRC_CHECK_ORACLE_H_
#define SRC_CHECK_ORACLE_H_

#include <cstdint>
#include <vector>

#include "src/mem/coherent_memory.h"
#include "src/mem/protocol_spec.h"

namespace platinum::check {

class InvariantOracle {
 public:
  // Installs the transition hook on `memory`; detaches on destruction.
  explicit InvariantOracle(mem::CoherentMemory* memory);
  ~InvariantOracle();

  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  // Runs the full invariant check once, outside any transition (e.g. at the
  // end of a run). Aborts with a diagnostic on violation.
  void CheckNow();

  uint64_t transitions_checked() const { return transitions_checked_; }

 private:
  // Diffs the per-page states against the shadow copy and checks every
  // changed page's edge against the spec row set of `transition`'s trigger.
  void CheckTransitionEdges(const char* transition);

  mem::CoherentMemory* memory_;
  // The active protocol's spec, snapshotted at attach.
  mem::ProtocolKind kind_;
  uint64_t transitions_checked_ = 0;
  // Per-page state as of the previous hook firing (pages created since are
  // empty, their creation state).
  std::vector<mem::CpageState> shadow_states_;
};

}  // namespace platinum::check

#endif  // SRC_CHECK_ORACLE_H_
