#include "src/check/race_detector.h"

#include <sstream>
#include <utility>

#include "src/base/check.h"

namespace platinum::check {

namespace {

// Keep reports bounded: a genuinely racy program touches many words.
constexpr size_t kMaxReports = 64;

std::string FiberName(uint32_t fiber) {
  return fiber == mem::kNoFiber ? "host" : "fiber " + std::to_string(fiber);
}

}  // namespace

std::string RaceReport::ToString() const {
  std::ostringstream out;
  out << "race on zone '" << zone << "' (as " << as_id << ", vpn " << vpn << ", word "
      << word_offset << "): " << FiberName(prior_fiber) << " "
      << (prior_is_write ? "wrote" : "read") << " at t=" << prior_time << "ns, "
      << FiberName(fiber) << " " << (is_write ? "wrote" : "read") << " at t=" << time
      << "ns with no ordering between them";
  return out.str();
}

RaceDetector::RaceDetector(ZoneResolver zone_resolver)
    : zone_resolver_(std::move(zone_resolver)) {
  PLAT_CHECK(zone_resolver_ != nullptr);
}

RaceDetector::~RaceDetector() = default;

VectorClock& RaceDetector::ClockFor(size_t slot) {
  if (slot >= clocks_.size()) {
    clocks_.resize(slot + 1);
  }
  VectorClock& clock = clocks_[slot];
  if (clock.get(slot) == 0) {
    // A slot's own component starts at 1 so an epoch of 0 can mean "never".
    clock.set(slot, 1);
  }
  return clock;
}

void RaceDetector::OnThreadSpawn(uint32_t parent_fiber, uint32_t child_fiber) {
  size_t parent = SlotFor(parent_fiber);
  size_t child = SlotFor(child_fiber);
  VectorClock parent_snapshot = ClockFor(parent);
  ClockFor(child).Join(parent_snapshot);
  // Work the parent does after the spawn is not ordered before the child.
  ClockFor(parent).bump(parent);
}

void RaceDetector::OnThreadJoin(uint32_t joiner_fiber, uint32_t joinee_fiber) {
  VectorClock joinee_snapshot = ClockFor(SlotFor(joinee_fiber));
  ClockFor(SlotFor(joiner_fiber)).Join(joinee_snapshot);
}

void RaceDetector::OnThreadFinish(uint32_t fiber) {
  // The host context resumes only after Scheduler::Run returns, i.e. after
  // every fiber has finished, so joining at finish time is sound. Threads
  // spawned from the host afterwards (e.g. an app's verification sweep)
  // inherit this ordering through OnThreadSpawn.
  VectorClock finished_snapshot = ClockFor(SlotFor(fiber));
  ClockFor(0).Join(finished_snapshot);
}

void RaceDetector::RegisterSyncWord(uint32_t as_id, uint32_t vpn, uint32_t word_offset) {
  sync_clocks_.try_emplace(Key(as_id, vpn, word_offset));
}

void RaceDetector::MarkIntentionalSharing(uint32_t as_id, uint32_t vpn,
                                          uint32_t word_offset) {
  intentional_.insert(Key(as_id, vpn, word_offset));
}

void RaceDetector::Report(const mem::MemoryAccess& access, WordState& word,
                          uint32_t prior_slot, bool prior_is_write,
                          sim::SimTime prior_time) {
  ++races_found_;
  if (word.reported || reports_.size() >= kMaxReports) {
    return;
  }
  word.reported = true;
  RaceReport report;
  report.as_id = access.as_id;
  report.vpn = access.vpn;
  report.word_offset = access.word_offset;
  report.zone = zone_resolver_(access.as_id, access.vpn);
  report.prior_fiber = prior_slot == 0 ? mem::kNoFiber : static_cast<uint32_t>(prior_slot - 1);
  report.prior_is_write = prior_is_write;
  report.prior_time = prior_time;
  report.fiber = access.fiber;
  report.is_write = access.is_write;
  report.time = access.time;
  reports_.push_back(std::move(report));
}

void RaceDetector::OnMemoryAccess(const mem::MemoryAccess& access) {
  uint64_t key = Key(access.as_id, access.vpn, access.word_offset);
  if (intentional_.count(key) != 0) {
    ++annotated_accesses_;
    return;
  }
  size_t slot = SlotFor(access.fiber);
  VectorClock& clock = ClockFor(slot);

  auto sync_it = sync_clocks_.find(key);
  if (sync_it != sync_clocks_.end()) {
    ++sync_accesses_;
    if (access.is_write) {
      // Release: publish everything this fiber has done, then advance its
      // component so later work is not retroactively ordered.
      sync_it->second.Join(clock);
      clock.bump(slot);
    } else {
      // Acquire: inherit everything published through this word.
      clock.Join(sync_it->second);
    }
    return;
  }

  ++accesses_checked_;
  WordState& word = words_[key];
  uint32_t epoch = clock.get(slot);

  // Conflict with the last write.
  if (word.write_epoch != 0 && word.write_slot != slot &&
      clock.get(word.write_slot) < word.write_epoch) {
    Report(access, word, static_cast<uint32_t>(word.write_slot), /*prior_is_write=*/true,
           word.write_time);
  }
  if (access.is_write) {
    // Conflict with any read since the last write.
    for (const ReadEntry& read : word.reads) {
      if (read.slot != slot && clock.get(read.slot) < read.epoch) {
        Report(access, word, static_cast<uint32_t>(read.slot), /*prior_is_write=*/false,
               read.time);
        break;
      }
    }
    word.write_slot = static_cast<uint32_t>(slot);
    word.write_epoch = epoch;
    word.write_time = access.time;
    word.reads.clear();
  } else {
    for (ReadEntry& read : word.reads) {
      if (read.slot == slot) {
        read.epoch = epoch;
        read.time = access.time;
        return;
      }
    }
    word.reads.push_back(ReadEntry{static_cast<uint32_t>(slot), epoch, access.time});
  }
}

std::string RaceDetector::Summary() const {
  std::ostringstream out;
  out << "race detector: " << accesses_checked_ << " data accesses checked, "
      << sync_accesses_ << " sync-word accesses, " << annotated_accesses_
      << " annotated (intentional sharing), " << races_found_ << " race"
      << (races_found_ == 1 ? "" : "s") << " found";
  return out.str();
}

}  // namespace platinum::check
