// Simulated data-race detector.
//
// The deterministic simulator routes every charged access to coherent memory
// through CoherentMemory::Access, so a vector-clock detector can check each
// word access for a conflicting, unsynchronized prior access — the
// fine-grain write sharing the freeze policy exists to contain (Sections 4.2
// and 6 of the paper). Happens-before edges come from two sources:
//
//   * thread lifecycle: spawn (child inherits the parent's clock), join
//     (joiner inherits the joinee's clock), and finish (the host context
//     inherits the finished fiber's clock, ordering work spawned later);
//   * synchronization words: words registered by rt::SpinLock,
//     rt::EventCountArray and rt::Barrier carry their own clock. Reading a
//     sync word is an acquire (the reader joins the word's clock); writing
//     one is a release (the word joins the writer's clock, whose own
//     component then advances). The kernel's atomic read-modify-write is a
//     read followed by a write, so a test-and-set or fetch-add performs an
//     acquire and a release, exactly like the Butterfly's atomic remote
//     operations used as synchronization.
//
// Sync-word clocks only ever grow, so the model is conservative in one
// direction only: it can miss a race involving a sync word used in a
// non-synchronizing way (false negative), but it never reports a race that
// vector-clock ordering rules out (no false positives on data words).
//
// Zones whose sharing is intentional — the neural simulator's chaotic
// relaxation updates activations, errors and weights with no synchronization
// by design (Section 5.3) — are annotated via MarkIntentionalSharing and
// excluded from checking.
#ifndef SRC_CHECK_RACE_DETECTOR_H_
#define SRC_CHECK_RACE_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/mem/access_observer.h"
#include "src/sim/time.h"

namespace platinum::check {

// A vector clock over detector slots. Slot 0 is the host context (code
// running between Scheduler::Run calls); fiber f occupies slot f + 1.
class VectorClock {
 public:
  uint32_t get(size_t slot) const { return slot < c_.size() ? c_[slot] : 0; }
  void set(size_t slot, uint32_t value) {
    Grow(slot);
    c_[slot] = value;
  }
  void bump(size_t slot) {
    Grow(slot);
    ++c_[slot];
  }
  void Join(const VectorClock& other) {
    if (other.c_.size() > c_.size()) {
      c_.resize(other.c_.size(), 0);
    }
    for (size_t i = 0; i < other.c_.size(); ++i) {
      if (other.c_[i] > c_[i]) {
        c_[i] = other.c_[i];
      }
    }
  }

 private:
  void Grow(size_t slot) {
    if (slot >= c_.size()) {
      c_.resize(slot + 1, 0);
    }
  }
  std::vector<uint32_t> c_;
};

struct RaceReport {
  uint32_t as_id = 0;
  uint32_t vpn = 0;
  uint32_t word_offset = 0;
  std::string zone;  // name of the memory object backing the page

  uint32_t prior_fiber = mem::kNoFiber;
  bool prior_is_write = false;
  sim::SimTime prior_time = 0;

  uint32_t fiber = mem::kNoFiber;
  bool is_write = false;
  sim::SimTime time = 0;

  std::string ToString() const;
};

class RaceDetector final : public mem::AccessObserver {
 public:
  // Maps (as_id, vpn) to the name of the allocating zone, for reports.
  using ZoneResolver = std::function<std::string(uint32_t as_id, uint32_t vpn)>;

  explicit RaceDetector(ZoneResolver zone_resolver);
  ~RaceDetector() override;

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // mem::AccessObserver — called for every charged word access.
  void OnMemoryAccess(const mem::MemoryAccess& access) override;

  // Thread-lifecycle happens-before edges (mem::kNoFiber = host context).
  void OnThreadSpawn(uint32_t parent_fiber, uint32_t child_fiber);
  void OnThreadJoin(uint32_t joiner_fiber, uint32_t joinee_fiber);
  void OnThreadFinish(uint32_t fiber);

  // Declares a word a synchronization variable (acquire/release semantics).
  void RegisterSyncWord(uint32_t as_id, uint32_t vpn, uint32_t word_offset);
  // Excludes a word from race checking (intentional unsynchronized sharing).
  void MarkIntentionalSharing(uint32_t as_id, uint32_t vpn, uint32_t word_offset);

  const std::vector<RaceReport>& reports() const { return reports_; }
  uint64_t races_found() const { return races_found_; }
  uint64_t accesses_checked() const { return accesses_checked_; }
  uint64_t sync_accesses() const { return sync_accesses_; }
  uint64_t annotated_accesses() const { return annotated_accesses_; }
  std::string Summary() const;

 private:
  // A read of a data word since its last write, with the reader's epoch.
  struct ReadEntry {
    uint32_t slot = 0;
    uint32_t epoch = 0;
    sim::SimTime time = 0;
  };
  struct WordState {
    uint32_t write_slot = 0;
    uint32_t write_epoch = 0;  // 0 = never written
    sim::SimTime write_time = 0;
    std::vector<ReadEntry> reads;
    bool reported = false;  // report each word at most once
  };

  static uint64_t Key(uint32_t as_id, uint32_t vpn, uint32_t word_offset) {
    return (static_cast<uint64_t>(as_id) << 44) | (static_cast<uint64_t>(vpn) << 14) |
           word_offset;
  }
  static size_t SlotFor(uint32_t fiber) { return fiber == mem::kNoFiber ? 0 : fiber + 1; }
  VectorClock& ClockFor(size_t slot);
  void Report(const mem::MemoryAccess& access, WordState& word, uint32_t prior_slot,
              bool prior_is_write, sim::SimTime prior_time);

  // Detector state is updated from the access hook of whichever fiber ran;
  // safe without a lock because fibers never preempt inside a hook.
  ZoneResolver zone_resolver_ PLATINUM_FIBER_SHARED;
  std::vector<VectorClock> clocks_ PLATINUM_FIBER_SHARED;  // indexed by slot
  // Keyed by packed (as, vpn, word); never iterated, so the hash order
  // cannot leak into any output.
  std::unordered_map<uint64_t, WordState> words_ PLATINUM_FIBER_SHARED;
  std::unordered_map<uint64_t, VectorClock> sync_clocks_ PLATINUM_FIBER_SHARED;
  std::unordered_set<uint64_t> intentional_ PLATINUM_FIBER_SHARED;

  std::vector<RaceReport> reports_ PLATINUM_FIBER_SHARED;
  uint64_t races_found_ PLATINUM_FIBER_SHARED = 0;
  uint64_t accesses_checked_ PLATINUM_FIBER_SHARED = 0;
  uint64_t sync_accesses_ PLATINUM_FIBER_SHARED = 0;
  uint64_t annotated_accesses_ PLATINUM_FIBER_SHARED = 0;
};

}  // namespace platinum::check

#endif  // SRC_CHECK_RACE_DETECTOR_H_
