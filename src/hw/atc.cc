#include "src/hw/atc.h"

#include "src/base/check.h"

namespace platinum::hw {

Atc::Atc(uint32_t num_entries) : slots_(num_entries), mask_(num_entries - 1) {
  PLAT_CHECK_GT(num_entries, 0u);
  PLAT_CHECK_EQ(num_entries & mask_, 0u) << "ATC size must be a power of two";
}

const PmapEntry* Atc::Lookup(uint32_t as_id, uint32_t vpn) const {
  const Slot& slot = slots_[IndexOf(vpn)];
  if (slot.valid && slot.as_id == as_id && slot.vpn == vpn) {
    return &slot.entry;
  }
  return nullptr;
}

void Atc::Fill(uint32_t as_id, uint32_t vpn, const PmapEntry& entry) {
  PLAT_CHECK(entry.valid);
  Slot& slot = slots_[IndexOf(vpn)];
  slot.valid = true;
  slot.as_id = as_id;
  slot.vpn = vpn;
  slot.entry = entry;
  ++fills_;
}

void Atc::FlushPage(uint32_t as_id, uint32_t vpn) {
  Slot& slot = slots_[IndexOf(vpn)];
  if (slot.valid && slot.as_id == as_id && slot.vpn == vpn) {
    slot.valid = false;
  }
}

void Atc::FlushAddressSpace(uint32_t as_id) {
  for (Slot& slot : slots_) {
    if (slot.valid && slot.as_id == as_id) {
      slot.valid = false;
    }
  }
}

void Atc::FlushAll() {
  for (Slot& slot : slots_) {
    slot.valid = false;
  }
}

}  // namespace platinum::hw
