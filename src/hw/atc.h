// Address-translation cache (TLB) of one processor's MMU.
//
// Models the MC68851's ATC as a direct-mapped cache of Pmap entries tagged by
// (address space, virtual page). The shootdown mechanism must flush these
// cached translations in addition to updating Pmaps (paper Section 3.1).
#ifndef SRC_HW_ATC_H_
#define SRC_HW_ATC_H_

#include <cstdint>
#include <vector>

#include "src/hw/pmap.h"
#include "src/hw/rights.h"

namespace platinum::hw {

class Atc {
 public:
  explicit Atc(uint32_t num_entries);

  // Returns the cached translation for (as_id, vpn), or nullptr on miss.
  const PmapEntry* Lookup(uint32_t as_id, uint32_t vpn) const;
  // Installs a translation, evicting whatever shared its slot.
  void Fill(uint32_t as_id, uint32_t vpn, const PmapEntry& entry);
  // Drops the translation for one page, if cached.
  void FlushPage(uint32_t as_id, uint32_t vpn);
  // Drops every translation for one address space.
  void FlushAddressSpace(uint32_t as_id);
  void FlushAll();

  uint64_t fills() const { return fills_; }

 private:
  struct Slot {
    bool valid = false;
    uint32_t as_id = 0;
    uint32_t vpn = 0;
    PmapEntry entry;
  };

  uint32_t IndexOf(uint32_t vpn) const { return vpn & mask_; }

  std::vector<Slot> slots_;
  uint32_t mask_;
  uint64_t fills_ = 0;
};

}  // namespace platinum::hw

#endif  // SRC_HW_ATC_H_
