#include "src/hw/pmap.h"

#include "src/base/check.h"

namespace platinum::hw {

Pmap::Pmap(uint32_t num_pages) : entries_(num_pages) {}

const PmapEntry& Pmap::entry(uint32_t vpn) const {
  PLAT_CHECK_LT(vpn, entries_.size());
  return entries_[vpn];
}

void Pmap::Enter(uint32_t vpn, int16_t module, uint32_t frame, Rights rights) {
  PLAT_CHECK_LT(vpn, entries_.size());
  PLAT_CHECK(rights != Rights::kNone);
  PmapEntry& e = entries_[vpn];
  if (!e.valid) {
    ++valid_count_;
  }
  e.frame = frame;
  e.module = module;
  e.rights = rights;
  e.valid = true;
}

void Pmap::Remove(uint32_t vpn) {
  PLAT_CHECK_LT(vpn, entries_.size());
  PmapEntry& e = entries_[vpn];
  if (e.valid) {
    --valid_count_;
    e = PmapEntry{};
  }
}

void Pmap::Restrict(uint32_t vpn, Rights rights) {
  PLAT_CHECK_LT(vpn, entries_.size());
  PmapEntry& e = entries_[vpn];
  if (!e.valid) {
    return;
  }
  auto have = static_cast<uint8_t>(e.rights);
  auto cap = static_cast<uint8_t>(rights);
  e.rights = static_cast<Rights>(have & cap);
  if (e.rights == Rights::kNone) {
    --valid_count_;
    e = PmapEntry{};
  }
}

}  // namespace platinum::hw
