// Per-processor physical page map.
//
// PLATINUM gives every processor a *private* Pmap per address space (unlike
// Mach's single shared Pmap) so that replicated pages can map to different
// physical copies on different nodes, and so shootdowns need not stall other
// processors (paper Section 3.1). A Pmap is only a cache of valid
// virtual-to-physical translations — it holds the processor's working set,
// not the whole address space.
#ifndef SRC_HW_PMAP_H_
#define SRC_HW_PMAP_H_

#include <cstdint>
#include <vector>

#include "src/hw/rights.h"

namespace platinum::hw {

struct PmapEntry {
  uint32_t frame = 0;
  int16_t module = -1;
  Rights rights = Rights::kNone;
  bool valid = false;
};

class Pmap {
 public:
  explicit Pmap(uint32_t num_pages);

  uint32_t num_pages() const { return static_cast<uint32_t>(entries_.size()); }

  const PmapEntry& entry(uint32_t vpn) const;
  // Installs or replaces the translation for `vpn`.
  void Enter(uint32_t vpn, int16_t module, uint32_t frame, Rights rights);
  // Removes the translation for `vpn`; no-op if not present.
  void Remove(uint32_t vpn);
  // Lowers the rights of an existing translation to at most `rights`; no-op
  // if not present.
  void Restrict(uint32_t vpn, Rights rights);

  // Number of valid entries (for tests and reports).
  uint32_t valid_count() const { return valid_count_; }

 private:
  std::vector<PmapEntry> entries_;
  uint32_t valid_count_ = 0;
};

}  // namespace platinum::hw

#endif  // SRC_HW_PMAP_H_
