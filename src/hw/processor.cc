#include "src/hw/processor.h"

namespace platinum::hw {

ProcessorMmu::ProcessorMmu(int id, uint32_t atc_entries) : id_(id), atc_(atc_entries) {}

}  // namespace platinum::hw
