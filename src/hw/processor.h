// Per-processor MMU state.
#ifndef SRC_HW_PROCESSOR_H_
#define SRC_HW_PROCESSOR_H_

#include <cstdint>

#include "src/hw/atc.h"

namespace platinum::hw {

// One node's processor-side MMU context. The fiber scheduler models the CPU
// itself; this holds the translation hardware the kernel manipulates.
class ProcessorMmu {
 public:
  ProcessorMmu(int id, uint32_t atc_entries);

  int id() const { return id_; }
  Atc& atc() { return atc_; }
  const Atc& atc() const { return atc_; }

 private:
  const int id_;
  Atc atc_;
};

}  // namespace platinum::hw

#endif  // SRC_HW_PROCESSOR_H_
