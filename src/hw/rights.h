// Access rights for virtual-to-coherent and virtual-to-physical mappings.
//
// Mirroring the paper, the rights in a processor's Pmap entry may be *more
// restrictive* than what the virtual memory layer granted: the coherency
// protocol restricts physical mappings to force the traps that drive it.
#ifndef SRC_HW_RIGHTS_H_
#define SRC_HW_RIGHTS_H_

#include <cstdint>

namespace platinum::hw {

enum class Rights : uint8_t {
  kNone = 0,
  kRead = 1,
  kReadWrite = 3,
};

// True if a mapping with rights `have` satisfies an access needing `need`.
inline bool Allows(Rights have, Rights need) {
  return (static_cast<uint8_t>(have) & static_cast<uint8_t>(need)) ==
         static_cast<uint8_t>(need);
}

inline const char* RightsName(Rights r) {
  switch (r) {
    case Rights::kNone:
      return "none";
    case Rights::kRead:
      return "read";
    case Rights::kReadWrite:
      return "read-write";
  }
  return "?";
}

}  // namespace platinum::hw

#endif  // SRC_HW_RIGHTS_H_
