#include "src/kernel/kernel.h"

#include <bit>
#include <utility>

#include "src/base/check.h"
#include "src/check/race_detector.h"
#include "src/mem/protocol.h"
#include "src/obs/page_trace.h"
#include "src/obs/scope.h"

namespace platinum::kernel {

Kernel::Kernel(sim::Machine* machine, KernelOptions options)
    : machine_(machine), default_as_pages_(options.address_space_pages) {
  PLAT_CHECK(machine_ != nullptr);
  std::unique_ptr<mem::ReplicationPolicy> policy = std::move(options.policy);
  if (policy == nullptr) {
    policy = std::make_unique<mem::TimestampPolicy>(machine_->params().t1_freeze_window_ns);
  }
  memory_ = std::make_unique<mem::CoherentMemory>(
      machine_, std::move(policy),
      mem::MakeProtocol(options.protocol, options.tardis_lease_ns,
                        options.tardis_lease_policy));
  page_shift_ = static_cast<uint32_t>(std::countr_zero(machine_->params().page_size_bytes));
  if (options.start_defrost_daemon) {
    memory_->StartDefrostDaemon();
  }
}

Kernel::~Kernel() = default;

Kernel::VaParts Kernel::Split(uint32_t va) const {
  PLAT_DCHECK((va & 3u) == 0) << "unaligned word access at va " << va;
  return VaParts{va >> page_shift_,
                 (va & (machine_->params().page_size_bytes - 1)) >> 2};
}

vm::MemoryObject* Kernel::CreateMemoryObject(std::string name, uint32_t pages,
                                             int home_module) {
  auto object = std::make_unique<vm::MemoryObject>(static_cast<uint32_t>(objects_.size()),
                                                   std::move(name), pages);
  for (uint32_t i = 0; i < pages; ++i) {
    int home = home_module >= 0 ? home_module : -1;
    object->set_cpage(i, memory_->CreateCpage(home));
  }
  objects_.push_back(std::move(object));
  return objects_.back().get();
}

vm::AddressSpace* Kernel::CreateAddressSpace(std::string name, uint32_t num_pages) {
  if (num_pages == 0) {
    num_pages = default_as_pages_;
  }
  uint32_t as_id = memory_->RegisterAddressSpace(num_pages);
  auto space = std::make_unique<vm::AddressSpace>(as_id, std::move(name), num_pages);
  PLAT_CHECK_EQ(space->id(), static_cast<uint32_t>(spaces_.size()));
  spaces_.push_back(std::move(space));
  return spaces_.back().get();
}

void Kernel::Map(vm::AddressSpace* space, vm::MemoryObject* object, uint32_t object_page,
                 uint32_t num_pages, uint32_t vpn, hw::Rights rights) {
  PLAT_CHECK(space != nullptr);
  PLAT_CHECK(object != nullptr);
  space->AddBinding(vm::Binding{object, object_page, num_pages, vpn, rights});
  for (uint32_t i = 0; i < num_pages; ++i) {
    memory_->BindPage(space->id(), vpn + i, object->cpage(object_page + i), rights);
  }
}

void Kernel::Unmap(vm::AddressSpace* space, uint32_t vpn, uint32_t num_pages) {
  PLAT_CHECK(space != nullptr);
  for (uint32_t i = 0; i < num_pages; ++i) {
    memory_->UnbindPage(space->id(), vpn + i);
  }
}

Thread* Kernel::SpawnThread(vm::AddressSpace* space, int processor, std::string name,
                            std::function<void()> body) {
  PLAT_CHECK(space != nullptr);
  auto owned = std::unique_ptr<Thread>(
      new Thread(this, static_cast<uint32_t>(threads_.size()), name, space, processor));
  Thread* thread = owned.get();
  threads_.push_back(std::move(owned));

  sim::Fiber* fiber = machine_->scheduler().Spawn(
      processor, std::move(name), [this, thread, body = std::move(body)] {
        // The thread's whole lifetime becomes a span on its processor's
        // track in the exported trace.
        obs::ObsScope span(*machine_, thread->name());
        machine_->Compute(machine_->params().thread_spawn_ns);
        memory_->Activate(thread->address_space().id(), thread->processor_);
        body();
        memory_->Deactivate(thread->address_space().id(), thread->processor_);
        if (race_detector_ != nullptr) {
          race_detector_->OnThreadFinish(machine_->scheduler().current()->id());
        }
      });
  thread->fiber_ = fiber;
  thread_by_fiber_[fiber] = thread;
  if (race_detector_ != nullptr) {
    // The spawner's clock reaches the child before it can run (Spawn only
    // enqueues the fiber).
    sim::Fiber* parent = machine_->scheduler().current();
    race_detector_->OnThreadSpawn(parent != nullptr ? parent->id() : mem::kNoFiber,
                                  fiber->id());
  }
  return thread;
}

Thread* Kernel::CurrentThread() {
  sim::Fiber* fiber = machine_->scheduler().current();
  if (fiber == nullptr) {
    return nullptr;
  }
  auto it = thread_by_fiber_.find(fiber);
  return it != thread_by_fiber_.end() ? it->second : nullptr;
}

void Kernel::JoinThread(Thread* thread) {
  PLAT_CHECK(thread != nullptr);
  PLAT_CHECK(thread->fiber_ != nullptr);
  machine_->scheduler().Join(thread->fiber_);
  if (race_detector_ != nullptr) {
    sim::Fiber* joiner = machine_->scheduler().current();
    race_detector_->OnThreadJoin(joiner != nullptr ? joiner->id() : mem::kNoFiber,
                                 thread->fiber_->id());
  }
}

void Kernel::Run() { machine_->scheduler().Run(); }

void Kernel::MigrateCurrentThread(Thread* thread, int new_processor) {
  PLAT_CHECK(CurrentThread() == thread) << "a thread may only migrate itself";
  if (new_processor == thread->processor_) {
    return;
  }
  const sim::MachineParams& params = machine_->params();
  // Fixed kernel cost plus moving the kernel stack with the thread
  // (Section 2.2's special handling of kernel stacks in coherent memory).
  machine_->Compute(params.thread_migrate_fixed_ns +
                    static_cast<sim::SimTime>(params.words_per_page()) *
                        params.block_copy_word_ns);
  int old_processor = thread->processor_;
  memory_->Deactivate(thread->address_space().id(), old_processor);
  machine_->scheduler().MigrateCurrent(new_processor);
  thread->processor_ = new_processor;
  memory_->Activate(thread->address_space().id(), new_processor);
}

uint32_t Kernel::ReadWord(vm::AddressSpace* space, uint32_t va) {
  VaParts parts = Split(va);
  mem::CoherentMemory::AccessResult result =
      memory_->Access(space->id(), parts.vpn, parts.word_offset, sim::AccessKind::kRead);
  PLAT_CHECK(result.outcome == mem::AccessOutcome::kOk)
      << "read fault at va " << va << " in space '" << space->name() << "'";
  return result.value;
}

void Kernel::WriteWord(vm::AddressSpace* space, uint32_t va, uint32_t value) {
  VaParts parts = Split(va);
  mem::CoherentMemory::AccessResult result = memory_->Access(
      space->id(), parts.vpn, parts.word_offset, sim::AccessKind::kWrite, value);
  PLAT_CHECK(result.outcome == mem::AccessOutcome::kOk)
      << "write fault at va " << va << " in space '" << space->name() << "'";
}

void Kernel::ReadWords(vm::AddressSpace* space, uint32_t va, uint32_t count, uint32_t* out) {
  if (count == 0) {
    return;
  }
  VaParts parts = Split(va);
  mem::AccessOutcome outcome =
      memory_->ReadRange(space->id(), parts.vpn, parts.word_offset, count, out);
  PLAT_CHECK(outcome == mem::AccessOutcome::kOk)
      << "read fault in range [" << va << ", " << va + count * 4 << ") in space '"
      << space->name() << "'";
}

void Kernel::WriteWords(vm::AddressSpace* space, uint32_t va, uint32_t count,
                        const uint32_t* values) {
  if (count == 0) {
    return;
  }
  VaParts parts = Split(va);
  mem::AccessOutcome outcome =
      memory_->WriteRange(space->id(), parts.vpn, parts.word_offset, count, values);
  PLAT_CHECK(outcome == mem::AccessOutcome::kOk)
      << "write fault in range [" << va << ", " << va + count * 4 << ") in space '"
      << space->name() << "'";
}

uint32_t Kernel::AtomicReadModifyWrite(vm::AddressSpace* space, uint32_t va,
                                       const std::function<uint32_t(uint32_t)>& update) {
  VaParts parts = Split(va);
  // Fibers only interleave at yield points, so a read immediately followed by
  // a write (both with yielding suppressed) is atomic, modeling the
  // Butterfly's atomic remote operations.
  mem::CoherentMemory::AccessResult read = memory_->Access(
      space->id(), parts.vpn, parts.word_offset, sim::AccessKind::kRead, 0,
      /*allow_yield=*/false);
  PLAT_CHECK(read.outcome == mem::AccessOutcome::kOk);
  mem::CoherentMemory::AccessResult write =
      memory_->Access(space->id(), parts.vpn, parts.word_offset, sim::AccessKind::kWrite,
                      update(read.value), /*allow_yield=*/true);
  PLAT_CHECK(write.outcome == mem::AccessOutcome::kOk);
  return read.value;
}

uint32_t Kernel::AtomicFetchAdd(vm::AddressSpace* space, uint32_t va, uint32_t delta) {
  return AtomicReadModifyWrite(space, va, [delta](uint32_t v) { return v + delta; });
}

uint32_t Kernel::AtomicTestAndSet(vm::AddressSpace* space, uint32_t va) {
  return AtomicReadModifyWrite(space, va, [](uint32_t) { return 1u; });
}

void Kernel::AdviseMemory(vm::AddressSpace* space, uint32_t va, uint32_t bytes,
                          mem::MemoryAdvice advice) {
  PLAT_CHECK(space != nullptr);
  PLAT_CHECK_GT(bytes, 0u);
  uint32_t first = VpnOf(va);
  uint32_t last = VpnOf(va + bytes - 1);
  memory_->Advise(space->id(), first, last - first + 1, advice);
}

void Kernel::PinMemory(vm::AddressSpace* space, uint32_t va, int node) {
  PLAT_CHECK(space != nullptr);
  memory_->PinTo(space->id(), VpnOf(va), node);
}

void Kernel::ReplicateMemory(vm::AddressSpace* space, uint32_t va, int node) {
  PLAT_CHECK(space != nullptr);
  memory_->ReplicateTo(space->id(), VpnOf(va), node);
}

void Kernel::ThawMemory(vm::AddressSpace* space, uint32_t va) {
  PLAT_CHECK(space != nullptr);
  const mem::CmapEntry& entry = memory_->cmap(space->id()).entry(VpnOf(va));
  PLAT_CHECK(entry.bound()) << "thaw of unbound va " << va;
  memory_->Thaw(entry.cpage);
}

Port* Kernel::CreatePort(std::string name) {
  ports_.push_back(
      std::unique_ptr<Port>(new Port(static_cast<uint32_t>(ports_.size()), std::move(name))));
  return ports_.back().get();
}

void Kernel::Send(Port* port, std::span<const uint32_t> message) {
  PLAT_CHECK(port != nullptr);
  const sim::MachineParams& params = machine_->params();
  machine_->Compute(params.port_fixed_ns +
                    static_cast<sim::SimTime>(message.size()) * params.port_word_ns);
  Port::Message queued;
  queued.words.assign(message.begin(), message.end());
  queued.ready_at = machine_->scheduler().now();
  // Queue and receiver list form one critical section; the wake-up happens
  // outside it (Wake only enqueues, but keeping switch-capable calls out of
  // critical sections is the discipline platlint enforces).
  port->queue_lock_.Acquire();
  port->queue_.push_back(std::move(queued));
  sim::Fiber* receiver = nullptr;
  if (!port->waiting_receivers_.empty()) {
    receiver = port->waiting_receivers_.front();
    port->waiting_receivers_.pop_front();
  }
  port->queue_lock_.Release();
  if (receiver != nullptr) {
    machine_->scheduler().Wake(receiver, machine_->scheduler().now());
  }
}

std::vector<uint32_t> Kernel::Receive(Port* port) {
  PLAT_CHECK(port != nullptr);
  sim::Scheduler& sched = machine_->scheduler();
  PLAT_CHECK(sched.current() != nullptr) << "Receive must be called from a thread";
  // The paper's kernel discipline: a receiver finding the queue empty
  // registers itself and *releases the port lock before blocking* — blocking
  // inside the critical section would deadlock the real machine (and, here,
  // let another fiber observe a half-updated queue).
  for (;;) {
    port->queue_lock_.Acquire();
    if (!port->queue_.empty()) {
      Port::Message message = std::move(port->queue_.front());
      port->queue_.pop_front();
      port->queue_lock_.Release();
      sched.AdvanceTo(message.ready_at);
      machine_->Compute(machine_->params().port_fixed_ns);
      return std::move(message.words);
    }
    port->waiting_receivers_.push_back(sched.current());
    port->queue_lock_.Release();
    sched.Block();
  }
}

check::RaceDetector& Kernel::EnableRaceDetection() {
  if (race_detector_ != nullptr) {
    return *race_detector_;
  }
  race_detector_ = std::make_unique<check::RaceDetector>(
      [this](uint32_t as_id, uint32_t vpn) -> std::string {
        if (as_id < spaces_.size()) {
          const vm::Binding* binding = spaces_[as_id]->FindBinding(vpn);
          if (binding != nullptr) {
            return binding->object->name();
          }
        }
        return "?";
      });
  memory_->SetAccessObserver(race_detector_.get());
  for (const WordRange& range : sync_word_ranges_) {
    ForwardSyncWords(range);
  }
  for (const WordRange& range : intentional_ranges_) {
    ForwardIntentionalSharing(range);
  }
  return *race_detector_;
}

void Kernel::AttachPageTrace(obs::PageTrace* trace) {
  PLAT_CHECK(trace != nullptr);
  trace->set_next_access_observer(memory_->access_observer());
  memory_->SetAccessObserver(trace);
  memory_->SetPageEventSink(trace);
}

void Kernel::ForwardSyncWords(const WordRange& range) {
  for (uint32_t i = 0; i < range.count; ++i) {
    VaParts parts = Split(range.va + i * 4);
    race_detector_->RegisterSyncWord(range.as_id, parts.vpn, parts.word_offset);
  }
}

void Kernel::ForwardIntentionalSharing(const WordRange& range) {
  for (uint32_t i = 0; i < range.count; ++i) {
    VaParts parts = Split(range.va + i * 4);
    race_detector_->MarkIntentionalSharing(range.as_id, parts.vpn, parts.word_offset);
  }
}

void Kernel::RegisterSyncWords(vm::AddressSpace* space, uint32_t va, uint32_t count) {
  PLAT_CHECK(space != nullptr);
  PLAT_CHECK_GT(count, 0u);
  WordRange range{space->id(), va, count};
  sync_word_ranges_.push_back(range);
  if (race_detector_ != nullptr) {
    ForwardSyncWords(range);
  }
}

void Kernel::AnnotateIntentionalSharing(vm::AddressSpace* space, uint32_t va,
                                        uint32_t bytes) {
  PLAT_CHECK(space != nullptr);
  PLAT_CHECK_GT(bytes, 0u);
  WordRange range{space->id(), va, (bytes + 3) / 4};
  intentional_ranges_.push_back(range);
  if (race_detector_ != nullptr) {
    ForwardIntentionalSharing(range);
  }
}

vm::MemoryObject* Kernel::FindMemoryObject(const std::string& name) {
  for (const auto& object : objects_) {
    if (object->name() == name) {
      return object.get();
    }
  }
  return nullptr;
}

Port* Kernel::FindPort(const std::string& name) {
  for (const auto& port : ports_) {
    if (port->name() == name) {
      return port.get();
    }
  }
  return nullptr;
}

}  // namespace platinum::kernel
