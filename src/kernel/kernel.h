// The PLATINUM kernel facade.
//
// Ties the layers together: the virtual memory system (memory objects,
// address spaces) on top, the coherent memory system in the middle, and the
// simulated machine at the bottom — the three-layer structure of Section 2.
// Also provides the thread and port abstractions and the global name space
// in which all kernel objects live.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kernel/port.h"
#include "src/kernel/thread.h"
#include "src/mem/coherent_memory.h"
#include "src/mem/policy.h"
#include "src/sim/machine.h"
#include "src/vm/address_space.h"
#include "src/vm/memory_object.h"

namespace platinum::check {
class RaceDetector;
}  // namespace platinum::check

namespace platinum::obs {
class PageTrace;
}  // namespace platinum::obs

namespace platinum::kernel {

struct KernelOptions {
  // Replication policy; defaults to the paper's timestamp policy with the
  // machine's t1.
  std::unique_ptr<mem::ReplicationPolicy> policy;
  // Coherence protocol: "directory" (the paper's shootdown protocol) or
  // "tardis" (timestamp leases — see docs/PROTOCOL.md).
  std::string protocol = "directory";
  // Tardis tuning: initial lease duration in simulated ns (0 = the protocol
  // default) and the lease policy, "fixed" or "doubling".
  sim::SimTime tardis_lease_ns = 0;
  std::string tardis_lease_policy = "fixed";
  // Start the defrost daemon at boot (Section 4.2). Disable for ablations.
  bool start_defrost_daemon = true;
  // Default virtual-address capacity of new address spaces, in pages.
  uint32_t address_space_pages = 16 * 1024;  // 64 MB of VA at 4 KB pages
};

class Kernel {
 public:
  explicit Kernel(sim::Machine* machine, KernelOptions options = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Machine& machine() { return *machine_; }
  mem::CoherentMemory& memory() { return *memory_; }
  // The machine-wide instrumentation registry (histograms, per-processor
  // counters, spans, phases) — see src/obs/observability.h.
  obs::Observability& observability() { return machine_->obs(); }
  sim::SimTime Now() const { return machine_->scheduler().now(); }
  int num_processors() const { return machine_->num_nodes(); }

  // --- Virtual memory ---------------------------------------------------------
  // Creates a memory object of `pages` pages. `home_module` places the pages'
  // kernel structures (round-robin across nodes when negative).
  vm::MemoryObject* CreateMemoryObject(std::string name, uint32_t pages, int home_module = -1);
  vm::AddressSpace* CreateAddressSpace(std::string name, uint32_t num_pages = 0);
  // Binds `num_pages` object pages starting at `object_page` to the virtual
  // range starting at page `vpn`.
  void Map(vm::AddressSpace* space, vm::MemoryObject* object, uint32_t object_page,
           uint32_t num_pages, uint32_t vpn, hw::Rights rights);
  void Unmap(vm::AddressSpace* space, uint32_t vpn, uint32_t num_pages);

  // --- Threads -----------------------------------------------------------------
  Thread* SpawnThread(vm::AddressSpace* space, int processor, std::string name,
                      std::function<void()> body);
  // The thread owning the calling fiber, or nullptr outside any thread.
  Thread* CurrentThread();
  // Blocks the calling thread until `thread` finishes.
  void JoinThread(Thread* thread);
  // Runs the machine until all threads complete.
  void Run();

  // --- Coherent memory access (32-bit words; `va` is a byte address) -----------
  uint32_t ReadWord(vm::AddressSpace* space, uint32_t va);
  void WriteWord(vm::AddressSpace* space, uint32_t va, uint32_t value);
  // Block transfer of `count` consecutive words starting at `va` (may span
  // pages). Simulated behavior is identical to `count` ReadWord/WriteWord
  // calls — same latencies, faults and yield points — with the per-word host
  // dispatch overhead amortized (mem::CoherentMemory::ReadRange).
  void ReadWords(vm::AddressSpace* space, uint32_t va, uint32_t count, uint32_t* out);
  void WriteWords(vm::AddressSpace* space, uint32_t va, uint32_t count, const uint32_t* values);
  // Atomic read-modify-write (the Butterfly's atomic remote operations).
  // Returns the *previous* value.
  uint32_t AtomicFetchAdd(vm::AddressSpace* space, uint32_t va, uint32_t delta);
  // Returns the previous value, then stores 1 (spin-lock acquire primitive).
  uint32_t AtomicTestAndSet(vm::AddressSpace* space, uint32_t va);

  // --- Memory-placement hooks (Section 9) ---------------------------------------
  // Attaches placement advice to the pages covering [va, va + bytes).
  void AdviseMemory(vm::AddressSpace* space, uint32_t va, uint32_t bytes,
                    mem::MemoryAdvice advice);
  // Migrates the page holding `va` to `node` and freezes it there.
  void PinMemory(vm::AddressSpace* space, uint32_t va, int node);
  // Pre-replicates the page holding `va` onto `node`.
  void ReplicateMemory(vm::AddressSpace* space, uint32_t va, int node);
  // Explicitly thaws the page holding `va` (Section 4.2's thaw hook).
  void ThawMemory(vm::AddressSpace* space, uint32_t va);

  // --- Ports ---------------------------------------------------------------------
  Port* CreatePort(std::string name);
  void Send(Port* port, std::span<const uint32_t> message);
  std::vector<uint32_t> Receive(Port* port);

  // --- Correctness checking (src/check) ---------------------------------------
  // Creates and installs the simulated race detector (idempotent). Previously
  // registered synchronization words and intentional-sharing annotations are
  // replayed into it. Enable before spawning the threads to be checked.
  check::RaceDetector& EnableRaceDetection();
  // The installed detector, or nullptr when race detection is off.
  check::RaceDetector* race_detector() { return race_detector_.get(); }
  // Declares `count` words starting at `va` synchronization variables
  // (acquire on read, release on write). rt::SpinLock, rt::EventCountArray
  // and rt::Barrier register their words automatically; apps with hand-rolled
  // spin flags must call this themselves.
  void RegisterSyncWords(vm::AddressSpace* space, uint32_t va, uint32_t count);
  // Excludes [va, va + bytes) from race checking: the program shares these
  // words unsynchronized by design (e.g. chaotic relaxation).
  void AnnotateIntentionalSharing(vm::AddressSpace* space, uint32_t va, uint32_t bytes);

  // --- Forensics (src/obs/page_trace.h) ----------------------------------------
  // Installs `trace` as the memory system's page-event sink and access
  // observer, chaining any observer already installed (so call this after
  // EnableRaceDetection when both are wanted). The caller keeps ownership
  // and must outlive the run.
  void AttachPageTrace(obs::PageTrace* trace);

  // --- Name space ------------------------------------------------------------------
  vm::MemoryObject* FindMemoryObject(const std::string& name);
  Port* FindPort(const std::string& name);

  uint32_t page_size() const { return machine_->params().page_size_bytes; }
  uint32_t VpnOf(uint32_t va) const { return va >> page_shift_; }

 private:
  friend class Thread;

  struct VaParts {
    uint32_t vpn;
    uint32_t word_offset;
  };
  VaParts Split(uint32_t va) const;
  uint32_t AtomicReadModifyWrite(vm::AddressSpace* space, uint32_t va,
                                 const std::function<uint32_t(uint32_t)>& update);
  void MigrateCurrentThread(Thread* thread, int new_processor);

  // A registered word range, kept so ranges declared before the detector is
  // enabled can be replayed into it.
  struct WordRange {
    uint32_t as_id;
    uint32_t va;
    uint32_t count;  // words
  };
  void ForwardSyncWords(const WordRange& range);
  void ForwardIntentionalSharing(const WordRange& range);

  sim::Machine* machine_;
  std::unique_ptr<mem::CoherentMemory> memory_;
  const uint32_t default_as_pages_;
  uint32_t page_shift_ = 0;

  std::vector<std::unique_ptr<vm::MemoryObject>> objects_;
  std::vector<std::unique_ptr<vm::AddressSpace>> spaces_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<std::unique_ptr<Port>> ports_;
  // Lookup-only (never iterated), so the hash order cannot affect the
  // simulation. nondet-ok: keyed lookup, no iteration.
  std::unordered_map<const sim::Fiber*, Thread*> thread_by_fiber_;

  std::vector<WordRange> sync_word_ranges_;
  std::vector<WordRange> intentional_ranges_;
  std::unique_ptr<check::RaceDetector> race_detector_;
};

}  // namespace platinum::kernel

#endif  // SRC_KERNEL_KERNEL_H_
