// Ports: globally named message queues (Section 1.1).
//
// A port may have any number of senders and receivers; messages are
// variable-length word arrays. Ports provide communication between threads
// that share no memory object, and blocking synchronization.
#ifndef SRC_KERNEL_PORT_H_
#define SRC_KERNEL_PORT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/base/discipline_lock.h"
#include "src/base/thread_annotations.h"
#include "src/sim/fiber.h"
#include "src/sim/time.h"

namespace platinum::kernel {

class Kernel;

class Port {
 public:
  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  size_t queued() const {
    queue_lock_.Acquire();
    size_t n = queue_.size();
    queue_lock_.Release();
    return n;
  }

 private:
  friend class Kernel;

  struct Message {
    std::vector<uint32_t> words;
    // Virtual time at which the message body has arrived in the queue.
    sim::SimTime ready_at = 0;
  };

  Port(uint32_t id, std::string name) : id_(id), name_(std::move(name)) {}

  const uint32_t id_;
  const std::string name_;
  // The port lock of the real kernel: message queue and receiver list form
  // one critical section, and a receiver must leave it before blocking
  // (Kernel::Receive). Zero-cost under fiber serialization.
  base::DisciplineLock queue_lock_;
  std::deque<Message> queue_ GUARDED_BY(queue_lock_);
  std::deque<sim::Fiber*> waiting_receivers_ GUARDED_BY(queue_lock_);
};

}  // namespace platinum::kernel

#endif  // SRC_KERNEL_PORT_H_
