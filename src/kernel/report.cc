#include "src/kernel/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/kernel/kernel.h"

namespace platinum::kernel {

MemoryReport BuildMemoryReport(Kernel& kernel) {
  MemoryReport report;
  report.machine = kernel.machine().stats();
  const mem::CpageTable& table = kernel.memory().cpages();
  for (uint32_t id = 0; id < table.size(); ++id) {
    const mem::Cpage& page = table.at(id);
    if (page.frozen()) {
      ++report.frozen_pages;
    }
    if (page.stats().freezes > 0) {
      ++report.pages_ever_frozen;
    }
    if (page.stats().faults == 0) {
      continue;
    }
    report.pages.push_back(CpageReportEntry{id, page.state(), page.frozen(), page.stats()});
  }
  return report;
}

std::string MemoryReport::ToString(size_t top) const {
  std::vector<CpageReportEntry> busiest = pages;
  std::sort(busiest.begin(), busiest.end(), [](const auto& a, const auto& b) {
    return a.stats.faults > b.stats.faults;
  });
  if (busiest.size() > top) {
    busiest.resize(top);
  }

  std::ostringstream out;
  out << machine.ToString();
  out << "pages frozen now: " << frozen_pages << ", ever frozen: " << pages_ever_frozen << "\n";
  out << "cpage    state     frozen  faults  (r/w)          repl  migr  rmaps  inval  "
         "waits  wait-ms\n";
  char line[160];
  for (const CpageReportEntry& e : busiest) {
    std::snprintf(line, sizeof(line),
                  "%-8" PRIu32 " %-9s %-7s %-7" PRIu64 " (%" PRIu64 "/%" PRIu64 ")%*s"
                  "%-5" PRIu64 " %-5" PRIu64 " %-6" PRIu64 " %-6" PRIu64 " %-6" PRIu64
                  " %.2f\n",
                  e.cpage_id, mem::CpageStateName(e.state), e.frozen_now ? "yes" : "no",
                  e.stats.faults, e.stats.read_faults, e.stats.write_faults, 2, "",
                  e.stats.replications, e.stats.migrations, e.stats.remote_maps,
                  e.stats.invalidation_rounds, e.stats.handler_waits,
                  sim::ToMilliseconds(e.stats.handler_wait_ns));
    out << line;
  }
  return out.str();
}

}  // namespace platinum::kernel
