// Post-mortem memory-management report (Section 4.2).
//
// "In addition to timing data, the kernel produces a detailed report on the
// behavior of memory management": per-Cpage fault counts, a measure of
// contention in the Cpage fault handler, and whether the page was frozen.
// This is the instrumentation that diagnosed the frozen matrix-size page in
// the paper's Gaussian elimination anecdote.
#ifndef SRC_KERNEL_REPORT_H_
#define SRC_KERNEL_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/cpage.h"
#include "src/sim/stats.h"

namespace platinum::kernel {

class Kernel;

struct CpageReportEntry {
  uint32_t cpage_id = 0;
  mem::CpageState state = mem::CpageState::kEmpty;
  bool frozen_now = false;
  mem::CpageStats stats;
};

struct MemoryReport {
  sim::MachineStats machine;
  std::vector<CpageReportEntry> pages;  // only pages that saw faults

  // Pages currently frozen.
  uint32_t frozen_pages = 0;
  // Pages ever frozen during the run.
  uint32_t pages_ever_frozen = 0;

  // Renders the paper-style table, listing the `top` busiest pages.
  std::string ToString(size_t top = 16) const;
};

MemoryReport BuildMemoryReport(Kernel& kernel);

}  // namespace platinum::kernel

#endif  // SRC_KERNEL_REPORT_H_
