#include "src/kernel/thread.h"

#include "src/kernel/kernel.h"

namespace platinum::kernel {

bool Thread::done() const {
  return fiber_ != nullptr && fiber_->state() == sim::Fiber::State::kDone;
}

void Thread::Migrate(int new_processor) { kernel_->MigrateCurrentThread(this, new_processor); }

}  // namespace platinum::kernel
