// Kernel-scheduled threads (Section 1.1).
//
// A thread is bound to a single processor at any time and executes within a
// single address space; an explicit migration operation moves it to another
// node (taking its kernel stack with it, Section 2.2).
#ifndef SRC_KERNEL_THREAD_H_
#define SRC_KERNEL_THREAD_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/sim/fiber.h"

namespace platinum::vm {
class AddressSpace;
}

namespace platinum::kernel {

class Kernel;

class Thread {
 public:
  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  vm::AddressSpace& address_space() const { return *address_space_; }
  int processor() const { return processor_; }
  bool done() const;

  // Moves the calling thread (which must be this thread) to another node.
  void Migrate(int new_processor);

 private:
  friend class Kernel;

  Thread(Kernel* kernel, uint32_t id, std::string name, vm::AddressSpace* address_space,
         int processor)
      : kernel_(kernel),
        id_(id),
        name_(std::move(name)),
        address_space_(address_space),
        processor_(processor) {}

  Kernel* kernel_;
  const uint32_t id_;
  const std::string name_;
  vm::AddressSpace* address_space_;
  int processor_;
  sim::Fiber* fiber_ = nullptr;
};

}  // namespace platinum::kernel

#endif  // SRC_KERNEL_THREAD_H_
