#include "src/load/driver.h"

#include <functional>

#include "src/base/check.h"
#include "src/obs/json.h"
#include "src/runtime/parallel.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::load {

const char* OpClassName(int op_class) {
  switch (op_class) {
    case kOpReadHit:
      return "read_hit";
    case kOpReadMiss:
      return "read_miss";
    case kOpInsert:
      return "insert";
    case kOpErase:
      return "erase";
    default:
      return "unknown";
  }
}

ServeResult RunTrieServe(kernel::Kernel& kernel, const DriverConfig& config) {
  PLAT_CHECK_GE(config.procs, 1);
  PLAT_CHECK_LE(config.procs, kernel.num_processors());
  if (config.arrival == ArrivalMode::kOpen) {
    PLAT_CHECK_GT(config.interarrival_ns, 0);
  }
  const WorkloadSpec& spec = config.spec;
  const uint32_t workers = static_cast<uint32_t>(config.procs);
  RequestScript script = RequestScript::Generate(spec, workers);

  auto* space = kernel.CreateAddressSpace("trie-serve");
  rt::ZoneAllocator zone(&kernel, space);
  apps::SharedTrie::Options trie_options;
  trie_options.max_keys = spec.keys;
  trie_options.advise = config.advise;
  apps::SharedTrie trie = apps::SharedTrie::Create(zone, trie_options);
  rt::Barrier barrier(zone, "serve-barrier", workers);

  ServeResult result;
  sim::SimTime t_start = 0;
  rt::RunOnProcessors(kernel, space, config.procs, "trie-serve", [&](int pid) {
    const uint32_t p = static_cast<uint32_t>(pid);
    // Preload phase (untimed): each owner first-touches its own keys, so
    // leaf pages start resident where their writer lives.
    for (uint32_t key : script.PreloadFor(p)) {
      trie.Insert(key, RequestScript::PreloadValue(spec.seed, key));
    }
    barrier.Wait();
    if (pid == 0) {
      t_start = kernel.Now();
    }
    const sim::SimTime open_base = kernel.Now();
    uint64_t issued = 0;
    for (const Request& req : script.ForWorker(p)) {
      sim::SimTime start = kernel.Now();
      if (config.arrival == ArrivalMode::kOpen) {
        sim::SimTime arrival = open_base + issued * config.interarrival_ns;
        if (start < arrival) {
          kernel.machine().scheduler().Sleep(arrival - start);
        }
        start = arrival;  // a late server accrues queueing delay
      }
      int op_class = kNumOpClasses;
      switch (req.op) {
        case OpKind::kLookup: {
          uint32_t value = 0;
          op_class = trie.Lookup(req.key, &value) ? kOpReadHit : kOpReadMiss;
          break;
        }
        case OpKind::kInsert:
          trie.Insert(req.key, req.value);
          op_class = kOpInsert;
          break;
        case OpKind::kErase:
          trie.Erase(req.key);
          op_class = kOpErase;
          break;
      }
      result.latency[op_class].Record(kernel.Now() - start);
      ++issued;
    }
    barrier.Wait();
  });
  result.serve_ns = kernel.machine().scheduler().global_now() - t_start;
  for (int c = 0; c < kNumOpClasses; ++c) {
    result.requests += result.latency[c].count();
  }
  for (uint32_t p = 0; p < workers; ++p) {
    result.preloaded += script.PreloadFor(p).size();
  }
  result.trie = trie.host_stats();
  result.as_id = trie.space()->id();
  result.interior_base_va = trie.interior_base_va();
  result.interior_words = trie.interior_words();
  result.leaf_base_va = trie.leaf_base_va();
  result.leaf_words = trie.leaf_words();
  result.sync_vas = trie.sync_vas();
  result.sync_vas.push_back(barrier.base_va());

  // Post-run walk: one fresh simulated thread reads the final contents.
  uint64_t entries = 0;
  apps::Checksum sum;
  kernel.SpawnThread(space, 0, "trie-verify", [&] {
    trie.Visit([&](uint32_t key, uint32_t value) {
      ++entries;
      sum.Add(key);
      sum.Add(value);
    });
  });
  kernel.Run();
  result.entries = entries;
  result.checksum = sum.value();
  if (config.verify) {
    RequestScript::Reference ref = script.ReplayReference();
    result.verified = ref.checksum == result.checksum && ref.entries == result.entries;
    PLAT_CHECK(result.verified)
        << "trie contents diverge from the reference replay: entries " << result.entries
        << " vs " << ref.entries << ", checksum " << result.checksum << " vs "
        << ref.checksum;
  }
  return result;
}

namespace {

void WriteClass(obs::JsonWriter& w, const char* name, const obs::LatencyHistogram& h) {
  w.Key(name).BeginObject();
  w.Key("count").Value(h.count());
  if (h.count() > 0) {
    w.Key("mean_us").Value(h.Mean() / 1000.0);
    w.Key("p50_us").Value(static_cast<double>(h.Percentile(50)) / 1000.0);
    w.Key("p90_us").Value(static_cast<double>(h.Percentile(90)) / 1000.0);
    w.Key("p99_us").Value(static_cast<double>(h.Percentile(99)) / 1000.0);
    w.Key("min_us").Value(static_cast<double>(h.min()) / 1000.0);
    w.Key("max_us").Value(static_cast<double>(h.max()) / 1000.0);
  }
  w.EndObject();
}

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xF]);
  }
  return out;
}

}  // namespace

std::string ServingStatsJson(const DriverConfig& config, const ServeResult& result) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("platinum-serving-v1");
  w.Key("config").BeginObject();
  w.Key("workload").Value("trie");
  w.Key("procs").Value(config.procs);
  w.Key("keys").Value(static_cast<uint64_t>(config.spec.keys));
  w.Key("ops").Value(config.spec.ops);
  w.Key("seed").Value(config.spec.seed);
  w.Key("zipf_s").Value(config.spec.zipf_s);
  w.Key("read_fraction").Value(config.spec.read_fraction);
  w.Key("churn").Value(config.spec.churn);
  w.Key("preload_fraction").Value(config.spec.preload_fraction);
  w.Key("arrival").Value(config.arrival == ArrivalMode::kOpen ? "open" : "closed");
  if (config.arrival == ArrivalMode::kOpen) {
    w.Key("interarrival_us").Value(static_cast<double>(config.interarrival_ns) / 1000.0);
  }
  w.EndObject();
  w.Key("totals").BeginObject();
  w.Key("requests").Value(result.requests);
  w.Key("preloaded").Value(result.preloaded);
  w.Key("sim_seconds").Value(static_cast<double>(result.serve_ns) * 1e-9);
  if (result.serve_ns > 0) {
    w.Key("requests_per_sim_sec")
        .Value(static_cast<double>(result.requests) /
               (static_cast<double>(result.serve_ns) * 1e-9));
  } else {
    w.Key("requests_per_sim_sec").Null();
  }
  w.EndObject();
  w.Key("classes").BeginObject();
  for (int c = 0; c < kNumOpClasses; ++c) {
    WriteClass(w, OpClassName(c), result.latency[c]);
  }
  w.EndObject();
  w.Key("trie").BeginObject();
  w.Key("entries").Value(result.entries);
  w.Key("checksum").Value(HexU64(result.checksum));
  w.Key("inserts_new").Value(result.trie.inserts_new);
  w.Key("inserts_update").Value(result.trie.inserts_update);
  w.Key("erases_hit").Value(result.trie.erases_hit);
  w.Key("erases_miss").Value(result.trie.erases_miss);
  w.Key("lookup_retries").Value(result.trie.lookup_retries);
  w.Key("interior_allocated").Value(result.trie.interior_allocated);
  w.Key("leaf_allocated").Value(result.trie.leaf_allocated);
  w.Key("leaf_reused").Value(result.trie.leaf_reused);
  w.Key("max_depth").Value(result.trie.max_depth);
  w.EndObject();
  w.Key("verified").Value(result.verified);
  w.EndObject();
  return w.str();
}

}  // namespace platinum::load
