// The serving driver: replays a RequestScript against a SharedTrie on the
// simulated machine and reports per-request latency distributions.
//
// One simulated thread per processor issues its pre-generated request stream
// either closed-loop (next request the instant the previous completes) or
// open-loop (requests arrive on a fixed schedule; a late server accrues
// queueing delay, which the recorded latency includes — the standard
// coordinated-omission-free measurement). Latencies are simulated time from
// arrival to completion, recorded per operation class into host-side
// obs::LatencyHistograms; recording costs nothing in simulated time.
//
// After the run the driver walks the trie once (simulated reads, single
// thread) and checks contents against RequestScript::ReplayReference — a
// full end-to-end correctness gate on every serving run, cheap enough to
// leave on by default.
#ifndef SRC_LOAD_DRIVER_H_
#define SRC_LOAD_DRIVER_H_

#include <string>
#include <vector>

#include "src/apps/trie.h"
#include "src/kernel/kernel.h"
#include "src/load/request_gen.h"
#include "src/obs/histogram.h"
#include "src/sim/time.h"

namespace platinum::load {

enum class ArrivalMode { kClosed, kOpen };

struct DriverConfig {
  WorkloadSpec spec;
  int procs = 16;
  ArrivalMode arrival = ArrivalMode::kClosed;
  // Open-loop arrival period per worker.
  sim::SimTime interarrival_ns = 20 * sim::kMicrosecond;
  // Pass replication advice on the trie's node pools (SharedTrie::Options).
  bool advise = false;
  // Check final contents against the reference replay (aborts on mismatch).
  bool verify = true;
};

// Operation classes with separate latency distributions. Reads split by
// outcome — a miss is a shorter walk, and mixing the two hides the hot-leaf
// retry tail the workload exists to expose.
enum OpClass : int { kOpReadHit = 0, kOpReadMiss, kOpInsert, kOpErase, kNumOpClasses };
const char* OpClassName(int op_class);

struct ServeResult {
  uint64_t requests = 0;
  uint64_t preloaded = 0;
  sim::SimTime serve_ns = 0;  // simulated duration of the request phase
  uint64_t checksum = 0;      // trie contents after the run, visit order
  uint64_t entries = 0;
  bool verified = false;
  obs::LatencyHistogram latency[kNumOpClasses];
  apps::SharedTrie::HostStats trie;
  // Node-pool geometry, for attributing page-level telemetry (obs::PageTrace)
  // to interior vs. leaf pages after the run.
  uint32_t as_id = 0;
  uint32_t interior_base_va = 0;
  uint32_t interior_words = 0;
  uint32_t leaf_base_va = 0;
  uint32_t leaf_words = 0;
  // Synchronization-word VAs (trie locks/allocator state, driver barrier):
  // dedicated pages that legitimately ping-pong.
  std::vector<uint32_t> sync_vas;
};

ServeResult RunTrieServe(kernel::Kernel& kernel, const DriverConfig& config);

// Renders the "platinum-serving-v1" stats block: config echo, totals,
// per-class count/mean/p50/p90/p99/min/max (µs), trie counters. Embedded
// under "serving" in platsim's stats JSON via obs::TelemetrySummary.
std::string ServingStatsJson(const DriverConfig& config, const ServeResult& result);

}  // namespace platinum::load

#endif  // SRC_LOAD_DRIVER_H_
