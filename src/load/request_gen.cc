#include "src/load/request_gen.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "src/apps/trie.h"
#include "src/apps/workloads.h"
#include "src/base/check.h"

namespace platinum::load {
namespace {

// Distinct SplitMix64 stream per worker; draws are indexed, not chained, so
// a request's randomness is addressable by (worker, request, slot).
uint64_t StreamSeed(uint64_t seed, uint32_t worker) {
  return apps::Mix64(seed ^ (0x9E3779B97F4A7C15ull * (worker + 1)));
}

uint64_t Draw(uint64_t stream, uint64_t index) { return apps::Mix64(stream + index); }

}  // namespace

double UnitDraw(uint64_t draw) {
  return static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
}

uint32_t RankToKey(uint32_t rank, uint32_t keys) {
  return (rank * 2654435761u) & (keys - 1);
}

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  PLAT_CHECK_GE(n, 1u);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r) + 1.0, -s);
    cdf_[r] = total;
  }
  for (uint32_t r = 0; r < n; ++r) {
    cdf_[r] /= total;
  }
}

uint32_t ZipfSampler::Sample(uint64_t draw) const {
  double u = UnitDraw(draw);
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    --it;
  }
  return static_cast<uint32_t>(it - cdf_.begin());
}

uint32_t RequestScript::PreloadValue(uint64_t seed, uint32_t key) {
  return static_cast<uint32_t>(apps::Mix64(seed ^ (0xC2B2AE3D27D4EB4Full + key)));
}

RequestScript RequestScript::Generate(const WorkloadSpec& spec, uint32_t workers) {
  PLAT_CHECK_GE(workers, 1u);
  PLAT_CHECK_GE(spec.keys, workers);
  PLAT_CHECK((spec.keys & (spec.keys - 1)) == 0) << "key universe must be a power of two";

  RequestScript script;
  script.seed_ = spec.seed;
  script.preload_.resize(workers);
  script.requests_.resize(workers);

  // Each owner's key list, hottest first: walk global ranks and deal keys to
  // their owners, so owner hotness order is the global order filtered.
  std::vector<std::vector<uint32_t>> owned(workers);
  for (uint32_t rank = 0; rank < spec.keys; ++rank) {
    uint32_t key = RankToKey(rank, spec.keys);
    owned[key % workers].push_back(key);
  }

  ZipfSampler global(spec.keys, spec.zipf_s);
  // Owner list lengths differ by at most one; share samplers per length.
  std::map<size_t, ZipfSampler> by_length;
  for (uint32_t p = 0; p < workers; ++p) {
    size_t n = owned[p].size();
    PLAT_CHECK_GE(n, size_t{1});
    if (by_length.find(n) == by_length.end()) {
      by_length.emplace(n, ZipfSampler(static_cast<uint32_t>(n), spec.zipf_s));
    }
    size_t preload =
        static_cast<size_t>(std::llround(static_cast<double>(n) * spec.preload_fraction));
    preload = std::min(preload, n);
    script.preload_[p].assign(owned[p].begin(),
                              owned[p].begin() + static_cast<ptrdiff_t>(preload));
  }

  const double write_fraction = 1.0 - spec.read_fraction;
  const double insert_edge = spec.read_fraction + write_fraction * (1.0 - spec.churn);
  for (uint32_t p = 0; p < workers; ++p) {
    uint64_t count = spec.ops / workers + (p < spec.ops % workers ? 1 : 0);
    const ZipfSampler& owner_zipf = by_length.find(owned[p].size())->second;
    uint64_t stream = StreamSeed(spec.seed, p);
    script.requests_[p].reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      double u = UnitDraw(Draw(stream, i * 3));
      uint64_t key_draw = Draw(stream, i * 3 + 1);
      Request req;
      if (u < spec.read_fraction) {
        req.op = OpKind::kLookup;
        req.key = RankToKey(global.Sample(key_draw), spec.keys);
        req.value = 0;
      } else {
        req.key = owned[p][owner_zipf.Sample(key_draw)];
        if (u < insert_edge) {
          req.op = OpKind::kInsert;
          req.value = static_cast<uint32_t>(Draw(stream, i * 3 + 2));
        } else {
          req.op = OpKind::kErase;
          req.value = 0;
        }
      }
      script.requests_[p].push_back(req);
    }
  }
  return script;
}

RequestScript::Reference RequestScript::ReplayReference() const {
  // Owners write disjoint key sets, so replaying owner streams one after
  // another in program order yields the unique final contents of any
  // correctly synchronized run, whatever the interleaving or protocol.
  std::map<uint32_t, uint32_t> contents;
  for (uint32_t p = 0; p < workers(); ++p) {
    for (uint32_t key : preload_[p]) {
      contents[key] = PreloadValue(seed_, key);
    }
  }
  for (uint32_t p = 0; p < workers(); ++p) {
    for (const Request& req : requests_[p]) {
      if (req.op == OpKind::kInsert) {
        contents[req.key] = req.value;
      } else if (req.op == OpKind::kErase) {
        contents.erase(req.key);
      }
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> pairs(contents.begin(), contents.end());
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    return apps::TrieVisitRank(a.first) < apps::TrieVisitRank(b.first);
  });
  Reference ref;
  apps::Checksum sum;
  for (const auto& [key, value] : pairs) {
    sum.Add(key);
    sum.Add(value);
  }
  ref.checksum = sum.value();
  ref.entries = pairs.size();
  return ref;
}

}  // namespace platinum::load
