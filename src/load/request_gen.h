// Deterministic request generation for the serving workload.
//
// Everything here is host-side and seeded: the Zipf key distribution, the
// read/insert/delete mix, and the per-worker request scripts are fully
// materialized before the simulated machine starts, so a run's request
// stream is a pure function of (seed, keys, ops, mix, workers) — never of
// simulated timing. Two design rules make runs verifiable:
//
//   * Writes are sharded by owner: worker p only inserts or erases keys with
//     key % workers == p. Reads are global. Per-owner write streams to
//     disjoint key sets, applied in program order, make the final trie
//     contents independent of protocol timing — the foundation of both the
//     reference replay and the directory-vs-tardis differential test.
//   * Hotness is aligned across readers and writers: ranks map to keys
//     through one fixed bijection, and an owner's write traffic follows the
//     global hotness order filtered to its owned keys. Globally read-hot
//     leaves are also write-hot for their owner — the freeze-vs-replicate
//     tension the workload exists to produce.
#ifndef SRC_LOAD_REQUEST_GEN_H_
#define SRC_LOAD_REQUEST_GEN_H_

#include <cstdint>
#include <vector>

namespace platinum::load {

struct WorkloadSpec {
  uint64_t seed = 1;
  // Key universe [0, keys), a power of two; sizes the trie's node pools.
  uint32_t keys = 1u << 14;
  // Total requests, split round-robin across workers.
  uint64_t ops = 1u << 20;
  // Zipf exponent for key popularity (0 = uniform).
  double zipf_s = 0.99;
  // Fraction of requests that are lookups.
  double read_fraction = 0.90;
  // Of the non-read requests, the fraction that are erases; 0.5 keeps the
  // live-entry count roughly stationary, 0 grows, 1 drains.
  double churn = 0.5;
  // The hottest fraction of each owner's keys preinserted before the timed
  // phase, so early reads can hit.
  double preload_fraction = 0.5;
};

enum class OpKind : uint8_t { kLookup = 0, kInsert = 1, kErase = 2 };

struct Request {
  OpKind op;
  uint32_t key;
  uint32_t value;  // inserts only
};

// Inverse-CDF Zipf sampling over ranks [0, n), rank 0 hottest. Host-side
// doubles: deterministic on one host, which is all the byte-identity checks
// compare (run vs rerun, trie vs reference, protocol vs protocol).
class ZipfSampler {
 public:
  ZipfSampler() = default;
  ZipfSampler(uint32_t n, double s);
  uint32_t Sample(uint64_t draw) const;

 private:
  std::vector<double> cdf_;
};

// The fixed rank -> key bijection (odd-multiplier hash on a power-of-two
// universe), so popular ranks scatter across the key space instead of
// clustering in one subtree.
uint32_t RankToKey(uint32_t rank, uint32_t keys);

// Maps a 64-bit draw to [0, 1).
double UnitDraw(uint64_t draw);

class RequestScript {
 public:
  // Materializes per-worker preload sets and request streams. Requires
  // power-of-two `spec.keys` and keys >= workers.
  static RequestScript Generate(const WorkloadSpec& spec, uint32_t workers);

  uint32_t workers() const { return static_cast<uint32_t>(requests_.size()); }
  const std::vector<uint32_t>& PreloadFor(uint32_t worker) const {
    return preload_[worker];
  }
  const std::vector<Request>& ForWorker(uint32_t worker) const {
    return requests_[worker];
  }
  // The value a preloaded key starts with (shared with the reference).
  static uint32_t PreloadValue(uint64_t seed, uint32_t key);

  // Replays every owner's preload + write stream in program order against a
  // host map and folds the surviving entries in trie-visit order — the
  // checksum and entry count a correct trie must report, independent of how
  // the simulated run interleaved.
  struct Reference {
    uint64_t checksum = 0;
    uint64_t entries = 0;
  };
  Reference ReplayReference() const;

 private:
  std::vector<std::vector<uint32_t>> preload_;
  std::vector<std::vector<Request>> requests_;
  uint64_t seed_ = 0;
};

}  // namespace platinum::load

#endif  // SRC_LOAD_REQUEST_GEN_H_
