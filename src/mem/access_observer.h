// Observation hook for the coherent-memory access path.
//
// The simulator sees every charged access to coherent memory, which lets a
// checker (src/check) do what the paper's authors could only infer from
// counters: prove that a run has no unsynchronized conflicting accesses.
// CoherentMemory::Access reports each resolved word access through this
// interface, after fault handling and immediately before the memory
// reference itself is performed.
#ifndef SRC_MEM_ACCESS_OBSERVER_H_
#define SRC_MEM_ACCESS_OBSERVER_H_

#include <cstdint>

#include "src/sim/time.h"

namespace platinum::mem {

// Sentinel fiber id for code running outside any fiber (host context).
inline constexpr uint32_t kNoFiber = 0xffffffffu;

struct MemoryAccess {
  uint32_t as_id = 0;
  uint32_t vpn = 0;
  uint32_t word_offset = 0;  // word index within the page
  bool is_write = false;
  uint32_t fiber = kNoFiber;  // simulator fiber id of the accessor
  int processor = -1;
  sim::SimTime time = 0;  // virtual time of the access
};

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void OnMemoryAccess(const MemoryAccess& access) = 0;
};

}  // namespace platinum::mem

#endif  // SRC_MEM_ACCESS_OBSERVER_H_
