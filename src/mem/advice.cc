// Non-transparent placement hooks (Section 9).
//
// "It is not hard to construct scenarios in which better performance could
// be obtained if the interface between the application and the memory
// management system were not so transparent. The kernel interface will be
// extended to support these... utilized primarily by programming languages
// and their run-time support." These are those hooks: per-page advice that
// overrides the fault-time replication decision, explicit pinning of
// write-shared data, and prefetch-style pre-replication of read-mostly data.
#include <cstring>
#include <vector>

#include "src/base/check.h"
#include "src/mem/coherent_memory.h"
#include "src/mem/protocol.h"

namespace platinum::mem {

namespace {

// Resolves (as, vpn) to its coherent page; the binding must exist.
uint32_t BoundCpage(Cmap& cm, uint32_t vpn) {
  const CmapEntry& entry = cm.entry(vpn);
  PLAT_CHECK(entry.bound()) << "advice on unbound vpn " << vpn;
  return entry.cpage;
}

}  // namespace

void CoherentMemory::Advise(uint32_t as_id, uint32_t vpn, uint32_t npages,
                            MemoryAdvice advice) {
  Cmap& cm = cmap(as_id);
  for (uint32_t i = 0; i < npages; ++i) {
    cpages_.at(BoundCpage(cm, vpn + i)).SetAdvice(advice);
  }
}

void CoherentMemory::PinTo(uint32_t as_id, uint32_t vpn, int node) {
  PLAT_CHECK_GE(node, 0);
  PLAT_CHECK_LT(node, machine_->num_nodes());
  Cmap& cm = cmap(as_id);
  Cpage& page = cpages_.at(BoundCpage(cm, vpn));
  int initiator = machine_->scheduler().current() != nullptr
                      ? machine_->scheduler().current_processor()
                      : node;

  if (page.state() == CpageState::kEmpty) {
    // Materialize the page directly on the target node.
    std::optional<PhysicalCopy> copy = AllocateFrame(page, node);
    PLAT_CHECK(copy.has_value()) << "out of physical memory pinning cpage " << page.id();
    PLAT_CHECK_EQ(copy->module, node) << "target module full";
    std::memset(machine_->module(copy->module).FrameData(copy->frame), 0,
                machine_->params().page_size_bytes);
    page.AddCopy(*copy);
    page.SetState(CpageState::kPresent1);  // protocol: pin-fill empty -> present1
    ++machine_->stats().initial_fills;
  } else if (!page.HasCopyOn(node)) {
    // Move the data: invalidate every translation, copy to the target,
    // reclaim the old frames. This is a deliberate placement change, not
    // coherence interference, so the invalidation history is untouched.
    std::optional<PhysicalCopy> copy = AllocateFrame(page, node);
    PLAT_CHECK(copy.has_value() && copy->module == node) << "target module full";
    protocol_->ReleaseAllMappings(page, initiator);
    CopyInto(page, *copy);
    std::vector<int> victims;
    for (const PhysicalCopy& old : page.copies()) {
      victims.push_back(old.module);
    }
    for (int module : victims) {
      FreeCopy(page, module);
    }
    page.AddCopy(*copy);
    page.ClearWriteMappings();
    // protocol: pin-migrate present1|present+|modified -> present1
    page.SetState(CpageState::kPresent1);
    ++page.stats().migrations;
    ++machine_->stats().migrations;
    Trace(TraceEventType::kMigrate, page, initiator, static_cast<uint32_t>(node));
  } else if (page.copies().size() > 1) {
    // Collapse to the copy already on the target node.
    std::vector<int> victims;
    for (const PhysicalCopy& old : page.copies()) {
      if (old.module != node) {
        victims.push_back(old.module);
      }
    }
    protocol_->ReleaseCopyMappings(page, victims, initiator);
    for (int module : victims) {
      FreeCopy(page, module);
    }
    if (page.write_mappings() == 0 && page.state() == CpageState::kPresentPlus) {
      page.SetState(CpageState::kPresent1);  // protocol: collapse present+ -> present1
    }
  }

  if (protocol_->UsesFreezing() && !page.frozen()) {
    page.SetFrozen(true);
    page.SetFreezeTime(machine_->scheduler().now());
    frozen_lock_.Acquire();
    frozen_list_.push_back(page.id());
    frozen_lock_.Release();
    ++page.stats().freezes;
    ++machine_->stats().freezes;
    Trace(TraceEventType::kFreeze, page, initiator, 0);
  }
  Trace(TraceEventType::kPin, page, initiator, static_cast<uint32_t>(node));
  NotifyTransition("pin");
}

void CoherentMemory::ReplicateTo(uint32_t as_id, uint32_t vpn, int node) {
  PLAT_CHECK_GE(node, 0);
  PLAT_CHECK_LT(node, machine_->num_nodes());
  Cmap& cm = cmap(as_id);
  Cpage& page = cpages_.at(BoundCpage(cm, vpn));
  if (page.state() == CpageState::kEmpty || page.HasCopyOn(node) || page.frozen()) {
    return;
  }
  int initiator = machine_->scheduler().current() != nullptr
                      ? machine_->scheduler().current_processor()
                      : node;
  std::optional<PhysicalCopy> copy = AllocateFrame(page, node);
  if (!copy.has_value() || copy->module != node) {
    if (copy.has_value()) {
      // Fallback landed elsewhere; undo.
      machine_->module(copy->module).FreeFrame(copy->frame);
    }
    return;
  }
  if (page.state() == CpageState::kModified) {
    protocol_->DowngradeToRead(page, initiator);
  }
  CopyInto(page, *copy);
  page.AddCopy(*copy);
  page.SetState(CpageState::kPresentPlus);  // protocol: replicate present1|present+ -> present+
  ++page.stats().replications;
  ++machine_->stats().replications;
  Trace(TraceEventType::kReplicate, page, initiator, static_cast<uint32_t>(node));
  NotifyTransition("replicate");
}

}  // namespace platinum::mem
