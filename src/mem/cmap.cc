#include "src/mem/cmap.h"

#include "src/base/check.h"

namespace platinum::mem {

Cmap::Cmap(uint32_t as_id, uint32_t num_pages)
    : as_id_(as_id), num_pages_(num_pages), entries_(num_pages) {}

CmapEntry& Cmap::entry(uint32_t vpn) {
  PLAT_CHECK_LT(vpn, num_pages_);
  return entries_[vpn];
}

const CmapEntry& Cmap::entry(uint32_t vpn) const {
  PLAT_CHECK_LT(vpn, num_pages_);
  return entries_[vpn];
}

hw::Pmap& Cmap::pmap(int processor) {
  PLAT_CHECK_GE(processor, 0);
  PLAT_CHECK_LT(processor, sim::kMaxProcessors);
  if (pmaps_[processor] == nullptr) {
    pmaps_[processor] = std::make_unique<hw::Pmap>(num_pages_);
  }
  return *pmaps_[processor];
}

void Cmap::Activate(int processor) {
  PLAT_CHECK_GE(processor, 0);
  PLAT_CHECK_LT(processor, sim::kMaxProcessors);
  if (activation_count_[processor]++ == 0) {
    active_mask_ |= uint64_t{1} << processor;
  }
}

void Cmap::Deactivate(int processor) {
  PLAT_CHECK_GE(processor, 0);
  PLAT_CHECK_LT(processor, sim::kMaxProcessors);
  PLAT_CHECK_GT(activation_count_[processor], 0u);
  if (--activation_count_[processor] == 0) {
    active_mask_ &= ~(uint64_t{1} << processor);
  }
}

void Cmap::PostMessage(const CmapMessage& message) {
  if (message.target_mask == 0) {
    return;  // already applied everywhere
  }
  messages_.push_back(message);
}

int Cmap::AcknowledgeMessages(int processor) {
  int touched = 0;
  uint64_t bit = uint64_t{1} << processor;
  for (auto it = messages_.begin(); it != messages_.end();) {
    if ((it->target_mask & bit) != 0) {
      it->target_mask &= ~bit;
      ++touched;
    }
    if (it->target_mask == 0) {
      it = messages_.erase(it);
    } else {
      ++it;
    }
  }
  return touched;
}

}  // namespace platinum::mem
