// The coherent map (Cmap) of one address space.
//
// A Cmap caches the composition of the virtual-memory layer's mappings
// (virtual address -> memory object -> coherent page) as a table of Cmap
// entries, keeps a *separate, private* Pmap for each processor using the
// address space (the key NUMA design decision of Section 3.1), records which
// processors currently have the space active, and carries the queue of Cmap
// messages through which shootdowns are distributed.
#ifndef SRC_MEM_CMAP_H_
#define SRC_MEM_CMAP_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/hw/pmap.h"
#include "src/hw/rights.h"
#include "src/mem/cpage.h"
#include "src/sim/params.h"

namespace platinum::mem {

// Analogous to a page table entry: coherent page, the access rights granted
// by the virtual memory system, and the reference mask of processors holding
// a virtual-to-physical translation for this page.
struct CmapEntry {
  uint32_t cpage = kInvalidCpageId;
  hw::Rights rights = hw::Rights::kNone;
  uint64_t reference_mask = 0;

  bool bound() const { return cpage != kInvalidCpageId; }
};

// Describes a change to the address space that restricts existing
// translations; each target processor must apply it before running a thread
// in the space (Section 3.1).
struct CmapMessage {
  enum class Directive : uint8_t { kInvalidate, kRestrictToRead };

  uint32_t vpn = 0;
  Directive directive = Directive::kInvalidate;
  // Processors that still have to apply the change.
  uint64_t target_mask = 0;
};

class Cmap {
 public:
  Cmap(uint32_t as_id, uint32_t num_pages);

  uint32_t as_id() const { return as_id_; }
  uint32_t num_pages() const { return num_pages_; }

  CmapEntry& entry(uint32_t vpn);
  const CmapEntry& entry(uint32_t vpn) const;

  // The processor's private Pmap for this space, created on first use.
  hw::Pmap& pmap(int processor);
  bool has_pmap(int processor) const { return pmaps_[processor] != nullptr; }

  // Activation census: a processor is "active" in the space while it runs (or
  // can immediately run) one of its threads; only active processors need an
  // IPI during a shootdown.
  uint64_t active_mask() const { return active_mask_; }
  bool IsActive(int processor) const { return (active_mask_ >> processor) & 1; }
  void Activate(int processor);
  // Drops one activation; the processor stays active while other threads of
  // this space run on it.
  void Deactivate(int processor);

  std::deque<CmapMessage>& messages() { return messages_; }
  const std::deque<CmapMessage>& messages() const { return messages_; }
  // Posts a change message; fully-applied messages (empty target mask) are
  // retired immediately.
  void PostMessage(const CmapMessage& message);
  // Clears `processor`'s bit from pending messages and retires exhausted
  // ones. Returns how many messages were touched.
  int AcknowledgeMessages(int processor);

 private:
  const uint32_t as_id_;
  const uint32_t num_pages_;
  std::vector<CmapEntry> entries_;
  std::deque<CmapMessage> messages_;
  uint64_t active_mask_ = 0;
  std::array<uint32_t, sim::kMaxProcessors> activation_count_{};
  std::array<std::unique_ptr<hw::Pmap>, sim::kMaxProcessors> pmaps_;
};

}  // namespace platinum::mem

#endif  // SRC_MEM_CMAP_H_
