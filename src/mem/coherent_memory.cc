#include "src/mem/coherent_memory.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"
#include "src/mem/page_event.h"
#include "src/mem/protocol.h"

namespace platinum::mem {

CoherentMemory::CoherentMemory(sim::Machine* machine, std::unique_ptr<ReplicationPolicy> policy,
                               std::unique_ptr<CoherenceProtocol> protocol)
    : machine_(machine),
      policy_(std::move(policy)),
      protocol_(std::move(protocol)),
      cpages_(machine->num_nodes()) {
  PLAT_CHECK(machine_ != nullptr);
  PLAT_CHECK(policy_ != nullptr);
  if (protocol_ == nullptr) {
    protocol_ = std::make_unique<DirectoryProtocol>();
  }
  protocol_->Attach(this);
  mmus_.reserve(machine_->num_nodes());
  for (int p = 0; p < machine_->num_nodes(); ++p) {
    mmus_.emplace_back(p, machine_->params().atc_entries);
  }
}

CoherentMemory::~CoherentMemory() = default;

hw::ProcessorMmu& CoherentMemory::mmu(int processor) {
  PLAT_CHECK_GE(processor, 0);
  PLAT_CHECK_LT(processor, static_cast<int>(mmus_.size()));
  return mmus_[processor];
}

uint32_t CoherentMemory::RegisterAddressSpace(uint32_t num_pages) {
  uint32_t as_id = static_cast<uint32_t>(cmaps_.size());
  cmaps_.push_back(std::make_unique<Cmap>(as_id, num_pages));
  return as_id;
}

Cmap& CoherentMemory::cmap(uint32_t as_id) {
  PLAT_CHECK_LT(as_id, cmaps_.size());
  return *cmaps_[as_id];
}

const Cmap& CoherentMemory::cmap(uint32_t as_id) const {
  PLAT_CHECK_LT(as_id, cmaps_.size());
  return *cmaps_[as_id];
}

uint32_t CoherentMemory::CreateCpage(int home_module) { return cpages_.Create(home_module); }

void CoherentMemory::BindPage(uint32_t as_id, uint32_t vpn, uint32_t cpage, hw::Rights rights) {
  PLAT_CHECK(rights != hw::Rights::kNone);
  Cmap& cm = cmap(as_id);
  CmapEntry& entry = cm.entry(vpn);
  PLAT_CHECK(!entry.bound()) << "vpn " << vpn << " of AS " << as_id << " already bound";
  entry.cpage = cpage;
  entry.rights = rights;
  entry.reference_mask = 0;
  cpages_.at(cpage).AddMapper(CpageMapper{as_id, vpn});
  if (page_sink_ != nullptr) [[unlikely]] {
    page_sink_->OnPageBind(as_id, vpn, cpage);
  }
}

void CoherentMemory::UnbindPage(uint32_t as_id, uint32_t vpn) {
  Cmap& cm = cmap(as_id);
  CmapEntry& entry = cm.entry(vpn);
  PLAT_CHECK(entry.bound());
  Cpage& page = cpages_.at(entry.cpage);

  // Tear down every translation this space holds for the page.
  for (int p = 0; p < machine_->num_nodes(); ++p) {
    if (((entry.reference_mask >> p) & 1) == 0) {
      continue;
    }
    hw::Pmap& pmap = cm.pmap(p);
    const hw::PmapEntry& pe = pmap.entry(vpn);
    PLAT_CHECK(pe.valid);
    if (pe.rights == hw::Rights::kReadWrite) {
      page.DropWriteMapping();
    }
    pmap.Remove(vpn);
    mmus_[p].atc().FlushPage(as_id, vpn);
  }
  entry.reference_mask = 0;
  if (page.state() == CpageState::kModified && page.write_mappings() == 0) {
    page.SetState(CpageState::kPresent1);  // protocol: unbind-downgrade modified -> present1
  }
  page.RemoveMapper(as_id, vpn);
  // Unbind can run outside any fiber (address-space teardown from the host
  // harness), where there is no current processor to attribute.
  const sim::Fiber* fiber = machine_->scheduler().current();
  Trace(TraceEventType::kUnbind, page,
        fiber != nullptr ? machine_->scheduler().current_processor() : -1, as_id);
  if (page_sink_ != nullptr) [[unlikely]] {
    page_sink_->OnPageUnbind(as_id, vpn, entry.cpage);
  }
  entry = CmapEntry{};
  NotifyTransition("unbind");
}

void CoherentMemory::Activate(uint32_t as_id, int processor) {
  Cmap& cm = cmap(as_id);
  cm.Activate(processor);
  // A processor must apply pending Cmap messages before running any thread in
  // the space (Section 3.1). Structural changes were applied synchronously by
  // the initiator in this simulation, so acknowledging is bookkeeping only.
  cm.AcknowledgeMessages(processor);
}

void CoherentMemory::Deactivate(uint32_t as_id, int processor) {
  cmap(as_id).Deactivate(processor);
}

void CoherentMemory::EnterMapping(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                                  int processor, const PhysicalCopy& copy, hw::Rights rights) {
  PLAT_CHECK(rights != hw::Rights::kNone);
  PLAT_CHECK(page.HasCopyOn(copy.module));
  hw::Pmap& pmap = cm.pmap(processor);
  const hw::PmapEntry& old_entry = pmap.entry(vpn);
  if (old_entry.valid && old_entry.rights == hw::Rights::kReadWrite) {
    page.DropWriteMapping();
  }
  pmap.Enter(vpn, copy.module, copy.frame, rights);
  if (rights == hw::Rights::kReadWrite) {
    page.AddWriteMapping();
  }
  entry.reference_mask |= uint64_t{1} << processor;
  // Refresh the faulting processor's ATC so no stale translation survives.
  mmus_[processor].atc().Fill(cm.as_id(), vpn, pmap.entry(vpn));
}

void CoherentMemory::ChargeCpageStructures(const Cpage& page, int processor) {
  if (page.home_module() != processor) {
    machine_->Compute(machine_->params().fault_remote_extra_ns);
  }
}

CoherentMemory::AccessResult CoherentMemory::AccessSlow(uint32_t as_id, uint32_t vpn,
                                                        uint32_t word_offset,
                                                        sim::AccessKind kind,
                                                        uint32_t write_value, bool allow_yield,
                                                        hw::Rights needed, int processor) {
  // Every trip through the trap is an ATC miss: either the slot held another
  // page (or nothing), or its cached rights were too weak to be used.
  ++machine_->stats().atc_misses;

  Cmap& cm = cmap(as_id);
  hw::Pmap& pmap = cm.pmap(processor);
  hw::Atc& atc = mmus_[processor].atc();
  {
    // The MMU walks the processor's private Pmap; a usable entry is loaded
    // into the ATC, anything else traps into the coherent page fault handler.
    const hw::PmapEntry& pe = pmap.entry(vpn);
    if (pe.valid && Allows(pe.rights, needed)) {
      machine_->Compute(machine_->params().atc_fill_ns);
      atc.Fill(as_id, vpn, pe);
      return FinishAccess(as_id, vpn, word_offset, kind, write_value, allow_yield, pe,
                          processor);
    }
    AccessOutcome outcome = HandleFault(as_id, vpn, kind);
    if (outcome != AccessOutcome::kOk) {
      return AccessResult{outcome, 0};
    }
  }

  // One post-fault Pmap read (the handler may have replaced the entry, so the
  // pre-fault reference cannot be reused).
  const hw::PmapEntry& resolved = pmap.entry(vpn);
  PLAT_CHECK(resolved.valid && Allows(resolved.rights, needed))
      << "fault handler left no usable translation for vpn " << vpn;
  // EnterMapping refreshed this processor's ATC at the end of the fault, but a
  // conflicting fill during the handler can have evicted it again.
  const hw::PmapEntry* translation = atc.Lookup(as_id, vpn);
  if (translation == nullptr || !Allows(translation->rights, needed)) {
    atc.Fill(as_id, vpn, resolved);
  }
  return FinishAccess(as_id, vpn, word_offset, kind, write_value, allow_yield, resolved,
                      processor);
}

void CoherentMemory::NotifyAccessObserver(uint32_t as_id, uint32_t vpn, uint32_t word_offset,
                                          sim::AccessKind kind, int processor) {
  sim::Scheduler& sched = machine_->scheduler();
  const sim::Fiber* fiber = sched.current();
  access_observer_->OnMemoryAccess(MemoryAccess{
      as_id, vpn, word_offset, kind == sim::AccessKind::kWrite,
      fiber != nullptr ? fiber->id() : kNoFiber, processor, sched.now()});
}

AccessOutcome CoherentMemory::ReadRange(uint32_t as_id, uint32_t vpn, uint32_t word_offset,
                                        uint32_t count, uint32_t* out, bool allow_yield) {
  return AccessRange(as_id, vpn, word_offset, count, sim::AccessKind::kRead, out, nullptr,
                     allow_yield);
}

AccessOutcome CoherentMemory::WriteRange(uint32_t as_id, uint32_t vpn, uint32_t word_offset,
                                         uint32_t count, const uint32_t* values,
                                         bool allow_yield) {
  return AccessRange(as_id, vpn, word_offset, count, sim::AccessKind::kWrite, nullptr, values,
                     allow_yield);
}

AccessOutcome CoherentMemory::AccessRange(uint32_t as_id, uint32_t vpn, uint32_t word_offset,
                                          uint32_t count, sim::AccessKind kind,
                                          uint32_t* read_out, const uint32_t* write_in,
                                          bool allow_yield) {
  const uint32_t wpp = machine_->params().words_per_page();
  PLAT_CHECK_LT(word_offset, wpp);
  sim::Scheduler& sched = machine_->scheduler();
  hw::Rights needed =
      kind == sim::AccessKind::kWrite ? hw::Rights::kReadWrite : hw::Rights::kRead;

  uint32_t done = 0;
  while (done < count) {
    int processor = sched.current_processor();
    hw::Atc& atc = mmus_[processor].atc();
    const hw::PmapEntry* translation = atc.Lookup(as_id, vpn);
    if (translation == nullptr || !Allows(translation->rights, needed)) [[unlikely]] {
      // Rare: push exactly one word through the scalar trap path, then resume
      // the block loop with a fresh translation.
      AccessResult r =
          AccessSlow(as_id, vpn, word_offset, kind, write_in != nullptr ? write_in[done] : 0,
                     allow_yield, needed, processor);
      if (r.outcome != AccessOutcome::kOk) {
        return r.outcome;
      }
      if (read_out != nullptr) {
        read_out[done] = r.value;
      }
      ++done;
      if (++word_offset == wpp) {
        word_offset = 0;
        ++vpn;
      }
      continue;
    }
    // Fast run: consume words of this page while the cached translation is
    // known valid. Translations only change at switch points, so the run ends
    // (and the translation is re-probed) whenever MaybeYield switches — and
    // MigrateCurrent can even move the fiber to another processor meanwhile.
    // Each iteration performs the exact per-word sequence of Access's fast
    // path, so stats, trace and virtual time match a word-by-word loop.
    const uint32_t module = translation->module;
    const uint32_t frame = translation->frame;
    const uint32_t run_end = std::min(count, done + (wpp - word_offset));
    bool switched = false;
    while (done < run_end && !switched) {
      ++machine_->stats().atc_hits;
      if (access_observer_ != nullptr) [[unlikely]] {
        NotifyAccessObserver(as_id, vpn, word_offset, kind, processor);
      }
      machine_->Reference(module, kind);
      if (kind == sim::AccessKind::kRead) {
        read_out[done] = machine_->ReadWordRaw(module, frame, word_offset);
      } else {
        machine_->WriteWordRaw(module, frame, word_offset, write_in[done]);
      }
      ++done;
      ++word_offset;
      if (allow_yield) {
        switched = sched.MaybeYield();
      }
    }
    if (word_offset == wpp) {
      word_offset = 0;
      ++vpn;
    }
  }
  return AccessOutcome::kOk;
}

void CoherentMemory::EnableTracing(size_t capacity) {
  trace_ = std::make_unique<TraceLog>(capacity);
}

void CoherentMemory::Trace(TraceEventType type, const Cpage& page, int processor,
                           uint32_t detail) {
  if (trace_ == nullptr && page_sink_ == nullptr) [[likely]] {
    return;
  }
  EmitTrace(type, page.id(), processor, detail);
}

void CoherentMemory::TraceGlobal(TraceEventType type, int processor, uint32_t detail) {
  if (trace_ == nullptr && page_sink_ == nullptr) [[likely]] {
    return;
  }
  EmitTrace(type, kTraceNoCpage, processor, detail);
}

void CoherentMemory::EmitTrace(TraceEventType type, uint32_t cpage, int processor,
                               uint32_t detail) {
  const sim::Fiber* fiber = machine_->scheduler().current();
  TraceEvent event{machine_->scheduler().now(), type, cpage, static_cast<int16_t>(processor),
                   detail, fiber != nullptr ? fiber->id() : 0};
  if (trace_ != nullptr) {
    trace_->Record(event);
  }
  if (page_sink_ != nullptr) {
    page_sink_->OnPageEvent(event);
  }
}

void CoherentMemory::CheckInvariants() const {
  cpages_.CheckAllInvariants();

  // Recount write mappings and validate reference masks against Pmaps/ATCs.
  std::vector<uint32_t> write_mappings(cpages_.size(), 0);
  for (const auto& cm : cmaps_) {
    for (uint32_t vpn = 0; vpn < cm->num_pages(); ++vpn) {
      const CmapEntry& entry = cm->entry(vpn);
      if (!entry.bound()) {
        PLAT_CHECK_EQ(entry.reference_mask, uint64_t{0});
        continue;
      }
      const Cpage& page = cpages_.at(entry.cpage);
      for (int p = 0; p < machine_->num_nodes(); ++p) {
        bool referenced = (entry.reference_mask >> p) & 1;
        bool has_translation = false;
        if (cm->has_pmap(p)) {
          const hw::Pmap& pmap = const_cast<Cmap&>(*cm).pmap(p);
          const hw::PmapEntry& pe = pmap.entry(vpn);
          has_translation = pe.valid;
          if (pe.valid) {
            PLAT_CHECK(page.HasCopyOn(pe.module))
                << "pmap of cpu " << p << " maps vpn " << vpn << " to module " << pe.module
                << " which holds no copy of cpage " << entry.cpage;
            PLAT_CHECK(Allows(entry.rights, pe.rights))
                << "pmap rights exceed VM rights for vpn " << vpn;
            if (pe.rights == hw::Rights::kReadWrite) {
              // Rights domination: a writable translation may exist only
              // while the directory says the page is modified. Together with
              // the directory's one-copy rule for modified pages this gives
              // "a writable copy implies exactly one copy".
              PLAT_CHECK(page.state() == CpageState::kModified)
                  << "cpu " << p << " holds a write mapping of vpn " << vpn << " but cpage "
                  << entry.cpage << " is not in the modified state";
              ++write_mappings[entry.cpage];
            }
            // The physical frame must still belong to this coherent page.
            auto copy = page.FindCopy(pe.module);
            PLAT_CHECK(copy.has_value() && copy->frame == pe.frame);
          }
        }
        PLAT_CHECK_EQ(referenced, has_translation)
            << "reference-mask mismatch for AS " << cm->as_id() << " vpn " << vpn << " cpu " << p;
        // A cached ATC translation must agree with the Pmap.
        const hw::PmapEntry* cached = mmus_[p].atc().Lookup(cm->as_id(), vpn);
        if (cached != nullptr) {
          PLAT_CHECK(has_translation) << "stale ATC entry for AS " << cm->as_id() << " vpn "
                                      << vpn << " cpu " << p;
          const hw::PmapEntry& pe = const_cast<Cmap&>(*cm).pmap(p).entry(vpn);
          PLAT_CHECK_EQ(cached->module, pe.module);
          PLAT_CHECK_EQ(cached->frame, pe.frame);
          PLAT_CHECK(Allows(pe.rights, cached->rights)) << "ATC rights exceed Pmap rights";
        }
      }
    }
  }
  for (uint32_t id = 0; id < cpages_.size(); ++id) {
    PLAT_CHECK_EQ(write_mappings[id], cpages_.at(id).write_mappings())
        << "write-mapping census wrong for cpage " << id;
  }

  // Frozen list matches frozen flags.
  std::vector<bool> in_list(cpages_.size(), false);
  frozen_lock_.Acquire();
  for (uint32_t id : frozen_list_) {
    PLAT_CHECK(cpages_.at(id).frozen());
    PLAT_CHECK(!in_list[id]) << "cpage " << id << " twice in frozen list";
    in_list[id] = true;
  }
  frozen_lock_.Release();
  for (uint32_t id = 0; id < cpages_.size(); ++id) {
    if (cpages_.at(id).frozen()) {
      PLAT_CHECK(in_list[id]) << "frozen cpage " << id << " missing from defrost list";
    }
  }
}

}  // namespace platinum::mem
