// The coherent memory system (Sections 2-4 of the paper).
//
// CoherentMemory owns the Cpage table, the per-address-space Cmaps, the
// per-processor MMU state, the replication policy and the defrost daemon. It
// implements:
//   * the access path: ATC lookup -> Pmap walk -> coherent page fault;
//   * the data-coherency protocol (empty / present1 / present+ / modified)
//     driven by the page-fault handler, replicating, migrating or
//     remote-mapping pages (Sections 3.2, 3.3);
//   * the NUMA shootdown mechanism built on private per-processor Pmaps and
//     Cmap message queues (Section 3.1);
//   * freezing of actively write-shared pages and the defrost daemon that
//     thaws them (Section 4.2).
//
// All timing is charged to the faulting fiber as a consequence of the
// operations actually performed (words block-transferred, processors
// interrupted, frames freed), using the constants of sim::MachineParams.
#ifndef SRC_MEM_COHERENT_MEMORY_H_
#define SRC_MEM_COHERENT_MEMORY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/discipline_lock.h"
#include "src/base/thread_annotations.h"
#include "src/hw/processor.h"
#include "src/mem/access_observer.h"
#include "src/mem/cmap.h"
#include "src/mem/cpage.h"
#include "src/mem/policy.h"
#include "src/mem/trace.h"
#include "src/sim/machine.h"

namespace platinum::mem {

class CoherenceProtocol;
class DirectoryProtocol;
class PageEventSink;
class TardisProtocol;

enum class AccessOutcome : uint8_t {
  kOk,
  kNoMapping,   // virtual page not bound to a coherent page
  kProtection,  // bound, but the VM-level rights forbid this access
};

class CoherentMemory {
 public:
  // `protocol` selects the coherence protocol (src/mem/protocol.h); nullptr
  // selects the paper's DirectoryProtocol.
  CoherentMemory(sim::Machine* machine, std::unique_ptr<ReplicationPolicy> policy,
                 std::unique_ptr<CoherenceProtocol> protocol = nullptr);
  ~CoherentMemory();

  CoherentMemory(const CoherentMemory&) = delete;
  CoherentMemory& operator=(const CoherentMemory&) = delete;

  sim::Machine& machine() { return *machine_; }
  ReplicationPolicy& policy() { return *policy_; }
  // The active coherence protocol (the spec the checkers validate against).
  CoherenceProtocol& protocol() { return *protocol_; }
  const CoherenceProtocol& protocol() const { return *protocol_; }
  CpageTable& cpages() { return cpages_; }
  const CpageTable& cpages() const { return cpages_; }
  hw::ProcessorMmu& mmu(int processor);

  // --- Setup -----------------------------------------------------------------
  // Registers an address space of `num_pages` virtual pages; returns its id.
  uint32_t RegisterAddressSpace(uint32_t num_pages);
  Cmap& cmap(uint32_t as_id);
  const Cmap& cmap(uint32_t as_id) const;

  // Creates a coherent page whose kernel structures live on `home_module`
  // (round-robin when negative).
  uint32_t CreateCpage(int home_module = -1);
  // Binds `vpn` of address space `as_id` to `cpage` with VM-level `rights`.
  void BindPage(uint32_t as_id, uint32_t vpn, uint32_t cpage, hw::Rights rights);
  // Removes the binding, its translations everywhere, and the mapper record.
  void UnbindPage(uint32_t as_id, uint32_t vpn);

  // Activation census used to limit shootdown IPIs (Section 3.1). Called by
  // the thread layer when threads of the space start/stop running on a node.
  // Activation drains the Cmap message queue for that processor.
  void Activate(uint32_t as_id, int processor);
  void Deactivate(uint32_t as_id, int processor);

  // --- The access path ---------------------------------------------------------
  struct AccessResult {
    AccessOutcome outcome = AccessOutcome::kOk;
    uint32_t value = 0;  // loaded word, for reads
  };
  // One 32-bit access by the current fiber's processor. Resolves faults,
  // charges all latencies, moves real data. `allow_yield` lets the quantum
  // scheduler preempt after the access; read-modify-write sequences pass
  // false for all but the last access.
  //
  // The common case — ATC hit with sufficient rights — is fully inline: one
  // ATC probe, hit accounting, the reference itself (docs/PERFORMANCE.md).
  // Everything else (ATC fill from the Pmap, coherent page fault) traps into
  // the out-of-line AccessSlow, mirroring the paper's cheap-hardware-path /
  // software-trap split.
  AccessResult Access(uint32_t as_id, uint32_t vpn, uint32_t word_offset, sim::AccessKind kind,
                      uint32_t write_value = 0, bool allow_yield = true) PLATINUM_MAY_YIELD {
    int processor = machine_->scheduler().current_processor();
    hw::Rights needed =
        kind == sim::AccessKind::kWrite ? hw::Rights::kReadWrite : hw::Rights::kRead;
    const hw::PmapEntry* translation = mmus_[processor].atc().Lookup(as_id, vpn);
    if (translation == nullptr || !Allows(translation->rights, needed)) [[unlikely]] {
      return AccessSlow(as_id, vpn, word_offset, kind, write_value, allow_yield, needed,
                        processor);
    }
    ++machine_->stats().atc_hits;
    return FinishAccess(as_id, vpn, word_offset, kind, write_value, allow_yield, *translation,
                        processor);
  }

  // Block access (the Butterfly's microcoded block transfer): performs `count`
  // consecutive word accesses starting at (vpn, word_offset), crossing page
  // boundaries as needed. Simulated behavior — stats, charged latencies,
  // faults, observer callbacks, trace events, yield points — is identical to
  // the equivalent word-by-word Access loop; only host-side dispatch overhead
  // is amortized (translation reuse within a page between switch points).
  // Stops at the first failing word and returns its outcome; earlier words
  // have already been transferred.
  AccessOutcome ReadRange(uint32_t as_id, uint32_t vpn, uint32_t word_offset, uint32_t count,
                          uint32_t* out, bool allow_yield = true) PLATINUM_MAY_YIELD;
  AccessOutcome WriteRange(uint32_t as_id, uint32_t vpn, uint32_t word_offset, uint32_t count,
                           const uint32_t* values, bool allow_yield = true) PLATINUM_MAY_YIELD;

  // The coherent page fault handler (public so microbenchmarks can measure a
  // single transition). On success the current processor holds a translation
  // permitting `kind`. A fault resolves synchronously on the faulting fiber:
  // waiting is modeled in virtual time (AdvanceTo), never by a fiber switch,
  // so the handler's updates to Cpage/Pmap/module state are atomic — the
  // paper's handler critical section. Enforced by tools/platlint.
  AccessOutcome HandleFault(uint32_t as_id, uint32_t vpn, sim::AccessKind kind)
      PLATINUM_NO_YIELD;

  // --- Non-transparent hooks (Section 9) -----------------------------------------
  // Attaches placement advice to `npages` coherent pages starting at `vpn`;
  // advice overrides the fault-time replication decision.
  void Advise(uint32_t as_id, uint32_t vpn, uint32_t npages, MemoryAdvice advice);
  // Moves the page backing `vpn` to `node` and freezes it there (for data a
  // runtime knows will be write-shared at fine grain). Charged to the caller.
  void PinTo(uint32_t as_id, uint32_t vpn, int node);
  // Pre-replicates the page backing `vpn` onto `node` (prefetch for
  // read-mostly data). No-op if a copy already exists there or the page is
  // empty. Charged to the caller.
  void ReplicateTo(uint32_t as_id, uint32_t vpn, int node);

  // --- Defrost (Section 4.2) ---------------------------------------------------
  // Spawns the defrost daemon fiber (idempotent). Without it frozen pages
  // stay frozen forever under the default policy.
  void StartDefrostDaemon();
  // One defrost pass: invalidates all translations to every frozen page and
  // thaws it. Runs on the caller (daemon or test). Returns pages thawed.
  size_t ThawAllFrozen();
  // Thaws a single page (the explicit "thaw" hook mentioned in Section 4.2).
  void Thaw(uint32_t cpage_id);
  // Thaws every page frozen at least `min_age` ago (adaptive-defrost pass).
  // Returns pages thawed.
  size_t ThawExpired(sim::SimTime min_age);
  size_t frozen_count() const {
    frozen_lock_.Acquire();
    size_t n = frozen_list_.size();
    frozen_lock_.Release();
    return n;
  }

  // --- Instrumentation (Sections 1.1, 9) -------------------------------------------
  // Starts recording protocol events into a bounded ring buffer.
  void EnableTracing(size_t capacity = 4096);
  // The trace log, or nullptr when tracing is off.
  TraceLog* trace() { return trace_.get(); }

  // --- Checking hooks (src/check) ----------------------------------------------
  // Installs an observer notified of every charged word access, after fault
  // resolution and before the reference is performed (race detection).
  void SetAccessObserver(AccessObserver* observer) { access_observer_ = observer; }
  // The currently installed observer (for consumers that chain, e.g. the
  // page-forensics layer keeping an existing race detector live).
  AccessObserver* access_observer() const { return access_observer_; }
  // Installs a streaming sink for protocol events and page bind/unbind
  // notifications (the obs-layer forensics). Sinks see every event the
  // TraceLog would record, whether or not tracing is enabled. Pass nullptr
  // to detach.
  void SetPageEventSink(PageEventSink* sink) { page_sink_ = sink; }
  // Installs a hook invoked after every completed protocol transition —
  // fault resolution, thaw, pin, pre-replicate, unbind — with a short name
  // for the transition (the invariant oracle). Pass nullptr to detach.
  using TransitionHook = std::function<void(const char* transition)>;
  void SetTransitionHook(TransitionHook hook) { transition_hook_ = std::move(hook); }

  // --- Introspection -------------------------------------------------------------
  uint32_t num_address_spaces() const { return static_cast<uint32_t>(cmaps_.size()); }
  // Cross-structure invariants: directory vs reference masks vs Pmaps vs ATCs.
  void CheckInvariants() const;

 private:
  // The concrete protocols drive the private fault-resolution helpers
  // (AllocateFrame, CopyInto, shootdown rounds, lease scrubs, ...) directly;
  // they are the protocol layer's implementation, split into their own
  // translation units.
  friend class DirectoryProtocol;
  friend class TardisProtocol;

  // One shootdown round accumulates targets across restrict/invalidate steps
  // so the initiator pays the setup latency once per fault.
  struct ShootdownRound {
    uint64_t interrupted_mask = 0;  // processors needing a synchronous IPI
    uint32_t messages_posted = 0;
    uint32_t invalidated_translations = 0;
    uint32_t restricted_translations = 0;
  };

  // ---- shootdown.cc ----
  // Downgrades every write mapping of `page` to read-only.
  void RestrictCpageToRead(Cpage& page, int initiator, ShootdownRound* round);
  // Removes every translation to `page`'s copy on `module`.
  void InvalidateMappingsToCopy(Cpage& page, int module, int initiator, ShootdownRound* round);
  // Removes every translation to `page` regardless of copy (defrost path).
  void InvalidateAllMappings(Cpage& page, int initiator, ShootdownRound* round);
  // Charges the initiator for the round's IPIs and bills handler time to the
  // interrupted processors.
  void CommitShootdown(const Cpage& page, const ShootdownRound& round, int initiator);
  // Lease-protocol scrubs: the structural effect of a shootdown with none of
  // its cost model — no IPIs, no messages, no interrupted processors. Used
  // after a lease wait has guaranteed no processor still relies on the
  // translations. Each charges per-translation directory bookkeeping and
  // returns the number of translations touched.
  uint32_t ScrubWriteMappings(Cpage& page);                  // RW -> R everywhere
  uint32_t ScrubMappingsToCopy(Cpage& page, int module);     // module < 0: all
  uint32_t ScrubAllMappings(Cpage& page);

  // ---- fault_handler.cc ----
  AccessOutcome HandleFaultLocked(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                                  sim::AccessKind kind, int processor);
  // Allocates a frame for `page`, preferring `preferred_module`; falls back
  // to the page's home module, then any module. Charges probe costs.
  std::optional<PhysicalCopy> AllocateFrame(Cpage& page, int preferred_module);
  // Creates the first physical copy of an empty page, zero-filled.
  PhysicalCopy InitialFill(Cpage& page, int processor);
  // Copies `page`'s primary copy onto `dst` with the block-transfer engine.
  void CopyInto(Cpage& page, const PhysicalCopy& dst);
  // Virtual time the current fault spent in block transfers. The transfer
  // happens *outside* the per-Cpage handler critical section (the paper's
  // pivot-row serialization is the source module's bus, not the handler
  // lock), so HandleFault excludes it from handler_busy_until.
  sim::SimTime fault_copy_ns_ = 0;
  void FreeCopy(Cpage& page, int module);
  // Records a protocol event into the trace ring (if tracing is enabled) and
  // fans it out to the page-event sink (if attached); the faulting fiber id
  // is captured automatically. A no-op when neither consumer is present.
  void Trace(TraceEventType type, const Cpage& page, int processor, uint32_t detail);
  // As Trace, for events not tied to a coherent page (defrost scans).
  void TraceGlobal(TraceEventType type, int processor, uint32_t detail);
  // Shared tail of Trace/TraceGlobal: builds the event once, then fans out.
  void EmitTrace(TraceEventType type, uint32_t cpage, int processor, uint32_t detail);
  // Invokes the transition hook, if any, at the end of a completed transition.
  void NotifyTransition(const char* transition) {
    if (transition_hook_) {
      transition_hook_(transition);
    }
  }
  // Central fault-time choice: advice first, then the replication policy.
  bool DecideCache(Cpage& page, const FaultInfo& fault, sim::SimTime now);
  // Marks the page frozen if the policy (or its advice) wants declined pages
  // frozen.
  void MaybeFreeze(Cpage& page);
  // Clears the frozen flag and removes the page from the defrost list.
  void Unfreeze(Cpage& page);

  // ---- coherent_memory.cc ----
  // The trap taken when the inline fast path cannot complete an access: ATC
  // miss, or a cached translation with insufficient rights. Counts the ATC
  // miss, refills from the processor's private Pmap when it has a usable
  // entry, and otherwise runs the coherent page fault handler. `needed` and
  // `processor` are forwarded from the fast path so neither is derived twice.
  AccessResult AccessSlow(uint32_t as_id, uint32_t vpn, uint32_t word_offset,
                          sim::AccessKind kind, uint32_t write_value, bool allow_yield,
                          hw::Rights needed, int processor) PLATINUM_MAY_YIELD;
  // Tail shared by the fast and slow paths: observer callback, the reference
  // itself (latency + data), and the post-access yield point. `translation`
  // must permit `kind`.
  AccessResult FinishAccess(uint32_t as_id, uint32_t vpn, uint32_t word_offset,
                            sim::AccessKind kind, uint32_t write_value, bool allow_yield,
                            const hw::PmapEntry& translation, int processor)
      PLATINUM_MAY_YIELD {
    if (access_observer_ != nullptr) [[unlikely]] {
      NotifyAccessObserver(as_id, vpn, word_offset, kind, processor);
    }
    machine_->Reference(translation.module, kind);
    AccessResult result;
    if (kind == sim::AccessKind::kRead) {
      result.value = machine_->ReadWordRaw(translation.module, translation.frame, word_offset);
    } else {
      machine_->WriteWordRaw(translation.module, translation.frame, word_offset, write_value);
    }
    if (allow_yield) {
      machine_->scheduler().MaybeYield();
    }
    return result;
  }
  // Out-of-line observer dispatch so the inline fast path stays small.
  void NotifyAccessObserver(uint32_t as_id, uint32_t vpn, uint32_t word_offset,
                            sim::AccessKind kind, int processor) PLATINUM_NO_YIELD;
  // Shared engine behind ReadRange/WriteRange. Exactly one of read_out /
  // write_in is non-null.
  AccessOutcome AccessRange(uint32_t as_id, uint32_t vpn, uint32_t word_offset, uint32_t count,
                            sim::AccessKind kind, uint32_t* read_out, const uint32_t* write_in,
                            bool allow_yield) PLATINUM_MAY_YIELD;
  // Installs a translation for (as, vpn) on `processor` and updates the
  // reference mask, write-mapping census and the processor's ATC.
  void EnterMapping(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn, int processor,
                    const PhysicalCopy& copy, hw::Rights rights);
  // Charges the cost of consulting the Cpage entry (remote when its home is
  // another node).
  void ChargeCpageStructures(const Cpage& page, int processor);

  sim::Machine* machine_;
  std::unique_ptr<ReplicationPolicy> policy_;
  std::unique_ptr<CoherenceProtocol> protocol_;
  std::vector<hw::ProcessorMmu> mmus_;
  CpageTable cpages_;
  std::vector<std::unique_ptr<Cmap>> cmaps_;
  // Kernel lock for the defrost list: faults freeze pages while the defrost
  // daemon scans and thaws, and both sides' list updates are critical
  // sections (zero-cost under fiber serialization; see
  // src/base/discipline_lock.h).
  base::DisciplineLock frozen_lock_;
  std::vector<uint32_t> frozen_list_ GUARDED_BY(frozen_lock_);
  bool defrost_daemon_started_ = false;
  std::unique_ptr<TraceLog> trace_;
  AccessObserver* access_observer_ = nullptr;
  PageEventSink* page_sink_ = nullptr;
  TransitionHook transition_hook_;
};

}  // namespace platinum::mem

#endif  // SRC_MEM_COHERENT_MEMORY_H_
