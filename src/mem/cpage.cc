#include "src/mem/cpage.h"

#include <algorithm>

#include "src/base/check.h"

namespace platinum::mem {

const char* CpageStateName(CpageState state) {
  switch (state) {
    case CpageState::kEmpty:
      return "empty";
    case CpageState::kPresent1:
      return "present1";
    case CpageState::kPresentPlus:
      return "present+";
    case CpageState::kModified:
      return "modified";
  }
  return "?";
}

const char* MemoryAdviceName(MemoryAdvice advice) {
  switch (advice) {
    case MemoryAdvice::kDefault:
      return "default";
    case MemoryAdvice::kReadMostly:
      return "read-mostly";
    case MemoryAdvice::kWriteShared:
      return "write-shared";
    case MemoryAdvice::kPrivate:
      return "private";
  }
  return "?";
}

std::optional<PhysicalCopy> Cpage::FindCopy(int module) const {
  if (!HasCopyOn(module)) {
    return std::nullopt;
  }
  for (const PhysicalCopy& copy : copies_) {
    if (copy.module == module) {
      return copy;
    }
  }
  PLAT_CHECK(false) << "directory mask/list mismatch for cpage " << id_;
  return std::nullopt;  // unreachable
}

const PhysicalCopy& Cpage::PrimaryCopy() const {
  PLAT_CHECK(!copies_.empty()) << "cpage " << id_ << " has no physical copy";
  return copies_.front();
}

void Cpage::AddCopy(PhysicalCopy copy) {
  PLAT_CHECK_GE(copy.module, 0);
  PLAT_CHECK(!HasCopyOn(copy.module))
      << "cpage " << id_ << " already has a copy on module " << copy.module;
  module_mask_ |= uint64_t{1} << copy.module;
  copies_.push_back(copy);
}

PhysicalCopy Cpage::RemoveCopy(int module) {
  PLAT_CHECK(HasCopyOn(module)) << "cpage " << id_ << " has no copy on module " << module;
  module_mask_ &= ~(uint64_t{1} << module);
  auto it = std::find_if(copies_.begin(), copies_.end(),
                         [module](const PhysicalCopy& c) { return c.module == module; });
  PLAT_CHECK(it != copies_.end());
  PhysicalCopy removed = *it;
  copies_.erase(it);
  return removed;
}

void Cpage::DropWriteMapping() {
  PLAT_CHECK_GT(write_mappings_, 0u) << "write-mapping underflow on cpage " << id_;
  --write_mappings_;
}

void Cpage::RemoveMapper(uint32_t as_id, uint32_t vpn) {
  auto it = std::find_if(mappers_.begin(), mappers_.end(), [&](const CpageMapper& m) {
    return m.as_id == as_id && m.vpn == vpn;
  });
  PLAT_CHECK(it != mappers_.end()) << "unbinding unknown mapper of cpage " << id_;
  mappers_.erase(it);
}

void Cpage::CheckInvariants() const {
  // Directory mask and copy list agree.
  uint64_t mask = 0;
  for (const PhysicalCopy& copy : copies_) {
    PLAT_CHECK_GE(copy.module, 0);
    PLAT_CHECK((mask >> copy.module & 1) == 0) << "duplicate copy on module " << copy.module;
    mask |= uint64_t{1} << copy.module;
  }
  PLAT_CHECK_EQ(mask, module_mask_) << "directory mask mismatch for cpage " << id_;

  switch (state_) {
    case CpageState::kEmpty:
      PLAT_CHECK_EQ(copies_.size(), 0u);
      PLAT_CHECK_EQ(write_mappings_, 0u);
      break;
    case CpageState::kPresent1:
      PLAT_CHECK_EQ(copies_.size(), 1u);
      PLAT_CHECK_EQ(write_mappings_, 0u);
      break;
    case CpageState::kPresentPlus:
      PLAT_CHECK_GE(copies_.size(), 2u);
      PLAT_CHECK_EQ(write_mappings_, 0u);
      break;
    case CpageState::kModified:
      PLAT_CHECK_EQ(copies_.size(), 1u);
      PLAT_CHECK_GT(write_mappings_, 0u);
      break;
  }
  if (frozen_) {
    PLAT_CHECK_LE(copies_.size(), 1u) << "frozen cpage " << id_ << " must have a single copy";
  }
}

uint32_t CpageTable::Create(int home_module) {
  uint32_t id = static_cast<uint32_t>(pages_.size());
  int16_t home = home_module >= 0 ? static_cast<int16_t>(home_module)
                                  : static_cast<int16_t>(id % num_modules_);
  PLAT_CHECK_LT(home, num_modules_);
  pages_.emplace_back(id, home);
  return id;
}

Cpage& CpageTable::at(uint32_t id) {
  PLAT_CHECK_LT(id, pages_.size());
  return pages_[id];
}

const Cpage& CpageTable::at(uint32_t id) const {
  PLAT_CHECK_LT(id, pages_.size());
  return pages_[id];
}

void CpageTable::CheckAllInvariants() const {
  for (const Cpage& page : pages_) {
    page.CheckInvariants();
  }
}

}  // namespace platinum::mem
