// Coherent pages and the Cpage table.
//
// A coherent page (Cpage) is the unit of the coherent-memory abstraction: an
// ordered page of a memory object that may be backed by one or more physical
// pages on different nodes. Each Cpage-table entry holds the directory of
// physical copies, the protocol state (Section 3.2 of the paper), the
// freeze/invalidation history used by the replication policy (Section 4.2),
// and per-page statistics matching the kernel's post-mortem report.
#ifndef SRC_MEM_CPAGE_H_
#define SRC_MEM_CPAGE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace platinum::mem {

inline constexpr uint32_t kInvalidCpageId = UINT32_MAX;

// Protocol states, Section 3.2.
enum class CpageState : uint8_t {
  kEmpty,        // no physical pages back the Cpage
  kPresent1,     // exactly one physical copy; all mappings read-only
  kPresentPlus,  // two or more physical copies; all mappings read-only
  kModified,     // one physical copy; at least one mapping allows writes
};

const char* CpageStateName(CpageState state);

// Non-transparent placement hints (the kernel-interface extension sketched in
// Section 9, intended for language run-time systems rather than application
// programmers). Advice overrides the replication policy's fault-time choice.
enum class MemoryAdvice : uint8_t {
  kDefault,     // let the replication policy decide
  kReadMostly,  // replicate freely on read misses, never freeze on reads
  kWriteShared, // never cache; freeze in place at the first miss
  kPrivate,     // migrate freely toward the (single) user
};

const char* MemoryAdviceName(MemoryAdvice advice);

struct PhysicalCopy {
  int16_t module = -1;
  uint32_t frame = 0;
};

// A (address space, virtual page) pair where this Cpage is bound. The
// coherency protocol must reach every address space that maps the page
// (Section 3.1).
struct CpageMapper {
  uint32_t as_id = 0;
  uint32_t vpn = 0;
};

// Per-page counters: the "detailed report on the behavior of memory
// management" of Section 4.2.
struct CpageStats {
  uint64_t faults = 0;
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t replications = 0;
  uint64_t migrations = 0;
  uint64_t remote_maps = 0;
  uint64_t invalidation_rounds = 0;  // coherence-driven invalidations
  uint64_t freezes = 0;
  uint64_t thaws = 0;
  // Contention in the Cpage fault handler for this page.
  uint64_t handler_waits = 0;
  sim::SimTime handler_wait_ns = 0;
  // Lease-protocol expiry waits charged against this page (tardis).
  uint64_t lease_waits = 0;
};

class Cpage {
 public:
  explicit Cpage(uint32_t id, int16_t home_module)
      : id_(id), home_module_(home_module) {}

  uint32_t id() const { return id_; }
  // Node holding this Cpage's kernel data structures; faults handled on other
  // nodes pay remote-reference overhead (Section 4's 1.34 ms vs 1.38 ms).
  int16_t home_module() const { return home_module_; }

  CpageState state() const { return state_; }
  uint64_t module_mask() const { return module_mask_; }
  const std::vector<PhysicalCopy>& copies() const { return copies_; }
  bool HasCopyOn(int module) const { return (module_mask_ >> module) & 1; }
  std::optional<PhysicalCopy> FindCopy(int module) const;
  // The copy used as the source of replications / the survivor of collapses.
  const PhysicalCopy& PrimaryCopy() const;

  void AddCopy(PhysicalCopy copy);
  // Removes and returns the copy on `module`.
  PhysicalCopy RemoveCopy(int module);

  void SetState(CpageState state) { state_ = state; }

  // Write-mapping census, maintained by the mapping operations in
  // CoherentMemory. state == kModified iff one copy and write_mappings > 0.
  uint32_t write_mappings() const { return write_mappings_; }
  void AddWriteMapping() { ++write_mappings_; }
  void DropWriteMapping();
  void ClearWriteMappings() { write_mappings_ = 0; }

  // Freeze/thaw bookkeeping (Section 4.2).
  bool frozen() const { return frozen_; }
  void SetFrozen(bool frozen) { frozen_ = frozen; }
  // When the page was last frozen; drives the adaptive (per-page deadline)
  // defrost variant.
  sim::SimTime freeze_time() const { return freeze_time_; }
  void SetFreezeTime(sim::SimTime t) { freeze_time_ = t; }

  MemoryAdvice advice() const { return advice_; }
  void SetAdvice(MemoryAdvice advice) { advice_ = advice; }

  // History of coherence-driven invalidations used by the replication policy.
  bool ever_invalidated() const { return ever_invalidated_; }
  sim::SimTime last_invalidation() const { return last_invalidation_; }
  void RecordInvalidation(sim::SimTime now) {
    ever_invalidated_ = true;
    last_invalidation_ = now;
  }

  // Virtual time until which a fault on this page is serialized behind an
  // in-progress fault (handler contention, Section 5.1).
  sim::SimTime handler_busy_until = 0;

  const std::vector<CpageMapper>& mappers() const { return mappers_; }
  void AddMapper(CpageMapper mapper) { mappers_.push_back(mapper); }
  void RemoveMapper(uint32_t as_id, uint32_t vpn);

  CpageStats& stats() { return stats_; }
  const CpageStats& stats() const { return stats_; }

  // Aborts if the state/directory/write-mapping invariants (Section 3.2) do
  // not hold.
  void CheckInvariants() const;

 private:
  const uint32_t id_;
  const int16_t home_module_;
  CpageState state_ = CpageState::kEmpty;
  uint64_t module_mask_ = 0;
  std::vector<PhysicalCopy> copies_;
  uint32_t write_mappings_ = 0;
  bool frozen_ = false;
  sim::SimTime freeze_time_ = 0;
  MemoryAdvice advice_ = MemoryAdvice::kDefault;
  bool ever_invalidated_ = false;
  sim::SimTime last_invalidation_ = 0;
  std::vector<CpageMapper> mappers_;
  CpageStats stats_;
};

// The list of all coherent pages (Section 2.3). Deque keeps references stable
// while pages are created.
class CpageTable {
 public:
  explicit CpageTable(int num_modules) : num_modules_(num_modules) {}

  // Creates an empty Cpage whose kernel structures live on `home_module`
  // (round-robin across nodes when negative).
  uint32_t Create(int home_module = -1);

  Cpage& at(uint32_t id);
  const Cpage& at(uint32_t id) const;
  uint32_t size() const { return static_cast<uint32_t>(pages_.size()); }

  // Runs CheckInvariants on every page (used by tests after experiments).
  void CheckAllInvariants() const;

 private:
  const int num_modules_;
  std::deque<Cpage> pages_;
};

}  // namespace platinum::mem

#endif  // SRC_MEM_CPAGE_H_
