// The defrost daemon (Section 4.2).
//
// A clock-driven kernel daemon that periodically invalidates all mappings to
// every frozen Cpage and thaws it, so subsequent faults can re-evaluate the
// replication decision — the mechanism that lets the memory system react to
// program phase changes and recover from accidentally frozen pages.
#include <algorithm>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/mem/coherent_memory.h"
#include "src/mem/protocol.h"

namespace platinum::mem {

void CoherentMemory::StartDefrostDaemon() {
  if (defrost_daemon_started_) {
    return;
  }
  defrost_daemon_started_ = true;
  const sim::MachineParams& params = machine_->params();
  if (params.adaptive_defrost) {
    // Priority-queue variant: wake at the earliest per-page thaw deadline.
    machine_->scheduler().Spawn(
        params.defrost_processor, "defrost-daemon",
        [this] {
          sim::Scheduler& sched = machine_->scheduler();
          const sim::SimTime t2 = machine_->params().t2_defrost_period_ns;
          for (;;) {
            sim::SimTime now = sched.now();
            sim::SimTime wake = now + t2;
            // The deadline scan is a critical section; the sleep that follows
            // must happen outside it (release-before-block discipline).
            frozen_lock_.Acquire();
            for (uint32_t id : frozen_list_) {
              sim::SimTime deadline = cpages_.at(id).freeze_time() + t2;
              wake = std::min(wake, std::max(deadline, now + sim::kMillisecond));
            }
            frozen_lock_.Release();
            sched.Sleep(wake - now);
            size_t thawed = ThawExpired(t2);
            TraceGlobal(TraceEventType::kDefrostScan, machine_->params().defrost_processor,
                        static_cast<uint32_t>(thawed));
          }
        },
        /*daemon=*/true);
    return;
  }
  machine_->scheduler().Spawn(
      params.defrost_processor, "defrost-daemon",
      [this] {
        for (;;) {
          machine_->scheduler().Sleep(machine_->params().t2_defrost_period_ns);
          size_t thawed = ThawAllFrozen();
          TraceGlobal(TraceEventType::kDefrostScan, machine_->params().defrost_processor,
                      static_cast<uint32_t>(thawed));
        }
      },
      /*daemon=*/true);
}

size_t CoherentMemory::ThawExpired(sim::SimTime min_age) {
  sim::SimTime now = machine_->scheduler().now();
  std::vector<uint32_t> expired;
  frozen_lock_.Acquire();
  for (uint32_t id : frozen_list_) {
    const Cpage& page = cpages_.at(id);
    if (now >= page.freeze_time() && now - page.freeze_time() >= min_age) {
      expired.push_back(id);
    }
  }
  frozen_lock_.Release();
  for (uint32_t id : expired) {
    Thaw(id);
  }
  return expired.size();
}

size_t CoherentMemory::ThawAllFrozen() {
  // Thaw the current batch; pages refrozen by faults racing this pass go on a
  // fresh list for the next period.
  frozen_lock_.Acquire();
  std::vector<uint32_t> batch = std::move(frozen_list_);
  frozen_list_.clear();
  frozen_lock_.Release();
  size_t thawed = 0;
  for (uint32_t id : batch) {
    Cpage& page = cpages_.at(id);
    if (!page.frozen()) {
      continue;  // thawed by an access since it was listed
    }
    // Unfreeze expects the page on the list; temporarily restore it.
    frozen_lock_.Acquire();
    frozen_list_.push_back(id);
    frozen_lock_.Release();
    Thaw(id);
    ++thawed;
  }
  return thawed;
}

void CoherentMemory::Thaw(uint32_t cpage_id) {
  Cpage& page = cpages_.at(cpage_id);
  if (!page.frozen()) {
    return;
  }
  sim::Scheduler& sched = machine_->scheduler();
  int initiator = sched.current() != nullptr ? sched.current_processor()
                                             : machine_->params().defrost_processor;

  // Invalidate every translation so the next access faults and the policy
  // decides afresh. This is *not* a coherence invalidation: it must not
  // update the page's interference history, or frozen pages would refreeze
  // on their next fault.
  protocol_->ReleaseAllMappings(page, initiator);
  PLAT_CHECK_EQ(page.write_mappings(), 0u);
  if (page.state() == CpageState::kModified) {
    page.SetState(CpageState::kPresent1);  // protocol: thaw-downgrade modified -> present1
  }
  Unfreeze(page);
  NotifyTransition("thaw");
}

}  // namespace platinum::mem
