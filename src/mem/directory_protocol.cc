// The paper's 4-state directory protocol (Sections 3.2 and 3.3), behind the
// CoherenceProtocol interface.
//
// On each fault with no local copy the replication policy chooses between
// caching the page locally (replicate on a read miss, migrate on a write
// miss) and creating a mapping to an existing remote copy — the mechanism
// that selectively disables caching for actively write-shared pages. Copies
// and write mappings are taken away with shootdown rounds (Section 3.1):
// Cmap messages plus synchronous IPIs to the processors that hold
// translations and have the space active.
#include <optional>
#include <vector>

#include "src/base/check.h"
#include "src/mem/coherent_memory.h"
#include "src/mem/protocol.h"

namespace platinum::mem {

void DirectoryProtocol::OnReadFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                                    int processor) {
  CoherentMemory& m = *memory_;
  sim::Scheduler& sched = m.machine_->scheduler();
  const sim::MachineParams& params = m.machine_->params();

  if (page.state() == CpageState::kEmpty) {
    PhysicalCopy copy = m.InitialFill(page, processor);
    page.AddCopy(copy);
    page.SetState(CpageState::kPresent1);  // protocol: read-fill empty -> present1
    ++m.machine_->stats().initial_fills;
    ++m.machine_->obs().cpu(processor).initial_fills;
    m.Trace(TraceEventType::kFill, page, processor, static_cast<uint32_t>(copy.module));
    m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kRead);
    return;
  }

  if (page.HasCopyOn(processor)) {
    // A local copy already exists (e.g. through another address space). The
    // handler locates it through the local inverted page table — strictly
    // local references (Section 3.3).
    auto probe = m.machine_->module(processor).FindFrame(page.id());
    PLAT_CHECK(probe.has_value()) << "directory says module " << processor
                                  << " backs cpage " << page.id() << " but no frame found";
    m.machine_->Compute(static_cast<sim::SimTime>(probe->probes) * params.local_read_ns);
    m.EnterMapping(cm, entry, page, vpn, processor,
                   PhysicalCopy{static_cast<int16_t>(processor), probe->frame},
                   hw::Rights::kRead);
    return;
  }

  FaultInfo info{cm.as_id(), vpn, processor, /*is_write=*/false};
  bool cache = m.DecideCache(page, info, sched.now());
  std::optional<PhysicalCopy> frame =
      cache ? m.AllocateFrame(page, processor) : std::nullopt;

  if (frame.has_value()) {
    // Replicate. A modified source must first be restricted to read-only so
    // the copy cannot go stale mid-flight (modified -> present1 -> present+).
    if (page.frozen()) {
      m.Unfreeze(page);
    }
    if (page.state() == CpageState::kModified) {
      DowngradeToRead(page, processor);
    }
    m.CopyInto(page, *frame);
    page.AddCopy(*frame);
    page.SetState(CpageState::kPresentPlus);  // protocol: replicate present1|present+ -> present+
    ++page.stats().replications;
    ++m.machine_->stats().replications;
    ++m.machine_->obs().cpu(processor).replications;
    m.Trace(TraceEventType::kReplicate, page, processor, static_cast<uint32_t>(frame->module));
    m.EnterMapping(cm, entry, page, vpn, processor, *frame, hw::Rights::kRead);
    return;
  }

  // Remote mapping to an existing copy; read mappings never break coherence.
  const PhysicalCopy& copy = page.PrimaryCopy();
  m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kRead);
  ++page.stats().remote_maps;
  ++m.machine_->stats().remote_maps;
  ++m.machine_->obs().cpu(processor).remote_maps;
  m.Trace(TraceEventType::kRemoteMap, page, processor, static_cast<uint32_t>(copy.module));
  if (!cache) {
    m.MaybeFreeze(page);
  }
}

void DirectoryProtocol::OnWriteFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                                     int processor) {
  CoherentMemory& m = *memory_;
  sim::Scheduler& sched = m.machine_->scheduler();
  const sim::MachineParams& params = m.machine_->params();

  if (page.state() == CpageState::kEmpty) {
    PhysicalCopy copy = m.InitialFill(page, processor);
    page.AddCopy(copy);
    page.SetState(CpageState::kModified);  // protocol: write-fill empty -> modified
    ++m.machine_->stats().initial_fills;
    ++m.machine_->obs().cpu(processor).initial_fills;
    m.Trace(TraceEventType::kFill, page, processor, static_cast<uint32_t>(copy.module));
    m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kReadWrite);
    return;
  }

  if (page.HasCopyOn(processor)) {
    auto probe = m.machine_->module(processor).FindFrame(page.id());
    PLAT_CHECK(probe.has_value());
    m.machine_->Compute(static_cast<sim::SimTime>(probe->probes) * params.local_read_ns);
    PhysicalCopy local{static_cast<int16_t>(processor), probe->frame};

    if (page.state() == CpageState::kPresentPlus) {
      // present+ -> modified: invalidate every remote copy's translations and
      // reclaim the physical pages (Section 3.3).
      std::vector<int> victims;
      for (const PhysicalCopy& copy : page.copies()) {
        if (copy.module != processor) {
          victims.push_back(copy.module);
        }
      }
      ReleaseCopyMappings(page, victims, processor);
      for (int module : victims) {
        m.FreeCopy(page, module);
      }
      page.RecordInvalidation(sched.now());
      ++page.stats().invalidation_rounds;
      page.SetState(CpageState::kPresent1);  // protocol: collapse present+ -> present1
    }
    // present1 -> modified needs neither invalidation nor reclamation — the
    // reason the protocol distinguishes the two states (Section 3.2).
    m.EnterMapping(cm, entry, page, vpn, processor, local, hw::Rights::kReadWrite);
    page.SetState(CpageState::kModified);  // protocol: upgrade present1|modified -> modified
    return;
  }

  // No local copy: migrate or map the remote copy for writing.
  FaultInfo info{cm.as_id(), vpn, processor, /*is_write=*/true};
  bool cache = m.DecideCache(page, info, sched.now());
  std::optional<PhysicalCopy> frame =
      cache ? m.AllocateFrame(page, processor) : std::nullopt;

  if (frame.has_value()) {
    // Migrate: invalidate all translations to the old copies, block-transfer
    // the data, then reclaim the old frames.
    if (page.frozen()) {
      m.Unfreeze(page);
    }
    CoherentMemory::ShootdownRound round;
    std::vector<int> victims;
    for (const PhysicalCopy& copy : page.copies()) {
      victims.push_back(copy.module);
    }
    for (int module : victims) {
      m.InvalidateMappingsToCopy(page, module, processor, &round);
    }
    m.CommitShootdown(page, round, processor);
    m.CopyInto(page, *frame);
    for (int module : victims) {
      m.FreeCopy(page, module);
    }
    if (round.invalidated_translations > 0) {
      // Someone else lost a translation: interprocessor interference the
      // replication policy should know about.
      page.RecordInvalidation(sched.now());
      ++page.stats().invalidation_rounds;
    }
    page.AddCopy(*frame);
    // protocol: migrate present1|present+|modified -> modified
    page.SetState(CpageState::kModified);
    ++page.stats().migrations;
    ++m.machine_->stats().migrations;
    ++m.machine_->obs().cpu(processor).migrations;
    m.Trace(TraceEventType::kMigrate, page, processor, static_cast<uint32_t>(frame->module));
    m.EnterMapping(cm, entry, page, vpn, processor, *frame, hw::Rights::kReadWrite);
    return;
  }

  // Remote write mapping. Writes require a single physical copy, so a
  // replicated page first collapses to one.
  if (page.state() == CpageState::kPresentPlus) {
    const PhysicalCopy keep = page.PrimaryCopy();
    std::vector<int> victims;
    for (const PhysicalCopy& copy : page.copies()) {
      if (copy.module != keep.module) {
        victims.push_back(copy.module);
      }
    }
    CoherentMemory::ShootdownRound round;
    for (int module : victims) {
      m.InvalidateMappingsToCopy(page, module, processor, &round);
    }
    m.CommitShootdown(page, round, processor);
    for (int module : victims) {
      m.FreeCopy(page, module);
    }
    if (round.invalidated_translations > 0) {
      page.RecordInvalidation(sched.now());
      ++page.stats().invalidation_rounds;
    }
    page.SetState(CpageState::kPresent1);  // protocol: collapse present+ -> present1
  }
  const PhysicalCopy& copy = page.PrimaryCopy();
  m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kReadWrite);
  page.SetState(CpageState::kModified);  // protocol: upgrade present1|modified -> modified
  ++page.stats().remote_maps;
  ++m.machine_->stats().remote_maps;
  ++m.machine_->obs().cpu(processor).remote_maps;
  m.Trace(TraceEventType::kRemoteMap, page, processor, static_cast<uint32_t>(copy.module));
  if (!cache) {
    m.MaybeFreeze(page);
  }
}

void DirectoryProtocol::DowngradeToRead(Cpage& page, int initiator) {
  CoherentMemory& m = *memory_;
  CoherentMemory::ShootdownRound round;
  m.RestrictCpageToRead(page, initiator, &round);
  m.CommitShootdown(page, round, initiator);
  page.SetState(CpageState::kPresent1);  // protocol: restrict modified -> present1
}

void DirectoryProtocol::ReleaseAllMappings(Cpage& page, int initiator) {
  CoherentMemory& m = *memory_;
  CoherentMemory::ShootdownRound round;
  m.InvalidateAllMappings(page, initiator, &round);
  m.CommitShootdown(page, round, initiator);
}

void DirectoryProtocol::ReleaseCopyMappings(Cpage& page, const std::vector<int>& modules,
                                            int initiator) {
  CoherentMemory& m = *memory_;
  CoherentMemory::ShootdownRound round;
  for (int module : modules) {
    m.InvalidateMappingsToCopy(page, module, initiator, &round);
  }
  m.CommitShootdown(page, round, initiator);
}

}  // namespace platinum::mem
