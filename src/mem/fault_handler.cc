// The coherent page fault handler (Sections 3.2 and 3.3).
//
// Every transition of the data-coherency protocol is initiated here, by an
// address-translation or protection fault. On each fault with no local copy
// the replication policy chooses between caching the page locally
// (replicate on a read miss, migrate on a write miss) and creating a mapping
// to an existing remote copy — the mechanism that selectively disables
// caching for actively write-shared pages.
#include <algorithm>
#include <cstring>

#include "src/base/check.h"
#include "src/mem/coherent_memory.h"
#include "src/mem/protocol.h"

namespace platinum::mem {

AccessOutcome CoherentMemory::HandleFault(uint32_t as_id, uint32_t vpn, sim::AccessKind kind) {
  sim::Scheduler& sched = machine_->scheduler();
  const sim::MachineParams& params = machine_->params();
  int processor = sched.current_processor();
  Cmap& cm = cmap(as_id);
  CmapEntry& entry = cm.entry(vpn);

  sim::SimTime fault_entered = sched.now();

  // Trap entry, Cmap lookup, and the fixed handler overhead (Section 4).
  machine_->Compute(params.fault_fixed_ns);
  ++machine_->stats().faults;
  obs::ProcessorCounters& cpu = machine_->obs().cpu(processor);
  ++cpu.faults;
  if (kind == sim::AccessKind::kWrite) {
    ++machine_->stats().write_faults;
    ++cpu.write_faults;
  } else {
    ++machine_->stats().read_faults;
    ++cpu.read_faults;
  }

  if (!entry.bound()) {
    return AccessOutcome::kNoMapping;
  }
  hw::Rights needed =
      kind == sim::AccessKind::kWrite ? hw::Rights::kReadWrite : hw::Rights::kRead;
  if (!Allows(entry.rights, needed)) {
    return AccessOutcome::kProtection;
  }

  Cpage& page = cpages_.at(entry.cpage);
  page.stats().faults += 1;
  if (kind == sim::AccessKind::kWrite) {
    ++page.stats().write_faults;
  } else {
    ++page.stats().read_faults;
  }
  ChargeCpageStructures(page, processor);
  Trace(TraceEventType::kFault, page, processor,
        kind == sim::AccessKind::kWrite ? 1 : 0);

  // Faults on the same Cpage serialize in the handler; this is the contention
  // the paper's post-mortem reports surface for the Gauss pivot rows.
  sim::SimTime now = sched.now();
  if (page.handler_busy_until > now) {
    sim::SimTime wait = page.handler_busy_until - now;
    sched.AdvanceTo(page.handler_busy_until);
    machine_->stats().fault_handler_wait_ns += wait;
    ++page.stats().handler_waits;
    page.stats().handler_wait_ns += wait;
  }

  fault_copy_ns_ = 0;
  AccessOutcome outcome = HandleFaultLocked(cm, entry, page, vpn, kind, processor);
  // The block-transfer portion of the fault runs outside the per-Cpage
  // critical section; concurrent faults on the same page serialize only on
  // the handler bookkeeping (and on the source module's bus, via the
  // interconnect model).
  sim::SimTime handler_end = sched.now();
  page.handler_busy_until =
      handler_end - (fault_copy_ns_ < handler_end ? fault_copy_ns_ : handler_end);
  // Service time as the faulting thread experienced it: trap to resolution,
  // including handler serialization and the block-transfer portion.
  machine_->obs().RecordLatency(obs::HistKind::kFaultService, handler_end - fault_entered);
  PLAT_DCHECK([&] {
    page.CheckInvariants();
    return true;
  }());
  NotifyTransition(kind == sim::AccessKind::kWrite ? "write-fault" : "read-fault");
  return outcome;
}

AccessOutcome CoherentMemory::HandleFaultLocked(Cmap& cm, CmapEntry& entry, Cpage& page,
                                                uint32_t vpn, sim::AccessKind kind,
                                                int processor) {
  // Fault resolution — which copies to make, which to destroy, and what the
  // page's state becomes — belongs to the coherence protocol. The handler
  // above owns everything protocol-independent: trap cost, per-page
  // serialization, tracing, invariant checks.
  if (kind == sim::AccessKind::kRead) {
    protocol_->OnReadFault(cm, entry, page, vpn, processor);
  } else {
    protocol_->OnWriteFault(cm, entry, page, vpn, processor);
  }
  return AccessOutcome::kOk;
}

std::optional<PhysicalCopy> CoherentMemory::AllocateFrame(Cpage& page, int preferred_module) {
  const sim::MachineParams& params = machine_->params();
  int current = machine_->scheduler().current() != nullptr
                    ? machine_->scheduler().current_processor()
                    : preferred_module;

  auto try_module = [&](int module) -> std::optional<PhysicalCopy> {
    if (page.HasCopyOn(module)) {
      return std::nullopt;  // one frame per cpage per module
    }
    auto result = machine_->module(module).AllocFrame(page.id());
    if (!result.has_value()) {
      return std::nullopt;
    }
    // Probing the inverted page table: local references when allocating on
    // the faulting node, remote otherwise.
    sim::SimTime per_probe =
        module == current ? params.local_read_ns : params.remote_read_ns;
    machine_->Compute(static_cast<sim::SimTime>(result->probes) * per_probe);
    ++machine_->obs().module(module).frames_allocated;
    return PhysicalCopy{static_cast<int16_t>(module), result->frame};
  };

  if (auto copy = try_module(preferred_module)) {
    return copy;
  }
  if (page.home_module() != preferred_module) {
    if (auto copy = try_module(page.home_module())) {
      return copy;
    }
  }
  for (int module = 0; module < machine_->num_nodes(); ++module) {
    if (module == preferred_module || module == page.home_module()) {
      continue;
    }
    if (auto copy = try_module(module)) {
      return copy;
    }
  }
  return std::nullopt;
}

PhysicalCopy CoherentMemory::InitialFill(Cpage& page, int processor) {
  std::optional<PhysicalCopy> copy = AllocateFrame(page, processor);
  PLAT_CHECK(copy.has_value()) << "out of physical memory filling cpage " << page.id();
  // Frames come from a pre-zeroed pool; no extra charge.
  std::memset(machine_->module(copy->module).FrameData(copy->frame), 0,
              machine_->params().page_size_bytes);
  return *copy;
}

void CoherentMemory::CopyInto(Cpage& page, const PhysicalCopy& dst) {
  // "The handler then performs a block transfer from another physical copy"
  // (Section 3.3) — any copy in the directory is a valid source. Picking the
  // least-busy source spreads a burst of replications (all 15 readers of a
  // Gauss pivot row) across the existing replicas instead of serializing
  // every transfer at the original.
  PLAT_CHECK(!page.copies().empty());
  const PhysicalCopy* src = nullptr;
  sim::SimTime best = 0;
  for (const PhysicalCopy& copy : page.copies()) {
    PLAT_CHECK_NE(copy.module, dst.module);
    sim::SimTime busy = machine_->module(copy.module).bus_busy_until;
    if (src == nullptr || busy < best) {
      src = &copy;
      best = busy;
    }
  }
  sim::SimTime before = machine_->scheduler().now();
  machine_->BlockTransferPage(src->module, src->frame, dst.module, dst.frame);
  fault_copy_ns_ += machine_->scheduler().now() - before;
}

void CoherentMemory::FreeCopy(Cpage& page, int module) {
  PhysicalCopy copy = page.RemoveCopy(module);
  machine_->module(module).FreeFrame(copy.frame);
  machine_->Compute(machine_->params().page_free_ns);
  ++machine_->stats().pages_freed;
  ++machine_->obs().module(module).frames_freed;
  int processor = machine_->scheduler().current() != nullptr
                      ? machine_->scheduler().current_processor()
                      : -1;
  if (processor >= 0) {
    ++machine_->obs().cpu(processor).pages_freed;
  }
  Trace(TraceEventType::kPageFree, page, processor, static_cast<uint32_t>(module));
}

bool CoherentMemory::DecideCache(Cpage& page, const FaultInfo& fault, sim::SimTime now) {
  switch (page.advice()) {
    case MemoryAdvice::kReadMostly:
      if (!fault.is_write) {
        return true;
      }
      break;  // writes to read-mostly data fall back to the policy
    case MemoryAdvice::kWriteShared:
      return false;
    case MemoryAdvice::kPrivate:
      return true;
    case MemoryAdvice::kDefault:
      break;
  }
  return policy_->ShouldCache(page, fault, now);
}

void CoherentMemory::MaybeFreeze(Cpage& page) {
  if (!protocol_->UsesFreezing()) {
    return;
  }
  bool wants_freeze =
      policy_->FreezeOnDecline() || page.advice() == MemoryAdvice::kWriteShared;
  if (!wants_freeze || page.frozen()) {
    return;
  }
  // Freezing only makes sense with a single physical copy (Section 4.2:
  // "there can only be one physical page backing a frozen Cpage").
  if (page.copies().size() > 1) {
    return;
  }
  page.SetFrozen(true);
  page.SetFreezeTime(machine_->scheduler().now());
  frozen_lock_.Acquire();
  frozen_list_.push_back(page.id());
  frozen_lock_.Release();
  ++page.stats().freezes;
  ++machine_->stats().freezes;
  int processor = machine_->scheduler().current() != nullptr
                      ? machine_->scheduler().current_processor()
                      : -1;
  Trace(TraceEventType::kFreeze, page, processor, 0);
}

void CoherentMemory::Unfreeze(Cpage& page) {
  PLAT_CHECK(page.frozen());
  page.SetFrozen(false);
  frozen_lock_.Acquire();
  auto it = std::find(frozen_list_.begin(), frozen_list_.end(), page.id());
  PLAT_CHECK(it != frozen_list_.end());
  frozen_list_.erase(it);
  frozen_lock_.Release();
  ++page.stats().thaws;
  ++machine_->stats().thaws;
  int processor = machine_->scheduler().current() != nullptr
                      ? machine_->scheduler().current_processor()
                      : -1;
  Trace(TraceEventType::kThaw, page, processor, 0);
}

}  // namespace platinum::mem
