// Streaming consumer interface for coherent-memory protocol events.
//
// A PageEventSink observes the same transition stream the bounded TraceLog
// records — faults, fills, replications, migrations, remote maps, freezes,
// thaws, shootdowns, defrost scans, pins, unbinds, page frees — but as a
// live callback with no ring-buffer bound, plus the address-space
// bind/unbind plumbing a consumer needs to attribute word accesses (which
// carry (as, vpn)) to coherent pages (which protocol events carry). The
// forensics layer in src/obs/page_trace.h is the canonical consumer.
//
// Producer cost: one pointer test per protocol transition when no sink is
// attached (CoherentMemory::Trace), nothing on the per-word access path.
#ifndef SRC_MEM_PAGE_EVENT_H_
#define SRC_MEM_PAGE_EVENT_H_

#include <cstdint>

#include "src/mem/trace.h"

namespace platinum::mem {

class PageEventSink {
 public:
  virtual ~PageEventSink() = default;

  // One protocol transition, with the same payload the TraceLog would
  // record. `event.cpage` is kTraceNoCpage for machine-wide events (defrost
  // scans); `event.processor` is -1 outside any fiber. Must not yield: the
  // callback runs inside the fault handler's critical section.
  virtual void OnPageEvent(const TraceEvent& event) = 0;

  // Address-space plumbing: (as_id, vpn) became bound to / unbound from
  // `cpage`. Not recorded in the TraceLog ring (binding is setup, not a
  // protocol transition) — unbind additionally emits a kUnbind trace event.
  virtual void OnPageBind(uint32_t as_id, uint32_t vpn, uint32_t cpage) {
    (void)as_id;
    (void)vpn;
    (void)cpage;
  }
  virtual void OnPageUnbind(uint32_t as_id, uint32_t vpn, uint32_t cpage) {
    (void)as_id;
    (void)vpn;
    (void)cpage;
  }
};

}  // namespace platinum::mem

#endif  // SRC_MEM_PAGE_EVENT_H_
