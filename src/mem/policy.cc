#include "src/mem/policy.h"

namespace platinum::mem {

bool TimestampPolicy::ShouldCache(const Cpage& page, const FaultInfo& fault, sim::SimTime now) {
  (void)fault;
  // Bounded clock skew between simulated processors can place `now` slightly
  // before the recorded invalidation; such a page is by definition hot.
  bool quiescent = !page.ever_invalidated() ||
                   (now >= page.last_invalidation() &&
                    now - page.last_invalidation() >= t1_);
  if (page.frozen()) {
    // Default PLATINUM behaviour: stay frozen until the defrost daemon thaws
    // the page. The variant thaws on any access after the t1 window.
    return thaw_on_access_ && quiescent;
  }
  return quiescent;
}

bool MigrateThenFreezePolicy::ShouldCache(const Cpage& page, const FaultInfo& fault,
                                          sim::SimTime now) {
  (void)now;
  if (page.frozen()) {
    return false;  // frozen for good
  }
  // Pages never written replicate freely.
  if (page.stats().write_faults == 0 && !fault.is_write) {
    return true;
  }
  return page.stats().migrations + page.stats().replications < max_migrations_;
}

}  // namespace platinum::mem
