// Replication policies (Section 4.2).
//
// On every coherent-memory fault with no local copy, a policy module decides
// between caching the page locally (replicate on a read miss, migrate on a
// write miss) and creating a mapping to an existing remote copy. PLATINUM's
// interim policy uses the timestamp of the most recent coherence-driven
// invalidation: pages invalidated less than t1 ago are frozen in place. The
// alternative policies here support the paper's ablation discussion
// (Section 8 contrasts Bolosky et al.'s migrate-then-freeze scheme; always-
// and never-replicate bound the design space).
#ifndef SRC_MEM_POLICY_H_
#define SRC_MEM_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/mem/cpage.h"
#include "src/sim/time.h"

namespace platinum::mem {

struct FaultInfo {
  uint32_t as_id = 0;
  uint32_t vpn = 0;
  int processor = 0;
  bool is_write = false;
};

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  // True: give the faulting processor a local copy (replicate/migrate).
  // False: resolve the fault with a mapping to an existing remote copy.
  virtual bool ShouldCache(const Cpage& page, const FaultInfo& fault, sim::SimTime now) = 0;

  // Whether a declined page should be marked frozen and handed to the defrost
  // daemon (the PLATINUM behaviour), as opposed to simply staying put.
  virtual bool FreezeOnDecline() const { return true; }

  virtual std::string_view name() const = 0;
};

// The paper's interim policy: cache unless the page was invalidated by the
// coherency protocol within the last t1. Once frozen, the default variant
// keeps creating remote mappings until the defrost daemon thaws the page;
// the thaw_on_access variant lets an access after t1 thaw it directly
// (Section 4.2 reports no significant difference between the two).
class TimestampPolicy : public ReplicationPolicy {
 public:
  explicit TimestampPolicy(sim::SimTime t1, bool thaw_on_access = false)
      : t1_(t1), thaw_on_access_(thaw_on_access) {}

  bool ShouldCache(const Cpage& page, const FaultInfo& fault, sim::SimTime now) override;
  std::string_view name() const override {
    return thaw_on_access_ ? "timestamp+thaw-on-access" : "timestamp";
  }

  sim::SimTime t1() const { return t1_; }

 private:
  const sim::SimTime t1_;
  const bool thaw_on_access_;
};

// Upper bound of the design space: always replicate/migrate, never freeze.
// Degenerates badly under fine-grain write sharing.
class AlwaysCachePolicy : public ReplicationPolicy {
 public:
  bool ShouldCache(const Cpage&, const FaultInfo&, sim::SimTime) override { return true; }
  bool FreezeOnDecline() const override { return false; }
  std::string_view name() const override { return "always-cache"; }
};

// Lower bound: the first touch places the page; every later miss uses a
// remote mapping. Approximates static placement with no data motion.
class NeverCachePolicy : public ReplicationPolicy {
 public:
  bool ShouldCache(const Cpage& page, const FaultInfo&, sim::SimTime) override {
    return page.state() == CpageState::kEmpty;  // someone must create the first copy
  }
  bool FreezeOnDecline() const override { return false; }
  std::string_view name() const override { return "never-cache"; }
};

// Bolosky/Scott/Fitzgerald-style (Section 8): read-only pages replicate
// freely, but a page that has ever been written may move only
// `max_migrations` times before being frozen in place for good.
class MigrateThenFreezePolicy : public ReplicationPolicy {
 public:
  explicit MigrateThenFreezePolicy(uint32_t max_migrations) : max_migrations_(max_migrations) {}

  bool ShouldCache(const Cpage& page, const FaultInfo& fault, sim::SimTime now) override;
  std::string_view name() const override { return "migrate-then-freeze"; }

 private:
  const uint32_t max_migrations_;
};

}  // namespace platinum::mem

#endif  // SRC_MEM_POLICY_H_
