#include "src/mem/protocol.h"

#include <memory>
#include <utility>

#include "src/base/check.h"

namespace platinum::mem {

std::unique_ptr<CoherenceProtocol> MakeProtocol(const std::string& name, sim::SimTime lease_ns,
                                                const std::string& lease_policy) {
  if (name == "directory") {
    return std::make_unique<DirectoryProtocol>();
  }
  if (name == "tardis") {
    sim::SimTime lease = lease_ns > 0 ? lease_ns : kDefaultLeaseNs;
    std::unique_ptr<LeasePolicy> policy;
    if (lease_policy == "fixed") {
      policy = std::make_unique<FixedLeasePolicy>(lease);
    } else if (lease_policy == "doubling") {
      policy = std::make_unique<DoublingLeasePolicy>(lease, lease * 16);
    } else {
      PLAT_CHECK(false) << "unknown lease policy '" << lease_policy
                        << "' (want fixed|doubling)";
    }
    return std::make_unique<TardisProtocol>(std::move(policy));
  }
  PLAT_CHECK(false) << "unknown coherence protocol '" << name << "' (want directory|tardis)";
  return nullptr;
}

}  // namespace platinum::mem
