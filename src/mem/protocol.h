// The pluggable coherence-protocol layer.
//
// A CoherenceProtocol owns the page-state transitions of the coherent-memory
// abstraction: how a read or write fault with no usable translation resolves,
// and how existing copies or write mappings are taken away when a transition
// needs them gone. CoherentMemory's fault handler, defrost scanner and advice
// paths call through this interface only; the concrete protocols are
//
//   * DirectoryProtocol — the paper's 4-state directory protocol with
//     shootdown IPIs and freeze/defrost (Sections 3.2-4.2);
//   * TardisProtocol — a timestamp/lease adaptation: per-page write
//     timestamps and per-copy read leases charged in simulated time, with
//     lease-expiry renewal on the fault path instead of invalidation
//     broadcasts (PAPERS.md: Tardis).
//
// Both protocols preserve strict single-writer/multiple-reader semantics
// over physical copies, so final memory contents are identical under either;
// only the simulated timing and the event mix differ. Each protocol carries
// its own machine-readable spec (src/mem/protocol_spec*.json, compiled and
// proved by tools/gen_protocol_spec.py); the invariant oracle, the bounded
// explorer and platlint's conformance rule are parametrized by the active
// spec via ProtocolKind.
#ifndef SRC_MEM_PROTOCOL_H_
#define SRC_MEM_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/cmap.h"
#include "src/mem/cpage.h"
#include "src/mem/protocol_spec.h"
#include "src/sim/time.h"

namespace platinum::mem {

class CoherentMemory;

// Deterministic lease-duration policy hook for timestamp protocols: decides,
// per page and access kind, how long a granted lease lasts. Pure function of
// its own state and the arguments — no wall-clock, no randomness — so runs
// stay reproducible.
class LeasePolicy {
 public:
  virtual ~LeasePolicy() = default;
  virtual const char* name() const = 0;
  // Lease duration (simulated ns) for the lease being granted on `cpage_id`.
  virtual sim::SimTime NextLease(uint32_t cpage_id, bool is_write) = 0;
};

// Every lease lasts exactly `duration_ns`.
class FixedLeasePolicy : public LeasePolicy {
 public:
  explicit FixedLeasePolicy(sim::SimTime duration_ns) : duration_ns_(duration_ns) {}
  const char* name() const override { return "fixed"; }
  sim::SimTime NextLease(uint32_t, bool) override { return duration_ns_; }

 private:
  const sim::SimTime duration_ns_;
};

// Read leases double per renewal up to a cap (read-mostly pages converge to
// long leases); any write lease resets the page back to the base duration.
class DoublingLeasePolicy : public LeasePolicy {
 public:
  DoublingLeasePolicy(sim::SimTime base_ns, sim::SimTime max_ns)
      : base_ns_(base_ns), max_ns_(max_ns) {}
  const char* name() const override { return "doubling"; }
  sim::SimTime NextLease(uint32_t cpage_id, bool is_write) override;

 private:
  const sim::SimTime base_ns_;
  const sim::SimTime max_ns_;
  std::vector<sim::SimTime> current_;  // per-cpage, grown on demand
};

class CoherenceProtocol {
 public:
  virtual ~CoherenceProtocol() = default;

  virtual const char* name() const = 0;
  virtual ProtocolKind kind() const = 0;
  // Whether this protocol ever freezes pages (and hence needs the defrost
  // daemon). The advice path skips its pin-freeze and the fault path skips
  // MaybeFreeze when false.
  virtual bool UsesFreezing() const = 0;

  // Fault resolution. On return the faulting processor holds a translation
  // permitting the access; all costs are charged to the faulting fiber.
  virtual void OnReadFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                           int processor) = 0;
  virtual void OnWriteFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                            int processor) = 0;

  // Takes the page from modified to present1: every write mapping becomes
  // read-only (shootdown round under the directory protocol, lease wait +
  // host-side scrub under Tardis) and the protocol state is updated.
  virtual void DowngradeToRead(Cpage& page, int initiator) = 0;
  // Removes every translation to the page (defrost / pin-migrate paths).
  // Leaves write_mappings at zero; does not change the protocol state.
  virtual void ReleaseAllMappings(Cpage& page, int initiator) = 0;
  // Removes every translation to the page's copies on `modules` (collapse
  // paths). Does not change the protocol state.
  virtual void ReleaseCopyMappings(Cpage& page, const std::vector<int>& modules,
                                   int initiator) = 0;

  void Attach(CoherentMemory* memory) { memory_ = memory; }

 protected:
  CoherentMemory* memory_ = nullptr;
};

// The paper's protocol: directory states driven by shootdown rounds, with
// freezing of actively write-shared pages. Implementation in
// directory_protocol.cc.
class DirectoryProtocol : public CoherenceProtocol {
 public:
  const char* name() const override { return "directory"; }
  ProtocolKind kind() const override { return ProtocolKind::kDirectory; }
  bool UsesFreezing() const override { return true; }

  void OnReadFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                   int processor) override;
  void OnWriteFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                    int processor) override;
  void DowngradeToRead(Cpage& page, int initiator) override;
  void ReleaseAllMappings(Cpage& page, int initiator) override;
  void ReleaseCopyMappings(Cpage& page, const std::vector<int>& modules,
                           int initiator) override;
};

// Timestamp/lease protocol: transitions that the directory protocol resolves
// with invalidation IPIs instead wait (in simulated time) for the victims'
// leases to expire, then reclaim the translations host-side — no messages,
// no interrupts. Implementation in tardis_protocol.cc.
class TardisProtocol : public CoherenceProtocol {
 public:
  explicit TardisProtocol(std::unique_ptr<LeasePolicy> lease_policy);

  const char* name() const override { return "tardis"; }
  ProtocolKind kind() const override { return ProtocolKind::kTardis; }
  bool UsesFreezing() const override { return false; }

  void OnReadFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                   int processor) override;
  void OnWriteFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                    int processor) override;
  void DowngradeToRead(Cpage& page, int initiator) override;
  void ReleaseAllMappings(Cpage& page, int initiator) override;
  void ReleaseCopyMappings(Cpage& page, const std::vector<int>& modules,
                           int initiator) override;

  LeasePolicy& lease_policy() { return *lease_policy_; }

 private:
  // Per-page lease state, charged entirely in simulated time.
  struct PageLease {
    sim::SimTime read_until = 0;   // latest read lease over all copies
    sim::SimTime write_until = 0;  // the writer's lease, when modified
  };
  PageLease& lease(uint32_t cpage_id);

  // Advances simulated time to the expiry of the given lease bound; the
  // fault-path replacement for a shootdown round's IPI round-trip.
  void WaitForLeaseExpiry(Cpage& page, sim::SimTime until);
  // Extends the page's aggregate read (or write) lease after a successful
  // mapping, per the lease policy.
  void GrantReadLease(Cpage& page);
  void GrantWriteLease(Cpage& page);

  std::unique_ptr<LeasePolicy> lease_policy_;
  std::vector<PageLease> leases_;  // indexed by cpage id, grown on demand
};

// Default lease duration when the caller does not override it: 50 us of
// simulated time, roughly 7x the directory protocol's shootdown round-trip,
// so lease waits and IPI costs are the same order of magnitude.
inline constexpr sim::SimTime kDefaultLeaseNs = 50'000;

// Factory keyed by the runtime protocol name ("directory" | "tardis").
// `lease_ns` <= 0 selects kDefaultLeaseNs; `lease_policy` is "fixed" or
// "doubling". Aborts on an unknown protocol or lease-policy name.
std::unique_ptr<CoherenceProtocol> MakeProtocol(const std::string& name,
                                                sim::SimTime lease_ns = 0,
                                                const std::string& lease_policy = "fixed");

}  // namespace platinum::mem

#endif  // SRC_MEM_PROTOCOL_H_
