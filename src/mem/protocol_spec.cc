#include "src/mem/protocol_spec.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"
#include "src/mem/protocol_spec.gen.h"

namespace platinum::mem {

const char* ProtocolTriggerName(ProtocolTrigger trigger) {
  int idx = static_cast<int>(trigger);
  PLAT_CHECK_GE(idx, 0);
  PLAT_CHECK_LT(idx, spec_gen::kNumTriggers);
  return spec_gen::kTriggerNames[idx];
}

bool ProtocolTriggerFromTransitionName(const char* name, ProtocolTrigger* out) {
  // NotifyTransition names predate the spec; two differ from the trigger
  // table ("read"/"write" there, "read-fault"/"write-fault"/"replicate" here).
  struct NameMap {
    const char* name;
    ProtocolTrigger trigger;
  };
  static constexpr NameMap kNames[] = {
      {"read-fault", ProtocolTrigger::kRead},   {"write-fault", ProtocolTrigger::kWrite},
      {"thaw", ProtocolTrigger::kThaw},         {"pin", ProtocolTrigger::kPin},
      {"replicate", ProtocolTrigger::kReplicateTo}, {"unbind", ProtocolTrigger::kUnbind},
  };
  for (const NameMap& entry : kNames) {
    if (std::strcmp(name, entry.name) == 0) {
      *out = entry.trigger;
      return true;
    }
  }
  return false;
}

bool ProtocolAllowsEdge(ProtocolTrigger trigger, CpageState from, CpageState to) {
  for (const spec_gen::EdgeRow& row : spec_gen::kEdges) {
    if (row.trigger == static_cast<uint8_t>(trigger) &&
        row.from == static_cast<uint8_t>(from) && row.to == static_cast<uint8_t>(to)) {
      return true;
    }
  }
  return false;
}

uint32_t ProtocolReachableStateMask() { return spec_gen::kReachableStateMask; }

const std::vector<ProtocolEdge>& ProtocolEdges() {
  static const std::vector<ProtocolEdge>* edges = [] {
    auto* out = new std::vector<ProtocolEdge>();
    for (const spec_gen::EdgeRow& row : spec_gen::kEdges) {
      out->push_back(ProtocolEdge{static_cast<ProtocolTrigger>(row.trigger),
                                  static_cast<CpageState>(row.from),
                                  static_cast<CpageState>(row.to)});
    }
    std::sort(out->begin(), out->end());
    return out;
  }();
  return *edges;
}

}  // namespace platinum::mem
