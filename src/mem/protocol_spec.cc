#include "src/mem/protocol_spec.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "src/base/check.h"
#include "src/mem/protocol_spec.gen.h"

namespace platinum::mem {

namespace {

const spec_gen::SpecView& View(ProtocolKind kind) {
  int idx = static_cast<int>(kind);
  PLAT_CHECK_GE(idx, 0);
  PLAT_CHECK_LT(idx, static_cast<int>(std::size(spec_gen::kSpecs)));
  return spec_gen::kSpecs[idx];
}

}  // namespace

const char* ProtocolKindName(ProtocolKind kind) { return View(kind).name; }

bool ProtocolKindFromName(const char* name, ProtocolKind* out) {
  for (size_t i = 0; i < std::size(spec_gen::kSpecs); ++i) {
    if (std::strcmp(name, spec_gen::kSpecs[i].name) == 0) {
      *out = static_cast<ProtocolKind>(i);
      return true;
    }
  }
  return false;
}

const char* ProtocolTriggerName(ProtocolTrigger trigger) {
  int idx = static_cast<int>(trigger);
  PLAT_CHECK_GE(idx, 0);
  PLAT_CHECK_LT(idx, spec_gen::kNumTriggers);
  return spec_gen::kTriggerNames[idx];
}

bool ProtocolTriggerFromTransitionName(const char* name, ProtocolTrigger* out) {
  // NotifyTransition names predate the spec; two differ from the trigger
  // table ("read"/"write" there, "read-fault"/"write-fault"/"replicate" here).
  struct NameMap {
    const char* name;
    ProtocolTrigger trigger;
  };
  static constexpr NameMap kNames[] = {
      {"read-fault", ProtocolTrigger::kRead},   {"write-fault", ProtocolTrigger::kWrite},
      {"thaw", ProtocolTrigger::kThaw},         {"pin", ProtocolTrigger::kPin},
      {"replicate", ProtocolTrigger::kReplicateTo}, {"unbind", ProtocolTrigger::kUnbind},
  };
  for (const NameMap& entry : kNames) {
    if (std::strcmp(name, entry.name) == 0) {
      *out = entry.trigger;
      return true;
    }
  }
  return false;
}

bool ProtocolAllowsEdge(ProtocolKind kind, ProtocolTrigger trigger, CpageState from,
                        CpageState to) {
  const spec_gen::SpecView& view = View(kind);
  for (int i = 0; i < view.num_edges; ++i) {
    const spec_gen::EdgeRow& row = view.edges[i];
    if (row.trigger == static_cast<uint8_t>(trigger) &&
        row.from == static_cast<uint8_t>(from) && row.to == static_cast<uint8_t>(to)) {
      return true;
    }
  }
  return false;
}

uint32_t ProtocolReachableStateMask(ProtocolKind kind) {
  return View(kind).reachable_state_mask;
}

const std::vector<ProtocolEdge>& ProtocolEdges(ProtocolKind kind) {
  static const auto* edges_by_kind = [] {
    auto* out = new std::vector<std::vector<ProtocolEdge>>(std::size(spec_gen::kSpecs));
    for (size_t k = 0; k < std::size(spec_gen::kSpecs); ++k) {
      const spec_gen::SpecView& view = spec_gen::kSpecs[k];
      for (int i = 0; i < view.num_edges; ++i) {
        const spec_gen::EdgeRow& row = view.edges[i];
        (*out)[k].push_back(ProtocolEdge{static_cast<ProtocolTrigger>(row.trigger),
                                         static_cast<CpageState>(row.from),
                                         static_cast<CpageState>(row.to)});
      }
      std::sort((*out)[k].begin(), (*out)[k].end());
    }
    return out;
  }();
  int idx = static_cast<int>(kind);
  PLAT_CHECK_LT(static_cast<size_t>(idx), edges_by_kind->size());
  return (*edges_by_kind)[idx];
}

}  // namespace platinum::mem
