// C++ view of the machine-readable protocol specs (protocol_spec*.json).
//
// Each coherence protocol carries a normative transition table as JSON
// (docs/PROTOCOL.md): protocol_spec.json for the 4-state directory protocol
// and protocol_spec_tardis.json for the timestamp/lease protocol.
// tools/gen_protocol_spec.py compiles them into protocol_spec.gen.h, and
// this header wraps the generated tables in typed queries parametrized by
// ProtocolKind. Three consumers share this one source of truth:
//
//   * the implementation — every Cpage::SetState site in src/mem carries a
//     `// protocol:` annotation that platlint's protocol-conformance rule
//     diffs against the specs' micro transitions;
//   * the invariant oracle (src/check/oracle) — validates every per-page
//     state change a completed transition produced against the active
//     protocol's composed event rows;
//   * the bounded explorer (src/check/explorer) — records the (trigger,
//     from, to) edges it replays and checks each against the active spec;
//     the protocol_spec ctest proves the closed 2p/3p edge set equals the
//     spec's reachable relation, per protocol.
#ifndef SRC_MEM_PROTOCOL_SPEC_H_
#define SRC_MEM_PROTOCOL_SPEC_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "src/mem/cpage.h"

namespace platinum::mem {

// The committed protocols, in the order of the generated spec registry
// (spec_gen::kSpecs) and of the `protocol` field of the spec JSONs.
enum class ProtocolKind : uint8_t {
  kDirectory = 0,
  kTardis = 1,
};

const char* ProtocolKindName(ProtocolKind kind);

// Maps a runtime protocol name ("directory" | "tardis") to its kind.
// Returns false for unknown names.
bool ProtocolKindFromName(const char* name, ProtocolKind* out);

// External events that complete a protocol transition, in the order of the
// spec's trigger table (and of CoherentMemory::NotifyTransition names).
// Both specs declare the same states and triggers — only the rows differ —
// so trigger indices are protocol-independent.
enum class ProtocolTrigger : uint8_t {
  kRead = 0,         // "read-fault"
  kWrite = 1,        // "write-fault"
  kThaw = 2,         // "thaw"
  kPin = 3,          // "pin"
  kReplicateTo = 4,  // "replicate"
  kUnbind = 5,       // "unbind"
};

const char* ProtocolTriggerName(ProtocolTrigger trigger);

// Maps a transition-hook name (the argument of NotifyTransition) to its
// trigger. Returns false for unknown names.
bool ProtocolTriggerFromTransitionName(const char* name, ProtocolTrigger* out);

// True iff `kind`'s spec allows a page observed in `from` before the trigger
// to be in `to` when the transition hook fires (self-edges included).
bool ProtocolAllowsEdge(ProtocolKind kind, ProtocolTrigger trigger, CpageState from,
                        CpageState to);

// Bit i set iff CpageState(i) appears in some allowed transition of `kind`.
uint32_t ProtocolReachableStateMask(ProtocolKind kind);

// One composed (trigger, from, to) row of a spec.
struct ProtocolEdge {
  ProtocolTrigger trigger;
  CpageState from;
  CpageState to;

  friend bool operator==(const ProtocolEdge& a, const ProtocolEdge& b) {
    return a.trigger == b.trigger && a.from == b.from && a.to == b.to;
  }
  friend bool operator<(const ProtocolEdge& a, const ProtocolEdge& b) {
    return std::tuple(a.trigger, a.from, a.to) < std::tuple(b.trigger, b.from, b.to);
  }
};

// All rows of `kind`'s spec, sorted (stable across runs; the generator emits
// them in spec order, this accessor re-sorts for set comparisons).
const std::vector<ProtocolEdge>& ProtocolEdges(ProtocolKind kind);

}  // namespace platinum::mem

#endif  // SRC_MEM_PROTOCOL_SPEC_H_
