// The NUMA shootdown mechanism (Section 3.1).
//
// Because every processor has a private Pmap per address space, a shootdown
// updates Pmaps as well as ATCs. The initiator posts a Cmap message to every
// affected address space and synchronously interrupts only the processors
// that (a) appear in the reference mask of a Cmap entry for the page — i.e.
// actually hold a translation — and (b) currently have the space active.
// Inactive processors pick the change up from the message queue when they
// next activate the space. In this simulation the initiator applies the
// structural change for every target immediately (the lazily-applying
// processor cannot touch the page before activating, so this is
// behaviour-preserving); the *cost* model follows the paper: a setup charge
// per synchronous round plus ~7 us per interrupted processor.
#include <bit>

#include "src/base/check.h"
#include "src/mem/coherent_memory.h"

namespace platinum::mem {

void CoherentMemory::RestrictCpageToRead(Cpage& page, int initiator, ShootdownRound* round) {
  for (const CpageMapper& mapper : page.mappers()) {
    Cmap& cm = cmap(mapper.as_id);
    CmapEntry& entry = cm.entry(mapper.vpn);
    uint64_t changed = 0;
    for (int p = 0; p < machine_->num_nodes(); ++p) {
      if (((entry.reference_mask >> p) & 1) == 0) {
        continue;
      }
      hw::Pmap& pmap = cm.pmap(p);
      const hw::PmapEntry& pe = pmap.entry(mapper.vpn);
      PLAT_CHECK(pe.valid) << "reference mask bit without translation";
      if (pe.rights != hw::Rights::kReadWrite) {
        continue;
      }
      pmap.Restrict(mapper.vpn, hw::Rights::kRead);
      page.DropWriteMapping();
      mmus_[p].atc().FlushPage(mapper.as_id, mapper.vpn);
      changed |= uint64_t{1} << p;
      ++round->restricted_translations;
      ++machine_->stats().mappings_restricted;
      if (p != initiator && cm.IsActive(p)) {
        round->interrupted_mask |= uint64_t{1} << p;
      }
    }
    uint64_t lazy = changed & ~cm.active_mask();
    if (changed != 0) {
      cm.PostMessage(CmapMessage{mapper.vpn, CmapMessage::Directive::kRestrictToRead, lazy});
      if (lazy != 0) {
        ++round->messages_posted;
      }
    }
  }
  PLAT_CHECK_EQ(page.write_mappings(), 0u) << "restrict left write mappings on cpage "
                                           << page.id();
}

void CoherentMemory::InvalidateMappingsToCopy(Cpage& page, int module, int initiator,
                                              ShootdownRound* round) {
  for (const CpageMapper& mapper : page.mappers()) {
    Cmap& cm = cmap(mapper.as_id);
    CmapEntry& entry = cm.entry(mapper.vpn);
    uint64_t changed = 0;
    for (int p = 0; p < machine_->num_nodes(); ++p) {
      if (((entry.reference_mask >> p) & 1) == 0) {
        continue;
      }
      hw::Pmap& pmap = cm.pmap(p);
      const hw::PmapEntry& pe = pmap.entry(mapper.vpn);
      PLAT_CHECK(pe.valid) << "reference mask bit without translation";
      if (module >= 0 && pe.module != module) {
        continue;
      }
      if (pe.rights == hw::Rights::kReadWrite) {
        page.DropWriteMapping();
      }
      pmap.Remove(mapper.vpn);
      entry.reference_mask &= ~(uint64_t{1} << p);
      mmus_[p].atc().FlushPage(mapper.as_id, mapper.vpn);
      changed |= uint64_t{1} << p;
      ++round->invalidated_translations;
      ++machine_->stats().mappings_invalidated;
      if (p != initiator && cm.IsActive(p)) {
        round->interrupted_mask |= uint64_t{1} << p;
      }
    }
    uint64_t lazy = changed & ~cm.active_mask();
    if (changed != 0) {
      cm.PostMessage(CmapMessage{mapper.vpn, CmapMessage::Directive::kInvalidate, lazy});
      if (lazy != 0) {
        ++round->messages_posted;
      }
    }
  }
}

void CoherentMemory::InvalidateAllMappings(Cpage& page, int initiator, ShootdownRound* round) {
  InvalidateMappingsToCopy(page, /*module=*/-1, initiator, round);
}

uint32_t CoherentMemory::ScrubWriteMappings(Cpage& page) {
  // The structural half of RestrictCpageToRead, used by lease protocols
  // after the write lease has expired: the writer is no longer entitled to
  // the RW translation, so it is downgraded host-side — no messages, no
  // IPIs, no interrupted processors. Only the per-translation directory
  // bookkeeping is charged.
  uint32_t scrubbed = 0;
  for (const CpageMapper& mapper : page.mappers()) {
    Cmap& cm = cmap(mapper.as_id);
    CmapEntry& entry = cm.entry(mapper.vpn);
    for (int p = 0; p < machine_->num_nodes(); ++p) {
      if (((entry.reference_mask >> p) & 1) == 0) {
        continue;
      }
      hw::Pmap& pmap = cm.pmap(p);
      const hw::PmapEntry& pe = pmap.entry(mapper.vpn);
      PLAT_CHECK(pe.valid) << "reference mask bit without translation";
      if (pe.rights != hw::Rights::kReadWrite) {
        continue;
      }
      pmap.Restrict(mapper.vpn, hw::Rights::kRead);
      page.DropWriteMapping();
      mmus_[p].atc().FlushPage(mapper.as_id, mapper.vpn);
      ++scrubbed;
      ++machine_->stats().mappings_restricted;
    }
  }
  PLAT_CHECK_EQ(page.write_mappings(), 0u) << "scrub left write mappings on cpage "
                                           << page.id();
  machine_->Compute(static_cast<sim::SimTime>(scrubbed) * machine_->params().local_read_ns);
  return scrubbed;
}

uint32_t CoherentMemory::ScrubMappingsToCopy(Cpage& page, int module) {
  // The structural half of InvalidateMappingsToCopy, after a lease wait.
  uint32_t scrubbed = 0;
  for (const CpageMapper& mapper : page.mappers()) {
    Cmap& cm = cmap(mapper.as_id);
    CmapEntry& entry = cm.entry(mapper.vpn);
    for (int p = 0; p < machine_->num_nodes(); ++p) {
      if (((entry.reference_mask >> p) & 1) == 0) {
        continue;
      }
      hw::Pmap& pmap = cm.pmap(p);
      const hw::PmapEntry& pe = pmap.entry(mapper.vpn);
      PLAT_CHECK(pe.valid) << "reference mask bit without translation";
      if (module >= 0 && pe.module != module) {
        continue;
      }
      if (pe.rights == hw::Rights::kReadWrite) {
        page.DropWriteMapping();
      }
      pmap.Remove(mapper.vpn);
      entry.reference_mask &= ~(uint64_t{1} << p);
      mmus_[p].atc().FlushPage(mapper.as_id, mapper.vpn);
      ++scrubbed;
      ++machine_->stats().mappings_invalidated;
    }
  }
  machine_->Compute(static_cast<sim::SimTime>(scrubbed) * machine_->params().local_read_ns);
  return scrubbed;
}

uint32_t CoherentMemory::ScrubAllMappings(Cpage& page) {
  return ScrubMappingsToCopy(page, /*module=*/-1);
}

void CoherentMemory::CommitShootdown(const Cpage& page, const ShootdownRound& round,
                                     int initiator) {
  const sim::MachineParams& params = machine_->params();
  if (round.interrupted_mask == 0 && round.messages_posted == 0 &&
      round.invalidated_translations == 0 && round.restricted_translations == 0) {
    return;  // nothing happened
  }
  ++machine_->stats().shootdowns;
  if (initiator >= 0) {
    ++machine_->obs().cpu(initiator).shootdowns_initiated;
  }
  Trace(TraceEventType::kShootdown, page, initiator,
        static_cast<uint32_t>(std::popcount(round.interrupted_mask)));
  if (round.interrupted_mask != 0) {
    int interrupted = std::popcount(round.interrupted_mask);
    sim::SimTime round_cost =
        params.shootdown_setup_ns +
        static_cast<sim::SimTime>(interrupted) * params.shootdown_per_processor_ns;
    machine_->Compute(round_cost);
    // Initiator-side round-trip of a synchronous round (rounds that only
    // post lazy messages cost nothing and are not recorded).
    machine_->obs().RecordLatency(obs::HistKind::kShootdown, round_cost);
    machine_->stats().ipis_sent += static_cast<uint64_t>(interrupted);
    for (int p = 0; p < machine_->num_nodes(); ++p) {
      if ((round.interrupted_mask >> p) & 1) {
        machine_->scheduler().AddInterruptCost(p, params.ipi_handler_ns);
        ++machine_->obs().cpu(p).ipis_received;
      }
    }
  }
}

}  // namespace platinum::mem
