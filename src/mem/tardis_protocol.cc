// Timestamp/lease coherence (PAPERS.md: Tardis), adapted to PLATINUM's
// physical-copy model.
//
// The directory protocol takes translations away with shootdown rounds:
// Cmap messages plus synchronous IPIs. Tardis instead charges *leases* in
// simulated time. Every successful read mapping extends the page's
// aggregate read lease, every write mapping stamps a write lease, and a
// transition that must destroy copies or downgrade the writer first waits
// (AdvanceTo on the faulting fiber) until the victims' leases have expired,
// then reclaims the translations host-side — no messages, no interrupts, no
// interrupted-processor cost. The wait is the protocol's entire
// communication cost, which is what the abl_protocol ablation measures
// against the directory's IPI bill.
//
// Strict single-writer/multiple-reader over physical copies is preserved
// exactly as in the directory protocol (the scrubs produce the same
// structural end state a shootdown round would), so final memory contents
// are identical under either protocol; only timing and the event mix
// differ. Two deliberate simplifications, both conservative:
//
//   * the read lease is an aggregate max over all copies, so a collapse
//     waits for the newest lease anywhere rather than per-victim leases;
//   * a read fault on a modified page with no local copy always downgrades
//     the writer (lease-restrict) before mapping — a Tardis read must not
//     observe a page with a live write lease. This adds the
//     (read, modified -> present1) spec row the directory protocol lacks.
//
// Tardis never freezes pages: freezing exists to batch invalidation traffic
// the lease mechanism does not generate (UsesFreezing() == false; the thaw
// trigger has no rows in protocol_spec_tardis.json).
#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/mem/coherent_memory.h"
#include "src/mem/protocol.h"

namespace platinum::mem {

sim::SimTime DoublingLeasePolicy::NextLease(uint32_t cpage_id, bool is_write) {
  if (current_.size() <= cpage_id) {
    current_.resize(cpage_id + 1, 0);
  }
  if (current_[cpage_id] == 0) {
    current_[cpage_id] = base_ns_;
  }
  if (is_write) {
    current_[cpage_id] = base_ns_;
    return base_ns_;
  }
  sim::SimTime lease = current_[cpage_id];
  current_[cpage_id] = std::min(lease * 2, max_ns_);
  return lease;
}

TardisProtocol::TardisProtocol(std::unique_ptr<LeasePolicy> lease_policy)
    : lease_policy_(std::move(lease_policy)) {
  PLAT_CHECK(lease_policy_ != nullptr);
}

TardisProtocol::PageLease& TardisProtocol::lease(uint32_t cpage_id) {
  if (leases_.size() <= cpage_id) {
    leases_.resize(cpage_id + 1);
  }
  return leases_[cpage_id];
}

void TardisProtocol::WaitForLeaseExpiry(Cpage& page, sim::SimTime until) {
  sim::Scheduler& sched = memory_->machine_->scheduler();
  sim::SimTime now = sched.now();
  if (until <= now) {
    return;
  }
  sched.AdvanceTo(until);
  memory_->machine_->stats().lease_wait_ns += until - now;
  ++page.stats().lease_waits;
}

void TardisProtocol::GrantReadLease(Cpage& page) {
  PageLease& l = lease(page.id());
  sim::SimTime now = memory_->machine_->scheduler().now();
  l.read_until =
      std::max(l.read_until, now + lease_policy_->NextLease(page.id(), /*is_write=*/false));
}

void TardisProtocol::GrantWriteLease(Cpage& page) {
  PageLease& l = lease(page.id());
  sim::SimTime now = memory_->machine_->scheduler().now();
  l.write_until = now + lease_policy_->NextLease(page.id(), /*is_write=*/true);
}

void TardisProtocol::OnReadFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                                 int processor) {
  CoherentMemory& m = *memory_;
  sim::Scheduler& sched = m.machine_->scheduler();
  const sim::MachineParams& params = m.machine_->params();

  if (page.state() == CpageState::kEmpty) {
    PhysicalCopy copy = m.InitialFill(page, processor);
    page.AddCopy(copy);
    page.SetState(CpageState::kPresent1);  // protocol: read-fill empty -> present1
    ++m.machine_->stats().initial_fills;
    ++m.machine_->obs().cpu(processor).initial_fills;
    m.Trace(TraceEventType::kFill, page, processor, static_cast<uint32_t>(copy.module));
    m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kRead);
    GrantReadLease(page);
    return;
  }

  if (page.HasCopyOn(processor)) {
    // A local copy already exists (e.g. through another address space);
    // locate it through the local inverted page table. On the writer's own
    // node this is the (read, modified -> modified) self-edge: the read
    // shares the single writable copy.
    auto probe = m.machine_->module(processor).FindFrame(page.id());
    PLAT_CHECK(probe.has_value()) << "directory says module " << processor
                                  << " backs cpage " << page.id() << " but no frame found";
    m.machine_->Compute(static_cast<sim::SimTime>(probe->probes) * params.local_read_ns);
    m.EnterMapping(cm, entry, page, vpn, processor,
                   PhysicalCopy{static_cast<int16_t>(processor), probe->frame},
                   hw::Rights::kRead);
    GrantReadLease(page);
    return;
  }

  FaultInfo info{cm.as_id(), vpn, processor, /*is_write=*/false};
  bool cache = m.DecideCache(page, info, sched.now());
  std::optional<PhysicalCopy> frame =
      cache ? m.AllocateFrame(page, processor) : std::nullopt;

  // A remote read must not run under a live write lease: downgrade the
  // writer first (wait out its lease, then scrub the write mappings).
  if (page.state() == CpageState::kModified) {
    DowngradeToRead(page, processor);
  }

  if (frame.has_value()) {
    m.CopyInto(page, *frame);
    page.AddCopy(*frame);
    page.SetState(CpageState::kPresentPlus);  // protocol: replicate present1|present+ -> present+
    ++page.stats().replications;
    ++m.machine_->stats().replications;
    ++m.machine_->obs().cpu(processor).replications;
    m.Trace(TraceEventType::kReplicate, page, processor, static_cast<uint32_t>(frame->module));
    m.EnterMapping(cm, entry, page, vpn, processor, *frame, hw::Rights::kRead);
    GrantReadLease(page);
    return;
  }

  // Remote mapping to an existing copy.
  const PhysicalCopy& copy = page.PrimaryCopy();
  m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kRead);
  ++page.stats().remote_maps;
  ++m.machine_->stats().remote_maps;
  ++m.machine_->obs().cpu(processor).remote_maps;
  m.Trace(TraceEventType::kRemoteMap, page, processor, static_cast<uint32_t>(copy.module));
  GrantReadLease(page);
}

void TardisProtocol::OnWriteFault(Cmap& cm, CmapEntry& entry, Cpage& page, uint32_t vpn,
                                  int processor) {
  CoherentMemory& m = *memory_;
  sim::Scheduler& sched = m.machine_->scheduler();
  const sim::MachineParams& params = m.machine_->params();

  if (page.state() == CpageState::kEmpty) {
    PhysicalCopy copy = m.InitialFill(page, processor);
    page.AddCopy(copy);
    page.SetState(CpageState::kModified);  // protocol: write-fill empty -> modified
    ++m.machine_->stats().initial_fills;
    ++m.machine_->obs().cpu(processor).initial_fills;
    m.Trace(TraceEventType::kFill, page, processor, static_cast<uint32_t>(copy.module));
    m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kReadWrite);
    GrantWriteLease(page);
    return;
  }

  if (page.HasCopyOn(processor)) {
    auto probe = m.machine_->module(processor).FindFrame(page.id());
    PLAT_CHECK(probe.has_value());
    m.machine_->Compute(static_cast<sim::SimTime>(probe->probes) * params.local_read_ns);
    PhysicalCopy local{static_cast<int16_t>(processor), probe->frame};

    if (page.state() == CpageState::kPresentPlus) {
      // present+ -> present1: wait out the readers' leases, then reclaim the
      // remote copies host-side. Like the directory's collapse this is
      // coherence interference the replication policy should know about.
      std::vector<int> victims;
      for (const PhysicalCopy& copy : page.copies()) {
        if (copy.module != processor) {
          victims.push_back(copy.module);
        }
      }
      ReleaseCopyMappings(page, victims, processor);
      for (int module : victims) {
        m.FreeCopy(page, module);
      }
      page.RecordInvalidation(sched.now());
      ++page.stats().invalidation_rounds;
      page.SetState(CpageState::kPresent1);  // protocol: lease-collapse present+ -> present1
    }
    // present1 -> modified needs no wait: the readers keep mapping the one
    // surviving physical copy, exactly as under the directory protocol.
    m.EnterMapping(cm, entry, page, vpn, processor, local, hw::Rights::kReadWrite);
    page.SetState(CpageState::kModified);  // protocol: upgrade present1|modified -> modified
    GrantWriteLease(page);
    return;
  }

  // No local copy: migrate or map the remote copy for writing.
  FaultInfo info{cm.as_id(), vpn, processor, /*is_write=*/true};
  bool cache = m.DecideCache(page, info, sched.now());
  std::optional<PhysicalCopy> frame =
      cache ? m.AllocateFrame(page, processor) : std::nullopt;

  if (frame.has_value()) {
    // Migrate: wait for every lease on the page (reads and write), scrub all
    // translations, block-transfer the data, reclaim the old frames.
    const PageLease& l = lease(page.id());
    WaitForLeaseExpiry(page, std::max(l.read_until, l.write_until));
    uint32_t scrubbed = m.ScrubAllMappings(page);
    if (scrubbed > 0) {
      m.Trace(TraceEventType::kLeaseExpire, page, processor, scrubbed);
    }
    std::vector<int> victims;
    for (const PhysicalCopy& copy : page.copies()) {
      victims.push_back(copy.module);
    }
    m.CopyInto(page, *frame);
    for (int module : victims) {
      m.FreeCopy(page, module);
    }
    if (scrubbed > 0) {
      // Someone else lost a translation: interprocessor interference the
      // replication policy should know about.
      page.RecordInvalidation(sched.now());
      ++page.stats().invalidation_rounds;
    }
    page.AddCopy(*frame);
    // protocol: migrate present1|present+|modified -> modified
    page.SetState(CpageState::kModified);
    ++page.stats().migrations;
    ++m.machine_->stats().migrations;
    ++m.machine_->obs().cpu(processor).migrations;
    m.Trace(TraceEventType::kMigrate, page, processor, static_cast<uint32_t>(frame->module));
    m.EnterMapping(cm, entry, page, vpn, processor, *frame, hw::Rights::kReadWrite);
    GrantWriteLease(page);
    return;
  }

  // Remote write mapping. Writes require a single physical copy, so a
  // replicated page first collapses to one.
  if (page.state() == CpageState::kPresentPlus) {
    const PhysicalCopy keep = page.PrimaryCopy();
    std::vector<int> victims;
    for (const PhysicalCopy& copy : page.copies()) {
      if (copy.module != keep.module) {
        victims.push_back(copy.module);
      }
    }
    WaitForLeaseExpiry(page, lease(page.id()).read_until);
    uint32_t scrubbed = 0;
    for (int module : victims) {
      scrubbed += m.ScrubMappingsToCopy(page, module);
    }
    if (scrubbed > 0) {
      m.Trace(TraceEventType::kLeaseExpire, page, processor, scrubbed);
    }
    for (int module : victims) {
      m.FreeCopy(page, module);
    }
    if (scrubbed > 0) {
      page.RecordInvalidation(sched.now());
      ++page.stats().invalidation_rounds;
    }
    page.SetState(CpageState::kPresent1);  // protocol: lease-collapse present+ -> present1
  }
  const PhysicalCopy& copy = page.PrimaryCopy();
  m.EnterMapping(cm, entry, page, vpn, processor, copy, hw::Rights::kReadWrite);
  page.SetState(CpageState::kModified);  // protocol: upgrade present1|modified -> modified
  ++page.stats().remote_maps;
  ++m.machine_->stats().remote_maps;
  ++m.machine_->obs().cpu(processor).remote_maps;
  m.Trace(TraceEventType::kRemoteMap, page, processor, static_cast<uint32_t>(copy.module));
  GrantWriteLease(page);
}

void TardisProtocol::DowngradeToRead(Cpage& page, int initiator) {
  CoherentMemory& m = *memory_;
  WaitForLeaseExpiry(page, lease(page.id()).write_until);
  uint32_t scrubbed = m.ScrubWriteMappings(page);
  if (scrubbed > 0) {
    m.Trace(TraceEventType::kLeaseExpire, page, initiator, scrubbed);
  }
  page.SetState(CpageState::kPresent1);  // protocol: lease-restrict modified -> present1
}

void TardisProtocol::ReleaseAllMappings(Cpage& page, int initiator) {
  CoherentMemory& m = *memory_;
  const PageLease& l = lease(page.id());
  WaitForLeaseExpiry(page, std::max(l.read_until, l.write_until));
  uint32_t scrubbed = m.ScrubAllMappings(page);
  if (scrubbed > 0) {
    m.Trace(TraceEventType::kLeaseExpire, page, initiator, scrubbed);
  }
}

void TardisProtocol::ReleaseCopyMappings(Cpage& page, const std::vector<int>& modules,
                                         int initiator) {
  CoherentMemory& m = *memory_;
  // Victim copies of a collapse are read copies: the read lease bounds them.
  WaitForLeaseExpiry(page, lease(page.id()).read_until);
  uint32_t scrubbed = 0;
  for (int module : modules) {
    scrubbed += m.ScrubMappingsToCopy(page, module);
  }
  if (scrubbed > 0) {
    m.Trace(TraceEventType::kLeaseExpire, page, initiator, scrubbed);
  }
}

}  // namespace platinum::mem
