#include "src/mem/trace.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace platinum::mem {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFault:
      return "fault";
    case TraceEventType::kFill:
      return "fill";
    case TraceEventType::kReplicate:
      return "replicate";
    case TraceEventType::kMigrate:
      return "migrate";
    case TraceEventType::kRemoteMap:
      return "remote-map";
    case TraceEventType::kFreeze:
      return "freeze";
    case TraceEventType::kThaw:
      return "thaw";
    case TraceEventType::kShootdown:
      return "shootdown";
    case TraceEventType::kDefrostScan:
      return "defrost-scan";
    case TraceEventType::kPageFree:
      return "page-free";
    case TraceEventType::kPin:
      return "pin";
    case TraceEventType::kUnbind:
      return "unbind";
    case TraceEventType::kLeaseExpire:
      return "lease-expire";
  }
  return "?";
}

TraceLog::TraceLog(size_t capacity) : buffer_(capacity) {}

void TraceLog::Record(const TraceEvent& event) {
  if (!buffer_.empty()) {
    buffer_[recorded_ % buffer_.size()] = event;
  }
  ++recorded_;
}

void TraceLog::Record(sim::SimTime time, TraceEventType type, uint32_t cpage, int processor,
                      uint32_t detail, uint32_t thread) {
  Record(TraceEvent{time, type, cpage, static_cast<int16_t>(processor), detail, thread});
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::vector<TraceEvent> events;
  if (buffer_.empty()) {
    return events;
  }
  uint64_t count = recorded_ < buffer_.size() ? recorded_ : buffer_.size();
  events.reserve(count);
  uint64_t first = recorded_ - count;
  for (uint64_t i = 0; i < count; ++i) {
    events.push_back(buffer_[(first + i) % buffer_.size()]);
  }
  return events;
}

uint64_t TraceLog::dropped() const {
  return recorded_ > buffer_.size() ? recorded_ - buffer_.size() : 0;
}

std::string TraceLog::ToString(size_t last) const {
  std::vector<TraceEvent> events = Snapshot();
  size_t first = events.size() > last ? events.size() - last : 0;
  std::ostringstream out;
  char line[128];
  for (size_t i = first; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.cpage == kTraceNoCpage) {
      std::snprintf(line, sizeof(line),
                    "%12.3f ms  cpu%-3d %-12s detail=%-6u thread=%u\n",
                    sim::ToMilliseconds(e.time), e.processor, TraceEventTypeName(e.type),
                    e.detail, e.thread);
    } else {
      std::snprintf(line, sizeof(line),
                    "%12.3f ms  cpu%-3d %-12s cpage=%-6" PRIu32 " detail=%-6u thread=%u\n",
                    sim::ToMilliseconds(e.time), e.processor, TraceEventTypeName(e.type),
                    e.cpage, e.detail, e.thread);
    }
    out << line;
  }
  return out.str();
}

}  // namespace platinum::mem
