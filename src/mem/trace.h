// Kernel instrumentation: a bounded trace of coherent-memory events.
//
// Section 1.1/9: "we are also adding an instrumentation interface to the
// kernel to help interpret its behavior... useful to application
// programmers, compiler writers, and system implementors." The trace log is
// a ring buffer of protocol events (faults, replications, migrations,
// freezes, shootdowns, defrost scans, page frees) with virtual timestamps;
// it is the machine-readable companion of the post-mortem report in
// src/kernel/report.h and feeds the Chrome/Perfetto exporter in
// src/obs/export.h.
#ifndef SRC_MEM_TRACE_H_
#define SRC_MEM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace platinum::mem {

enum class TraceEventType : uint8_t {
  kFault,        // detail: 0 = read, 1 = write
  kFill,         // first physical copy created
  kReplicate,    // detail: module holding the new copy
  kMigrate,      // detail: destination module
  kRemoteMap,    // detail: module mapped
  kFreeze,
  kThaw,
  kShootdown,    // detail: processors interrupted
  kDefrostScan,  // defrost-daemon pass; detail: pages thawed
  kPageFree,     // physical copy reclaimed; detail: module freed
  kPin,          // explicit PinTo placement; detail: target module
  kUnbind,       // (as, vpn) binding removed; detail: address-space id
  kLeaseExpire,  // lease protocol reclaimed translations after a lease wait;
                 // detail: translations reclaimed. NOT an invalidation IPI —
                 // forensics must not count it as a shootdown.
};

// Named via a switch with no default: adding an enumerator without a name
// fails the build (-Wswitch) instead of silently printing "?".
const char* TraceEventTypeName(TraceEventType type);

// Marker for events not tied to a coherent page (e.g. defrost scans).
inline constexpr uint32_t kTraceNoCpage = UINT32_MAX;

struct TraceEvent {
  sim::SimTime time = 0;
  TraceEventType type = TraceEventType::kFault;
  uint32_t cpage = 0;
  int16_t processor = -1;
  uint32_t detail = 0;
  // Fiber id of the thread that caused the event (0 outside any fiber).
  uint32_t thread = 0;
};

// Fixed-capacity ring buffer; old events are dropped, never reallocated. A
// capacity of 0 is a valid "count only" log: every event is recorded into
// recorded()/dropped() but none is retained.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity);

  void Record(const TraceEvent& event);
  void Record(sim::SimTime time, TraceEventType type, uint32_t cpage, int processor,
              uint32_t detail, uint32_t thread = 0);

  size_t capacity() const { return buffer_.size(); }
  // Events currently retained, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const;

  // Human-readable dump of the most recent `last` events (all retained
  // events when `last` exceeds the retained count).
  std::string ToString(size_t last = 32) const;

 private:
  std::vector<TraceEvent> buffer_;
  uint64_t recorded_ = 0;
};

}  // namespace platinum::mem

#endif  // SRC_MEM_TRACE_H_
