#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/obs/json.h"
#include "src/obs/observability.h"
#include "src/obs/page_trace.h"
#include "src/obs/timeseries.h"

namespace platinum::obs {

namespace {

double ToTraceUs(sim::SimTime ns) { return static_cast<double>(ns) / 1000.0; }

struct TimedFragment {
  sim::SimTime ts;
  uint64_t seq;
  std::string json;
  bool operator<(const TimedFragment& other) const {
    return ts != other.ts ? ts < other.ts : seq < other.seq;
  }
};

// Track ids: processors use their own number; kernel-context events (no
// fiber) and phases get dedicated rows past the processor range.
int TidOf(int processor, int num_nodes) { return processor >= 0 ? processor : num_nodes + 1; }

std::string ThreadNameMetadata(int tid, const std::string& name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ph").Value("M");
  w.Key("pid").Value(0);
  w.Key("tid").Value(tid);
  w.Key("name").Value("thread_name");
  w.Key("args").BeginObject();
  w.Key("name").Value(name);
  w.EndObject();
  w.EndObject();
  return w.str();
}

void HistogramJson(JsonWriter& w, const LatencyHistogram& h) {
  w.BeginObject();
  w.Key("count").Value(h.count());
  w.Key("sum_ns").Value(h.sum());
  w.Key("min_ns").Value(h.min());
  w.Key("max_ns").Value(h.max());
  w.Key("mean_ns").Value(h.Mean());
  w.Key("p50_ns").Value(h.Percentile(50));
  w.Key("p90_ns").Value(h.Percentile(90));
  w.Key("p99_ns").Value(h.Percentile(99));
  w.Key("buckets").BeginArray();
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    uint64_t c = h.buckets()[static_cast<size_t>(b)];
    if (c == 0) {
      continue;
    }
    w.BeginObject();
    w.Key("lo_ns").Value(LatencyHistogram::BucketLower(b));
    w.Key("hi_ns").Value(LatencyHistogram::BucketUpper(b));
    w.Key("count").Value(c);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void MachineStatsJson(JsonWriter& w, const sim::MachineStats& s) {
  w.BeginObject();
  w.Key("local_reads").Value(s.local_reads);
  w.Key("local_writes").Value(s.local_writes);
  w.Key("remote_reads").Value(s.remote_reads);
  w.Key("remote_writes").Value(s.remote_writes);
  w.Key("atc_hits").Value(s.atc_hits);
  w.Key("atc_misses").Value(s.atc_misses);
  w.Key("faults").Value(s.faults);
  w.Key("read_faults").Value(s.read_faults);
  w.Key("write_faults").Value(s.write_faults);
  w.Key("replications").Value(s.replications);
  w.Key("migrations").Value(s.migrations);
  w.Key("remote_maps").Value(s.remote_maps);
  w.Key("initial_fills").Value(s.initial_fills);
  w.Key("freezes").Value(s.freezes);
  w.Key("thaws").Value(s.thaws);
  w.Key("shootdowns").Value(s.shootdowns);
  w.Key("ipis_sent").Value(s.ipis_sent);
  w.Key("mappings_invalidated").Value(s.mappings_invalidated);
  w.Key("mappings_restricted").Value(s.mappings_restricted);
  w.Key("pages_freed").Value(s.pages_freed);
  w.Key("block_transfers").Value(s.block_transfers);
  w.Key("block_words_copied").Value(s.block_words_copied);
  w.Key("module_wait_ns").Value(s.module_wait_ns);
  w.Key("fault_handler_wait_ns").Value(s.fault_handler_wait_ns);
  w.EndObject();
}

}  // namespace

std::string ExportChromeTrace(const sim::Machine& machine, const mem::TraceLog* trace,
                              const EpochSampler* sampler) {
  const Observability& obs = machine.obs();
  int num_nodes = machine.num_nodes();
  std::vector<TimedFragment> fragments;
  uint64_t seq = 0;

  if (trace != nullptr) {
    for (const mem::TraceEvent& e : trace->Snapshot()) {
      JsonWriter w;
      w.BeginObject();
      w.Key("name").Value(mem::TraceEventTypeName(e.type));
      w.Key("cat").Value("protocol");
      w.Key("ph").Value("i");
      w.Key("s").Value("t");
      w.Key("ts").Value(ToTraceUs(e.time));
      w.Key("pid").Value(0);
      w.Key("tid").Value(TidOf(e.processor, num_nodes));
      w.Key("args").BeginObject();
      if (e.cpage != mem::kTraceNoCpage) {
        w.Key("cpage").Value(static_cast<uint64_t>(e.cpage));
      }
      w.Key("detail").Value(static_cast<uint64_t>(e.detail));
      w.Key("thread").Value(static_cast<uint64_t>(e.thread));
      w.EndObject();
      w.EndObject();
      fragments.push_back(TimedFragment{e.time, seq++, w.str()});
    }
  }

  for (const Span& span : obs.spans()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("name").Value(span.name);
    w.Key("cat").Value("span");
    w.Key("ph").Value("X");
    w.Key("ts").Value(ToTraceUs(span.begin));
    w.Key("dur").Value(ToTraceUs(span.end - span.begin));
    w.Key("pid").Value(0);
    w.Key("tid").Value(TidOf(span.processor, num_nodes));
    w.Key("args").BeginObject();
    w.Key("thread").Value(static_cast<uint64_t>(span.thread));
    w.EndObject();
    w.EndObject();
    fragments.push_back(TimedFragment{span.begin, seq++, w.str()});
  }

  for (const Phase& phase : obs.phases()) {
    sim::SimTime end = phase.open ? machine.scheduler().global_now() : phase.end;
    JsonWriter w;
    w.BeginObject();
    w.Key("name").Value(phase.name);
    w.Key("cat").Value("phase");
    w.Key("ph").Value("X");
    w.Key("ts").Value(ToTraceUs(phase.begin));
    w.Key("dur").Value(ToTraceUs(end - phase.begin));
    w.Key("pid").Value(0);
    w.Key("tid").Value(num_nodes);
    w.Key("args").BeginObject();
    w.Key("faults").Value(phase.delta.faults);
    w.Key("replications").Value(phase.delta.replications);
    w.Key("migrations").Value(phase.delta.migrations);
    w.Key("shootdowns").Value(phase.delta.shootdowns);
    w.EndObject();
    w.EndObject();
    fragments.push_back(TimedFragment{phase.begin, seq++, w.str()});
  }

  if (sampler != nullptr) {
    // Per-epoch protocol counters as Perfetto counter tracks: each "ph":"C"
    // event plots the delta for the epoch ending at its timestamp.
    const EpochSampler::Sample* prev = nullptr;
    for (const EpochSampler::Sample& s : sampler->samples()) {
      sim::MachineStats base;
      if (prev != nullptr) {
        base = prev->stats;
      }
      sim::MachineStats d = s.stats - base;
      JsonWriter w;
      w.BeginObject();
      w.Key("name").Value("protocol/epoch");
      w.Key("ph").Value("C");
      w.Key("ts").Value(ToTraceUs(s.end_ns));
      w.Key("pid").Value(0);
      w.Key("args").BeginObject();
      w.Key("faults").Value(d.faults);
      w.Key("replications").Value(d.replications);
      w.Key("migrations").Value(d.migrations);
      w.Key("remote_maps").Value(d.remote_maps);
      w.EndObject();
      w.EndObject();
      fragments.push_back(TimedFragment{s.end_ns, seq++, w.str()});

      JsonWriter f;
      f.BeginObject();
      f.Key("name").Value("freeze/epoch");
      f.Key("ph").Value("C");
      f.Key("ts").Value(ToTraceUs(s.end_ns));
      f.Key("pid").Value(0);
      f.Key("args").BeginObject();
      f.Key("freezes").Value(d.freezes);
      f.Key("thaws").Value(d.thaws);
      f.Key("shootdowns").Value(d.shootdowns);
      f.EndObject();
      f.EndObject();
      fragments.push_back(TimedFragment{s.end_ns, seq++, f.str()});
      prev = &s;
    }
  }

  // Viewers expect events sorted by timestamp. The TraceLog is recorded in
  // per-fiber clock order, which may run ahead of other fibers by up to the
  // scheduler quantum, so sorting is required, not cosmetic.
  std::stable_sort(fragments.begin(), fragments.end());

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int t = 0; t < num_nodes; ++t) {
    out += first ? "" : ",";
    out += ThreadNameMetadata(t, "cpu" + std::to_string(t));
    first = false;
  }
  out += ",";
  out += ThreadNameMetadata(num_nodes, "phases");
  out += ",";
  out += ThreadNameMetadata(num_nodes + 1, "kernel");
  for (const TimedFragment& fragment : fragments) {
    out += ",";
    out += fragment.json;
  }
  out += "]}";
  return out;
}

std::string ExportStatsJson(const sim::Machine& machine, const kernel::MemoryReport* report,
                            const TelemetrySummary* telemetry) {
  const Observability& obs = machine.obs();
  JsonWriter w;
  w.BeginObject();
  w.Key("sim_time_ns").Value(machine.scheduler().global_now());
  w.Key("num_processors").Value(machine.num_nodes());

  w.Key("machine");
  MachineStatsJson(w, machine.stats());

  w.Key("per_processor").BeginArray();
  for (int p = 0; p < machine.num_nodes(); ++p) {
    const ProcessorCounters& c = obs.cpu(p);
    w.BeginObject();
    w.Key("processor").Value(p);
    w.Key("faults").Value(c.faults);
    w.Key("read_faults").Value(c.read_faults);
    w.Key("write_faults").Value(c.write_faults);
    w.Key("initial_fills").Value(c.initial_fills);
    w.Key("replications").Value(c.replications);
    w.Key("migrations").Value(c.migrations);
    w.Key("remote_maps").Value(c.remote_maps);
    w.Key("shootdowns_initiated").Value(c.shootdowns_initiated);
    w.Key("ipis_received").Value(c.ipis_received);
    w.Key("local_refs").Value(c.local_refs);
    w.Key("remote_refs").Value(c.remote_refs);
    w.Key("pages_freed").Value(c.pages_freed);
    w.EndObject();
  }
  w.EndArray();

  w.Key("per_module").BeginArray();
  for (int m = 0; m < machine.num_nodes(); ++m) {
    const ModuleCounters& c = obs.module(m);
    w.BeginObject();
    w.Key("module").Value(m);
    w.Key("references_served").Value(c.references_served);
    w.Key("block_transfers_in").Value(c.block_transfers_in);
    w.Key("block_transfers_out").Value(c.block_transfers_out);
    w.Key("frames_allocated").Value(c.frames_allocated);
    w.Key("frames_freed").Value(c.frames_freed);
    w.Key("queue_wait_ns").Value(c.queue_wait_ns);
    w.EndObject();
  }
  w.EndArray();

  w.Key("histograms").BeginObject();
  for (int k = 0; k < kNumHistKinds; ++k) {
    w.Key(HistKindName(static_cast<HistKind>(k)));
    HistogramJson(w, obs.hist(static_cast<HistKind>(k)));
  }
  w.EndObject();

  w.Key("phases").BeginArray();
  for (const Phase& phase : obs.phases()) {
    w.BeginObject();
    w.Key("name").Value(phase.name);
    w.Key("begin_ns").Value(phase.begin);
    w.Key("end_ns").Value(phase.open ? machine.scheduler().global_now() : phase.end);
    w.Key("open").Value(phase.open);
    w.Key("delta");
    MachineStatsJson(w, phase.delta);
    w.Key("hist_delta").BeginObject();
    for (int k = 0; k < kNumHistKinds; ++k) {
      const Phase::HistDelta& d = phase.hist_delta[static_cast<size_t>(k)];
      w.Key(HistKindName(static_cast<HistKind>(k))).BeginObject();
      w.Key("count").Value(d.count);
      w.Key("sum_ns").Value(d.sum);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("spans_dropped").Value(obs.spans_dropped());

  if (telemetry != nullptr && (telemetry->page_trace != nullptr || telemetry->sampler != nullptr)) {
    // Bound/drop accounting for the forensics tier, mirroring spans_dropped:
    // any truncation in the page-event ring, the rollup table, or the
    // time-series is visible here even if the side documents are discarded.
    w.Key("telemetry").BeginObject();
    if (telemetry->page_trace != nullptr) {
      const PageTrace& pt = *telemetry->page_trace;
      w.Key("page_events_seen").Value(pt.events_seen());
      w.Key("page_accesses_seen").Value(pt.accesses_seen());
      w.Key("pages_tracked").Value(static_cast<uint64_t>(pt.pages_tracked()));
      w.Key("page_rollups_dropped").Value(pt.rollups_dropped());
      w.Key("page_ring_recorded").Value(pt.ring().recorded());
      w.Key("page_ring_dropped").Value(pt.ring().dropped());
    }
    if (telemetry->sampler != nullptr) {
      w.Key("timeseries_epoch_ns").Value(telemetry->sampler->epoch_ns());
      w.Key("timeseries_samples").Value(static_cast<uint64_t>(telemetry->sampler->samples().size()));
      w.Key("timeseries_dropped").Value(telemetry->sampler->samples_dropped());
    }
    w.EndObject();
  }
  if (telemetry != nullptr && telemetry->serving_json != nullptr) {
    w.Key("serving").Raw(*telemetry->serving_json);
  }

  if (report != nullptr) {
    w.Key("report").BeginObject();
    w.Key("frozen_pages").Value(static_cast<uint64_t>(report->frozen_pages));
    w.Key("pages_ever_frozen").Value(static_cast<uint64_t>(report->pages_ever_frozen));
    w.Key("pages").BeginArray();
    for (const kernel::CpageReportEntry& e : report->pages) {
      w.BeginObject();
      w.Key("cpage").Value(static_cast<uint64_t>(e.cpage_id));
      w.Key("state").Value(mem::CpageStateName(e.state));
      w.Key("frozen").Value(e.frozen_now);
      w.Key("faults").Value(e.stats.faults);
      w.Key("read_faults").Value(e.stats.read_faults);
      w.Key("write_faults").Value(e.stats.write_faults);
      w.Key("replications").Value(e.stats.replications);
      w.Key("migrations").Value(e.stats.migrations);
      w.Key("remote_maps").Value(e.stats.remote_maps);
      w.Key("invalidation_rounds").Value(e.stats.invalidation_rounds);
      w.Key("freezes").Value(e.stats.freezes);
      w.Key("thaws").Value(e.stats.thaws);
      w.Key("handler_waits").Value(e.stats.handler_waits);
      w.Key("handler_wait_ns").Value(e.stats.handler_wait_ns);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  w.EndObject();
  PLAT_CHECK_EQ(w.depth(), 0);
  return w.str();
}

void WriteFileOrDie(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PLAT_CHECK(f != nullptr) << "cannot open " << path << " for writing";
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  PLAT_CHECK_EQ(written, text.size()) << "short write to " << path;
  PLAT_CHECK_EQ(std::fclose(f), 0);
}

}  // namespace platinum::obs
