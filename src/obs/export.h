// Machine-readable exporters for the instrumentation subsystem.
//
// Two documents:
//   * ExportChromeTrace — the Chrome/Perfetto trace-event JSON format
//     (load in https://ui.perfetto.dev or chrome://tracing). Protocol events
//     from the TraceLog become instant events on the initiating processor's
//     track; ObsScope spans and PhaseMarker phases become complete events.
//     Events are sorted by timestamp, as the viewers expect.
//   * ExportStatsJson — MachineStats, the per-processor / per-module counter
//     breakdowns, latency histograms with percentiles, phases, and
//     (optionally) the post-mortem MemoryReport, as one JSON object.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>

#include "src/kernel/report.h"
#include "src/mem/trace.h"
#include "src/sim/machine.h"

namespace platinum::obs {

class EpochSampler;
class PageTrace;

// The forensics-tier collectors attached to a run, if any. Passed to the
// exporters so the stats JSON can carry their drop counters (truncation is
// never silent) and the Chrome trace can carry counter tracks.
struct TelemetrySummary {
  const PageTrace* page_trace = nullptr;
  const EpochSampler* sampler = nullptr;
  // A pre-rendered "platinum-serving-v1" block (src/load/driver.h), embedded
  // verbatim under "serving" when the run was a serving workload.
  const std::string* serving_json = nullptr;
};

// `trace` may be null (spans and phases alone still make a useful trace).
// With a sampler attached, its epochs additionally become Perfetto counter
// tracks ("ph":"C") so fault storms and freeze waves are visible over
// simulated time.
std::string ExportChromeTrace(const sim::Machine& machine, const mem::TraceLog* trace,
                              const EpochSampler* sampler = nullptr);

// `report` and `telemetry` may be null.
std::string ExportStatsJson(const sim::Machine& machine, const kernel::MemoryReport* report,
                            const TelemetrySummary* telemetry = nullptr);

// Writes `text` to `path`; aborts the process on I/O failure.
void WriteFileOrDie(const std::string& path, const std::string& text);

}  // namespace platinum::obs

#endif  // SRC_OBS_EXPORT_H_
