// Machine-readable exporters for the instrumentation subsystem.
//
// Two documents:
//   * ExportChromeTrace — the Chrome/Perfetto trace-event JSON format
//     (load in https://ui.perfetto.dev or chrome://tracing). Protocol events
//     from the TraceLog become instant events on the initiating processor's
//     track; ObsScope spans and PhaseMarker phases become complete events.
//     Events are sorted by timestamp, as the viewers expect.
//   * ExportStatsJson — MachineStats, the per-processor / per-module counter
//     breakdowns, latency histograms with percentiles, phases, and
//     (optionally) the post-mortem MemoryReport, as one JSON object.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>

#include "src/kernel/report.h"
#include "src/mem/trace.h"
#include "src/sim/machine.h"

namespace platinum::obs {

// `trace` may be null (spans and phases alone still make a useful trace).
std::string ExportChromeTrace(const sim::Machine& machine, const mem::TraceLog* trace);

// `report` may be null.
std::string ExportStatsJson(const sim::Machine& machine, const kernel::MemoryReport* report);

// Writes `text` to `path`; aborts the process on I/O failure.
void WriteFileOrDie(const std::string& path, const std::string& text);

}  // namespace platinum::obs

#endif  // SRC_OBS_EXPORT_H_
