#include "src/obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace platinum::obs {

int LatencyHistogram::BucketIndex(sim::SimTime value_ns) {
  if (value_ns == 0) {
    return 0;
  }
  int b = std::bit_width(value_ns);
  return b < kBuckets ? b : kBuckets - 1;
}

sim::SimTime LatencyHistogram::BucketLower(int b) {
  if (b <= 0) {
    return 0;
  }
  return sim::SimTime{1} << (b - 1);
}

sim::SimTime LatencyHistogram::BucketUpper(int b) {
  if (b <= 0) {
    return 0;
  }
  if (b >= kBuckets - 1) {
    return ~sim::SimTime{0};
  }
  return (sim::SimTime{1} << b) - 1;
}

void LatencyHistogram::Record(sim::SimTime value_ns) {
  ++buckets_[static_cast<size_t>(BucketIndex(value_ns))];
  if (count_ == 0 || value_ns < min_) {
    min_ = value_ns;
  }
  if (value_ns > max_) {
    max_ = value_ns;
  }
  sum_ += value_ns;
  ++count_;
}

double LatencyHistogram::Mean() const {
  return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

sim::SimTime LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);

  uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[static_cast<size_t>(b)] == 0) {
      continue;
    }
    uint64_t in_bucket = buckets_[static_cast<size_t>(b)];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    double lo = static_cast<double>(BucketLower(b));
    double hi = static_cast<double>(BucketUpper(b));
    double pos = static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    auto estimate = static_cast<sim::SimTime>(lo + (hi - lo) * pos);
    return std::clamp(estimate, min(), max());
  }
  return max_;
}

LatencyHistogram LatencyHistogram::Since(const LatencyHistogram& b) const {
  LatencyHistogram d = *this;
  d.count_ -= b.count_;
  d.sum_ -= b.sum_;
  for (int i = 0; i < kBuckets; ++i) {
    d.buckets_[static_cast<size_t>(i)] -= b.buckets_[static_cast<size_t>(i)];
  }
  // min/max cannot be subtracted; keep the totals' bounds as an over-estimate.
  return d;
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "count %llu, mean %.1f us, p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us\n",
                static_cast<unsigned long long>(count_), Mean() / 1000.0,
                sim::ToMicroseconds(Percentile(50)), sim::ToMicroseconds(Percentile(90)),
                sim::ToMicroseconds(Percentile(99)), sim::ToMicroseconds(max_));
  out << line;
  uint64_t peak = 0;
  for (uint64_t c : buckets_) {
    peak = std::max(peak, c);
  }
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t c = buckets_[static_cast<size_t>(b)];
    if (c == 0) {
      continue;
    }
    int bar = peak > 0 ? static_cast<int>(c * 40 / peak) : 0;
    std::snprintf(line, sizeof(line), "  [%11.1f us, %11.1f us] %10llu %.*s\n",
                  sim::ToMicroseconds(BucketLower(b)),
                  b >= kBuckets - 1 ? 1e12 : sim::ToMicroseconds(BucketUpper(b)),
                  static_cast<unsigned long long>(c), bar,
                  "****************************************");
    out << line;
  }
  return out.str();
}

}  // namespace platinum::obs
