// Log-bucketed latency histograms over virtual time.
//
// The paper's instrumentation interface (Sections 1.1, 9) reports only event
// counts; a latency *distribution* is what separates "faults are slow" from
// "most faults are fast but the pivot-row burst queues behind one module".
// Buckets are powers of two of nanoseconds, so the histogram covers the whole
// simulated range (320 ns local references to multi-millisecond shootdown
// storms) in 64 fixed counters with no allocation on the record path.
#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace platinum::obs {

class LatencyHistogram {
 public:
  // Bucket b >= 1 holds values v with bit_width(v) == b, i.e. the half-open
  // range [2^(b-1), 2^b); bucket 0 holds exactly the value 0.
  static constexpr int kBuckets = 64;

  void Record(sim::SimTime value_ns);

  uint64_t count() const { return count_; }
  sim::SimTime sum() const { return sum_; }
  sim::SimTime min() const { return count_ > 0 ? min_ : 0; }
  sim::SimTime max() const { return max_; }
  double Mean() const;

  // Nearest-rank percentile estimate, `p` in [0, 100]. The target rank is
  // ceil(p/100 * count); the estimate interpolates linearly inside the bucket
  // where the cumulative count reaches that rank (so a rank at the end of its
  // bucket returns the bucket's upper bound), then clamps to [min, max].
  // Returns 0 on an empty histogram.
  sim::SimTime Percentile(double p) const;

  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }
  static int BucketIndex(sim::SimTime value_ns);
  // Inclusive bounds of bucket `b`.
  static sim::SimTime BucketLower(int b);
  static sim::SimTime BucketUpper(int b);

  // Count-wise difference (for per-phase attribution); assumes `b` is an
  // earlier snapshot of this histogram.
  LatencyHistogram Since(const LatencyHistogram& b) const;

  // Compact text rendering: summary line plus one row per non-empty bucket.
  std::string ToString() const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  sim::SimTime sum_ = 0;
  sim::SimTime min_ = 0;
  sim::SimTime max_ = 0;
};

}  // namespace platinum::obs

#endif  // SRC_OBS_HISTOGRAM_H_
