#include "src/obs/json.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace platinum::obs {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  --depth_;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  --depth_;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& text) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(text);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const char* text) { return Value(std::string(text)); }

JsonWriter& JsonWriter::Value(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Separate();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int v) { return Value(static_cast<int64_t>(v)); }

JsonWriter& JsonWriter::Value(double v) {
  Separate();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  Separate();
  out_ += json;
  need_comma_ = true;
  return *this;
}

namespace {

// Advances `i` past a JSON string (assumes text[i] == '"'). Returns false on
// an unterminated string.
bool SkipString(const std::string& text, size_t* i) {
  for (size_t j = *i + 1; j < text.size(); ++j) {
    if (text[j] == '\\') {
      ++j;
      continue;
    }
    if (text[j] == '"') {
      *i = j;
      return true;
    }
  }
  return false;
}

}  // namespace

bool CheckJsonBalanced(const std::string& text) {
  std::vector<char> stack;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') {
      if (!SkipString(text, &i)) {
        return false;
      }
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      char open = c == '}' ? '{' : '[';
      if (stack.empty() || stack.back() != open) {
        return false;
      }
      stack.pop_back();
    }
  }
  return stack.empty();
}

bool CheckJsonHasKey(const std::string& text, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  return text.find(needle) != std::string::npos;
}

bool CheckTraceTsMonotone(const std::string& text) {
  const std::string needle = "\"ts\":";
  double last = -1e300;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    double ts = std::strtod(text.c_str() + pos, nullptr);
    if (ts < last) {
      return false;
    }
    last = ts;
  }
  return true;
}

}  // namespace platinum::obs
