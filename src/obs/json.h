// Minimal JSON emission and validity checking — no external dependencies.
//
// JsonWriter builds syntactically valid JSON incrementally (it tracks
// nesting and comma placement); the Check* helpers are the "minimal validity
// checker" used by tests and by platsim --validate: balanced
// braces/brackets outside strings, presence of required keys, and monotone
// non-decreasing "ts" fields in a Chrome trace.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>

namespace platinum::obs {

std::string JsonEscape(const std::string& text);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  // Introduces the next object member; must be followed by a value (or
  // Begin*). Outside an object, writes nothing but the separator.
  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(const std::string& text);
  JsonWriter& Value(const char* text);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v);
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  // A JSON null — for values that do not exist (e.g. a speedup over a
  // degenerate zero-time baseline).
  JsonWriter& Null();
  // Embeds pre-rendered JSON verbatim as the next value — for composing a
  // block another subsystem already serialized (e.g. the serving stats).
  // The caller guarantees `json` is itself a complete, valid value.
  JsonWriter& Raw(const std::string& json);

  // The document so far. Valid JSON once every Begin has been Ended.
  const std::string& str() const { return out_; }
  int depth() const { return depth_; }

 private:
  void Separate();
  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool after_key_ = false;
};

// Braces, brackets, and quotes balance (string-aware, handles escapes).
bool CheckJsonBalanced(const std::string& text);
// `"key":` appears somewhere in the document.
bool CheckJsonHasKey(const std::string& text, const std::string& key);
// Every `"ts":` number is >= the previous one (Chrome trace ordering). A
// document with no ts fields passes.
bool CheckTraceTsMonotone(const std::string& text);

}  // namespace platinum::obs

#endif  // SRC_OBS_JSON_H_
