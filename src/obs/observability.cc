#include "src/obs/observability.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "src/base/check.h"

namespace platinum::obs {

const char* HistKindName(HistKind kind) {
  switch (kind) {
    case HistKind::kFaultService:
      return "fault_service";
    case HistKind::kShootdown:
      return "shootdown_round";
    case HistKind::kBlockTransfer:
      return "block_transfer";
    case HistKind::kModuleQueue:
      return "module_queue";
  }
  return "?";
}

Observability::Observability(int num_nodes)
    : cpu_(static_cast<size_t>(num_nodes)), module_(static_cast<size_t>(num_nodes)) {
  PLAT_CHECK_GT(num_nodes, 0);
}

void Observability::RecordSpan(Span span) {
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

void Observability::BeginPhase(std::string name, sim::SimTime now,
                               const sim::MachineStats& stats) {
  Phase phase;
  phase.name = std::move(name);
  phase.begin = now;
  phase.stats_at_begin_ = stats;
  for (int k = 0; k < kNumHistKinds; ++k) {
    const LatencyHistogram& h = hist_[static_cast<size_t>(k)];
    phase.hist_at_begin_[static_cast<size_t>(k)] = Phase::HistDelta{h.count(), h.sum()};
  }
  open_phases_.push_back(phases_.size());
  phases_.push_back(std::move(phase));
}

void Observability::EndPhase(sim::SimTime now, const sim::MachineStats& stats) {
  PLAT_CHECK(!open_phases_.empty()) << "EndPhase without a matching BeginPhase";
  Phase& phase = phases_[open_phases_.back()];
  open_phases_.pop_back();
  phase.end = now;
  phase.open = false;
  phase.delta = stats - phase.stats_at_begin_;
  for (int k = 0; k < kNumHistKinds; ++k) {
    const LatencyHistogram& h = hist_[static_cast<size_t>(k)];
    const Phase::HistDelta& at_begin = phase.hist_at_begin_[static_cast<size_t>(k)];
    phase.hist_delta[static_cast<size_t>(k)] =
        Phase::HistDelta{h.count() - at_begin.count, h.sum() - at_begin.sum};
  }
}

const std::string& Observability::current_phase() const {
  static const std::string kNone;
  return open_phases_.empty() ? kNone : phases_[open_phases_.back()].name;
}

std::string Observability::ToString() const {
  std::ostringstream out;
  for (int k = 0; k < kNumHistKinds; ++k) {
    out << "histogram " << HistKindName(static_cast<HistKind>(k)) << ": "
        << hist_[static_cast<size_t>(k)].ToString();
  }
  out << "cpu   faults  (r/w)            fills  repl  migr  rmaps  shoot  ipis   "
         "local-refs  remote-refs\n";
  char line[192];
  for (size_t p = 0; p < cpu_.size(); ++p) {
    const ProcessorCounters& c = cpu_[p];
    std::snprintf(line, sizeof(line),
                  "%-5zu %-7llu (%llu/%llu)%*s%-6llu %-5llu %-5llu %-6llu %-6llu %-6llu "
                  "%-11llu %llu\n",
                  p, static_cast<unsigned long long>(c.faults),
                  static_cast<unsigned long long>(c.read_faults),
                  static_cast<unsigned long long>(c.write_faults), 2, "",
                  static_cast<unsigned long long>(c.initial_fills),
                  static_cast<unsigned long long>(c.replications),
                  static_cast<unsigned long long>(c.migrations),
                  static_cast<unsigned long long>(c.remote_maps),
                  static_cast<unsigned long long>(c.shootdowns_initiated),
                  static_cast<unsigned long long>(c.ipis_received),
                  static_cast<unsigned long long>(c.local_refs),
                  static_cast<unsigned long long>(c.remote_refs));
    out << line;
  }
  out << "module  refs-served  bt-in  bt-out  frames-alloc  frames-freed  queue-wait-ms\n";
  for (size_t m = 0; m < module_.size(); ++m) {
    const ModuleCounters& c = module_[m];
    std::snprintf(line, sizeof(line), "%-7zu %-12llu %-6llu %-7llu %-13llu %-13llu %.2f\n", m,
                  static_cast<unsigned long long>(c.references_served),
                  static_cast<unsigned long long>(c.block_transfers_in),
                  static_cast<unsigned long long>(c.block_transfers_out),
                  static_cast<unsigned long long>(c.frames_allocated),
                  static_cast<unsigned long long>(c.frames_freed),
                  sim::ToMilliseconds(c.queue_wait_ns));
    out << line;
  }
  if (!phases_.empty()) {
    out << "phases:\n";
    for (const Phase& phase : phases_) {
      std::snprintf(line, sizeof(line), "  %-24s [%.3f ms, %.3f ms]  faults %llu, repl %llu, "
                    "migr %llu, shootdowns %llu%s\n",
                    phase.name.c_str(), sim::ToMilliseconds(phase.begin),
                    sim::ToMilliseconds(phase.end),
                    static_cast<unsigned long long>(phase.delta.faults),
                    static_cast<unsigned long long>(phase.delta.replications),
                    static_cast<unsigned long long>(phase.delta.migrations),
                    static_cast<unsigned long long>(phase.delta.shootdowns),
                    phase.open ? " (open)" : "");
      out << line;
    }
  }
  return out.str();
}

}  // namespace platinum::obs
