// The kernel instrumentation registry (Sections 1.1, 9).
//
// One Observability object per simulated machine collects everything the
// global MachineStats counters cannot express:
//   * per-processor and per-module counter breakdowns (who faulted, which
//     module served the traffic, who took the IPIs);
//   * latency histograms for the protocol's expensive operations (fault
//     service, shootdown round-trip, block transfer, module queueing);
//   * named spans and phases, so experiments can attribute counters and
//     latencies to program phases and the Perfetto exporter can draw them.
// Recording is always on: the hot-path cost is a handful of array updates,
// negligible next to the work the simulator does per reference.
#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/histogram.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace platinum::obs {

// Per-processor protocol activity: the breakdown of MachineStats by the
// processor that initiated (or suffered) each event.
struct ProcessorCounters {
  uint64_t faults = 0;
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t initial_fills = 0;
  uint64_t replications = 0;
  uint64_t migrations = 0;
  uint64_t remote_maps = 0;
  uint64_t shootdowns_initiated = 0;
  uint64_t ipis_received = 0;
  uint64_t local_refs = 0;
  uint64_t remote_refs = 0;
  uint64_t pages_freed = 0;
};

// Per-memory-module activity: the traffic each module's bus served.
struct ModuleCounters {
  uint64_t references_served = 0;
  uint64_t block_transfers_in = 0;
  uint64_t block_transfers_out = 0;
  uint64_t frames_allocated = 0;
  uint64_t frames_freed = 0;
  sim::SimTime queue_wait_ns = 0;
};

enum class HistKind : uint8_t {
  kFaultService,   // HandleFault entry to exit (includes handler waits, copy)
  kShootdown,      // initiator-side cost of a synchronous shootdown round
  kBlockTransfer,  // block-transfer request to completion (includes queueing)
  kModuleQueue,    // per-reference wait behind a module's bus
};
inline constexpr int kNumHistKinds = 4;
const char* HistKindName(HistKind kind);

// A completed named interval, drawn as a "complete" event by the Perfetto
// exporter.
struct Span {
  std::string name;
  int16_t processor = -1;
  uint32_t thread = 0;  // fiber id
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
};

// A named experiment phase with the counter and histogram activity that
// happened inside it.
struct Phase {
  std::string name;
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
  bool open = true;
  sim::MachineStats delta;  // filled when the phase closes
  struct HistDelta {
    uint64_t count = 0;
    sim::SimTime sum = 0;
  };
  std::array<HistDelta, kNumHistKinds> hist_delta{};

 private:
  friend class Observability;
  sim::MachineStats stats_at_begin_;
  std::array<HistDelta, kNumHistKinds> hist_at_begin_{};
};

class Observability {
 public:
  explicit Observability(int num_nodes);

  int num_nodes() const { return static_cast<int>(cpu_.size()); }
  ProcessorCounters& cpu(int p) { return cpu_[static_cast<size_t>(p)]; }
  const ProcessorCounters& cpu(int p) const { return cpu_[static_cast<size_t>(p)]; }
  ModuleCounters& module(int m) { return module_[static_cast<size_t>(m)]; }
  const ModuleCounters& module(int m) const { return module_[static_cast<size_t>(m)]; }

  LatencyHistogram& hist(HistKind kind) { return hist_[static_cast<size_t>(kind)]; }
  const LatencyHistogram& hist(HistKind kind) const { return hist_[static_cast<size_t>(kind)]; }
  void RecordLatency(HistKind kind, sim::SimTime value_ns) { hist(kind).Record(value_ns); }

  // --- Spans -----------------------------------------------------------------
  // Bounded: after kMaxSpans the span is counted in spans_dropped() instead.
  void RecordSpan(Span span);
  const std::vector<Span>& spans() const { return spans_; }
  uint64_t spans_dropped() const { return spans_dropped_; }

  // --- Phases ----------------------------------------------------------------
  // Phases may nest; EndPhase closes the innermost open phase. `stats` is the
  // machine's counter block at the boundary (so the phase can report deltas).
  void BeginPhase(std::string name, sim::SimTime now, const sim::MachineStats& stats);
  void EndPhase(sim::SimTime now, const sim::MachineStats& stats);
  const std::vector<Phase>& phases() const { return phases_; }
  // Name of the innermost open phase, or empty.
  const std::string& current_phase() const;

  // Multi-line human-readable dump: histograms plus the per-processor table.
  std::string ToString() const;

 private:
  static constexpr size_t kMaxSpans = 1 << 16;

  std::vector<ProcessorCounters> cpu_;
  std::vector<ModuleCounters> module_;
  std::array<LatencyHistogram, kNumHistKinds> hist_;
  std::vector<Span> spans_;
  uint64_t spans_dropped_ = 0;
  std::vector<Phase> phases_;
  std::vector<size_t> open_phases_;
};

}  // namespace platinum::obs

#endif  // SRC_OBS_OBSERVABILITY_H_
