#include "src/obs/page_trace.h"

#include <algorithm>

#include "src/obs/json.h"

namespace platinum::obs {

namespace {

// Sentinel for "this (as, vpn) is not bound"; reuses the trace marker so the
// two never collide with a real cpage id.
constexpr uint32_t kUnbound = mem::kTraceNoCpage;

}  // namespace

PageTrace::PageTrace(PageTraceOptions options)
    : options_(options), ring_(options.ring_capacity) {}

PageTrace::PageRollup* PageTrace::RollupFor(uint32_t cpage) {
  if (cpage >= options_.max_pages) {
    return nullptr;
  }
  if (cpage >= rollups_.size()) {
    rollups_.resize(cpage + 1);
  }
  return &rollups_[cpage];
}

const PageTrace::PageRollup* PageTrace::rollup(uint32_t cpage) const {
  if (cpage >= rollups_.size() || rollups_[cpage].events == 0) {
    return nullptr;
  }
  return &rollups_[cpage];
}

size_t PageTrace::pages_tracked() const {
  size_t n = 0;
  for (const PageRollup& r : rollups_) {
    if (r.events > 0) {
      ++n;
    }
  }
  return n;
}

void PageTrace::OnPageEvent(const mem::TraceEvent& event) {
  ++events_seen_;
  ring_.Record(event);
  if (event.cpage == mem::kTraceNoCpage) {
    return;  // machine-wide event (defrost scan); nothing per-page to roll up
  }
  PageRollup* r = RollupFor(event.cpage);
  if (r == nullptr) {
    ++rollups_dropped_;
    return;
  }
  if (r->events == 0) {
    r->first_event_ns = event.time;
  }
  ++r->events;
  r->last_event_ns = event.time;
  UpdateDetectors(*r, event);
}

void PageTrace::UpdateDetectors(PageRollup& r, const mem::TraceEvent& event) {
  // Keeps a processor -> module map current for read attribution. `module`
  // is the copy the initiating processor will reference from now on.
  auto note_reader = [&r](int16_t processor, int16_t module) {
    if (processor < 0) {
      return;
    }
    if (static_cast<size_t>(processor) >= r.reader_module.size()) {
      r.reader_module.resize(static_cast<size_t>(processor) + 1, int16_t{-1});
    }
    r.reader_module[static_cast<size_t>(processor)] = module;
  };

  switch (event.type) {
    case mem::TraceEventType::kFault:
      ++r.faults;
      if (event.detail == 1) {
        ++r.write_faults;
        // Each write fault from a new processor invalidated the previous
        // writer's mapping: one write-invalidate alternation.
        if (r.last_writer >= 0 && event.processor != r.last_writer) {
          ++r.write_alternations;
        }
        r.last_writer = event.processor;
      } else {
        ++r.read_faults;
      }
      break;
    case mem::TraceEventType::kFill:
      ++r.fills;
      note_reader(event.processor, static_cast<int16_t>(event.detail));
      break;
    case mem::TraceEventType::kReplicate:
      ++r.replications;
      ++r.replicas_created;
      r.live_replicas.push_back(ReplicaReads{static_cast<int16_t>(event.detail), 0});
      note_reader(event.processor, static_cast<int16_t>(event.detail));
      break;
    case mem::TraceEventType::kMigrate:
      ++r.migrations;
      note_reader(event.processor, static_cast<int16_t>(event.detail));
      break;
    case mem::TraceEventType::kRemoteMap:
      ++r.remote_maps;
      note_reader(event.processor, static_cast<int16_t>(event.detail));
      break;
    case mem::TraceEventType::kFreeze:
      ++r.freezes;
      r.frozen = true;
      break;
    case mem::TraceEventType::kThaw:
      ++r.thaws;
      if (r.frozen) {
        r.frozen = false;
        ++r.freeze_cycles;
      }
      break;
    case mem::TraceEventType::kShootdown:
      ++r.shootdowns;
      break;
    case mem::TraceEventType::kLeaseExpire:
      // Lease reclamation is not an invalidation IPI; kept separate so the
      // ping-pong detector keyed on shootdowns stays meaningful under tardis.
      ++r.lease_expiries;
      break;
    case mem::TraceEventType::kDefrostScan:
      break;  // machine-wide; never reaches here (no cpage)
    case mem::TraceEventType::kPageFree: {
      ++r.frees;
      int16_t module = static_cast<int16_t>(event.detail);
      auto it = std::find_if(r.live_replicas.begin(), r.live_replicas.end(),
                             [module](const ReplicaReads& rep) { return rep.module == module; });
      if (it != r.live_replicas.end()) {
        // <= 1: at most the faulting read that created the replica — the
        // copy was torn down before it ever served an independent read.
        if (it->reads <= 1) {
          ++r.replicas_wasted;
        }
        r.live_replicas.erase(it);
      }
      break;
    }
    case mem::TraceEventType::kPin:
      ++r.pins;
      break;
    case mem::TraceEventType::kUnbind:
      ++r.unbinds;
      break;
  }
}

void PageTrace::OnPageBind(uint32_t as_id, uint32_t vpn, uint32_t cpage) {
  if (as_id >= vpn_to_cpage_.size()) {
    vpn_to_cpage_.resize(as_id + 1);
  }
  std::vector<uint32_t>& pages = vpn_to_cpage_[as_id];
  if (vpn >= pages.size()) {
    pages.resize(vpn + 1, kUnbound);
  }
  pages[vpn] = cpage;
}

uint32_t PageTrace::CpageFor(uint32_t as_id, uint32_t vpn) const {
  if (as_id >= vpn_to_cpage_.size() || vpn >= vpn_to_cpage_[as_id].size()) {
    return kUnbound;
  }
  return vpn_to_cpage_[as_id][vpn];
}

void PageTrace::OnPageUnbind(uint32_t as_id, uint32_t vpn, uint32_t cpage) {
  (void)cpage;
  if (as_id < vpn_to_cpage_.size() && vpn < vpn_to_cpage_[as_id].size()) {
    vpn_to_cpage_[as_id][vpn] = kUnbound;
  }
}

void PageTrace::OnMemoryAccess(const mem::MemoryAccess& access) {
  ++accesses_seen_;
  if (!access.is_write && access.as_id < vpn_to_cpage_.size() &&
      access.vpn < vpn_to_cpage_[access.as_id].size()) {
    uint32_t cpage = vpn_to_cpage_[access.as_id][access.vpn];
    if (cpage != kUnbound && cpage < rollups_.size()) {
      PageRollup& r = rollups_[cpage];
      size_t p = static_cast<size_t>(access.processor);
      if (access.processor >= 0 && p < r.reader_module.size()) {
        int16_t module = r.reader_module[p];
        if (module >= 0) {
          for (ReplicaReads& rep : r.live_replicas) {
            if (rep.module == module) {
              ++rep.reads;
              break;
            }
          }
        }
      }
    }
  }
  if (next_ != nullptr) {
    next_->OnMemoryAccess(access);
  }
}

std::vector<uint32_t> PageTrace::FlaggedPingPong() const {
  std::vector<uint32_t> out;
  for (uint32_t id = 0; id < rollups_.size(); ++id) {
    if (rollups_[id].events > 0 && IsPingPong(rollups_[id])) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<uint32_t> PageTrace::FlaggedFreezeChurn() const {
  std::vector<uint32_t> out;
  for (uint32_t id = 0; id < rollups_.size(); ++id) {
    if (rollups_[id].events > 0 && IsFreezeChurn(rollups_[id])) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<uint32_t> PageTrace::FlaggedReplicationWaste() const {
  std::vector<uint32_t> out;
  for (uint32_t id = 0; id < rollups_.size(); ++id) {
    if (rollups_[id].events > 0 && IsReplicationWaste(rollups_[id])) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<uint32_t> PageTrace::TopPages() const {
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < rollups_.size(); ++id) {
    if (rollups_[id].events > 0) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
    const PageRollup& ra = rollups_[a];
    const PageRollup& rb = rollups_[b];
    if (ra.faults != rb.faults) {
      return ra.faults > rb.faults;
    }
    if (ra.events != rb.events) {
      return ra.events > rb.events;
    }
    return a < b;
  });
  if (ids.size() > options_.top_k) {
    ids.resize(options_.top_k);
  }
  return ids;
}

std::string PageTrace::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("platinum-page-forensics-v1");
  w.Key("events_seen").Value(events_seen_);
  w.Key("accesses_seen").Value(accesses_seen_);
  w.Key("pages_tracked").Value(static_cast<uint64_t>(pages_tracked()));
  w.Key("rollups_dropped").Value(rollups_dropped_);
  w.Key("ring").BeginObject();
  w.Key("capacity").Value(static_cast<uint64_t>(ring_.capacity()));
  w.Key("recorded").Value(ring_.recorded());
  w.Key("dropped").Value(ring_.dropped());
  w.EndObject();
  w.Key("thresholds").BeginObject();
  w.Key("ping_pong_min_alternations").Value(static_cast<uint64_t>(options_.ping_pong_min_alternations));
  w.Key("freeze_churn_min_cycles").Value(static_cast<uint64_t>(options_.freeze_churn_min_cycles));
  w.EndObject();

  auto id_array = [&w](const char* key, const std::vector<uint32_t>& ids) {
    w.Key(key).BeginArray();
    for (uint32_t id : ids) {
      w.Value(static_cast<uint64_t>(id));
    }
    w.EndArray();
  };
  w.Key("flagged").BeginObject();
  id_array("ping_pong", FlaggedPingPong());
  id_array("freeze_churn", FlaggedFreezeChurn());
  id_array("replication_waste", FlaggedReplicationWaste());
  w.EndObject();

  std::vector<uint32_t> top = TopPages();
  // One pass over the retained ring events, bucketed by selected page.
  std::vector<std::vector<const mem::TraceEvent*>> timelines(top.size());
  std::vector<mem::TraceEvent> retained = ring_.Snapshot();
  for (const mem::TraceEvent& e : retained) {
    auto it = std::find(top.begin(), top.end(), e.cpage);
    if (it != top.end()) {
      timelines[static_cast<size_t>(it - top.begin())].push_back(&e);
    }
  }

  w.Key("top_pages").BeginArray();
  for (size_t i = 0; i < top.size(); ++i) {
    const PageRollup& r = rollups_[top[i]];
    w.BeginObject();
    w.Key("cpage").Value(static_cast<uint64_t>(top[i]));
    w.Key("events").Value(r.events);
    w.Key("faults").Value(r.faults);
    w.Key("read_faults").Value(r.read_faults);
    w.Key("write_faults").Value(r.write_faults);
    w.Key("fills").Value(r.fills);
    w.Key("replications").Value(r.replications);
    w.Key("migrations").Value(r.migrations);
    w.Key("remote_maps").Value(r.remote_maps);
    w.Key("freezes").Value(r.freezes);
    w.Key("thaws").Value(r.thaws);
    w.Key("shootdowns").Value(r.shootdowns);
    w.Key("lease_expiries").Value(r.lease_expiries);
    w.Key("frees").Value(r.frees);
    w.Key("pins").Value(r.pins);
    w.Key("unbinds").Value(r.unbinds);
    w.Key("write_alternations").Value(static_cast<uint64_t>(r.write_alternations));
    w.Key("freeze_cycles").Value(static_cast<uint64_t>(r.freeze_cycles));
    w.Key("replicas_created").Value(r.replicas_created);
    w.Key("replicas_wasted").Value(r.replicas_wasted);
    w.Key("ping_pong").Value(IsPingPong(r));
    w.Key("freeze_churn").Value(IsFreezeChurn(r));
    w.Key("replication_waste").Value(IsReplicationWaste(r));
    w.Key("first_event_ns").Value(r.first_event_ns);
    w.Key("last_event_ns").Value(r.last_event_ns);
    const std::vector<const mem::TraceEvent*>& tl = timelines[i];
    size_t first =
        tl.size() > options_.timeline_events_per_page ? tl.size() - options_.timeline_events_per_page : 0;
    w.Key("timeline_truncated").Value(first > 0 || ring_.dropped() > 0);
    w.Key("timeline").BeginArray();
    for (size_t j = first; j < tl.size(); ++j) {
      const mem::TraceEvent& e = *tl[j];
      w.BeginObject();
      w.Key("t_ns").Value(e.time);
      w.Key("type").Value(mem::TraceEventTypeName(e.type));
      w.Key("cpu").Value(static_cast<int>(e.processor));
      w.Key("detail").Value(static_cast<uint64_t>(e.detail));
      w.Key("thread").Value(static_cast<uint64_t>(e.thread));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace platinum::obs
