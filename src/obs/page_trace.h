// Per-page coherence forensics (the second observability tier).
//
// PLATINUM's evaluation hinges on page-level dynamics — which pages
// ping-pong between writers, freeze and thaw repeatedly, or get replicated
// only to be invalidated unread (Sections 5-6) — but MachineStats smears all
// of that into machine-wide totals. PageTrace consumes the coherent-memory
// hook API (mem::PageEventSink for protocol transitions, mem::AccessObserver
// for per-word references) and maintains:
//   * a bounded ring of raw protocol events (drop-counted, never grows);
//   * streaming per-page rollups: event counters, first/last activity, and
//     the state needed by three derived detectors —
//       - ping-pong: write-invalidate alternation — every write fault taken
//         by a different processor than the previous writer invalidated that
//         writer's mapping and counts one alternation (covers two-party
//         A,B,A,B ping-pong and N-party rotation equally);
//       - freeze-churn: completed freeze -> thaw cycles per page;
//       - replication-waste: replicas freed after at most one observed read
//         (the read that created them), i.e. copies that never paid off.
// The report is a deterministic JSON document: detector-flagged page lists
// plus a top-K "hot page" table with bounded per-page timelines filtered
// from the ring.
//
// Layering: this file consumes only the mem hook headers (trace.h,
// page_event.h, access_observer.h), never coherent-memory internals;
// tools/platlint enforces exactly that allowance.
#ifndef SRC_OBS_PAGE_TRACE_H_
#define SRC_OBS_PAGE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/mem/access_observer.h"
#include "src/mem/page_event.h"
#include "src/mem/trace.h"
#include "src/sim/time.h"

namespace platinum::obs {

struct PageTraceOptions {
  // Raw-event ring capacity; older events are dropped (drop-counted).
  size_t ring_capacity = 1 << 15;
  // Rollups are kept for coherent pages with id < max_pages; events on pages
  // beyond the bound are counted in rollups_dropped() and otherwise ignored.
  size_t max_pages = 1 << 20;
  // Pages listed in the "hot page" table of the report.
  size_t top_k = 16;
  // Detector thresholds (see detector definitions above). The ping-pong
  // default is deliberately low: under the timestamp policy a page freezes
  // after a few invalidating writes, so a sustained alternation never gets
  // long — three writer changes already mark the falsely-shared page.
  uint32_t ping_pong_min_alternations = 3;
  uint32_t freeze_churn_min_cycles = 2;
  // Per-page timeline length in the report (most recent retained events).
  size_t timeline_events_per_page = 32;
};

class PageTrace : public mem::PageEventSink, public mem::AccessObserver {
 public:
  // A physical replica created by kReplicate, tracked until its kPageFree.
  struct ReplicaReads {
    int16_t module = -1;
    uint64_t reads = 0;
  };

  struct PageRollup {
    uint64_t events = 0;
    uint64_t faults = 0;
    uint64_t read_faults = 0;
    uint64_t write_faults = 0;
    uint64_t fills = 0;
    uint64_t replications = 0;
    uint64_t migrations = 0;
    uint64_t remote_maps = 0;
    uint64_t freezes = 0;
    uint64_t thaws = 0;
    uint64_t shootdowns = 0;
    uint64_t lease_expiries = 0;
    uint64_t frees = 0;
    uint64_t pins = 0;
    uint64_t unbinds = 0;
    sim::SimTime first_event_ns = 0;
    sim::SimTime last_event_ns = 0;
    // Ping-pong state: the most recent write-fault initiator.
    int16_t last_writer = -1;
    uint32_t write_alternations = 0;
    // Freeze-churn state.
    uint32_t freeze_cycles = 0;
    bool frozen = false;
    // Replication-waste state.
    uint64_t replicas_created = 0;
    uint64_t replicas_wasted = 0;
    std::vector<ReplicaReads> live_replicas;
    // Which module each processor's reads currently land on (from the most
    // recent fill/replicate/migrate/remote-map it initiated); -1 = unknown.
    std::vector<int16_t> reader_module;
  };

  explicit PageTrace(PageTraceOptions options = {});

  // --- mem::PageEventSink ------------------------------------------------------
  void OnPageEvent(const mem::TraceEvent& event) override;
  void OnPageBind(uint32_t as_id, uint32_t vpn, uint32_t cpage) override;
  void OnPageUnbind(uint32_t as_id, uint32_t vpn, uint32_t cpage) override;

  // --- mem::AccessObserver -----------------------------------------------------
  // Attributes reads to the live replica they land on, then forwards to the
  // chained observer (so an installed race detector keeps working).
  void OnMemoryAccess(const mem::MemoryAccess& access) override;
  void set_next_access_observer(mem::AccessObserver* next) { next_ = next; }

  // --- Introspection -----------------------------------------------------------
  const PageTraceOptions& options() const { return options_; }
  uint64_t events_seen() const { return events_seen_; }
  uint64_t accesses_seen() const { return accesses_seen_; }
  uint64_t rollups_dropped() const { return rollups_dropped_; }
  const mem::TraceLog& ring() const { return ring_; }
  // Pages with at least one event tracked so far.
  size_t pages_tracked() const;
  // The rollup for `cpage`, or nullptr when it has no events (or is beyond
  // the max_pages bound).
  const PageRollup* rollup(uint32_t cpage) const;
  // The coherent page currently bound at (as_id, vpn), or mem::kTraceNoCpage
  // when no binding has been observed — lets tests and tools attribute
  // detector flags to the data structure owning a VA range.
  uint32_t CpageFor(uint32_t as_id, uint32_t vpn) const;

  // --- Detectors ---------------------------------------------------------------
  bool IsPingPong(const PageRollup& r) const {
    // Writer alternation only qualifies when it was served by invalidation
    // rounds. Under a lease protocol the same alternation shows up as lease
    // expiries — priced by waiting, not by an IPI storm — and must not be
    // flagged as shootdown ping-pong.
    return r.write_alternations >= options_.ping_pong_min_alternations && r.shootdowns > 0;
  }
  bool IsFreezeChurn(const PageRollup& r) const {
    return r.freeze_cycles >= options_.freeze_churn_min_cycles;
  }
  bool IsReplicationWaste(const PageRollup& r) const { return r.replicas_wasted > 0; }
  // Flagged page ids, ascending.
  std::vector<uint32_t> FlaggedPingPong() const;
  std::vector<uint32_t> FlaggedFreezeChurn() const;
  std::vector<uint32_t> FlaggedReplicationWaste() const;

  // The forensics report (schema "platinum-page-forensics-v1"). Deterministic:
  // depends only on the observed event/access streams.
  std::string ToJson() const;

 private:
  PageRollup* RollupFor(uint32_t cpage);
  void UpdateDetectors(PageRollup& r, const mem::TraceEvent& event);
  // Top-K page ids by (faults desc, events desc, id asc).
  std::vector<uint32_t> TopPages() const;

  // Hook state is mutated from whichever fiber faulted; safe without a lock
  // because fibers never preempt inside a hook (single host thread).
  PageTraceOptions options_ PLATINUM_FIBER_SHARED;
  mem::TraceLog ring_ PLATINUM_FIBER_SHARED;
  std::vector<PageRollup> rollups_ PLATINUM_FIBER_SHARED;
  // (as_id, vpn) -> cpage, maintained from bind/unbind notifications.
  std::vector<std::vector<uint32_t>> vpn_to_cpage_ PLATINUM_FIBER_SHARED;
  mem::AccessObserver* next_ PLATINUM_FIBER_SHARED = nullptr;
  uint64_t events_seen_ PLATINUM_FIBER_SHARED = 0;
  uint64_t accesses_seen_ PLATINUM_FIBER_SHARED = 0;
  uint64_t rollups_dropped_ PLATINUM_FIBER_SHARED = 0;
};

}  // namespace platinum::obs

#endif  // SRC_OBS_PAGE_TRACE_H_
