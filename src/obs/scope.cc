#include "src/obs/scope.h"

#include <utility>

namespace platinum::obs {

ObsScope::ObsScope(sim::Machine& machine, std::string name)
    : machine_(machine), name_(std::move(name)) {
  const sim::Scheduler& sched = machine_.scheduler();
  processor_ = sched.current() != nullptr ? static_cast<int16_t>(sched.current_processor())
                                          : int16_t{-1};
  thread_ = sched.current() != nullptr ? sched.current()->id() : 0;
  begin_ = sched.now();
}

ObsScope::~ObsScope() {
  machine_.obs().RecordSpan(
      Span{std::move(name_), processor_, thread_, begin_, machine_.scheduler().now()});
}

PhaseMarker::PhaseMarker(sim::Machine& machine, std::string name) : machine_(machine) {
  machine_.obs().BeginPhase(std::move(name), machine_.scheduler().now(), machine_.stats());
}

PhaseMarker::~PhaseMarker() {
  machine_.obs().EndPhase(machine_.scheduler().now(), machine_.stats());
}

}  // namespace platinum::obs
