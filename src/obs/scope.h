// RAII helpers that let the runtime and applications annotate the trace.
//
// ObsScope records a named span (virtual-time interval on the current
// processor/fiber) into the machine's Observability when it goes out of
// scope; PhaseMarker opens a named phase whose counter and histogram deltas
// are attributed to it. Both are cheap enough to leave in experiment code
// permanently.
#ifndef SRC_OBS_SCOPE_H_
#define SRC_OBS_SCOPE_H_

#include <string>

#include "src/sim/machine.h"
#include "src/sim/time.h"

namespace platinum::obs {

class ObsScope {
 public:
  // Captures the current virtual time, processor, and fiber. Must be
  // destroyed on the same machine (fiber migration mid-span is fine; the
  // span keeps the processor it started on).
  ObsScope(sim::Machine& machine, std::string name);
  ~ObsScope();

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  sim::Machine& machine_;
  std::string name_;
  int16_t processor_;
  uint32_t thread_;
  sim::SimTime begin_;
};

class PhaseMarker {
 public:
  PhaseMarker(sim::Machine& machine, std::string name);
  ~PhaseMarker();

  PhaseMarker(const PhaseMarker&) = delete;
  PhaseMarker& operator=(const PhaseMarker&) = delete;

 private:
  sim::Machine& machine_;
};

}  // namespace platinum::obs

#endif  // SRC_OBS_SCOPE_H_
