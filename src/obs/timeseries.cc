#include "src/obs/timeseries.h"

#include "src/base/check.h"
#include "src/obs/json.h"
#include "src/sim/machine.h"

namespace platinum::obs {

EpochSampler::EpochSampler(const sim::Machine* machine, EpochSamplerOptions options)
    : machine_(machine), options_(options), next_epoch_end_(options.epoch_ns) {
  PLAT_CHECK(machine_ != nullptr);
  PLAT_CHECK_GT(options_.epoch_ns, sim::SimTime{0});
}

void EpochSampler::OnTimeAdvance(sim::SimTime now) {
  // A single advance can cross several boundaries (e.g. a long Sleep); close
  // each of them with the counters as currently observed. Within one crossing
  // the snapshots are identical — the time-series shows the burst as flat
  // epochs followed by a jump, which is exactly what happened in simulated
  // time from the sampler's vantage point.
  while (now >= next_epoch_end_) {
    CloseEpoch(next_epoch_end_);
    next_epoch_end_ += options_.epoch_ns;
  }
}

void EpochSampler::Finalize() {
  if (finalized_) {
    return;
  }
  finalized_ = true;
  sim::SimTime now = machine_->scheduler().global_now();
  if (now > next_epoch_end_ - options_.epoch_ns) {
    CloseEpoch(now);
  }
}

void EpochSampler::CloseEpoch(sim::SimTime end) {
  if (samples_.size() >= options_.max_samples) {
    ++samples_dropped_;
    return;
  }
  Sample s;
  s.end_ns = end;
  s.stats = machine_->stats();
  const Observability& obs = machine_->obs();
  s.cpu_faults.reserve(static_cast<size_t>(obs.num_nodes()));
  for (int p = 0; p < obs.num_nodes(); ++p) {
    s.cpu_faults.push_back(obs.cpu(p).faults);
  }
  for (int k = 0; k < kNumHistKinds; ++k) {
    const LatencyHistogram& h = obs.hist(static_cast<HistKind>(k));
    s.hist[static_cast<size_t>(k)] = HistPoint{h.count(), h.sum()};
  }
  samples_.push_back(std::move(s));
}

std::string EpochSampler::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("platinum-timeseries-v1");
  w.Key("epoch_ns").Value(options_.epoch_ns);
  w.Key("num_epochs").Value(static_cast<uint64_t>(samples_.size()));
  w.Key("samples_dropped").Value(samples_dropped_);
  w.Key("epochs").BeginArray();
  const Sample* prev = nullptr;
  for (const Sample& s : samples_) {
    sim::MachineStats base;
    if (prev != nullptr) {
      base = prev->stats;
    }
    sim::MachineStats d = s.stats - base;
    w.BeginObject();
    w.Key("end_ns").Value(s.end_ns);
    w.Key("references").Value(d.total_references());
    w.Key("remote_refs").Value(d.remote_references());
    w.Key("atc_hits").Value(d.atc_hits);
    w.Key("atc_misses").Value(d.atc_misses);
    w.Key("faults").Value(d.faults);
    w.Key("read_faults").Value(d.read_faults);
    w.Key("write_faults").Value(d.write_faults);
    w.Key("initial_fills").Value(d.initial_fills);
    w.Key("replications").Value(d.replications);
    w.Key("migrations").Value(d.migrations);
    w.Key("remote_maps").Value(d.remote_maps);
    w.Key("freezes").Value(d.freezes);
    w.Key("thaws").Value(d.thaws);
    w.Key("shootdowns").Value(d.shootdowns);
    w.Key("ipis_sent").Value(d.ipis_sent);
    w.Key("mappings_invalidated").Value(d.mappings_invalidated);
    w.Key("pages_freed").Value(d.pages_freed);
    w.Key("block_transfers").Value(d.block_transfers);
    w.Key("module_wait_ns").Value(d.module_wait_ns);
    w.Key("fault_handler_wait_ns").Value(d.fault_handler_wait_ns);
    w.Key("cpu_faults").BeginArray();
    for (size_t p = 0; p < s.cpu_faults.size(); ++p) {
      uint64_t before = (prev != nullptr && p < prev->cpu_faults.size()) ? prev->cpu_faults[p] : 0;
      w.Value(s.cpu_faults[p] - before);
    }
    w.EndArray();
    w.Key("hist").BeginObject();
    for (int k = 0; k < kNumHistKinds; ++k) {
      HistPoint before;
      if (prev != nullptr) {
        before = prev->hist[static_cast<size_t>(k)];
      }
      const HistPoint& now = s.hist[static_cast<size_t>(k)];
      w.Key(HistKindName(static_cast<HistKind>(k))).BeginObject();
      w.Key("count").Value(now.count - before.count);
      w.Key("sum_ns").Value(now.sum_ns - before.sum_ns);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    prev = &s;
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace platinum::obs
