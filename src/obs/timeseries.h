// Simulated-time telemetry: the epoch sampler.
//
// End-of-run aggregates smear fault storms and freeze waves into one number.
// EpochSampler snapshots the machine's counters every N simulated
// milliseconds — MachineStats, per-processor fault counts, and latency
// histogram totals — by observing the scheduler's global virtual-time
// high-water mark (sim::TimeObserver). It owns no fiber and injects no
// events, so attaching it never perturbs the deterministic schedule; epochs
// close lazily, the first time global time is observed at or past the epoch
// boundary, which means a sample reflects the counters at that observation
// point (documented in the JSON as `end_ns`, the nominal boundary).
//
// Storage is bounded: past max_samples further epochs are counted in
// samples_dropped() and discarded, the same contract as spans_dropped().
#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/obs/observability.h"
#include "src/sim/scheduler.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace platinum::sim {
class Machine;
}  // namespace platinum::sim

namespace platinum::obs {

struct EpochSamplerOptions {
  // Simulated epoch length.
  sim::SimTime epoch_ns = 10 * sim::kMillisecond;
  // Bound on retained samples; later epochs are drop-counted.
  size_t max_samples = 1 << 14;
};

class EpochSampler : public sim::TimeObserver {
 public:
  struct HistPoint {
    uint64_t count = 0;
    sim::SimTime sum_ns = 0;
  };
  // Cumulative counter snapshot taken when the epoch ending at `end_ns`
  // closed. The JSON export emits per-epoch deltas between snapshots.
  struct Sample {
    sim::SimTime end_ns = 0;
    sim::MachineStats stats;
    std::vector<uint64_t> cpu_faults;
    std::array<HistPoint, kNumHistKinds> hist{};
  };

  EpochSampler(const sim::Machine* machine, EpochSamplerOptions options = {});

  // sim::TimeObserver: closes every epoch boundary crossed by the advance.
  void OnTimeAdvance(sim::SimTime now) override;
  // Closes the trailing partial epoch, if any counters moved since the last
  // boundary. Call once after the run; idempotent.
  void Finalize();

  const std::vector<Sample>& samples() const { return samples_; }
  uint64_t samples_dropped() const { return samples_dropped_; }
  sim::SimTime epoch_ns() const { return options_.epoch_ns; }

  // The time-series document (schema "platinum-timeseries-v1").
  std::string ToJson() const;

 private:
  void CloseEpoch(sim::SimTime end);

  // Sampled from the epoch-boundary hook on whichever fiber crossed the
  // boundary; safe without a lock (fibers never preempt inside a hook).
  const sim::Machine* machine_ PLATINUM_FIBER_SHARED;
  EpochSamplerOptions options_ PLATINUM_FIBER_SHARED;
  sim::SimTime next_epoch_end_ PLATINUM_FIBER_SHARED;
  std::vector<Sample> samples_ PLATINUM_FIBER_SHARED;
  uint64_t samples_dropped_ PLATINUM_FIBER_SHARED = 0;
  bool finalized_ PLATINUM_FIBER_SHARED = false;
};

}  // namespace platinum::obs

#endif  // SRC_OBS_TIMESERIES_H_
