#include "src/runtime/parallel.h"

#include "src/base/check.h"
#include "src/obs/scope.h"

namespace platinum::rt {

void RunOnProcessors(kernel::Kernel& kernel, vm::AddressSpace* space, int num_processors,
                     const std::string& name, const std::function<void(int)>& body) {
  PLAT_CHECK_GT(num_processors, 0);
  PLAT_CHECK_LE(num_processors, kernel.num_processors());

  // Every fork-join region is an experiment phase: counters and latency
  // histograms recorded inside it are attributed to `name`.
  obs::PhaseMarker phase(kernel.machine(), name);

  std::vector<kernel::Thread*> threads;
  threads.reserve(num_processors);
  for (int p = 0; p < num_processors; ++p) {
    threads.push_back(
        kernel.SpawnThread(space, p, name + "-" + std::to_string(p), [body, p] { body(p); }));
  }
  if (kernel.machine().scheduler().current() != nullptr) {
    for (kernel::Thread* thread : threads) {
      kernel.JoinThread(thread);
    }
  } else {
    kernel.Run();
  }
}

}  // namespace platinum::rt
