// Fork/join helpers for the common one-thread-per-processor pattern.
#ifndef SRC_RUNTIME_PARALLEL_H_
#define SRC_RUNTIME_PARALLEL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace platinum::rt {

// Spawns `num_processors` threads, one per node 0..n-1, each running
// body(processor_id), and waits for all of them. Callable from inside a
// thread (joins) or from machine setup (spawns and runs the machine).
void RunOnProcessors(kernel::Kernel& kernel, vm::AddressSpace* space, int num_processors,
                     const std::string& name, const std::function<void(int)>& body);

}  // namespace platinum::rt

#endif  // SRC_RUNTIME_PARALLEL_H_
