// SharedArray and SharedMatrix are header-only templates; this translation
// unit exists to give the build a home for future non-template helpers.
#include "src/runtime/shared_array.h"
