// Typed views over coherent memory.
//
// SharedArray<T> wraps a word-aligned region of an address space; every
// element access goes through the kernel's coherent-memory path, so it is
// charged simulated time and can fault, replicate, migrate or freeze pages
// exactly as a load/store on the real machine would.
#ifndef SRC_RUNTIME_SHARED_ARRAY_H_
#define SRC_RUNTIME_SHARED_ARRAY_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "src/base/check.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::rt {

template <typename T>
class SharedArray {
  static_assert(sizeof(T) == 4 && std::is_trivially_copyable_v<T>,
                "coherent memory is accessed in 32-bit words");

 public:
  SharedArray() = default;

  SharedArray(kernel::Kernel* kernel, vm::AddressSpace* space, uint32_t base_va, size_t count)
      : kernel_(kernel), space_(space), base_va_(base_va), count_(count) {}

  // Allocates a fresh page-aligned zone holding `count` elements.
  static SharedArray Create(ZoneAllocator& zone, const std::string& name, size_t count,
                            hw::Rights rights = hw::Rights::kReadWrite, int home_module = -1) {
    uint32_t base = zone.AllocWords(name, count, rights, home_module);
    return SharedArray(&zone.kernel(), zone.space(), base, count);
  }

  bool valid() const { return kernel_ != nullptr; }
  size_t size() const { return count_; }
  uint32_t base_va() const { return base_va_; }
  uint32_t va(size_t index) const {
    PLAT_DCHECK(index < count_);
    return base_va_ + static_cast<uint32_t>(index) * 4;
  }
  vm::AddressSpace* space() const { return space_; }

  T Get(size_t index) const {
    PLAT_DCHECK(valid()) << "Get on a default-constructed rt::SharedArray";
    return std::bit_cast<T>(kernel_->ReadWord(space_, va(index)));
  }
  void Set(size_t index, T value) {
    PLAT_DCHECK(valid()) << "Set on a default-constructed rt::SharedArray";
    kernel_->WriteWord(space_, va(index), std::bit_cast<uint32_t>(value));
  }

  // Block accessors (kernel::Kernel::ReadWords): same simulated behavior as
  // an element-by-element loop, with the per-word host overhead amortized.
  // Data is staged through a small stack buffer so arbitrary 4-byte T never
  // aliases the uint32_t transfer type.
  void GetRange(size_t first, size_t count, T* out) const {
    PLAT_DCHECK(valid()) << "GetRange on a default-constructed rt::SharedArray";
    PLAT_CHECK_LE(first + count, count_);
    uint32_t buf[kChunkWords];
    size_t done = 0;
    while (done < count) {
      size_t n = std::min(count - done, size_t{kChunkWords});
      kernel_->ReadWords(space_, va(first + done), static_cast<uint32_t>(n), buf);
      std::memcpy(out + done, buf, n * sizeof(T));
      done += n;
    }
  }
  void SetRange(size_t first, size_t count, const T* values) {
    PLAT_DCHECK(valid()) << "SetRange on a default-constructed rt::SharedArray";
    PLAT_CHECK_LE(first + count, count_);
    uint32_t buf[kChunkWords];
    size_t done = 0;
    while (done < count) {
      size_t n = std::min(count - done, size_t{kChunkWords});
      std::memcpy(buf, values + done, n * sizeof(T));
      kernel_->WriteWords(space_, va(first + done), static_cast<uint32_t>(n), buf);
      done += n;
    }
  }

  // A view of `count` elements starting at `first` (e.g. one matrix row).
  SharedArray Slice(size_t first, size_t count) const {
    PLAT_CHECK_LE(first + count, count_);
    return SharedArray(kernel_, space_, va(first), count);
  }

 private:
  // Staging-buffer size for GetRange/SetRange: one typical page (256 words at
  // 1 KB pages) per kernel call, small enough to live on a fiber stack.
  static constexpr size_t kChunkWords = 256;

  kernel::Kernel* kernel_ = nullptr;
  vm::AddressSpace* space_ = nullptr;
  uint32_t base_va_ = 0;
  size_t count_ = 0;
};

// A matrix whose rows are page-aligned — the allocation discipline Section 6
// recommends so rows with different sharing patterns never share a page.
template <typename T>
class SharedMatrix {
 public:
  SharedMatrix() = default;

  static SharedMatrix Create(ZoneAllocator& zone, const std::string& name, size_t rows,
                             size_t cols) {
    SharedMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    uint32_t page_words = zone.kernel().page_size() / 4;
    m.row_stride_ = (cols + page_words - 1) / page_words * page_words;
    uint32_t base = zone.AllocWords(name, m.row_stride_ * rows);
    m.data_ = SharedArray<T>(&zone.kernel(), zone.space(), base, m.row_stride_ * rows);
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  T Get(size_t r, size_t c) const { return data_.Get(r * row_stride_ + c); }
  void Set(size_t r, size_t c, T value) { data_.Set(r * row_stride_ + c, value); }
  SharedArray<T> Row(size_t r) const { return data_.Slice(r * row_stride_, cols_); }

 private:
  SharedArray<T> data_;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t row_stride_ = 0;
};

}  // namespace platinum::rt

#endif  // SRC_RUNTIME_SHARED_ARRAY_H_
