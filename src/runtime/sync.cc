#include "src/runtime/sync.h"

#include "src/base/check.h"
#include "src/kernel/thread.h"

namespace platinum::rt {

SpinLock::SpinLock(ZoneAllocator& zone, const std::string& name)
    : kernel_(&zone.kernel()), space_(zone.space()) {
  va_ = zone.AllocWords(name, 1);
  // The lock word synchronizes: test-and-set acquires, the release write
  // publishes (src/check/race_detector.h).
  kernel_->RegisterSyncWords(space_, va_, 1);
}

SpinLock::SpinLock(kernel::Kernel* kernel, vm::AddressSpace* space, uint32_t va)
    : kernel_(kernel), space_(space), va_(va) {
  PLAT_CHECK(kernel != nullptr);
  kernel_->RegisterSyncWords(space_, va_, 1);
}

void SpinLock::Acquire() {
  PLAT_CHECK(kernel_ != nullptr)
      << "Acquire on a default-constructed rt::SpinLock; build it from a "
         "ZoneAllocator (or an existing word) before use";
  SpinBackoff backoff;
  for (;;) {
    if (kernel_->AtomicTestAndSet(space_, va_) == 0) {
      return;
    }
    kernel_->machine().scheduler().Sleep(backoff.Next());
  }
}

void SpinLock::Release() {
  PLAT_CHECK(kernel_ != nullptr)
      << "Release on a default-constructed rt::SpinLock; build it from a "
         "ZoneAllocator (or an existing word) before use";
  kernel_->WriteWord(space_, va_, 0);
}

EventCountArray::EventCountArray(ZoneAllocator& zone, const std::string& name, size_t count)
    : counts_(SharedArray<uint32_t>::Create(zone, name, count)), kernel_(&zone.kernel()) {
  // Advancing a count is a release, awaiting it an acquire.
  kernel_->RegisterSyncWords(counts_.space(), counts_.base_va(),
                             static_cast<uint32_t>(count));
}

void EventCountArray::Advance(size_t index) {
  PLAT_CHECK(kernel_ != nullptr)
      << "Advance on a default-constructed rt::EventCountArray; build it from "
         "a ZoneAllocator before use";
  kernel_->AtomicFetchAdd(counts_.space(), counts_.va(index), 1);
}

uint32_t EventCountArray::Read(size_t index) const {
  PLAT_CHECK(kernel_ != nullptr)
      << "Read on a default-constructed rt::EventCountArray; build it from a "
         "ZoneAllocator before use";
  return counts_.Get(index);
}

void EventCountArray::AwaitAtLeast(size_t index, uint32_t value) const {
  PLAT_CHECK(kernel_ != nullptr)
      << "AwaitAtLeast on a default-constructed rt::EventCountArray; build it "
         "from a ZoneAllocator before use";
  SpinBackoff backoff;
  while (counts_.Get(index) < value) {
    kernel_->machine().scheduler().Sleep(backoff.Next());
  }
}

Barrier::Barrier(ZoneAllocator& zone, const std::string& name, uint32_t parties)
    : kernel_(&zone.kernel()),
      state_(SharedArray<uint32_t>::Create(zone, name, 2)),
      parties_(parties) {
  PLAT_CHECK_GT(parties, 0u);
  // The arrival counter collects every arriver's clock; the sense word
  // redistributes the releaser's (which by then dominates them all).
  kernel_->RegisterSyncWords(state_.space(), state_.base_va(), 2);
}

void Barrier::Wait() {
  PLAT_CHECK(kernel_ != nullptr)
      << "Wait on a default-constructed rt::Barrier; build it from a "
         "ZoneAllocator before use";
  kernel::Thread* thread = kernel_->CurrentThread();
  PLAT_CHECK(thread != nullptr) << "Barrier::Wait outside a thread";
  uint32_t& sense = local_sense_[thread->id()];
  uint32_t waiting_for = 1 - sense;
  sense = waiting_for;

  uint32_t arrived = kernel_->AtomicFetchAdd(state_.space(), state_.va(0), 1) + 1;
  if (arrived == parties_) {
    state_.Set(0, 0);
    state_.Set(1, waiting_for);  // release everyone
    return;
  }
  SpinBackoff backoff;
  while (state_.Get(1) != waiting_for) {
    kernel_->machine().scheduler().Sleep(backoff.Next());
  }
}

}  // namespace platinum::rt
