// User-level synchronization on coherent memory.
//
// Spin locks, event counts and barriers built from shared words, each
// allocated in its own page-aligned zone (Section 6: fine-grain modifiable
// synchronization variables must not share pages with other data — the
// paper's Gaussian-elimination anecdote shows what happens when they do).
// Spinning threads really issue coherent-memory reads, so a frozen
// synchronization page produces exactly the remote-reference traffic the
// paper describes.
#ifndef SRC_RUNTIME_SYNC_H_
#define SRC_RUNTIME_SYNC_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/base/thread_annotations.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"

namespace platinum::rt {

// Bounded exponential backoff between polls of a spun-on location.
struct SpinBackoff {
  sim::SimTime current = 2 * sim::kMicrosecond;
  sim::SimTime max = 64 * sim::kMicrosecond;

  sim::SimTime Next() {
    sim::SimTime d = current;
    current = current * 2 > max ? max : current * 2;
    return d;
  }
};

// Test-and-set spin lock in a private page.
//
// A *simulated* lock: the lock word lives in coherent memory, acquiring it
// issues real test-and-set references (charged simulated time), and a thread
// holding it may be preempted at a quantum boundary exactly as on the real
// machine. The capability annotations give clang's -Wthread-safety analysis
// acquire/release balance checking; critical sections under a SpinLock are
// *not* no-yield regions (src/base/thread_annotations.h explains the
// asymmetry with base::DisciplineLock).
class CAPABILITY("simulated spin lock") SpinLock {
 public:
  // Default-constructed locks are placeholders (e.g. members initialized
  // later); using one before assignment aborts with a clear message.
  SpinLock() = default;
  SpinLock(ZoneAllocator& zone, const std::string& name);
  // Builds a lock on an existing word (for deliberately co-located layouts,
  // e.g. the defrost ablation).
  SpinLock(kernel::Kernel* kernel, vm::AddressSpace* space, uint32_t va);

  void Acquire() ACQUIRE() PLATINUM_MAY_YIELD;  // spins with backoff sleeps
  void Release() RELEASE();
  uint32_t va() const { return va_; }

 private:
  kernel::Kernel* kernel_ = nullptr;
  vm::AddressSpace* space_ = nullptr;
  uint32_t va_ = 0;
};

// An array of event counts (monotone counters); the synchronization
// structure the paper's Gaussian elimination uses to announce pivot rows.
class EventCountArray {
 public:
  EventCountArray() = default;
  EventCountArray(ZoneAllocator& zone, const std::string& name, size_t count);

  void Advance(size_t index);
  uint32_t Read(size_t index) const;
  // Spins (with backoff) until counter `index` reaches at least `value`.
  void AwaitAtLeast(size_t index, uint32_t value) const;

 private:
  SharedArray<uint32_t> counts_;
  kernel::Kernel* kernel_ = nullptr;
};

// Centralized sense-reversing barrier. The arrival counter and sense word
// live on one (synchronization) page; per-thread sense is thread-private.
class Barrier {
 public:
  Barrier() = default;
  Barrier(ZoneAllocator& zone, const std::string& name, uint32_t parties);

  void Wait();
  // VA of the barrier's synchronization page (arrivals/sense words), for
  // attributing page-level telemetry.
  uint32_t base_va() const { return state_.base_va(); }

 private:
  kernel::Kernel* kernel_ = nullptr;
  SharedArray<uint32_t> state_;  // [0] arrivals, [1] sense
  uint32_t parties_ = 0;
  // Thread-private sense flags, keyed by thread id. Host-side state: on the
  // real machine this is a register/private variable and costs nothing.
  mutable std::unordered_map<uint32_t, uint32_t> local_sense_;
};

}  // namespace platinum::rt

#endif  // SRC_RUNTIME_SYNC_H_
