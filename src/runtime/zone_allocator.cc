#include "src/runtime/zone_allocator.h"

#include "src/base/check.h"

namespace platinum::rt {

ZoneAllocator::ZoneAllocator(kernel::Kernel* kernel, vm::AddressSpace* space, uint32_t first_vpn)
    : kernel_(kernel), space_(space), first_vpn_(first_vpn), next_vpn_(first_vpn) {
  PLAT_CHECK(kernel != nullptr);
  PLAT_CHECK(space != nullptr);
}

uint32_t ZoneAllocator::AllocWords(const std::string& name, size_t words, hw::Rights rights,
                                   int home_module) {
  PLAT_CHECK_GT(words, size_t{0});
  uint32_t page_words = kernel_->page_size() / 4;
  uint32_t pages = static_cast<uint32_t>((words + page_words - 1) / page_words);
  PLAT_CHECK_LE(next_vpn_ + pages, space_->num_pages())
      << "address space '" << space_->name() << "' exhausted allocating '" << name << "'";

  vm::MemoryObject* object = kernel_->CreateMemoryObject(name, pages, home_module);
  uint32_t vpn = next_vpn_;
  next_vpn_ += pages;
  kernel_->Map(space_, object, 0, pages, vpn, rights);
  return vpn * kernel_->page_size();
}

uint32_t ZoneAllocator::MapObject(vm::MemoryObject* object, hw::Rights rights) {
  PLAT_CHECK(object != nullptr);
  uint32_t pages = object->num_pages();
  PLAT_CHECK_LE(next_vpn_ + pages, space_->num_pages());
  uint32_t vpn = next_vpn_;
  next_vpn_ += pages;
  kernel_->Map(space_, object, 0, pages, vpn, rights);
  return vpn * kernel_->page_size();
}

}  // namespace platinum::rt
