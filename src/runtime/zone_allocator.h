// Page-aligned allocation zones (Section 6).
//
// "A run-time library for defining disjoint memory allocation zones and for
// specifying page-aligned allocation helps PLATINUM programmers [separate
// data with different access patterns] with a minimum of effort." Every
// allocation gets its own memory object and starts on a fresh page, so
// private data, read-mostly data and synchronization variables never share a
// page unless the programmer asks them to.
#ifndef SRC_RUNTIME_ZONE_ALLOCATOR_H_
#define SRC_RUNTIME_ZONE_ALLOCATOR_H_

#include <cstdint>
#include <string>

#include "src/hw/rights.h"
#include "src/kernel/kernel.h"

namespace platinum::rt {

class ZoneAllocator {
 public:
  // Manages the virtual address space of `space` starting at page
  // `first_vpn` (low pages are left unmapped to catch null-ish accesses).
  ZoneAllocator(kernel::Kernel* kernel, vm::AddressSpace* space, uint32_t first_vpn = 16);

  kernel::Kernel& kernel() { return *kernel_; }
  vm::AddressSpace* space() { return space_; }

  // Allocates `words` 32-bit words in a fresh page-aligned zone backed by its
  // own memory object. Returns the base byte address. `home_module` places
  // the pages' kernel structures.
  uint32_t AllocWords(const std::string& name, size_t words,
                      hw::Rights rights = hw::Rights::kReadWrite, int home_module = -1);

  // Maps an existing object (e.g. shared with another address space) into a
  // fresh range; returns the base byte address.
  uint32_t MapObject(vm::MemoryObject* object, hw::Rights rights);

  // Pages handed out so far.
  uint32_t pages_allocated() const { return next_vpn_ - first_vpn_; }

 private:
  kernel::Kernel* kernel_;
  vm::AddressSpace* space_;
  const uint32_t first_vpn_;
  uint32_t next_vpn_;
};

}  // namespace platinum::rt

#endif  // SRC_RUNTIME_ZONE_ALLOCATOR_H_
