#include "src/sim/fiber.h"

#include <utility>

#include "src/base/check.h"

namespace platinum::sim {

Fiber::Fiber(uint32_t id, int processor, std::string name, std::function<void()> body,
             uint32_t stack_bytes, bool daemon)
    : id_(id),
      processor_(processor),
      name_(std::move(name)),
      body_(std::move(body)),
      daemon_(daemon),
      stack_(new char[stack_bytes]) {
  PLAT_CHECK(body_ != nullptr);
  PLAT_CHECK_EQ(getcontext(&context_), 0);
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = nullptr;  // the scheduler switches away explicitly
}

Fiber::~Fiber() = default;

}  // namespace platinum::sim
