// Cooperative fibers for the virtual-time simulation.
//
// Every simulated thread of control (application thread, kernel daemon) is a
// fiber with its own stack and its own virtual clock. Fibers never run
// concurrently: the scheduler resumes exactly one at a time, always the
// runnable fiber with the smallest virtual clock, so simulated executions are
// deterministic and data structures need no host-level locking.
#ifndef SRC_SIM_FIBER_H_
#define SRC_SIM_FIBER_H_

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace platinum::sim {

class Scheduler;

class Fiber {
 public:
  enum class State : uint8_t {
    kReady,    // in the scheduler's run queue
    kRunning,  // currently executing
    kBlocked,  // waiting for an explicit Wake
    kDone,     // body returned
  };

  Fiber(uint32_t id, int processor, std::string name, std::function<void()> body,
        uint32_t stack_bytes, bool daemon);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  uint32_t id() const { return id_; }
  int processor() const { return processor_; }
  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool daemon() const { return daemon_; }
  // This fiber's virtual clock: the simulated time it has reached.
  SimTime clock() const { return clock_; }

 private:
  friend class Scheduler;

  const uint32_t id_;
  int processor_;
  const std::string name_;
  std::function<void()> body_;
  const bool daemon_;

  State state_ = State::kReady;
  SimTime clock_ = 0;
  // Virtual time at which this fiber was last resumed; used for quantum
  // accounting.
  SimTime resumed_at_ = 0;
  // Fibers waiting in Join() on this fiber.
  std::vector<Fiber*> joiners_;

  std::unique_ptr<char[]> stack_;
  ucontext_t context_;
};

}  // namespace platinum::sim

#endif  // SRC_SIM_FIBER_H_
