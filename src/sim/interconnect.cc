#include "src/sim/interconnect.h"

#include <algorithm>

#include "src/base/check.h"

namespace platinum::sim {

Interconnect::Interconnect(const MachineParams& params, std::vector<MemoryModule>* modules,
                           MachineStats* stats, obs::Observability* obs)
    : params_(params), modules_(modules), stats_(stats), obs_(obs) {
  PLAT_CHECK(modules_ != nullptr);
  PLAT_CHECK(stats_ != nullptr);
  PLAT_CHECK(obs_ != nullptr);
}

SimTime Interconnect::Reference(int requester_node, int target_node, AccessKind kind,
                                SimTime now) {
  const bool local = requester_node == target_node;
  SimTime base;
  SimTime occupancy;
  if (local) {
    base = kind == AccessKind::kRead ? params_.local_read_ns : params_.local_write_ns;
    occupancy = params_.module_occupancy_local_ns;
    if (kind == AccessKind::kRead) {
      ++stats_->local_reads;
    } else {
      ++stats_->local_writes;
    }
    ++obs_->cpu(requester_node).local_refs;
  } else {
    base = kind == AccessKind::kRead ? params_.remote_read_ns : params_.remote_write_ns;
    occupancy = params_.module_occupancy_remote_ns;
    if (kind == AccessKind::kRead) {
      ++stats_->remote_reads;
    } else {
      ++stats_->remote_writes;
    }
    ++obs_->cpu(requester_node).remote_refs;
  }

  MemoryModule& module = (*modules_)[target_node];
  SimTime start = std::max(now, module.bus_busy_until);
  module.bus_busy_until = start + occupancy;
  SimTime wait = start - now;
  stats_->module_wait_ns += wait;
  obs::ModuleCounters& counters = obs_->module(target_node);
  ++counters.references_served;
  counters.queue_wait_ns += wait;
  obs_->RecordLatency(obs::HistKind::kModuleQueue, wait);
  return wait + base;
}

SimTime Interconnect::BlockTransfer(int src_node, int dst_node, uint32_t words, SimTime now) {
  PLAT_CHECK_NE(src_node, dst_node);
  MemoryModule& src = (*modules_)[src_node];
  MemoryModule& dst = (*modules_)[dst_node];

  SimTime start = std::max({now, src.bus_busy_until, dst.bus_busy_until});
  SimTime duration = static_cast<SimTime>(words) * params_.block_copy_word_ns;
  SimTime end = start + duration;

  // The transfer engine consumes block_bus_steal_permille of both buses for
  // its duration; other traffic effectively queues behind that share.
  SimTime steal = duration * params_.block_bus_steal_permille / 1000;
  src.bus_busy_until = start + steal;
  dst.bus_busy_until = start + steal;

  stats_->module_wait_ns += start - now;
  ++stats_->block_transfers;
  stats_->block_words_copied += words;
  ++obs_->module(src_node).block_transfers_out;
  ++obs_->module(dst_node).block_transfers_in;
  return end;
}

}  // namespace platinum::sim
