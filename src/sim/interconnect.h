// Butterfly-switch timing model.
//
// Models the latency and contention of word references and block transfers.
// Contention is modeled by queueing at the target memory module's bus: each
// reference occupies the bus for a short service interval, so concurrent
// traffic to a hot module serializes (the dominant contention effect on the
// Butterfly, and the effect PLATINUM's replication is designed to relieve).
// Block transfers additionally steal most of the bus bandwidth on *both*
// nodes involved (paper Section 7: 75%).
#ifndef SRC_SIM_INTERCONNECT_H_
#define SRC_SIM_INTERCONNECT_H_

#include <cstdint>
#include <vector>

#include "src/obs/observability.h"
#include "src/sim/memory_module.h"
#include "src/sim/params.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace platinum::sim {

enum class AccessKind : uint8_t { kRead, kWrite };

class Interconnect {
 public:
  Interconnect(const MachineParams& params, std::vector<MemoryModule>* modules,
               MachineStats* stats, obs::Observability* obs);

  // Latency of one 32-bit reference issued at virtual time `now` by
  // `requester_node` against `target_node`'s module, including any time spent
  // queued behind other traffic. Updates module bus occupancy and stats.
  SimTime Reference(int requester_node, int target_node, AccessKind kind, SimTime now);

  // Schedules a block transfer of `words` 32-bit words from `src_node` to
  // `dst_node` starting no earlier than `now`. Returns the completion time.
  // Both modules' buses are largely consumed for the duration.
  SimTime BlockTransfer(int src_node, int dst_node, uint32_t words, SimTime now);

 private:
  const MachineParams& params_;
  std::vector<MemoryModule>* modules_;
  MachineStats* stats_;
  obs::Observability* obs_;
};

}  // namespace platinum::sim

#endif  // SRC_SIM_INTERCONNECT_H_
