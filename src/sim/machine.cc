#include "src/sim/machine.h"

#include <cstring>

#include "src/base/check.h"

namespace platinum::sim {

Machine::Machine(const MachineParams& params)
    : params_([&] {
        params.Validate();
        return params;
      }()),
      obs_(params_.num_processors),
      scheduler_(params_.num_processors, params_.quantum_ns, params_.fiber_stack_bytes),
      interconnect_(params_, &modules_, &stats_, &obs_) {
  modules_.reserve(params_.num_processors);
  for (int node = 0; node < params_.num_processors; ++node) {
    modules_.emplace_back(node, params_);
  }
}

MemoryModule& Machine::module(int node) {
  PLAT_CHECK_GE(node, 0);
  PLAT_CHECK_LT(node, num_nodes());
  return modules_[node];
}

SimTime Machine::Reference(int target_node, AccessKind kind) {
  int requester = scheduler_.current() != nullptr ? scheduler_.current_processor() : 0;
  SimTime latency = interconnect_.Reference(requester, target_node, kind, scheduler_.now());
  scheduler_.Advance(latency);
  return latency;
}

void Machine::BlockTransferPage(int src_node, uint32_t src_frame, int dst_node,
                                uint32_t dst_frame) {
  PLAT_CHECK_NE(src_node, dst_node);
  SimTime started = scheduler_.now();
  SimTime done = interconnect_.BlockTransfer(src_node, dst_node, params_.words_per_page(),
                                             started);
  std::memcpy(modules_[dst_node].FrameData(dst_frame), modules_[src_node].FrameData(src_frame),
              params_.page_size_bytes);
  scheduler_.AdvanceTo(done);
  // Request-to-completion duration, including the time queued behind other
  // traffic on either bus.
  obs_.RecordLatency(obs::HistKind::kBlockTransfer, done - started);
}

uint32_t Machine::ReadWordRaw(int node, uint32_t frame, uint32_t word_offset) const {
  PLAT_DCHECK(word_offset < params_.words_per_page());
  uint32_t value;
  std::memcpy(&value, modules_[node].FrameData(frame) + word_offset * 4, 4);
  return value;
}

void Machine::WriteWordRaw(int node, uint32_t frame, uint32_t word_offset, uint32_t value) {
  PLAT_DCHECK(word_offset < params_.words_per_page());
  std::memcpy(modules_[node].FrameData(frame) + word_offset * 4, &value, 4);
}

}  // namespace platinum::sim
