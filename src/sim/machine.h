// The simulated NUMA machine: processors (fiber scheduler), memory modules,
// interconnect, and global statistics. This is the substrate the PLATINUM
// kernel runs on; it replaces the BBN Butterfly Plus hardware of the paper.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/observability.h"
#include "src/sim/interconnect.h"
#include "src/sim/memory_module.h"
#include "src/sim/params.h"
#include "src/sim/scheduler.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace platinum::sim {

class Machine {
 public:
  explicit Machine(const MachineParams& params);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineParams& params() const { return params_; }
  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  MachineStats& stats() { return stats_; }
  const MachineStats& stats() const { return stats_; }
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }
  int num_nodes() const { return params_.num_processors; }

  MemoryModule& module(int node);

  // --- Timed operations, charged to the current fiber -----------------------
  // One 32-bit reference against `target_node` from the current processor.
  // Returns the latency charged.
  SimTime Reference(int target_node, AccessKind kind);
  // As above but on behalf of kernel code touching a kernel structure that
  // lives on `target_node` (identical costs; separate name for readability).
  SimTime KernelReference(int target_node, AccessKind kind) {
    return Reference(target_node, kind);
  }
  // Charges pure compute time to the current fiber.
  void Compute(SimTime duration) { scheduler_.Advance(duration); }

  // Copies a whole page between frames on two nodes with the block-transfer
  // engine, moving the real bytes and charging the initiator until the
  // transfer completes.
  void BlockTransferPage(int src_node, uint32_t src_frame, int dst_node, uint32_t dst_frame);

  // --- Untimed data plumbing -------------------------------------------------
  uint32_t ReadWordRaw(int node, uint32_t frame, uint32_t word_offset) const;
  void WriteWordRaw(int node, uint32_t frame, uint32_t word_offset, uint32_t value);

  // Page identifiers for frames allocated outside the coherent-memory system
  // (baselines that place data by hand). Distinct from Cpage ids, which grow
  // from 0.
  uint32_t AllocRawPageId() { return next_raw_page_id_++; }

 private:
  const MachineParams params_;
  MachineStats stats_;
  obs::Observability obs_;
  Scheduler scheduler_;
  std::vector<MemoryModule> modules_;
  Interconnect interconnect_;
  uint32_t next_raw_page_id_ = 0x40000000;
};

}  // namespace platinum::sim

#endif  // SRC_SIM_MACHINE_H_
