#include "src/sim/memory_module.h"

#include "src/base/check.h"

namespace platinum::sim {

MemoryModule::MemoryModule(int node, const MachineParams& params)
    : node_(node),
      num_frames_(params.frames_per_module),
      page_size_(params.page_size_bytes),
      slot_state_(num_frames_, SlotState::kFree),
      slot_cpage_(num_frames_, kInvalidCpage),
      data_(static_cast<size_t>(num_frames_) * page_size_, 0),
      free_frames_(num_frames_) {}

uint32_t MemoryModule::Hash(uint32_t cpage_index) const {
  // splitmix-style scramble; the paper only requires a hash of the Cpage
  // index that spreads entries across the table.
  uint64_t x = cpage_index;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % num_frames_);
}

std::optional<MemoryModule::ProbeResult> MemoryModule::AllocFrame(uint32_t cpage_index) {
  PLAT_CHECK_NE(cpage_index, kInvalidCpage);
  table_lock_.Acquire();
  std::optional<ProbeResult> result = AllocFrameLocked(cpage_index);
  table_lock_.Release();
  return result;
}

std::optional<MemoryModule::ProbeResult> MemoryModule::AllocFrameLocked(uint32_t cpage_index) {
  if (free_frames_ == 0) {
    return std::nullopt;
  }
  uint32_t slot = Hash(cpage_index);
  for (uint32_t probes = 1; probes <= num_frames_; ++probes) {
    if (slot_state_[slot] != SlotState::kUsed) {
      slot_state_[slot] = SlotState::kUsed;
      slot_cpage_[slot] = cpage_index;
      --free_frames_;
      return ProbeResult{slot, probes};
    }
    PLAT_DCHECK(slot_cpage_[slot] != cpage_index) << "double allocation for cpage";
    slot = (slot + 1) % num_frames_;
  }
  return std::nullopt;
}

void MemoryModule::FreeFrame(uint32_t frame) {
  PLAT_CHECK_LT(frame, num_frames_);
  table_lock_.Acquire();
  PLAT_CHECK(slot_state_[frame] == SlotState::kUsed) << "freeing unallocated frame " << frame;
  slot_state_[frame] = SlotState::kTombstone;
  slot_cpage_[frame] = kInvalidCpage;
  ++free_frames_;
  table_lock_.Release();
}

std::optional<MemoryModule::ProbeResult> MemoryModule::FindFrame(uint32_t cpage_index) const {
  table_lock_.Acquire();
  std::optional<ProbeResult> result = FindFrameLocked(cpage_index);
  table_lock_.Release();
  return result;
}

std::optional<MemoryModule::ProbeResult> MemoryModule::FindFrameLocked(
    uint32_t cpage_index) const {
  uint32_t slot = Hash(cpage_index);
  for (uint32_t probes = 1; probes <= num_frames_; ++probes) {
    switch (slot_state_[slot]) {
      case SlotState::kFree:
        return std::nullopt;
      case SlotState::kUsed:
        if (slot_cpage_[slot] == cpage_index) {
          return ProbeResult{slot, probes};
        }
        break;
      case SlotState::kTombstone:
        break;
    }
    slot = (slot + 1) % num_frames_;
  }
  return std::nullopt;
}

uint32_t MemoryModule::FrameOwner(uint32_t frame) const {
  PLAT_CHECK_LT(frame, num_frames_);
  table_lock_.Acquire();
  uint32_t owner = slot_state_[frame] == SlotState::kUsed ? slot_cpage_[frame] : kInvalidCpage;
  table_lock_.Release();
  return owner;
}

uint8_t* MemoryModule::FrameData(uint32_t frame) {
  PLAT_CHECK_LT(frame, num_frames_);
  return data_.data() + static_cast<size_t>(frame) * page_size_;
}

const uint8_t* MemoryModule::FrameData(uint32_t frame) const {
  PLAT_CHECK_LT(frame, num_frames_);
  return data_.data() + static_cast<size_t>(frame) * page_size_;
}

}  // namespace platinum::sim
