// A physical memory module on one NUMA node.
//
// Each module owns a set of page frames with real backing storage (the
// simulator stores and moves actual data so that application results can be
// verified end-to-end), plus the *inverted page table* the paper describes in
// Section 2.3: an open-addressed table keyed by coherent-page index, so the
// fault handler can locate or allocate a local copy using only local memory
// references (Section 3.3).
#ifndef SRC_SIM_MEMORY_MODULE_H_
#define SRC_SIM_MEMORY_MODULE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/discipline_lock.h"
#include "src/base/thread_annotations.h"
#include "src/sim/params.h"
#include "src/sim/time.h"

namespace platinum::sim {

inline constexpr uint32_t kInvalidCpage = UINT32_MAX;

class MemoryModule {
 public:
  // Result of an inverted-page-table operation: the frame plus the number of
  // table slots probed (each probe is one local memory reference).
  struct ProbeResult {
    uint32_t frame = 0;
    uint32_t probes = 0;
  };

  MemoryModule(int node, const MachineParams& params);

  int node() const { return node_; }
  uint32_t num_frames() const { return num_frames_; }
  uint32_t free_frames() const {
    table_lock_.Acquire();
    uint32_t n = free_frames_;
    table_lock_.Release();
    return n;
  }

  // Allocates a frame for `cpage_index`, placing it near hash(cpage_index) in
  // the inverted page table. Returns nullopt when the module is full.
  std::optional<ProbeResult> AllocFrame(uint32_t cpage_index);
  // Releases `frame`; its slot becomes a tombstone so later probes still find
  // entries placed behind it.
  void FreeFrame(uint32_t frame);
  // Finds the frame backing `cpage_index`, if any.
  std::optional<ProbeResult> FindFrame(uint32_t cpage_index) const;
  // Which coherent page a frame backs, or kInvalidCpage.
  uint32_t FrameOwner(uint32_t frame) const;

  // Raw backing storage of a frame (page_size bytes).
  uint8_t* FrameData(uint32_t frame);
  const uint8_t* FrameData(uint32_t frame) const;

  // Bus occupancy bookkeeping: the virtual time until which this module's bus
  // is busy. Maintained by the Interconnect.
  SimTime bus_busy_until = 0;

 private:
  enum class SlotState : uint8_t { kFree, kUsed, kTombstone };

  uint32_t Hash(uint32_t cpage_index) const;
  std::optional<ProbeResult> AllocFrameLocked(uint32_t cpage_index) REQUIRES(table_lock_);
  std::optional<ProbeResult> FindFrameLocked(uint32_t cpage_index) const
      REQUIRES(table_lock_);

  const int node_;
  const uint32_t num_frames_;
  const uint32_t page_size_;
  // The per-module lock of Section 3.3: the fault handler manipulates the
  // inverted page table and free-frame count only inside it, and must not
  // reach a scheduler switch point while holding it (the handler performs
  // strictly local references in this section). Zero-cost under fiber
  // serialization; enforced by clang -Wthread-safety and platlint.
  base::DisciplineLock table_lock_;
  std::vector<SlotState> slot_state_ GUARDED_BY(table_lock_);
  std::vector<uint32_t> slot_cpage_ GUARDED_BY(table_lock_);
  std::vector<uint8_t> data_;
  uint32_t free_frames_ GUARDED_BY(table_lock_);
};

}  // namespace platinum::sim

#endif  // SRC_SIM_MEMORY_MODULE_H_
