#include "src/sim/params.h"

#include "src/base/check.h"

namespace platinum::sim {

void MachineParams::Validate() const {
  PLAT_CHECK_GT(num_processors, 0);
  PLAT_CHECK_LE(num_processors, kMaxProcessors);
  PLAT_CHECK_GT(frames_per_module, 0u);
  PLAT_CHECK_GT(page_size_bytes, 0u);
  PLAT_CHECK_EQ(page_size_bytes % 4, 0u) << "pages must hold whole 32-bit words";
  PLAT_CHECK((page_size_bytes & (page_size_bytes - 1)) == 0) << "page size must be a power of 2";
  PLAT_CHECK_GT(atc_entries, 0u);
  PLAT_CHECK((atc_entries & (atc_entries - 1)) == 0) << "ATC must be a power-of-2 direct map";
  PLAT_CHECK_LE(block_bus_steal_permille, 1000u);
  PLAT_CHECK_GT(quantum_ns, SimTime{0});
  PLAT_CHECK_GE(fiber_stack_bytes, 64u * 1024);
  PLAT_CHECK_GE(defrost_processor, 0);
  PLAT_CHECK_LT(defrost_processor, num_processors);
}

MachineParams ButterflyPlusParams(int num_processors) {
  MachineParams params;
  params.num_processors = num_processors;
  return params;
}

}  // namespace platinum::sim
