// Machine and kernel timing parameters.
//
// Defaults model the 16-node BBN Butterfly Plus described in the PLATINUM
// paper (SOSP '89, Section 4): MC68020/MC68851 nodes, 4 KB pages, 320 ns
// local word access, ~5 us remote read, 1.11 ms page block transfer, and the
// measured fixed overheads of the coherent-memory fault handler.
#ifndef SRC_SIM_PARAMS_H_
#define SRC_SIM_PARAMS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace platinum::sim {

// Hard upper bound on processors; masks are held in uint64_t bit vectors.
inline constexpr int kMaxProcessors = 64;

struct MachineParams {
  // ---- Topology -----------------------------------------------------------
  // One node = one processor + one memory module (Butterfly organization).
  int num_processors = 16;
  // Physical frames per memory module. 1024 x 4 KB = 4 MB per node, matching
  // the Butterfly Plus nodes used in the paper.
  uint32_t frames_per_module = 1024;

  // ---- Page geometry ------------------------------------------------------
  uint32_t page_size_bytes = 4096;

  // ---- Reference latencies (Section 4.1) ----------------------------------
  SimTime local_read_ns = 320;
  SimTime local_write_ns = 320;
  SimTime remote_read_ns = 5000;
  // "Write operations are faster" than remote reads; no round trip needed.
  SimTime remote_write_ns = 2000;

  // Occupancy of the target memory-module bus per reference; this is what
  // serializes concurrent accesses to a hot module (contention).
  SimTime module_occupancy_local_ns = 320;
  // Hot-spot throughput of one module serving remote requests is about one
  // reference per microsecond on the Butterfly; most of the 5 us latency is
  // switch round-trip, not module service time.
  SimTime module_occupancy_remote_ns = 1000;

  // ---- Block transfer (Sections 4, 7) --------------------------------------
  // Per-32-bit-word copy cost. 1084 ns * 1024 words = 1.110 ms per 4 KB page,
  // the figure reported in Section 4.
  SimTime block_copy_word_ns = 1084;
  // Fraction (x1000) of both nodes' local bus bandwidth consumed by a block
  // transfer (Section 7: 75%).
  uint32_t block_bus_steal_permille = 750;

  // ---- MMU ----------------------------------------------------------------
  // MC68851 address-translation cache: 64 entries, direct mapped here.
  uint32_t atc_entries = 64;
  // Table-walk + ATC fill on an ATC miss with a valid Pmap entry (two local
  // references to the per-processor Pmap).
  SimTime atc_fill_ns = 640;

  // ---- Coherent-memory handler costs (Section 4) ---------------------------
  // Fixed overhead of a coherent page fault when the relevant kernel data
  // structures are in local memory (trap, Cmap lookup, allocate + map).
  SimTime fault_fixed_ns = 230 * kMicrosecond;
  // Additional cost when the Cpage-table entry lives on a remote node.
  SimTime fault_remote_extra_ns = 40 * kMicrosecond;
  // Setting up a synchronous shootdown round (posting Cmap messages and
  // synchronizing with the first interrupted processor).
  SimTime shootdown_setup_ns = 200 * kMicrosecond;
  // Incremental delay to the initiator per additional interrupted processor
  // (Section 4 reports ~7 us; Mach needed 55 us).
  SimTime shootdown_per_processor_ns = 7 * kMicrosecond;
  // Freeing a physical page: one remote read plus one remote write.
  SimTime page_free_ns = 10 * kMicrosecond;
  // Cost charged to an interrupted processor for taking the IPI and scanning
  // the Cmap message queue.
  SimTime ipi_handler_ns = 7 * kMicrosecond;

  // ---- Kernel services ------------------------------------------------------
  // Fixed kernel overhead of a port send/receive (trap, queue manipulation).
  SimTime port_fixed_ns = 150 * kMicrosecond;
  // Per-32-bit-word message copy cost (the kernel uses the block-transfer
  // path to move message bodies into the receiver's node).
  SimTime port_word_ns = 1084;
  // Creating a kernel thread.
  SimTime thread_spawn_ns = 500 * kMicrosecond;
  // Explicit thread migration moves the kernel stack with the thread
  // (Section 2.2); one page at block-transfer speed plus fixed cost.
  SimTime thread_migrate_fixed_ns = 300 * kMicrosecond;

  // ---- Replication policy (Section 4.2) ------------------------------------
  // Freeze window t1: pages invalidated more recently than this are frozen
  // (remote-mapped) instead of replicated.
  SimTime t1_freeze_window_ns = 10 * kMillisecond;
  // Defrost-daemon period t2.
  SimTime t2_defrost_period_ns = 1 * kSecond;
  // Alternative daemon (Section 4.2): treat the frozen list as a priority
  // queue ordered by thaw deadline, so every page stays frozen for a full t2
  // and is thawed as soon as its own deadline passes, instead of at the next
  // multiple of t2.
  bool adaptive_defrost = false;
  // Node the defrost daemon runs on.
  int defrost_processor = 0;

  // ---- Simulation controls --------------------------------------------------
  // A fiber voluntarily yields once it has run this much virtual time; bounds
  // the clock skew between concurrently simulated processors.
  SimTime quantum_ns = 20 * kMicrosecond;
  // Stack size for each simulated thread of control.
  uint32_t fiber_stack_bytes = 256 * 1024;

  // Total physical frames across the machine.
  uint64_t total_frames() const {
    return static_cast<uint64_t>(num_processors) * frames_per_module;
  }
  uint32_t words_per_page() const { return page_size_bytes / 4; }

  // Aborts if the parameter combination is unsupported.
  void Validate() const;
};

// The configuration used throughout the paper's evaluation.
MachineParams ButterflyPlusParams(int num_processors = 16);

}  // namespace platinum::sim

#endif  // SRC_SIM_PARAMS_H_
