#include "src/sim/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace platinum::sim {

thread_local Scheduler* Scheduler::active_ = nullptr;

Scheduler::Scheduler(int num_processors, SimTime quantum, uint32_t fiber_stack_bytes)
    : quantum_(quantum),
      fiber_stack_bytes_(fiber_stack_bytes),
      processor_available_(num_processors, 0),
      pending_interrupt_cost_(num_processors, 0) {
  PLAT_CHECK_GT(num_processors, 0);
  PLAT_CHECK_GT(quantum, SimTime{0});
}

Scheduler::~Scheduler() = default;

Fiber* Scheduler::Spawn(int processor, std::string name, std::function<void()> body,
                        bool daemon) {
  PLAT_CHECK_GE(processor, 0);
  PLAT_CHECK_LT(processor, num_processors());
  auto fiber = std::make_unique<Fiber>(static_cast<uint32_t>(fibers_.size()), processor,
                                       std::move(name), std::move(body), fiber_stack_bytes_,
                                       daemon);
  Fiber* raw = fiber.get();
  makecontext(&raw->context_, reinterpret_cast<void (*)()>(&Scheduler::Trampoline), 0);
  // A fiber spawned by a running fiber cannot begin before its spawner's
  // current virtual time.
  raw->clock_ = (current_ != nullptr) ? current_->clock_ : global_now_;
  fibers_.push_back(std::move(fiber));
  if (!daemon) {
    ++live_non_daemon_;
  }
  MakeReady(raw);
  return raw;
}

void Scheduler::MakeReady(Fiber* fiber) {
  fiber->state_ = Fiber::State::kReady;
  ready_.push(ReadyEntry{fiber->clock_, next_seq_++, fiber});
}

void Scheduler::Run() {
  PLAT_CHECK(!running_) << "Run() is not reentrant";
  PLAT_CHECK(current_ == nullptr);
  running_ = true;
  Scheduler* previous_active = active_;
  active_ = this;

  while (live_non_daemon_ > 0) {
    PLAT_CHECK(!ready_.empty()) << "deadlock: " << live_non_daemon_
                                << " non-daemon fibers alive but none runnable";
    ReadyEntry entry = ready_.top();
    ready_.pop();
    Fiber* fiber = entry.fiber;
    PLAT_CHECK(fiber->state_ == Fiber::State::kReady);

    // Serialize fibers sharing a processor, and deliver any pending interrupt
    // handling cost to whoever occupies the node next.
    int processor = fiber->processor_;
    SimTime start = std::max(fiber->clock_, processor_available_[processor]);
    start += pending_interrupt_cost_[processor];
    pending_interrupt_cost_[processor] = 0;

    fiber->clock_ = start;
    fiber->resumed_at_ = start;
    fiber->state_ = Fiber::State::kRunning;
    BumpGlobalNow(start);
    current_ = fiber;
    ++switches_;
    PLAT_CHECK_EQ(swapcontext(&main_context_, &fiber->context_), 0);
    current_ = nullptr;
  }

  active_ = previous_active;
  running_ = false;
}

void Scheduler::Trampoline() {
  PLAT_CHECK(active_ != nullptr);
  active_->RunFiberBody();
}

void Scheduler::RunFiberBody() {
  Fiber* self = current_;
  PLAT_CHECK(self != nullptr);
  self->body_();
  FinishCurrent();
  PLAT_CHECK(false) << "resumed a finished fiber";
}

void Scheduler::FinishCurrent() {
  Fiber* self = current_;
  self->state_ = Fiber::State::kDone;
  if (!self->daemon_) {
    --live_non_daemon_;
  }
  for (Fiber* joiner : self->joiners_) {
    Wake(joiner, self->clock_);
  }
  self->joiners_.clear();
  processor_available_[self->processor_] =
      std::max(processor_available_[self->processor_], self->clock_);
  BumpGlobalNow(self->clock_);
  // Return to the dispatch loop for good.
  PLAT_CHECK_EQ(swapcontext(&self->context_, &main_context_), 0);
}

SimTime Scheduler::now() const {
  return (current_ != nullptr) ? current_->clock_ : global_now_;
}

int Scheduler::current_processor() const {
  PLAT_CHECK(current_ != nullptr) << "no fiber is running";
  return current_->processor_;
}

void Scheduler::Advance(SimTime duration) {
  if (current_ == nullptr) {
    return;  // machine setup before Run(); costs nothing in virtual time
  }
  current_->clock_ += duration;
}

void Scheduler::AdvanceTo(SimTime t) {
  if (current_ == nullptr) {
    return;
  }
  current_->clock_ = std::max(current_->clock_, t);
}

bool Scheduler::MaybeYield() {
  if (current_ == nullptr) {
    return false;
  }
  if (current_->clock_ - current_->resumed_at_ < quantum_) {
    return false;
  }
  Yield();
  return true;
}

void Scheduler::Yield() {
  Fiber* self = current_;
  PLAT_CHECK(self != nullptr);
  MakeReady(self);
  SwitchOut(/*release_processor_at=*/self->clock_);
}

void Scheduler::Sleep(SimTime duration) {
  Fiber* self = current_;
  PLAT_CHECK(self != nullptr);
  // The processor is free while this fiber sleeps.
  SimTime release = self->clock_;
  self->clock_ += duration;
  MakeReady(self);
  SwitchOut(release);
}

void Scheduler::Block() {
  Fiber* self = current_;
  PLAT_CHECK(self != nullptr);
  self->state_ = Fiber::State::kBlocked;
  SwitchOut(/*release_processor_at=*/self->clock_);
  PLAT_CHECK(self->state_ == Fiber::State::kRunning);
}

void Scheduler::Wake(Fiber* fiber, SimTime not_before) {
  PLAT_CHECK(fiber != nullptr);
  PLAT_CHECK(fiber->state_ == Fiber::State::kBlocked)
      << "Wake on fiber '" << fiber->name() << "' in state " << static_cast<int>(fiber->state_);
  fiber->clock_ = std::max(fiber->clock_, not_before);
  MakeReady(fiber);
}

void Scheduler::Join(Fiber* fiber) {
  Fiber* self = current_;
  PLAT_CHECK(self != nullptr) << "Join must be called from a fiber";
  PLAT_CHECK(fiber != self);
  if (fiber->state_ == Fiber::State::kDone) {
    self->clock_ = std::max(self->clock_, fiber->clock_);
    return;
  }
  fiber->joiners_.push_back(self);
  Block();
}

void Scheduler::MigrateCurrent(int new_processor) {
  Fiber* self = current_;
  PLAT_CHECK(self != nullptr);
  PLAT_CHECK_GE(new_processor, 0);
  PLAT_CHECK_LT(new_processor, num_processors());
  if (new_processor == self->processor_) {
    return;
  }
  processor_available_[self->processor_] =
      std::max(processor_available_[self->processor_], self->clock_);
  self->processor_ = new_processor;
  // Re-enter the run queue so the arrival serializes against the new node.
  Yield();
}

void Scheduler::AddInterruptCost(int processor, SimTime cost) {
  PLAT_CHECK_GE(processor, 0);
  PLAT_CHECK_LT(processor, num_processors());
  pending_interrupt_cost_[processor] += cost;
}

void Scheduler::SwitchOut(SimTime release_processor_at) {
  Fiber* self = current_;
  processor_available_[self->processor_] =
      std::max(processor_available_[self->processor_], release_processor_at);
  // Record only time actually executed: a sleeping fiber's clock already
  // points at its future wake-up and must not drag global_now forward.
  BumpGlobalNow(release_processor_at);
  PLAT_CHECK_EQ(swapcontext(&self->context_, &main_context_), 0);
}

void Scheduler::BumpGlobalNow(SimTime t) {
  if (t <= global_now_) {
    return;
  }
  global_now_ = t;
  if (time_observer_ != nullptr) [[unlikely]] {
    time_observer_->OnTimeAdvance(t);
  }
}

}  // namespace platinum::sim
