// Deterministic virtual-time scheduler.
//
// The scheduler owns all fibers and always resumes the runnable fiber with
// the smallest virtual clock (ties broken by spawn order), bounded by a yield
// quantum. Fibers bound to the same simulated processor are serialized: a
// fiber cannot start running on processor P before the previous occupant of P
// released it, which models kernel threads timesharing a node.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/sim/fiber.h"
#include "src/sim/time.h"

namespace platinum::sim {

// Passive observer of the global virtual-time high-water mark. Fired from
// inside the dispatch loop and switch points whenever global_now() actually
// moves forward, so a consumer (the obs-layer epoch sampler) can close
// simulated-time epochs without owning a fiber — observing never perturbs
// the schedule. Callbacks must not yield and must not call back into the
// scheduler's switching primitives.
class TimeObserver {
 public:
  virtual ~TimeObserver() = default;
  // `now` is the new (strictly increased) value of global_now().
  virtual void OnTimeAdvance(SimTime now) = 0;
};

class Scheduler {
 public:
  // `quantum` bounds how far a fiber may run ahead before yielding; it is the
  // maximum clock skew between concurrently simulated processors.
  Scheduler(int num_processors, SimTime quantum, uint32_t fiber_stack_bytes);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a fiber bound to `processor`. Daemon fibers do not keep Run()
  // alive. May be called from inside or outside a fiber; a fiber spawned from
  // another starts no earlier than its spawner's current clock. Only enqueues
  // the new fiber; the spawner keeps running.
  Fiber* Spawn(int processor, std::string name, std::function<void()> body, bool daemon = false)
      PLATINUM_NO_YIELD;

  // Runs until every non-daemon fiber has finished. Aborts on deadlock
  // (non-daemon fibers alive but nothing runnable).
  void Run() PLATINUM_MAY_YIELD;

  // --- Introspection ---------------------------------------------------------
  Fiber* current() const { return current_; }
  // Virtual time at the calling context: the current fiber's clock, or the
  // global high-water mark when called outside any fiber.
  SimTime now() const;
  SimTime global_now() const { return global_now_; }
  int current_processor() const;
  int num_processors() const { return static_cast<int>(processor_available_.size()); }
  uint64_t context_switches() const { return switches_; }

  // --- Time accounting (current fiber) --------------------------------------
  // Charges `duration` of computation/latency to the current fiber. Never a
  // switch point: clock advances are atomic with respect to other fibers.
  void Advance(SimTime duration) PLATINUM_NO_YIELD;
  // Moves the current fiber's clock forward to at least `t` (waiting on an
  // external resource). No-op if already past `t`.
  void AdvanceTo(SimTime t) PLATINUM_NO_YIELD;

  // --- Cooperative scheduling ------------------------------------------------
  // Every switch point of the simulation is one of the PLATINUM_MAY_YIELD
  // functions below; tools/platlint proves none is reachable from a kernel
  // critical section (docs/STATIC_ANALYSIS.md).
  //
  // Yields if the current fiber has exceeded its quantum. Returns true if a
  // switch happened.
  bool MaybeYield() PLATINUM_MAY_YIELD;
  void Yield() PLATINUM_MAY_YIELD;
  // Advances the clock by `duration` without occupying the processor, letting
  // other fibers bound to the same processor run meanwhile.
  void Sleep(SimTime duration) PLATINUM_MAY_YIELD;
  // Parks the current fiber until another fiber calls Wake on it.
  void Block() PLATINUM_MAY_YIELD;
  // Makes `fiber` runnable again, no earlier than virtual time `not_before`.
  // Only enqueues; the caller keeps the processor.
  void Wake(Fiber* fiber, SimTime not_before) PLATINUM_NO_YIELD;
  // Blocks the current fiber until `fiber` finishes. Returns immediately if it
  // already has; the caller's clock is advanced to at least the finish time.
  void Join(Fiber* fiber) PLATINUM_MAY_YIELD;
  // Rebinds the current fiber to another processor (thread migration). The
  // fiber waits for the target processor to become available.
  void MigrateCurrent(int new_processor) PLATINUM_MAY_YIELD;

  // --- Interrupt modeling -----------------------------------------------------
  // Charges `cost` to whichever fiber next occupies `processor` (the
  // interrupted node spends this time in its IPI handler).
  void AddInterruptCost(int processor, SimTime cost) PLATINUM_NO_YIELD;

  // --- Time observation --------------------------------------------------------
  // Installs the observer notified whenever global_now() moves forward (one
  // slot; pass nullptr to detach). Costs one branch per dispatch when empty.
  void SetTimeObserver(TimeObserver* observer) { time_observer_ = observer; }

 private:
  struct ReadyEntry {
    SimTime key;
    uint64_t seq;
    Fiber* fiber;
    bool operator>(const ReadyEntry& other) const {
      if (key != other.key) {
        return key > other.key;
      }
      return seq > other.seq;
    }
  };

  void MakeReady(Fiber* fiber) PLATINUM_NO_YIELD;
  // Raises global_now_ to at least `t`, notifying the time observer on any
  // actual increase. The only writer of global_now_.
  void BumpGlobalNow(SimTime t) PLATINUM_NO_YIELD;
  // Suspends the current fiber (which must already have updated its state) and
  // returns to the dispatch loop. `release_processor_at` is when the fiber
  // stops occupying its processor. The primitive switch point.
  void SwitchOut(SimTime release_processor_at) PLATINUM_MAY_YIELD;
  static void Trampoline();
  void RunFiberBody();
  void FinishCurrent();

  const SimTime quantum_;
  const uint32_t fiber_stack_bytes_;

  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<ReadyEntry>> ready_;
  std::vector<SimTime> processor_available_;
  std::vector<SimTime> pending_interrupt_cost_;

  Fiber* current_ = nullptr;
  ucontext_t main_context_;
  SimTime global_now_ = 0;
  TimeObserver* time_observer_ = nullptr;
  int live_non_daemon_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t switches_ = 0;
  bool running_ = false;

  // The scheduler whose Run() loop owns the calling host thread. thread_local
  // so independent machines can be simulated concurrently on different host
  // threads (bench::SweepRunner); fibers never migrate across host threads.
  static thread_local Scheduler* active_;
};

}  // namespace platinum::sim

#endif  // SRC_SIM_SCHEDULER_H_
