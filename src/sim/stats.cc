#include "src/sim/stats.h"

#include <sstream>

namespace platinum::sim {

std::string MachineStats::ToString() const {
  std::ostringstream out;
  out << "references: local r/w " << local_reads << "/" << local_writes << ", remote r/w "
      << remote_reads << "/" << remote_writes << "\n";
  out << "atc: hits " << atc_hits << ", misses " << atc_misses << "\n";
  out << "faults: " << faults << " (read " << read_faults << ", write " << write_faults << ")\n";
  out << "actions: fills " << initial_fills << ", replications " << replications
      << ", migrations " << migrations << ", remote-maps " << remote_maps << "\n";
  out << "policy: freezes " << freezes << ", thaws " << thaws << "\n";
  out << "shootdowns: " << shootdowns << " rounds, " << ipis_sent << " IPIs, "
      << mappings_invalidated << " invalidated, " << mappings_restricted << " restricted, "
      << pages_freed << " pages freed\n";
  out << "block transfers: " << block_transfers << " (" << block_words_copied << " words)\n";
  out << "contention: module wait " << ToMilliseconds(module_wait_ns) << " ms, handler wait "
      << ToMilliseconds(fault_handler_wait_ns) << " ms\n";
  if (lease_waits > 0) {
    out << "leases: " << lease_waits << " expiry waits, "
        << ToMilliseconds(lease_wait_ns) << " ms waited\n";
  }
  return out.str();
}

MachineStats operator-(const MachineStats& a, const MachineStats& b) {
  MachineStats d;
  d.local_reads = a.local_reads - b.local_reads;
  d.local_writes = a.local_writes - b.local_writes;
  d.remote_reads = a.remote_reads - b.remote_reads;
  d.remote_writes = a.remote_writes - b.remote_writes;
  d.atc_hits = a.atc_hits - b.atc_hits;
  d.atc_misses = a.atc_misses - b.atc_misses;
  d.faults = a.faults - b.faults;
  d.read_faults = a.read_faults - b.read_faults;
  d.write_faults = a.write_faults - b.write_faults;
  d.replications = a.replications - b.replications;
  d.migrations = a.migrations - b.migrations;
  d.remote_maps = a.remote_maps - b.remote_maps;
  d.initial_fills = a.initial_fills - b.initial_fills;
  d.freezes = a.freezes - b.freezes;
  d.thaws = a.thaws - b.thaws;
  d.shootdowns = a.shootdowns - b.shootdowns;
  d.ipis_sent = a.ipis_sent - b.ipis_sent;
  d.mappings_invalidated = a.mappings_invalidated - b.mappings_invalidated;
  d.mappings_restricted = a.mappings_restricted - b.mappings_restricted;
  d.pages_freed = a.pages_freed - b.pages_freed;
  d.block_transfers = a.block_transfers - b.block_transfers;
  d.block_words_copied = a.block_words_copied - b.block_words_copied;
  d.module_wait_ns = a.module_wait_ns - b.module_wait_ns;
  d.fault_handler_wait_ns = a.fault_handler_wait_ns - b.fault_handler_wait_ns;
  d.lease_waits = a.lease_waits - b.lease_waits;
  d.lease_wait_ns = a.lease_wait_ns - b.lease_wait_ns;
  return d;
}

}  // namespace platinum::sim
