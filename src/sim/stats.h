// Machine-wide event counters.
//
// Counters are incremented by every layer (interconnect, MMU, coherent
// memory) and snapshotted by experiments; differences between snapshots give
// per-phase behaviour. Per-Cpage statistics live with the Cpage table
// (src/mem/cpage.h), mirroring the kernel's post-mortem report in the paper.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace platinum::sim {

struct MachineStats {
  // Raw references issued by programs (after MMU translation).
  uint64_t local_reads = 0;
  uint64_t local_writes = 0;
  uint64_t remote_reads = 0;
  uint64_t remote_writes = 0;

  // MMU behaviour.
  uint64_t atc_hits = 0;
  uint64_t atc_misses = 0;

  // Coherent-memory behaviour.
  uint64_t faults = 0;
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t replications = 0;   // new physical copy created (state had >= 1 copy)
  uint64_t migrations = 0;     // copy moved: replicate + invalidate source
  uint64_t remote_maps = 0;    // fault resolved with a mapping to a remote page
  uint64_t initial_fills = 0;  // first physical page of an empty Cpage
  uint64_t freezes = 0;
  uint64_t thaws = 0;
  uint64_t shootdowns = 0;       // shootdown rounds initiated
  uint64_t ipis_sent = 0;        // processors synchronously interrupted
  uint64_t mappings_invalidated = 0;
  uint64_t mappings_restricted = 0;
  uint64_t pages_freed = 0;
  uint64_t lease_waits = 0;      // lease-protocol expiry waits (tardis)
  SimTime lease_wait_ns = 0;     // simulated time spent in those waits

  // Block-transfer engine.
  uint64_t block_transfers = 0;
  uint64_t block_words_copied = 0;

  // Contention.
  SimTime module_wait_ns = 0;        // time spent queued at memory-module buses
  SimTime fault_handler_wait_ns = 0; // time serialized behind another fault on the same Cpage

  uint64_t total_references() const {
    return local_reads + local_writes + remote_reads + remote_writes;
  }
  uint64_t remote_references() const { return remote_reads + remote_writes; }

  // Multi-line human-readable dump.
  std::string ToString() const;
};

// a - b, counter-wise. Used for phase deltas.
MachineStats operator-(const MachineStats& a, const MachineStats& b);

}  // namespace platinum::sim

#endif  // SRC_SIM_STATS_H_
