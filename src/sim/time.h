// Virtual time for the NUMA machine simulation.
//
// All latencies in the simulator are expressed in nanoseconds of simulated
// (virtual) time. Each simulated processor carries its own clock; the
// scheduler in src/sim/scheduler.h keeps the clocks consistent.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace platinum::sim {

// Nanoseconds of simulated time since machine boot.
using SimTime = uint64_t;

// Signed durations are occasionally useful for differences.
using SimDuration = int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// Converts a virtual time to fractional milliseconds (for reporting).
inline constexpr double ToMilliseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

inline constexpr double ToMicroseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

inline constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace platinum::sim

#endif  // SRC_SIM_TIME_H_
