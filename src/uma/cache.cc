#include "src/uma/cache.h"

#include "src/base/check.h"

namespace platinum::uma {

Cache::Cache(uint32_t cache_bytes, uint32_t line_bytes) {
  PLAT_CHECK_GT(line_bytes, 0u);
  PLAT_CHECK_EQ(line_bytes % 4, 0u);
  PLAT_CHECK((line_bytes & (line_bytes - 1)) == 0) << "line size must be a power of two";
  PLAT_CHECK((cache_bytes & (cache_bytes - 1)) == 0) << "cache size must be a power of two";
  PLAT_CHECK_GE(cache_bytes, line_bytes);
  words_per_line_ = line_bytes / 4;
  size_t num_lines = cache_bytes / line_bytes;
  index_mask_ = num_lines - 1;
  lines_.resize(num_lines);
}

bool Cache::Contains(size_t word_addr) const {
  size_t line = LineNumber(word_addr);
  const Line& slot = lines_[IndexOf(line)];
  return slot.valid && slot.tag == line;
}

void Cache::Fill(size_t word_addr) {
  size_t line = LineNumber(word_addr);
  Line& slot = lines_[IndexOf(line)];
  slot.valid = true;
  slot.tag = line;
}

bool Cache::Invalidate(size_t word_addr) {
  size_t line = LineNumber(word_addr);
  Line& slot = lines_[IndexOf(line)];
  if (slot.valid && slot.tag == line) {
    slot.valid = false;
    return true;
  }
  return false;
}

void Cache::Clear() {
  for (Line& slot : lines_) {
    slot.valid = false;
  }
}

}  // namespace platinum::uma
