// A direct-mapped write-through data cache (one per UMA processor).
#ifndef SRC_UMA_CACHE_H_
#define SRC_UMA_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace platinum::uma {

class Cache {
 public:
  // `cache_bytes` total capacity, `line_bytes` per line; both powers of two.
  Cache(uint32_t cache_bytes, uint32_t line_bytes);

  // True if the line holding `word_addr` is present.
  bool Contains(size_t word_addr) const;
  // Installs the line holding `word_addr` (read-miss fill).
  void Fill(size_t word_addr);
  // Drops the line holding `word_addr` if present (snoop invalidation).
  // Returns true if something was invalidated.
  bool Invalidate(size_t word_addr);
  void Clear();

 private:
  struct Line {
    bool valid = false;
    size_t tag = 0;
  };

  size_t LineNumber(size_t word_addr) const { return word_addr / words_per_line_; }
  size_t IndexOf(size_t line_number) const { return line_number & index_mask_; }

  uint32_t words_per_line_;
  size_t index_mask_;
  std::vector<Line> lines_;
};

}  // namespace platinum::uma

#endif  // SRC_UMA_CACHE_H_
