#include "src/uma/uma_machine.h"

#include <algorithm>

#include "src/base/check.h"

namespace platinum::uma {

void UmaParams::Validate() const {
  PLAT_CHECK_GT(num_processors, 0);
  PLAT_CHECK_LE(num_processors, sim::kMaxProcessors);
  PLAT_CHECK_GT(memory_words, size_t{0});
}

UmaMachine::UmaMachine(const UmaParams& params)
    : params_([&] {
        params.Validate();
        return params;
      }()),
      scheduler_(params_.num_processors, params_.quantum_ns, params_.fiber_stack_bytes),
      memory_(params_.memory_words, 0) {
  caches_.reserve(params_.num_processors);
  for (int p = 0; p < params_.num_processors; ++p) {
    caches_.emplace_back(params_.cache_bytes, params_.line_bytes);
  }
}

size_t UmaMachine::AllocWords(size_t count) {
  PLAT_CHECK_LE(next_free_word_ + count, memory_.size()) << "UMA memory exhausted";
  size_t base = next_free_word_;
  next_free_word_ += count;
  return base;
}

sim::SimTime UmaMachine::BusTransaction(sim::SimTime base, sim::SimTime occupancy) {
  sim::SimTime now = scheduler_.now();
  sim::SimTime start = std::max(now, bus_busy_until_);
  bus_busy_until_ = start + occupancy;
  sim::SimTime wait = start - now;
  stats_.bus_wait_ns += wait;
  return wait + base;
}

uint32_t UmaMachine::Read(size_t word_addr) {
  PLAT_DCHECK(word_addr < memory_.size());
  int p = scheduler_.current_processor();
  Cache& cache = caches_[p];
  if (cache.Contains(word_addr)) {
    ++stats_.cache_hits;
    scheduler_.Advance(params_.cache_hit_ns);
  } else {
    ++stats_.read_misses;
    scheduler_.Advance(
        BusTransaction(params_.bus_line_fetch_ns, params_.bus_occupancy_fetch_ns));
    cache.Fill(word_addr);
  }
  uint32_t value = memory_[word_addr];
  scheduler_.MaybeYield();
  return value;
}

void UmaMachine::Write(size_t word_addr, uint32_t value) {
  PLAT_DCHECK(word_addr < memory_.size());
  int p = scheduler_.current_processor();
  ++stats_.writes;
  // Write-through: every write is a bus transaction; other caches snoop and
  // invalidate their copy of the line.
  scheduler_.Advance(BusTransaction(params_.bus_word_write_ns, params_.bus_occupancy_write_ns));
  memory_[word_addr] = value;
  InvalidateOthers(p, word_addr);
  // Write-no-allocate, but an already-present line stays valid (memory and
  // cache are updated together on a write-through hit).
  scheduler_.MaybeYield();
}

uint32_t UmaMachine::FetchAdd(size_t word_addr, uint32_t delta) {
  PLAT_DCHECK(word_addr < memory_.size());
  int p = scheduler_.current_processor();
  // Bus-locked read-modify-write.
  scheduler_.Advance(BusTransaction(params_.bus_line_fetch_ns + params_.bus_word_write_ns,
                                    params_.bus_occupancy_fetch_ns +
                                        params_.bus_occupancy_write_ns));
  uint32_t old = memory_[word_addr];
  memory_[word_addr] = old + delta;
  InvalidateOthers(p, word_addr);
  caches_[p].Invalidate(word_addr);
  scheduler_.MaybeYield();
  return old;
}

void UmaMachine::InvalidateOthers(int writer, size_t word_addr) {
  for (int q = 0; q < params_.num_processors; ++q) {
    if (q != writer && caches_[q].Invalidate(word_addr)) {
      ++stats_.invalidations;
    }
  }
}

}  // namespace platinum::uma
