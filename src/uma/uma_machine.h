// A bus-based UMA multiprocessor with small write-through caches — the
// Sequent Symmetry (model A processors, 8 KB write-through caches) that
// Figure 5 of the paper compares merge sort against.
//
// One shared memory, one shared bus with queueing, and a direct-mapped
// write-through cache per processor kept coherent by snoop-invalidation.
// Runs on the same virtual-time fiber scheduler as the NUMA machine.
#ifndef SRC_UMA_UMA_MACHINE_H_
#define SRC_UMA_UMA_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/params.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"
#include "src/uma/cache.h"

namespace platinum::uma {

struct UmaParams {
  int num_processors = 16;
  size_t memory_words = size_t{1} << 22;  // 16 MB
  uint32_t cache_bytes = 8 * 1024;
  uint32_t line_bytes = 16;  // 4 words
  // Cache-hit reference (processor speed).
  sim::SimTime cache_hit_ns = 150;
  // Read-miss line fill over the bus.
  sim::SimTime bus_line_fetch_ns = 1000;
  // Write-through word over the bus.
  sim::SimTime bus_word_write_ns = 600;
  // Bus occupancy per transaction (what serializes processors); the Symmetry
  // bus is pipelined, so occupancy is much shorter than latency.
  sim::SimTime bus_occupancy_fetch_ns = 250;
  sim::SimTime bus_occupancy_write_ns = 120;
  sim::SimTime quantum_ns = 20 * sim::kMicrosecond;
  uint32_t fiber_stack_bytes = 256 * 1024;

  void Validate() const;
};

struct UmaStats {
  uint64_t cache_hits = 0;
  uint64_t read_misses = 0;
  uint64_t writes = 0;
  uint64_t invalidations = 0;
  sim::SimTime bus_wait_ns = 0;
};

class UmaMachine {
 public:
  explicit UmaMachine(const UmaParams& params);

  const UmaParams& params() const { return params_; }
  sim::Scheduler& scheduler() { return scheduler_; }
  UmaStats& stats() { return stats_; }
  int num_processors() const { return params_.num_processors; }

  // Bump allocation of shared memory; returns the base word address.
  size_t AllocWords(size_t count);

  // Timed accesses from the current fiber's processor.
  uint32_t Read(size_t word_addr);
  void Write(size_t word_addr, uint32_t value);
  // Atomic read-modify-write (bus-locked); returns the previous value.
  uint32_t FetchAdd(size_t word_addr, uint32_t delta);

 private:
  // Charges for one bus transaction starting no earlier than now; returns the
  // latency including queueing.
  sim::SimTime BusTransaction(sim::SimTime base, sim::SimTime occupancy);
  void InvalidateOthers(int writer, size_t word_addr);

  const UmaParams params_;
  sim::Scheduler scheduler_;
  std::vector<uint32_t> memory_;
  std::vector<Cache> caches_;
  sim::SimTime bus_busy_until_ = 0;
  size_t next_free_word_ = 0;
  UmaStats stats_;
};

// Typed array view over UMA shared memory.
class UmaArray {
 public:
  UmaArray() = default;
  UmaArray(UmaMachine* machine, size_t base, size_t count)
      : machine_(machine), base_(base), count_(count) {}

  static UmaArray Create(UmaMachine& machine, size_t count) {
    return UmaArray(&machine, machine.AllocWords(count), count);
  }

  size_t size() const { return count_; }
  uint32_t Get(size_t i) const { return machine_->Read(base_ + i); }
  void Set(size_t i, uint32_t v) { machine_->Write(base_ + i, v); }
  uint32_t FetchAdd(size_t i, uint32_t delta) { return machine_->FetchAdd(base_ + i, delta); }

 private:
  UmaMachine* machine_ = nullptr;
  size_t base_ = 0;
  size_t count_ = 0;
};

}  // namespace platinum::uma

#endif  // SRC_UMA_UMA_MACHINE_H_
