#include "src/vm/address_space.h"

#include "src/base/check.h"
#include "src/vm/memory_object.h"

namespace platinum::vm {

void AddressSpace::AddBinding(const Binding& binding) {
  PLAT_CHECK(binding.object != nullptr);
  PLAT_CHECK_GT(binding.num_pages, 0u);
  PLAT_CHECK_LE(binding.object_page + binding.num_pages, binding.object->num_pages());
  PLAT_CHECK_LE(binding.vpn + binding.num_pages, num_pages_);
  PLAT_CHECK(binding.rights != hw::Rights::kNone);
  // Bindings may not overlap in virtual space.
  for (const Binding& existing : bindings_) {
    bool disjoint = binding.vpn + binding.num_pages <= existing.vpn ||
                    existing.vpn + existing.num_pages <= binding.vpn;
    PLAT_CHECK(disjoint) << "overlapping binding at vpn " << binding.vpn << " in space " << name_;
  }
  bindings_.push_back(binding);
}

const Binding* AddressSpace::FindBinding(uint32_t vpn) const {
  for (const Binding& binding : bindings_) {
    if (vpn >= binding.vpn && vpn < binding.vpn + binding.num_pages) {
      return &binding;
    }
  }
  return nullptr;
}

}  // namespace platinum::vm
