// Address spaces (Section 1.1).
//
// An address space is a list of bindings of memory objects (with access
// rights) to virtual address ranges; it defines the environment in which one
// or more threads execute. Neither the virtual range nor the rights need be
// the same in every space that maps an object.
#ifndef SRC_VM_ADDRESS_SPACE_H_
#define SRC_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/rights.h"

namespace platinum::vm {

class MemoryObject;

// One mapping of a range of object pages into the space.
struct Binding {
  MemoryObject* object = nullptr;
  uint32_t object_page = 0;  // first object page mapped
  uint32_t num_pages = 0;
  uint32_t vpn = 0;  // first virtual page
  hw::Rights rights = hw::Rights::kNone;
};

class AddressSpace {
 public:
  AddressSpace(uint32_t id, std::string name, uint32_t num_pages)
      : id_(id), name_(std::move(name)), num_pages_(num_pages) {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  // Capacity of the space in virtual pages.
  uint32_t num_pages() const { return num_pages_; }

  const std::vector<Binding>& bindings() const { return bindings_; }
  void AddBinding(const Binding& binding);
  // Returns the binding covering `vpn`, or nullptr.
  const Binding* FindBinding(uint32_t vpn) const;

 private:
  const uint32_t id_;
  const std::string name_;
  const uint32_t num_pages_;
  std::vector<Binding> bindings_;
};

}  // namespace platinum::vm

#endif  // SRC_VM_ADDRESS_SPACE_H_
