#include "src/vm/memory_object.h"

#include "src/base/check.h"

namespace platinum::vm {

uint32_t MemoryObject::cpage(uint32_t index) const {
  PLAT_CHECK_LT(index, cpages_.size());
  PLAT_CHECK_NE(cpages_[index], UINT32_MAX) << "object page without a coherent page";
  return cpages_[index];
}

void MemoryObject::set_cpage(uint32_t index, uint32_t cpage_id) {
  PLAT_CHECK_LT(index, cpages_.size());
  PLAT_CHECK_EQ(cpages_[index], UINT32_MAX) << "object page already has a coherent page";
  cpages_[index] = cpage_id;
}

}  // namespace platinum::vm
