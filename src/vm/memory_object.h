// Memory objects (Section 1.1).
//
// A memory object is an abstraction of an ordered list of memory pages with
// a global name. A range of its pages may be bound to any page-aligned
// virtual range of any address space, making memory objects the unit of
// data- and code-sharing between address spaces.
#ifndef SRC_VM_MEMORY_OBJECT_H_
#define SRC_VM_MEMORY_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace platinum::vm {

class MemoryObject {
 public:
  MemoryObject(uint32_t id, std::string name, uint32_t num_pages)
      : id_(id), name_(std::move(name)), cpages_(num_pages, UINT32_MAX) {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(cpages_.size()); }

  // The coherent page backing object page `index` (assigned at creation by
  // the kernel).
  uint32_t cpage(uint32_t index) const;
  void set_cpage(uint32_t index, uint32_t cpage_id);

 private:
  const uint32_t id_;
  const std::string name_;
  std::vector<uint32_t> cpages_;
};

}  // namespace platinum::vm

#endif  // SRC_VM_MEMORY_OBJECT_H_
