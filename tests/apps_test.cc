// End-to-end tests for the three applications and their baselines: every
// implementation must produce bit-identical results to the sequential
// reference, and the memory system must exhibit the paper's qualitative
// behaviour (replication for Gauss, freezing for the neural simulator).
#include <gtest/gtest.h>

#include "src/apps/gauss.h"
#include "src/apps/mergesort.h"
#include "src/apps/neural.h"
#include "src/apps/workloads.h"
#include "src/kernel/report.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using test::TestSystem;

apps::GaussConfig SmallGauss(int processors) {
  apps::GaussConfig config;
  config.n = 48;
  config.processors = processors;
  return config;
}

TEST(GaussReferenceTest, DeterministicChecksum) {
  EXPECT_EQ(apps::GaussReferenceChecksum(1, 16), apps::GaussReferenceChecksum(1, 16));
  EXPECT_NE(apps::GaussReferenceChecksum(1, 16), apps::GaussReferenceChecksum(2, 16));
}

class GaussPlatinumTest : public ::testing::TestWithParam<int> {};

TEST_P(GaussPlatinumTest, ProducesReferenceResult) {
  TestSystem sys(sim::ButterflyPlusParams(8));
  apps::GaussResult result = RunGaussPlatinum(sys.kernel, SmallGauss(GetParam()));
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.elimination_ns, sim::SimTime{0});
  sys.kernel.memory().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Processors, GaussPlatinumTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(GaussPlatinumBehaviorTest, ParallelismSpeedsItUp) {
  // Too small a matrix is dominated by per-round pivot replication; use a
  // size where the paper's coarse-grain regime applies.
  TestSystem sys1(sim::ButterflyPlusParams(8));
  TestSystem sys8(sim::ButterflyPlusParams(8));
  apps::GaussConfig config = SmallGauss(1);
  config.n = 192;
  auto t1 = RunGaussPlatinum(sys1.kernel, config).elimination_ns;
  config.processors = 8;
  auto t8 = RunGaussPlatinum(sys8.kernel, config).elimination_ns;
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t8), 2.5);
}

TEST(GaussPlatinumBehaviorTest, PivotPagesReplicateAndSyncPageFreezes) {
  TestSystem sys(sim::ButterflyPlusParams(8));
  apps::GaussConfig config = SmallGauss(8);
  config.n = 96;  // enough rounds for the event-count page to freeze
  RunGaussPlatinum(sys.kernel, config);
  const sim::MachineStats& stats = sys.machine.stats();
  EXPECT_GT(stats.replications, 50u);  // pivot rows replicated every round
  kernel::MemoryReport report = BuildMemoryReport(sys.kernel);
  EXPECT_GE(report.pages_ever_frozen, 1u);  // the event-count page
  // Matrix-row pages must not freeze: only synchronization pages do.
  EXPECT_LE(report.pages_ever_frozen, 3u);
}

TEST(GaussPlatinumBehaviorTest, DeterministicAcrossRuns) {
  TestSystem a(sim::ButterflyPlusParams(4));
  TestSystem b(sim::ButterflyPlusParams(4));
  auto ra = RunGaussPlatinum(a.kernel, SmallGauss(4));
  auto rb = RunGaussPlatinum(b.kernel, SmallGauss(4));
  EXPECT_EQ(ra.elimination_ns, rb.elimination_ns);
  EXPECT_EQ(ra.checksum, rb.checksum);
}

class GaussUniformTest : public ::testing::TestWithParam<int> {};

TEST_P(GaussUniformTest, ProducesReferenceResult) {
  sim::Machine machine(sim::ButterflyPlusParams(8));
  apps::GaussResult result = RunGaussUniformSystem(machine, SmallGauss(GetParam()));
  EXPECT_TRUE(result.verified);
}

INSTANTIATE_TEST_SUITE_P(Processors, GaussUniformTest, ::testing::Values(1, 2, 4, 8));

class GaussMessagePassingTest : public ::testing::TestWithParam<int> {};

TEST_P(GaussMessagePassingTest, ProducesReferenceResult) {
  TestSystem sys(sim::ButterflyPlusParams(8));
  apps::GaussResult result = RunGaussMessagePassing(sys.kernel, SmallGauss(GetParam()));
  EXPECT_TRUE(result.verified);
}

INSTANTIATE_TEST_SUITE_P(Processors, GaussMessagePassingTest, ::testing::Values(1, 2, 3, 8));

TEST(GaussAnecdoteTest, ColocatedFlagVariantStillCorrect) {
  TestSystem sys(sim::ButterflyPlusParams(4));
  apps::GaussConfig config = SmallGauss(4);
  config.colocate_size_and_flag = true;
  apps::GaussResult result = RunGaussPlatinum(sys.kernel, config);
  EXPECT_TRUE(result.verified);
  // The control page froze.
  kernel::MemoryReport report = BuildMemoryReport(sys.kernel);
  EXPECT_GE(report.pages_ever_frozen, 1u);
}

TEST(GaussAnecdoteTest, ColocationCostsTime) {
  TestSystem clean_sys(sim::ButterflyPlusParams(4));
  TestSystem dirty_sys(sim::ButterflyPlusParams(4));
  apps::GaussConfig clean = SmallGauss(4);
  apps::GaussConfig dirty = SmallGauss(4);
  dirty.colocate_size_and_flag = true;
  auto t_clean = RunGaussPlatinum(clean_sys.kernel, clean).elimination_ns;
  auto t_dirty = RunGaussPlatinum(dirty_sys.kernel, dirty).elimination_ns;
  EXPECT_GT(t_dirty, t_clean);
}

class MergeSortPlatinumTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeSortPlatinumTest, SortsCorrectly) {
  TestSystem sys(sim::ButterflyPlusParams(8));
  apps::SortConfig config;
  config.count = 4096;
  config.processors = GetParam();
  apps::SortResult result = RunMergeSortPlatinum(sys.kernel, config);
  EXPECT_TRUE(result.verified);
  sys.kernel.memory().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Processors, MergeSortPlatinumTest, ::testing::Values(1, 2, 4, 8));

class MergeSortUmaTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeSortUmaTest, SortsCorrectly) {
  uma::UmaParams params;
  params.num_processors = 8;
  uma::UmaMachine machine(params);
  apps::SortConfig config;
  config.count = 4096;
  config.processors = GetParam();
  apps::SortResult result = RunMergeSortUma(machine, config);
  EXPECT_TRUE(result.verified);
}

INSTANTIATE_TEST_SUITE_P(Processors, MergeSortUmaTest, ::testing::Values(1, 2, 4, 8));

// Strips the block accessors from rt::SharedArray so the generic sort core
// falls back to its word-at-a-time loops — the reference implementation the
// batched path must be indistinguishable from.
struct WordOnlyArray {
  rt::SharedArray<uint32_t>* inner;
  uint32_t Get(size_t i) const { return inner->Get(i); }
  void Set(size_t i, uint32_t v) { inner->Set(i, v); }
};

// The batched merge (GetRange/SetRange tails) and the word-at-a-time merge
// must be byte-identical in result AND in simulated time: the kernel's
// block transfer is contractually the same access stream as the word loop,
// so swapping one in may change host speed only, never the simulation.
TEST(MergeSortBatchingTest, BlockAndWordLinearPassesAreIdentical) {
  static_assert(apps::kArrayHasRanges<rt::SharedArray<uint32_t>>);
  static_assert(!apps::kArrayHasRanges<WordOnlyArray>);
  // Sized so generation spans several staging chunks (1100 > 4 * 256) and
  // ends on a partial one.
  constexpr size_t kCount = 1100;
  constexpr uint64_t kSeed = 7;

  uint64_t checksum_block = 0;
  uint64_t checksum_word = 0;
  sim::SimTime gen_ns_block = 0;
  sim::SimTime gen_ns_word = 0;
  sim::SimTime scan_ns_block = 0;
  sim::SimTime scan_ns_word = 0;
  for (bool word_only : {false, true}) {
    TestSystem sys(sim::ButterflyPlusParams(4));
    auto* space = sys.kernel.CreateAddressSpace("gen-eq");
    rt::ZoneAllocator zone(&sys.kernel, space);
    auto data = rt::SharedArray<uint32_t>::Create(zone, "data", kCount);
    test::RunInThread(sys.kernel, space, 0, [&] {
      // The generation pass of SortWorkerBody: block SetRange vs word Set
      // must produce the same bytes in the same simulated time.
      sim::SimTime t0 = sys.kernel.Now();
      if (word_only) {
        WordOnlyArray wdata{&data};
        apps::GenerateRun(wdata, 0, kCount, kSeed);
        gen_ns_word = sys.kernel.Now() - t0;
      } else {
        apps::GenerateRun(data, 0, kCount, kSeed);
        gen_ns_block = sys.kernel.Now() - t0;
      }
      // The verification pass: a linear read scan, block GetRange vs word
      // Get, accumulated into the workload checksum.
      apps::Checksum sum;
      sim::SimTime t1 = sys.kernel.Now();
      uint32_t buf[apps::kSortBatchWords];
      size_t done = 0;
      while (done < kCount) {
        size_t batch = std::min(kCount - done, apps::kSortBatchWords);
        if (word_only) {
          for (size_t k = 0; k < batch; ++k) {
            buf[k] = data.Get(done + k);
          }
        } else {
          data.GetRange(done, batch, buf);
        }
        for (size_t k = 0; k < batch; ++k) {
          sum.Add(buf[k]);
        }
        done += batch;
      }
      if (word_only) {
        scan_ns_word = sys.kernel.Now() - t1;
        checksum_word = sum.value();
      } else {
        scan_ns_block = sys.kernel.Now() - t1;
        checksum_block = sum.value();
      }
    });
  }
  EXPECT_EQ(checksum_block, checksum_word) << "batched generation changed the bytes";
  EXPECT_EQ(gen_ns_block, gen_ns_word) << "batched generation changed simulated time";
  EXPECT_EQ(scan_ns_block, scan_ns_word) << "batched scan changed simulated time";
}

TEST(MergeSortBehaviorTest, PlatinumParallelismHelps) {
  TestSystem sys1(sim::ButterflyPlusParams(8));
  TestSystem sys8(sim::ButterflyPlusParams(8));
  apps::SortConfig config;
  config.count = 1 << 14;
  config.processors = 1;
  auto t1 = RunMergeSortPlatinum(sys1.kernel, config).sort_ns;
  config.processors = 8;
  auto t8 = RunMergeSortPlatinum(sys8.kernel, config).sort_ns;
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t8), 1.5);
}

class NeuralTest : public ::testing::TestWithParam<int> {};

TEST_P(NeuralTest, LearnsTheEncoderProblem) {
  TestSystem sys(sim::ButterflyPlusParams(8));
  apps::NeuralConfig config;
  config.processors = GetParam();
  config.epochs = 8;
  apps::NeuralResult result = RunNeuralPlatinum(sys.kernel, config);
  EXPECT_TRUE(result.verified);
  EXPECT_LT(result.final_error, result.initial_error);
  sys.kernel.memory().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Processors, NeuralTest, ::testing::Values(1, 2, 4, 8));

TEST(NeuralBehaviorTest, SharedPagesFreeze) {
  TestSystem sys(sim::ButterflyPlusParams(8));
  apps::NeuralConfig config;
  config.processors = 8;
  config.epochs = 4;
  RunNeuralPlatinum(sys.kernel, config);
  // "The coherent memory system quickly gives up and the data pages of the
  // application are frozen in place" (Section 5.3).
  kernel::MemoryReport report = BuildMemoryReport(sys.kernel);
  EXPECT_GE(report.pages_ever_frozen, 2u);
}

}  // namespace
}  // namespace platinum
