// Unit tests for the hand-placed baseline substrate: raw physical regions
// and the raw-memory barrier.
#include "src/baseline/raw_memory.h"

#include <gtest/gtest.h>

#include "src/sim/machine.h"

namespace platinum::baseline {
namespace {

using sim::ButterflyPlusParams;
using sim::Machine;

TEST(RawRegionTest, SingleModulePlacement) {
  Machine machine(ButterflyPlusParams(4));
  RawRegion region(&machine, 5000, RawRegion::Placement::kSingleModule, 2);
  for (size_t i : {size_t{0}, size_t{1024}, size_t{4999}}) {
    EXPECT_EQ(region.module_of(i), 2);
  }
}

TEST(RawRegionTest, ScatteredPlacementRoundRobins) {
  Machine machine(ButterflyPlusParams(4));
  uint32_t page_words = machine.params().words_per_page();
  RawRegion region(&machine, static_cast<size_t>(page_words) * 8,
                   RawRegion::Placement::kScattered);
  for (int page = 0; page < 8; ++page) {
    EXPECT_EQ(region.module_of(static_cast<size_t>(page) * page_words), page % 4);
  }
}

TEST(RawRegionTest, DataRoundTripAndTiming) {
  Machine machine(ButterflyPlusParams(4));
  RawRegion region(&machine, 16, RawRegion::Placement::kSingleModule, 1);
  machine.scheduler().Spawn(0, "t", [&] {
    sim::SimTime t0 = machine.scheduler().now();
    region.Set(3, 1234);
    EXPECT_EQ(machine.scheduler().now() - t0, machine.params().remote_write_ns);
    t0 = machine.scheduler().now();
    EXPECT_EQ(region.Get(3), 1234u);
    EXPECT_EQ(machine.scheduler().now() - t0, machine.params().remote_read_ns);
  });
  machine.scheduler().Spawn(1, "local", [&] {
    machine.scheduler().Sleep(sim::kMillisecond);
    sim::SimTime t0 = machine.scheduler().now();
    EXPECT_EQ(region.Get(3), 1234u);
    EXPECT_EQ(machine.scheduler().now() - t0, machine.params().local_read_ns);
  });
  machine.scheduler().Run();
}

TEST(RawRegionTest, CopyWordsChargesBothSides) {
  Machine machine(ButterflyPlusParams(4));
  RawRegion src(&machine, 64, RawRegion::Placement::kSingleModule, 1);
  RawRegion dst(&machine, 64, RawRegion::Placement::kSingleModule, 0);
  machine.scheduler().Spawn(0, "copier", [&] {
    for (size_t i = 0; i < 64; ++i) {
      src.Set(i, static_cast<uint32_t>(i * 3));
    }
    sim::SimTime t0 = machine.scheduler().now();
    dst.CopyWordsFrom(src, 0, 0, 64);
    sim::SimTime elapsed = machine.scheduler().now() - t0;
    // 64 remote reads + 64 local writes.
    EXPECT_GE(elapsed, 64 * (machine.params().remote_read_ns + machine.params().local_write_ns));
    for (size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(dst.Get(i), static_cast<uint32_t>(i * 3));
    }
  });
  machine.scheduler().Run();
}

TEST(RawRegionTest, FreesFramesOnDestruction) {
  Machine machine(ButterflyPlusParams(2));
  uint32_t free_before = machine.module(0).free_frames();
  {
    RawRegion region(&machine, machine.params().words_per_page() * 4ul,
                     RawRegion::Placement::kSingleModule, 0);
    EXPECT_EQ(machine.module(0).free_frames(), free_before - 4);
  }
  EXPECT_EQ(machine.module(0).free_frames(), free_before);
}

TEST(RawBarrierTest, SynchronizesFibers) {
  Machine machine(ButterflyPlusParams(4));
  RawBarrier barrier(&machine, 4);
  int arrived = 0;
  for (int p = 0; p < 4; ++p) {
    machine.scheduler().Spawn(p, "b", [&, p] {
      machine.scheduler().Sleep(static_cast<sim::SimTime>(p) * sim::kMillisecond);
      uint32_t sense = 0;
      ++arrived;
      barrier.Wait(&sense);
      EXPECT_EQ(arrived, 4) << "barrier released before all arrived";
      barrier.Wait(&sense);  // reusable
    });
  }
  machine.scheduler().Run();
}

TEST(RawRegionTest, FetchAddAtomicAcrossFibers) {
  Machine machine(ButterflyPlusParams(4));
  RawRegion region(&machine, 1, RawRegion::Placement::kSingleModule, 0);
  for (int p = 0; p < 4; ++p) {
    machine.scheduler().Spawn(p, "inc", [&] {
      for (int i = 0; i < 25; ++i) {
        region.FetchAdd(0, 1);
      }
    });
  }
  machine.scheduler().Run();
  machine.scheduler().Spawn(0, "check", [&] { EXPECT_EQ(region.Get(0), 100u); });
  machine.scheduler().Run();
}

}  // namespace
}  // namespace platinum::baseline
