// Tests for the bench harness helpers: EnvInt validation, SpeedupTable
// degenerate-baseline handling, and SweepRunner's worker-count invariance.
#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/machine.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

TEST(EnvIntTest, ParsesIntegersAndFallsBack) {
  unsetenv("PLATINUM_TEST_ENVINT");
  EXPECT_EQ(bench::EnvInt("PLATINUM_TEST_ENVINT", 17), 17);
  setenv("PLATINUM_TEST_ENVINT", "42", 1);
  EXPECT_EQ(bench::EnvInt("PLATINUM_TEST_ENVINT", 17), 42);
  setenv("PLATINUM_TEST_ENVINT", "-7", 1);
  EXPECT_EQ(bench::EnvInt("PLATINUM_TEST_ENVINT", 17), -7);
  unsetenv("PLATINUM_TEST_ENVINT");
}

TEST(EnvIntDeathTest, AbortsOnMalformedValue) {
  // The motivating typo: PLATINUM_GAUSS_N=8oo must not silently become 8
  // (or 0, as std::atoi would have returned for "oo8").
  setenv("PLATINUM_TEST_ENVINT", "8oo", 1);
  EXPECT_DEATH(bench::EnvInt("PLATINUM_TEST_ENVINT", 3), "is not an integer");
  setenv("PLATINUM_TEST_ENVINT", "", 1);
  EXPECT_DEATH(bench::EnvInt("PLATINUM_TEST_ENVINT", 3), "is not an integer");
  setenv("PLATINUM_TEST_ENVINT", "99999999999999999999", 1);
  EXPECT_DEATH(bench::EnvInt("PLATINUM_TEST_ENVINT", 3), "is not an integer");
  unsetenv("PLATINUM_TEST_ENVINT");
}

TEST(SpeedupTableTest, ZeroBaselineReportsNa) {
  bench::SpeedupTable table("degenerate", {"sys"});
  table.AddRow(1, {0});                    // degenerate baseline: nothing measured
  table.AddRow(4, {2 * sim::kMillisecond});
  testing::internal::CaptureStdout();
  table.Print();
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("n/a"), std::string::npos);
  EXPECT_EQ(out.find("0.00\n"), std::string::npos);

  std::string json = table.ToJson();
  EXPECT_TRUE(obs::CheckJsonBalanced(json));
  EXPECT_NE(json.find("null"), std::string::npos);
}

TEST(SpeedupTableTest, HealthyBaselineStillPrintsSpeedups) {
  bench::SpeedupTable table("ok", {"sys"});
  table.AddRow(1, {8 * sim::kMillisecond});
  table.AddRow(4, {2 * sim::kMillisecond});
  std::string json = table.ToJson();
  EXPECT_TRUE(obs::CheckJsonBalanced(json));
  EXPECT_EQ(json.find("null"), std::string::npos);
  EXPECT_NE(json.find("4.000"), std::string::npos);  // 8ms / 2ms
}

// One self-contained simulation per sweep point, as the bench binaries use
// SweepRunner: builds a machine, runs a workload, returns its virtual time.
uint64_t SimPoint(int i) {
  test::TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("pt");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "a", 64);
  sys.kernel.SpawnThread(space, i % 2, "t", [&] {
    for (size_t k = 0; k < 32; ++k) {
      arr.Set(k, static_cast<uint32_t>(i) + static_cast<uint32_t>(k));
    }
  });
  sys.kernel.Run();
  return static_cast<uint64_t>(sys.machine.scheduler().global_now());
}

TEST(SweepRunnerTest, ParallelMatchesSerial) {
  // Real simulations on 4 host threads vs. forced single-thread: identical
  // results in identical order (each point owns its machine; the scheduler's
  // active-pointer is thread-local).
  std::vector<uint64_t> serial = bench::SweepRunner(1).Map(10, SimPoint);
  std::vector<uint64_t> parallel = bench::SweepRunner(4).Map(10, SimPoint);
  ASSERT_EQ(serial.size(), 10u);
  EXPECT_EQ(serial, parallel);
  for (uint64_t t : serial) {
    EXPECT_GT(t, 0u);
  }
}

TEST(SweepRunnerTest, WorkerCountDefaultsAndClamps) {
  setenv("PLATINUM_BENCH_WORKERS", "3", 1);
  EXPECT_EQ(bench::SweepRunner().workers(), 3);
  unsetenv("PLATINUM_BENCH_WORKERS");
  EXPECT_GE(bench::SweepRunner().workers(), 1);
  EXPECT_EQ(bench::SweepRunner(7).workers(), 7);
}

}  // namespace
}  // namespace platinum
