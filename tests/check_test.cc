// Tests for the correctness-analysis layer (src/check): the simulated race
// detector, the transition-level invariant oracle, and the protocol explorer.
#include <gtest/gtest.h>

#include <string>

#include "src/check/explorer.h"
#include "src/check/oracle.h"
#include "src/check/race_detector.h"
#include "src/mem/cpage.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using test::RunInThread;
using test::TestSystem;

TEST(RaceDetectorTest, FlagsUnsynchronizedReadModifyWrite) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("racy");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "racy-counter", 1);

  check::RaceDetector& detector = sys.kernel.EnableRaceDetection();
  rt::RunOnProcessors(sys.kernel, space, 2, "racy", [&](int) {
    for (int i = 0; i < 16; ++i) {
      shared.Set(0, shared.Get(0) + 1);
    }
  });

  EXPECT_GT(detector.races_found(), 0u);
  ASSERT_FALSE(detector.reports().empty());
  const check::RaceReport& report = detector.reports().front();
  EXPECT_EQ(report.zone, "racy-counter");
  EXPECT_NE(report.fiber, report.prior_fiber);
  EXPECT_NE(report.ToString().find("racy-counter"), std::string::npos);
}

TEST(RaceDetectorTest, SpinLockedCounterIsClean) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("locked");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "locked-counter", 1);
  // Created before EnableRaceDetection: exercises the stored-range replay.
  rt::SpinLock lock(zone, "counter-lock");

  check::RaceDetector& detector = sys.kernel.EnableRaceDetection();
  rt::RunOnProcessors(sys.kernel, space, 4, "locked", [&](int) {
    for (int i = 0; i < 8; ++i) {
      lock.Acquire();
      shared.Set(0, shared.Get(0) + 1);
      lock.Release();
    }
  });

  EXPECT_EQ(detector.races_found(), 0u);
  EXPECT_GT(detector.accesses_checked(), 0u);
  EXPECT_GT(detector.sync_accesses(), 0u);
  RunInThread(sys.kernel, space, 0, [&] { EXPECT_EQ(shared.Get(0), 32u); });
  EXPECT_EQ(detector.races_found(), 0u);
}

TEST(RaceDetectorTest, EventCountHandoffIsClean) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("handoff");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto data = rt::SharedArray<uint32_t>::Create(zone, "handoff-data", 1);
  rt::EventCountArray ready(zone, "handoff-ready", 1);

  check::RaceDetector& detector = sys.kernel.EnableRaceDetection();
  sys.kernel.SpawnThread(space, 0, "producer", [&] {
    data.Set(0, 42);
    ready.Advance(0);
  });
  sys.kernel.SpawnThread(space, 1, "consumer", [&] {
    ready.AwaitAtLeast(0, 1);
    EXPECT_EQ(data.Get(0), 42u);
  });
  sys.kernel.Run();

  EXPECT_EQ(detector.races_found(), 0u);
}

TEST(RaceDetectorTest, BarrierPhasesAreClean) {
  constexpr int kParties = 4;
  TestSystem sys(kParties);
  auto* space = sys.kernel.CreateAddressSpace("phases");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto slots = rt::SharedArray<uint32_t>::Create(zone, "phase-slots", kParties);
  rt::Barrier barrier(zone, "phase-barrier", kParties);

  check::RaceDetector& detector = sys.kernel.EnableRaceDetection();
  rt::RunOnProcessors(sys.kernel, space, kParties, "phases", [&](int pid) {
    slots.Set(static_cast<size_t>(pid), static_cast<uint32_t>(pid) + 1);
    barrier.Wait();
    uint32_t sum = 0;  // every thread reads every other thread's slot
    for (int i = 0; i < kParties; ++i) {
      sum += slots.Get(static_cast<size_t>(i));
    }
    EXPECT_EQ(sum, 10u);
  });

  EXPECT_EQ(detector.races_found(), 0u);
}

TEST(RaceDetectorTest, SequentialRunsAreOrderedByHostContext) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("seq");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "seq-word", 1);

  check::RaceDetector& detector = sys.kernel.EnableRaceDetection();
  // Thread A finishes before the host spawns thread B: the finish and spawn
  // edges through the host context order the two accesses.
  RunInThread(sys.kernel, space, 0, [&] { shared.Set(0, 7); });
  RunInThread(sys.kernel, space, 1, [&] { EXPECT_EQ(shared.Get(0), 7u); });

  EXPECT_EQ(detector.races_found(), 0u);
}

TEST(RaceDetectorTest, IntentionalSharingIsSuppressed) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("chaotic");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "chaotic-word", 1);
  sys.kernel.AnnotateIntentionalSharing(space, shared.base_va(), 4);

  check::RaceDetector& detector = sys.kernel.EnableRaceDetection();
  rt::RunOnProcessors(sys.kernel, space, 2, "chaotic", [&](int) {
    for (int i = 0; i < 16; ++i) {
      shared.Set(0, shared.Get(0) + 1);
    }
  });

  EXPECT_EQ(detector.races_found(), 0u);
  EXPECT_GT(detector.annotated_accesses(), 0u);
}

TEST(InvariantOracleTest, ChecksEveryTransition) {
  TestSystem sys(4);
  check::InvariantOracle oracle(&sys.kernel.memory());
  auto* space = sys.kernel.CreateAddressSpace("oracle");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "oracle-words", 4);

  rt::RunOnProcessors(sys.kernel, space, 4, "oracle", [&](int pid) {
    shared.Set(static_cast<size_t>(pid), static_cast<uint32_t>(pid));
    for (int i = 0; i < 4; ++i) {
      (void)shared.Get(static_cast<size_t>(i));
    }
  });

  // Every processor's first touch faults, so at least one transition each.
  EXPECT_GE(oracle.transitions_checked(), 4u);
  oracle.CheckNow();  // aborts on violation
}

TEST(InvariantOracleTest, DetachesOnDestruction) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("detach");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "detach-word", 1);
  {
    check::InvariantOracle oracle(&sys.kernel.memory());
    RunInThread(sys.kernel, space, 0, [&] { shared.Set(0, 1); });
    EXPECT_GT(oracle.transitions_checked(), 0u);
  }
  // Faults after the oracle is gone must not touch the dangling hook.
  RunInThread(sys.kernel, space, 1, [&] { EXPECT_EQ(shared.Get(0), 1u); });
}

TEST(InvariantOracleDeathTest, CatchesStateDirectoryMismatch) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("corrupt");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "corrupt-word", 1);
  RunInThread(sys.kernel, space, 0, [&] { (void)shared.Get(0); });

  mem::CoherentMemory& memory = sys.kernel.memory();
  uint32_t vpn = sys.kernel.VpnOf(shared.base_va());
  uint32_t cpage_id = memory.cmap(space->id()).entry(vpn).cpage;
  // One read-only copy, no write mappings — claiming kModified is a lie.
  memory.cpages().at(cpage_id).SetState(mem::CpageState::kModified);
  EXPECT_DEATH(memory.CheckInvariants(), "");
}

TEST(InvariantOracleDeathTest, CatchesFrozenReplicatedPage) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("frozen");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto shared = rt::SharedArray<uint32_t>::Create(zone, "frozen-word", 1);
  // Two read faults on different processors replicate the page.
  rt::RunOnProcessors(sys.kernel, space, 2, "readers",
                      [&](int) { (void)shared.Get(0); });

  mem::CoherentMemory& memory = sys.kernel.memory();
  uint32_t vpn = sys.kernel.VpnOf(shared.base_va());
  uint32_t cpage_id = memory.cmap(space->id()).entry(vpn).cpage;
  mem::Cpage& page = memory.cpages().at(cpage_id);
  ASSERT_GE(page.copies().size(), 2u);
  page.SetFrozen(true);  // frozen pages must never be replicated
  EXPECT_DEATH(memory.CheckInvariants(), "");
}

TEST(ExplorerTest, TwoProcessorsOnePageIsExhaustive) {
  check::ExplorerConfig config;
  config.processors = 2;
  config.pages = 1;
  check::ExplorerResult result = check::ExploreProtocol(config);

  EXPECT_TRUE(result.exhaustive);
  // Empty/present1/present+/modified x frozen x rights x policy pressure:
  // well over a dozen distinct abstract states must be reachable.
  EXPECT_GE(result.states_visited, 16u);
  EXPECT_GT(result.transitions_explored, result.states_visited);
  EXPECT_GT(result.oracle_checks, result.transitions_explored);
  EXPECT_NE(result.Summary().find("exhaustive"), std::string::npos);
}

TEST(ExplorerTest, NeverCachePolicyHasSmallerStateSpace) {
  check::ExplorerConfig timestamp;
  check::ExplorerConfig never;
  never.policy = "never";
  check::ExplorerResult with_freeze = check::ExploreProtocol(timestamp);
  check::ExplorerResult without = check::ExploreProtocol(never);

  EXPECT_TRUE(without.exhaustive);
  // Never-cache admits no replicated states, so it reaches strictly fewer.
  EXPECT_LT(without.states_visited, with_freeze.states_visited);
}

TEST(ExplorerTest, WriteSharedAdviceFreezesImmediately) {
  check::ExplorerConfig config;
  config.advice = mem::MemoryAdvice::kWriteShared;
  check::ExplorerResult result = check::ExploreProtocol(config);
  EXPECT_TRUE(result.exhaustive);
  EXPECT_GT(result.states_visited, 1u);
}

}  // namespace
}  // namespace platinum
