// Unit tests for the Cmap: entries, activation census, message queue.
#include "src/mem/cmap.h"

#include <gtest/gtest.h>

namespace platinum::mem {
namespace {

TEST(CmapTest, EntriesStartUnbound) {
  Cmap cmap(3, 16);
  EXPECT_EQ(cmap.as_id(), 3u);
  EXPECT_EQ(cmap.num_pages(), 16u);
  for (uint32_t vpn = 0; vpn < 16; ++vpn) {
    EXPECT_FALSE(cmap.entry(vpn).bound());
    EXPECT_EQ(cmap.entry(vpn).reference_mask, 0u);
  }
}

TEST(CmapTest, PmapsAreLazyAndPrivate) {
  Cmap cmap(0, 8);
  EXPECT_FALSE(cmap.has_pmap(2));
  hw::Pmap& pmap2 = cmap.pmap(2);
  EXPECT_TRUE(cmap.has_pmap(2));
  EXPECT_FALSE(cmap.has_pmap(3));
  pmap2.Enter(1, 0, 5, hw::Rights::kRead);
  // Another processor's Pmap is a distinct object (the key Section 3.1
  // design decision).
  EXPECT_FALSE(cmap.pmap(3).entry(1).valid);
  EXPECT_TRUE(cmap.pmap(2).entry(1).valid);
}

TEST(CmapTest, ActivationCensusIsCounted) {
  Cmap cmap(0, 8);
  EXPECT_FALSE(cmap.IsActive(1));
  cmap.Activate(1);
  cmap.Activate(1);  // two threads of this space on processor 1
  EXPECT_TRUE(cmap.IsActive(1));
  EXPECT_EQ(cmap.active_mask(), uint64_t{2});
  cmap.Deactivate(1);
  EXPECT_TRUE(cmap.IsActive(1)) << "still one thread left";
  cmap.Deactivate(1);
  EXPECT_FALSE(cmap.IsActive(1));
}

TEST(CmapTest, MessagesRetireWhenAllTargetsAcknowledge) {
  Cmap cmap(0, 8);
  cmap.PostMessage(CmapMessage{4, CmapMessage::Directive::kInvalidate, 0b0110});
  cmap.PostMessage(CmapMessage{5, CmapMessage::Directive::kRestrictToRead, 0b0010});
  ASSERT_EQ(cmap.messages().size(), 2u);

  EXPECT_EQ(cmap.AcknowledgeMessages(1), 2);  // bit 1 set in both
  ASSERT_EQ(cmap.messages().size(), 1u);      // second message fully applied
  EXPECT_EQ(cmap.messages()[0].vpn, 4u);
  EXPECT_EQ(cmap.messages()[0].target_mask, uint64_t{0b0100});

  EXPECT_EQ(cmap.AcknowledgeMessages(2), 1);
  EXPECT_TRUE(cmap.messages().empty());
  EXPECT_EQ(cmap.AcknowledgeMessages(2), 0);  // idempotent
}

TEST(CmapTest, FullyAppliedMessagesAreNotQueued) {
  Cmap cmap(0, 8);
  cmap.PostMessage(CmapMessage{4, CmapMessage::Directive::kInvalidate, 0});
  EXPECT_TRUE(cmap.messages().empty());
}

}  // namespace
}  // namespace platinum::mem
