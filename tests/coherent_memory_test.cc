// Protocol tests for the coherent memory system: state transitions,
// replication, migration, freezing, defrost, shootdowns, and end-to-end
// coherence under random workloads.
#include "src/mem/coherent_memory.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/kernel/report.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using mem::CpageState;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;
using test::TestSystem;

class CoherentMemoryTest : public ::testing::Test {
 protected:
  CoherentMemoryTest() : sys_(4) {
    space_ = sys_.kernel.CreateAddressSpace("test-space");
    zone_ = std::make_unique<rt::ZoneAllocator>(&sys_.kernel, space_);
  }

  // Allocates a one-page array and returns it with its cpage id.
  rt::SharedArray<uint32_t> NewPage(const std::string& name, uint32_t* cpage_id) {
    auto array = rt::SharedArray<uint32_t>::Create(*zone_, name, 4);
    *cpage_id = sys_.kernel.FindMemoryObject(name)->cpage(0);
    return array;
  }

  const mem::Cpage& page(uint32_t id) { return sys_.kernel.memory().cpages().at(id); }

  // Spawns a thread on `processor` at virtual time `delay` running `body`.
  // The thread is created *at* the target time (by a timer fiber), so the
  // address space is only active on the processor while the body runs —
  // important for tests that depend on the activation census.
  void At(int processor, SimTime delay, std::function<void()> body) {
    sys_.machine.scheduler().Spawn(
        processor, "timer", [this, processor, delay, body = std::move(body)] {
          sys_.machine.scheduler().Sleep(delay);
          kernel::Thread* thread =
              sys_.kernel.SpawnThread(space_, processor, "step", std::move(body));
          sys_.kernel.JoinThread(thread);
        });
  }

  void RunAndCheck() {
    sys_.kernel.Run();
    sys_.kernel.memory().CheckInvariants();
  }

  TestSystem sys_;
  vm::AddressSpace* space_ = nullptr;
  std::unique_ptr<rt::ZoneAllocator> zone_;
};

TEST_F(CoherentMemoryTest, FirstWriteFillsLocallyAndModifies) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(1, 0, [&] {
    arr.Set(0, 77);
    EXPECT_EQ(arr.Get(0), 77u);  // read through the same RW mapping: no fault
  });
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kModified);
  ASSERT_EQ(page(id).copies().size(), 1u);
  EXPECT_EQ(page(id).copies()[0].module, 1);
  EXPECT_EQ(sys_.machine.stats().initial_fills, 1u);
  EXPECT_EQ(sys_.machine.stats().faults, 1u);
}

TEST_F(CoherentMemoryTest, FirstReadFillsPresent1) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(2, 0, [&] { EXPECT_EQ(arr.Get(1), 0u); });  // zero-filled
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kPresent1);
  EXPECT_EQ(page(id).copies()[0].module, 2);
}

TEST_F(CoherentMemoryTest, ReadMissReplicatesModifiedPage) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 123); });
  At(1, 2 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 123u); });
  RunAndCheck();
  // modified -> present1 (restrict) -> present+ (replicate)
  EXPECT_EQ(page(id).state(), CpageState::kPresentPlus);
  EXPECT_EQ(page(id).copies().size(), 2u);
  EXPECT_TRUE(page(id).HasCopyOn(0));
  EXPECT_TRUE(page(id).HasCopyOn(1));
  EXPECT_EQ(page(id).write_mappings(), 0u);
  EXPECT_EQ(sys_.machine.stats().replications, 1u);
  EXPECT_EQ(sys_.machine.stats().mappings_restricted, 1u);
  EXPECT_FALSE(page(id).ever_invalidated());  // restriction is not invalidation
}

TEST_F(CoherentMemoryTest, WriteMissOnPresentPlusInvalidatesReplicas) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 5); });
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });
  At(0, 4 * kMillisecond, [&] { arr.Set(0, 6); });
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kModified);
  EXPECT_EQ(page(id).copies().size(), 1u);
  EXPECT_EQ(page(id).copies()[0].module, 0);
  EXPECT_TRUE(page(id).ever_invalidated());
  EXPECT_EQ(sys_.machine.stats().pages_freed, 1u);
  EXPECT_EQ(sys_.machine.stats().mappings_invalidated, 1u);
}

TEST_F(CoherentMemoryTest, RecentInvalidationFreezesPage) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 5); });
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });           // replicate
  At(0, 4 * kMillisecond, [&] { arr.Set(0, 6); });        // invalidate
  At(1, 6 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 6u); });  // within t1: freeze
  RunAndCheck();
  EXPECT_TRUE(page(id).frozen());
  EXPECT_EQ(sys_.kernel.memory().frozen_count(), 1u);
  EXPECT_EQ(sys_.machine.stats().freezes, 1u);
  EXPECT_EQ(sys_.machine.stats().remote_maps, 1u);
  // The frozen page keeps its single copy on the writer's node; the reader
  // has a remote read mapping.
  EXPECT_EQ(page(id).copies().size(), 1u);
  EXPECT_EQ(page(id).copies()[0].module, 0);
}

TEST_F(CoherentMemoryTest, FrozenPageRemoteWriteSharesSingleCopy) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 1); });
  At(1, 1 * kMillisecond, [&] { arr.Set(0, 2); });   // migrate (no one else mapped? p0 is)
  At(0, 2 * kMillisecond, [&] { arr.Set(0, 3); });   // recent invalidation: remote RW map
  At(1, 3 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 3u); });
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kModified);
  EXPECT_EQ(page(id).copies().size(), 1u);
  // Both processors ended up with mappings to the single copy.
  EXPECT_GE(page(id).write_mappings(), 1u);
  EXPECT_TRUE(page(id).frozen());
}

TEST_F(CoherentMemoryTest, MigrationMovesDataAfterQuiescence) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(2, 42); });
  // After t1 with no invalidations the write migrates the page.
  At(3, 15 * kMillisecond, [&] {
    arr.Set(3, 43);
    EXPECT_EQ(arr.Get(2), 42u);  // data came along
  });
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kModified);
  ASSERT_EQ(page(id).copies().size(), 1u);
  EXPECT_EQ(page(id).copies()[0].module, 3);
  EXPECT_EQ(sys_.machine.stats().migrations, 1u);
  EXPECT_EQ(sys_.machine.stats().pages_freed, 1u);
}

TEST_F(CoherentMemoryTest, Present1WriteUpgradeNeedsNoShootdown) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(2, 0, [&] {
    arr.Get(0);     // present1, read-only mapping
    arr.Set(0, 9);  // upgrade in place
  });
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kModified);
  EXPECT_EQ(sys_.machine.stats().ipis_sent, 0u);
  EXPECT_EQ(sys_.machine.stats().pages_freed, 0u);
  EXPECT_EQ(sys_.machine.stats().faults, 2u);
}

TEST_F(CoherentMemoryTest, DefrostThawsAndAllowsReplication) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 5); });
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });
  At(0, 4 * kMillisecond, [&] { arr.Set(0, 6); });
  At(1, 6 * kMillisecond, [&] { arr.Get(0); });  // freezes
  RunAndCheck();
  ASSERT_TRUE(page(id).frozen());

  sys_.kernel.memory().ThawAllFrozen();
  EXPECT_FALSE(page(id).frozen());
  EXPECT_EQ(page(id).state(), CpageState::kPresent1);
  EXPECT_EQ(page(id).write_mappings(), 0u);
  EXPECT_EQ(sys_.machine.stats().thaws, 1u);
  sys_.kernel.memory().CheckInvariants();

  // Long after the last invalidation, a read replicates again.
  At(1, 20 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 6u); });
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kPresentPlus);
}

TEST_F(CoherentMemoryTest, DefrostDaemonThawsAutomatically) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 5); });
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });
  At(0, 4 * kMillisecond, [&] { arr.Set(0, 6); });
  At(1, 6 * kMillisecond, [&] { arr.Get(0); });  // freezes
  // Keep the machine alive past the defrost period t2.
  At(2, sys_.machine.params().t2_defrost_period_ns + 10 * kMillisecond, [&] {});
  RunAndCheck();
  EXPECT_FALSE(page(id).frozen());
  EXPECT_GE(sys_.machine.stats().thaws, 1u);
}

TEST_F(CoherentMemoryTest, SharedObjectAcrossAddressSpaces) {
  // The same object mapped into two address spaces stays coherent.
  auto* object = sys_.kernel.CreateMemoryObject("shared", 1);
  auto* space_b = sys_.kernel.CreateAddressSpace("space-b");
  sys_.kernel.Map(space_, object, 0, 1, 100, hw::Rights::kReadWrite);
  sys_.kernel.Map(space_b, object, 0, 1, 200, hw::Rights::kReadWrite);
  uint32_t va_a = 100 * sys_.kernel.page_size();
  uint32_t va_b = 200 * sys_.kernel.page_size();

  sys_.kernel.SpawnThread(space_, 0, "writer",
                          [&] { sys_.kernel.WriteWord(space_, va_a, 31337); });
  sys_.kernel.SpawnThread(space_b, 1, "reader", [&] {
    sys_.machine.scheduler().Sleep(2 * kMillisecond);
    EXPECT_EQ(sys_.kernel.ReadWord(space_b, va_b + 0), 31337u);
  });
  RunAndCheck();
  const mem::Cpage& shared = page(object->cpage(0));
  EXPECT_EQ(shared.mappers().size(), 2u);
  EXPECT_EQ(shared.state(), CpageState::kPresentPlus);
}

TEST_F(CoherentMemoryTest, LocalCopyFoundThroughOtherAddressSpace) {
  // Space B on the *same node* reuses the local physical copy instead of
  // replicating again.
  auto* object = sys_.kernel.CreateMemoryObject("shared", 1);
  auto* space_b = sys_.kernel.CreateAddressSpace("space-b");
  sys_.kernel.Map(space_, object, 0, 1, 100, hw::Rights::kReadWrite);
  sys_.kernel.Map(space_b, object, 0, 1, 50, hw::Rights::kReadWrite);

  sys_.kernel.SpawnThread(space_, 2, "writer", [&] {
    sys_.kernel.WriteWord(space_, 100 * sys_.kernel.page_size(), 7);
  });
  sys_.kernel.SpawnThread(space_b, 2, "reader", [&] {
    sys_.machine.scheduler().Sleep(1 * kMillisecond);
    EXPECT_EQ(sys_.kernel.ReadWord(space_b, 50 * sys_.kernel.page_size()), 7u);
  });
  RunAndCheck();
  EXPECT_EQ(sys_.machine.stats().replications, 0u);
  EXPECT_EQ(page(object->cpage(0)).copies().size(), 1u);
}

TEST_F(CoherentMemoryTest, ShootdownInterruptsOnlyReferencingActiveProcessors) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 1); });
  // Processors 1 and 2 replicate; processor 3 runs a thread that never
  // touches the page (active but not referencing).
  At(1, 2 * kMillisecond, [&] {
    arr.Get(0);
    sys_.machine.scheduler().Sleep(60 * kMillisecond);
  });
  At(2, 2 * kMillisecond, [&] {
    arr.Get(0);
    sys_.machine.scheduler().Sleep(60 * kMillisecond);
  });
  At(3, 2 * kMillisecond, [&] { sys_.machine.scheduler().Sleep(60 * kMillisecond); });
  At(0, 20 * kMillisecond, [&] { arr.Set(0, 2); });  // write miss? no: local copy upgrade
  RunAndCheck();
  // Only processors 1 and 2 were interrupted; 0 is the initiator, 3 holds no
  // translation (Mach would have interrupted it too).
  EXPECT_EQ(sys_.machine.stats().ipis_sent, 2u);
}

TEST_F(CoherentMemoryTest, InactiveProcessorGetsCmapMessageNotIpi) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 1); });
  // Processor 1 replicates, then its thread exits (deactivating the space).
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });
  At(0, 20 * kMillisecond, [&] { arr.Set(0, 2); });
  RunAndCheck();
  EXPECT_EQ(sys_.machine.stats().ipis_sent, 0u);
  // The change was queued for processor 1 to apply at next activation.
  ASSERT_EQ(sys_.kernel.memory().cmap(space_->id()).messages().size(), 1u);
  EXPECT_EQ(sys_.kernel.memory().cmap(space_->id()).messages()[0].target_mask, uint64_t{1} << 1);

  // Activating the space on processor 1 drains the queue.
  At(1, 30 * kMillisecond, [&] {});
  RunAndCheck();
  EXPECT_TRUE(sys_.kernel.memory().cmap(space_->id()).messages().empty());
}

TEST_F(CoherentMemoryTest, ProtectionAndUnmappedFaults) {
  auto* object = sys_.kernel.CreateMemoryObject("ro", 1);
  sys_.kernel.Map(space_, object, 0, 1, 300, hw::Rights::kRead);
  uint32_t va = 300 * sys_.kernel.page_size();
  At(0, 0, [&] {
    auto& memory = sys_.kernel.memory();
    auto write = memory.Access(space_->id(), 300, 0, sim::AccessKind::kWrite, 1);
    EXPECT_EQ(write.outcome, mem::AccessOutcome::kProtection);
    auto read = memory.Access(space_->id(), 300, 0, sim::AccessKind::kRead);
    EXPECT_EQ(read.outcome, mem::AccessOutcome::kOk);
    auto unmapped = memory.Access(space_->id(), 9999, 0, sim::AccessKind::kRead);
    EXPECT_EQ(unmapped.outcome, mem::AccessOutcome::kNoMapping);
    (void)va;
  });
  RunAndCheck();
}

TEST_F(CoherentMemoryTest, UnbindRemovesTranslationsAndMapper) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] { arr.Set(0, 1); });
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });
  RunAndCheck();
  uint32_t vpn = arr.base_va() / sys_.kernel.page_size();
  sys_.kernel.Unmap(space_, vpn, 1);
  EXPECT_TRUE(page(id).mappers().empty());
  EXPECT_EQ(page(id).write_mappings(), 0u);
  sys_.kernel.memory().CheckInvariants();
}

// End-to-end coherence: random reads/writes from all processors must always
// observe the value of the most recent write in simulation order.
class CoherenceRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CoherenceRandomTest, MatchesShadowModel) {
  const int seed = GetParam();
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("random");
  rt::ZoneAllocator zone(&sys.kernel, space);
  constexpr int kPages = 6;
  constexpr int kWordsPerPage = 8;
  auto arr = rt::SharedArray<uint32_t>::Create(
      zone, "data", kPages * sys.kernel.page_size() / 4);

  // Shadow model updated in fiber-execution order.
  std::vector<uint32_t> shadow(kPages * kWordsPerPage, 0);
  auto index_of = [&](int page_index, int word) {
    return page_index * (sys.kernel.page_size() / 4) + word;
  };

  rt::RunOnProcessors(sys.kernel, space, 4, "rnd", [&](int p) {
    std::mt19937 rng(seed * 97 + p);
    for (int i = 0; i < 400; ++i) {
      int page_index = static_cast<int>(rng() % kPages);
      int word = static_cast<int>(rng() % kWordsPerPage);
      size_t si = static_cast<size_t>(page_index) * kWordsPerPage + word;
      // A fiber can only be preempted at the end of an access, so updating
      // the shadow (or capturing the expectation) immediately before the
      // access keeps the two models in lockstep.
      if (rng() % 2 == 0) {
        uint32_t value = rng();
        shadow[si] = value;
        arr.Set(index_of(page_index, word), value);
      } else {
        uint32_t expected = shadow[si];
        EXPECT_EQ(arr.Get(index_of(page_index, word)), expected)
            << "processor " << p << " op " << i;
      }
      if (rng() % 8 == 0) {
        sys.machine.scheduler().Sleep((rng() % 2000) * kMicrosecond);
      }
    }
  });
  sys.kernel.memory().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceRandomTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(CoherentMemoryTiming, ReadMissReplicationCostMatchesPaper) {
  // Section 4: a read miss replicating a non-modified page takes 1.34-1.38 ms.
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("t");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "p", 4);
  SimTime measured = 0;
  sys.kernel.SpawnThread(space, 0, "filler", [&] { arr.Get(0); });
  sys.kernel.SpawnThread(space, 1, "replicator", [&] {
    sys.machine.scheduler().Sleep(2 * kMillisecond);
    SimTime t0 = sys.kernel.Now();
    arr.Get(0);
    measured = sys.kernel.Now() - t0;
  });
  sys.kernel.Run();
  EXPECT_GE(sim::ToMilliseconds(measured), 1.30);
  EXPECT_LE(sim::ToMilliseconds(measured), 1.45);
}

TEST(CoherentMemoryTiming, FrozenPageAccessIsOneRemoteReference) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("t");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "p", 4);
  SimTime measured = 0;
  sys.kernel.SpawnThread(space, 0, "w", [&] {
    arr.Set(0, 1);
    sys.machine.scheduler().Sleep(4 * kMillisecond);
    arr.Set(0, 2);  // invalidates the replica below
  });
  sys.kernel.SpawnThread(space, 1, "r", [&] {
    auto& sched = sys.machine.scheduler();
    sched.Sleep(2 * kMillisecond);
    arr.Get(0);  // replicate
    sched.Sleep(4 * kMillisecond);
    arr.Get(0);  // fault -> frozen remote mapping
    SimTime t0 = sys.kernel.Now();
    arr.Get(0);  // plain remote reference, no fault
    measured = sys.kernel.Now() - t0;
  });
  sys.kernel.Run();
  EXPECT_LE(measured, 10 * kMicrosecond);
  EXPECT_GE(measured, sys.machine.params().remote_read_ns);
}

TEST_F(CoherentMemoryTest, AtcHitAndMissCountsCoverEveryReference) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  // Mix of fault-resolving accesses (initial fill, replication, invalidation,
  // freeze) and plain hits across two processors.
  At(0, 0, [&] { arr.Set(0, 5); });
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });
  At(0, 4 * kMillisecond, [&] { arr.Set(0, 6); });
  At(1, 6 * kMillisecond, [&] {
    arr.Get(0);
    arr.Get(1);
  });
  RunAndCheck();
  const sim::MachineStats& stats = sys_.machine.stats();
  EXPECT_GT(stats.faults, 0u);
  EXPECT_GT(stats.atc_hits, 0u);
  // Every reference resolves as either an ATC hit or an ATC miss; an access
  // that traps into the fault handler is a miss too (the accounting bug fixed
  // in AccessSlow).
  EXPECT_EQ(stats.atc_hits + stats.atc_misses, stats.total_references());
}

TEST_F(CoherentMemoryTest, AtcConflictRefillsFromPmapWithoutFaulting) {
  // The ATC is direct-mapped: vpns atc_entries apart share a slot. Touching
  // two conflicting pages alternately must refill from the (still valid)
  // private Pmap — an ATC miss each time, but never another page fault.
  const uint32_t entries = sys_.machine.params().atc_entries;
  const uint32_t wpp = sys_.machine.params().words_per_page();
  auto arr = rt::SharedArray<uint32_t>::Create(*zone_, "conflict",
                                               static_cast<size_t>(entries + 1) * wpp);
  const size_t word_a = 0;                            // first page
  const size_t word_b = static_cast<size_t>(entries) * wpp;  // conflicting page
  At(0, 0, [&] {
    const sim::MachineStats& stats = sys_.machine.stats();
    arr.Set(word_a, 11);  // fault: initial fill of page A
    arr.Set(word_b, 22);  // fault: fill of page B evicts A's ATC slot
    uint64_t faults_before = stats.faults;
    uint64_t misses_before = stats.atc_misses;
    uint64_t hits_before = stats.atc_hits;
    EXPECT_EQ(arr.Get(word_a), 11u);  // ATC conflict miss, Pmap refill, no fault
    EXPECT_EQ(stats.faults, faults_before);
    EXPECT_EQ(stats.atc_misses, misses_before + 1);
    EXPECT_EQ(stats.atc_hits, hits_before);
    EXPECT_EQ(arr.Get(word_a), 11u);  // now cached again: a plain hit
    EXPECT_EQ(stats.atc_hits, hits_before + 1);
    EXPECT_EQ(stats.atc_misses, misses_before + 1);
  });
  RunAndCheck();
  const sim::MachineStats& stats = sys_.machine.stats();
  EXPECT_EQ(stats.atc_hits + stats.atc_misses, stats.total_references());
}

// Runs one multi-processor scenario whose bulk transfers go either word by
// word or through the block-access API, and returns everything observable:
// the values read, the full machine stats, the protocol trace and the final
// virtual time. The two variants must be indistinguishable.
struct RangeScenarioResult {
  std::vector<uint32_t> read_back;
  uint64_t atc_hits = 0;
  uint64_t atc_misses = 0;
  uint64_t faults = 0;
  uint64_t replications = 0;
  uint64_t mappings_invalidated = 0;
  uint64_t total_references = 0;
  sim::SimTime final_time = 0;
  std::vector<mem::TraceEvent> trace;
};

RangeScenarioResult RunRangeScenario(bool use_range) {
  TestSystem sys(4);
  sys.kernel.memory().EnableTracing(1 << 16);
  auto* space = sys.kernel.CreateAddressSpace("range");
  rt::ZoneAllocator zone(&sys.kernel, space);
  const uint32_t wpp = sys.machine.params().words_per_page();
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "data", static_cast<size_t>(3) * wpp);
  // A page-crossing span starting mid-page.
  const size_t first = wpp / 2;
  const size_t count = 2 * wpp;

  RangeScenarioResult result;
  result.read_back.resize(count);
  sys.kernel.SpawnThread(space, 0, "writer", [&] {
    std::vector<uint32_t> values(count);
    for (size_t i = 0; i < count; ++i) {
      values[i] = static_cast<uint32_t>(3 * i + 7);
    }
    if (use_range) {
      arr.SetRange(first, count, values.data());
    } else {
      for (size_t i = 0; i < count; ++i) {
        arr.Set(first + i, values[i]);
      }
    }
  });
  sys.kernel.SpawnThread(space, 1, "reader", [&] {
    sys.machine.scheduler().Sleep(20 * kMillisecond);
    if (use_range) {
      arr.GetRange(first, count, result.read_back.data());
    } else {
      for (size_t i = 0; i < count; ++i) {
        result.read_back[i] = arr.Get(first + i);
      }
    }
  });
  // A third processor dirtying the middle page concurrently, so some of the
  // bulk words fault and some translations are shot down mid-transfer.
  sys.kernel.SpawnThread(space, 2, "disturber", [&] {
    sys.machine.scheduler().Sleep(10 * kMillisecond);
    arr.Set(static_cast<size_t>(wpp) + 5, 0xdead);
  });
  sys.kernel.Run();
  sys.kernel.memory().CheckInvariants();

  const sim::MachineStats& stats = sys.machine.stats();
  result.atc_hits = stats.atc_hits;
  result.atc_misses = stats.atc_misses;
  result.faults = stats.faults;
  result.replications = stats.replications;
  result.mappings_invalidated = stats.mappings_invalidated;
  result.total_references = stats.total_references();
  result.final_time = sys.machine.scheduler().global_now();
  result.trace = sys.kernel.memory().trace()->Snapshot();
  return result;
}

TEST(CoherentMemoryRange, BlockAccessMatchesWordByWordExactly) {
  RangeScenarioResult words = RunRangeScenario(/*use_range=*/false);
  RangeScenarioResult range = RunRangeScenario(/*use_range=*/true);

  EXPECT_EQ(words.read_back, range.read_back);
  EXPECT_EQ(words.atc_hits, range.atc_hits);
  EXPECT_EQ(words.atc_misses, range.atc_misses);
  EXPECT_EQ(words.faults, range.faults);
  EXPECT_EQ(words.replications, range.replications);
  EXPECT_EQ(words.mappings_invalidated, range.mappings_invalidated);
  EXPECT_EQ(words.total_references, range.total_references);
  EXPECT_EQ(words.final_time, range.final_time);
  EXPECT_GT(words.faults, 0u);

  // Identical protocol trace streams, event by event.
  ASSERT_EQ(words.trace.size(), range.trace.size());
  for (size_t i = 0; i < words.trace.size(); ++i) {
    EXPECT_EQ(words.trace[i].time, range.trace[i].time) << "event " << i;
    EXPECT_EQ(words.trace[i].type, range.trace[i].type) << "event " << i;
    EXPECT_EQ(words.trace[i].cpage, range.trace[i].cpage) << "event " << i;
    EXPECT_EQ(words.trace[i].processor, range.trace[i].processor) << "event " << i;
    EXPECT_EQ(words.trace[i].detail, range.trace[i].detail) << "event " << i;
    EXPECT_EQ(words.trace[i].thread, range.trace[i].thread) << "event " << i;
  }
}

}  // namespace
}  // namespace platinum
