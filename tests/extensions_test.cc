// Tests for the Section 9 kernel-interface extensions (advice, pin,
// pre-replication, explicit thaw), the adaptive defrost daemon, and the
// instrumentation trace.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/mem/trace.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using mem::CpageState;
using mem::MemoryAdvice;
using sim::kMillisecond;
using test::TestSystem;

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : sys_(4) {
    space_ = sys_.kernel.CreateAddressSpace("ext");
    zone_ = std::make_unique<rt::ZoneAllocator>(&sys_.kernel, space_);
  }

  rt::SharedArray<uint32_t> NewPage(const std::string& name, uint32_t* cpage_id) {
    auto array = rt::SharedArray<uint32_t>::Create(*zone_, name, 4);
    *cpage_id = sys_.kernel.FindMemoryObject(name)->cpage(0);
    return array;
  }

  const mem::Cpage& page(uint32_t id) { return sys_.kernel.memory().cpages().at(id); }

  void At(int processor, sim::SimTime delay, std::function<void()> body) {
    sys_.machine.scheduler().Spawn(
        processor, "timer", [this, processor, delay, body = std::move(body)] {
          sys_.machine.scheduler().Sleep(delay);
          kernel::Thread* thread =
              sys_.kernel.SpawnThread(space_, processor, "step", std::move(body));
          sys_.kernel.JoinThread(thread);
        });
  }

  void RunAndCheck() {
    sys_.kernel.Run();
    sys_.kernel.memory().CheckInvariants();
  }

  TestSystem sys_;
  vm::AddressSpace* space_ = nullptr;
  std::unique_ptr<rt::ZoneAllocator> zone_;
};

TEST_F(ExtensionsTest, WriteSharedAdviceFreezesImmediately) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  sys_.kernel.AdviseMemory(space_, arr.base_va(), 4, MemoryAdvice::kWriteShared);
  At(0, 0, [&] { arr.Set(0, 1); });
  // The second toucher gets a remote mapping and the page freezes at once,
  // with no migration ping-pong first.
  At(1, 2 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 1u); });
  RunAndCheck();
  EXPECT_TRUE(page(id).frozen());
  EXPECT_EQ(sys_.machine.stats().migrations, 0u);
  EXPECT_EQ(sys_.machine.stats().replications, 0u);
}

TEST_F(ExtensionsTest, ReadMostlyAdviceReplicatesDespiteInvalidations) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  sys_.kernel.AdviseMemory(space_, arr.base_va(), 4, MemoryAdvice::kReadMostly);
  At(0, 0, [&] { arr.Set(0, 1); });
  At(1, 2 * kMillisecond, [&] { arr.Get(0); });          // replicate
  At(0, 4 * kMillisecond, [&] { arr.Set(0, 2); });       // invalidates
  At(1, 6 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 2u); });  // would freeze by default
  RunAndCheck();
  EXPECT_FALSE(page(id).frozen());
  EXPECT_EQ(page(id).state(), CpageState::kPresentPlus);
  EXPECT_EQ(sys_.machine.stats().replications, 2u);
}

TEST_F(ExtensionsTest, PrivateAdviceAlwaysMigrates) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  sys_.kernel.AdviseMemory(space_, arr.base_va(), 4, MemoryAdvice::kPrivate);
  At(0, 0, [&] { arr.Set(0, 1); });
  At(1, 1 * kMillisecond, [&] { arr.Set(0, 2); });
  At(2, 2 * kMillisecond, [&] { arr.Set(0, 3); });  // would freeze by default
  RunAndCheck();
  EXPECT_FALSE(page(id).frozen());
  ASSERT_EQ(page(id).copies().size(), 1u);
  EXPECT_EQ(page(id).copies()[0].module, 2);
  EXPECT_EQ(sys_.machine.stats().migrations, 2u);
}

TEST_F(ExtensionsTest, PinMovesDataAndFreezes) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] {
    arr.Set(0, 77);
    sys_.kernel.PinMemory(space_, arr.base_va(), /*node=*/3);
  });
  At(1, 2 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 77u); });
  RunAndCheck();
  EXPECT_TRUE(page(id).frozen());
  ASSERT_EQ(page(id).copies().size(), 1u);
  EXPECT_EQ(page(id).copies()[0].module, 3);
  // The reader got a remote mapping to the pinned copy.
  EXPECT_GE(sys_.machine.stats().remote_maps, 1u);
}

TEST_F(ExtensionsTest, PinEmptyPageMaterializesOnTarget) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  sys_.kernel.PinMemory(space_, arr.base_va(), /*node=*/2);
  EXPECT_TRUE(page(id).frozen());
  ASSERT_EQ(page(id).copies().size(), 1u);
  EXPECT_EQ(page(id).copies()[0].module, 2);
  At(0, 0, [&] { EXPECT_EQ(arr.Get(0), 0u); });  // zero-filled, remote-mapped
  RunAndCheck();
  EXPECT_EQ(page(id).copies().size(), 1u);
}

TEST_F(ExtensionsTest, ReplicateToPrefetchesCopy) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] {
    arr.Set(0, 9);
    sys_.kernel.ReplicateMemory(space_, arr.base_va(), /*node=*/1);
  });
  RunAndCheck();
  EXPECT_EQ(page(id).state(), CpageState::kPresentPlus);
  EXPECT_TRUE(page(id).HasCopyOn(1));
  // A later read on node 1 finds the local copy: no block transfer needed.
  uint64_t transfers_before = sys_.machine.stats().block_transfers;
  At(1, 1 * kMillisecond, [&] { EXPECT_EQ(arr.Get(0), 9u); });
  RunAndCheck();
  EXPECT_EQ(sys_.machine.stats().block_transfers, transfers_before);
}

TEST_F(ExtensionsTest, ExplicitThawUnfreezes) {
  uint32_t id;
  auto arr = NewPage("p", &id);
  At(0, 0, [&] {
    arr.Set(0, 1);
    sys_.kernel.PinMemory(space_, arr.base_va(), 0);
    EXPECT_TRUE(page(id).frozen());
    sys_.kernel.ThawMemory(space_, arr.base_va());
    EXPECT_FALSE(page(id).frozen());
  });
  RunAndCheck();
}

TEST(AdaptiveDefrostTest, PageStaysFrozenForFullT2) {
  sim::MachineParams params = sim::ButterflyPlusParams(4);
  params.adaptive_defrost = true;
  params.t2_defrost_period_ns = 100 * kMillisecond;
  TestSystem sys(params);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "p", 4);
  uint32_t id = sys.kernel.FindMemoryObject("p")->cpage(0);

  // Freeze the page at ~95 ms: the periodic daemon would thaw it at 100 ms
  // after only ~5 ms frozen; the adaptive daemon must wait the full t2.
  sys.kernel.SpawnThread(space, 0, "w", [&] {
    arr.Set(0, 1);
    sys.machine.scheduler().Sleep(90 * kMillisecond);
    arr.Set(0, 2);  // invalidate the replica made below
  });
  sys.kernel.SpawnThread(space, 1, "r", [&] {
    auto& sched = sys.machine.scheduler();
    sched.Sleep(50 * kMillisecond);
    arr.Get(0);                       // replicate
    sched.Sleep(45 * kMillisecond);   // ~95 ms
    arr.Get(0);                       // recent invalidation: freeze
    EXPECT_TRUE(sys.kernel.memory().cpages().at(id).frozen());
    sched.Sleep(60 * kMillisecond);   // ~155 ms: less than freeze+t2
    EXPECT_TRUE(sys.kernel.memory().cpages().at(id).frozen());
    sched.Sleep(60 * kMillisecond);   // ~215 ms: past freeze+t2
    sched.Sleep(10 * kMillisecond);
    EXPECT_FALSE(sys.kernel.memory().cpages().at(id).frozen());
  });
  sys.kernel.Run();
  sys.kernel.memory().CheckInvariants();
}

TEST(TraceTest, RecordsProtocolEvents) {
  TestSystem sys(4);
  sys.kernel.memory().EnableTracing(128);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "p", 4);

  sys.kernel.SpawnThread(space, 0, "w", [&] {
    arr.Set(0, 1);
    sys.machine.scheduler().Sleep(15 * kMillisecond);
  });
  sys.kernel.SpawnThread(space, 1, "r", [&] {
    sys.machine.scheduler().Sleep(5 * kMillisecond);
    arr.Get(0);
  });
  sys.kernel.Run();

  auto events = sys.kernel.memory().trace()->Snapshot();
  ASSERT_FALSE(events.empty());
  int faults = 0;
  int fills = 0;
  int replicates = 0;
  int shootdowns = 0;
  sim::SimTime previous = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.time, previous);
    previous = e.time;
    switch (e.type) {
      case mem::TraceEventType::kFault:
        ++faults;
        break;
      case mem::TraceEventType::kFill:
        ++fills;
        break;
      case mem::TraceEventType::kReplicate:
        ++replicates;
        break;
      case mem::TraceEventType::kShootdown:
        ++shootdowns;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(faults, 2);       // write fill + read replication
  EXPECT_EQ(fills, 1);
  EXPECT_EQ(replicates, 1);
  EXPECT_EQ(shootdowns, 1);   // restrict of the writer's mapping
  EXPECT_FALSE(sys.kernel.memory().trace()->ToString().empty());
}

TEST(TraceTest, RingBufferDropsOldest) {
  mem::TraceLog log(4);
  for (uint32_t i = 0; i < 10; ++i) {
    log.Record(i, mem::TraceEventType::kFault, i, 0, 0);
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().cpage, 6u);
  EXPECT_EQ(events.back().cpage, 9u);
}

}  // namespace
}  // namespace platinum
