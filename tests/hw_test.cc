// Unit tests for the MMU layer: Pmap and ATC.
#include <gtest/gtest.h>

#include "src/hw/atc.h"
#include "src/hw/pmap.h"
#include "src/hw/rights.h"

namespace platinum::hw {
namespace {

TEST(RightsTest, AllowsMatrix) {
  EXPECT_TRUE(Allows(Rights::kRead, Rights::kRead));
  EXPECT_FALSE(Allows(Rights::kRead, Rights::kReadWrite));
  EXPECT_TRUE(Allows(Rights::kReadWrite, Rights::kRead));
  EXPECT_TRUE(Allows(Rights::kReadWrite, Rights::kReadWrite));
  EXPECT_FALSE(Allows(Rights::kNone, Rights::kRead));
}

TEST(PmapTest, EnterAndRemove) {
  Pmap pmap(8);
  EXPECT_FALSE(pmap.entry(3).valid);
  pmap.Enter(3, /*module=*/1, /*frame=*/7, Rights::kRead);
  EXPECT_TRUE(pmap.entry(3).valid);
  EXPECT_EQ(pmap.entry(3).module, 1);
  EXPECT_EQ(pmap.entry(3).frame, 7u);
  EXPECT_EQ(pmap.valid_count(), 1u);
  pmap.Remove(3);
  EXPECT_FALSE(pmap.entry(3).valid);
  EXPECT_EQ(pmap.valid_count(), 0u);
}

TEST(PmapTest, RemoveIsIdempotent) {
  Pmap pmap(4);
  pmap.Remove(2);
  EXPECT_EQ(pmap.valid_count(), 0u);
}

TEST(PmapTest, RestrictDowngradesRights) {
  Pmap pmap(4);
  pmap.Enter(0, 0, 0, Rights::kReadWrite);
  pmap.Restrict(0, Rights::kRead);
  EXPECT_TRUE(pmap.entry(0).valid);
  EXPECT_EQ(pmap.entry(0).rights, Rights::kRead);
  // Restricting to none removes the entry entirely.
  pmap.Restrict(0, Rights::kNone);
  EXPECT_FALSE(pmap.entry(0).valid);
}

TEST(PmapTest, EnterReplacesTranslation) {
  Pmap pmap(4);
  pmap.Enter(1, 0, 5, Rights::kRead);
  pmap.Enter(1, 2, 9, Rights::kReadWrite);
  EXPECT_EQ(pmap.entry(1).module, 2);
  EXPECT_EQ(pmap.entry(1).frame, 9u);
  EXPECT_EQ(pmap.valid_count(), 1u);
}

TEST(AtcTest, FillLookupFlush) {
  Atc atc(64);
  EXPECT_EQ(atc.Lookup(0, 10), nullptr);
  PmapEntry entry{.frame = 3, .module = 1, .rights = Rights::kRead, .valid = true};
  atc.Fill(0, 10, entry);
  const PmapEntry* hit = atc.Lookup(0, 10);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->frame, 3u);
  atc.FlushPage(0, 10);
  EXPECT_EQ(atc.Lookup(0, 10), nullptr);
}

TEST(AtcTest, TagsIncludeAddressSpace) {
  Atc atc(64);
  PmapEntry entry{.frame = 3, .module = 1, .rights = Rights::kRead, .valid = true};
  atc.Fill(/*as_id=*/0, 10, entry);
  EXPECT_EQ(atc.Lookup(/*as_id=*/1, 10), nullptr);
}

TEST(AtcTest, DirectMappedConflictEvicts) {
  Atc atc(64);
  PmapEntry a{.frame = 1, .module = 0, .rights = Rights::kRead, .valid = true};
  PmapEntry b{.frame = 2, .module = 0, .rights = Rights::kRead, .valid = true};
  atc.Fill(0, 5, a);
  atc.Fill(0, 5 + 64, b);  // same slot
  EXPECT_EQ(atc.Lookup(0, 5), nullptr);
  ASSERT_NE(atc.Lookup(0, 5 + 64), nullptr);
}

TEST(AtcTest, FlushAddressSpaceOnlyDropsThatSpace) {
  Atc atc(64);
  PmapEntry entry{.frame = 1, .module = 0, .rights = Rights::kRead, .valid = true};
  atc.Fill(0, 1, entry);
  atc.Fill(1, 2, entry);
  atc.FlushAddressSpace(0);
  EXPECT_EQ(atc.Lookup(0, 1), nullptr);
  EXPECT_NE(atc.Lookup(1, 2), nullptr);
  atc.FlushAll();
  EXPECT_EQ(atc.Lookup(1, 2), nullptr);
}

}  // namespace
}  // namespace platinum::hw
