// Unit tests for the interconnect timing/contention model.
#include "src/sim/interconnect.h"

#include <gtest/gtest.h>

#include "src/sim/params.h"

namespace platinum::sim {
namespace {

class InterconnectTest : public ::testing::Test {
 protected:
  InterconnectTest() : params_(ButterflyPlusParams(4)), obs_(4) {
    params_.frames_per_module = 8;
    for (int i = 0; i < 4; ++i) {
      modules_.emplace_back(i, params_);
    }
    net_ = std::make_unique<Interconnect>(params_, &modules_, &stats_, &obs_);
  }

  MachineParams params_;
  std::vector<MemoryModule> modules_;
  MachineStats stats_;
  obs::Observability obs_;
  std::unique_ptr<Interconnect> net_;
};

TEST_F(InterconnectTest, LocalReadLatency) {
  EXPECT_EQ(net_->Reference(0, 0, AccessKind::kRead, 0), params_.local_read_ns);
  EXPECT_EQ(stats_.local_reads, 1u);
}

TEST_F(InterconnectTest, RemoteReadLatency) {
  EXPECT_EQ(net_->Reference(0, 1, AccessKind::kRead, 0), params_.remote_read_ns);
  EXPECT_EQ(stats_.remote_reads, 1u);
}

TEST_F(InterconnectTest, RemoteWritesAreCheaperThanReads) {
  SimTime write = net_->Reference(0, 1, AccessKind::kWrite, 0);
  EXPECT_LT(write, params_.remote_read_ns);
  EXPECT_EQ(write, params_.remote_write_ns);
}

TEST_F(InterconnectTest, ContentionQueuesAtTargetModule) {
  // Two processors hit module 2 at the same instant; the second one waits for
  // the first's bus occupancy.
  SimTime first = net_->Reference(0, 2, AccessKind::kRead, 0);
  SimTime second = net_->Reference(1, 2, AccessKind::kRead, 0);
  EXPECT_EQ(first, params_.remote_read_ns);
  EXPECT_EQ(second, params_.remote_read_ns + params_.module_occupancy_remote_ns);
  EXPECT_GT(stats_.module_wait_ns, SimTime{0});
}

TEST_F(InterconnectTest, NoContentionAcrossModules) {
  net_->Reference(0, 1, AccessKind::kRead, 0);
  SimTime other = net_->Reference(2, 3, AccessKind::kRead, 0);
  EXPECT_EQ(other, params_.remote_read_ns);
}

TEST_F(InterconnectTest, ContentionDrainsOverTime) {
  net_->Reference(0, 2, AccessKind::kRead, 0);
  // Arriving after the first reference's occupancy window: no wait.
  SimTime later = net_->Reference(1, 2, AccessKind::kRead, 10 * kMicrosecond);
  EXPECT_EQ(later, params_.remote_read_ns);
}

TEST_F(InterconnectTest, BlockTransferTakesPaperPageCopyTime) {
  SimTime done = net_->BlockTransfer(0, 1, params_.words_per_page(), 0);
  // Section 4: 1.11 ms for a 4 KB page.
  EXPECT_NEAR(ToMilliseconds(done), 1.11, 0.01);
  EXPECT_EQ(stats_.block_transfers, 1u);
  EXPECT_EQ(stats_.block_words_copied, params_.words_per_page());
}

TEST_F(InterconnectTest, BlockTransferStealsBothBuses) {
  SimTime done = net_->BlockTransfer(0, 1, 1024, 0);
  SimTime duration = done;
  // A reference to either module now queues behind ~75% of the transfer.
  SimTime src_ref = net_->Reference(2, 0, AccessKind::kRead, 0);
  SimTime dst_ref = net_->Reference(3, 1, AccessKind::kRead, 0);
  SimTime steal = duration * params_.block_bus_steal_permille / 1000;
  EXPECT_GE(src_ref, steal);
  EXPECT_GE(dst_ref, steal);
}

TEST_F(InterconnectTest, BackToBackBlockTransfersSerialize) {
  SimTime first = net_->BlockTransfer(0, 1, 1024, 0);
  SimTime second = net_->BlockTransfer(0, 1, 1024, 0);
  EXPECT_GT(second, first);
}

}  // namespace
}  // namespace platinum::sim
