// Tests for the kernel facade: objects, spaces, threads, ports, atomics.
#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include "src/kernel/report.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using test::TestSystem;

TEST(KernelTest, NameSpaceLookup) {
  TestSystem sys(2);
  auto* object = sys.kernel.CreateMemoryObject("matrix", 4);
  auto* port = sys.kernel.CreatePort("results");
  EXPECT_EQ(sys.kernel.FindMemoryObject("matrix"), object);
  EXPECT_EQ(sys.kernel.FindMemoryObject("nope"), nullptr);
  EXPECT_EQ(sys.kernel.FindPort("results"), port);
  EXPECT_EQ(sys.kernel.FindPort("nope"), nullptr);
}

TEST(KernelTest, CurrentThreadIdentity) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  kernel::Thread* spawned = nullptr;
  spawned = sys.kernel.SpawnThread(space, 1, "worker", [&] {
    EXPECT_EQ(sys.kernel.CurrentThread(), spawned);
    EXPECT_EQ(sys.kernel.CurrentThread()->processor(), 1);
  });
  EXPECT_EQ(sys.kernel.CurrentThread(), nullptr);  // outside any thread
  sys.kernel.Run();
  EXPECT_TRUE(spawned->done());
}

TEST(KernelTest, JoinThreadWaits) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  auto* worker = sys.kernel.SpawnThread(space, 0, "worker", [&] {
    sys.machine.scheduler().Sleep(5 * kMillisecond);
  });
  sys.kernel.SpawnThread(space, 1, "joiner", [&] {
    sys.kernel.JoinThread(worker);
    EXPECT_GE(sys.kernel.Now(), 5 * kMillisecond);
  });
  sys.kernel.Run();
}

TEST(KernelTest, ThreadMigrationMovesExecution) {
  TestSystem sys(3);
  auto* space = sys.kernel.CreateAddressSpace("s");
  sys.kernel.SpawnThread(space, 0, "migrant", [&] {
    EXPECT_EQ(sys.machine.scheduler().current_processor(), 0);
    sim::SimTime before = sys.kernel.Now();
    sys.kernel.CurrentThread()->Migrate(2);
    EXPECT_EQ(sys.machine.scheduler().current_processor(), 2);
    EXPECT_EQ(sys.kernel.CurrentThread()->processor(), 2);
    // Migration is not free: fixed cost plus the kernel-stack move.
    EXPECT_GT(sys.kernel.Now(), before);
  });
  sys.kernel.Run();
}

TEST(KernelTest, MigrationKeepsCoherentAccessWorking) {
  TestSystem sys(3);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "d", 4);
  sys.kernel.SpawnThread(space, 0, "migrant", [&] {
    arr.Set(0, 11);
    sys.kernel.CurrentThread()->Migrate(1);
    EXPECT_EQ(arr.Get(0), 11u);
    arr.Set(0, 12);
    sys.kernel.CurrentThread()->Migrate(2);
    EXPECT_EQ(arr.Get(0), 12u);
  });
  sys.kernel.Run();
  sys.kernel.memory().CheckInvariants();
}

TEST(KernelTest, PortSendReceive) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  auto* port = sys.kernel.CreatePort("p");
  sys.kernel.SpawnThread(space, 0, "sender", [&] {
    std::vector<uint32_t> message{1, 2, 3};
    sys.kernel.Send(port, message);
  });
  sys.kernel.SpawnThread(space, 1, "receiver", [&] {
    std::vector<uint32_t> got = sys.kernel.Receive(port);
    EXPECT_EQ(got, (std::vector<uint32_t>{1, 2, 3}));
  });
  sys.kernel.Run();
}

TEST(KernelTest, PortReceiveBlocksUntilSend) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  auto* port = sys.kernel.CreatePort("p");
  sim::SimTime received_at = 0;
  sys.kernel.SpawnThread(space, 1, "receiver", [&] {
    sys.kernel.Receive(port);
    received_at = sys.kernel.Now();
  });
  sys.kernel.SpawnThread(space, 0, "sender", [&] {
    sys.machine.scheduler().Sleep(8 * kMillisecond);
    std::vector<uint32_t> message{42};
    sys.kernel.Send(port, message);
  });
  sys.kernel.Run();
  EXPECT_GE(received_at, 8 * kMillisecond);
}

TEST(KernelTest, PortMultipleReceiversEachGetOneMessage) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("s");
  auto* port = sys.kernel.CreatePort("p");
  std::vector<uint32_t> received;
  for (int p = 1; p < 4; ++p) {
    sys.kernel.SpawnThread(space, p, "receiver", [&] {
      std::vector<uint32_t> got = sys.kernel.Receive(port);
      received.push_back(got[0]);
    });
  }
  sys.kernel.SpawnThread(space, 0, "sender", [&] {
    for (uint32_t i = 0; i < 3; ++i) {
      std::vector<uint32_t> message{i};
      sys.kernel.Send(port, message);
      sys.machine.scheduler().Sleep(1 * kMillisecond);
    }
  });
  sys.kernel.Run();
  std::sort(received.begin(), received.end());
  EXPECT_EQ(received, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(KernelTest, PortCostScalesWithMessageSize) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  auto* port = sys.kernel.CreatePort("p");
  sim::SimTime small_cost = 0;
  sim::SimTime big_cost = 0;
  sys.kernel.SpawnThread(space, 0, "sender", [&] {
    std::vector<uint32_t> small(1), big(1024);
    sim::SimTime t0 = sys.kernel.Now();
    sys.kernel.Send(port, small);
    small_cost = sys.kernel.Now() - t0;
    t0 = sys.kernel.Now();
    sys.kernel.Send(port, big);
    big_cost = sys.kernel.Now() - t0;
  });
  sys.kernel.Run();
  EXPECT_GT(big_cost, small_cost);
  EXPECT_GE(big_cost - small_cost, 1023 * sys.machine.params().port_word_ns);
}

TEST(KernelTest, AtomicFetchAddIsAtomicAcrossThreads) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  uint32_t va = zone.AllocWords("counter", 1);
  constexpr int kIncrements = 50;
  for (int p = 0; p < 4; ++p) {
    sys.kernel.SpawnThread(space, p, "inc", [&] {
      for (int i = 0; i < kIncrements; ++i) {
        sys.kernel.AtomicFetchAdd(space, va, 1);
      }
    });
  }
  sys.kernel.Run();
  sys.kernel.SpawnThread(space, 0, "check", [&] {
    EXPECT_EQ(sys.kernel.ReadWord(space, va), 4u * kIncrements);
  });
  sys.kernel.Run();
}

TEST(KernelTest, AtomicTestAndSetReturnsPrevious) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  uint32_t va = zone.AllocWords("lock", 1);
  sys.kernel.SpawnThread(space, 0, "t", [&] {
    EXPECT_EQ(sys.kernel.AtomicTestAndSet(space, va), 0u);
    EXPECT_EQ(sys.kernel.AtomicTestAndSet(space, va), 1u);
    sys.kernel.WriteWord(space, va, 0);
    EXPECT_EQ(sys.kernel.AtomicTestAndSet(space, va), 0u);
  });
  sys.kernel.Run();
}

TEST(KernelTest, MemoryReportListsBusyPages) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "d", 4);
  test::RunInThread(sys.kernel, space, 0, [&] { arr.Set(0, 1); });
  kernel::MemoryReport report = BuildMemoryReport(sys.kernel);
  ASSERT_EQ(report.pages.size(), 1u);
  EXPECT_EQ(report.pages[0].stats.faults, 1u);
  EXPECT_FALSE(report.ToString().empty());
}

}  // namespace
}  // namespace platinum
