// Tests for the load-generation layer (src/load/): script determinism, the
// owner-sharding and hotness invariants the reference replay depends on,
// Zipf skew, the open-loop driver's queueing-delay accounting, and the
// "platinum-serving-v1" stats block (including its embedding in the
// machine-stats export).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/apps/workloads.h"
#include "src/load/driver.h"
#include "src/load/request_gen.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/sim/time.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using load::OpKind;
using load::Request;
using load::RequestScript;
using load::WorkloadSpec;
using test::TestSystem;

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.keys = 1u << 10;
  spec.ops = 10000;
  return spec;
}

TEST(RequestGenTest, ScriptIsAPureFunctionOfSpecAndWorkers) {
  RequestScript a = RequestScript::Generate(SmallSpec(), 8);
  RequestScript b = RequestScript::Generate(SmallSpec(), 8);
  ASSERT_EQ(a.workers(), b.workers());
  for (uint32_t w = 0; w < a.workers(); ++w) {
    EXPECT_EQ(a.PreloadFor(w), b.PreloadFor(w));
    const std::vector<Request>& ra = a.ForWorker(w);
    const std::vector<Request>& rb = b.ForWorker(w);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].op, rb[i].op);
      EXPECT_EQ(ra[i].key, rb[i].key);
      EXPECT_EQ(ra[i].value, rb[i].value);
    }
  }
  // A different seed changes the stream.
  WorkloadSpec reseeded = SmallSpec();
  reseeded.seed = 99;
  RequestScript c = RequestScript::Generate(reseeded, 8);
  bool any_diff = false;
  for (uint32_t w = 0; w < a.workers() && !any_diff; ++w) {
    const std::vector<Request>& ra = a.ForWorker(w);
    const std::vector<Request>& rc = c.ForWorker(w);
    any_diff = ra.size() != rc.size();
    for (size_t i = 0; !any_diff && i < ra.size(); ++i) {
      any_diff = ra[i].key != rc[i].key || ra[i].op != rc[i].op;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RequestGenTest, WritesAreOwnerSharded) {
  const uint32_t kWorkers = 8;
  RequestScript script = RequestScript::Generate(SmallSpec(), kWorkers);
  uint64_t writes = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    for (uint32_t key : script.PreloadFor(w)) {
      EXPECT_EQ(key % kWorkers, w) << "preload key " << key << " not owned";
    }
    for (const Request& r : script.ForWorker(w)) {
      if (r.op != OpKind::kLookup) {
        EXPECT_EQ(r.key % kWorkers, w) << "write to foreign key " << r.key;
        ++writes;
      }
    }
  }
  EXPECT_GT(writes, 0u);
}

TEST(RequestGenTest, ZipfSkewsLookupsTowardHotKeys) {
  WorkloadSpec spec = SmallSpec();
  spec.ops = 50000;
  RequestScript script = RequestScript::Generate(spec, 4);
  std::map<uint32_t, uint64_t> counts;
  uint64_t lookups = 0;
  for (uint32_t w = 0; w < 4; ++w) {
    for (const Request& r : script.ForWorker(w)) {
      if (r.op == OpKind::kLookup) {
        ++counts[r.key];
        ++lookups;
      }
    }
  }
  ASSERT_GT(lookups, 0u);
  // Rank 0 maps to the hottest key; with s=0.99 over 1024 keys it should
  // absorb a few percent of all lookups, far above the uniform share.
  uint64_t hottest = counts[load::RankToKey(0, spec.keys)];
  EXPECT_GT(hottest, lookups / 100);
  // And hotness must follow rank order, coarsely: the top rank beats a
  // mid-tier rank, which beats (or ties) a deep-tail rank.
  uint64_t mid = counts[load::RankToKey(100, spec.keys)];
  uint64_t tail = counts[load::RankToKey(1000, spec.keys)];
  EXPECT_GT(hottest, mid);
  EXPECT_GE(mid, tail);
}

TEST(RequestGenTest, PreloadOnlyReferenceIsTheFullUniverse) {
  WorkloadSpec spec = SmallSpec();
  spec.ops = 0;
  spec.preload_fraction = 1.0;
  RequestScript script = RequestScript::Generate(spec, 4);
  RequestScript::Reference ref = script.ReplayReference();
  EXPECT_EQ(ref.entries, spec.keys);
  // The checksum is the fold of (key, PreloadValue) in visit order —
  // recompute it independently.
  std::vector<uint32_t> keys(spec.keys);
  for (uint32_t k = 0; k < spec.keys; ++k) {
    keys[k] = k;
  }
  std::sort(keys.begin(), keys.end(), [](uint32_t a, uint32_t b) {
    return apps::TrieVisitRank(a) < apps::TrieVisitRank(b);
  });
  apps::Checksum sum;
  for (uint32_t key : keys) {
    sum.Add(key);
    sum.Add(RequestScript::PreloadValue(spec.seed, key));
  }
  EXPECT_EQ(ref.checksum, sum.value());
}

TEST(LoadDriverTest, OpenLoopLatencyIncludesQueueingDelay) {
  load::DriverConfig config;
  config.spec.keys = 1u << 10;
  config.spec.ops = 4000;
  config.procs = 4;
  config.arrival = load::ArrivalMode::kOpen;
  config.interarrival_ns = 50 * sim::kMicrosecond;

  TestSystem sys(4);
  load::ServeResult result = load::RunTrieServe(sys.kernel, config);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.requests, config.spec.ops);
  // Open loop pins the arrival schedule: the serve phase cannot finish
  // before the last arrival (ops split across 4 workers).
  uint64_t per_worker = config.spec.ops / 4;
  EXPECT_GE(result.serve_ns, (per_worker - 1) * config.interarrival_ns);

  // Closed loop on the same script finishes when the work does — far
  // earlier than the open-loop schedule at this arrival rate.
  load::DriverConfig closed = config;
  closed.arrival = load::ArrivalMode::kClosed;
  TestSystem sys2(4);
  load::ServeResult closed_result = load::RunTrieServe(sys2.kernel, closed);
  EXPECT_TRUE(closed_result.verified);
  EXPECT_LT(closed_result.serve_ns, result.serve_ns);
  // Same script, same final contents, whatever the arrival process.
  EXPECT_EQ(closed_result.checksum, result.checksum);
}

TEST(LoadDriverTest, ServingStatsJsonIsWellFormedAndEmbeds) {
  load::DriverConfig config;
  config.spec.keys = 1u << 10;
  config.spec.ops = 5000;
  config.procs = 4;
  TestSystem sys(4);
  load::ServeResult result = load::RunTrieServe(sys.kernel, config);
  std::string json = load::ServingStatsJson(config, result);
  EXPECT_TRUE(obs::CheckJsonBalanced(json));
  for (const char* key :
       {"schema", "config", "totals", "classes", "read_hit", "trie", "verified"}) {
    EXPECT_TRUE(obs::CheckJsonHasKey(json, key)) << "missing key " << key;
  }
  EXPECT_NE(json.find("platinum-serving-v1"), std::string::npos);
  // Byte-identical on re-render (the platsim determinism check relies on it).
  EXPECT_EQ(json, load::ServingStatsJson(config, result));

  // Embedded verbatim under "serving" in the machine-stats export.
  obs::TelemetrySummary telemetry;
  telemetry.serving_json = &json;
  std::string stats = obs::ExportStatsJson(sys.machine, nullptr, &telemetry);
  EXPECT_TRUE(obs::CheckJsonBalanced(stats));
  EXPECT_TRUE(obs::CheckJsonHasKey(stats, "serving"));
  EXPECT_NE(stats.find("platinum-serving-v1"), std::string::npos);
}

}  // namespace
}  // namespace platinum
