// Unit tests for memory modules and their inverted page tables.
#include "src/sim/memory_module.h"

#include <gtest/gtest.h>

#include <set>

#include "src/sim/params.h"

namespace platinum::sim {
namespace {

MachineParams SmallParams() {
  MachineParams params = ButterflyPlusParams(2);
  params.frames_per_module = 16;
  return params;
}

TEST(MemoryModuleTest, AllocFindFree) {
  MemoryModule module(0, SmallParams());
  auto alloc = module.AllocFrame(42);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(module.free_frames(), 15u);
  EXPECT_EQ(module.FrameOwner(alloc->frame), 42u);

  auto found = module.FindFrame(42);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->frame, alloc->frame);

  module.FreeFrame(alloc->frame);
  EXPECT_EQ(module.free_frames(), 16u);
  EXPECT_FALSE(module.FindFrame(42).has_value());
  EXPECT_EQ(module.FrameOwner(alloc->frame), kInvalidCpage);
}

TEST(MemoryModuleTest, FindSkipsTombstones) {
  MemoryModule module(0, SmallParams());
  // Fill several entries, free some in the middle, and make sure the
  // survivors are still found despite tombstones in their probe chains.
  std::vector<uint32_t> frames;
  for (uint32_t cpage = 0; cpage < 12; ++cpage) {
    auto alloc = module.AllocFrame(cpage);
    ASSERT_TRUE(alloc.has_value());
    frames.push_back(alloc->frame);
  }
  for (uint32_t cpage = 0; cpage < 12; cpage += 2) {
    module.FreeFrame(frames[cpage]);
  }
  for (uint32_t cpage = 1; cpage < 12; cpage += 2) {
    auto found = module.FindFrame(cpage);
    ASSERT_TRUE(found.has_value()) << "cpage " << cpage;
    EXPECT_EQ(found->frame, frames[cpage]);
  }
}

TEST(MemoryModuleTest, ExhaustionReturnsNullopt) {
  MemoryModule module(0, SmallParams());
  for (uint32_t cpage = 0; cpage < 16; ++cpage) {
    ASSERT_TRUE(module.AllocFrame(cpage).has_value());
  }
  EXPECT_EQ(module.free_frames(), 0u);
  EXPECT_FALSE(module.AllocFrame(100).has_value());
  // Freeing one makes allocation possible again.
  auto found = module.FindFrame(3);
  ASSERT_TRUE(found.has_value());
  module.FreeFrame(found->frame);
  EXPECT_TRUE(module.AllocFrame(100).has_value());
}

TEST(MemoryModuleTest, FramesAreDistinct) {
  MemoryModule module(0, SmallParams());
  std::set<uint32_t> frames;
  for (uint32_t cpage = 0; cpage < 16; ++cpage) {
    auto alloc = module.AllocFrame(cpage);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_TRUE(frames.insert(alloc->frame).second) << "duplicate frame " << alloc->frame;
  }
}

TEST(MemoryModuleTest, DataStorageIsPerFrame) {
  MachineParams params = SmallParams();
  MemoryModule module(0, params);
  auto a = module.AllocFrame(1);
  auto b = module.AllocFrame(2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  module.FrameData(a->frame)[0] = 0xAB;
  module.FrameData(b->frame)[0] = 0xCD;
  EXPECT_EQ(module.FrameData(a->frame)[0], 0xAB);
  EXPECT_EQ(module.FrameData(b->frame)[0], 0xCD);
}

TEST(MemoryModuleTest, ProbeCountsReflectCollisions) {
  MemoryModule module(0, SmallParams());
  // Whatever the hash values, the first allocation probes at least one slot
  // and never more than the table size.
  for (uint32_t cpage = 0; cpage < 16; ++cpage) {
    auto alloc = module.AllocFrame(cpage);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_GE(alloc->probes, 1u);
    EXPECT_LE(alloc->probes, 16u);
  }
}

}  // namespace
}  // namespace platinum::sim
