// Tests for the observability subsystem: histogram percentile math (golden
// values), trace-log ring-buffer edge cases, the JSON writer/checkers, and a
// round trip through the Perfetto/stats exporters on a real run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kernel/report.h"
#include "src/mem/trace.h"
#include "src/obs/export.h"
#include "src/obs/histogram.h"
#include "src/obs/json.h"
#include "src/obs/observability.h"
#include "src/obs/scope.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using obs::LatencyHistogram;
using test::TestSystem;

// --- Histogram bucket geometry ----------------------------------------------

TEST(HistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1023), 10);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1024), 11);
  // The top bucket absorbs everything too large for its own power of two.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~sim::SimTime{0}), LatencyHistogram::kBuckets - 1);
}

TEST(HistogramTest, BucketBoundsAreInclusiveAndAdjacent) {
  EXPECT_EQ(LatencyHistogram::BucketLower(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketUpper(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketLower(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpper(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketLower(10), 512u);
  EXPECT_EQ(LatencyHistogram::BucketUpper(10), 1023u);
  for (int b = 1; b < LatencyHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(LatencyHistogram::BucketUpper(b) + 1, LatencyHistogram::BucketLower(b + 1));
  }
  EXPECT_EQ(LatencyHistogram::BucketUpper(LatencyHistogram::kBuckets - 1), ~sim::SimTime{0});
}

// --- Percentile golden values ------------------------------------------------

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  // Every percentile of an empty distribution is zero, including the
  // boundary ranks (no division by count, no bucket walk off the end).
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramTest, SingleValueDominatesEveryPercentile) {
  LatencyHistogram h;
  h.Record(1000);
  // The bucket estimate would be the bucket bound (1023), but the clamp to
  // the observed [min, max] recovers the exact value.
  EXPECT_EQ(h.Percentile(0), 1000u);
  EXPECT_EQ(h.Percentile(50), 1000u);
  EXPECT_EQ(h.Percentile(99), 1000u);
  EXPECT_EQ(h.Percentile(100), 1000u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.Mean(), 1000.0);
}

TEST(HistogramTest, GoldenPercentilesAcrossFourBuckets) {
  // 100 -> bucket 7 [64,127], 200 -> bucket 8 [128,255],
  // 400 -> bucket 9 [256,511], 800 -> bucket 10 [512,1023].
  LatencyHistogram h;
  for (sim::SimTime v : {100, 200, 400, 800}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1500u);
  EXPECT_EQ(h.Mean(), 375.0);
  // p25: rank ceil(0.25*4)=1 lands at the end of bucket 7 -> upper bound 127.
  EXPECT_EQ(h.Percentile(25), 127u);
  // p50: rank 2 lands at the end of bucket 8 -> upper bound 255.
  EXPECT_EQ(h.Percentile(50), 255u);
  // p90: rank ceil(3.6)=4 -> end of bucket 10 (1023), clamped to max 800.
  EXPECT_EQ(h.Percentile(90), 800u);
  EXPECT_EQ(h.Percentile(99), 800u);
}

TEST(HistogramTest, IdenticalValuesClampToExactValue) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) {
    h.Record(1000);
  }
  // Interpolation inside [512, 1023] would say 767 for p50; the clamp to
  // min=1000 restores the truth.
  EXPECT_EQ(h.Percentile(50), 1000u);
  EXPECT_EQ(h.Percentile(99), 1000u);
}

TEST(HistogramTest, ZeroesLiveInBucketZero) {
  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) {
    h.Record(0);
  }
  EXPECT_EQ(h.buckets()[0], 4u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SinceReportsTheDelta) {
  LatencyHistogram h;
  h.Record(100);
  LatencyHistogram snapshot = h;
  h.Record(800);
  LatencyHistogram d = h.Since(snapshot);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_EQ(d.sum(), 800u);
  EXPECT_EQ(d.buckets()[10], 1u);
  EXPECT_EQ(d.buckets()[7], 0u);
}

// --- TraceLog ring buffer -----------------------------------------------------

mem::TraceEvent EventAt(sim::SimTime time, uint32_t thread = 0) {
  return mem::TraceEvent{time, mem::TraceEventType::kFault, 1, 0, 0, thread};
}

TEST(TraceLogTest, WraparoundKeepsNewestOldestFirst) {
  mem::TraceLog log(4);
  for (sim::SimTime t = 0; t < 10; ++t) {
    log.Record(EventAt(t));
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  std::vector<mem::TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, 6 + i);
  }
}

TEST(TraceLogTest, CapacityZeroCountsButRetainsNothing) {
  mem::TraceLog log(0);
  for (sim::SimTime t = 0; t < 3; ++t) {
    log.Record(EventAt(t));
  }
  EXPECT_EQ(log.capacity(), 0u);
  EXPECT_EQ(log.recorded(), 3u);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.ToString(), "");
}

TEST(TraceLogTest, ToStringWithLastBeyondRecorded) {
  mem::TraceLog log(8);
  log.Record(EventAt(10));
  log.Record(EventAt(20));
  std::string dump = log.ToString(100);
  // Both events, nothing else, no crash.
  EXPECT_NE(dump.find("fault"), std::string::npos);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.Snapshot().size(), 2u);
}

TEST(TraceLogTest, RecordsFaultingThread) {
  mem::TraceLog log(4);
  log.Record(EventAt(5, /*thread=*/42));
  EXPECT_EQ(log.Snapshot().at(0).thread, 42u);
}

TEST(TraceLogTest, EventTypeNamesAreExhaustive) {
  EXPECT_STREQ(mem::TraceEventTypeName(mem::TraceEventType::kDefrostScan), "defrost-scan");
  EXPECT_STREQ(mem::TraceEventTypeName(mem::TraceEventType::kPageFree), "page-free");
  EXPECT_STREQ(mem::TraceEventTypeName(mem::TraceEventType::kFault), "fault");
  EXPECT_STREQ(mem::TraceEventTypeName(mem::TraceEventType::kShootdown), "shootdown");
}

// --- JSON writer and checkers -------------------------------------------------

TEST(JsonTest, WriterProducesExactDocument) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("a \"b\"\n");
  w.Key("n").Value(3);
  w.Key("xs").BeginArray().Value(uint64_t{1}).Value(uint64_t{2}).EndArray();
  w.Key("ok").Value(true);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"name\":\"a \\\"b\\\"\\n\",\"n\":3,\"xs\":[1,2],\"ok\":true}");
  EXPECT_EQ(w.depth(), 0);
}

TEST(JsonTest, BalancedChecker) {
  EXPECT_TRUE(obs::CheckJsonBalanced("{\"a\":[1,2,{\"b\":\"}\"}]}"));
  EXPECT_TRUE(obs::CheckJsonBalanced("{}"));
  EXPECT_FALSE(obs::CheckJsonBalanced("{\"a\":1"));
  EXPECT_FALSE(obs::CheckJsonBalanced("{[}]"));
  EXPECT_FALSE(obs::CheckJsonBalanced("{\"unterminated"));
}

TEST(JsonTest, HasKeyChecker) {
  const std::string doc = "{\"traceEvents\":[],\"other\":1}";
  EXPECT_TRUE(obs::CheckJsonHasKey(doc, "traceEvents"));
  EXPECT_FALSE(obs::CheckJsonHasKey(doc, "missing"));
}

TEST(JsonTest, TsMonotoneChecker) {
  EXPECT_TRUE(obs::CheckTraceTsMonotone("[{\"ts\":1.5},{\"ts\":1.5},{\"ts\":2.0}]"));
  EXPECT_FALSE(obs::CheckTraceTsMonotone("[{\"ts\":2.0},{\"ts\":1.0}]"));
  EXPECT_TRUE(obs::CheckTraceTsMonotone("{\"no_ts\":true}"));
}

// --- Spans and phases ----------------------------------------------------------

TEST(ObsTest, ScopeRecordsSpanWithProcessorAndFiber) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  sys.kernel.SpawnThread(space, 1, "worker", [&] {
    obs::ObsScope scope(sys.machine, "inner-work");
    sys.machine.scheduler().Sleep(5 * sim::kMicrosecond);
  });
  sys.kernel.Run();
  // SpawnThread itself opens a span for the thread body, so at least two.
  const std::vector<obs::Span>& spans = sys.machine.obs().spans();
  ASSERT_GE(spans.size(), 2u);
  bool found = false;
  for (const obs::Span& span : spans) {
    if (span.name == "inner-work") {
      found = true;
      EXPECT_EQ(span.processor, 1);
      EXPECT_GE(span.end - span.begin, 5 * sim::kMicrosecond);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsTest, PhasesNestAndCloseInnermostFirst) {
  obs::Observability obs(2);
  sim::MachineStats stats;
  EXPECT_EQ(obs.current_phase(), "");
  obs.BeginPhase("outer", 10, stats);
  obs.BeginPhase("inner", 20, stats);
  EXPECT_EQ(obs.current_phase(), "inner");
  stats.faults = 7;
  obs.EndPhase(30, stats);
  EXPECT_EQ(obs.current_phase(), "outer");
  stats.faults = 9;
  obs.EndPhase(40, stats);
  EXPECT_EQ(obs.current_phase(), "");
  ASSERT_EQ(obs.phases().size(), 2u);
  EXPECT_EQ(obs.phases()[0].name, "outer");
  EXPECT_EQ(obs.phases()[0].delta.faults, 9u);
  EXPECT_EQ(obs.phases()[1].name, "inner");
  EXPECT_EQ(obs.phases()[1].delta.faults, 7u);
  EXPECT_FALSE(obs.phases()[0].open);
}

TEST(ObsTest, NestedPhasesAttributeHistogramDeltas) {
  obs::Observability obs(1);
  sim::MachineStats stats;
  obs.BeginPhase("outer", 0, stats);
  obs.RecordLatency(obs::HistKind::kFaultService, 100);
  obs.BeginPhase("inner", 10, stats);
  obs.RecordLatency(obs::HistKind::kFaultService, 50);
  obs.EndPhase(20, stats);
  obs.EndPhase(30, stats);
  ASSERT_EQ(obs.phases().size(), 2u);
  const obs::Phase& outer = obs.phases()[0];
  const obs::Phase& inner = obs.phases()[1];
  // The inner phase sees only the record inside it; the outer phase sees
  // both (nesting attributes activity to every enclosing phase).
  constexpr auto kFault = static_cast<size_t>(obs::HistKind::kFaultService);
  EXPECT_EQ(inner.hist_delta[kFault].count, 1u);
  EXPECT_EQ(inner.hist_delta[kFault].sum, 50u);
  EXPECT_EQ(outer.hist_delta[kFault].count, 2u);
  EXPECT_EQ(outer.hist_delta[kFault].sum, 150u);
  constexpr auto kQueue = static_cast<size_t>(obs::HistKind::kModuleQueue);
  EXPECT_EQ(outer.hist_delta[kQueue].count, 0u);
}

TEST(ObsTest, SpanStorageIsBoundedAndDropCounted) {
  obs::Observability obs(1);
  constexpr uint64_t kTotal = 70000;  // comfortably past the span bound
  for (uint64_t i = 0; i < kTotal; ++i) {
    obs.RecordSpan(obs::Span{"s", 0, 0, sim::SimTime{i}, sim::SimTime{i + 1}});
  }
  // The bound held, overflow was counted, and nothing was lost silently.
  EXPECT_LT(obs.spans().size(), kTotal);
  EXPECT_GT(obs.spans_dropped(), 0u);
  EXPECT_EQ(obs.spans().size() + obs.spans_dropped(), kTotal);
  uint64_t dropped_before = obs.spans_dropped();
  obs.RecordSpan(obs::Span{"late", 0, 0, 0, 1});
  EXPECT_EQ(obs.spans_dropped(), dropped_before + 1);
}

// --- Exporter round trip --------------------------------------------------------

TEST(ObsTest, ExportersProduceValidDocumentsFromARealRun) {
  TestSystem sys(4);
  sys.kernel.memory().EnableTracing(1024);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "data", 64);
  rt::RunOnProcessors(sys.kernel, space, 4, "stress", [&](int pid) {
    for (int round = 0; round < 4; ++round) {
      for (size_t i = 0; i < 64; ++i) {
        arr.Set(i, arr.Get(i) + static_cast<uint32_t>(pid));
      }
    }
  });

  const obs::Observability& obs = sys.machine.obs();
  // The shared writes must have produced faults and per-processor activity.
  EXPECT_GT(obs.hist(obs::HistKind::kFaultService).count(), 0u);
  EXPECT_GT(obs.hist(obs::HistKind::kModuleQueue).count(), 0u);
  uint64_t cpu_faults = 0;
  for (int p = 0; p < 4; ++p) {
    cpu_faults += obs.cpu(p).faults;
  }
  EXPECT_EQ(cpu_faults, sys.machine.stats().faults);
  uint64_t served = 0;
  for (int m = 0; m < 4; ++m) {
    served += obs.module(m).references_served;
  }
  EXPECT_GT(served, 0u);

  // The fork-join region became a closed phase with attributed faults.
  ASSERT_GE(obs.phases().size(), 1u);
  EXPECT_EQ(obs.phases()[0].name, "stress");
  EXPECT_FALSE(obs.phases()[0].open);
  EXPECT_GT(obs.phases()[0].delta.faults, 0u);
  EXPECT_GT(obs.phases()[0].hist_delta[0].count, 0u);  // fault_service delta

  std::string trace = obs::ExportChromeTrace(sys.machine, sys.kernel.memory().trace());
  EXPECT_TRUE(obs::CheckJsonBalanced(trace));
  EXPECT_TRUE(obs::CheckJsonHasKey(trace, "traceEvents"));
  EXPECT_TRUE(obs::CheckTraceTsMonotone(trace));
  EXPECT_NE(trace.find("\"cpu0\""), std::string::npos);
  EXPECT_NE(trace.find("\"stress\""), std::string::npos);

  kernel::MemoryReport report = BuildMemoryReport(sys.kernel);
  std::string stats = obs::ExportStatsJson(sys.machine, &report);
  EXPECT_TRUE(obs::CheckJsonBalanced(stats));
  for (const char* key : {"sim_time_ns", "machine", "per_processor", "per_module",
                          "histograms", "fault_service", "p50_ns", "p99_ns", "phases",
                          "report"}) {
    EXPECT_TRUE(obs::CheckJsonHasKey(stats, key)) << "missing key " << key;
  }

  // Without a trace log the exporter still produces a valid document from
  // spans and phases alone.
  std::string no_log = obs::ExportChromeTrace(sys.machine, nullptr);
  EXPECT_TRUE(obs::CheckJsonBalanced(no_log));
  EXPECT_TRUE(obs::CheckTraceTsMonotone(no_log));
}

TEST(ObsTest, DefrostScanEventsCarryNoCpage) {
  // A run with tracing and the defrost daemon produces defrost-scan events
  // marked with kTraceNoCpage.
  TestSystem sys(2);
  sys.kernel.memory().EnableTracing(4096);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "data", 8);
  sys.kernel.SpawnThread(space, 0, "sleeper", [&] {
    arr.Set(0, 1);
    // Sleep past a defrost period so the daemon scans at least once.
    sys.machine.scheduler().Sleep(2 * sys.machine.params().t2_defrost_period_ns);
  });
  sys.kernel.Run();
  bool saw_scan = false;
  for (const mem::TraceEvent& e : sys.kernel.memory().trace()->Snapshot()) {
    if (e.type == mem::TraceEventType::kDefrostScan) {
      saw_scan = true;
      EXPECT_EQ(e.cpage, mem::kTraceNoCpage);
    }
  }
  EXPECT_TRUE(saw_scan);
}

}  // namespace
}  // namespace platinum
