// Tests for the page-forensics layer (src/obs/page_trace.h) and the epoch
// sampler (src/obs/timeseries.h): detector semantics on synthetic event
// streams, bounded-storage drop accounting, observer chaining, and epoch
// sampling against a real machine run.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/load/driver.h"
#include "src/mem/access_observer.h"
#include "src/mem/trace.h"
#include "src/obs/json.h"
#include "src/obs/page_trace.h"
#include "src/obs/timeseries.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "src/sim/time.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using obs::EpochSampler;
using obs::EpochSamplerOptions;
using obs::PageTrace;
using obs::PageTraceOptions;
using test::TestSystem;

mem::TraceEvent Event(mem::TraceEventType type, uint32_t cpage, int16_t processor,
                      uint32_t detail = 0, sim::SimTime time = 0) {
  return mem::TraceEvent{time, type, cpage, processor, detail, /*thread=*/0};
}

mem::TraceEvent WriteFault(uint32_t cpage, int16_t processor, sim::SimTime time = 0) {
  return Event(mem::TraceEventType::kFault, cpage, processor, /*detail=*/1, time);
}

mem::TraceEvent ReadFault(uint32_t cpage, int16_t processor, sim::SimTime time = 0) {
  return Event(mem::TraceEventType::kFault, cpage, processor, /*detail=*/0, time);
}

// --- Ping-pong ---------------------------------------------------------------

TEST(PageTraceTest, PingPongCountsWriteInvalidateAlternations) {
  PageTrace pt;  // default threshold: 3 alternations
  // Writers 0,1,0,1: three writer changes, each one a write-invalidate the
  // directory protocol resolves with a shootdown round.
  pt.OnPageEvent(WriteFault(5, 0));
  pt.OnPageEvent(WriteFault(5, 1));
  pt.OnPageEvent(Event(mem::TraceEventType::kShootdown, 5, 1));
  pt.OnPageEvent(WriteFault(5, 0));
  pt.OnPageEvent(Event(mem::TraceEventType::kShootdown, 5, 0));
  ASSERT_NE(pt.rollup(5), nullptr);
  EXPECT_EQ(pt.rollup(5)->write_alternations, 2u);
  EXPECT_FALSE(pt.IsPingPong(*pt.rollup(5)));
  pt.OnPageEvent(WriteFault(5, 1));
  pt.OnPageEvent(Event(mem::TraceEventType::kShootdown, 5, 1));
  EXPECT_EQ(pt.rollup(5)->write_alternations, 3u);
  EXPECT_TRUE(pt.IsPingPong(*pt.rollup(5)));
  EXPECT_EQ(pt.FlaggedPingPong(), (std::vector<uint32_t>{5}));
}

TEST(PageTraceTest, NPartyRotationAlsoPingPongs) {
  // A,B,C,D never returns to a previous writer, but every write still
  // invalidates the one before it — the false-sharing cost is identical.
  PageTrace pt;
  for (int16_t p : {0, 1, 2, 3}) {
    pt.OnPageEvent(WriteFault(9, p));
    pt.OnPageEvent(Event(mem::TraceEventType::kShootdown, 9, p));
  }
  EXPECT_EQ(pt.rollup(9)->write_alternations, 3u);
  EXPECT_TRUE(pt.IsPingPong(*pt.rollup(9)));
}

TEST(PageTraceTest, LeaseExpiriesAreNotShootdownsAndDoNotPingPong) {
  // The same writer rotation under a lease protocol: ownership moves by
  // waiting out leases (kLeaseExpire), never by interrupting anyone. The
  // rotation is visible in write_alternations, but with zero shootdowns the
  // ping-pong detector must stay quiet — there is no IPI storm to fix.
  PageTrace pt;
  for (int16_t p : {0, 1, 2, 3}) {
    pt.OnPageEvent(WriteFault(9, p));
    pt.OnPageEvent(Event(mem::TraceEventType::kLeaseExpire, 9, p, /*detail=*/1));
  }
  EXPECT_EQ(pt.rollup(9)->write_alternations, 3u);
  EXPECT_EQ(pt.rollup(9)->shootdowns, 0u);
  EXPECT_EQ(pt.rollup(9)->lease_expiries, 4u);
  EXPECT_FALSE(pt.IsPingPong(*pt.rollup(9)));
  EXPECT_TRUE(pt.FlaggedPingPong().empty());
}

TEST(PageTraceTest, SingleWriterAndReadFaultsDoNotPingPong) {
  PageTrace pt;
  for (int i = 0; i < 10; ++i) {
    pt.OnPageEvent(WriteFault(2, /*processor=*/0));  // same writer every time
    pt.OnPageEvent(ReadFault(3, static_cast<int16_t>(i % 4)));  // reads never alternate
  }
  EXPECT_EQ(pt.rollup(2)->write_alternations, 0u);
  EXPECT_EQ(pt.rollup(3)->write_alternations, 0u);
  EXPECT_EQ(pt.rollup(3)->read_faults, 10u);
  EXPECT_TRUE(pt.FlaggedPingPong().empty());
}

// --- Freeze churn ------------------------------------------------------------

TEST(PageTraceTest, FreezeChurnCountsCompletedCycles) {
  PageTrace pt;  // default threshold: 2 completed cycles
  pt.OnPageEvent(Event(mem::TraceEventType::kFreeze, 7, 0));
  pt.OnPageEvent(Event(mem::TraceEventType::kThaw, 7, 0));
  EXPECT_EQ(pt.rollup(7)->freeze_cycles, 1u);
  EXPECT_FALSE(pt.IsFreezeChurn(*pt.rollup(7)));
  pt.OnPageEvent(Event(mem::TraceEventType::kFreeze, 7, 1));
  // An open freeze is not yet a cycle.
  EXPECT_EQ(pt.rollup(7)->freeze_cycles, 1u);
  pt.OnPageEvent(Event(mem::TraceEventType::kThaw, 7, 1));
  EXPECT_EQ(pt.rollup(7)->freeze_cycles, 2u);
  EXPECT_TRUE(pt.IsFreezeChurn(*pt.rollup(7)));
  EXPECT_EQ(pt.FlaggedFreezeChurn(), (std::vector<uint32_t>{7}));
}

TEST(PageTraceTest, ThawWithoutFreezeIsNotACycle) {
  PageTrace pt;
  pt.OnPageEvent(Event(mem::TraceEventType::kThaw, 4, 0));
  pt.OnPageEvent(Event(mem::TraceEventType::kThaw, 4, 0));
  EXPECT_EQ(pt.rollup(4)->freeze_cycles, 0u);
  EXPECT_EQ(pt.rollup(4)->thaws, 2u);
}

// --- Replication waste -------------------------------------------------------

mem::MemoryAccess Read(uint32_t as_id, uint32_t vpn, int processor) {
  mem::MemoryAccess access;
  access.as_id = as_id;
  access.vpn = vpn;
  access.is_write = false;
  access.processor = processor;
  return access;
}

TEST(PageTraceTest, ReplicaFreedAfterOnlyItsFaultingReadIsWaste) {
  PageTrace pt;
  pt.OnPageBind(/*as_id=*/0, /*vpn=*/3, /*cpage=*/7);
  // Processor 2 read-faults; the protocol replicates onto module 1 and the
  // faulting read lands on the new copy.
  pt.OnPageEvent(ReadFault(7, 2));
  pt.OnPageEvent(Event(mem::TraceEventType::kReplicate, 7, 2, /*detail=*/1));
  pt.OnMemoryAccess(Read(0, 3, 2));
  // Invalidated before any independent read: the copy never paid off.
  pt.OnPageEvent(Event(mem::TraceEventType::kPageFree, 7, 0, /*detail=*/1));
  EXPECT_EQ(pt.rollup(7)->replicas_created, 1u);
  EXPECT_EQ(pt.rollup(7)->replicas_wasted, 1u);
  EXPECT_TRUE(pt.IsReplicationWaste(*pt.rollup(7)));
  EXPECT_EQ(pt.FlaggedReplicationWaste(), (std::vector<uint32_t>{7}));
}

TEST(PageTraceTest, ReplicaWithIndependentReadsIsNotWaste) {
  PageTrace pt;
  pt.OnPageBind(0, 3, 7);
  pt.OnPageEvent(ReadFault(7, 2));
  pt.OnPageEvent(Event(mem::TraceEventType::kReplicate, 7, 2, /*detail=*/1));
  pt.OnMemoryAccess(Read(0, 3, 2));  // the faulting read
  pt.OnMemoryAccess(Read(0, 3, 2));  // a read the replica actually served
  pt.OnPageEvent(Event(mem::TraceEventType::kPageFree, 7, 0, /*detail=*/1));
  EXPECT_EQ(pt.rollup(7)->replicas_wasted, 0u);
  EXPECT_FALSE(pt.IsReplicationWaste(*pt.rollup(7)));
}

TEST(PageTraceTest, UnbindStopsReadAttribution) {
  PageTrace pt;
  pt.OnPageBind(0, 3, 7);
  pt.OnPageEvent(Event(mem::TraceEventType::kReplicate, 7, 2, /*detail=*/1));
  pt.OnPageUnbind(0, 3, 7);
  pt.OnMemoryAccess(Read(0, 3, 2));  // no longer maps to cpage 7
  pt.OnPageEvent(Event(mem::TraceEventType::kPageFree, 7, 0, /*detail=*/1));
  EXPECT_EQ(pt.rollup(7)->replicas_wasted, 1u);
}

// --- Bounded storage ---------------------------------------------------------

TEST(PageTraceTest, RingIsBoundedAndDropCounted) {
  PageTraceOptions options;
  options.ring_capacity = 4;
  PageTrace pt(options);
  for (uint32_t i = 0; i < 10; ++i) {
    pt.OnPageEvent(WriteFault(i, 0, /*time=*/i));
  }
  EXPECT_EQ(pt.events_seen(), 10u);
  EXPECT_EQ(pt.ring().recorded(), 10u);
  EXPECT_EQ(pt.ring().dropped(), 6u);
  EXPECT_EQ(pt.ring().Snapshot().size(), 4u);
  // Rollups are unaffected by ring wraparound.
  EXPECT_EQ(pt.pages_tracked(), 10u);
}

TEST(PageTraceTest, PagesBeyondMaxPagesAreDropCounted) {
  PageTraceOptions options;
  options.max_pages = 4;
  PageTrace pt(options);
  pt.OnPageEvent(WriteFault(3, 0));   // in bounds
  pt.OnPageEvent(WriteFault(10, 0));  // beyond the bound
  pt.OnPageEvent(WriteFault(10, 1));
  EXPECT_EQ(pt.rollups_dropped(), 2u);
  EXPECT_EQ(pt.rollup(10), nullptr);
  ASSERT_NE(pt.rollup(3), nullptr);
  EXPECT_EQ(pt.pages_tracked(), 1u);
  // The raw events still reach the ring.
  EXPECT_EQ(pt.ring().recorded(), 3u);
}

// --- Observer chaining -------------------------------------------------------

struct CountingObserver : mem::AccessObserver {
  uint64_t calls = 0;
  void OnMemoryAccess(const mem::MemoryAccess& access) override {
    (void)access;
    ++calls;
  }
};

TEST(PageTraceTest, ForwardsAccessesToChainedObserver) {
  PageTrace pt;
  CountingObserver next;
  pt.set_next_access_observer(&next);
  pt.OnMemoryAccess(Read(0, 0, 0));
  mem::MemoryAccess write = Read(0, 0, 1);
  write.is_write = true;
  pt.OnMemoryAccess(write);
  EXPECT_EQ(pt.accesses_seen(), 2u);
  EXPECT_EQ(next.calls, 2u);
}

// --- Report ------------------------------------------------------------------

TEST(PageTraceTest, ToJsonIsValidAndDeterministic) {
  PageTraceOptions options;
  options.top_k = 2;
  options.timeline_events_per_page = 2;
  PageTrace pt(options);
  for (int round = 0; round < 3; ++round) {
    pt.OnPageEvent(WriteFault(1, static_cast<int16_t>(round % 2), /*time=*/round * 10));
    pt.OnPageEvent(ReadFault(2, 0, /*time=*/round * 10 + 5));
  }
  pt.OnPageEvent(ReadFault(3, 1, /*time=*/100));  // falls outside top_k=2
  std::string json = pt.ToJson();
  EXPECT_TRUE(obs::CheckJsonBalanced(json));
  for (const char* key : {"schema", "flagged", "ping_pong", "top_pages", "timeline",
                          "rollups_dropped", "ring", "thresholds"}) {
    EXPECT_TRUE(obs::CheckJsonHasKey(json, key)) << "missing key " << key;
  }
  EXPECT_NE(json.find("platinum-page-forensics-v1"), std::string::npos);
  // Page 1 (3 faults) ranks first; the 3-event timeline is trimmed to 2.
  EXPECT_NE(json.find("\"timeline_truncated\":true"), std::string::npos);
  EXPECT_EQ(json, pt.ToJson());  // a report is a pure function of the stream
}

// --- Trie serving forensics --------------------------------------------------

// End-to-end detector attribution on the serving trie (docs/WORKLOADS.md):
// hot leaf pages carry owner-sharded writes under concurrent readers, so the
// directory protocol resolves them with shootdown rounds and the ping-pong
// detector must flag them; interior pages are read on every lookup and
// written only during structural growth, so they replicate instead and must
// stay off the ping-pong list. The bind map (CpageFor) ties the flagged
// coherent pages back to the trie's node pools.
TEST(PageTraceTest, TrieServingAttributesLeafPingPongNotInterior) {
  PageTrace pt;
  TestSystem sys(8);
  sys.kernel.AttachPageTrace(&pt);

  load::DriverConfig config;
  config.spec.keys = 1 << 10;
  config.spec.ops = 40000;
  config.spec.read_fraction = 0.5;  // write-heavy: keep the leaf pages hot
  config.procs = 8;
  load::ServeResult result = load::RunTrieServe(sys.kernel, config);
  ASSERT_TRUE(result.verified);

  auto pool_cpages = [&](uint32_t base_va, uint32_t words) {
    std::set<uint32_t> out;
    const uint32_t page = sys.kernel.page_size();
    for (uint32_t va = base_va; va < base_va + words * 4; va += page) {
      uint32_t cpage = pt.CpageFor(result.as_id, sys.kernel.VpnOf(va));
      if (cpage != mem::kTraceNoCpage) {
        out.insert(cpage);
      }
    }
    return out;
  };
  std::set<uint32_t> interior =
      pool_cpages(result.interior_base_va, result.interior_words);
  std::set<uint32_t> leaves = pool_cpages(result.leaf_base_va, result.leaf_words);
  std::set<uint32_t> sync;
  for (uint32_t va : result.sync_vas) {
    uint32_t cpage = pt.CpageFor(result.as_id, sys.kernel.VpnOf(va));
    if (cpage != mem::kTraceNoCpage) {
      sync.insert(cpage);
    }
  }
  ASSERT_FALSE(interior.empty());
  ASSERT_FALSE(leaves.empty());
  ASSERT_FALSE(sync.empty());
  for (uint32_t cpage : interior) {
    EXPECT_EQ(leaves.count(cpage), 0u) << "pools share cpage " << cpage;
    EXPECT_EQ(sync.count(cpage), 0u) << "sync word on interior cpage " << cpage;
  }
  for (uint32_t cpage : leaves) {
    EXPECT_EQ(sync.count(cpage), 0u) << "sync word on leaf cpage " << cpage;
  }

  size_t leaf_ping_pong = 0;
  size_t interior_ping_pong = 0;
  size_t sync_ping_pong = 0;
  size_t unattributed = 0;
  for (uint32_t cpage : pt.FlaggedPingPong()) {
    if (leaves.count(cpage) != 0) {
      ++leaf_ping_pong;
    } else if (interior.count(cpage) != 0) {
      ++interior_ping_pong;
    } else if (sync.count(cpage) != 0) {
      ++sync_ping_pong;
    } else {
      ++unattributed;
    }
  }
  auto pool_totals = [&](const std::set<uint32_t>& pool) {
    uint64_t alternations = 0;
    uint64_t replications = 0;
    for (uint32_t cpage : pool) {
      if (const PageTrace::PageRollup* r = pt.rollup(cpage)) {
        alternations += r->write_alternations;
        replications += r->replications;
      }
    }
    return std::pair<uint64_t, uint64_t>(alternations, replications);
  };
  auto [interior_alt, interior_repl] = pool_totals(interior);
  auto [leaf_alt, leaf_repl] = pool_totals(leaves);
  std::printf(
      "trie forensics: cpages interior=%zu leaf=%zu sync=%zu; ping-pong "
      "leaf=%zu interior=%zu sync=%zu unattributed=%zu; alternations "
      "interior=%llu leaf=%llu; replications interior=%llu leaf=%llu\n",
      interior.size(), leaves.size(), sync.size(), leaf_ping_pong,
      interior_ping_pong, sync_ping_pong, unattributed,
      static_cast<unsigned long long>(interior_alt),
      static_cast<unsigned long long>(leaf_alt),
      static_cast<unsigned long long>(interior_repl),
      static_cast<unsigned long long>(leaf_repl));

  // Hot leaf pages take owner-sharded writes under concurrent readers and
  // get flagged. Alternation totals stay small on both pools — the
  // timestamp policy freezes a write-shared page after a few invalidating
  // writes, so alternation saturates right past the detector threshold —
  // and under churn the interior pool is legitimately flagged too (erases
  // and re-inserts rewrite parent child slots from every owner).
  EXPECT_GT(leaf_ping_pong, 0u);
  EXPECT_GT(leaf_alt, 0u);
  EXPECT_GT(interior_alt, 0u);
  // Sync pages (slice locks, barrier) ping-pong by design — the paper's
  // Section 6 point that sync words need their own pages.
  EXPECT_GT(sync_ping_pong, 0u);
  // Every flagged page traces back to a known structure: the bind map leaves
  // nothing unattributed.
  EXPECT_EQ(unattributed, 0u);
  // The replicate-vs-freeze split lands where the paper says it should:
  // read-mostly interior pages replicate, write-shared leaf pages do not.
  EXPECT_GT(interior_repl, 0u);
  EXPECT_EQ(leaf_repl, 0u);
}

// --- Epoch sampler -----------------------------------------------------------

TEST(EpochSamplerTest, ClosesEveryBoundaryCrossedByOneAdvance) {
  TestSystem sys(2);
  EpochSamplerOptions options;
  options.epoch_ns = 10 * sim::kMillisecond;
  EpochSampler sampler(&sys.machine, options);
  sys.machine.scheduler().SetTimeObserver(&sampler);
  auto* space = sys.kernel.CreateAddressSpace("s");
  sys.kernel.SpawnThread(space, 0, "sleeper", [&] {
    // One long sleep jumps global time across three boundaries at once;
    // the sampler must close each of them (catch-up loop).
    sys.machine.scheduler().Sleep(35 * sim::kMillisecond);
  });
  sys.kernel.Run();
  sampler.Finalize();
  const std::vector<EpochSampler::Sample>& samples = sampler.samples();
  ASSERT_GE(samples.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(samples[i].end_ns, (i + 1) * 10 * sim::kMillisecond);
  }
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].end_ns, samples[i - 1].end_ns);
    // Snapshots are cumulative, so every counter is monotone.
    EXPECT_GE(samples[i].stats.faults, samples[i - 1].stats.faults);
  }
  std::string json = sampler.ToJson();
  EXPECT_TRUE(obs::CheckJsonBalanced(json));
  EXPECT_TRUE(obs::CheckJsonHasKey(json, "epochs"));
  EXPECT_NE(json.find("platinum-timeseries-v1"), std::string::npos);
  EXPECT_EQ(json, sampler.ToJson());
}

TEST(EpochSamplerTest, SamplesAreBoundedAndDropCounted) {
  TestSystem sys(2);
  EpochSamplerOptions options;
  options.epoch_ns = 1 * sim::kMillisecond;
  options.max_samples = 2;
  EpochSampler sampler(&sys.machine, options);
  sys.machine.scheduler().SetTimeObserver(&sampler);
  auto* space = sys.kernel.CreateAddressSpace("s");
  sys.kernel.SpawnThread(space, 0, "sleeper", [&] {
    sys.machine.scheduler().Sleep(10 * sim::kMillisecond);
  });
  sys.kernel.Run();
  sampler.Finalize();
  EXPECT_EQ(sampler.samples().size(), 2u);
  EXPECT_GT(sampler.samples_dropped(), 0u);
  std::string json = sampler.ToJson();
  EXPECT_TRUE(obs::CheckJsonBalanced(json));
  EXPECT_NE(json.find("\"samples_dropped\":"), std::string::npos);
}

TEST(EpochSamplerTest, SamplesRealFaultActivityIntoEpochDeltas) {
  TestSystem sys(2);
  EpochSamplerOptions options;
  options.epoch_ns = 1 * sim::kMillisecond;
  EpochSampler sampler(&sys.machine, options);
  sys.machine.scheduler().SetTimeObserver(&sampler);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "data", 64);
  sys.kernel.SpawnThread(space, 0, "writer", [&] {
    for (size_t i = 0; i < 64; ++i) {
      arr.Set(i, static_cast<uint32_t>(i));
    }
    sys.machine.scheduler().Sleep(2 * sim::kMillisecond);
  });
  sys.kernel.Run();
  sampler.Finalize();
  ASSERT_GE(sampler.samples().size(), 1u);
  const EpochSampler::Sample& last = sampler.samples().back();
  EXPECT_GT(last.stats.faults, 0u);
  ASSERT_EQ(last.cpu_faults.size(), 2u);
  EXPECT_EQ(last.cpu_faults[0] + last.cpu_faults[1], last.stats.faults);
}

}  // namespace
}  // namespace platinum
