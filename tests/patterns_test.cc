// Tests for the synthetic access-pattern engine: under the default timestamp
// policy each canonical pattern must elicit the protocol behaviour the paper
// predicts for it.
#include "src/apps/patterns.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace platinum {
namespace {

using apps::AccessPattern;
using apps::PatternConfig;
using apps::PatternResult;
using sim::kMillisecond;
using test::TestSystem;

PatternResult RunOne(AccessPattern pattern, sim::SimTime think = 200 * sim::kMicrosecond,
                  int processors = 4) {
  TestSystem sys(8);
  PatternConfig config;
  config.pattern = pattern;
  config.processors = processors;
  config.think_ns = think;
  PatternResult result = RunPattern(sys.kernel, config);
  sys.kernel.memory().CheckInvariants();
  return result;
}

TEST(PatternsTest, PrivateDataStaysLocal) {
  PatternResult result = RunOne(AccessPattern::kPrivate);
  EXPECT_EQ(result.remote_maps, 0u);
  EXPECT_EQ(result.freezes, 0u);
  EXPECT_EQ(result.migrations, 0u);
  // Only barrier traffic is remote; the data references are all local.
  EXPECT_GT(result.local_references, result.remote_references);
}

TEST(PatternsTest, ReadSharedDataReplicatesEverywhere) {
  PatternResult result = RunOne(AccessPattern::kReadShared);
  // Every non-writer processor replicates every page of the region.
  EXPECT_GE(result.replications, 3u * 4u);
  EXPECT_EQ(result.freezes, 0u);
  EXPECT_EQ(result.migrations, 0u);
}

TEST(PatternsTest, SlowMigratoryDataMigrates) {
  // Handoffs far apart (>> t1): each new user moves the pages toward itself.
  // A read-then-write handoff shows up as a replication followed by an
  // invalidation of the old copy; a pure write handoff as a migration.
  PatternResult result = RunOne(AccessPattern::kMigratory, /*think=*/15 * kMillisecond);
  EXPECT_GT(result.migrations + result.replications, 8u);
  EXPECT_EQ(result.freezes, 0u);
}

TEST(PatternsTest, FastMigratoryDataFreezes) {
  // Handoffs inside the t1 window look like interference: the pages freeze
  // and the later users run on remote references.
  PatternResult result = RunOne(AccessPattern::kMigratory, /*think=*/500 * sim::kMicrosecond);
  EXPECT_GE(result.freezes, 1u);
  EXPECT_GT(result.remote_maps, 0u);
}

TEST(PatternsTest, HotSpotWriteFreezes) {
  PatternResult result = RunOne(AccessPattern::kHotSpotWrite);
  EXPECT_GE(result.freezes, 1u);
  // After freezing, the protocol stops moving data entirely.
  EXPECT_LE(result.migrations + result.replications, 6u);
  EXPECT_GT(result.remote_references, 0u);
}

TEST(PatternsTest, FalseSharingFreezesDespiteDisjointData) {
  PatternResult result = RunOne(AccessPattern::kFalseSharing);
  EXPECT_GE(result.freezes, 1u);
}

TEST(PatternsTest, ProducerConsumerAlternatesInvalidationAndReplication) {
  PatternResult result = RunOne(AccessPattern::kProducerConsumer, /*think=*/15 * kMillisecond);
  EXPECT_GT(result.replications, 4u);
  // The producer's writes invalidate consumer replicas each phase; spaced
  // beyond t1 they never freeze the pages.
  EXPECT_EQ(result.freezes, 0u);
}

TEST(PatternsTest, DeterministicAcrossRuns) {
  PatternResult a = RunOne(AccessPattern::kHotSpotWrite);
  PatternResult b = RunOne(AccessPattern::kHotSpotWrite);
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(a.remote_references, b.remote_references);
}

}  // namespace
}  // namespace platinum
