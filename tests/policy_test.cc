// Unit tests for the replication policies (Section 4.2 and the ablation
// alternatives), exercised directly against hand-built Cpage states.
#include "src/mem/policy.h"

#include <gtest/gtest.h>

#include "src/mem/cpage.h"

namespace platinum::mem {
namespace {

using sim::kMillisecond;

constexpr sim::SimTime kT1 = 10 * kMillisecond;

FaultInfo ReadFault() { return FaultInfo{0, 0, 1, false}; }
FaultInfo WriteFault() { return FaultInfo{0, 0, 1, true}; }

TEST(TimestampPolicyTest, CachesWhenNeverInvalidated) {
  TimestampPolicy policy(kT1);
  Cpage page(0, 0);
  EXPECT_TRUE(policy.ShouldCache(page, ReadFault(), 0));
  EXPECT_TRUE(policy.ShouldCache(page, WriteFault(), 100 * kMillisecond));
}

TEST(TimestampPolicyTest, DeclinesWithinT1OfInvalidation) {
  TimestampPolicy policy(kT1);
  Cpage page(0, 0);
  page.RecordInvalidation(50 * kMillisecond);
  EXPECT_FALSE(policy.ShouldCache(page, ReadFault(), 55 * kMillisecond));
  EXPECT_FALSE(policy.ShouldCache(page, ReadFault(), 59 * kMillisecond));
  EXPECT_TRUE(policy.ShouldCache(page, ReadFault(), 60 * kMillisecond));
  EXPECT_TRUE(policy.ShouldCache(page, ReadFault(), 500 * kMillisecond));
}

TEST(TimestampPolicyTest, ClockSkewBeforeInvalidationCountsAsHot) {
  TimestampPolicy policy(kT1);
  Cpage page(0, 0);
  page.RecordInvalidation(50 * kMillisecond);
  // A fault whose (skewed) clock is slightly behind the recorded
  // invalidation must not underflow into "quiescent".
  EXPECT_FALSE(policy.ShouldCache(page, ReadFault(), 49 * kMillisecond));
}

TEST(TimestampPolicyTest, FrozenPageStaysFrozenByDefault) {
  TimestampPolicy policy(kT1);
  Cpage page(0, 0);
  page.RecordInvalidation(0);
  page.SetFrozen(true);
  EXPECT_FALSE(policy.ShouldCache(page, ReadFault(), 1000 * kMillisecond));
  EXPECT_TRUE(policy.FreezeOnDecline());
}

TEST(TimestampPolicyTest, ThawOnAccessVariantThawsAfterT1) {
  TimestampPolicy policy(kT1, /*thaw_on_access=*/true);
  Cpage page(0, 0);
  page.RecordInvalidation(0);
  page.SetFrozen(true);
  EXPECT_FALSE(policy.ShouldCache(page, ReadFault(), 5 * kMillisecond));
  EXPECT_TRUE(policy.ShouldCache(page, ReadFault(), 15 * kMillisecond));
}

TEST(AlwaysCachePolicyTest, AlwaysCachesAndNeverFreezes) {
  AlwaysCachePolicy policy;
  Cpage page(0, 0);
  page.RecordInvalidation(50 * kMillisecond);
  EXPECT_TRUE(policy.ShouldCache(page, WriteFault(), 51 * kMillisecond));
  EXPECT_FALSE(policy.FreezeOnDecline());
}

TEST(NeverCachePolicyTest, OnlyFillsEmptyPages) {
  NeverCachePolicy policy;
  Cpage page(0, 0);
  EXPECT_TRUE(policy.ShouldCache(page, WriteFault(), 0));  // empty: must fill
  page.AddCopy(PhysicalCopy{0, 0});
  page.SetState(CpageState::kPresent1);
  EXPECT_FALSE(policy.ShouldCache(page, ReadFault(), 1000 * kMillisecond));
  EXPECT_FALSE(policy.FreezeOnDecline());
}

TEST(MigrateThenFreezePolicyTest, ReadOnlyPagesReplicateFreely) {
  MigrateThenFreezePolicy policy(2);
  Cpage page(0, 0);
  page.AddCopy(PhysicalCopy{0, 0});
  page.SetState(CpageState::kPresent1);
  page.stats().replications = 100;  // read-only pages never stop replicating
  EXPECT_TRUE(policy.ShouldCache(page, ReadFault(), 0));
}

TEST(MigrateThenFreezePolicyTest, WrittenPagesMoveABoundedNumberOfTimes) {
  MigrateThenFreezePolicy policy(2);
  Cpage page(0, 0);
  page.AddCopy(PhysicalCopy{0, 0});
  page.SetState(CpageState::kPresent1);
  page.stats().write_faults = 1;
  page.stats().migrations = 0;
  EXPECT_TRUE(policy.ShouldCache(page, WriteFault(), 0));
  page.stats().migrations = 2;
  EXPECT_FALSE(policy.ShouldCache(page, WriteFault(), 0));
  // Once frozen, frozen for good.
  page.SetFrozen(true);
  page.stats().migrations = 0;
  EXPECT_FALSE(policy.ShouldCache(page, ReadFault(), 0));
}

}  // namespace
}  // namespace platinum::mem
