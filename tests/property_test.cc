// Property-style parameterized sweeps: protocol invariants and end-to-end
// coherence must hold for every machine shape (processor counts, page sizes,
// policies) and under adversarial operation sequences.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "src/kernel/kernel.h"
#include "src/mem/policy.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using test::TestSystem;

std::unique_ptr<mem::ReplicationPolicy> MakePolicy(int which) {
  switch (which) {
    case 0:
      return std::make_unique<mem::TimestampPolicy>(10 * kMillisecond);
    case 1:
      return std::make_unique<mem::TimestampPolicy>(10 * kMillisecond, true);
    case 2:
      return std::make_unique<mem::AlwaysCachePolicy>();
    case 3:
      return std::make_unique<mem::NeverCachePolicy>();
    default:
      return std::make_unique<mem::MigrateThenFreezePolicy>(2);
  }
}

// (processors, page_size, policy)
using SweepParam = std::tuple<int, uint32_t, int>;

class CoherenceSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CoherenceSweepTest, RandomWorkloadStaysCoherent) {
  auto [processors, page_size, policy] = GetParam();
  sim::MachineParams params = sim::ButterflyPlusParams(processors);
  params.page_size_bytes = page_size;
  params.frames_per_module = (1u << 22) / page_size;
  kernel::KernelOptions options;
  options.policy = MakePolicy(policy);
  TestSystem sys(params, std::move(options));

  auto* space = sys.kernel.CreateAddressSpace("sweep");
  rt::ZoneAllocator zone(&sys.kernel, space);
  constexpr int kPages = 4;
  const uint32_t page_words = page_size / 4;
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "data",
                                               static_cast<size_t>(kPages) * page_words);

  // Shadow model; see coherent_memory_test.cc for why pre-access updates are
  // race-free under the fiber scheduler.
  constexpr int kWordsPerPage = 4;
  std::vector<uint32_t> shadow(kPages * kWordsPerPage, 0);

  rt::RunOnProcessors(sys.kernel, space, processors, "rnd", [&](int p) {
    std::mt19937 rng(static_cast<unsigned>(p * 7919 + policy * 13 + processors));
    for (int i = 0; i < 150; ++i) {
      int page = static_cast<int>(rng() % kPages);
      int word = static_cast<int>(rng() % kWordsPerPage);
      size_t index = static_cast<size_t>(page) * page_words + static_cast<size_t>(word);
      size_t si = static_cast<size_t>(page) * kWordsPerPage + static_cast<size_t>(word);
      if (rng() % 2 == 0) {
        uint32_t value = rng();
        shadow[si] = value;
        arr.Set(index, value);
      } else {
        uint32_t expected = shadow[si];
        ASSERT_EQ(arr.Get(index), expected) << "p" << p << " op " << i;
      }
      if (rng() % 10 == 0) {
        sys.machine.scheduler().Sleep((rng() % 3000) * kMicrosecond);
      }
    }
  });
  sys.kernel.memory().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoherenceSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1024u, 4096u),
                       ::testing::Values(0, 2, 3)));

INSTANTIATE_TEST_SUITE_P(
    Policies, CoherenceSweepTest,
    ::testing::Combine(::testing::Values(4), ::testing::Values(4096u),
                       ::testing::Values(1, 4)));

// Adversarial kernel-operation fuzzer: random interleaving of accesses,
// advice, pins, pre-replications, thaws, unbinds and rebinds must never
// break a protocol invariant or lose a write.
class ProtocolFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolFuzzTest, InvariantsSurviveRandomOps) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("fuzz");
  rt::ZoneAllocator zone(&sys.kernel, space);
  constexpr int kPages = 3;
  const uint32_t page_words = sys.kernel.page_size() / 4;
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "fuzz-data",
                                               static_cast<size_t>(kPages) * page_words);
  std::vector<uint32_t> shadow(kPages, 0);

  rt::RunOnProcessors(sys.kernel, space, 4, "fuzz", [&](int p) {
    std::mt19937 rng(static_cast<unsigned>(GetParam() * 131 + p));
    for (int i = 0; i < 120; ++i) {
      int page = static_cast<int>(rng() % kPages);
      size_t index = static_cast<size_t>(page) * page_words;
      uint32_t va = arr.va(index);
      switch (rng() % 8) {
        case 0:
        case 1:
        case 2: {
          uint32_t value = rng();
          shadow[static_cast<size_t>(page)] = value;
          arr.Set(index, value);
          break;
        }
        case 3:
        case 4: {
          uint32_t expected = shadow[static_cast<size_t>(page)];
          ASSERT_EQ(arr.Get(index), expected);
          break;
        }
        case 5:
          sys.kernel.AdviseMemory(space, va, 4,
                                  static_cast<mem::MemoryAdvice>(rng() % 4));
          break;
        case 6:
          sys.kernel.PinMemory(space, va, static_cast<int>(rng() % 4));
          break;
        case 7:
          sys.kernel.ThawMemory(space, va);
          break;
      }
      if (rng() % 6 == 0) {
        sys.machine.scheduler().Sleep((rng() % 4000) * kMicrosecond);
      }
      sys.machine.scheduler().MaybeYield();
    }
  });
  sys.kernel.memory().CheckInvariants();

  // Every write survived all the placement churn.
  test::RunInThread(sys.kernel, space, 0, [&] {
    for (int page = 0; page < kPages; ++page) {
      EXPECT_EQ(arr.Get(static_cast<size_t>(page) * page_words),
                shadow[static_cast<size_t>(page)]);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest, ::testing::Range(1, 9));

// The machine must stay deterministic across every shape.
TEST(DeterminismSweepTest, SameSeedSameVirtualTime) {
  auto run = [](int processors) {
    TestSystem sys(processors);
    auto* space = sys.kernel.CreateAddressSpace("d");
    rt::ZoneAllocator zone(&sys.kernel, space);
    auto arr = rt::SharedArray<uint32_t>::Create(zone, "d", 64);
    rt::RunOnProcessors(sys.kernel, space, processors, "w", [&](int p) {
      std::mt19937 rng(static_cast<unsigned>(p));
      for (int i = 0; i < 100; ++i) {
        size_t index = rng() % 64;
        if (rng() % 2 == 0) {
          arr.Set(index, rng());
        } else {
          arr.Get(index);
        }
      }
    });
    return sys.machine.scheduler().global_now();
  };
  for (int processors : {2, 5, 8}) {
    EXPECT_EQ(run(processors), run(processors)) << processors << " processors";
  }
}

}  // namespace
}  // namespace platinum
