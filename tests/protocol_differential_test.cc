// Differential test across coherence protocols (docs/PROTOCOL.md).
//
// The directory protocol and the tardis protocol schedule coherence work
// very differently — shootdown rounds vs. lease waits — but both enforce
// the same single-writer/multiple-reader discipline, so a properly
// synchronized application must compute the identical result under either.
// Each case here runs the same workload with the same seed under both
// protocols and requires the final memory contents (via the workload
// checksums) to verify against the host-side reference AND to agree with
// each other. A divergence means one protocol let a stale or torn value
// reach the application — exactly the bug class the spec-level safety
// proofs (tools/gen_protocol_spec.py --verify) are about.
#include <string>

#include "gtest/gtest.h"
#include "src/apps/gauss.h"
#include "src/apps/mergesort.h"
#include "src/apps/neural.h"
#include "src/kernel/kernel.h"
#include "src/sim/machine.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

// A fresh 8-node system booted with the given protocol.
kernel::KernelOptions WithProtocol(const char* protocol) {
  kernel::KernelOptions options;
  options.protocol = protocol;
  return options;
}

TEST(ProtocolDifferentialTest, GaussAgreesAcrossProtocols) {
  apps::GaussConfig config;
  config.n = 48;
  config.processors = 8;
  uint64_t checksums[2];
  for (int i = 0; i < 2; ++i) {
    test::TestSystem sys(sim::ButterflyPlusParams(8),
                         WithProtocol(i == 0 ? "directory" : "tardis"));
    apps::GaussResult result = RunGaussPlatinum(sys.kernel, config);
    ASSERT_TRUE(result.verified) << "protocol " << i << " wrong vs. reference";
    checksums[i] = result.checksum;
    sys.kernel.memory().CheckInvariants();
  }
  EXPECT_EQ(checksums[0], checksums[1])
      << "directory and tardis disagree on the eliminated matrix";
}

TEST(ProtocolDifferentialTest, MergeSortAgreesAcrossProtocols) {
  apps::SortConfig config;
  config.count = 1 << 12;
  config.processors = 8;
  uint64_t checksums[2];
  for (int i = 0; i < 2; ++i) {
    test::TestSystem sys(sim::ButterflyPlusParams(8),
                         WithProtocol(i == 0 ? "directory" : "tardis"));
    apps::SortResult result = RunMergeSortPlatinum(sys.kernel, config);
    ASSERT_TRUE(result.verified) << "protocol " << i << " wrong vs. reference";
    checksums[i] = result.checksum;
    sys.kernel.memory().CheckInvariants();
  }
  EXPECT_EQ(checksums[0], checksums[1])
      << "directory and tardis disagree on the sorted permutation";
}

TEST(ProtocolDifferentialTest, NeuralLearnsUnderBothProtocols) {
  // The network shares its vectors at word grain with only word-atomicity
  // for synchronization, so the exact trajectory legitimately depends on
  // coherence timing. What must hold under any correct protocol: training
  // starts from the same (seed-determined) error and learns the encoder.
  apps::NeuralConfig config;
  config.processors = 8;
  config.epochs = 8;
  uint64_t initial_errors[2];
  for (int i = 0; i < 2; ++i) {
    test::TestSystem sys(sim::ButterflyPlusParams(8),
                         WithProtocol(i == 0 ? "directory" : "tardis"));
    apps::NeuralResult result = RunNeuralPlatinum(sys.kernel, config);
    ASSERT_TRUE(result.verified) << "protocol " << i << " failed to learn";
    EXPECT_LT(result.final_error, result.initial_error);
    initial_errors[i] = result.initial_error;
    sys.kernel.memory().CheckInvariants();
  }
  EXPECT_EQ(initial_errors[0], initial_errors[1])
      << "the seed-determined starting point must not depend on the protocol";
}

// The same run repeated under the same protocol must be bit-identical —
// the fiber-serialized simulation has no protocol-dependent nondeterminism
// to hide behind (tools/determinism_check.sh covers the platsim surface).
TEST(ProtocolDifferentialTest, TardisRunsAreReproducible) {
  apps::SortConfig config;
  config.count = 1 << 12;
  config.processors = 4;
  sim::SimTime times[2];
  uint64_t checksums[2];
  for (int i = 0; i < 2; ++i) {
    test::TestSystem sys(sim::ButterflyPlusParams(4), WithProtocol("tardis"));
    apps::SortResult result = RunMergeSortPlatinum(sys.kernel, config);
    ASSERT_TRUE(result.verified);
    times[i] = result.sort_ns;
    checksums[i] = result.checksum;
  }
  EXPECT_EQ(times[0], times[1]);
  EXPECT_EQ(checksums[0], checksums[1]);
}

}  // namespace
}  // namespace platinum
