// Three-way consistency between the machine-readable protocol spec
// (src/mem/protocol_spec.json, compiled to protocol_spec.gen.h), the
// implementation, and the correctness layer:
//
//   * the bounded explorer's closed 2p/3p state spaces must traverse exactly
//     the spec's read/write/thaw rows — a row the explorer never takes is a
//     spec claim the implementation does not honor, and an edge outside the
//     spec aborts the exploration itself;
//   * pin / replicate-to / unbind scenarios driven under the oracle must
//     complete (the oracle validates every per-page change against the spec
//     rows of the trigger that fired);
//   * a state mutation smuggled past the sanctioned funnel must abort at the
//     next transition with a protocol-spec violation.
//   * the spec-level proof (tools/gen_protocol_spec.py --verify, baked into
//     protocol_spec.gen.h) must agree with the concrete closure: a row the
//     symbolic closure covers but no exploration traverses would be a proof
//     about an idealized machine, and vice versa an unsound abstraction.
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/explorer.h"
#include "src/check/oracle.h"
#include "src/mem/cpage.h"
#include "src/mem/protocol_spec.gen.h"
#include "src/mem/protocol_spec.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using test::RunInThread;
using test::TestSystem;

std::string EdgeName(const mem::ProtocolEdge& edge) {
  std::ostringstream out;
  out << mem::ProtocolTriggerName(edge.trigger) << ": " << mem::CpageStateName(edge.from)
      << " -> " << mem::CpageStateName(edge.to);
  return out.str();
}

std::string Describe(const std::set<mem::ProtocolEdge>& edges) {
  std::ostringstream out;
  for (const mem::ProtocolEdge& edge : edges) {
    out << "  " << EdgeName(edge) << "\n";
  }
  return out.str();
}

// The spec rows reachable through the explorer's alphabet (reads, writes,
// and thaws; pin/replicate-to/unbind are host-driven and covered below).
std::set<mem::ProtocolEdge> ExplorableSpecEdges() {
  std::set<mem::ProtocolEdge> expected;
  for (const mem::ProtocolEdge& edge : mem::ProtocolEdges()) {
    if (edge.trigger == mem::ProtocolTrigger::kRead ||
        edge.trigger == mem::ProtocolTrigger::kWrite ||
        edge.trigger == mem::ProtocolTrigger::kThaw) {
      expected.insert(edge);
    }
  }
  return expected;
}

// Every read/write/thaw row of the spec is traversed by some closed state
// space, and no exploration ever leaves the spec (the explorer aborts on an
// out-of-spec edge, so reaching the assertions below proves containment).
TEST(ProtocolSpecExplorerTest, ClosedStateSpacesCoverExactlyTheSpec) {
  std::set<mem::ProtocolEdge> observed;
  uint32_t state_mask = 0;
  struct Run {
    const char* name;
    check::ExplorerConfig config;
  };
  std::vector<Run> runs;
  {
    check::ExplorerConfig c;
    c.processors = 2;
    c.pages = 1;
    c.policy = "timestamp";
    runs.push_back({"2p-timestamp", c});
    c.policy = "always";
    runs.push_back({"2p-always", c});
    c.policy = "never";
    runs.push_back({"2p-never", c});
    c.policy = "timestamp";
    c.advice = mem::MemoryAdvice::kWriteShared;
    runs.push_back({"2p-write-shared", c});
    c.advice = mem::MemoryAdvice::kDefault;
    c.processors = 3;
    runs.push_back({"3p-timestamp", c});
  }
  for (const Run& run : runs) {
    check::ExplorerResult result = check::ExploreProtocol(run.config);
    EXPECT_TRUE(result.exhaustive) << run.name << ": " << result.Summary();
    observed.insert(result.observed_edges.begin(), result.observed_edges.end());
    state_mask |= result.state_mask_seen;
  }

  std::set<mem::ProtocolEdge> expected = ExplorableSpecEdges();
  std::set<mem::ProtocolEdge> missing;
  for (const mem::ProtocolEdge& edge : expected) {
    if (observed.count(edge) == 0) {
      missing.insert(edge);
    }
  }
  std::set<mem::ProtocolEdge> extra;
  for (const mem::ProtocolEdge& edge : observed) {
    if (expected.count(edge) == 0) {
      extra.insert(edge);
    }
  }
  EXPECT_TRUE(missing.empty()) << "spec rows no closed exploration traversed (stale spec "
                                  "rows, or coverage regression):\n"
                               << Describe(missing);
  EXPECT_TRUE(extra.empty()) << "explored edges absent from the spec:\n" << Describe(extra);
  EXPECT_EQ(state_mask, mem::ProtocolReachableStateMask())
      << "explorer did not visit every state the spec declares reachable";

  // Cross-check against the spec-level proof: within the explorer's alphabet
  // (read / write / thaw), a row is covered by the symbolic closure iff some
  // concrete exploration traversed it, and both closures see the same states.
  for (size_t i = 0; i < std::size(mem::spec_gen::kEdges); ++i) {
    const mem::spec_gen::EdgeRow& row = mem::spec_gen::kEdges[i];
    auto trigger = static_cast<mem::ProtocolTrigger>(row.trigger);
    if (trigger != mem::ProtocolTrigger::kRead && trigger != mem::ProtocolTrigger::kWrite &&
        trigger != mem::ProtocolTrigger::kThaw) {
      continue;
    }
    mem::ProtocolEdge edge{trigger, static_cast<mem::CpageState>(row.from),
                           static_cast<mem::CpageState>(row.to)};
    bool proven = (mem::spec_gen::kProofCoveredRowMask >> i) & 1;
    EXPECT_EQ(proven, observed.count(edge) == 1)
        << EdgeName(edge) << ": symbolic closure and explorer closure disagree";
  }
  EXPECT_EQ(state_mask, mem::spec_gen::kProofStateMask)
      << "symbolic closure reaches different states than the explorer";
}

// The baked-in proof certifies the whole spec: every event row is exercised
// by the symbolic closure, its state mask equals the spec's reachable mask,
// and the headline safety theorems are among the proved properties.
TEST(ProtocolSpecProofTest, ProofCoversEveryRowAndProvesSafety) {
  constexpr uint32_t kAllRows =
      (uint32_t{1} << std::size(mem::spec_gen::kEdges)) - 1;
  EXPECT_EQ(mem::spec_gen::kProofCoveredRowMask, kAllRows)
      << "spec rows the symbolic closure never exercises";
  EXPECT_EQ(mem::spec_gen::kProofStateMask, mem::ProtocolReachableStateMask());
  std::set<std::string> properties;
  for (const char* name : mem::spec_gen::kProvedProperties) {
    properties.insert(name);
  }
  for (const char* want : {"swmr", "rights-domination", "no-stuck-state"}) {
    EXPECT_EQ(properties.count(want), 1u) << "property not proved: " << want;
  }
}

// Host-driven triggers: pin, replicate-to, and unbind, each exercised from
// every from-state its spec rows name, with the oracle attached throughout.
TEST(ProtocolSpecOracleTest, HostTriggersStayWithinSpec) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("spec");
  vm::MemoryObject* object = sys.kernel.CreateMemoryObject("spec-pages", 8);
  sys.kernel.Map(space, object, 0, 8, /*vpn=*/0, hw::Rights::kReadWrite);
  check::InvariantOracle oracle(&sys.kernel.memory());
  uint32_t page_size = sys.kernel.page_size();

  // pin: empty -> present1 (page 0 untouched before the pin).
  sys.kernel.PinMemory(space, 0 * page_size, /*node=*/1);
  // pin: present1 -> present1 on another node (migrate), then replicate-to:
  // present1 -> present+ is blocked by the pin's freeze, so thaw first.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.ReadWord(space, 1 * page_size); });
  sys.kernel.PinMemory(space, 1 * page_size, /*node=*/2);
  sys.kernel.ThawMemory(space, 1 * page_size);
  sys.kernel.ReplicateMemory(space, 1 * page_size, /*node=*/3);
  // pin: present+ -> present1 collapses the replicas again.
  sys.kernel.PinMemory(space, 1 * page_size, /*node=*/3);

  // replicate-to: modified -> present+ (restrict then replicate), then a
  // write takes it back and pin: modified -> present1.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 2 * page_size, 7); });
  sys.kernel.ReplicateMemory(space, 2 * page_size, /*node=*/2);
  RunInThread(sys.kernel, space, 1, [&] { sys.kernel.WriteWord(space, 2 * page_size, 8); });
  sys.kernel.PinMemory(space, 2 * page_size, /*node=*/0);

  // replicate-to: present+ -> present+ adds a third copy.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.ReadWord(space, 3 * page_size); });
  sys.kernel.ReplicateMemory(space, 3 * page_size, /*node=*/1);
  sys.kernel.ReplicateMemory(space, 3 * page_size, /*node=*/2);

  // unbind: modified -> present1 (write mappings die with the space's
  // translations), plus self-edges for the other bound pages.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 4 * page_size, 9); });
  sys.kernel.Unmap(space, /*vpn=*/0, /*num_pages=*/8);

  EXPECT_GT(oracle.transitions_checked(), 0u);
  oracle.CheckNow();
}

// A SetState outside the sanctioned funnel is caught at the next transition:
// the oracle's shadow diff sees an edge no spec row allows and aborts with a
// protocol-spec violation naming the page and the trigger.
TEST(ProtocolSpecOracleDeathTest, SmuggledMutationAbortsAtNextTransition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("smuggle");
  vm::MemoryObject* object = sys.kernel.CreateMemoryObject("smuggle-page", 1);
  sys.kernel.Map(space, object, 0, 1, /*vpn=*/0, hw::Rights::kReadWrite);
  check::InvariantOracle oracle(&sys.kernel.memory());
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 0, 1); });

  EXPECT_DEATH(
      {
        mem::Cmap& cm = sys.kernel.memory().cmap(space->id());
        uint32_t cpage = cm.entry(0).cpage;
        // Bypasses the funnel: no fault, no hook, shadow still says modified.
        sys.kernel.memory().cpages().at(cpage).SetState(mem::CpageState::kEmpty);
        sys.kernel.Unmap(space, /*vpn=*/0, /*num_pages=*/1);
      },
      "protocol-spec violation");
}

}  // namespace
}  // namespace platinum
