// Three-way consistency between the machine-readable protocol specs
// (src/mem/protocol_spec*.json, compiled to protocol_spec.gen.h), the
// implementations, and the correctness layer — per protocol:
//
//   * the bounded explorer's closed 2p/3p state spaces must traverse exactly
//     the active spec's read/write/thaw rows — a row the explorer never
//     takes is a spec claim the implementation does not honor, and an edge
//     outside the spec aborts the exploration itself;
//   * pin / replicate-to / unbind scenarios driven under the oracle must
//     complete (the oracle validates every per-page change against the spec
//     rows of the trigger that fired, keyed by the active ProtocolKind);
//   * a state mutation smuggled past the sanctioned funnel must abort at the
//     next transition with a protocol-spec violation — including an edge
//     that IS legal under the other protocol (the specs genuinely differ,
//     and the oracle enforces the one the kernel was booted with);
//   * the spec-level proofs (tools/gen_protocol_spec.py --verify, baked into
//     protocol_spec.gen.h) must agree with the concrete closures: a row the
//     symbolic closure covers but no exploration traverses would be a proof
//     about an idealized machine, and vice versa an unsound abstraction.
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/explorer.h"
#include "src/check/oracle.h"
#include "src/mem/cpage.h"
#include "src/mem/protocol_spec.gen.h"
#include "src/mem/protocol_spec.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using test::RunInThread;
using test::TestSystem;

std::string EdgeName(const mem::ProtocolEdge& edge) {
  std::ostringstream out;
  out << mem::ProtocolTriggerName(edge.trigger) << ": " << mem::CpageStateName(edge.from)
      << " -> " << mem::CpageStateName(edge.to);
  return out.str();
}

std::string Describe(const std::set<mem::ProtocolEdge>& edges) {
  std::ostringstream out;
  for (const mem::ProtocolEdge& edge : edges) {
    out << "  " << EdgeName(edge) << "\n";
  }
  return out.str();
}

bool ExplorerCanDrive(mem::ProtocolTrigger trigger) {
  return trigger == mem::ProtocolTrigger::kRead || trigger == mem::ProtocolTrigger::kWrite ||
         trigger == mem::ProtocolTrigger::kThaw;
}

// The spec rows reachable through the explorer's alphabet (reads, writes,
// and thaws; pin/replicate-to/unbind are host-driven and covered below).
std::set<mem::ProtocolEdge> ExplorableSpecEdges(mem::ProtocolKind kind) {
  std::set<mem::ProtocolEdge> expected;
  for (const mem::ProtocolEdge& edge : mem::ProtocolEdges(kind)) {
    if (ExplorerCanDrive(edge.trigger)) {
      expected.insert(edge);
    }
  }
  return expected;
}

struct ClosureResult {
  std::set<mem::ProtocolEdge> observed;
  uint32_t state_mask = 0;
};

// Runs the standard closed-state-space set (three replication policies, the
// write-shared advice path, and a 3-processor run) under `protocol` and
// collects the union of observed edges. Every run must close before the
// depth bound for its edge set to count as the implementation's relation.
ClosureResult RunClosures(const std::string& protocol) {
  ClosureResult result;
  struct Run {
    const char* name;
    check::ExplorerConfig config;
  };
  std::vector<Run> runs;
  {
    check::ExplorerConfig c;
    c.processors = 2;
    c.pages = 1;
    c.protocol = protocol;
    c.policy = "timestamp";
    runs.push_back({"2p-timestamp", c});
    c.policy = "always";
    runs.push_back({"2p-always", c});
    c.policy = "never";
    runs.push_back({"2p-never", c});
    c.policy = "timestamp";
    c.advice = mem::MemoryAdvice::kWriteShared;
    runs.push_back({"2p-write-shared", c});
    c.advice = mem::MemoryAdvice::kDefault;
    c.processors = 3;
    runs.push_back({"3p-timestamp", c});
  }
  for (const Run& run : runs) {
    check::ExplorerResult r = check::ExploreProtocol(run.config);
    EXPECT_TRUE(r.exhaustive) << protocol << "/" << run.name << ": " << r.Summary();
    result.observed.insert(r.observed_edges.begin(), r.observed_edges.end());
    result.state_mask |= r.state_mask_seen;
  }
  return result;
}

// Compares a protocol's concrete closure against its spec and its baked-in
// symbolic proof, restricted to the explorer-drivable triggers.
void CheckClosureAgainstSpec(mem::ProtocolKind kind, const mem::spec_gen::SpecView& view,
                             const ClosureResult& closure) {
  std::set<mem::ProtocolEdge> expected = ExplorableSpecEdges(kind);
  std::set<mem::ProtocolEdge> missing;
  for (const mem::ProtocolEdge& edge : expected) {
    if (closure.observed.count(edge) == 0) {
      missing.insert(edge);
    }
  }
  std::set<mem::ProtocolEdge> extra;
  for (const mem::ProtocolEdge& edge : closure.observed) {
    if (expected.count(edge) == 0) {
      extra.insert(edge);
    }
  }
  EXPECT_TRUE(missing.empty()) << view.name
                               << " spec rows no closed exploration traversed (stale spec "
                                  "rows, or coverage regression):\n"
                               << Describe(missing);
  EXPECT_TRUE(extra.empty()) << "explored edges absent from the " << view.name << " spec:\n"
                             << Describe(extra);
  EXPECT_EQ(closure.state_mask, mem::ProtocolReachableStateMask(kind))
      << "explorer did not visit every state the " << view.name
      << " spec declares reachable";

  // Cross-check against the spec-level proof: within the explorer's alphabet
  // (read / write / thaw), a row is covered by the symbolic closure iff some
  // concrete exploration traversed it, and both closures see the same states.
  for (int i = 0; i < view.num_edges; ++i) {
    const mem::spec_gen::EdgeRow& row = view.edges[i];
    auto trigger = static_cast<mem::ProtocolTrigger>(row.trigger);
    if (!ExplorerCanDrive(trigger)) {
      continue;
    }
    mem::ProtocolEdge edge{trigger, static_cast<mem::CpageState>(row.from),
                           static_cast<mem::CpageState>(row.to)};
    bool proven = (view.proof_covered_row_mask >> i) & 1;
    EXPECT_EQ(proven, closure.observed.count(edge) == 1)
        << view.name << " " << EdgeName(edge)
        << ": symbolic closure and explorer closure disagree";
  }
  EXPECT_EQ(closure.state_mask, view.proof_state_mask)
      << view.name << ": symbolic closure reaches different states than the explorer";
}

// Every read/write/thaw row of the directory spec is traversed by some
// closed state space, and no exploration ever leaves the spec (the explorer
// aborts on an out-of-spec edge, so reaching the assertions below proves
// containment).
TEST(ProtocolSpecExplorerTest, DirectoryClosedStateSpacesCoverExactlyTheSpec) {
  ClosureResult closure = RunClosures("directory");
  CheckClosureAgainstSpec(mem::ProtocolKind::kDirectory, mem::spec_gen::kSpecs[0], closure);
}

// Same closure argument for the Tardis lease protocol. The run set matters:
// "2p-never" is what reaches (read, modified -> present1) — the reader maps
// the downgraded copy remotely instead of replicating — and the caching
// policies reach (read, modified -> present+). There are no thaw rows: a
// lease protocol never freezes, so the thaw third of the alphabet is
// structurally absent from its closed state spaces.
TEST(ProtocolSpecExplorerTest, TardisClosedStateSpacesCoverExactlyTheSpec) {
  ClosureResult closure = RunClosures("tardis");
  CheckClosureAgainstSpec(mem::ProtocolKind::kTardis, mem::spec_gen::kSpecs[1], closure);
}

// The baked-in proofs certify both specs in full: every event row is
// exercised by its symbolic closure, each state mask equals the spec's
// reachable mask, and the headline safety theorems are among the proved
// properties of each protocol.
TEST(ProtocolSpecProofTest, ProofCoversEveryRowAndProvesSafety) {
  for (const mem::spec_gen::SpecView& view : mem::spec_gen::kSpecs) {
    uint32_t all_rows = (uint32_t{1} << view.num_edges) - 1;
    EXPECT_EQ(view.proof_covered_row_mask, all_rows)
        << view.name << ": spec rows the symbolic closure never exercises";
    mem::ProtocolKind kind;
    ASSERT_TRUE(mem::ProtocolKindFromName(view.name, &kind));
    EXPECT_EQ(view.proof_state_mask, mem::ProtocolReachableStateMask(kind)) << view.name;
  }
  for (const char* const* names : {mem::spec_gen::directory::kProvedProperties,
                                   mem::spec_gen::tardis::kProvedProperties}) {
    std::set<std::string> properties;
    for (size_t i = 0; i < std::size(mem::spec_gen::directory::kProvedProperties); ++i) {
      properties.insert(names[i]);
    }
    for (const char* want : {"swmr", "rights-domination", "no-stuck-state"}) {
      EXPECT_EQ(properties.count(want), 1u) << "property not proved: " << want;
    }
  }
}

// The rows the two protocols disagree on — the edges the cross-protocol
// death tests below lean on. A lease protocol downgrades the writer on any
// remote read (modified -> present1 under 'read'); the directory protocol
// only leaves modified via restrict+replicate (-> present+) or a thaw. And
// only the directory protocol has thaw rows at all.
TEST(ProtocolSpecTest, SpecsDifferOnTheDistinguishingRows) {
  using mem::CpageState;
  using mem::ProtocolKind;
  using mem::ProtocolTrigger;
  EXPECT_FALSE(mem::ProtocolAllowsEdge(ProtocolKind::kDirectory, ProtocolTrigger::kRead,
                                       CpageState::kModified, CpageState::kPresent1));
  EXPECT_TRUE(mem::ProtocolAllowsEdge(ProtocolKind::kTardis, ProtocolTrigger::kRead,
                                      CpageState::kModified, CpageState::kPresent1));
  EXPECT_TRUE(mem::ProtocolAllowsEdge(ProtocolKind::kDirectory, ProtocolTrigger::kThaw,
                                      CpageState::kModified, CpageState::kPresent1));
  EXPECT_FALSE(mem::ProtocolAllowsEdge(ProtocolKind::kTardis, ProtocolTrigger::kThaw,
                                       CpageState::kModified, CpageState::kPresent1));
  // Shared rows stay shared: both protocols fill an empty page the same way.
  EXPECT_TRUE(mem::ProtocolAllowsEdge(ProtocolKind::kDirectory, ProtocolTrigger::kRead,
                                      CpageState::kEmpty, CpageState::kPresent1));
  EXPECT_TRUE(mem::ProtocolAllowsEdge(ProtocolKind::kTardis, ProtocolTrigger::kRead,
                                      CpageState::kEmpty, CpageState::kPresent1));
}

// Host-driven triggers: pin, replicate-to, and unbind, each exercised from
// every from-state its spec rows name, with the oracle attached throughout.
TEST(ProtocolSpecOracleTest, HostTriggersStayWithinSpec) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("spec");
  vm::MemoryObject* object = sys.kernel.CreateMemoryObject("spec-pages", 8);
  sys.kernel.Map(space, object, 0, 8, /*vpn=*/0, hw::Rights::kReadWrite);
  check::InvariantOracle oracle(&sys.kernel.memory());
  uint32_t page_size = sys.kernel.page_size();

  // pin: empty -> present1 (page 0 untouched before the pin).
  sys.kernel.PinMemory(space, 0 * page_size, /*node=*/1);
  // pin: present1 -> present1 on another node (migrate), then replicate-to:
  // present1 -> present+ is blocked by the pin's freeze, so thaw first.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.ReadWord(space, 1 * page_size); });
  sys.kernel.PinMemory(space, 1 * page_size, /*node=*/2);
  sys.kernel.ThawMemory(space, 1 * page_size);
  sys.kernel.ReplicateMemory(space, 1 * page_size, /*node=*/3);
  // pin: present+ -> present1 collapses the replicas again.
  sys.kernel.PinMemory(space, 1 * page_size, /*node=*/3);

  // replicate-to: modified -> present+ (restrict then replicate), then a
  // write takes it back and pin: modified -> present1.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 2 * page_size, 7); });
  sys.kernel.ReplicateMemory(space, 2 * page_size, /*node=*/2);
  RunInThread(sys.kernel, space, 1, [&] { sys.kernel.WriteWord(space, 2 * page_size, 8); });
  sys.kernel.PinMemory(space, 2 * page_size, /*node=*/0);

  // replicate-to: present+ -> present+ adds a third copy.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.ReadWord(space, 3 * page_size); });
  sys.kernel.ReplicateMemory(space, 3 * page_size, /*node=*/1);
  sys.kernel.ReplicateMemory(space, 3 * page_size, /*node=*/2);

  // unbind: modified -> present1 (write mappings die with the space's
  // translations), plus self-edges for the other bound pages.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 4 * page_size, 9); });
  sys.kernel.Unmap(space, /*vpn=*/0, /*num_pages=*/8);

  EXPECT_GT(oracle.transitions_checked(), 0u);
  oracle.CheckNow();
}

// The same host-trigger tour under the Tardis protocol: no pin ever freezes
// a page, so no thaw is needed between a pin and the replication that
// follows it, and the oracle validates every edge against the tardis spec.
TEST(ProtocolSpecOracleTest, TardisHostTriggersStayWithinSpec) {
  kernel::KernelOptions options;
  options.protocol = "tardis";
  TestSystem sys(4, std::move(options));
  auto* space = sys.kernel.CreateAddressSpace("spec-tardis");
  vm::MemoryObject* object = sys.kernel.CreateMemoryObject("spec-tardis-pages", 8);
  sys.kernel.Map(space, object, 0, 8, /*vpn=*/0, hw::Rights::kReadWrite);
  check::InvariantOracle oracle(&sys.kernel.memory());
  uint32_t page_size = sys.kernel.page_size();

  // pin: empty -> present1, then present1 -> present1 (migrate) and
  // replicate-to: present1 -> present+ with no thaw in between.
  sys.kernel.PinMemory(space, 0 * page_size, /*node=*/1);
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.ReadWord(space, 1 * page_size); });
  sys.kernel.PinMemory(space, 1 * page_size, /*node=*/2);
  sys.kernel.ReplicateMemory(space, 1 * page_size, /*node=*/3);
  // pin: present+ -> present1 collapses the replicas again.
  sys.kernel.PinMemory(space, 1 * page_size, /*node=*/3);

  // replicate-to: modified -> present+ (lease-restrict then replicate),
  // then a write takes it back and pin: modified -> present1.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 2 * page_size, 7); });
  sys.kernel.ReplicateMemory(space, 2 * page_size, /*node=*/2);
  RunInThread(sys.kernel, space, 1, [&] { sys.kernel.WriteWord(space, 2 * page_size, 8); });
  sys.kernel.PinMemory(space, 2 * page_size, /*node=*/0);

  // replicate-to: present+ -> present+ adds a third copy.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.ReadWord(space, 3 * page_size); });
  sys.kernel.ReplicateMemory(space, 3 * page_size, /*node=*/1);
  sys.kernel.ReplicateMemory(space, 3 * page_size, /*node=*/2);

  // unbind: modified -> present1 plus self-edges for the other bound pages.
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 4 * page_size, 9); });
  sys.kernel.Unmap(space, /*vpn=*/0, /*num_pages=*/8);

  EXPECT_GT(oracle.transitions_checked(), 0u);
  oracle.CheckNow();
}

// A SetState outside the sanctioned funnel is caught at the next transition:
// the oracle's shadow diff sees an edge no spec row allows and aborts with a
// protocol-spec violation naming the page and the trigger.
TEST(ProtocolSpecOracleDeathTest, SmuggledMutationAbortsAtNextTransition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("smuggle");
  vm::MemoryObject* object = sys.kernel.CreateMemoryObject("smuggle-page", 1);
  sys.kernel.Map(space, object, 0, 1, /*vpn=*/0, hw::Rights::kReadWrite);
  check::InvariantOracle oracle(&sys.kernel.memory());
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 0, 1); });

  EXPECT_DEATH(
      {
        mem::Cmap& cm = sys.kernel.memory().cmap(space->id());
        uint32_t cpage = cm.entry(0).cpage;
        // Bypasses the funnel: no fault, no hook, shadow still says modified.
        sys.kernel.memory().cpages().at(cpage).SetState(mem::CpageState::kEmpty);
        sys.kernel.Unmap(space, /*vpn=*/0, /*num_pages=*/1);
      },
      "protocol-spec violation");
}

// The oracle enforces the ACTIVE spec, not the union of all specs: a
// (read, modified -> present1) edge is a legal lease-restrict under tardis,
// but smuggled into a directory-protocol kernel it must still die. The
// smuggled downgrade is planted on page 0; the read that trips the shadow
// diff runs on page 1, so the trigger seen for page 0's edge is 'read'.
TEST(ProtocolSpecOracleDeathTest, DirectoryRejectsTardisOnlyEdge) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("cross-smuggle");
  vm::MemoryObject* object = sys.kernel.CreateMemoryObject("cross-smuggle-pages", 2);
  sys.kernel.Map(space, object, 0, 2, /*vpn=*/0, hw::Rights::kReadWrite);
  check::InvariantOracle oracle(&sys.kernel.memory());
  uint32_t page_size = sys.kernel.page_size();
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 0, 1); });

  EXPECT_DEATH(
      {
        mem::Cmap& cm = sys.kernel.memory().cmap(space->id());
        uint32_t cpage = cm.entry(0).cpage;
        sys.kernel.memory().cpages().at(cpage).SetState(mem::CpageState::kPresent1);
        RunInThread(sys.kernel, space, 1,
                    [&] { sys.kernel.ReadWord(space, 1 * page_size); });
      },
      "protocol-spec violation.*directory spec has no such row");
}

// And symmetrically under tardis: the funnel bypass dies against the tardis
// spec, by name, proving the oracle picked up the protocol the kernel was
// actually booted with.
TEST(ProtocolSpecOracleDeathTest, TardisSmuggledMutationAbortsAtNextTransition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  kernel::KernelOptions options;
  options.protocol = "tardis";
  TestSystem sys(2, std::move(options));
  auto* space = sys.kernel.CreateAddressSpace("smuggle-tardis");
  vm::MemoryObject* object = sys.kernel.CreateMemoryObject("smuggle-tardis-page", 1);
  sys.kernel.Map(space, object, 0, 1, /*vpn=*/0, hw::Rights::kReadWrite);
  check::InvariantOracle oracle(&sys.kernel.memory());
  RunInThread(sys.kernel, space, 0, [&] { sys.kernel.WriteWord(space, 0, 1); });

  EXPECT_DEATH(
      {
        mem::Cmap& cm = sys.kernel.memory().cmap(space->id());
        uint32_t cpage = cm.entry(0).cpage;
        sys.kernel.memory().cpages().at(cpage).SetState(mem::CpageState::kEmpty);
        sys.kernel.Unmap(space, /*vpn=*/0, /*num_pages=*/1);
      },
      "protocol-spec violation.*tardis spec has no such row");
}

}  // namespace
}  // namespace platinum
