// Edge cases and failure injection: frame exhaustion, tiny machines,
// allocator exhaustion, report contents, machine-level timing plumbing.
#include <gtest/gtest.h>

#include "src/apps/gauss.h"
#include "src/kernel/kernel.h"
#include "src/kernel/report.h"
#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using sim::kMillisecond;
using test::TestSystem;

// With almost no free frames, replication must degrade gracefully to remote
// mappings instead of failing: the fault handler falls back when no module
// can supply a frame.
TEST(FrameExhaustionTest, ReplicationFallsBackToRemoteMapping) {
  sim::MachineParams params = sim::ButterflyPlusParams(2);
  params.frames_per_module = 2;  // 2 nodes x 2 frames
  TestSystem sys(params);
  auto* space = sys.kernel.CreateAddressSpace("tiny", 64);
  rt::ZoneAllocator zone(&sys.kernel, space);
  // Four pages fill all four frames once each page has one copy.
  auto a = rt::SharedArray<uint32_t>::Create(zone, "a", 4);
  auto b = rt::SharedArray<uint32_t>::Create(zone, "b", 4);
  auto c = rt::SharedArray<uint32_t>::Create(zone, "c", 4);
  auto d = rt::SharedArray<uint32_t>::Create(zone, "d", 4);

  sys.kernel.SpawnThread(space, 0, "filler0", [&] {
    a.Set(0, 1);
    b.Set(0, 2);
  });
  sys.kernel.SpawnThread(space, 1, "filler1", [&] {
    sys.machine.scheduler().Sleep(2 * kMillisecond);
    c.Set(0, 3);
    d.Set(0, 4);
  });
  sys.kernel.Run();

  // All frames are used; node 1 reading page "a" cannot replicate.
  sys.kernel.SpawnThread(space, 1, "reader", [&] {
    sys.machine.scheduler().Sleep(20 * kMillisecond);  // past t1, policy says cache
    EXPECT_EQ(a.Get(0), 1u);
  });
  sys.kernel.Run();
  EXPECT_EQ(sys.machine.stats().replications, 0u);
  EXPECT_GE(sys.machine.stats().remote_maps, 1u);
  sys.kernel.memory().CheckInvariants();
}

TEST(FrameExhaustionDeathTest, FirstTouchWithNoFramesAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::MachineParams params = sim::ButterflyPlusParams(2);
        params.frames_per_module = 1;
        TestSystem sys(params);
        auto* space = sys.kernel.CreateAddressSpace("tiny", 64);
        rt::ZoneAllocator zone(&sys.kernel, space);
        auto a = rt::SharedArray<uint32_t>::Create(zone, "a", 4);
        auto b = rt::SharedArray<uint32_t>::Create(zone, "b", 4);
        auto c = rt::SharedArray<uint32_t>::Create(zone, "c", 4);
        test::RunInThread(sys.kernel, space, 0, [&] {
          a.Set(0, 1);
          b.Set(0, 2);
          c.Set(0, 3);  // no frame anywhere: out of physical memory
        });
      },
      "out of physical memory");
}

TEST(ZoneExhaustionDeathTest, AddressSpaceCapacityEnforced) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TestSystem sys(2);
        auto* space = sys.kernel.CreateAddressSpace("small", 20);
        rt::ZoneAllocator zone(&sys.kernel, space, /*first_vpn=*/16);
        zone.AllocWords("a", 1);
        zone.AllocWords("b", 1);
        zone.AllocWords("c", 1);
        zone.AllocWords("d", 1);
        zone.AllocWords("overflow", 1);
      },
      "exhausted");
}

TEST(ReportTest, CountsFrozenPagesAndFormats) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "hot", 4);
  test::RunInThread(sys.kernel, space, 0, [&] {
    arr.Set(0, 1);
    sys.kernel.PinMemory(space, arr.base_va(), 1);
  });
  kernel::MemoryReport report = BuildMemoryReport(sys.kernel);
  EXPECT_EQ(report.frozen_pages, 1u);
  EXPECT_EQ(report.pages_ever_frozen, 1u);
  std::string text = report.ToString();
  EXPECT_NE(text.find("frozen"), std::string::npos);
  EXPECT_NE(text.find("present1"), std::string::npos);  // pin left one unmapped copy

  sys.kernel.memory().Thaw(sys.kernel.FindMemoryObject("hot")->cpage(0));
  report = BuildMemoryReport(sys.kernel);
  EXPECT_EQ(report.frozen_pages, 0u);
  EXPECT_EQ(report.pages_ever_frozen, 1u);
}

TEST(MachineTest, BlockTransferMovesBytesAndAdvancesClock) {
  sim::Machine machine(sim::ButterflyPlusParams(2));
  auto src = machine.module(0).AllocFrame(machine.AllocRawPageId());
  auto dst = machine.module(1).AllocFrame(machine.AllocRawPageId());
  ASSERT_TRUE(src.has_value() && dst.has_value());
  machine.WriteWordRaw(0, src->frame, 17, 0xdeadbeef);
  machine.scheduler().Spawn(0, "t", [&] {
    sim::SimTime t0 = machine.scheduler().now();
    machine.BlockTransferPage(0, src->frame, 1, dst->frame);
    EXPECT_NEAR(sim::ToMilliseconds(machine.scheduler().now() - t0), 1.11, 0.01);
  });
  machine.scheduler().Run();
  EXPECT_EQ(machine.ReadWordRaw(1, dst->frame, 17), 0xdeadbeefu);
}

TEST(MachineTest, RawPageIdsAreUnique) {
  sim::Machine machine(sim::ButterflyPlusParams(2));
  uint32_t a = machine.AllocRawPageId();
  uint32_t b = machine.AllocRawPageId();
  EXPECT_NE(a, b);
}

TEST(KernelDeathTest, ReceiveOutsideThreadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TestSystem sys(2);
        auto* port = sys.kernel.CreatePort("p");
        sys.kernel.Receive(port);
      },
      "thread");
}

// Stale data must never be visible after a page is thawed and re-replicated
// repeatedly under churn.
TEST(ChurnTest, RepeatedFreezeThawCyclesPreserveData) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("churn");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "p", 4);

  for (int cycle = 0; cycle < 5; ++cycle) {
    uint32_t value = 100 + static_cast<uint32_t>(cycle);
    rt::RunOnProcessors(sys.kernel, space, 4, "churn", [&](int p) {
      if (p == cycle % 4) {
        arr.Set(0, value);
      }
      // Sleep past the writer's worst-case fault latency so every read is
      // ordered after the write in virtual time.
      sys.machine.scheduler().Sleep(5 * kMillisecond);
      EXPECT_EQ(arr.Get(0), value);
    });
    sys.kernel.memory().ThawAllFrozen();
    sys.kernel.memory().CheckInvariants();
  }
  EXPECT_GE(sys.machine.stats().thaws, 1u);
}

// The kernel's decentralized design must stay correct well past the paper's
// 16-node testbed (Section 9's scalability claim).
TEST(ScalabilityTest, GaussCorrectAt32Processors) {
  TestSystem sys(sim::ButterflyPlusParams(32));
  apps::GaussConfig config;
  config.n = 64;
  config.processors = 32;
  apps::GaussResult result = RunGaussPlatinum(sys.kernel, config);
  EXPECT_TRUE(result.verified);
  sys.kernel.memory().CheckInvariants();
}

TEST(ScalabilityTest, CoherenceAt64Processors) {
  TestSystem sys(sim::ButterflyPlusParams(64));
  auto* space = sys.kernel.CreateAddressSpace("wide");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "wide", 64);
  rt::RunOnProcessors(sys.kernel, space, 64, "w", [&](int p) {
    arr.Set(static_cast<size_t>(p), static_cast<uint32_t>(p) + 1);
    sys.machine.scheduler().Sleep(5 * kMillisecond);
    uint32_t sum = 0;
    for (size_t i = 0; i < 64; ++i) {
      sum += arr.Get(i);
    }
    EXPECT_EQ(sum, 64u * 65u / 2);
  });
  sys.kernel.memory().CheckInvariants();
}

}  // namespace
}  // namespace platinum
