// Tests for the user-level runtime: zones, shared arrays/matrices, locks,
// event counts, barriers.
#include <gtest/gtest.h>

#include "src/runtime/parallel.h"
#include "src/runtime/shared_array.h"
#include "src/runtime/sync.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using sim::kMillisecond;
using test::TestSystem;

TEST(ZoneAllocatorTest, AllocationsArePageAlignedAndDisjoint) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  uint32_t a = zone.AllocWords("a", 1);
  uint32_t b = zone.AllocWords("b", 1);
  uint32_t c = zone.AllocWords("c", 2000);  // two pages
  uint32_t d = zone.AllocWords("d", 1);
  EXPECT_EQ(a % sys.kernel.page_size(), 0u);
  EXPECT_EQ(b, a + sys.kernel.page_size());
  EXPECT_EQ(c, b + sys.kernel.page_size());
  EXPECT_EQ(d, c + 2 * sys.kernel.page_size());
  EXPECT_EQ(zone.pages_allocated(), 5u);
}

TEST(SharedArrayTest, TypedGetSet) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto ints = rt::SharedArray<int32_t>::Create(zone, "i", 4);
  auto floats = rt::SharedArray<float>::Create(zone, "f", 4);
  test::RunInThread(sys.kernel, space, 0, [&] {
    ints.Set(0, -42);
    EXPECT_EQ(ints.Get(0), -42);
    floats.Set(1, 2.5f);
    EXPECT_EQ(floats.Get(1), 2.5f);
  });
}

TEST(SharedArrayTest, SliceViewsAliasTheSameMemory) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "a", 16);
  auto slice = arr.Slice(8, 4);
  test::RunInThread(sys.kernel, space, 0, [&] {
    slice.Set(0, 99);
    EXPECT_EQ(arr.Get(8), 99u);
  });
}

TEST(SharedMatrixTest, RowsArePageAligned) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto m = rt::SharedMatrix<int32_t>::Create(zone, "m", 3, 100);
  EXPECT_EQ(m.Row(0).base_va() % sys.kernel.page_size(), 0u);
  EXPECT_EQ(m.Row(1).base_va() % sys.kernel.page_size(), 0u);
  test::RunInThread(sys.kernel, space, 0, [&] {
    m.Set(2, 99, -7);
    EXPECT_EQ(m.Get(2, 99), -7);
    EXPECT_EQ(m.Row(2).Get(99), -7);
  });
}

TEST(SpinLockTest, MutualExclusion) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  rt::SpinLock lock(zone, "lock");
  auto counter = rt::SharedArray<uint32_t>::Create(zone, "counter", 1);
  // Non-atomic increments under the lock must not lose updates.
  rt::RunOnProcessors(sys.kernel, space, 4, "worker", [&](int) {
    for (int i = 0; i < 25; ++i) {
      lock.Acquire();
      counter.Set(0, counter.Get(0) + 1);
      lock.Release();
    }
  });
  test::RunInThread(sys.kernel, space, 0, [&] { EXPECT_EQ(counter.Get(0), 100u); });
}

TEST(EventCountTest, AdvanceAndAwait) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  rt::EventCountArray events(zone, "ec", 4);
  sim::SimTime awaited_at = 0;
  sys.kernel.SpawnThread(space, 0, "waiter", [&] {
    events.AwaitAtLeast(2, 1);
    awaited_at = sys.kernel.Now();
  });
  sys.kernel.SpawnThread(space, 1, "advancer", [&] {
    sys.machine.scheduler().Sleep(5 * kMillisecond);
    events.Advance(2);
  });
  sys.kernel.Run();
  EXPECT_GE(awaited_at, 5 * kMillisecond);
  test::RunInThread(sys.kernel, space, 0, [&] { EXPECT_EQ(events.Read(2), 1u); });
}

TEST(BarrierTest, AllArriveBeforeAnyLeaves) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  rt::Barrier barrier(zone, "bar", 4);
  auto flags = rt::SharedArray<uint32_t>::Create(zone, "flags", 4);
  rt::RunOnProcessors(sys.kernel, space, 4, "w", [&](int p) {
    // Stagger arrivals.
    sys.machine.scheduler().Sleep(static_cast<sim::SimTime>(p) * kMillisecond);
    flags.Set(p, 1);
    barrier.Wait();
    // Everyone must observe all flags set after the barrier.
    for (int q = 0; q < 4; ++q) {
      EXPECT_EQ(flags.Get(q), 1u) << "processor " << p << " missed flag " << q;
    }
  });
}

TEST(BarrierTest, ReusableAcrossPhases) {
  TestSystem sys(3);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  rt::Barrier barrier(zone, "bar", 3);
  auto phase_counter = rt::SharedArray<uint32_t>::Create(zone, "pc", 1);
  rt::RunOnProcessors(sys.kernel, space, 3, "w", [&](int p) {
    for (int phase = 0; phase < 3; ++phase) {
      if (p == 0) {
        phase_counter.Set(0, static_cast<uint32_t>(phase));
      }
      barrier.Wait();
      EXPECT_EQ(phase_counter.Get(0), static_cast<uint32_t>(phase));
      barrier.Wait();
    }
  });
}

TEST(RunOnProcessorsTest, NestsInsideAThread) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("s");
  rt::ZoneAllocator zone(&sys.kernel, space);
  auto arr = rt::SharedArray<uint32_t>::Create(zone, "a", 4);
  test::RunInThread(sys.kernel, space, 0, [&] {
    rt::RunOnProcessors(sys.kernel, space, 4, "inner", [&](int p) {
      arr.Set(static_cast<size_t>(p), static_cast<uint32_t>(p + 1));
    });
    for (int p = 0; p < 4; ++p) {
      EXPECT_EQ(arr.Get(static_cast<size_t>(p)), static_cast<uint32_t>(p + 1));
    }
  });
}

// Default-constructed synchronization objects are placeholders (members
// assigned later); using one before assignment must abort with a message
// naming the mistake, not segfault on the null kernel pointer.
TEST(SyncDeathTest, DefaultConstructedSpinLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        rt::SpinLock lock;
        lock.Acquire();
        lock.Release();  // unreachable; balances clang's capability analysis
      },
      "default-constructed rt::SpinLock");
}

TEST(SyncDeathTest, DefaultConstructedEventCountArrayAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        rt::EventCountArray counts;
        counts.Advance(0);
      },
      "default-constructed rt::EventCountArray");
}

}  // namespace
}  // namespace platinum
