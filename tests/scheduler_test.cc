// Unit tests for the virtual-time fiber scheduler.
#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/time.h"

namespace platinum::sim {
namespace {

constexpr SimTime kQuantum = 20 * kMicrosecond;
constexpr uint32_t kStack = 128 * 1024;

TEST(SchedulerTest, RunsSingleFiberToCompletion) {
  Scheduler sched(2, kQuantum, kStack);
  bool ran = false;
  sched.Spawn(0, "solo", [&] {
    sched.Advance(5 * kMicrosecond);
    ran = true;
  });
  sched.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.global_now(), 5 * kMicrosecond);
}

TEST(SchedulerTest, InterleavesByVirtualTime) {
  Scheduler sched(2, kQuantum, kStack);
  std::vector<int> order;
  // Fiber A advances in large steps, B in small ones; with yields between
  // steps, B's events must come first in virtual-time order.
  sched.Spawn(0, "A", [&] {
    for (int i = 0; i < 3; ++i) {
      sched.Advance(100 * kMicrosecond);
      order.push_back(1);
      sched.Yield();
    }
  });
  sched.Spawn(1, "B", [&] {
    for (int i = 0; i < 3; ++i) {
      sched.Advance(10 * kMicrosecond);
      order.push_back(2);
      sched.Yield();
    }
  });
  sched.Run();
  ASSERT_EQ(order.size(), 6u);
  // A (spawned first) runs its first step to the yield at t=100us, after
  // which the scheduler prefers B until B's clock passes A's: the recorded
  // order is A, B, B, B, A, A.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 2, 2, 1, 1}));
}

TEST(SchedulerTest, MaybeYieldHonorsQuantum) {
  Scheduler sched(1, kQuantum, kStack);
  sched.Spawn(0, "f", [&] {
    sched.Advance(kQuantum / 2);
    EXPECT_FALSE(sched.MaybeYield());
    sched.Advance(kQuantum);
    EXPECT_TRUE(sched.MaybeYield());
  });
  sched.Run();
}

TEST(SchedulerTest, SameProcessorFibersSerialize) {
  Scheduler sched(1, kQuantum, kStack);
  // Two fibers on one processor, each consuming 50us of CPU; total elapsed
  // must be at least 100us even though both start at t=0.
  for (int i = 0; i < 2; ++i) {
    std::string name = "f";
    name += std::to_string(i);
    sched.Spawn(0, name, [&] { sched.Advance(50 * kMicrosecond); });
  }
  sched.Run();
  EXPECT_EQ(sched.global_now(), 100 * kMicrosecond);
}

TEST(SchedulerTest, DifferentProcessorsRunInParallel) {
  Scheduler sched(2, kQuantum, kStack);
  for (int i = 0; i < 2; ++i) {
    std::string name = "f";
    name += std::to_string(i);
    sched.Spawn(i, name, [&] { sched.Advance(50 * kMicrosecond); });
  }
  sched.Run();
  EXPECT_EQ(sched.global_now(), 50 * kMicrosecond);
}

TEST(SchedulerTest, SleepReleasesProcessor) {
  Scheduler sched(1, kQuantum, kStack);
  SimTime b_done = 0;
  sched.Spawn(0, "sleeper", [&] { sched.Sleep(1 * kMillisecond); });
  sched.Spawn(0, "worker", [&] {
    sched.Advance(100 * kMicrosecond);
    b_done = sched.now();
  });
  sched.Run();
  // The worker must not wait for the sleeper's wakeup.
  EXPECT_EQ(b_done, 100 * kMicrosecond);
  EXPECT_EQ(sched.global_now(), 1 * kMillisecond);
}

TEST(SchedulerTest, BlockAndWake) {
  Scheduler sched(2, kQuantum, kStack);
  Fiber* blocked = nullptr;
  SimTime resumed_at = 0;
  blocked = sched.Spawn(0, "blocked", [&] {
    sched.Block();
    resumed_at = sched.now();
  });
  sched.Spawn(1, "waker", [&] {
    sched.Advance(300 * kMicrosecond);
    sched.Wake(blocked, sched.now());
  });
  sched.Run();
  EXPECT_EQ(resumed_at, 300 * kMicrosecond);
}

TEST(SchedulerTest, JoinAdvancesJoinerClock) {
  Scheduler sched(2, kQuantum, kStack);
  Fiber* worker = sched.Spawn(0, "worker", [&] { sched.Advance(500 * kMicrosecond); });
  SimTime join_time = 0;
  sched.Spawn(1, "joiner", [&] {
    sched.Join(worker);
    join_time = sched.now();
  });
  sched.Run();
  EXPECT_EQ(join_time, 500 * kMicrosecond);
}

TEST(SchedulerTest, JoinFinishedFiberReturnsImmediately) {
  Scheduler sched(2, kQuantum, kStack);
  Fiber* worker = sched.Spawn(0, "worker", [&] { sched.Advance(10 * kMicrosecond); });
  sched.Spawn(1, "late-joiner", [&] {
    sched.Advance(1 * kMillisecond);
    sched.Join(worker);
    EXPECT_EQ(sched.now(), 1 * kMillisecond);  // no extra wait
  });
  sched.Run();
}

TEST(SchedulerTest, DaemonDoesNotKeepRunAlive) {
  Scheduler sched(1, kQuantum, kStack);
  int daemon_iterations = 0;
  sched.Spawn(
      0, "daemon",
      [&] {
        for (;;) {
          sched.Sleep(10 * kMicrosecond);
          ++daemon_iterations;
        }
      },
      /*daemon=*/true);
  sched.Spawn(0, "app", [&] { sched.Sleep(35 * kMicrosecond); });
  sched.Run();
  // The daemon ticked while the app was alive, then Run() stopped.
  EXPECT_GE(daemon_iterations, 2);
  EXPECT_LE(daemon_iterations, 4);
}

TEST(SchedulerTest, InterruptCostChargedToNextOccupant) {
  Scheduler sched(1, kQuantum, kStack);
  sched.AddInterruptCost(0, 7 * kMicrosecond);
  sched.Spawn(0, "victim", [&] { EXPECT_EQ(sched.now(), 7 * kMicrosecond); });
  sched.Run();
}

TEST(SchedulerTest, MigrateCurrentMovesProcessor) {
  Scheduler sched(2, kQuantum, kStack);
  // Processor 1 is busy until t=200us.
  sched.Spawn(1, "busy", [&] { sched.Advance(200 * kMicrosecond); });
  sched.Spawn(0, "migrant", [&] {
    sched.Advance(50 * kMicrosecond);
    sched.MigrateCurrent(1);
    EXPECT_EQ(sched.current_processor(), 1);
    // Arrival waits for the busy fiber to release the node.
    EXPECT_GE(sched.now(), 200 * kMicrosecond);
  });
  sched.Run();
}

TEST(SchedulerTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Scheduler sched(4, kQuantum, kStack);
    std::vector<uint32_t> order;
    for (int p = 0; p < 4; ++p) {
      sched.Spawn(p, "f", [&, p] {
        for (int i = 0; i < 10; ++i) {
          sched.Advance((p + 1) * 7 * kMicrosecond);
          order.push_back(static_cast<uint32_t>(p));
          sched.Yield();
        }
      });
    }
    sched.Run();
    return std::pair(order, sched.global_now());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SchedulerDeathTest, DeadlockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler sched(1, kQuantum, kStack);
        sched.Spawn(0, "stuck", [&] { sched.Block(); });
        sched.Run();
      },
      "deadlock");
}

TEST(SchedulerTest, SpawnFromFiberStartsAtSpawnerClock) {
  Scheduler sched(2, kQuantum, kStack);
  SimTime child_start = 0;
  sched.Spawn(0, "parent", [&] {
    sched.Advance(123 * kMicrosecond);
    sched.Spawn(1, "child", [&] { child_start = sched.now(); });
  });
  sched.Run();
  EXPECT_EQ(child_start, 123 * kMicrosecond);
}

}  // namespace
}  // namespace platinum::sim
