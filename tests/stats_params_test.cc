// Small units: machine stats arithmetic/formatting and parameter validation.
#include <gtest/gtest.h>

#include "src/sim/params.h"
#include "src/sim/stats.h"

namespace platinum::sim {
namespace {

TEST(StatsTest, DifferenceIsCounterwise) {
  MachineStats a;
  a.local_reads = 10;
  a.remote_writes = 7;
  a.faults = 3;
  a.module_wait_ns = 5000;
  MachineStats b;
  b.local_reads = 4;
  b.remote_writes = 2;
  b.faults = 1;
  b.module_wait_ns = 1000;
  MachineStats d = a - b;
  EXPECT_EQ(d.local_reads, 6u);
  EXPECT_EQ(d.remote_writes, 5u);
  EXPECT_EQ(d.faults, 2u);
  EXPECT_EQ(d.module_wait_ns, 4000u);
}

TEST(StatsTest, AggregatesAndFormats) {
  MachineStats s;
  s.local_reads = 1;
  s.local_writes = 2;
  s.remote_reads = 3;
  s.remote_writes = 4;
  EXPECT_EQ(s.total_references(), 10u);
  EXPECT_EQ(s.remote_references(), 7u);
  std::string text = s.ToString();
  EXPECT_NE(text.find("references"), std::string::npos);
  EXPECT_NE(text.find("shootdowns"), std::string::npos);
}

TEST(ParamsTest, ButterflyDefaultsAreThePapersNumbers) {
  MachineParams params = ButterflyPlusParams();
  EXPECT_EQ(params.num_processors, 16);
  EXPECT_EQ(params.page_size_bytes, 4096u);
  EXPECT_EQ(params.local_read_ns, 320u);
  EXPECT_EQ(params.remote_read_ns, 5000u);
  // 1024 words at the block-copy rate must give the paper's 1.11 ms page copy.
  EXPECT_NEAR(ToMilliseconds(params.words_per_page() * params.block_copy_word_ns), 1.11, 0.005);
  EXPECT_EQ(params.t1_freeze_window_ns, 10 * kMillisecond);
  EXPECT_EQ(params.t2_defrost_period_ns, 1 * kSecond);
  params.Validate();  // must not abort
}

TEST(ParamsDeathTest, RejectsBadShapes) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MachineParams params = ButterflyPlusParams();
  params.num_processors = 0;
  EXPECT_DEATH(params.Validate(), "");
  params = ButterflyPlusParams();
  params.num_processors = kMaxProcessors + 1;
  EXPECT_DEATH(params.Validate(), "");
  params = ButterflyPlusParams();
  params.page_size_bytes = 3000;  // not a power of two
  EXPECT_DEATH(params.Validate(), "power");
  params = ButterflyPlusParams();
  params.atc_entries = 48;  // not a power of two
  EXPECT_DEATH(params.Validate(), "power");
  params = ButterflyPlusParams();
  params.defrost_processor = 16;  // out of range
  EXPECT_DEATH(params.Validate(), "");
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(ToMilliseconds(1500 * kMicrosecond), 1.5);
  EXPECT_EQ(ToMicroseconds(2 * kMillisecond), 2000.0);
  EXPECT_EQ(ToSeconds(500 * kMillisecond), 0.5);
}

}  // namespace
}  // namespace platinum::sim
