// Shared helpers for PLATINUM tests.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <functional>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/sim/machine.h"

namespace platinum::test {

// A machine + kernel pair with test-friendly defaults.
struct TestSystem {
  explicit TestSystem(int processors = 4, kernel::KernelOptions options = {})
      : machine(sim::ButterflyPlusParams(processors)),
        kernel(&machine, std::move(options)) {}

  TestSystem(const sim::MachineParams& params, kernel::KernelOptions options = {})
      : machine(params), kernel(&machine, std::move(options)) {}

  sim::Machine machine;
  kernel::Kernel kernel;
};

// Runs `body` in a single kernel thread on `processor` and drives the machine
// to completion.
inline void RunInThread(kernel::Kernel& kernel, vm::AddressSpace* space, int processor,
                        std::function<void()> body) {
  kernel.SpawnThread(space, processor, "test", std::move(body));
  kernel.Run();
}

}  // namespace platinum::test

#endif  // TESTS_TEST_UTIL_H_
