// Tests for the shared radix trie (src/apps/trie.h): single-thread
// correctness against a reference map, deep collision chains, leaf-slot
// recycling under churn, owner-sharded multi-processor runs under the race
// detector, determinism of the serving checksum across reruns and sweep
// workers, and the directory-vs-tardis protocol differential.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/trie.h"
#include "src/apps/workloads.h"
#include "src/check/race_detector.h"
#include "src/kernel/kernel.h"
#include "src/load/driver.h"
#include "src/runtime/parallel.h"
#include "src/runtime/zone_allocator.h"
#include "tests/test_util.h"

namespace platinum {
namespace {

using apps::SharedTrie;
using test::TestSystem;

// Walks the trie (simulated reads) and checks it holds exactly `expect`,
// in ascending TrieVisitRank order. Call from a simulated thread.
void ExpectContents(SharedTrie& trie, const std::map<uint32_t, uint32_t>& expect) {
  std::vector<std::pair<uint32_t, uint32_t>> want(expect.begin(), expect.end());
  std::sort(want.begin(), want.end(), [](const auto& a, const auto& b) {
    return apps::TrieVisitRank(a.first) < apps::TrieVisitRank(b.first);
  });
  std::vector<std::pair<uint32_t, uint32_t>> got;
  trie.Visit([&](uint32_t key, uint32_t value) { got.emplace_back(key, value); });
  EXPECT_EQ(got, want);
}

TEST(TrieTest, SingleThreadMatchesReferenceMap) {
  TestSystem sys(4);
  auto* space = sys.kernel.CreateAddressSpace("trie");
  rt::ZoneAllocator zone(&sys.kernel, space);
  SharedTrie::Options options;
  options.max_keys = 1u << 10;
  SharedTrie trie = SharedTrie::Create(zone, options);

  std::map<uint32_t, uint32_t> ref;
  test::RunInThread(sys.kernel, space, 0, [&] {
    for (uint64_t i = 0; i < 2000; ++i) {
      uint64_t r = apps::Mix64(0xABCDu + i);
      uint32_t key = static_cast<uint32_t>(r) & (options.max_keys - 1);
      uint32_t kind = static_cast<uint32_t>(r >> 32) % 4;
      if (kind < 2) {  // 50% insert/update
        uint32_t value = static_cast<uint32_t>(r >> 8);
        bool fresh = trie.Insert(key, value);
        EXPECT_EQ(fresh, ref.find(key) == ref.end());
        ref[key] = value;
      } else if (kind == 2) {  // 25% erase
        EXPECT_EQ(trie.Erase(key), ref.erase(key) > 0);
      } else {  // 25% lookup
        uint32_t value = 0;
        auto it = ref.find(key);
        EXPECT_EQ(trie.Lookup(key, &value), it != ref.end());
        if (it != ref.end()) {
          EXPECT_EQ(value, it->second);
        }
      }
    }
    EXPECT_EQ(trie.CountEntries(), ref.size());
    ExpectContents(trie, ref);
  });
}

TEST(TrieTest, DeepCollisionChains) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("trie");
  rt::ZoneAllocator zone(&sys.kernel, space);
  SharedTrie::Options options;
  options.max_keys = 1u << 4;  // tiny universe, but full-width keys below
  SharedTrie trie = SharedTrie::Create(zone, options);

  test::RunInThread(sys.kernel, space, 0, [&] {
    // Chunks are consumed low-nibble-first, so keys differing only in the
    // top nibble share all 7 lower chunks: inserting both forces a chain to
    // the last level.
    const uint32_t a = 0x00000003;
    const uint32_t b = 0x70000003;
    const uint32_t c = 0xF0000003;
    ASSERT_TRUE(trie.Insert(a, 100));
    ASSERT_TRUE(trie.Insert(b, 200));
    ASSERT_TRUE(trie.Insert(c, 300));
    uint32_t value = 0;
    EXPECT_TRUE(trie.Lookup(a, &value));
    EXPECT_EQ(value, 100u);
    EXPECT_TRUE(trie.Lookup(b, &value));
    EXPECT_EQ(value, 200u);
    EXPECT_TRUE(trie.Lookup(c, &value));
    EXPECT_EQ(value, 300u);
    // Erase the middle sibling; the others survive the unlink.
    EXPECT_TRUE(trie.Erase(b));
    EXPECT_FALSE(trie.Lookup(b, &value));
    EXPECT_TRUE(trie.Lookup(a, &value));
    EXPECT_TRUE(trie.Lookup(c, &value));
    EXPECT_EQ(trie.CountEntries(), 2u);
  });
  // The chain reached the deepest level (levels are 0-based).
  EXPECT_EQ(trie.host_stats().max_depth, 7u);
}

TEST(TrieTest, ChurnRecyclesLeafSlotsWithoutAliasing) {
  TestSystem sys(2);
  auto* space = sys.kernel.CreateAddressSpace("trie");
  rt::ZoneAllocator zone(&sys.kernel, space);
  SharedTrie::Options options;
  options.max_keys = 1u << 8;
  SharedTrie trie = SharedTrie::Create(zone, options);

  test::RunInThread(sys.kernel, space, 0, [&] {
    std::map<uint32_t, uint32_t> ref;
    for (int round = 0; round < 8; ++round) {
      for (uint32_t key = 0; key < options.max_keys; key += 2) {
        uint32_t value = static_cast<uint32_t>(apps::Mix64(round * 1000 + key));
        trie.Insert(key, value);
        ref[key] = value;
      }
      for (uint32_t key = 0; key < options.max_keys; key += 4) {
        trie.Erase(key);
        ref.erase(key);
      }
    }
    EXPECT_EQ(trie.CountEntries(), ref.size());
    ExpectContents(trie, ref);
  });
  const SharedTrie::HostStats& stats = trie.host_stats();
  // Churn must be served from the freelist, not fresh slots: the pool holds
  // max_keys leaves while each round frees and re-inserts a quarter of them.
  EXPECT_GT(stats.leaf_reused, 0u);
  EXPECT_LE(stats.leaf_allocated, options.max_keys);
}

TEST(TrieTest, OwnerShardedWritersRaceClean) {
  TestSystem sys(8);
  check::RaceDetector& detector = sys.kernel.EnableRaceDetection();
  auto* space = sys.kernel.CreateAddressSpace("trie");
  rt::ZoneAllocator zone(&sys.kernel, space);
  SharedTrie::Options options;
  options.max_keys = 1u << 10;
  SharedTrie trie = SharedTrie::Create(zone, options);

  const int kWorkers = 8;
  const uint32_t kKeys = 512;
  rt::RunOnProcessors(sys.kernel, space, kWorkers, "trie-worker", [&](int p) {
    // Writes sharded by key ownership; reads range over everything.
    for (uint32_t key = static_cast<uint32_t>(p); key < kKeys;
         key += static_cast<uint32_t>(kWorkers)) {
      trie.Insert(key, key * 3 + 1);
    }
    for (uint32_t key = static_cast<uint32_t>(p); key < kKeys;
         key += static_cast<uint32_t>(kWorkers) * 2) {
      trie.Erase(key);
    }
    uint32_t value = 0;
    for (uint32_t key = 0; key < kKeys; key += 7) {
      trie.Lookup(key, &value);  // concurrent readers against foreign writers
    }
  });

  std::map<uint32_t, uint32_t> ref;
  for (uint32_t key = 0; key < kKeys; ++key) {
    ref[key] = key * 3 + 1;
  }
  for (uint32_t p = 0; p < static_cast<uint32_t>(kWorkers); ++p) {
    for (uint32_t key = p; key < kKeys; key += static_cast<uint32_t>(kWorkers) * 2) {
      ref.erase(key);
    }
  }
  test::RunInThread(sys.kernel, space, 0, [&] {
    EXPECT_EQ(trie.CountEntries(), ref.size());
    ExpectContents(trie, ref);
  });
  EXPECT_EQ(detector.races_found(), 0u);
}

// One small serve; returns the content checksum. Each call builds a fresh
// machine, so calls are independent and shardable across host threads.
uint64_t ServeChecksum(const char* protocol) {
  kernel::KernelOptions options;
  options.protocol = protocol;
  TestSystem sys(8, std::move(options));
  load::DriverConfig config;
  config.spec.keys = 1u << 10;
  config.spec.ops = 20000;
  config.procs = 8;
  load::ServeResult result = load::RunTrieServe(sys.kernel, config);
  EXPECT_TRUE(result.verified);
  return result.checksum;
}

TEST(TrieTest, ServeChecksumDeterministicAcrossRerunsAndWorkers) {
  // Four identical serves through a 4-worker SweepRunner: the harness
  // threads and any rerun must produce the same contents (the tier-1
  // determinism property, on the serving workload).
  bench::SweepRunner runner(4);
  std::vector<uint64_t> sums =
      runner.Map(4, [&](int) -> uint64_t { return ServeChecksum("directory"); });
  ASSERT_EQ(sums.size(), 4u);
  for (uint64_t sum : sums) {
    EXPECT_EQ(sum, sums[0]);
  }
}

TEST(TrieTest, DirectoryAndTardisConverge) {
  // Owner-sharded write streams make the final contents a pure function of
  // the script, so the two protocols must agree bit-for-bit even though
  // every interleaving differs.
  EXPECT_EQ(ServeChecksum("directory"), ServeChecksum("tardis"));
}

}  // namespace
}  // namespace platinum
