// Unit tests for the Sequent-style UMA baseline machine: cache behaviour,
// write-through snooping, bus contention.
#include "src/uma/uma_machine.h"

#include <gtest/gtest.h>

#include "src/uma/cache.h"

namespace platinum::uma {
namespace {

TEST(CacheTest, FillContainsInvalidate) {
  Cache cache(8 * 1024, 16);
  EXPECT_FALSE(cache.Contains(100));
  cache.Fill(100);
  EXPECT_TRUE(cache.Contains(100));
  // Same 4-word line.
  EXPECT_TRUE(cache.Contains(101));
  EXPECT_FALSE(cache.Contains(104));
  EXPECT_TRUE(cache.Invalidate(102));
  EXPECT_FALSE(cache.Contains(100));
  EXPECT_FALSE(cache.Invalidate(100));
}

TEST(CacheTest, DirectMappedConflicts) {
  Cache cache(8 * 1024, 16);  // 512 lines of 4 words
  cache.Fill(0);
  cache.Fill(512 * 4);  // maps to the same line index
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(512 * 4));
}

class UmaMachineTest : public ::testing::Test {
 protected:
  UmaMachineTest() {
    params_.num_processors = 4;
    machine_ = std::make_unique<UmaMachine>(params_);
  }

  void RunOn(int processor, std::function<void()> body) {
    machine_->scheduler().Spawn(processor, "t", std::move(body));
    machine_->scheduler().Run();
  }

  UmaParams params_;
  std::unique_ptr<UmaMachine> machine_;
};

TEST_F(UmaMachineTest, ReadMissThenHit) {
  size_t base = machine_->AllocWords(16);
  RunOn(0, [&] {
    machine_->Write(base, 42);
    sim::SimTime t0 = machine_->scheduler().now();
    EXPECT_EQ(machine_->Read(base), 42u);  // miss (write-no-allocate)
    sim::SimTime miss = machine_->scheduler().now() - t0;
    t0 = machine_->scheduler().now();
    EXPECT_EQ(machine_->Read(base), 42u);  // hit
    sim::SimTime hit = machine_->scheduler().now() - t0;
    EXPECT_GT(miss, hit);
    EXPECT_EQ(hit, params_.cache_hit_ns);
  });
  EXPECT_EQ(machine_->stats().read_misses, 1u);
  EXPECT_GE(machine_->stats().cache_hits, 1u);
}

TEST_F(UmaMachineTest, WriteInvalidatesOtherCaches) {
  size_t base = machine_->AllocWords(16);
  machine_->scheduler().Spawn(0, "reader", [&] {
    machine_->Read(base);                                 // fill own cache
    machine_->scheduler().Sleep(10 * sim::kMicrosecond);  // let the writer go
    sim::SimTime t0 = machine_->scheduler().now();
    EXPECT_EQ(machine_->Read(base), 7u);  // coherent: sees the new value
    EXPECT_GT(machine_->scheduler().now() - t0, params_.cache_hit_ns);  // re-fetch
  });
  machine_->scheduler().Spawn(1, "writer", [&] {
    machine_->scheduler().Sleep(5 * sim::kMicrosecond);
    machine_->Write(base, 7);
  });
  machine_->scheduler().Run();
  EXPECT_GE(machine_->stats().invalidations, 1u);
}

TEST_F(UmaMachineTest, FetchAddIsAtomicAndCoherent) {
  size_t base = machine_->AllocWords(1);
  for (int p = 0; p < 4; ++p) {
    machine_->scheduler().Spawn(p, "inc", [&] {
      for (int i = 0; i < 20; ++i) {
        machine_->FetchAdd(base, 1);
      }
    });
  }
  machine_->scheduler().Run();
  machine_->scheduler().Spawn(0, "check", [&] { EXPECT_EQ(machine_->Read(base), 80u); });
  machine_->scheduler().Run();
}

TEST_F(UmaMachineTest, BusContentionSerializesMisses) {
  size_t base = machine_->AllocWords(4096);
  // Two processors stream reads with no cache reuse: the second's misses
  // queue behind the first's on the shared bus.
  for (int p = 0; p < 2; ++p) {
    machine_->scheduler().Spawn(p, "stream", [&, p] {
      for (size_t i = 0; i < 256; ++i) {
        machine_->Read(base + static_cast<size_t>(p) * 2048 + i * 4);  // one miss per line
      }
    });
  }
  machine_->scheduler().Run();
  EXPECT_GT(machine_->stats().bus_wait_ns, sim::SimTime{0});
}

TEST_F(UmaMachineTest, AllocationIsExclusive) {
  size_t a = machine_->AllocWords(100);
  size_t b = machine_->AllocWords(100);
  EXPECT_GE(b, a + 100);
}

TEST(UmaArrayTest, GetSetRoundTrip) {
  UmaParams params;
  params.num_processors = 2;
  UmaMachine machine(params);
  auto array = UmaArray::Create(machine, 8);
  machine.scheduler().Spawn(0, "t", [&] {
    array.Set(3, 99);
    EXPECT_EQ(array.Get(3), 99u);
    EXPECT_EQ(array.FetchAdd(3, 1), 99u);
    EXPECT_EQ(array.Get(3), 100u);
  });
  machine.scheduler().Run();
}

}  // namespace
}  // namespace platinum::uma
