// Unit tests for the virtual memory layer: memory objects and address-space
// bindings.
#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/memory_object.h"
#include "tests/test_util.h"

namespace platinum::vm {
namespace {

TEST(MemoryObjectTest, CpageAssignment) {
  MemoryObject object(7, "obj", 3);
  EXPECT_EQ(object.id(), 7u);
  EXPECT_EQ(object.name(), "obj");
  EXPECT_EQ(object.num_pages(), 3u);
  object.set_cpage(0, 100);
  object.set_cpage(2, 102);
  EXPECT_EQ(object.cpage(0), 100u);
  EXPECT_EQ(object.cpage(2), 102u);
}

TEST(MemoryObjectDeathTest, DoubleAssignmentAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MemoryObject object(0, "obj", 1);
  object.set_cpage(0, 1);
  EXPECT_DEATH(object.set_cpage(0, 2), "already");
}

TEST(AddressSpaceTest, FindBinding) {
  MemoryObject object(0, "obj", 8);
  AddressSpace space(0, "space", 64);
  space.AddBinding(Binding{&object, 0, 4, 10, hw::Rights::kReadWrite});
  space.AddBinding(Binding{&object, 4, 4, 30, hw::Rights::kRead});

  EXPECT_EQ(space.FindBinding(9), nullptr);
  const Binding* first = space.FindBinding(10);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rights, hw::Rights::kReadWrite);
  EXPECT_EQ(space.FindBinding(13), first);
  EXPECT_EQ(space.FindBinding(14), nullptr);
  const Binding* second = space.FindBinding(33);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->object_page, 4u);
}

TEST(AddressSpaceDeathTest, OverlappingBindingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MemoryObject object(0, "obj", 8);
  AddressSpace space(0, "space", 64);
  space.AddBinding(Binding{&object, 0, 4, 10, hw::Rights::kRead});
  EXPECT_DEATH(space.AddBinding(Binding{&object, 4, 4, 12, hw::Rights::kRead}), "overlap");
}

TEST(AddressSpaceDeathTest, OutOfRangeBindingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MemoryObject object(0, "obj", 8);
  AddressSpace space(0, "space", 16);
  EXPECT_DEATH(space.AddBinding(Binding{&object, 0, 8, 12, hw::Rights::kRead}), "");
  EXPECT_DEATH(space.AddBinding(Binding{&object, 6, 4, 0, hw::Rights::kRead}), "");
}

// Integration: the same object mapped at different addresses and rights in
// two spaces (the paper: "neither the virtual address range nor the access
// rights need be the same in every address space").
TEST(VmIntegrationTest, ObjectMappedDifferentlyPerSpace) {
  test::TestSystem sys(2);
  auto* object = sys.kernel.CreateMemoryObject("shared", 2);
  auto* space_a = sys.kernel.CreateAddressSpace("a");
  auto* space_b = sys.kernel.CreateAddressSpace("b");
  sys.kernel.Map(space_a, object, 0, 2, 100, hw::Rights::kReadWrite);
  sys.kernel.Map(space_b, object, 0, 2, 500, hw::Rights::kRead);

  uint32_t va_a = 100 * sys.kernel.page_size();
  uint32_t va_b = 500 * sys.kernel.page_size();
  sys.kernel.SpawnThread(space_a, 0, "w", [&] { sys.kernel.WriteWord(space_a, va_a, 5); });
  sys.kernel.SpawnThread(space_b, 1, "r", [&] {
    sys.machine.scheduler().Sleep(2 * sim::kMillisecond);
    EXPECT_EQ(sys.kernel.ReadWord(space_b, va_b), 5u);
    // space_b's mapping is read-only: a write access must be refused.
    auto result = sys.kernel.memory().Access(space_b->id(), 500, 0, sim::AccessKind::kWrite, 9);
    EXPECT_EQ(result.outcome, mem::AccessOutcome::kProtection);
  });
  sys.kernel.Run();
  sys.kernel.memory().CheckInvariants();
}

// Partial-object mappings compose correctly.
TEST(VmIntegrationTest, PartialObjectMapping) {
  test::TestSystem sys(2);
  auto* object = sys.kernel.CreateMemoryObject("big", 8);
  auto* space = sys.kernel.CreateAddressSpace("s");
  // Map object pages [2,5) at vpn 40.
  sys.kernel.Map(space, object, 2, 3, 40, hw::Rights::kReadWrite);
  test::RunInThread(sys.kernel, space, 0, [&] {
    sys.kernel.WriteWord(space, 40 * sys.kernel.page_size(), 11);
  });
  // The write landed on object page 2's coherent page.
  const mem::Cpage& page = sys.kernel.memory().cpages().at(object->cpage(2));
  EXPECT_EQ(page.state(), mem::CpageState::kModified);
  EXPECT_EQ(sys.kernel.memory().cpages().at(object->cpage(0)).state(),
            mem::CpageState::kEmpty);
}

}  // namespace
}  // namespace platinum::vm
