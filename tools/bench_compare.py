#!/usr/bin/env python3
"""Compare two platinum-bench-report-v1 documents and gate on regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--max-regression FRAC]
                     [--allow-new BENCH ...]
    bench_compare.py --selftest

The gate enforces two properties, mirroring docs/PERFORMANCE.md:

  * throughput: candidate accesses_per_sec (totals and per-bench, for every
    bench that reports it in both files) must be at least
    baseline * (1 - max_regression). Host throughput is noisy, so the
    threshold is a fraction, not equality.
  * simulated time: sim_seconds must match EXACTLY (totals and per-bench).
    The simulator is deterministic; any sim_seconds drift means simulated
    behavior changed, which is a different bug than a slow host.

A degenerate comparison is a failure, not a silent pass: a bench present in
only one report, a metric reported on only one side of a shared bench, or a
non-positive accesses_per_sec all fail the gate — each of those means the
reports do not actually cover each other. The one sanctioned asymmetry is
--allow-new: benches named there may appear only in the candidate (a PR that
adds a bench still gates every pre-existing bench), and their contribution is
subtracted from the candidate's totals before the totals are compared, so the
exact-sim-seconds property keeps holding over the shared bench set.

The two reports must describe the same configuration (host.small/host.full);
comparing a small run against a full run is a usage error (exit 2), as are
an unreadable file, malformed JSON, and an unknown schema.

Exit codes: 0 ok, 1 regression or sim mismatch, 2 usage/config error.

--selftest verifies the gate actually fires: a synthetic 2x throughput
regression and a synthetic sim_seconds drift must both fail, an identical
pair must pass, and each degenerate-input case above must be rejected.
"""

import argparse
import copy
import json
import os
import sys
import tempfile

DEFAULT_MAX_REGRESSION = 0.10


def die(msg):
    print(msg, file=sys.stderr)
    raise SystemExit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"error: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        die(f"error: {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != "platinum-bench-report-v1":
        die(f"error: {path} is not a platinum-bench-report-v1 document")
    return doc


def totals_without(doc, names):
    """The report's totals with the named benches' contributions removed.

    Sums (sim_seconds, references, host_seconds) are subtracted directly;
    accesses_per_sec is re-derived from the adjusted sums. Rounding mirrors
    bench_report.py so an unchanged shared bench set reproduces the baseline
    totals bit-for-bit.
    """
    totals = dict(doc.get("totals", {}))
    benches = doc.get("benches", {})
    removed = [benches[n] for n in names if n in benches]
    if not removed:
        return totals
    for entry in removed:
        if "sim_seconds" in totals and "sim_seconds" in entry:
            totals["sim_seconds"] = round(totals["sim_seconds"] - entry["sim_seconds"], 3)
        if "references" in totals and "references" in entry:
            totals["references"] -= entry["references"]
        if "host_seconds" in totals and "host_seconds" in entry:
            totals["host_seconds"] = round(totals["host_seconds"] - entry["host_seconds"], 3)
    if "accesses_per_sec" in totals:
        host = totals.get("host_seconds", 0)
        refs = totals.get("references", 0)
        totals["accesses_per_sec"] = round(refs / host) if host > 0 else None
    return totals


def compare(base, cand, max_regression, allow_new=frozenset()):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    floor = 1.0 - max_regression

    def check_throughput(label, b, c):
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)) \
                or b <= 0 or c <= 0:
            failures.append(
                f"{label}: non-positive or non-numeric accesses_per_sec "
                f"({b!r} -> {c!r}); the report is malformed"
            )
            return
        if c < b * floor:
            failures.append(
                f"{label}: accesses_per_sec regressed {b:.0f} -> {c:.0f} "
                f"({c / b - 1.0:+.1%}, allowed {-max_regression:.0%})"
            )

    def check_sim(label, b, c):
        if b != c:
            failures.append(f"{label}: sim_seconds changed {b!r} -> {c!r} (must match exactly)")

    def check_pair(label, b, c):
        for key, check in (("accesses_per_sec", check_throughput),
                           ("sim_seconds", check_sim)):
            if (key in b) != (key in c):
                side = "baseline" if key in b else "candidate"
                failures.append(f"{label}: {key} reported only by the {side}")
            elif key in b:
                check(label, b[key], c[key])

    base_names = set(base.get("benches", {}))
    cand_names = set(cand.get("benches", {}))
    # Only genuinely-new benches are carved out of the candidate's totals; an
    # --allow-new name that exists in both reports is compared normally.
    check_pair("totals", base.get("totals", {}),
               totals_without(cand, set(allow_new) & (cand_names - base_names)))

    for name in sorted(base_names - cand_names):
        failures.append(f"{name}: present only in the baseline (bench disappeared)")
    for name in sorted(cand_names - base_names):
        if name in allow_new:
            continue
        failures.append(f"{name}: present only in the candidate (no baseline to compare)")
    for name in sorted(base_names & cand_names):
        check_pair(name, base["benches"][name], cand["benches"][name])
    return failures


def config_mismatch(base, cand):
    bh, ch = base.get("host", {}), cand.get("host", {})
    for key in ("small", "full"):
        if bh.get(key) != ch.get(key):
            return f"host.{key} differs ({bh.get(key)!r} vs {ch.get(key)!r})"
    return None


def expect_load_rejects(path, why):
    try:
        load(path)
    except SystemExit as e:
        if e.code == 2:
            return True
        print(f"selftest FAILED: {why} exited {e.code}, not 2")
        return False
    print(f"selftest FAILED: {why} was accepted")
    return False


def selftest():
    base = {
        "schema": "platinum-bench-report-v1",
        "host": {"small": False, "full": False},
        "benches": {
            "abl_policy": {"accesses_per_sec": 4.0e6, "sim_seconds": 10.0},
            "lat_faults": {"host_seconds": 0.5},
        },
        "totals": {"accesses_per_sec": 4.0e6, "sim_seconds": 10.0},
    }

    identical = copy.deepcopy(base)
    if compare(base, identical, DEFAULT_MAX_REGRESSION):
        print("selftest FAILED: identical reports did not pass")
        return 1

    slow = copy.deepcopy(base)
    slow["totals"]["accesses_per_sec"] *= 0.5
    slow["benches"]["abl_policy"]["accesses_per_sec"] *= 0.5
    failures = compare(base, slow, DEFAULT_MAX_REGRESSION)
    if len(failures) != 2:
        print(f"selftest FAILED: 2x throughput regression not caught ({failures})")
        return 1

    drift = copy.deepcopy(base)
    drift["totals"]["sim_seconds"] += 1e-6
    failures = compare(base, drift, DEFAULT_MAX_REGRESSION)
    if not any("sim_seconds" in f for f in failures):
        print(f"selftest FAILED: sim_seconds drift not caught ({failures})")
        return 1

    borderline = copy.deepcopy(base)
    borderline["totals"]["accesses_per_sec"] *= 0.95
    if compare(base, borderline, DEFAULT_MAX_REGRESSION):
        print("selftest FAILED: -5% flagged at a 10% threshold")
        return 1

    dropped = copy.deepcopy(base)
    del dropped["benches"]["lat_faults"]
    if not any("only in the baseline" in f
               for f in compare(base, dropped, DEFAULT_MAX_REGRESSION)):
        print("selftest FAILED: disappeared bench not caught")
        return 1
    if not any("only in the candidate" in f
               for f in compare(dropped, base, DEFAULT_MAX_REGRESSION)):
        print("selftest FAILED: baseline-less bench not caught")
        return 1

    # --allow-new: an added bench passes when sanctioned (totals re-derived
    # over the shared set), still fails when it is not.
    grown = copy.deepcopy(base)
    grown["benches"]["abl_new"] = {
        "accesses_per_sec": 1.0e6,
        "sim_seconds": 3.0,
        "references": 3_000_000,
        "host_seconds": 3.0,
    }
    grown["totals"] = {
        "accesses_per_sec": 1.0e6,  # recomputed below from the new sums
        "sim_seconds": round(base["totals"]["sim_seconds"] + 3.0, 3),
    }
    base["totals"]["references"] = 12_000_000
    base["totals"]["host_seconds"] = 3.0
    grown["totals"]["references"] = 15_000_000
    grown["totals"]["host_seconds"] = 6.0
    base["totals"]["accesses_per_sec"] = round(12_000_000 / 3.0)
    grown["totals"]["accesses_per_sec"] = round(15_000_000 / 6.0)
    if compare(base, grown, DEFAULT_MAX_REGRESSION, allow_new={"abl_new"}):
        print(
            f"selftest FAILED: sanctioned new bench rejected "
            f"({compare(base, grown, DEFAULT_MAX_REGRESSION, allow_new={'abl_new'})})"
        )
        return 1
    if not any("only in the candidate" in f
               for f in compare(base, grown, DEFAULT_MAX_REGRESSION)):
        print("selftest FAILED: unsanctioned new bench accepted")
        return 1
    del base["totals"]["references"]
    del base["totals"]["host_seconds"]
    base["totals"]["accesses_per_sec"] = 4.0e6

    silent = copy.deepcopy(base)
    del silent["benches"]["abl_policy"]["accesses_per_sec"]
    if not any("reported only by the baseline" in f
               for f in compare(base, silent, DEFAULT_MAX_REGRESSION)):
        print("selftest FAILED: vanished accesses_per_sec not caught")
        return 1

    zero = copy.deepcopy(base)
    zero["benches"]["abl_policy"]["accesses_per_sec"] = 0.0
    if not any("non-positive" in f
               for f in compare(base, zero, DEFAULT_MAX_REGRESSION)):
        print("selftest FAILED: zero accesses_per_sec not caught")
        return 1
    if not any("non-positive" in f
               for f in compare(zero, base, DEFAULT_MAX_REGRESSION)):
        print("selftest FAILED: zero baseline accesses_per_sec not caught")
        return 1

    # Unreadable / malformed / mis-schema'd inputs must die with exit 2 (the
    # stderr lines below are the rejections under test, not real errors).
    with tempfile.TemporaryDirectory() as tmp:
        malformed = os.path.join(tmp, "malformed.json")
        with open(malformed, "w") as f:
            f.write("{not json")
        wrong = os.path.join(tmp, "wrong_schema.json")
        with open(wrong, "w") as f:
            json.dump({"schema": "not-a-bench-report"}, f)
        for path, why in ((malformed, "malformed JSON"),
                          (wrong, "unknown schema"),
                          (os.path.join(tmp, "absent.json"), "missing file")):
            if not expect_load_rejects(path, why):
                return 1

    print("selftest OK: gate fires on injected regression, sim drift, and "
          "degenerate reports")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_PR*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_PR*.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional accesses_per_sec drop (default %(default)s)",
    )
    parser.add_argument(
        "--allow-new",
        nargs="*",
        default=[],
        metavar="BENCH",
        help="benches allowed to exist only in the candidate (their totals "
             "contribution is subtracted before comparing)",
    )
    parser.add_argument("--selftest", action="store_true", help="verify the gate fires")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        parser.print_usage(sys.stderr)
        return 2

    base, cand = load(args.baseline), load(args.candidate)
    mismatch = config_mismatch(base, cand)
    if mismatch:
        print(f"error: reports are not comparable: {mismatch}", file=sys.stderr)
        return 2

    failures = compare(base, cand, args.max_regression, frozenset(args.allow_new))
    if failures:
        print(f"bench_compare: {args.candidate} vs {args.baseline}: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench_compare: {args.candidate} vs {args.baseline}: OK "
          f"(threshold {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
