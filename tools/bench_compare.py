#!/usr/bin/env python3
"""Compare two platinum-bench-report-v1 documents and gate on regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--max-regression FRAC]
    bench_compare.py --selftest

The gate enforces two properties, mirroring docs/PERFORMANCE.md:

  * throughput: candidate accesses_per_sec (totals and per-bench, for every
    bench that reports it in both files) must be at least
    baseline * (1 - max_regression). Host throughput is noisy, so the
    threshold is a fraction, not equality.
  * simulated time: sim_seconds must match EXACTLY (totals and per-bench).
    The simulator is deterministic; any sim_seconds drift means simulated
    behavior changed, which is a different bug than a slow host.

The two reports must describe the same configuration (host.small/host.full);
comparing a small run against a full run is a usage error (exit 2).

Exit codes: 0 ok, 1 regression or sim mismatch, 2 usage/config error.

--selftest verifies the gate actually fires: a synthetic 2x throughput
regression and a synthetic sim_seconds drift must both fail, and an
identical pair must pass.
"""

import argparse
import copy
import json
import sys

DEFAULT_MAX_REGRESSION = 0.10


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "platinum-bench-report-v1":
        raise SystemExit(f"error: {path} is not a platinum-bench-report-v1 document")
    return doc


def compare(base, cand, max_regression):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    floor = 1.0 - max_regression

    def check_throughput(label, b, c):
        if b <= 0:
            return
        if c < b * floor:
            failures.append(
                f"{label}: accesses_per_sec regressed {b:.0f} -> {c:.0f} "
                f"({c / b - 1.0:+.1%}, allowed {-max_regression:.0%})"
            )

    def check_sim(label, b, c):
        if b != c:
            failures.append(f"{label}: sim_seconds changed {b!r} -> {c!r} (must match exactly)")

    bt, ct = base.get("totals", {}), cand.get("totals", {})
    if "accesses_per_sec" in bt and "accesses_per_sec" in ct:
        check_throughput("totals", bt["accesses_per_sec"], ct["accesses_per_sec"])
    if "sim_seconds" in bt and "sim_seconds" in ct:
        check_sim("totals", bt["sim_seconds"], ct["sim_seconds"])

    benches = sorted(set(base.get("benches", {})) & set(cand.get("benches", {})))
    for name in benches:
        b, c = base["benches"][name], cand["benches"][name]
        if "accesses_per_sec" in b and "accesses_per_sec" in c:
            check_throughput(name, b["accesses_per_sec"], c["accesses_per_sec"])
        if "sim_seconds" in b and "sim_seconds" in c:
            check_sim(name, b["sim_seconds"], c["sim_seconds"])
    return failures


def config_mismatch(base, cand):
    bh, ch = base.get("host", {}), cand.get("host", {})
    for key in ("small", "full"):
        if bh.get(key) != ch.get(key):
            return f"host.{key} differs ({bh.get(key)!r} vs {ch.get(key)!r})"
    return None


def selftest():
    base = {
        "schema": "platinum-bench-report-v1",
        "host": {"small": False, "full": False},
        "benches": {
            "abl_policy": {"accesses_per_sec": 4.0e6, "sim_seconds": 10.0},
            "lat_faults": {"host_seconds": 0.5},
        },
        "totals": {"accesses_per_sec": 4.0e6, "sim_seconds": 10.0},
    }

    identical = copy.deepcopy(base)
    if compare(base, identical, DEFAULT_MAX_REGRESSION):
        print("selftest FAILED: identical reports did not pass")
        return 1

    slow = copy.deepcopy(base)
    slow["totals"]["accesses_per_sec"] *= 0.5
    slow["benches"]["abl_policy"]["accesses_per_sec"] *= 0.5
    failures = compare(base, slow, DEFAULT_MAX_REGRESSION)
    if len(failures) != 2:
        print(f"selftest FAILED: 2x throughput regression not caught ({failures})")
        return 1

    drift = copy.deepcopy(base)
    drift["totals"]["sim_seconds"] += 1e-6
    failures = compare(base, drift, DEFAULT_MAX_REGRESSION)
    if not any("sim_seconds" in f for f in failures):
        print(f"selftest FAILED: sim_seconds drift not caught ({failures})")
        return 1

    borderline = copy.deepcopy(base)
    borderline["totals"]["accesses_per_sec"] *= 0.95
    if compare(base, borderline, DEFAULT_MAX_REGRESSION):
        print("selftest FAILED: -5% flagged at a 10% threshold")
        return 1

    print("selftest OK: gate fires on injected regression and sim drift")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_PR*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_PR*.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional accesses_per_sec drop (default %(default)s)",
    )
    parser.add_argument("--selftest", action="store_true", help="verify the gate fires")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        parser.print_usage(sys.stderr)
        return 2

    base, cand = load(args.baseline), load(args.candidate)
    mismatch = config_mismatch(base, cand)
    if mismatch:
        print(f"error: reports are not comparable: {mismatch}", file=sys.stderr)
        return 2

    failures = compare(base, cand, args.max_regression)
    if failures:
        print(f"bench_compare: {args.candidate} vs {args.baseline}: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench_compare: {args.candidate} vs {args.baseline}: OK "
          f"(threshold {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
