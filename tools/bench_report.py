#!/usr/bin/env python3
"""Run the bench suite and emit a BENCH_<tag>.json perf baseline.

Every bench binary prints a PLATINUM_BENCH_METRICS line (bench/bench_util.h:
RunMetrics) summing simulated references and simulated seconds across all the
machines it built; this script adds host wall-clock per binary and derives
accesses/sec — the host-throughput figure the fast path (docs/PERFORMANCE.md)
is meant to move. Tables written via PLATINUM_JSON_DIR are embedded so the
simulated-time series travel with the baseline.

Usage:
  tools/bench_report.py --build-dir build --out BENCH_PR10.json [--small]

`--small` shrinks the workloads to CI size (same knobs as the ctest smoke
tests); without it the default run-in-seconds sizes are used. PLATINUM_FULL
and PLATINUM_BENCH_WORKERS are inherited from the caller's environment.
"""

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
import time

BENCHES = [
    "fig1_gauss",
    "table1_migration",
    "sec4_basic_ops",
    "fig5_mergesort",
    "fig6_neural",
    "abl_t1_sweep",
    "abl_defrost",
    "abl_policy",
    "abl_pagesize",
    "abl_patterns",
    "abl_advice",
    "abl_scalability",
    "abl_protocol",
    "fig_trie_serve",
    "abl_lease",
]

SMALL_ENV = {
    "PLATINUM_GAUSS_N": "48",
    "PLATINUM_SORT_COUNT": "4096",
    "PLATINUM_NEURAL_EPOCHS": "2",
    "PLATINUM_TRIE_OPS": "20000",
    "PLATINUM_TRIE_KEYS": "4096",
}

METRICS_RE = re.compile(r"^PLATINUM_BENCH_METRICS (\{.*\})$", re.MULTILINE)


def run_bench(binary, json_dir, env):
    start = time.monotonic()
    proc = subprocess.run(
        [binary, "--benchmark_filter=NONE"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    host_seconds = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        raise SystemExit(f"{binary} exited with {proc.returncode}")

    entry = {"host_seconds": round(host_seconds, 3)}
    matches = METRICS_RE.findall(proc.stdout)
    if matches:
        metrics = json.loads(matches[-1])
        entry.update(metrics)
        if host_seconds > 0:
            entry["accesses_per_sec"] = round(metrics["references"] / host_seconds)
    tables = {}
    for name in sorted(os.listdir(json_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(json_dir, name)
        with open(path) as f:
            tables[name[: -len(".json")]] = json.load(f)
        os.unlink(path)
    if tables:
        entry["tables"] = tables
    return entry


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--tag", default="PR10")
    parser.add_argument("--small", action="store_true", help="CI-size workloads")
    parser.add_argument("--benches", nargs="*", default=BENCHES)
    args = parser.parse_args()

    env = dict(os.environ)
    if args.small:
        env.update(SMALL_ENV)

    report = {
        "schema": "platinum-bench-report-v1",
        "tag": args.tag,
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
            "workers": env.get("PLATINUM_BENCH_WORKERS", "auto"),
            "small": args.small,
            "full": env.get("PLATINUM_FULL", "0") != "0",
        },
        "benches": {},
    }

    total_host = 0.0
    total_refs = 0
    total_sim = 0.0
    with tempfile.TemporaryDirectory() as json_dir:
        env["PLATINUM_JSON_DIR"] = json_dir
        for name in args.benches:
            binary = os.path.join(args.build_dir, "bench", name)
            if not os.path.exists(binary):
                raise SystemExit(f"bench binary not found: {binary} (build it first)")
            print(f"bench_report: running {name} ...", flush=True)
            entry = run_bench(binary, json_dir, env)
            report["benches"][name] = entry
            total_host += entry["host_seconds"]
            total_refs += entry.get("references", 0)
            total_sim += entry.get("sim_seconds", 0.0)

    report["totals"] = {
        "host_seconds": round(total_host, 3),
        "references": total_refs,
        "sim_seconds": round(total_sim, 3),
        "accesses_per_sec": round(total_refs / total_host) if total_host > 0 else None,
    }

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(
        f"bench_report: wrote {args.out} "
        f"({total_host:.1f}s host, {total_refs} references, "
        f"{report['totals']['accesses_per_sec']} accesses/sec)"
    )


if __name__ == "__main__":
    main()
