#!/usr/bin/env bash
# Determinism check for the parallel bench harness (bench::SweepRunner): a
# bench binary run with 4 workers must produce byte-identical stdout and
# byte-identical PLATINUM_JSON_DIR tables to a forced single-thread run.
# Usage: bench_sweep_check.sh <bench-binary> [more binaries...]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <bench-binary> [more binaries...]" >&2
  exit 2
fi

# CI-size workloads so the check stays fast.
export PLATINUM_GAUSS_N="${PLATINUM_GAUSS_N:-48}"
export PLATINUM_SORT_COUNT="${PLATINUM_SORT_COUNT:-4096}"
export PLATINUM_NEURAL_EPOCHS="${PLATINUM_NEURAL_EPOCHS:-2}"

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

for binary in "$@"; do
  name="$(basename "${binary}")"
  mkdir -p "${workdir}/${name}/serial" "${workdir}/${name}/parallel"

  PLATINUM_BENCH_WORKERS=1 PLATINUM_JSON_DIR="${workdir}/${name}/serial" \
    "${binary}" --benchmark_filter=NONE > "${workdir}/${name}/serial.out"
  PLATINUM_BENCH_WORKERS=4 PLATINUM_JSON_DIR="${workdir}/${name}/parallel" \
    "${binary}" --benchmark_filter=NONE > "${workdir}/${name}/parallel.out"

  # Table/series JSON paths appear in stdout and differ by directory; compare
  # everything else byte for byte.
  sed "s#${workdir}/${name}/serial#JSON_DIR#" "${workdir}/${name}/serial.out" \
    > "${workdir}/${name}/serial.norm"
  sed "s#${workdir}/${name}/parallel#JSON_DIR#" "${workdir}/${name}/parallel.out" \
    > "${workdir}/${name}/parallel.norm"
  if ! diff -u "${workdir}/${name}/serial.norm" "${workdir}/${name}/parallel.norm"; then
    echo "FAIL: ${name}: stdout differs between 1 and 4 workers" >&2
    exit 1
  fi
  if ! diff -ru "${workdir}/${name}/serial" "${workdir}/${name}/parallel"; then
    echo "FAIL: ${name}: JSON tables differ between 1 and 4 workers" >&2
    exit 1
  fi
  echo "OK: ${name} is byte-identical with 1 and 4 workers"
done
