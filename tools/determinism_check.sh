#!/usr/bin/env bash
# Determinism regression: identical platsim invocations must produce
# byte-identical stdout and byte-identical JSON artifacts — the machine
# stats, the page-forensics report, and the epoch time-series. Catches
# wall-clock time, ambient randomness, hash-order iteration, or
# uninitialized reads leaking into the simulation or its telemetry.
#
# The second run of each scenario executes with PLATINUM_BENCH_WORKERS=4
# in the environment: bench parallelism knobs must never reach the
# simulator, so the artifacts still have to match byte-for-byte.
set -euo pipefail

PLATSIM="${1:?usage: determinism_check.sh <path-to-platsim>}"
PLATSIM="$(cd "$(dirname "$PLATSIM")" && pwd)/$(basename "$PLATSIM")"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

ARTIFACTS=(stdout.txt stats.json pages.json ts.json)

run() {
  local scenario="$1" tag="$2"
  shift 2
  # Identical invocations: run from inside per-run directories so the JSON
  # paths (which platsim echoes to stdout) are the same relative names.
  mkdir -p "$workdir/$scenario/$tag"
  (cd "$workdir/$scenario/$tag" &&
   "$PLATSIM" "$@" --check-invariants --report \
       --stats-json=stats.json \
       --page-report=pages.json --topk-pages=8 \
       --timeseries-json=ts.json --epoch-ms=5 > stdout.txt)
}

check() {
  local scenario="$1"
  shift
  run "$scenario" a "$@"
  PLATINUM_BENCH_WORKERS=4 run "$scenario" b "$@"
  for f in "${ARTIFACTS[@]}"; do
    if ! cmp -s "$workdir/$scenario/a/$f" "$workdir/$scenario/b/$f"; then
      echo "determinism_check: $scenario: $f differs between identical runs" >&2
      diff "$workdir/$scenario/a/$f" "$workdir/$scenario/b/$f" >&2 || true
      exit 1
    fi
  done
  echo "determinism_check: $scenario: ${#ARTIFACTS[@]} artifacts byte-identical" \
       "($(wc -c < "$workdir/$scenario/a/pages.json") bytes of page forensics," \
       "$(wc -c < "$workdir/$scenario/a/ts.json") bytes of time-series)"
}

check gauss gauss --procs=4 --n=48
check sort sort --procs=4 --count=8192
# The tardis protocol replaces shootdown rounds with lease waits; its event
# stream must be just as deterministic, and just as immune to the bench
# worker knob, as the directory protocol's.
check gauss_tardis gauss --procs=4 --n=48 --protocol=tardis
check sort_tardis sort --procs=4 --count=8192 --protocol=tardis
# The serving trie adds the load layer (Zipf scripts, latency histograms,
# the "serving" stats block) to the byte-identity surface, closed and open
# loop, under both protocols.
check trie trie --procs=8 --ops=20000 --keys=4096
check trie_tardis trie --procs=8 --ops=20000 --keys=4096 --protocol=tardis
check trie_open trie --procs=8 --ops=20000 --keys=4096 --arrival=open
echo "determinism_check: all scenarios byte-identical"
