#!/usr/bin/env bash
# Determinism regression: two identical platsim invocations must produce
# byte-identical stdout and byte-identical stats JSON. Catches wall-clock
# time, ambient randomness, hash-order iteration, or uninitialized reads
# leaking into the simulation.
set -euo pipefail

PLATSIM="${1:?usage: determinism_check.sh <path-to-platsim>}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run() {
  local tag="$1"
  # Identical invocations: run from inside per-run directories so the JSON
  # path (which platsim echoes to stdout) is the same relative name in both.
  mkdir -p "$workdir/$tag"
  (cd "$workdir/$tag" &&
   "$PLATSIM" gauss --procs=4 --n=48 --check-invariants \
       --stats-json=stats.json --report > stdout.txt)
}

run a
run b

if ! cmp -s "$workdir/a/stdout.txt" "$workdir/b/stdout.txt"; then
  echo "determinism_check: stdout differs between identical runs" >&2
  diff "$workdir/a/stdout.txt" "$workdir/b/stdout.txt" >&2 || true
  exit 1
fi
if ! cmp -s "$workdir/a/stats.json" "$workdir/b/stats.json"; then
  echo "determinism_check: stats JSON differs between identical runs" >&2
  diff "$workdir/a/stats.json" "$workdir/b/stats.json" >&2 || true
  exit 1
fi
echo "determinism_check: two runs byte-identical " \
     "($(wc -c < "$workdir/a/stats.json") bytes of stats JSON)"
