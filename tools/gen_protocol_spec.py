#!/usr/bin/env python3
"""Compiles the protocol specs (src/mem/protocol_spec*.json) into
src/mem/protocol_spec.gen.h.

Each committed coherence protocol carries a normative transition table as
JSON (docs/PROTOCOL.md): protocol_spec.json for the directory protocol and
protocol_spec_tardis.json for the timestamp/lease protocol. All specs share
one generated header — a nested namespace per protocol plus the spec_gen::
kSpecs registry indexed by mem::ProtocolKind — which is the single source of
truth consumed by the C++ side (src/mem/protocol_spec.{h,cc}, the invariant
oracle, and the bounded explorer). platlint's protocol-conformance rule
reads the JSONs directly.

Validation performed before emitting anything:

  * every state/trigger/micro-event referenced by a row is declared;
  * micro transitions are unique;
  * every event transition's `via` chain is a valid micro path from `from`
    to `to` (an empty chain is only valid for a self-edge);
  * `mutation_files` exist in the repo (with --root).

On top of validation, the spec-level verifier (always run; reported and
cross-checked against the committed proof artifacts with --verify) closes
the abstract state space

    (cpage state, frozen flag, per-processor translation rights)

for 2 and 3 processors under every trigger, using the declarative
`micro_semantics` section of each spec, and proves:

  * swmr                   — a write mapping implies the page is in the
                             single writable-copy state (`modified`); a
                             replicated page is never writable;
  * rights-domination      — any mapping implies the page holds a copy;
                             a write mapping implies a writable state;
  * micro-copy-consistency — every micro row's from/to states agree with
                             the declared copy effect of its event;
  * maps-consistency       — no event row grants rights its to-state
                             cannot honor;
  * no-stuck-state         — every read/write fault in every reachable
                             abstract state has a spec row to take, and
                             every frozen placed page has a thaw row;
  * no-unreachable-rows    — every event row is exercised by the closure.

Specs with `uses_freezing: false` are closed over the unfrozen half of the
abstract space only (no fault may freeze, no initial frozen seed): that a
lease protocol never reaches a frozen state is part of what gets proved.

Each proof is baked into the generated header (per-protocol
kProofCoveredRowMask, kProofStateMask, kProvedProperties) and written as a
machine-readable artifact next to its spec (protocol_proof.json /
protocol_proof_tardis.json); tests/protocol_spec_test.cc cross-checks the
proofs' closures against the C++ bounded explorer's.

Usage:
  gen_protocol_spec.py [--root DIR]            # (re)write protocol_spec.gen.h
  gen_protocol_spec.py [--root DIR] --verify   # ... and protocol_proof*.json
  gen_protocol_spec.py [--root DIR] --check [--verify]
                                               # fail if header/proofs stale
  gen_protocol_spec.py --selftest              # verifier catches mutated specs

Exit status: 0 ok, 1 stale output, invalid spec, or failed proof.
"""

from __future__ import annotations

import argparse
import copy
import hashlib
import json
import os
import sys
from collections import deque

DEFAULT_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
HEADER_REL = "src/mem/protocol_spec.gen.h"

# One entry per committed protocol, in mem::ProtocolKind order; the generated
# spec_gen::kSpecs registry is indexed the same way.
SPECS = (
    {"spec": "src/mem/protocol_spec.json",
     "proof": "src/mem/protocol_proof.json"},
    {"spec": "src/mem/protocol_spec_tardis.json",
     "proof": "src/mem/protocol_proof_tardis.json"},
)

PROCESSOR_COUNTS = (2, 3)


class SpecError(Exception):
    """Raised for any invalid-spec or failed-proof condition."""


def fail(msg: str) -> None:
    raise SpecError(msg)


def load_spec(root: str, spec_rel: str) -> dict:
    path = os.path.join(root, spec_rel)
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def validate(spec: dict, root: str | None) -> None:
    states = spec["states"]
    triggers = spec["triggers"]
    micro_events = spec["micro_events"]
    protocol = spec.get("protocol")
    if not isinstance(protocol, str) or not protocol.isidentifier():
        fail("spec has no usable 'protocol' name (must be an identifier)")
    if not isinstance(spec.get("uses_freezing"), bool):
        fail("spec has no boolean 'uses_freezing' field")
    if len(set(states)) != len(states):
        fail("duplicate states")
    if len(set(triggers)) != len(triggers):
        fail("duplicate triggers")
    if len(set(micro_events)) != len(micro_events):
        fail("duplicate micro events")

    micro = set()
    for row in spec["micro_transitions"]:
        key = (row["from"], row["event"], row["to"])
        if row["from"] not in states or row["to"] not in states:
            fail(f"micro transition {key} uses an undeclared state")
        if row["event"] not in micro_events:
            fail(f"micro transition {key} uses an undeclared micro event")
        if key in micro:
            fail(f"duplicate micro transition {key}")
        micro.add(key)

    used_events = {e for _, e, _ in micro}
    unused = set(micro_events) - used_events
    if unused:
        fail(f"micro events declared but never used: {sorted(unused)}")

    seen = set()
    for row in spec["event_transitions"]:
        key = (row["trigger"], row["from"], row["to"])
        if row["trigger"] not in triggers:
            fail(f"event transition {key} uses an undeclared trigger")
        if row["from"] not in states or row["to"] not in states:
            fail(f"event transition {key} uses an undeclared state")
        if row["maps"] not in ("r", "rw", "none"):
            fail(f"event transition {key} has invalid maps '{row['maps']}'")
        if key in seen:
            fail(f"duplicate event transition {key}")
        seen.add(key)
        # Every via chain (primary + alternatives) must compose from -> to
        # out of micro transitions.
        for chain in [row["via"]] + row.get("alt_via", []):
            cur = row["from"]
            for ev in chain:
                nxts = [t for f_, e_, t in micro if f_ == cur and e_ == ev]
                if not nxts:
                    fail(f"event transition {key}: via step '{ev}' is not a "
                         f"micro transition out of state '{cur}'")
                cur = nxts[0]
            if cur != row["to"]:
                fail(f"event transition {key}: via chain {chain} ends at "
                     f"'{cur}', not '{row['to']}'")

    # Every micro transition must be reachable through some event's via chain
    # or be a declared alternative of one (same event, listed from-state in a
    # conformance annotation). We only require the *event* to appear in at
    # least one via chain: the per-site from-alternatives are checked against
    # micro_transitions by platlint's conformance rule.
    via_events = {e for row in spec["event_transitions"]
                  for chain in [row["via"]] + row.get("alt_via", [])
                  for e in chain}
    orphaned = used_events - via_events
    if orphaned:
        fail(f"micro events not used by any event transition: {sorted(orphaned)}")

    if root is not None:
        for rel in spec["mutation_files"]:
            if not os.path.exists(os.path.join(root, rel)):
                fail(f"mutation_files entry does not exist: {rel}")


# --------------------------------------------------------------------------
# Spec-level verification: a symbolic closure over the abstraction
#   (cpage state, frozen flag, rights[processor] in {none, read, write})
# driven purely by the spec's rows and the declarative micro_semantics.

RIGHT_NONE, RIGHT_R, RIGHT_W = 0, 1, 2
RIGHT_NAMES = {RIGHT_NONE: "n", RIGHT_R: "r", RIGHT_W: "w"}

PROVED_PROPERTIES = (
    "swmr",
    "rights-domination",
    "micro-copy-consistency",
    "maps-consistency",
    "no-stuck-state",
    "frozen-thaw-escape",
    "no-unreachable-rows",
)


def _semantics(spec: dict) -> dict:
    sem = spec.get("micro_semantics")
    if sem is None:
        fail("spec has no micro_semantics section (required by the verifier)")
    return sem


def _verify_static(spec: dict, sem: dict) -> None:
    """Row-local proofs: declaration completeness, copy and maps consistency."""
    states = spec["states"]
    attrs = sem["state_attributes"]
    effects = sem["micro_effects"]
    trigger_fx = sem["trigger_effects"]

    for s in states:
        if s not in attrs:
            fail(f"micro_semantics: state '{s}' has no state_attributes entry")
    for s in attrs:
        if s not in states:
            fail(f"micro_semantics: state_attributes names unknown state '{s}'")
    for e in spec["micro_events"]:
        if e not in effects:
            fail(f"micro_semantics: micro event '{e}' has no micro_effects entry")
    for e in effects:
        if e not in spec["micro_events"]:
            fail(f"micro_semantics: micro_effects names unknown event '{e}'")
    for t in spec["triggers"]:
        if t not in trigger_fx:
            fail(f"micro_semantics: trigger '{t}' has no trigger_effects entry")
    for t in trigger_fx:
        if t not in spec["triggers"]:
            fail(f"micro_semantics: trigger_effects names unknown trigger '{t}'")

    # micro-copy-consistency: each SetState step's declared copy effect must
    # agree with the copy counts of its from/to states. This is where a
    # "second writable copy" forgery dies: a copy-adding micro cannot land in
    # a single-copy state, so no via chain can replicate and stay `modified`.
    for row in spec["micro_transitions"]:
        kind = effects[row["event"]]["copies"]
        fc = attrs[row["from"]]["copies"]
        tc = attrs[row["to"]]["copies"]
        key = (row["from"], row["event"], row["to"])
        ok = ((kind == "fill" and fc == "none" and tc == "one")
              or (kind == "add" and fc in ("one", "many") and tc == "many")
              or (kind == "to-one" and fc != "none" and tc == "one")
              or (kind == "keep" and fc == tc and fc != "none"))
        if not ok:
            fail(f"micro-copy-consistency: micro transition {key} is "
                 f"inconsistent with '{row['event']}' copies effect '{kind}' "
                 f"({row['from']} holds {fc} copies, {row['to']} holds {tc})")

    # maps-consistency: a row may only grant rights its to-state can honor.
    for row in spec["event_transitions"]:
        key = (row["trigger"], row["from"], row["to"])
        to_attr = attrs[row["to"]]
        if row["maps"] == "rw" and not to_attr["writable"]:
            fail(f"maps-consistency: event transition {key} grants rw but "
                 f"'{row['to']}' is not a writable state")
        if row["maps"] in ("r", "rw") and to_attr["copies"] == "none":
            fail(f"maps-consistency: event transition {key} grants a mapping "
                 f"but '{row['to']}' holds no copy")


def _chains_of(row: dict) -> list[tuple[str, ...]]:
    return [tuple(row["via"])] + [tuple(c) for c in row.get("alt_via", [])]


def _chain_frozen_ok(chain: tuple[str, ...], effects: dict) -> bool:
    return all(not effects[e].get("requires_unfrozen", False) for e in chain)


def _apply_chain(chain, rights, actor, effects):
    """Applies a via chain's declared rights effects; actor < 0 for host."""
    rights = list(rights)
    for ev in chain:
        fx = effects[ev]
        if fx.get("downgrades") == "writers":
            rights = [RIGHT_R if x == RIGHT_W else x for x in rights]
        inv = fx.get("invalidates", "none")
        if inv == "others":
            rights = [x if p == actor else RIGHT_NONE
                      for p, x in enumerate(rights)]
        elif inv == "all":
            rights = [RIGHT_NONE] * len(rights)
    return rights


def _state_name(spec, astate):
    s, frozen, rights = astate
    r = "".join(RIGHT_NAMES[x] for x in rights)
    return f"({s}, {'frozen' if frozen else 'thawed'}, rights={r})"


def _witness(spec, parents, astate) -> str:
    steps = []
    cur = astate
    while cur in parents and parents[cur] is not None:
        prev, desc = parents[cur]
        steps.append(f"  {_state_name(spec, prev)} --{desc}--> "
                     f"{_state_name(spec, cur)}")
        cur = prev
    steps.append(f"  initial {_state_name(spec, cur)}")
    return "\n".join(reversed(steps))


def _close(spec: dict, sem: dict, num_procs: int):
    """BFS closure for one processor count.

    Returns (abstract state count, transition count, covered row indices,
    state mask). Raises SpecError with a witness path on any property
    violation or stuck state.
    """
    attrs = sem["state_attributes"]
    effects = sem["micro_effects"]
    trigger_fx = sem["trigger_effects"]
    rows = spec["event_transitions"]
    rows_by = {}
    for i, row in enumerate(rows):
        rows_by.setdefault((row["trigger"], row["from"]), []).append((i, row))
    self_row = {(row["trigger"], row["from"]): i
                for i, row in enumerate(rows) if row["from"] == row["to"]}
    states_idx = {s: i for i, s in enumerate(spec["states"])}

    def grant(rights, actor, maps):
        rights = list(rights)
        if actor >= 0 and maps != "none":
            want = RIGHT_W if maps == "rw" else RIGHT_R
            rights[actor] = max(rights[actor], want)
        return tuple(rights)

    # Placement advice can freeze a page before its first touch, so both
    # frozen flavors of the untouched state seed the frontier — but only for
    # protocols that freeze at all. For uses_freezing=false specs the frozen
    # half of the space must stay unreachable, and seeding it would fake
    # reachability the implementation cannot produce.
    uses_freezing = spec["uses_freezing"]
    initial = [(spec["states"][0], 0, (RIGHT_NONE,) * num_procs)]
    if uses_freezing:
        initial.append((spec["states"][0], 1, (RIGHT_NONE,) * num_procs))
    parents = {s: None for s in initial}
    frontier = deque(initial)
    covered: set[int] = set()
    transitions = 0
    state_mask = 0

    def check_properties(astate):
        s, _frozen, rights = astate
        a = attrs[s]
        if any(x == RIGHT_W for x in rights) and not a["writable"]:
            fail(f"swmr violated for {num_procs} processors: a processor "
                 f"holds a write mapping while the page is '{s}' (not the "
                 f"single writable copy); witness:\n"
                 + _witness(spec, parents, astate))
        if any(x != RIGHT_NONE for x in rights) and a["copies"] == "none":
            fail(f"rights-domination violated for {num_procs} processors: a "
                 f"mapping exists while '{s}' holds no copy; witness:\n"
                 + _witness(spec, parents, astate))

    def visit(astate, prev, desc):
        nonlocal transitions
        transitions += 1
        if astate not in parents:
            parents[astate] = (prev, desc)
            check_properties(astate)
            frontier.append(astate)

    for seed in initial:
        check_properties(seed)

    while frontier:
        astate = frontier.popleft()
        s, frozen, rights = astate
        state_mask |= 1 << states_idx[s]

        # Memory accesses: a hit needs no spec row (it records the self-edge
        # when one exists); a fault must find a row, else the machine has no
        # sanctioned way to service the reference — a stuck state.
        for actor in range(num_procs):
            for trig, need in (("read", RIGHT_R), ("write", RIGHT_W)):
                if rights[actor] >= need:
                    if (trig, s) in self_row:
                        covered.add(self_row[(trig, s)])
                    continue
                serviced = False
                for i, row in rows_by.get((trig, s), []):
                    for chain in _chains_of(row):
                        frozen_ok = _chain_frozen_ok(chain, effects)
                        if frozen and not frozen_ok:
                            continue
                        serviced = True
                        covered.add(i)
                        nr = grant(_apply_chain(chain, rights, actor, effects),
                                   actor, row["maps"])
                        desc = (f"p{actor} {trig}-fault row {trig}: "
                                f"{row['from']} -> {row['to']} via "
                                f"[{' '.join(chain) or 'self'}]")
                        # A frozen page stays frozen until thawed; an
                        # unfrozen fault may freeze iff the protocol freezes
                        # at all and the policy declined to re-place the page
                        # (no replicate/migrate step).
                        for nf in ((1,) if frozen
                                   else ((0, 1) if frozen_ok and uses_freezing
                                         else (0,))):
                            visit((row["to"], nf, nr), astate, desc)
                if not serviced:
                    fail(f"no-stuck-state violated for {num_procs} "
                         f"processors: a p{actor} {trig} fault on a "
                         f"{'frozen ' if frozen else ''}'{s}' page has no "
                         f"spec row to take; witness:\n"
                         + _witness(spec, parents, astate))

        # Host-driven triggers: thaw / pin / replicate-to / unbind.
        for trig in spec["triggers"]:
            fx = trigger_fx[trig]
            if trig in ("read", "write"):
                continue
            if fx.get("requires_frozen") and not frozen:
                continue
            if fx.get("requires_unfrozen") and frozen:
                continue
            applicable = rows_by.get((trig, s), [])
            if trig == "thaw" and frozen and not applicable \
                    and attrs[s]["copies"] != "none":
                fail(f"frozen-thaw-escape violated for {num_procs} "
                     f"processors: a frozen '{s}' page has no thaw row; "
                     f"witness:\n" + _witness(spec, parents, astate))
            for i, row in applicable:
                for chain in _chains_of(row):
                    if frozen and not _chain_frozen_ok(chain, effects):
                        continue
                    covered.add(i)
                    nr = _apply_chain(chain, rights, -1, effects)
                    if fx.get("invalidates") == "all":
                        nr = [RIGHT_NONE] * num_procs
                    nf = frozen
                    if fx.get("sets_frozen"):
                        nf = 1
                    if fx.get("clears_frozen"):
                        nf = 0
                    desc = (f"host {trig} row {trig}: {row['from']} -> "
                            f"{row['to']} via [{' '.join(chain) or 'self'}]")
                    visit((row["to"], nf, tuple(nr)), astate, desc)

    return len(parents), transitions, covered, state_mask


def verify(spec: dict, spec_rel: str) -> dict:
    """Proves the spec safe; returns the machine-readable proof."""
    sem = _semantics(spec)
    _verify_static(spec, sem)

    rows = spec["event_transitions"]
    covered_all: set[int] = set()
    state_mask = 0
    closures = {}
    for num_procs in PROCESSOR_COUNTS:
        n_states, n_trans, covered, mask = _close(spec, sem, num_procs)
        closures[str(num_procs)] = {
            "abstract_states": n_states,
            "transitions": n_trans,
        }
        covered_all |= covered
        state_mask |= mask

    uncovered = [i for i in range(len(rows)) if i not in covered_all]
    if uncovered:
        names = [(rows[i]["trigger"], rows[i]["from"], rows[i]["to"])
                 for i in uncovered]
        fail(f"no-unreachable-rows violated: event rows never exercised by "
             f"the symbolic closure: {names}")

    mask_bits = 0
    for i in covered_all:
        mask_bits |= 1 << i
    return {
        "schema": "platinum-protocol-proof-v1",
        "generator": "tools/gen_protocol_spec.py --verify",
        "protocol": spec["protocol"],
        "spec": spec_rel,
        "spec_sha256": hashlib.sha256(
            json.dumps(spec, sort_keys=True).encode("utf-8")).hexdigest(),
        "processor_counts": list(PROCESSOR_COUNTS),
        "properties": list(PROVED_PROPERTIES),
        "closures": closures,
        "covered_rows": [
            {"trigger": rows[i]["trigger"], "from": rows[i]["from"],
             "to": rows[i]["to"]}
            for i in sorted(covered_all)
        ],
        "covered_row_mask": mask_bits,
        "state_mask": state_mask,
    }


def proof_text(proof: dict) -> str:
    return json.dumps(proof, indent=2, sort_keys=True) + "\n"


def emit(entries: list[tuple[dict, dict]]) -> str:
    """Renders the combined header for [(spec, proof), ...] in kind order."""
    base_spec = entries[0][0]
    states = base_spec["states"]
    triggers = base_spec["triggers"]
    for spec, _proof in entries[1:]:
        # Trigger/state indices are shared across protocols (mem::CpageState,
        # kTriggerNames); a spec with its own alphabet cannot share them.
        if spec["states"] != states or spec["triggers"] != triggers:
            fail(f"spec '{spec['protocol']}' declares different states or "
                 f"triggers than '{base_spec['protocol']}'; all specs must "
                 f"share one alphabet")
    s_idx = {s: i for i, s in enumerate(states)}
    t_idx = {t: i for i, t in enumerate(triggers)}
    lines = []
    lines.append("// Generated by tools/gen_protocol_spec.py from "
                 "src/mem/protocol_spec*.json.")
    lines.append("// DO NOT EDIT; regenerate with `python3 "
                 "tools/gen_protocol_spec.py` (the")
    lines.append("// protocol_spec_sync ctest fails when this file is stale).")
    lines.append("#ifndef SRC_MEM_PROTOCOL_SPEC_GEN_H_")
    lines.append("#define SRC_MEM_PROTOCOL_SPEC_GEN_H_")
    lines.append("")
    lines.append("#include <cstdint>")
    lines.append("")
    lines.append("namespace platinum::mem::spec_gen {")
    lines.append("")
    lines.append(f"inline constexpr int kNumStates = {len(states)};")
    lines.append(f"inline constexpr int kNumTriggers = {len(triggers)};")
    lines.append("")
    names = ", ".join(f'"{t}"' for t in triggers)
    lines.append(f"inline constexpr const char* kTriggerNames[] = {{{names}}};")
    lines.append("")
    lines.append("// One row per composed (trigger, from, to) transition a "
                 "protocol allows.")
    lines.append("// State indices follow mem::CpageState; trigger indices "
                 "follow kTriggerNames.")
    lines.append("struct EdgeRow {")
    lines.append("  uint8_t trigger;")
    lines.append("  uint8_t from;")
    lines.append("  uint8_t to;")
    lines.append("};")

    for spec, proof in entries:
        name = spec["protocol"]
        lines.append("")
        lines.append(f"namespace {name} {{")
        lines.append("")
        lines.append("inline constexpr EdgeRow kEdges[] = {")
        for row in spec["event_transitions"]:
            t = t_idx[row["trigger"]]
            f = s_idx[row["from"]]
            to = s_idx[row["to"]]
            via = " ".join(row["via"]) if row["via"] else "(self)"
            lines.append(f"    {{{t}, {f}, {to}}},  // {row['trigger']}: "
                         f"{row['from']} -> {row['to']} via {via}")
        lines.append("};")
        lines.append("")
        mask = 0
        for row in spec["event_transitions"]:
            mask |= 1 << s_idx[row["from"]]
            mask |= 1 << s_idx[row["to"]]
        lines.append("// Bit i set iff state i appears in some allowed "
                     "transition.")
        lines.append("inline constexpr uint32_t kReachableStateMask = "
                     f"0x{mask:x};")
        lines.append("")
        lines.append("// ---- Spec-level proof (tools/gen_protocol_spec.py "
                     "--verify) ----")
        lines.append("// Properties proved by the symbolic closure over "
                     "(state, frozen, per-")
        counts = " and ".join(str(p) for p in proof["processor_counts"])
        lines.append(f"// processor rights) for {counts} processors; "
                     f"{proof['spec'].replace('_spec', '_proof')} is the")
        lines.append("// machine-readable artifact, "
                     "tests/protocol_spec_test.cc the cross-check")
        lines.append("// against the bounded explorer's concrete closure.")
        props = ", ".join(f'"{p}"' for p in proof["properties"])
        lines.append("inline constexpr const char* kProvedProperties[] = "
                     f"{{{props}}};")
        lines.append("// Bit i set iff kEdges[i] is exercised by the symbolic "
                     "closure.")
        lines.append("inline constexpr uint32_t kProofCoveredRowMask = "
                     f"0x{proof['covered_row_mask']:x};")
        lines.append("// Bit i set iff state i appears in some reachable "
                     "abstract state.")
        lines.append("inline constexpr uint32_t kProofStateMask = "
                     f"0x{proof['state_mask']:x};")
        lines.append("")
        lines.append(f"}}  // namespace {name}")

    lines.append("")
    lines.append("// Registry indexed by mem::ProtocolKind; "
                 "mem::ProtocolKindFromName walks the")
    lines.append("// names, the typed accessors in protocol_spec.cc walk the "
                 "tables.")
    lines.append("struct SpecView {")
    lines.append("  const char* name;")
    lines.append("  const EdgeRow* edges;")
    lines.append("  int num_edges;")
    lines.append("  uint32_t reachable_state_mask;")
    lines.append("  uint32_t proof_covered_row_mask;")
    lines.append("  uint32_t proof_state_mask;")
    lines.append("};")
    lines.append("")
    lines.append("inline constexpr SpecView kSpecs[] = {")
    for spec, _proof in entries:
        name = spec["protocol"]
        lines.append(f"    {{\"{name}\", {name}::kEdges, "
                     f"{len(spec['event_transitions'])}, "
                     f"{name}::kReachableStateMask, "
                     f"{name}::kProofCoveredRowMask, "
                     f"{name}::kProofStateMask}},")
    lines.append("};")
    lines.append("")
    lines.append("}  // namespace platinum::mem::spec_gen")
    lines.append("")
    lines.append("#endif  // SRC_MEM_PROTOCOL_SPEC_GEN_H_")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Selftest: each mutation below passes structural validation (the chains
# still compose) but forges a protocol the verifier must refuse to certify.


def _event_row(spec: dict, trigger: str, frm: str, to: str) -> dict:
    for row in spec["event_transitions"]:
        if (row["trigger"], row["from"], row["to"]) == (trigger, frm, to):
            return row
    raise AssertionError(f"selftest: spec has no row ({trigger}, {frm}, {to})")


def _mutate_second_writable_copy(spec: dict) -> None:
    # Replicating while staying `modified` claims a second writable copy:
    # two processors could then write different copies of the same page.
    spec["micro_transitions"].append(
        {"from": "modified", "event": "replicate", "to": "modified"})
    row = _event_row(spec, "write", "modified", "modified")
    row["via"] = ["replicate"]
    row.pop("alt_via", None)


def _mutate_read_mapping_on_empty(spec: dict) -> None:
    # A read mapping to a page that holds no copy dereferences nothing.
    _event_row(spec, "unbind", "empty", "empty")["maps"] = "r"


def _mutate_write_stuck_on_modified(spec: dict) -> None:
    # Without the write self-row, a second processor's write fault on a
    # modified page has no sanctioned transition at all.
    row = _event_row(spec, "write", "modified", "modified")
    spec["event_transitions"].remove(row)


def selftest(root: str) -> int:
    # Every committed spec must verify clean before any mutation testing.
    for entry in SPECS:
        committed = load_spec(root, entry["spec"])
        validate(committed, root)
        verify(committed, entry["spec"])
        print(f"gen_protocol_spec selftest: {entry['spec']} "
              f"({committed['protocol']}) verifies clean")

    # The mutations forge the *directory* spec; the tardis spec's clean
    # verification above is its own regression check (its unfrozen-only
    # closure must not skip any property).
    spec = load_spec(root, SPECS[0]["spec"])

    mutations = [
        ("second-writable-copy", _mutate_second_writable_copy,
         "micro-copy-consistency"),
        ("read-mapping-on-empty", _mutate_read_mapping_on_empty,
         "maps-consistency"),
        ("write-stuck-on-modified", _mutate_write_stuck_on_modified,
         "no-stuck-state"),
    ]
    for name, mutate, want in mutations:
        mutant = copy.deepcopy(spec)
        mutate(mutant)
        try:
            validate(mutant, None)
        except SpecError as e:
            print(f"gen_protocol_spec selftest FAIL: mutation '{name}' was "
                  f"rejected by structural validation ({e}); it must only "
                  f"be caught by the verifier", file=sys.stderr)
            return 1
        try:
            verify(mutant, SPECS[0]["spec"])
        except SpecError as e:
            if want not in str(e):
                print(f"gen_protocol_spec selftest FAIL: mutation '{name}' "
                      f"failed for the wrong reason (wanted '{want}'): {e}",
                      file=sys.stderr)
                return 1
            print(f"gen_protocol_spec selftest: mutation '{name}' caught "
                  f"({want})")
            continue
        print(f"gen_protocol_spec selftest FAIL: mutation '{name}' verified "
              f"clean; the proof would certify a broken protocol",
              file=sys.stderr)
        return 1
    print(f"gen_protocol_spec selftest: {len(mutations)} mutations ok")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=DEFAULT_ROOT)
    ap.add_argument("--check", action="store_true",
                    help="verify the committed outputs match the spec")
    ap.add_argument("--verify", action="store_true",
                    help="report the spec-level proof and write (or with "
                         "--check, check) src/mem/protocol_proof.json")
    ap.add_argument("--selftest", action="store_true",
                    help="check the verifier rejects mutated specs")
    args = ap.parse_args(argv)

    try:
        if args.selftest:
            return selftest(args.root)
        entries = []
        for entry in SPECS:
            spec = load_spec(args.root, entry["spec"])
            validate(spec, args.root)
            entries.append((spec, verify(spec, entry["spec"])))
        text = emit(entries)
    except SpecError as e:
        print(f"gen_protocol_spec: {e}", file=sys.stderr)
        return 1

    header = os.path.join(args.root, HEADER_REL)
    if args.verify:
        for spec, proof in entries:
            closures = ", ".join(
                f"{p}p: {c['abstract_states']} states / {c['transitions']} "
                f"transitions" for p, c in sorted(proof["closures"].items()))
            print(f"gen_protocol_spec: [{spec['protocol']}] proved "
                  f"{', '.join(proof['properties'])} ({closures})")
    if args.check:
        stale = []
        try:
            with open(header, encoding="utf-8") as f:
                current = f.read()
        except FileNotFoundError:
            current = ""
        if current != text:
            stale.append(HEADER_REL)
        if args.verify:
            for entry, (_spec, proof) in zip(SPECS, entries):
                proof_path = os.path.join(args.root, entry["proof"])
                try:
                    with open(proof_path, encoding="utf-8") as f:
                        current_proof = f.read()
                except FileNotFoundError:
                    current_proof = ""
                if current_proof != proof_text(proof):
                    stale.append(entry["proof"])
        if stale:
            print(f"gen_protocol_spec: {', '.join(stale)} stale; regenerate "
                  "with `python3 tools/gen_protocol_spec.py --verify`",
                  file=sys.stderr)
            return 1
        checked = [HEADER_REL] + ([e["proof"] for e in SPECS]
                                  if args.verify else [])
        specs = ", ".join(e["spec"] for e in SPECS)
        print(f"gen_protocol_spec: {', '.join(checked)} in sync with {specs}")
        return 0
    with open(header, "w", encoding="utf-8") as f:
        f.write(text)
    rows = ", ".join(
        f"{spec['protocol']}: {len(spec['event_transitions'])} event / "
        f"{len(spec['micro_transitions'])} micro rows"
        for spec, _proof in entries)
    print(f"gen_protocol_spec: wrote {HEADER_REL} ({rows})")
    if args.verify:
        for entry, (_spec, proof) in zip(SPECS, entries):
            proof_path = os.path.join(args.root, entry["proof"])
            with open(proof_path, "w", encoding="utf-8") as f:
                f.write(proof_text(proof))
            print(f"gen_protocol_spec: wrote {entry['proof']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
