#!/usr/bin/env bash
# Aggregate lint entry point: one command that runs every static check the
# repo defines, in the same shape CI's lint job uses. Wired up as the `lint`
# build target (`cmake --build build --target lint`).
#
#   * platlint, full rule set over src/ + bench/ (both frontends when a
#     clang toolchain is available, plus the frontend-parity diff);
#   * the platlint fixture selftest (every rule demonstrably fires);
#   * gen_protocol_spec.py --check --verify (every committed protocol spec:
#     generated header + proof artifacts in sync, spec-level safety proofs
#     hold for directory and tardis alike);
#   * gen_protocol_spec.py --selftest (the verifier rejects forged specs);
#   * clang-tidy over src/ with the committed .clang-tidy.
#
# Checks that need missing tools (clang frontend, clang-tidy) exit 77 and
# are reported as skipped, mirroring ctest's SKIP_RETURN_CODE convention.
#
# Environment knobs:
#   PLATLINT_BUDGET  seconds allowed for the main platlint run (default 60;
#                    empty disables the gate)
#   PLATLINT_SARIF   when set, platlint also writes SARIF 2.1.0 there (CI
#                    uploads it to code scanning)
#
# Usage: lint_all.sh [repo-root] [build-dir]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
build="${2:-$root/build}"
budget="${PLATLINT_BUDGET-60}"
sarif="${PLATLINT_SARIF-}"

failed=()
skipped=()
passed=()

run() {
  local name="$1"
  shift
  echo "==== lint: $name ===="
  "$@"
  local rc=$?
  if [ "$rc" -eq 0 ]; then
    passed+=("$name")
  elif [ "$rc" -eq 77 ]; then
    skipped+=("$name")
  else
    failed+=("$name")
  fi
}

platlint_args=(--root "$root" --timing)
if [ -n "$budget" ]; then
  platlint_args+=(--budget "$budget")
fi
if [ -n "$sarif" ]; then
  platlint_args+=(--sarif-out "$sarif")
fi
run platlint python3 "$root/tools/platlint/platlint.py" "${platlint_args[@]}"
run platlint_fixtures python3 "$root/tools/platlint/platlint.py" \
    --root "$root" --selftest
run platlint_parity bash "$root/tools/platlint_parity.sh" "$root"
run protocol_spec python3 "$root/tools/gen_protocol_spec.py" \
    --root "$root" --check --verify
run protocol_spec_selftest python3 "$root/tools/gen_protocol_spec.py" \
    --root "$root" --selftest
run clang_tidy bash "$root/tools/run_clang_tidy.sh" "$root" "$build"

echo "==== lint summary ===="
echo "passed:  ${passed[*]-none}"
echo "skipped: ${skipped[*]-none}"
if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED:  ${failed[*]}"
  exit 1
fi
echo "lint: all checks passed"
