#!/usr/bin/env python3
"""Bans nondeterminism hazards from the simulation core.

The PLATINUM simulator's contract is that identical invocations produce
byte-identical output (virtual time, not wall-clock time; seeded hashing, not
ambient randomness; ordered containers wherever iteration order can reach the
output). This lint enforces that contract statically over the directories
that implement the simulation:

  * wall-clock time:   std::chrono, time(), clock(), gettimeofday
  * ambient randomness: rand(), srand(), std::random_device
  * hash-ordered iteration: std::unordered_map / std::unordered_set

Unordered containers are fine when they are only ever used for keyed lookup;
such uses are allowlisted with a `nondet-ok:` comment on the same line or one
of the two preceding lines, stating why the use cannot leak into output.

Usage: lint_nondeterminism.py <repo-root>
Exits nonzero listing every unsuppressed hit.
"""

import os
import re
import sys

# Directories holding the deterministic simulation core.
SCAN_DIRS = ["src/sim", "src/mem", "src/kernel", "src/apps"]

PATTERNS = [
    (re.compile(r"std::chrono|#include\s*<chrono>"), "wall-clock time (std::chrono)"),
    (re.compile(r"\bgettimeofday\s*\("), "wall-clock time (gettimeofday)"),
    (re.compile(r"\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock time (time())"),
    (re.compile(r"\bsrand\s*\(|(?<![\w:])rand\s*\(\s*\)"),
     "unseeded randomness (rand/srand)"),
    (re.compile(r"std::random_device"), "ambient randomness (std::random_device)"),
    (re.compile(r"std::unordered_(?:map|set)\b"),
     "hash-ordered container (iteration order leaks)"),
]

SUPPRESS = re.compile(r"nondet-ok:")


def lint_file(path):
    hits = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for i, line in enumerate(lines):
        for pattern, why in PATTERNS:
            if not pattern.search(line):
                continue
            window = lines[max(0, i - 2) : i + 1]
            if any(SUPPRESS.search(w) for w in window):
                continue
            hits.append((i + 1, why, line.strip()))
    return hits


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <repo-root>", file=sys.stderr)
        return 2
    root = sys.argv[1]
    failures = 0
    scanned = 0
    for rel in SCAN_DIRS:
        base = os.path.join(root, rel)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc", ".cpp")):
                    continue
                path = os.path.join(dirpath, name)
                scanned += 1
                for line_no, why, text in lint_file(path):
                    rel_path = os.path.relpath(path, root)
                    print(f"{rel_path}:{line_no}: {why}\n    {text}")
                    failures += 1
    if failures:
        print(f"\nlint_nondeterminism: {failures} hit(s) in {scanned} files; "
              "fix or annotate with a `nondet-ok:` comment explaining why "
              "the use cannot affect simulation output.")
        return 1
    print(f"lint_nondeterminism: {scanned} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
