#!/usr/bin/env python3
"""Compatibility shim: the nondeterminism lint now lives in tools/platlint.

Runs platlint's three nondeterminism rules (wall-clock, randomness,
unordered-container) over the simulation core, preserving the historical
CLI (`lint_nondeterminism.py <repo-root>`) and the `nondet-ok:` suppression
comments. New code should invoke tools/platlint/platlint.py directly; see
docs/STATIC_ANALYSIS.md.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "platlint"))

import platlint  # noqa: E402


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <repo-root>", file=sys.stderr)
        return 2
    return platlint.main(["--root", sys.argv[1],
                          "--rule", "wall-clock",
                          "--rule", "randomness",
                          "--rule", "unordered-container"])


if __name__ == "__main__":
    sys.exit(main())
