# tools/platlint: static analysis for the PLATINUM simulator.
# Entry point: platlint.py (see docs/STATIC_ANALYSIS.md).
