"""Optional clang AST frontend for the blocking-discipline check.

When clang++ is installed and the build exported `compile_commands.json`
(the top-level CMakeLists always does), this frontend re-derives the
may-yield call graph from `clang++ -Xclang -ast-dump=json` instead of the
textual model in cpp_model.py: function identities, callees and annotations
come from the real AST (`__attribute__((annotate("platinum::may_yield")))`
survives into AnnotateAttr nodes), so name-collision and receiver-inference
approximations disappear.

Opt in with `platlint.py --frontend clang`. The textual frontend stays the
default because it works on a bare gcc toolchain and in CI's lint job; this
one exists to cross-check it wherever clang is available. Any failure here
(no clang, no compile database, AST schema drift) degrades to a clear error,
never a silent pass.
"""

from __future__ import annotations

import json
import os
import shlex
import shutil
import subprocess

MAY_YIELD = "platinum::may_yield"
NO_YIELD = "platinum::no_yield"


class ClangUnavailable(RuntimeError):
    pass


def _find_clang() -> str:
    for name in ("clang++", "clang++-18", "clang++-17", "clang++-16", "clang++-15"):
        path = shutil.which(name)
        if path:
            return path
    raise ClangUnavailable("no clang++ on PATH; use the default text frontend")


def _load_compile_db(root: str) -> list[dict]:
    for rel in ("compile_commands.json", "build/compile_commands.json"):
        path = os.path.join(root, rel)
        if os.path.exists(path):
            with open(path, encoding="utf-8") as f:
                return json.load(f)
    raise ClangUnavailable("no compile_commands.json; configure with CMake first")


def _ast_for(clang: str, entry: dict) -> dict:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry["command"])
    # Keep the include paths/defines, replace compiler and output handling.
    out = [clang, "-fsyntax-only", "-Wno-everything", "-Xclang", "-ast-dump=json"]
    skip = 0
    for a in args[1:]:
        if skip:
            skip -= 1
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip = 1
            continue
        if a in ("-c", "-MD", "-MMD", "-MP") or a.startswith("-o"):
            continue
        out.append(a)
    proc = subprocess.run(out, cwd=entry.get("directory", "."),
                          capture_output=True, text=True, check=False)
    if proc.returncode != 0 or not proc.stdout:
        raise ClangUnavailable(
            f"clang AST dump failed for {entry.get('file')}: {proc.stderr[:500]}")
    return json.loads(proc.stdout)


def _annotations_of(node: dict) -> set[str]:
    out = set()
    for child in node.get("inner", []):
        if child.get("kind") == "AnnotateAttr":
            # The annotation string is a StringLiteral grandchild.
            stack = [child]
            while stack:
                n = stack.pop()
                if n.get("kind") == "StringLiteral":
                    out.add(n.get("value", "").strip('"'))
                stack.extend(n.get("inner", []))
    return out


def _qualified_name(node: dict, class_stack: list[str]) -> str:
    name = node.get("name", "")
    if node.get("kind") == "CXXMethodDecl" or class_stack:
        if class_stack:
            return f"{class_stack[-1]}::{name}"
    return name


def build_graph(root: str):
    """Returns (calls: qualified -> set[qualified], annotations, decl_locs)."""
    clang = _find_clang()
    db = _load_compile_db(root)
    calls: dict[str, set[str]] = {}
    annotations: dict[str, str] = {}
    locs: dict[str, tuple[str, int]] = {}

    def walk(node, class_stack, current_fn):
        kind = node.get("kind")
        if kind in ("CXXRecordDecl", "ClassTemplateDecl") and node.get("name"):
            class_stack = class_stack + [node["name"]]
        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl") and node.get("name"):
            qual = _qualified_name(node, class_stack)
            anns = _annotations_of(node)
            if MAY_YIELD in anns:
                annotations.setdefault(qual, "may_yield")
            if NO_YIELD in anns:
                annotations.setdefault(qual, "no_yield")
            loc = node.get("loc", {})
            if "file" in loc:
                locs.setdefault(qual, (loc["file"], loc.get("line", 0)))
            if any(c.get("kind") == "CompoundStmt" for c in node.get("inner", [])):
                current_fn = qual
                calls.setdefault(qual, set())
        if kind in ("DeclRefExpr", "MemberExpr") and current_fn is not None:
            ref = node.get("referencedDecl") or {}
            if ref.get("kind") in ("FunctionDecl", "CXXMethodDecl"):
                # Parent class is not in referencedDecl; match by name and let
                # the checker treat same-name functions as one node (clang
                # already resolved the overload, so collisions only merge
                # methods of identical names -- strictly conservative).
                calls[current_fn].add(ref.get("name", ""))
        for child in node.get("inner", []):
            walk(child, class_stack, current_fn)

    for entry in db:
        path = entry.get("file", "")
        if "/src/" not in path or not path.endswith((".cc", ".cpp")):
            continue
        walk(_ast_for(clang, entry), [], None)
    return calls, annotations, locs


def check_no_yield(root: str):
    """Findings (as dicts) for PLATINUM_NO_YIELD functions reaching a switch
    point, per the clang AST call graph."""
    calls, annotations, locs = build_graph(root)
    may_yield_simple = {q.split("::")[-1] for q, a in annotations.items()
                        if a == "may_yield"}
    # Propagate over simple names (see build_graph: callee edges are simple).
    changed = True
    yielding = set(may_yield_simple)
    while changed:
        changed = False
        for qual, callees in calls.items():
            simple = qual.split("::")[-1]
            if simple in yielding:
                continue
            if callees & yielding:
                yielding.add(simple)
                changed = True
    findings = []
    for qual, ann in annotations.items():
        if ann != "no_yield":
            continue
        reach = calls.get(qual, set()) & yielding
        if qual.split("::")[-1] in may_yield_simple:
            continue
        if reach:
            path, line = locs.get(qual, ("<unknown>", 0))
            findings.append({
                "rule": "no-yield", "path": path, "line": line,
                "message": f"{qual} is declared PLATINUM_NO_YIELD but calls "
                           f"{sorted(reach)} (clang AST frontend)"})
    return findings


def _collect_member_sites(ast: dict, member: str, directory: str, root: str,
                          sites: set):
    """Collects (repo-relative path, line) of every MemberExpr naming
    `member`, decoding clang's differential source locations: "file" and
    "line" appear in the JSON only when they change from the previously
    printed location, so the walk must visit locations in document order
    with mutable state."""
    state = {"file": None, "line": None}

    def bare(loc):
        if "file" in loc:
            state["file"] = loc["file"]
        if "line" in loc:
            state["line"] = loc["line"]
        return state["file"], state["line"]

    def visit(loc):
        if not isinstance(loc, dict) or not loc:
            return None, None
        if "spellingLoc" in loc or "expansionLoc" in loc:
            # Macro locations carry both; each updates the differential
            # state in print order, and the expansion is where the code is.
            if "spellingLoc" in loc:
                bare(loc["spellingLoc"])
            if "expansionLoc" in loc:
                return bare(loc["expansionLoc"])
            return state["file"], state["line"]
        return bare(loc)

    def rel(path):
        if path is None:
            return None
        if not os.path.isabs(path):
            path = os.path.join(directory, path)
        path = os.path.normpath(path)
        try:
            return os.path.relpath(path, root)
        except ValueError:
            return path

    def walk(node):
        visit(node.get("loc"))
        rng = node.get("range") or {}
        visit(rng.get("begin"))
        end_file, end_line = visit(rng.get("end"))
        # A MemberExpr's source range ends at the member-name token, which
        # is the same line the text frontend records for the call.
        if node.get("kind") == "MemberExpr" and node.get("name") == member:
            path = rel(end_file)
            if path and path.replace(os.sep, "/").startswith("src/mem/") and end_line:
                sites.add((path.replace(os.sep, "/"), end_line))
        for child in node.get("inner", []):
            if isinstance(child, dict):
                walk(child)

    walk(ast)


def conformance_sites(root: str) -> set:
    """(repo-relative path, line) of every Cpage::SetState call site in
    src/mem, per the clang AST."""
    clang = _find_clang()
    db = _load_compile_db(root)
    sites: set = set()
    for entry in db:
        path = entry.get("file", "").replace(os.sep, "/")
        if "/src/mem/" not in path or not path.endswith((".cc", ".cpp")):
            continue
        ast = _ast_for(clang, entry)
        _collect_member_sites(ast, "SetState", entry.get("directory", "."),
                              root, sites)
    if not sites:
        raise ClangUnavailable(
            "clang AST walk found zero SetState sites under src/mem; AST "
            "schema drift suspected — refusing a vacuous parity pass")
    return sites


def check_conformance_parity(root: str, text_sites: set):
    """Findings (as dicts) for SetState mutation sites where the text and
    clang frontends disagree. An empty list means both frontends saw the
    exact same (path, line) set, i.e. the textual protocol-conformance rule
    missed no mutation site and invented none."""
    ast_sites = conformance_sites(root)
    findings = []
    for path, line in sorted(text_sites - ast_sites):
        findings.append({
            "rule": "protocol-conformance", "path": path, "line": line,
            "message": "SetState site seen by the text frontend but not the "
                       "clang AST (frontend divergence)"})
    for path, line in sorted(ast_sites - text_sites):
        findings.append({
            "rule": "protocol-conformance", "path": path, "line": line,
            "message": "SetState site seen by the clang AST but not the text "
                       "frontend (frontend divergence)"})
    return findings
