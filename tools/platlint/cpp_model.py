"""Textual C++ source model for platlint.

Builds a lightweight whole-repo model of the C++ tree good enough to check
the PLATINUM kernel disciplines without a real compiler frontend:

  * function definitions (qualified name, body span, body text);
  * function/method declarations with their `PLATINUM_MAY_YIELD` /
    `PLATINUM_NO_YIELD` annotations and return types;
  * class member fields with their (base) types;
  * call sites inside each body, with best-effort receiver type inference
    (locals, parameters, member fields, chained accessor return types);
  * `#include "src/..."` edges for the layering rule.

The model is deliberately conservative in a specific direction: when a
receiver type cannot be inferred, a call resolves to *every* known function
of that simple name (may report too much, never too little); when a called
name is unknown to the repo (std::, libc), it resolves to nothing — all
scheduler switch points live in this tree, so unknown code cannot yield.

When clang is installed, the same disciplines are re-checked for real by
`-Wthread-safety` (see docs/STATIC_ANALYSIS.md); this model is the frontend
that works on a bare toolchain.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

# Keywords that look like `name(` call/definition sites but are not.
_NOT_A_CALL = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "alignas",
    "decltype", "catch", "static_assert", "case", "new", "delete", "throw",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "assert",
    "defined", "noexcept", "operator", "template", "typename", "typeid",
}

# Tokens that may sit between a definition's `)` and its `{`.
_SIG_TAIL_TOKENS = {"const", "noexcept", "override", "final", "mutable", "try"}

# `UPPER_CASE(...)` annotation macros (GUARDED_BY, ACQUIRE, PLAT_CHECK-style)
# stripped before declarations are interpreted.
_MACRO_CALL_RE = re.compile(r"\b[A-Z][A-Z0-9_]{2,}\s*\((?:[^()]|\([^()]*\))*\)")
_MACRO_BARE_RE = re.compile(r"\b[A-Z][A-Z0-9_]{2,}\b")

_ANNOTATION_RE = re.compile(r"\bPLATINUM_(MAY|NO)_YIELD\b")

# Determinism-taint annotations (src/base/thread_annotations.h): declared
# host-only / sanitizing regions for the determinism dataflow rule.
_TAINT_ANNOTATION_RE = re.compile(
    r"\bPLATINUM_(HOST_ONLY|DETERMINISTIC_SANITIZED)\b")

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"(src/[^"]+)"')

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _strip_code(text: str) -> str:
    """Blanks comments, string/char literals and preprocessor lines.

    Every non-newline character that is stripped becomes a space, so byte
    offsets and line numbers in the result match the original text.
    """
    out = list(text)
    n = len(text)
    i = 0
    # States walked explicitly; C++ raw strings are not used in this repo.
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        elif c == "#" and (i == 0 or text[:i].rstrip(" \t").endswith("\n") or
                           text[:i].strip(" \t") == ""):
            # Preprocessor line (with continuations). #define bodies can hold
            # unbalanced braces; the structural scan must never see them.
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    out[i] = " "
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def _taint_annotation_of(segment: str) -> str | None:
    m = _TAINT_ANNOTATION_RE.search(segment)
    if m is None:
        return None
    return "host_only" if m.group(1) == "HOST_ONLY" else "sanitized"


def _strip_macros(segment: str) -> str:
    """Removes annotation-style macros from a declaration segment."""
    prev = None
    while prev != segment:
        prev = segment
        segment = _MACRO_CALL_RE.sub(" ", segment)
    return _MACRO_BARE_RE.sub(" ", segment)


def _strip_template_args(s: str) -> str:
    """Removes balanced <...> groups: `std::vector<std::pair<A,B>>` -> `std::vector`."""
    out = []
    depth = 0
    for ch in s:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def _base_type(type_text: str) -> str | None:
    """`const sim::Scheduler&` -> `Scheduler`; `std::vector<T>` -> `vector`.

    Smart pointers are transparent: `std::unique_ptr<mem::CoherentMemory>`
    types as `CoherentMemory`, since `p->M()` dispatches on the pointee.
    """
    sp = re.search(r"\b(?:std::)?(?:unique_ptr|shared_ptr)\s*<(.*)>", type_text)
    if sp is not None:
        return _base_type(sp.group(1))
    cleaned = _strip_template_args(type_text).replace("*", " ").replace("&", " ")
    cleaned = re.sub(r"\b(const|constexpr|static|inline|mutable|volatile|struct|class|typename)\b",
                     " ", cleaned)
    idents = [t for part in cleaned.split() for t in part.split("::") if t]
    return idents[-1] if idents else None


@dataclass
class FunctionDef:
    qualified: str            # "Class::name" or "name" for free functions
    simple: str
    cls: str | None           # enclosing/qualifying class, if any
    path: str                 # repo-relative posix path
    sig_line: int             # 1-based line of the opening `(`
    body_start: int           # offset of `{` in the file's stripped text
    body_end: int             # offset just past the closing `}`
    body: str = ""            # stripped body text (between the braces)
    body_line: int = 0        # 1-based line of the `{`
    params: str = ""          # raw parameter-list text
    return_type: str | None = None
    annotation: str | None = None  # "may_yield" | "no_yield" | None
    taint_annotation: str | None = None  # "host_only" | "sanitized" | None


@dataclass
class Declaration:
    qualified: str
    simple: str
    cls: str | None
    path: str
    line: int
    return_type: str | None
    annotation: str | None
    taint_annotation: str | None = None


@dataclass
class FieldDecl:
    """A non-static data member, with its thread-safety annotations."""
    cls: str
    name: str
    type_base: str | None     # e.g. "DisciplineLock", "vector"
    path: str
    line: int
    guarded: bool = False     # GUARDED_BY / PT_GUARDED_BY present
    shared: bool = False      # PLATINUM_FIBER_SHARED present


@dataclass
class CallSite:
    name: str                 # called simple name
    offset: int               # offset within the body text
    line: int                 # 1-based line in the file
    receiver: list[str] | None  # component chain, e.g. ["machine_", "scheduler()"]


@dataclass
class SourceFile:
    path: str
    raw: str
    code: str = ""
    raw_lines: list[str] = field(default_factory=list)
    includes: list[tuple[int, str]] = field(default_factory=list)  # (line, "src/dir/file.h")
    functions: list[FunctionDef] = field(default_factory=list)
    declarations: list[Declaration] = field(default_factory=list)
    fields: dict[str, dict[str, str]] = field(default_factory=dict)  # class -> name -> base type
    field_decls: list[FieldDecl] = field(default_factory=list)
    class_bases: dict[str, list[str]] = field(default_factory=dict)  # class -> base simple names
    _line_starts: list[int] = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        """1-based line number for a byte offset."""
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1


def parse_file(path: str, text: str) -> SourceFile:
    sf = SourceFile(path=path, raw=text)
    sf.raw_lines = text.splitlines()
    sf.code = _strip_code(text)
    starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            starts.append(i + 1)
    sf._line_starts = starts
    for i, line in enumerate(sf.raw_lines):
        m = _INCLUDE_RE.match(line)
        if m:
            sf.includes.append((i + 1, m.group(1)))
    _structural_scan(sf)
    return sf


def _first_toplevel_paren(segment: str) -> int:
    """Offset of the first `(` at paren depth 0, or -1."""
    depth = 0
    angle = 0
    for i, ch in enumerate(segment):
        if ch == "(":
            if depth == 0 and angle == 0:
                return i
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "<":
            angle += 1
        elif ch == ">":
            angle = max(0, angle - 1)
    return -1


def _match_paren(text: str, open_idx: int) -> int:
    """Offset of the `)` matching text[open_idx] == `(`, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _name_before(segment: str, idx: int) -> str | None:
    """The (possibly qualified) identifier ending just before segment[idx]."""
    j = idx
    while j > 0 and segment[j - 1] in " \t\n":
        j -= 1
    m = re.search(r"((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)$", segment[:j])
    return m.group(1) if m else None


def _parse_bases(tail: str) -> list[str]:
    """Base-class simple names from the text after a class name.

    `` final : public mem::PageEventSink, public AccessObserver`` ->
    ``["PageEventSink", "AccessObserver"]``. The base-list colon is the
    first `:` at angle depth 0 that is not part of a `::`.
    """
    colon = -1
    depth = 0
    for i, ch in enumerate(tail):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif ch == ":" and depth == 0:
            if (i > 0 and tail[i - 1] == ":") or (i + 1 < len(tail) and tail[i + 1] == ":"):
                continue
            colon = i
            break
    if colon < 0:
        return []
    bases = []
    for part in _split_toplevel_commas(tail[colon + 1:]):
        part = re.sub(r"\b(public|private|protected|virtual)\b", " ", part)
        base = _base_type(part)
        if base:
            bases.append(base)
    return bases


def _split_toplevel_commas(s: str) -> list[str]:
    out = []
    depth = 0
    cur = []
    for ch in s:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return out


def _classify_segment(segment: str):
    """Classifies the text before a `{` at namespace/class scope.

    Returns ("namespace", name) | ("class", name, bases) | ("enum", None) |
    ("function", name, param_open, segment_stripped) | ("block", None).
    """
    seg = re.sub(r"\btemplate\s*<[^{}]*?>", " ", segment)
    m = re.search(r"\bnamespace\s+([\w:]*)\s*$", seg)
    if m is not None:
        return ("namespace", m.group(1))
    if re.search(r"\benum\b", seg):
        return ("enum", None)
    no_macros = _strip_macros(seg)
    cm = re.search(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)", no_macros)
    if cm is not None and "(" not in _strip_template_args(no_macros.split(":")[0]):
        return ("class", cm.group(1), _parse_bases(no_macros[cm.end():]))
    popen = _first_toplevel_paren(seg)
    if popen >= 0:
        name = _name_before(seg, popen)
        if name is not None and name.split("::")[-1].lstrip("~") not in _NOT_A_CALL \
                and "operator" not in name:
            return ("function", name, popen, seg)
    return ("block", None)


def _parse_member_segment(sf: SourceFile, segment: str, cls: str, seg_start: int):
    """A `;`-terminated segment at class scope: method decl or field."""
    # The segment starts right after the previous `;`/`{`; the declaration's
    # line is where its first token sits (past any access specifier), not
    # where the segment begins.
    spec = re.match(r"\s*(?:public|private|protected)\s*:", segment)
    content_off = spec.end() if spec else 0
    rest = segment[content_off:]
    line = sf.line_of(seg_start + content_off + (len(rest) - len(rest.lstrip())))
    seg = re.sub(r"^\s*(?:public|private|protected)\s*:", " ", segment)
    seg = re.sub(r"\btemplate\s*<[^{}]*?>", " ", seg)
    ann_m = _ANNOTATION_RE.search(seg)
    annotation = None
    if ann_m:
        annotation = "may_yield" if ann_m.group(1) == "MAY" else "no_yield"
    taint_annotation = _taint_annotation_of(seg)
    clean = _strip_macros(seg)
    popen = _first_toplevel_paren(clean)
    if popen >= 0:
        name = _name_before(clean, popen)
        if name is None or name.split("::")[-1].lstrip("~") in _NOT_A_CALL \
                or "operator" in name:
            return
        simple = name.split("::")[-1]
        ret = _base_type(clean[: popen - len(name)]) if popen > len(name) else None
        qualified = f"{cls}::{simple}" if cls else simple
        sf.declarations.append(Declaration(
            qualified=qualified, simple=simple, cls=cls or None, path=sf.path,
            line=line, return_type=ret, annotation=annotation,
            taint_annotation=taint_annotation))
        return
    if not cls:
        return
    # Field: `Type name = init;` / `Type name;` (initializer dropped).
    decl = clean.split("=")[0]
    m = re.search(r"((?:[\w:]+(?:<[^;]*>)?[\s*&]+)+)([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$",
                  decl)
    if m is None:
        return
    base = _base_type(m.group(1))
    if base is not None:
        sf.fields.setdefault(cls, {})[m.group(2)] = base
        # Thread-safety annotations live in the pre-strip text (they are
        # UPPER_CASE macros, gone from `clean`). Aliases and compile-time
        # members are not per-fiber state, so they carry no FieldDecl.
        if not re.search(r"\b(using|typedef|friend|static|constexpr)\b", decl):
            sf.field_decls.append(FieldDecl(
                cls=cls, name=m.group(2), type_base=base, path=sf.path, line=line,
                guarded=re.search(r"\b(?:PT_)?GUARDED_BY\s*\(", seg) is not None,
                shared=re.search(r"\bPLATINUM_FIBER_SHARED\b", seg) is not None))


def _structural_scan(sf: SourceFile):
    """Single pass over the stripped text building contexts/functions/fields."""
    code = sf.code
    n = len(code)
    # Stack entries: (kind, name, brace_depth_when_opened)
    stack: list[tuple[str, str | None]] = []
    seg_start = 0
    in_function: FunctionDef | None = None
    fn_depth = 0
    depth = 0
    i = 0
    while i < n:
        ch = code[i]
        if in_function is not None:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == fn_depth:
                    in_function.body_end = i + 1
                    in_function.body = code[in_function.body_start + 1: i]
                    sf.functions.append(in_function)
                    in_function = None
                    seg_start = i + 1
            i += 1
            continue
        if ch == "{":
            segment = code[seg_start:i]
            kind = _classify_segment(segment)
            if kind[0] == "function":
                name, popen, seg = kind[1], kind[2], kind[3]
                cls = None
                if "::" in name:
                    cls = name.split("::")[-2]
                else:
                    for k, nm in reversed(stack):
                        if k == "class":
                            cls = nm
                            break
                simple = name.split("::")[-1]
                qualified = f"{cls}::{simple}" if cls else simple
                pclose = _match_paren(seg, popen)
                params = seg[popen + 1: pclose] if pclose > popen else ""
                ann_m = _ANNOTATION_RE.search(seg)
                annotation = None
                if ann_m:
                    annotation = "may_yield" if ann_m.group(1) == "MAY" else "no_yield"
                ret = None
                prefix = seg[:popen - len(simple)] if popen > len(simple) else ""
                prefix = _strip_macros(prefix)
                # Drop the qualifier itself from the prefix before typing it.
                prefix = re.sub(r"((?:[A-Za-z_]\w*::)*)$", "", prefix.rstrip())
                ret = _base_type(prefix)
                fn = FunctionDef(
                    qualified=qualified, simple=simple, cls=cls, path=sf.path,
                    sig_line=sf.line_of(seg_start + popen),
                    body_start=i, body_end=-1,
                    body_line=sf.line_of(i), params=params,
                    return_type=ret, annotation=annotation,
                    taint_annotation=_taint_annotation_of(seg))
                in_function = fn
                fn_depth = depth
                depth += 1
                i += 1
                continue
            if kind[0] == "class":
                sf.class_bases[kind[1]] = kind[2]
            stack.append((kind[0], kind[1] if len(kind) > 1 else None))
            depth += 1
            seg_start = i + 1
        elif ch == "}":
            if stack:
                stack.pop()
            depth = max(0, depth - 1)
            i += 1
            # `};` after class bodies.
            while i < n and code[i] in " \t\n;":
                i += 1
            seg_start = i
            continue
        elif ch == ";":
            segment = code[seg_start:i]
            cls = None
            for k, nm in reversed(stack):
                if k == "class":
                    cls = nm
                    break
                if k == "enum":
                    cls = None
                    break
            in_enum = any(k == "enum" for k, _ in stack[-1:])
            if segment.strip() and not in_enum:
                _parse_member_segment(sf, segment, cls or "", seg_start)
            seg_start = i + 1
        i += 1


# ---------------------------------------------------------------------------
# Call extraction and receiver typing
# ---------------------------------------------------------------------------

_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")

# One receiver-chain component: `name` or `name(...)` behind `.` or `->`.
_CHAIN_COMPONENT_RE = re.compile(r"([A-Za-z_]\w*)\s*(\((?:[^()]|\([^()]*\))*\))?\s*$")

_LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}()])\s*(?:const\s+)?((?:\w+::)*\w+(?:<[^;(){}]*>)?)\s*[&*]?\s+"
    r"([a-z_]\w*)\s*[=;]", re.M)
_RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?((?:\w+::)*\w+(?:<[^)]*>)?)\s*[&*]?\s*([a-z_]\w*)\s*:")
_PARAM_RE = re.compile(
    r"(?:^|,)\s*(?:const\s+)?((?:\w+::)*\w+(?:<[^,()]*>)?)\s*[&*]*\s*([a-z_]\w*)\s*(?:=[^,]*)?(?:,|$)")


def local_types(fn: FunctionDef) -> dict[str, str]:
    """Best-effort map of local/parameter variable name -> base type."""
    out: dict[str, str] = {}
    for m in _PARAM_RE.finditer(fn.params):
        base = _base_type(m.group(1))
        if base:
            out[m.group(2)] = base
    for m in _LOCAL_DECL_RE.finditer(fn.body):
        base = _base_type(m.group(1))
        if base and base not in ("return", "auto", "else", "delete", "using"):
            out[m.group(2)] = base
    for m in _RANGE_FOR_RE.finditer(fn.body):
        base = _base_type(m.group(1))
        if base and base != "auto":
            out[m.group(2)] = base
    return out


def extract_calls(fn: FunctionDef, file: SourceFile) -> list[CallSite]:
    """All `name(` call sites in fn's body with receiver chains."""
    calls = []
    body = fn.body
    for m in _CALL_RE.finditer(body):
        name = m.group(1)
        if name in _NOT_A_CALL:
            continue
        start = m.start(1)
        # Preceded by `.` or `->`? Walk the chain backwards.
        j = start
        while j > 0 and body[j - 1] in " \t\n":
            j -= 1
        receiver = None
        if j >= 1 and (body[j - 1] == "." or (j >= 2 and body[j - 2: j] == "->")):
            receiver = []
            k = j - (1 if body[j - 1] == "." else 2)
            while True:
                cm = _CHAIN_COMPONENT_RE.search(body[:k])
                if cm is None:
                    receiver = None  # starts with `)`, `]`, `this`... give up
                    break
                comp = cm.group(1) + ("()" if cm.group(2) else "")
                receiver.insert(0, comp)
                k2 = cm.start(1)
                while k2 > 0 and body[k2 - 1] in " \t\n":
                    k2 -= 1
                if k2 >= 1 and body[k2 - 1] == ".":
                    k = k2 - 1
                elif k2 >= 2 and body[k2 - 2: k2] == "->":
                    k = k2 - 2
                else:
                    break
            if receiver is not None and receiver and receiver[0] == "this":
                receiver = receiver[1:] or None
        calls.append(CallSite(
            name=name, offset=start,
            line=file.line_of(fn.body_start + 1 + start),
            receiver=receiver))
    return calls


class RepoModel:
    """Aggregated whole-repo view used by the rules."""

    def __init__(self, files: list[SourceFile]):
        self.files = {f.path: f for f in files}
        self.root: str | None = None  # filesystem root (set by load_tree)
        self.functions: list[FunctionDef] = []
        self.by_simple: dict[str, list[FunctionDef]] = {}
        self.fields: dict[str, dict[str, str]] = {}
        self.field_decls: list[FieldDecl] = []
        self.class_bases: dict[str, list[str]] = {}
        self.annotations: dict[str, str] = {}
        self.taint_annotations: dict[str, str] = {}  # qualified -> host_only|sanitized
        self.return_types: dict[tuple[str | None, str], str] = {}
        self.decl_lines: dict[str, tuple[str, int]] = {}
        for f in files:
            for cls, members in f.fields.items():
                self.fields.setdefault(cls, {}).update(members)
            self.field_decls.extend(f.field_decls)
            for cls, bases in f.class_bases.items():
                if bases or cls not in self.class_bases:
                    self.class_bases[cls] = bases
            for fn in f.functions:
                self.functions.append(fn)
                self.by_simple.setdefault(fn.simple, []).append(fn)
                if fn.annotation:
                    self.annotations[fn.qualified] = fn.annotation
                if fn.taint_annotation:
                    self.taint_annotations[fn.qualified] = fn.taint_annotation
                if fn.return_type:
                    self.return_types.setdefault((fn.cls, fn.simple), fn.return_type)
            for d in f.declarations:
                if d.annotation:
                    self.annotations[d.qualified] = d.annotation
                    self.decl_lines[d.qualified] = (d.path, d.line)
                if d.taint_annotation:
                    self.taint_annotations.setdefault(d.qualified, d.taint_annotation)
                if d.return_type:
                    self.return_types.setdefault((d.cls, d.simple), d.return_type)
        self.known_quals = {fn.qualified for fn in self.functions} | set(self.annotations)

    def derives_from(self, cls: str, roots: set[str]) -> bool:
        """True iff `cls` is, or transitively derives from, a class in `roots`."""
        seen = set()
        frontier = [cls]
        while frontier:
            cur = frontier.pop()
            if cur in roots:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(self.class_bases.get(cur, []))
        return False

    def resolve_receiver_type(self, fn: FunctionDef, chain: list[str],
                              locals_map: dict[str, str]) -> str | None:
        """Type of the object a chained call is invoked on, or None."""
        cur: str | None = None
        for idx, comp in enumerate(chain):
            is_call = comp.endswith("()")
            name = comp[:-2] if is_call else comp
            if idx == 0:
                if is_call:
                    # Accessor on the enclosing object, or a free function.
                    cur = (self.return_types.get((fn.cls, name))
                           or self.return_types.get((None, name)))
                else:
                    cur = (locals_map.get(name)
                           or (self.fields.get(fn.cls or "", {}).get(name)))
            else:
                if cur is None:
                    return None
                if is_call:
                    cur = self.return_types.get((cur, name))
                else:
                    cur = self.fields.get(cur, {}).get(name)
            if cur is None:
                return None
        return cur

    def resolve_call(self, fn: FunctionDef, call: CallSite,
                     locals_map: dict[str, str]) -> list[FunctionDef | str]:
        """Candidate callees for a call site.

        Returns FunctionDefs for in-repo definitions, plus bare qualified-name
        strings for annotated declarations with no parsed body. Unknown names
        resolve to [] (cannot yield: every switch point is in this repo).
        """
        cands = self.by_simple.get(call.name, [])
        ann_only = [q for q in self.annotations
                    if q.split("::")[-1] == call.name
                    and q not in {c.qualified for c in cands}]
        if call.receiver is not None:
            rtype = self.resolve_receiver_type(fn, call.receiver, locals_map)
            if rtype is not None:
                out: list[FunctionDef | str] = [c for c in cands if c.cls == rtype]
                out += [q for q in ann_only if q.startswith(rtype + "::")]
                return out
            return list(cands) + ann_only  # conservative union
        # Plain call: same-class method first, else free function.
        same = [c for c in cands if c.cls == fn.cls and fn.cls is not None]
        if same:
            return list(same)
        free = [c for c in cands if c.cls is None]
        if free:
            return list(free)
        if fn.cls is not None:
            ann_same = [q for q in ann_only if q.startswith(fn.cls + "::")]
            if ann_same:
                return ann_same
        return []


# Parsed trees keyed by (root, rel_dirs): parsing is by far the most
# expensive step, and platlint --selftest builds one model per fixture over
# the same on-disk tree. Files do not change within one process run, so the
# parsed SourceFiles (which the rules never mutate) are shared; only the
# cheap RepoModel aggregation is rebuilt per extra-file set.
_PARSE_CACHE: dict[tuple[str, tuple[str, ...]], list[SourceFile]] = {}


def _parse_tree(root: str, rel_dirs: list[str]) -> list[SourceFile]:
    key = (os.path.abspath(root), tuple(rel_dirs))
    cached = _PARSE_CACHE.get(key)
    if cached is not None:
        return cached
    files = []
    for rel in rel_dirs:
        base = os.path.join(root, rel)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if not name.endswith((".h", ".cc", ".cpp")):
                    continue
                full = os.path.join(dirpath, name)
                with open(full, encoding="utf-8") as f:
                    text = f.read()
                rel_path = os.path.relpath(full, root).replace(os.sep, "/")
                files.append(parse_file(rel_path, text))
    _PARSE_CACHE[key] = files
    return files


def load_tree(root: str, rel_dirs: list[str],
              extra: list[tuple[str, str]] | None = None) -> RepoModel:
    """Parses every .h/.cc/.cpp under root/rel_dirs (plus extra (path, text))."""
    files = list(_parse_tree(root, rel_dirs))
    for path, text in extra or []:
        files.append(parse_file(path, text))
    model = RepoModel(files)
    model.root = root
    return model


def calls_of(fn: FunctionDef, file: SourceFile) -> list[CallSite]:
    """extract_calls with a per-FunctionDef cache (safe: bodies are immutable
    once parsed, and cached SourceFiles share FunctionDef objects across
    models)."""
    cached = getattr(fn, "_platlint_calls", None)
    if cached is None:
        cached = extract_calls(fn, file)
        fn._platlint_calls = cached
    return cached


def locals_of(fn: FunctionDef) -> dict[str, str]:
    """local_types with the same per-FunctionDef cache as calls_of."""
    cached = getattr(fn, "_platlint_locals", None)
    if cached is None:
        cached = local_types(fn)
        fn._platlint_locals = cached
    return cached
