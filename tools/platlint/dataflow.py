"""Interprocedural determinism taint analysis for platlint.

Tracks host-nondeterministic values ("taint") through the textual C++ model
and reports any flow into sim-visible state. The determinism contract is
*invocation identity*: two runs of the same binary with the same arguments
and environment must produce byte-identical simulated behavior and output —
so anything the host is free to vary between those runs (the wall clock,
ambient randomness, where the allocator placed an object, hash iteration
order, which host thread ran a worker) must never influence the simulation.

Sources (each occurrence carries a source class used in the report):

  wall-clock           std::chrono::*_clock::now, time(), clock_gettime,
                       gettimeofday
  randomness           std::random_device, rand()/srand()
  pointer-order        reinterpret_cast<[u]intptr_t>, std::hash/std::less
                       over pointer types, iteration of a std::map/std::set
                       keyed by pointers
  unordered-iteration  range-for or .begin() over std::unordered_{map,set}
  host-thread-id       std::this_thread::get_id, pthread_self,
                       std::thread::hardware_concurrency
  env-read             getenv / secure_getenv

Propagation is a fixpoint over three relations:

  * assignments: `x = expr` taints `x` when `expr` mentions a source, a
    tainted variable, or a call to a taint-returning function;
  * returns: `return expr` with tainted `expr` makes the function
    taint-returning (its call sites become source expressions);
  * arguments: passing a tainted expression as argument i taints the
    callee's parameter i.

Sinks are calls into the deterministic simulation (functions defined under
src/sim, src/mem, src/kernel) and the emission layer (obs::JsonWriter,
mem::TraceLog, obs exporters): a tainted argument to any of them is a
finding, reported with the full provenance chain in the style of the
no-yield witness chains. A direct source occurrence *inside* the
deterministic core is also a finding for the classes the pattern rules do
not already cover (env-read, host-thread-id, pointer-order,
unordered-iteration); wall-clock and randomness in the core stay with the
dedicated pattern rules so each site is reported exactly once.

Sanctioned escapes (src/base/thread_annotations.h):

  PLATINUM_HOST_ONLY                body exempt from sink checks; calling the
                                    function is never a sink; its return value
                                    still carries taint.
  PLATINUM_DETERMINISTIC_SANITIZED  body exempt; the return value is clean
                                    and tainted arguments stop at its
                                    boundary (a validating funnel).

Like the rest of the textual model this is conservative per direction:
member fields are not tracked across functions (a host value laundered
through an object member is caught by the dynamic determinism_check.sh
gate, not here), while unresolvable calls fall back to name matching.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cpp_model import (FunctionDef, RepoModel, _match_paren,
                       _split_toplevel_commas, calls_of, locals_of)

# Source classes whose *direct* occurrence inside the deterministic core is
# reported by this rule (the others are covered by the pattern rules).
CORE_REPORTED_CLASSES = {
    "env-read", "host-thread-id", "pointer-order", "unordered-iteration",
}

# (class, pattern, human description). Matched against stripped expression
# text, so comments and string literals never fire.
SOURCE_PATTERNS: list[tuple[str, re.Pattern, str]] = [
    ("wall-clock",
     re.compile(r"\b(?:std::)?chrono::\s*\w+_clock::now\s*\("),
     "host wall clock (chrono::now)"),
    ("wall-clock",
     re.compile(r"\b(?:gettimeofday|clock_gettime)\s*\("),
     "host wall clock"),
    ("wall-clock",
     re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "host wall clock (time())"),
    ("randomness",
     re.compile(r"\bstd::random_device\b"),
     "ambient randomness (std::random_device)"),
    ("randomness",
     re.compile(r"(?<![\w:.>])s?rand\s*\("),
     "ambient randomness (rand)"),
    ("pointer-order",
     re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer value as integer (allocation order)"),
    ("pointer-order",
     re.compile(r"\bstd::(?:hash|less)\s*<[^<>;]*\*\s*>"),
     "pointer hashing/ordering"),
    ("host-thread-id",
     re.compile(r"\bstd::this_thread::get_id\s*\("),
     "host thread id"),
    ("host-thread-id",
     re.compile(r"\bpthread_self\s*\("),
     "host thread id (pthread_self)"),
    ("host-thread-id",
     re.compile(r"\bhardware_concurrency\s*\("),
     "host CPU count (hardware_concurrency)"),
    ("env-read",
     re.compile(r"\b(?:std::)?(?:secure_)?getenv\s*\("),
     "environment read (getenv)"),
]

# Local variables of these declared (base) types are taint at birth: every
# value drawn from them is host state, assignment or not.
TAINTED_LOCAL_TYPES = {
    "random_device": ("randomness", "std::random_device"),
}

# Declared container types whose iteration order is host-nondeterministic.
# `type-pattern var` declarations (params, locals, fields) feed the
# per-function nondeterministically-ordered variable map.
_UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>[\s&*]*"
    r"\b([A-Za-z_]\w*)\b\s*[,)=;{]")
_PTR_KEYED_DECL_RE = re.compile(
    r"(?<!unordered_)\b(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?"
    r"[\w:]+(?:<[^<>]*>)?\s*\*[^;{}()]*>[\s&*]*\b([A-Za-z_]\w*)\b\s*[,)=;{]")
_UNORDERED_FIELD_BASES = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
}

_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*([^:;()]+?)\s*:\s*([^);]+)\)")
_BEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")

# `lhs = rhs;` / `lhs += rhs;` — the workhorse of intra-function propagation.
_ASSIGN_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:[-+*/|&^]|<<|>>)?=(?![=])\s*([^;]*);", re.S)
_RETURN_RE = re.compile(r"\breturn\b([^;]*);", re.S)
_CALLED_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# Functions defined in these directories mutate or observe sim-visible state;
# a tainted argument to any of them is a determinism violation.
SINK_DIRS = ("src/sim/", "src/mem/", "src/kernel/", "src/apps/")
# Emission-layer classes outside those directories (trace/stats/JSON output
# is part of the byte-identity contract checked by determinism_check.sh).
SINK_CLASSES = {
    "JsonWriter", "TraceLog", "Histogram", "MachineStats", "StatsJson",
    "TraceJson", "PageTrace", "EpochSampler",
}
# Emission-layer free functions.
SINK_FUNCTIONS = {"WriteFileOrDie"}

_CHAIN_LIMIT = 6


@dataclass(frozen=True)
class Taint:
    source_class: str
    chain: tuple[str, ...]  # human-readable provenance, source first

    def extended(self, step: str) -> "Taint":
        if len(self.chain) >= _CHAIN_LIMIT:
            return self
        return Taint(self.source_class, self.chain + (step,))

    def witness(self) -> str:
        return " -> ".join(self.chain)


def _source_hits(text: str):
    """(class, description, match offset) for every source pattern hit."""
    for cls_, pat, desc in SOURCE_PATTERNS:
        for m in pat.finditer(text):
            yield cls_, desc, m.start()


class TaintAnalysis:
    """Whole-model taint facts; built once per RepoModel by the rule."""

    def __init__(self, model: RepoModel):
        self.model = model
        # qualified -> {var -> Taint}
        self.var_taint: dict[str, dict[str, Taint]] = {}
        # qualified -> Taint carried by the return value
        self.returns: dict[str, Taint] = {}
        # (qualified, param name) already-propagated marker
        self._param_seen: set[tuple[str, str]] = set()
        self._param_names: dict[str, list[str | None]] = {}
        self._ordered_vars: dict[str, dict[str, tuple[str, str]]] = {}
        for fn in model.functions:
            self.var_taint.setdefault(fn.qualified, {})
            self._param_names[fn.qualified] = _param_names(fn)
            self._ordered_vars[fn.qualified] = self._nondet_ordered_vars(fn)
        self._fixpoint()

    # -- taint exemptions ---------------------------------------------------

    def exempt(self, fn: FunctionDef) -> bool:
        return self.model.taint_annotations.get(fn.qualified) is not None

    def _sanitized(self, qualified: str) -> bool:
        return self.model.taint_annotations.get(qualified) == "sanitized"

    # -- variable universe --------------------------------------------------

    def _nondet_ordered_vars(self, fn: FunctionDef) -> dict[str, tuple[str, str]]:
        """Variables whose *iteration* yields host order: name ->
        (source class, description)."""
        out: dict[str, tuple[str, str]] = {}
        scope = fn.params + ";" + fn.body
        for m in _UNORDERED_DECL_RE.finditer(scope):
            out[m.group(1)] = ("unordered-iteration",
                              "hash-ordered container " + m.group(1))
        for m in _PTR_KEYED_DECL_RE.finditer(scope):
            out[m.group(1)] = ("pointer-order",
                              "pointer-keyed ordered container " + m.group(1))
        for name, base in self.model.fields.get(fn.cls or "", {}).items():
            if base in _UNORDERED_FIELD_BASES:
                out.setdefault(name, ("unordered-iteration",
                                      "hash-ordered member " + name))
        return out

    # -- expression-level taint ---------------------------------------------

    def expr_taint(self, fn: FunctionDef, expr: str) -> Taint | None:
        """Taint carried by an expression inside fn's body, if any."""
        for cls_, desc, _ in _source_hits(expr):
            return Taint(cls_, (f"{desc} in {fn.qualified}",))
        ordered = self._ordered_vars[fn.qualified]
        bm = _BEGIN_RE.search(expr)
        if bm is not None and bm.group(1) in ordered:
            cls_, desc = ordered[bm.group(1)]
            return Taint(cls_, (f"iteration of {desc} in {fn.qualified}",))
        taints = self.var_taint.get(fn.qualified, {})
        for m in _CALLED_NAME_RE.finditer(expr):
            name = m.group(1)
            for q, t in self.returns.items():
                if q.split("::")[-1] == name:
                    return t.extended(f"{q}() returns it")
        for var, t in taints.items():
            if re.search(rf"\b{re.escape(var)}\b", expr):
                return t.extended(f"{var} in {fn.qualified}")
        return None

    # -- fixpoint -----------------------------------------------------------

    def _fixpoint(self):
        model = self.model
        changed = True
        while changed:
            changed = False
            for fn in model.functions:
                changed |= self._propagate_in(fn)
                changed |= self._propagate_returns(fn)
                changed |= self._propagate_args(fn)

    def _taint_var(self, fn: FunctionDef, var: str, taint: Taint) -> bool:
        cur = self.var_taint[fn.qualified]
        if var in cur:
            return False
        cur[var] = taint
        return True

    def _propagate_in(self, fn: FunctionDef) -> bool:
        changed = False
        for var, base in locals_of(fn).items():
            hit = TAINTED_LOCAL_TYPES.get(base)
            if hit is not None:
                cls_, desc = hit
                changed |= self._taint_var(
                    fn, var, Taint(cls_, (f"{desc} {var} in {fn.qualified}",)))
        # Iterating a nondeterministically-ordered container taints the loop
        # variable (and, via .begin(), the iterator's naming variable's uses
        # flow through plain assignments afterwards).
        ordered = self._ordered_vars[fn.qualified]
        for m in _RANGE_FOR_RE.finditer(fn.body):
            decl, iterated = m.group(1), m.group(2).strip()
            base = re.sub(r"[&*]|\bconst\b|\bauto\b", " ", iterated).strip()
            base_id = re.match(r"([A-Za-z_]\w*)", base)
            if base_id is None or base_id.group(1) not in ordered:
                continue
            cls_, desc = ordered[base_id.group(1)]
            var_m = re.search(r"([A-Za-z_]\w*)\s*$", decl)
            if var_m is None:
                continue
            changed |= self._taint_var(
                fn, var_m.group(1),
                Taint(cls_, (f"iteration of {desc} in {fn.qualified}",)))
        for m in _ASSIGN_RE.finditer(fn.body):
            lhs, rhs = m.group(1), m.group(2)
            if lhs in self.var_taint[fn.qualified]:
                continue
            t = self.expr_taint(fn, rhs)
            if t is not None:
                changed |= self._taint_var(fn, lhs, t.extended(
                    f"assigned to {lhs} in {fn.qualified}"))
        return changed

    def _propagate_returns(self, fn: FunctionDef) -> bool:
        if fn.qualified in self.returns or self._sanitized(fn.qualified):
            return False
        for m in _RETURN_RE.finditer(fn.body):
            t = self.expr_taint(fn, m.group(1))
            if t is not None:
                self.returns[fn.qualified] = t.extended(
                    f"returned by {fn.qualified}")
                return True
        return False

    def _propagate_args(self, fn: FunctionDef) -> bool:
        changed = False
        if not self._maybe_tainted(fn):
            return False
        for call, args in self._calls_with_args(fn):
            for cand in self.model.resolve_call(fn, call, locals_of(fn)):
                if isinstance(cand, str):
                    continue
                if self._sanitized(cand.qualified):
                    continue  # the funnel validates its inputs
                pnames = self._param_names[cand.qualified]
                for i, arg in enumerate(args):
                    if i >= len(pnames) or pnames[i] is None:
                        continue
                    key = (cand.qualified, pnames[i])
                    if key in self._param_seen:
                        continue
                    t = self.expr_taint(fn, arg)
                    if t is not None:
                        self._param_seen.add(key)
                        changed |= self._taint_var(
                            cand, pnames[i], t.extended(
                                f"passed to {cand.qualified}({pnames[i]})"))
        return changed

    def _maybe_tainted(self, fn: FunctionDef) -> bool:
        """Fast path: can any expression in fn's body be tainted at all?"""
        if self.var_taint[fn.qualified]:
            return True
        cached = getattr(fn, "_platlint_has_source", None)
        if cached is None:
            cached = (any(True for _ in _source_hits(fn.body))
                      or bool(self._ordered_vars[fn.qualified]))
            fn._platlint_has_source = cached
        if cached:
            return True
        return any(q.split("::")[-1] in fn.body for q in self.returns)

    def _calls_with_args(self, fn: FunctionDef):
        """(CallSite, [argument texts]) for each call in fn's body."""
        cached = getattr(fn, "_platlint_call_args", None)
        if cached is not None:
            return cached
        out = []
        sf = self.model.files[fn.path]
        for call in calls_of(fn, sf):
            popen = fn.body.find("(", call.offset)
            if popen < 0:
                continue
            close = _match_paren(fn.body, popen)
            if close < 0:
                continue
            inner = fn.body[popen + 1: close]
            args = [a for a in (s.strip() for s in _split_toplevel_commas(inner))
                    if a]
            out.append((call, args))
        fn._platlint_call_args = out
        return out

    # -- findings -----------------------------------------------------------

    def direct_core_findings(self, fn: FunctionDef):
        """(line, message) for direct sources inside the deterministic core."""
        if not fn.path.startswith(SINK_DIRS) or self.exempt(fn):
            return
        sf = self.model.files[fn.path]
        seen_lines = set()
        for cls_, desc, off in _source_hits(fn.body):
            if cls_ not in CORE_REPORTED_CLASSES:
                continue
            line = sf.line_of(fn.body_start + 1 + off)
            if line in seen_lines:
                continue
            seen_lines.add(line)
            yield line, (f"{desc} inside the deterministic core: {fn.qualified} "
                         "is sim-visible, so this value shapes simulated "
                         f"behavior ({cls_})")
        ordered = self._ordered_vars[fn.qualified]
        for m in _RANGE_FOR_RE.finditer(fn.body):
            base_id = re.match(r"[&*\s]*([A-Za-z_]\w*)",
                               m.group(2).strip())
            if base_id is None or base_id.group(1) not in ordered:
                continue
            cls_, desc = ordered[base_id.group(1)]
            line = sf.line_of(fn.body_start + 1 + m.start())
            if line not in seen_lines:
                seen_lines.add(line)
                yield line, (f"iteration of {desc} inside the deterministic "
                             f"core ({fn.qualified}): visit order is host "
                             f"state, not simulated state ({cls_})")

    def _is_sink(self, cand) -> str | None:
        """Sink description if the candidate callee is sim-visible."""
        if isinstance(cand, str):
            return None
        if self.model.taint_annotations.get(cand.qualified) is not None:
            return None  # declared host-only / sanitizing callee
        if cand.cls in SINK_CLASSES:
            return f"emission sink {cand.qualified}"
        if cand.simple in SINK_FUNCTIONS:
            return f"emission sink {cand.qualified}"
        if cand.path.startswith(SINK_DIRS):
            return f"sim-visible {cand.qualified} ({cand.path})"
        return None

    def sink_findings(self, fn: FunctionDef):
        """(line, message) for tainted arguments flowing into sinks."""
        if self.exempt(fn) or not self._maybe_tainted(fn):
            return
        for call, args in self._calls_with_args(fn):
            sink = None
            for cand in self.model.resolve_call(fn, call, locals_of(fn)):
                sink = self._is_sink(cand)
                if sink is not None:
                    break
            if sink is None:
                continue
            for i, arg in enumerate(args):
                t = self.expr_taint(fn, arg)
                if t is None:
                    continue
                yield call.line, (
                    f"host-nondeterministic value ({t.source_class}) reaches "
                    f"{sink} as argument {i + 1} of {call.name}() in "
                    f"{fn.qualified}: {t.witness()} -> {call.name}(arg {i + 1})")
                break  # one finding per call site


def _param_names(fn: FunctionDef) -> list[str | None]:
    """Positional parameter names, None where unnamed/unparseable."""
    out: list[str | None] = []
    if not fn.params.strip():
        return out
    for part in _split_toplevel_commas(fn.params):
        part = part.split("=")[0].strip()
        m = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$", part)
        name = m.group(1) if m else None
        # A bare type (`int`, `const Foo&`) has no separate name token.
        if name is not None and re.fullmatch(
                r"(?:const|int|long|unsigned|char|bool|float|double|void|auto)",
                name):
            name = None
        out.append(name)
    return out


def get_taint_analysis(model: RepoModel) -> TaintAnalysis:
    cached = getattr(model, "_platlint_taint_analysis", None)
    if cached is None:
        cached = TaintAnalysis(model)
        model._platlint_taint_analysis = cached
    return cached
