// platlint fixture: must trigger the annotation-coverage rule.
// platlint-fixture-as: src/check/fixture_annotation_coverage.cc
// platlint-fixture-rule: annotation-coverage
//
// A hook implementer whose counter is neither GUARDED_BY a lock nor marked
// PLATINUM_FIBER_SHARED: the hook runs on whichever fiber faulted, so the
// member is shared mutable state with no declared synchronization story.
#include <cstdint>

#include "src/mem/access_observer.h"

namespace platinum::check {

class FixtureCounter : public mem::AccessObserver {
 public:
  void OnMemoryAccess(const mem::MemoryAccess& access) override { ++accesses_; }

 private:
  uint64_t accesses_ = 0;
};

}  // namespace platinum::check
