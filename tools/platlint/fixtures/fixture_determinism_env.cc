// platlint fixture: must trigger the determinism-taint rule.
// platlint-fixture-as: bench/fixture_determinism_env.cc
// platlint-fixture-rule: determinism-taint
//
// A raw (unsanitized) environment read flows into the scheduler. The
// sanctioned form is a PLATINUM_DETERMINISTIC_SANITIZED funnel like
// bench::EnvInt, which validates the knob and makes it part of the
// invocation identity.
#include <cstdlib>

#include "src/sim/scheduler.h"

namespace platinum::bench {

void ChargeFromEnvironment(sim::Scheduler& sched) {
  const char* raw = std::getenv("PLATINUM_FIXTURE_SKEW");
  long skew = raw ? std::atol(raw) : 0;
  sched.Advance(sim::SimTime(skew));
}

}  // namespace platinum::bench
