// platlint fixture: must trigger the determinism-taint rule.
// platlint-fixture-as: src/mem/fixture_determinism_pointer_order.cc
// platlint-fixture-rule: determinism-taint
//
// A pointer value cast to an integer inside the deterministic core: the
// allocator (host state) decides what this function computes, so any use of
// the result makes simulated behavior depend on allocation order.
#include <cstdint>

namespace platinum::mem {

uint64_t FixtureStablePageId(const void* frame) {
  return reinterpret_cast<uintptr_t>(frame);
}

}  // namespace platinum::mem
