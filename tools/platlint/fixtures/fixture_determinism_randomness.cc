// platlint fixture: must trigger the determinism-taint rule.
// platlint-fixture-as: bench/fixture_determinism_randomness.cc
// platlint-fixture-rule: determinism-taint
//
// Ambient randomness seeds a simulated-time charge. (Seeded, deterministic
// PRNGs are fine; std::random_device is host entropy.)
#include <random>

#include "src/sim/scheduler.h"

namespace platinum::bench {

void ChargeRandomly(sim::Scheduler& sched) {
  std::random_device entropy;
  unsigned jitter = entropy();
  sched.Advance(sim::SimTime(jitter));
}

}  // namespace platinum::bench
