// platlint fixture: must trigger the determinism-taint rule.
// platlint-fixture-as: bench/fixture_determinism_thread_id.cc
// platlint-fixture-rule: determinism-taint
//
// The host thread id (which worker happened to run this sweep point) leaks
// into a simulated-time charge.
#include <functional>
#include <thread>

#include "src/sim/scheduler.h"

namespace platinum::bench {

void ChargePerWorker(sim::Scheduler& sched) {
  auto worker = std::hash<std::thread::id>{}(std::this_thread::get_id());
  sched.Advance(sim::SimTime(worker % 1024));
}

}  // namespace platinum::bench
