// platlint fixture: must trigger the determinism-taint rule.
// platlint-fixture-as: bench/fixture_determinism_unordered_iter.cc
// platlint-fixture-rule: determinism-taint
//
// Hash-ordered iteration taints the accumulated value, the taint survives
// the return, and the caller hands it to the scheduler: an interprocedural
// source-to-sink chain across two functions.
#include <cstdint>
#include <unordered_map>

#include "src/sim/scheduler.h"

namespace platinum::bench {

uint64_t HashOrderSum(const std::unordered_map<int, uint64_t>& table) {
  uint64_t sum = 0;
  for (const auto& kv : table) {  // visit order is the hash layout
    sum = sum * 31 + kv.second;
  }
  return sum;
}

void ChargeByHashOrder(sim::Scheduler& sched,
                       const std::unordered_map<int, uint64_t>& table) {
  sched.Advance(sim::SimTime(HashOrderSum(table)));
}

}  // namespace platinum::bench
