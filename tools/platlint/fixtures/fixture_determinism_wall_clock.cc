// platlint fixture: must trigger the determinism-taint rule.
// platlint-fixture-as: bench/fixture_determinism_wall_clock.cc
// platlint-fixture-rule: determinism-taint
//
// A host wall-clock reading flows through a local into virtual time: the
// sink call receives a value the host is free to vary between runs.
#include <chrono>

#include "src/sim/scheduler.h"

namespace platinum::bench {

void SeedVirtualTimeFromHost(sim::Scheduler& sched) {
  auto skew = std::chrono::steady_clock::now().time_since_epoch().count();
  sched.Advance(sim::SimTime(skew));
}

}  // namespace platinum::bench
