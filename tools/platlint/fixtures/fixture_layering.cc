// platlint fixture: must trigger the layering rule.
// platlint-fixture-as: src/hw/fixture_layering.cc
// platlint-fixture-rule: layering
//
// src/hw is the bottom of the stack (MMU/ATC primitives); reaching up into
// the kernel inverts the architecture.
#include "src/kernel/kernel.h"

namespace platinum::hw {

int FixtureProcessors(kernel::Kernel& k) { return k.num_processors(); }

}  // namespace platinum::hw
