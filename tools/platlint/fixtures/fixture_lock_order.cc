// platlint fixture: must trigger the lock-order rule.
// platlint-fixture-as: src/kernel/fixture_lock_order.cc
// platlint-fixture-rule: lock-order
//
// Two paths take the same pair of kernel locks in opposite orders: the lock
// graph gets the edges a_ -> b_ (TakeAB holds a_ and calls TakeB) and
// b_ -> a_ (TakeBA holds b_ and calls TakeA), a deadlock cycle.
#include "src/base/discipline_lock.h"

namespace platinum::kernel {

class FixtureTables {
 public:
  void TakeAB() {
    a_.Acquire();
    TakeB();
    a_.Release();
  }
  void TakeBA() {
    b_.Acquire();
    TakeA();
    b_.Release();
  }

 private:
  void TakeA() {
    a_.Acquire();
    a_.Release();
  }
  void TakeB() {
    b_.Acquire();
    b_.Release();
  }

  base::DisciplineLock a_;
  base::DisciplineLock b_;
};

}  // namespace platinum::kernel
