// platlint fixture: must trigger the no-yield rule.
// platlint-fixture-as: src/mem/fixture_no_yield.cc
// platlint-fixture-rule: no-yield
//
// A PLATINUM_NO_YIELD function reaching a switch point (even transitively)
// violates the fault-handler critical-section discipline.
#include "src/base/thread_annotations.h"
#include "src/sim/scheduler.h"

namespace platinum::mem {

class FixtureHandler {
 public:
  void Resolve(sim::Scheduler& sched) PLATINUM_NO_YIELD;

 private:
  void WaitForTransfer(sim::Scheduler& sched);
};

void FixtureHandler::WaitForTransfer(sim::Scheduler& sched) {
  sched.Sleep(100);  // blocks: transitively poisons Resolve
}

void FixtureHandler::Resolve(sim::Scheduler& sched) { WaitForTransfer(sched); }

}  // namespace platinum::mem
