// platlint fixture: must trigger the layering rule.
// platlint-fixture-as: src/obs/fixture_obs_forensics.cc
// platlint-fixture-rule: layering
//
// The page-forensics layer may consume only the coherent-memory hook headers
// (trace.h, page_event.h, access_observer.h, via the HOOK_HEADERS allowance);
// including coherent_memory.h itself reaches into protocol internals.
#include "src/mem/coherent_memory.h"

namespace platinum::obs {

uint64_t FixtureFaults(mem::CoherentMemory& memory) { return memory.stats().faults; }

}  // namespace platinum::obs
