// platlint fixture: must trigger the pointer-escape rule.
// platlint-fixture-as: src/apps/fixture_pointer_escape.cc
// platlint-fixture-rule: pointer-escape
//
// Touching a module's backing store through a raw host pointer bypasses the
// coherence protocol and charges no simulated time; applications must go
// through CoherentMemory::Access.
#include <cstdint>

#include "src/sim/memory_module.h"

namespace platinum::apps {

uint8_t FixturePeek(sim::MemoryModule& module) {
  uint8_t* raw = module.FrameData(0);  // escapes the memory system
  return raw[0];
}

}  // namespace platinum::apps
