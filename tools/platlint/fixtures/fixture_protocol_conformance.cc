// platlint fixture: must trigger the protocol-conformance rule.
// platlint-fixture-as: src/mem/fixture_protocol_conformance.cc
// platlint-fixture-rule: protocol-conformance
//
// Two violations in one site: the annotation claims a micro event the spec
// does not know, and the mutation sits outside the spec's mutation_files
// funnel (this file is not one of the sanctioned mem sources).
#include "src/mem/cpage.h"

namespace platinum::mem {

void FixtureResetPage(Cpage* page) {
  // protocol: teleport modified -> empty
  page->SetState(CpageState::kEmpty);
}

}  // namespace platinum::mem
