// platlint fixture: must trigger the randomness rule.
// platlint-fixture-as: src/sim/fixture_randomness.cc
// platlint-fixture-rule: randomness
//
// Ambient randomness in the simulation core breaks determinism; workloads
// must use an explicitly seeded generator.
#include <cstdlib>

namespace platinum::sim {

int FixturePick(int n) { return rand() % n; }

}  // namespace platinum::sim
