// platlint fixture: must trigger the unordered-container rule.
// platlint-fixture-as: src/mem/fixture_unordered.cc
// platlint-fixture-rule: unordered-container
//
// Iterating a hash-ordered container in the simulation core can leak the
// hash order into simulation output.
#include <cstdint>
#include <unordered_map>

namespace platinum::mem {

uint64_t FixtureSum(const std::unordered_map<uint32_t, uint64_t>& stats) {
  uint64_t total = 0;
  for (const auto& [id, value] : stats) {
    total += id + value;
  }
  return total;
}

}  // namespace platinum::mem
