// platlint fixture: must trigger the wall-clock rule.
// platlint-fixture-as: src/sim/fixture_wall_clock.cc
// platlint-fixture-rule: wall-clock
//
// Wall-clock time in the simulation core breaks run-to-run determinism:
// virtual time is the only clock the simulator may consult.
#include <chrono>

namespace platinum::sim {

long FixtureNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace platinum::sim
