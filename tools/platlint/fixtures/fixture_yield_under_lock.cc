// platlint fixture: must trigger the yield-under-lock rule.
// platlint-fixture-as: src/kernel/fixture_yield_under_lock.cc
// platlint-fixture-rule: yield-under-lock
//
// A scheduler switch point inside a DisciplineLock critical section would
// let another fiber observe the half-updated structure the lock models.
#include "src/base/discipline_lock.h"
#include "src/sim/scheduler.h"

namespace platinum::kernel {

class FixtureQueue {
 public:
  void Drain(sim::Scheduler& sched) {
    queue_lock_.Acquire();
    pending_ = 0;
    sched.Yield();  // switch point while the queue lock is held
    queue_lock_.Release();
  }

 private:
  base::DisciplineLock queue_lock_;
  int pending_ GUARDED_BY(queue_lock_) = 0;
};

}  // namespace platinum::kernel
