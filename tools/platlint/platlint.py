#!/usr/bin/env python3
"""platlint: static analysis for the PLATINUM simulator.

Checks the repo against the architecture-fidelity and blocking-discipline
rules described in docs/STATIC_ANALYSIS.md:

  wall-clock           no wall-clock time in the simulation core
  randomness           no ambient randomness in the simulation core
  unordered-container  no hash-ordered iteration in the simulation core
  determinism-taint    no host-nondeterministic value flows into sim state
  layering             src/ include graph respects the layer map
  pointer-escape       FrameData() host pointers stay inside the memory system
  no-yield             PLATINUM_NO_YIELD functions cannot reach a switch point
  yield-under-lock     no switch point inside a DisciplineLock critical section
  protocol-conformance Cpage state mutations match src/mem/protocol_spec.json
  lock-order           no cycles in the lock-acquisition graph
  annotation-coverage  hook implementers declare how their state is shared

Usage:
  platlint.py [--root DIR] [--rule NAME]... [--json] [--json-out FILE]
              [--sarif-out FILE] [--baseline FILE] [--timing] [--budget SECS]
              [--frontend text|clang]
  platlint.py --list-rules
  platlint.py --selftest          # fixtures must trigger, real tree must pass

A baseline entry that no longer matches any finding is itself reported (as
stale-baseline) so suppressions cannot outlive the debt they cover.

Exit status: 0 clean, 1 findings (or selftest failure), 2 usage error.

Suppress a finding with `platlint: allow(<rule>): reason` on the line or one
of the two lines above it (`nondet-ok:` also accepted by the three
nondeterminism rules), or baseline a whole (rule, file) pair in the JSON
baseline file.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_model  # noqa: E402
import rules as rules_mod  # noqa: E402

DEFAULT_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
FIXTURES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

# Directories analyzed by the text frontend. bench/ is in scope for the
# dataflow rule (host-side harness code feeding the simulator); the
# core-scoped rules all filter on src/ paths themselves.
SCAN_DIRS = ["src", "bench"]

# Fixtures declare the path they should be analyzed at and the rule they must
# trigger in header comments:
_FIXTURE_AS_RE = re.compile(r"platlint-fixture-as:\s*(\S+)")
_FIXTURE_RULE_RE = re.compile(r"platlint-fixture-rule:\s*([\w-]+)")


def load_baseline(path: str | None):
    if path is None or not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    return {(e["rule"], e["path"]) for e in entries}


def run_rules(model, selected, baseline, timings=None):
    """Returns (findings, used) where `used` is the subset of baseline
    entries that matched at least one finding. `timings`, if given, is a
    dict filled with per-rule wall seconds."""
    findings = []
    used = set()
    for rule in selected:
        start = time.monotonic()
        for f in rule.apply(model):
            if (f.rule, f.path) in baseline:
                used.add((f.rule, f.path))
            else:
                findings.append(f)
        if timings is not None:
            timings[rule.name] = timings.get(rule.name, 0.0) + (time.monotonic() - start)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, used


def stale_findings(baseline, used, selected_names):
    """A baseline entry that matches no finding is itself an error: it hides
    nothing and would silently mask a future regression at that path. Only
    entries for rules that actually ran can be judged stale."""
    from rules import Finding
    stale = []
    for rule_name, path in sorted(baseline - used):
        if rule_name in selected_names:
            stale.append(Finding(
                "stale-baseline", path, 0,
                f"baseline entry ({rule_name}, {path}) matched no finding; "
                "remove it from tools/platlint/baseline.json"))
    return stale


def to_sarif(findings, selected):
    """Findings as a SARIF 2.1.0 log (GitHub code scanning ingests this)."""
    rule_meta = [{
        "id": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
        "helpUri": "https://github.com/" + os.environ.get(
            "GITHUB_REPOSITORY", "platinum/platinum")
                   + "/blob/main/docs/STATIC_ANALYSIS.md",
    } for rule in selected]
    index = {rule.name: i for i, rule in enumerate(selected)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path,
                                         "uriBaseId": "%SRCROOT%"},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if f.rule in index:
            result["ruleIndex"] = index[f.rule]
        if getattr(f, "snippet", ""):
            result["locations"][0]["physicalLocation"]["region"]["snippet"] = {
                "text": f.snippet}
        results.append(result)
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "platlint",
                "informationUri": "docs/STATIC_ANALYSIS.md",
                "rules": rule_meta,
            }},
            "results": results,
        }],
    }


def selftest(root: str, selected) -> int:
    """Each fixture must trigger exactly its declared rule at its declared
    virtual path; the rule set must also pass over the real tree."""
    failures = 0
    fixtures = sorted(os.listdir(FIXTURES_DIR)) if os.path.isdir(FIXTURES_DIR) else []
    fixtures = [f for f in fixtures if f.endswith((".cc", ".h"))]
    if not fixtures:
        print("platlint selftest: no fixtures found", file=sys.stderr)
        return 1
    rule_names = {r.name for r in selected}
    covered = set()
    for name in fixtures:
        full = os.path.join(FIXTURES_DIR, name)
        with open(full, encoding="utf-8") as f:
            text = f.read()
        as_m = _FIXTURE_AS_RE.search(text)
        rule_m = _FIXTURE_RULE_RE.search(text)
        if not as_m or not rule_m:
            print(f"FAIL {name}: missing platlint-fixture-as / platlint-fixture-rule "
                  "header comments")
            failures += 1
            continue
        as_path, want_rule = as_m.group(1), rule_m.group(1)
        if want_rule not in rule_names:
            continue  # rule filtered out on the command line
        covered.add(want_rule)
        model = cpp_model.load_tree(root, SCAN_DIRS, extra=[(as_path, text)])
        findings, _ = run_rules(model, selected, baseline=set())
        hits = [f for f in findings if f.path == as_path and f.rule == want_rule]
        extra = [f for f in findings if f.path != as_path]
        if not hits:
            print(f"FAIL {name}: expected a [{want_rule}] finding at {as_path}, got none")
            for f in findings:
                print(f"  (saw) {f}")
            failures += 1
        elif extra:
            print(f"FAIL {name}: fixture leaked findings into the real tree:")
            for f in extra:
                print(f"  {f}")
            failures += 1
        else:
            print(f"ok   {name}: [{want_rule}] x{len(hits)} at {as_path}")
    uncovered = rule_names - covered
    if uncovered:
        print(f"FAIL: rules with no fixture: {', '.join(sorted(uncovered))}")
        failures += 1
    # Stale-baseline detection must itself fire: a baseline entry naming a
    # file that produces no finding has to be reported, not silently kept.
    model = cpp_model.load_tree(root, SCAN_DIRS)
    dead_entry = (selected[0].name, "src/sim/NO_SUCH_FILE.cc")
    _, used = run_rules(model, selected, baseline={dead_entry})
    stale = stale_findings({dead_entry}, used, rule_names)
    if len(stale) == 1 and dead_entry[1] in stale[0].message:
        print("ok   stale-baseline: dead baseline entry reported")
    else:
        print(f"FAIL stale-baseline: expected 1 stale finding for {dead_entry}, "
              f"got {len(stale)}")
        failures += 1
    if failures:
        print(f"platlint selftest: {failures} failure(s)")
        return 1
    print(f"platlint selftest: {len(fixtures)} fixtures ok, all rules covered")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=DEFAULT_ROOT, help="repo root (default: auto)")
    ap.add_argument("--rule", action="append", default=[],
                    help="run only this rule (repeatable)")
    ap.add_argument("--json", action="store_true", help="emit findings as JSON")
    ap.add_argument("--json-out", default=None, metavar="FILE",
                    help="also write findings as JSON to FILE (for CI artifacts)")
    ap.add_argument("--sarif-out", default=None, metavar="FILE",
                    help="write findings as SARIF 2.1.0 to FILE "
                         "(GitHub code scanning)")
    ap.add_argument("--timing", action="store_true",
                    help="print per-rule and total wall-clock timing to stderr")
    ap.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                    help="fail (exit 1) if the total run exceeds this many "
                         "wall-clock seconds (CI performance gate)")
    ap.add_argument("--baseline", default=None,
                    help="JSON baseline of accepted (rule, path) pairs "
                         "(default: tools/platlint/baseline.json if present)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--selftest", action="store_true",
                    help="verify every fixture triggers its rule")
    ap.add_argument("--frontend", choices=["text", "clang"], default="text",
                    help="call-graph frontend for the blocking rules: 'text' "
                         "(default, works on any toolchain) or 'clang' "
                         "(cross-check via clang -ast-dump=json and "
                         "compile_commands.json)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in rules_mod.ALL_RULES:
            print(f"{rule.name:20} {rule.description}")
        return 0

    if args.rule:
        unknown = [r for r in args.rule if r not in rules_mod.RULES_BY_NAME]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)} "
                  f"(try --list-rules)", file=sys.stderr)
            return 2
        selected = [rules_mod.RULES_BY_NAME[r] for r in args.rule]
    else:
        selected = rules_mod.ALL_RULES

    if args.selftest:
        return selftest(args.root, selected)

    baseline_path = args.baseline
    if baseline_path is None:
        default_baseline = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                        "baseline.json")
        if os.path.exists(default_baseline):
            baseline_path = default_baseline
    baseline = load_baseline(baseline_path)

    total_start = time.monotonic()
    timings = {} if args.timing else None
    model = cpp_model.load_tree(args.root, SCAN_DIRS)
    load_done = time.monotonic()
    findings, used = run_rules(model, selected, baseline, timings=timings)

    if args.frontend == "clang":
        import clang_frontend
        from rules import Finding
        try:
            clang_start = time.monotonic()
            clang_findings = list(clang_frontend.check_no_yield(args.root))
            conf_rule = rules_mod.RULES_BY_NAME.get("protocol-conformance")
            if conf_rule is not None and conf_rule in selected:
                text_sites = conf_rule.collect_sites(model)
                clang_findings += clang_frontend.check_conformance_parity(
                    args.root, text_sites)
            if timings is not None:
                timings["clang-frontend"] = time.monotonic() - clang_start
            for f in clang_findings:
                if (f["rule"], f["path"]) in baseline:
                    used.add((f["rule"], f["path"]))
                else:
                    findings.append(Finding(f["rule"], f["path"], f["line"], f["message"]))
        except clang_frontend.ClangUnavailable as e:
            print(f"platlint: clang frontend unavailable: {e}", file=sys.stderr)
            return 2

    findings += stale_findings(baseline, used, {r.name for r in selected})

    if args.timing and timings is not None:
        for name in sorted(timings, key=timings.get, reverse=True):
            print(f"platlint timing: {name:22} {timings[name]:7.3f}s", file=sys.stderr)
        print(f"platlint timing: {'model-load':22} {load_done - total_start:7.3f}s",
              file=sys.stderr)
        print(f"platlint timing: {'total':22} "
              f"{time.monotonic() - total_start:7.3f}s", file=sys.stderr)

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as out:
            json.dump([f.to_json() for f in findings], out, indent=2)
            out.write("\n")
    if args.sarif_out:
        with open(args.sarif_out, "w", encoding="utf-8") as out:
            json.dump(to_sarif(findings, selected), out, indent=2)
            out.write("\n")
    if args.budget is not None:
        elapsed = time.monotonic() - total_start
        if elapsed > args.budget:
            print(f"platlint: run took {elapsed:.1f}s, over the --budget "
                  f"{args.budget:.1f}s performance gate", file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
    if findings:
        if not args.json:
            print(f"\nplatlint: {len(findings)} finding(s) in {len(model.files)} files; "
                  "fix, or suppress with a `platlint: allow(<rule>): reason` comment.")
        return 1
    if not args.json:
        print(f"platlint: {len(model.files)} files clean "
              f"({len(selected)} rule(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
